// seqlog: the s-algebra baseline (Section 1.1, after [16, 34]).
//
// Ginsburg and Wang's extended relational model stores tuples of
// sequences and queries them with an algebra whose sequence-specific
// operators are pattern-driven rs-operations. This module implements
// that baseline so benchmarks can compare it with Sequence Datalog on
// the queries both can express (pattern selection, subsequence
// extraction, bounded merging):
//
//   select   - keep rows whose column matches a pattern
//   extract  - per row, one output row per pattern binding, appending
//              the designated variable's factor as a new column
//   merge    - append a column built by instantiating a pattern from
//              existing columns
//   union / product / project / rename-free column ops
//
// Every merge applies one fixed pattern, so an expression performs a
// number of concatenations independent of the database — exactly the
// limitation the paper ascribes to the safe fragment (and to stratified
// construction, end of Section 5): queries whose answer length depends
// on the data, such as reverse or complement, are out of reach. The
// benchmarks demonstrate the flip side: on extraction-style queries the
// specialised operators are fast.
#ifndef SEQLOG_RS_ALGEBRA_H_
#define SEQLOG_RS_ALGEBRA_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/result.h"
#include "rs/pattern.h"
#include "sequence/sequence_pool.h"

namespace seqlog {
namespace rs {

/// A materialised s-relation: rows of interned sequences, fixed arity.
/// Self-contained (no catalog) so baseline code stays independent of the
/// engine's storage layer.
struct Table {
  size_t arity = 0;
  std::vector<std::vector<SeqId>> rows;

  /// Sorts rows and removes duplicates (set semantics, Section 2.2).
  void Normalize();
};

/// Inputs to an expression: named base relations.
using TableEnv = std::map<std::string, Table>;

/// An s-algebra expression tree. Build with the factory functions below;
/// evaluate with Eval. Expressions are immutable and shareable.
class SExpr {
 public:
  virtual ~SExpr() = default;

  /// Evaluates the expression bottom-up; rows are set-normalised.
  virtual Result<Table> Eval(const TableEnv& env,
                             SequencePool* pool) const = 0;

  /// Number of pattern-instantiation (merge) nodes in the tree: the
  /// "fixed number of concatenations" the baseline performs per row,
  /// mirroring the stratified-construction bound of Section 5.
  virtual size_t MergeCount() const = 0;
};

using SExprPtr = std::shared_ptr<const SExpr>;

/// Base relation by name; arity checked against the environment at Eval.
SExprPtr Base(std::string name);

/// Set union; both sides must have equal arity.
SExprPtr Union(SExprPtr left, SExprPtr right);

/// Cartesian product (column concatenation).
SExprPtr Product(SExprPtr left, SExprPtr right);

/// Projection onto `columns` (0-based, may repeat/reorder).
SExprPtr Project(SExprPtr input, std::vector<size_t> columns);

/// Keeps rows where `pattern` matches column `column`.
SExprPtr Select(SExprPtr input, size_t column, Pattern pattern);

/// Keeps rows where columns `left` and `right` hold equal sequences.
SExprPtr SelectEq(SExprPtr input, size_t left, size_t right);

/// Extractor: for each row and each binding of `pattern` against column
/// `column`, emits the row extended by the binding of variable `var`.
SExprPtr Extract(SExprPtr input, size_t column, Pattern pattern,
                 size_t var);

/// Merger: extends each row by `pattern` instantiated with the values of
/// `columns` (one column per pattern variable).
SExprPtr Merge(SExprPtr input, Pattern pattern,
               std::vector<size_t> columns);

}  // namespace rs
}  // namespace seqlog

#endif  // SEQLOG_RS_ALGEBRA_H_
