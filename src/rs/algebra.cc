#include "rs/algebra.h"

#include <algorithm>

#include "base/string_util.h"

namespace seqlog {
namespace rs {

void Table::Normalize() {
  std::sort(rows.begin(), rows.end());
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
}

namespace {

class BaseExpr final : public SExpr {
 public:
  explicit BaseExpr(std::string name) : name_(std::move(name)) {}

  Result<Table> Eval(const TableEnv& env, SequencePool*) const override {
    auto it = env.find(name_);
    if (it == env.end()) {
      return Status::NotFound(StrCat("base relation '", name_, "'"));
    }
    Table copy = it->second;
    copy.Normalize();
    return copy;
  }

  size_t MergeCount() const override { return 0; }

 private:
  std::string name_;
};

class UnionExpr final : public SExpr {
 public:
  UnionExpr(SExprPtr left, SExprPtr right)
      : left_(std::move(left)), right_(std::move(right)) {}

  Result<Table> Eval(const TableEnv& env,
                     SequencePool* pool) const override {
    SEQLOG_ASSIGN_OR_RETURN(Table l, left_->Eval(env, pool));
    SEQLOG_ASSIGN_OR_RETURN(Table r, right_->Eval(env, pool));
    if (l.arity != r.arity) {
      return Status::InvalidArgument(
          StrCat("union arity mismatch: ", l.arity, " vs ", r.arity));
    }
    l.rows.insert(l.rows.end(), r.rows.begin(), r.rows.end());
    l.Normalize();
    return l;
  }

  size_t MergeCount() const override {
    return left_->MergeCount() + right_->MergeCount();
  }

 private:
  SExprPtr left_;
  SExprPtr right_;
};

class ProductExpr final : public SExpr {
 public:
  ProductExpr(SExprPtr left, SExprPtr right)
      : left_(std::move(left)), right_(std::move(right)) {}

  Result<Table> Eval(const TableEnv& env,
                     SequencePool* pool) const override {
    SEQLOG_ASSIGN_OR_RETURN(Table l, left_->Eval(env, pool));
    SEQLOG_ASSIGN_OR_RETURN(Table r, right_->Eval(env, pool));
    Table out;
    out.arity = l.arity + r.arity;
    out.rows.reserve(l.rows.size() * r.rows.size());
    for (const auto& lrow : l.rows) {
      for (const auto& rrow : r.rows) {
        std::vector<SeqId> row = lrow;
        row.insert(row.end(), rrow.begin(), rrow.end());
        out.rows.push_back(std::move(row));
      }
    }
    out.Normalize();
    return out;
  }

  size_t MergeCount() const override {
    return left_->MergeCount() + right_->MergeCount();
  }

 private:
  SExprPtr left_;
  SExprPtr right_;
};

class ProjectExpr final : public SExpr {
 public:
  ProjectExpr(SExprPtr input, std::vector<size_t> columns)
      : input_(std::move(input)), columns_(std::move(columns)) {}

  Result<Table> Eval(const TableEnv& env,
                     SequencePool* pool) const override {
    SEQLOG_ASSIGN_OR_RETURN(Table in, input_->Eval(env, pool));
    for (size_t c : columns_) {
      if (c >= in.arity) {
        return Status::InvalidArgument(
            StrCat("project column ", c, " out of range (arity ",
                   in.arity, ")"));
      }
    }
    Table out;
    out.arity = columns_.size();
    out.rows.reserve(in.rows.size());
    for (const auto& row : in.rows) {
      std::vector<SeqId> projected;
      projected.reserve(columns_.size());
      for (size_t c : columns_) projected.push_back(row[c]);
      out.rows.push_back(std::move(projected));
    }
    out.Normalize();
    return out;
  }

  size_t MergeCount() const override { return input_->MergeCount(); }

 private:
  SExprPtr input_;
  std::vector<size_t> columns_;
};

class SelectExpr final : public SExpr {
 public:
  SelectExpr(SExprPtr input, size_t column, Pattern pattern)
      : input_(std::move(input)),
        column_(column),
        pattern_(std::move(pattern)) {}

  Result<Table> Eval(const TableEnv& env,
                     SequencePool* pool) const override {
    SEQLOG_ASSIGN_OR_RETURN(Table in, input_->Eval(env, pool));
    if (column_ >= in.arity) {
      return Status::InvalidArgument(
          StrCat("select column ", column_, " out of range"));
    }
    Table out;
    out.arity = in.arity;
    for (auto& row : in.rows) {
      if (pattern_.Matches(pool->View(row[column_]), pool)) {
        out.rows.push_back(std::move(row));
      }
    }
    return out;  // input was normalised; filtering preserves order
  }

  size_t MergeCount() const override { return input_->MergeCount(); }

 private:
  SExprPtr input_;
  size_t column_;
  Pattern pattern_;
};

class SelectEqExpr final : public SExpr {
 public:
  SelectEqExpr(SExprPtr input, size_t left, size_t right)
      : input_(std::move(input)), left_(left), right_(right) {}

  Result<Table> Eval(const TableEnv& env,
                     SequencePool* pool) const override {
    SEQLOG_ASSIGN_OR_RETURN(Table in, input_->Eval(env, pool));
    if (left_ >= in.arity || right_ >= in.arity) {
      return Status::InvalidArgument("select-eq column out of range");
    }
    Table out;
    out.arity = in.arity;
    for (auto& row : in.rows) {
      if (row[left_] == row[right_]) out.rows.push_back(std::move(row));
    }
    return out;
  }

  size_t MergeCount() const override { return input_->MergeCount(); }

 private:
  SExprPtr input_;
  size_t left_;
  size_t right_;
};

class ExtractExpr final : public SExpr {
 public:
  ExtractExpr(SExprPtr input, size_t column, Pattern pattern, size_t var)
      : input_(std::move(input)),
        column_(column),
        pattern_(std::move(pattern)),
        var_(var) {}

  Result<Table> Eval(const TableEnv& env,
                     SequencePool* pool) const override {
    SEQLOG_ASSIGN_OR_RETURN(Table in, input_->Eval(env, pool));
    if (column_ >= in.arity) {
      return Status::InvalidArgument(
          StrCat("extract column ", column_, " out of range"));
    }
    if (var_ >= pattern_.num_vars()) {
      return Status::InvalidArgument(
          StrCat("extract variable x", var_ + 1, " not in pattern"));
    }
    Table out;
    out.arity = in.arity + 1;
    for (const auto& row : in.rows) {
      pattern_.Match(pool->View(row[column_]), pool,
                     [&](std::span<const SeqId> binding) {
                       std::vector<SeqId> extended = row;
                       extended.push_back(binding[var_]);
                       out.rows.push_back(std::move(extended));
                     });
    }
    out.Normalize();
    return out;
  }

  size_t MergeCount() const override { return input_->MergeCount(); }

 private:
  SExprPtr input_;
  size_t column_;
  Pattern pattern_;
  size_t var_;
};

class MergeExpr final : public SExpr {
 public:
  MergeExpr(SExprPtr input, Pattern pattern, std::vector<size_t> columns)
      : input_(std::move(input)),
        pattern_(std::move(pattern)),
        columns_(std::move(columns)) {}

  Result<Table> Eval(const TableEnv& env,
                     SequencePool* pool) const override {
    SEQLOG_ASSIGN_OR_RETURN(Table in, input_->Eval(env, pool));
    if (columns_.size() != pattern_.num_vars()) {
      return Status::InvalidArgument(
          StrCat("merge pattern has ", pattern_.num_vars(),
                 " variables, got ", columns_.size(), " columns"));
    }
    for (size_t c : columns_) {
      if (c >= in.arity) {
        return Status::InvalidArgument(
            StrCat("merge column ", c, " out of range"));
      }
    }
    Table out;
    out.arity = in.arity + 1;
    std::vector<SeqId> values(columns_.size());
    for (const auto& row : in.rows) {
      for (size_t i = 0; i < columns_.size(); ++i) {
        values[i] = row[columns_[i]];
      }
      SEQLOG_ASSIGN_OR_RETURN(SeqId merged,
                              pattern_.Instantiate(values, pool));
      std::vector<SeqId> extended = row;
      extended.push_back(merged);
      out.rows.push_back(std::move(extended));
    }
    out.Normalize();
    return out;
  }

  size_t MergeCount() const override { return input_->MergeCount() + 1; }

 private:
  SExprPtr input_;
  Pattern pattern_;
  std::vector<size_t> columns_;
};

}  // namespace

SExprPtr Base(std::string name) {
  return std::make_shared<BaseExpr>(std::move(name));
}

SExprPtr Union(SExprPtr left, SExprPtr right) {
  return std::make_shared<UnionExpr>(std::move(left), std::move(right));
}

SExprPtr Product(SExprPtr left, SExprPtr right) {
  return std::make_shared<ProductExpr>(std::move(left), std::move(right));
}

SExprPtr Project(SExprPtr input, std::vector<size_t> columns) {
  return std::make_shared<ProjectExpr>(std::move(input),
                                       std::move(columns));
}

SExprPtr Select(SExprPtr input, size_t column, Pattern pattern) {
  return std::make_shared<SelectExpr>(std::move(input), column,
                                      std::move(pattern));
}

SExprPtr SelectEq(SExprPtr input, size_t left, size_t right) {
  return std::make_shared<SelectEqExpr>(std::move(input), left, right);
}

SExprPtr Extract(SExprPtr input, size_t column, Pattern pattern,
                 size_t var) {
  return std::make_shared<ExtractExpr>(std::move(input), column,
                                       std::move(pattern), var);
}

SExprPtr Merge(SExprPtr input, Pattern pattern,
               std::vector<size_t> columns) {
  return std::make_shared<MergeExpr>(std::move(input), std::move(pattern),
                                     std::move(columns));
}

}  // namespace rs
}  // namespace seqlog
