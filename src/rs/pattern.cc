#include "rs/pattern.h"

#include <algorithm>

#include "base/string_util.h"

namespace seqlog {
namespace rs {

Result<Pattern> Pattern::Create(std::vector<PatternItem> items,
                                size_t num_vars) {
  std::vector<bool> seen(num_vars, false);
  for (const PatternItem& item : items) {
    if (item.kind == PatternItem::Kind::kVar) {
      if (item.var >= num_vars) {
        return Status::InvalidArgument(
            StrCat("pattern variable x", item.var + 1, " out of range (",
                   num_vars, " variables)"));
      }
      seen[item.var] = true;
    }
  }
  for (size_t v = 0; v < num_vars; ++v) {
    if (!seen[v]) {
      return Status::InvalidArgument(
          StrCat("pattern variable x", v + 1, " never occurs"));
    }
  }
  return Pattern(std::move(items), num_vars);
}

Result<SeqId> Pattern::Instantiate(std::span<const SeqId> values,
                                   SequencePool* pool) const {
  if (values.size() != num_vars_) {
    return Status::InvalidArgument(
        StrCat("pattern has ", num_vars_, " variables, got ",
               values.size(), " values"));
  }
  std::vector<Symbol> out;
  for (const PatternItem& item : items_) {
    SeqView piece = pool->View(item.kind == PatternItem::Kind::kLiteral
                                   ? item.literal
                                   : values[item.var]);
    out.insert(out.end(), piece.begin(), piece.end());
  }
  return pool->Intern(out);
}

namespace {

/// Backtracking matcher: items[i..] must cover s[pos..]; bound[v] is the
/// factor bound to variable v or kInvalidSeq.
class Matcher {
 public:
  Matcher(const std::vector<PatternItem>& items, SeqView s,
          SequencePool* pool,
          const std::function<void(std::span<const SeqId>)>* emit,
          bool first_only)
      : items_(items),
        s_(s),
        pool_(pool),
        emit_(emit),
        first_only_(first_only) {}

  size_t Run(size_t num_vars) {
    bound_.assign(num_vars, SequencePool::kInvalidSeq);
    Step(0, 0);
    return count_;
  }

 private:
  void Step(size_t item, size_t pos) {
    if (first_only_ && count_ > 0) return;
    if (item == items_.size()) {
      if (pos == s_.size()) {
        ++count_;
        if (emit_ != nullptr) (*emit_)(bound_);
      }
      return;
    }
    const PatternItem& it = items_[item];
    if (it.kind == PatternItem::Kind::kLiteral) {
      SeqView lit = pool_->View(it.literal);
      if (pos + lit.size() <= s_.size() &&
          std::equal(lit.begin(), lit.end(), s_.begin() + pos)) {
        Step(item + 1, pos + lit.size());
      }
      return;
    }
    if (bound_[it.var] != SequencePool::kInvalidSeq) {
      // Repeated variable: must rebind to an equal factor.
      SeqView prev = pool_->View(bound_[it.var]);
      if (pos + prev.size() <= s_.size() &&
          std::equal(prev.begin(), prev.end(), s_.begin() + pos)) {
        Step(item + 1, pos + prev.size());
      }
      return;
    }
    // Fresh variable: try every factor length (including empty).
    for (size_t len = 0; pos + len <= s_.size(); ++len) {
      bound_[it.var] = pool_->Intern(s_.subspan(pos, len));
      Step(item + 1, pos + len);
      if (first_only_ && count_ > 0) break;
    }
    bound_[it.var] = SequencePool::kInvalidSeq;
  }

  const std::vector<PatternItem>& items_;
  SeqView s_;
  SequencePool* pool_;
  const std::function<void(std::span<const SeqId>)>* emit_;
  bool first_only_;
  std::vector<SeqId> bound_;
  size_t count_ = 0;
};

}  // namespace

size_t Pattern::Match(
    SeqView s, SequencePool* pool,
    const std::function<void(std::span<const SeqId>)>& emit) const {
  Matcher matcher(items_, s, pool, &emit, /*first_only=*/false);
  return matcher.Run(num_vars_);
}

bool Pattern::Matches(SeqView s, SequencePool* pool) const {
  Matcher matcher(items_, s, pool, nullptr, /*first_only=*/true);
  return matcher.Run(num_vars_) > 0;
}

Result<Pattern> Pattern::Parse(std::string_view text, SequencePool* pool,
                               SymbolTable* symbols) {
  std::vector<PatternItem> items;
  size_t max_var = 0;
  std::vector<Symbol> literal;
  auto flush_literal = [&]() {
    if (!literal.empty()) {
      items.push_back(PatternItem::Literal(pool->Intern(literal)));
      literal.clear();
    }
  };
  size_t i = 0;
  while (i < text.size()) {
    char c = text[i];
    if (c == 'X' && i + 1 < text.size() && isdigit(text[i + 1])) {
      flush_literal();
      size_t j = i + 1;
      size_t index = 0;
      while (j < text.size() && isdigit(text[j])) {
        index = index * 10 + static_cast<size_t>(text[j] - '0');
        ++j;
      }
      if (index == 0) {
        return Status::InvalidArgument("pattern variables start at X1");
      }
      items.push_back(PatternItem::Var(index - 1));
      max_var = std::max(max_var, index);
      i = j;
      continue;
    }
    if (isalnum(static_cast<unsigned char>(c)) && c != 'X') {
      literal.push_back(symbols->Intern(std::string_view(&c, 1)));
      ++i;
      continue;
    }
    return Status::InvalidArgument(
        StrCat("bad pattern character '", std::string_view(&c, 1),
               "' at offset ", i));
  }
  flush_literal();
  return Create(std::move(items), max_var);
}

std::string Pattern::ToString(const SequencePool& pool,
                              const SymbolTable& symbols) const {
  std::string out;
  for (const PatternItem& item : items_) {
    if (item.kind == PatternItem::Kind::kVar) {
      out += StrCat("X", item.var + 1);
    } else {
      out += pool.Render(item.literal, symbols);
    }
  }
  return out;
}

}  // namespace rs
}  // namespace seqlog
