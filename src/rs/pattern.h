// seqlog: sequence patterns for rs-operations (the Section 1.1 baseline).
//
// The paper positions Sequence Datalog against the rs-operations of
// Ginsburg and Wang [16, 34]: every rs-operation is a *merger* or an
// *extractor*, both driven by patterns. A pattern is a string of items,
// each either a literal sequence or a variable; variables stand for
// contiguous factors. Given a pattern pi over variables x1..xm:
//
//  * a merger instantiates pi with given sequences (one per variable),
//    concatenating literals and bindings — "merge a set of sequences";
//  * an extractor enumerates every way to match pi against a sequence
//    (variables bind to factors, repeated variables to equal factors)
//    and retrieves the binding of one designated variable — "retrieve
//    subsequences of a given sequence".
//
// Example: pi = x1 x2 with extraction of x2 yields all suffixes; pi =
// x1 x1 matches exactly the squares ww (compare Example 1.5's rep
// patterns). algebra.h lifts these operations to relations.
#ifndef SEQLOG_RS_PATTERN_H_
#define SEQLOG_RS_PATTERN_H_

#include <functional>
#include <string>
#include <vector>

#include "base/result.h"
#include "sequence/sequence_pool.h"

namespace seqlog {
namespace rs {

/// One pattern position: a literal sequence or a variable index.
struct PatternItem {
  enum class Kind : uint8_t { kLiteral, kVar };
  Kind kind = Kind::kVar;
  SeqId literal = kEmptySeq;  ///< kLiteral payload (pool id)
  size_t var = 0;             ///< kVar payload, in [0, num_vars)

  static PatternItem Literal(SeqId id) {
    PatternItem item;
    item.kind = Kind::kLiteral;
    item.literal = id;
    return item;
  }
  static PatternItem Var(size_t index) {
    PatternItem item;
    item.kind = Kind::kVar;
    item.var = index;
    return item;
  }
};

/// An immutable rs-pattern. Variables may repeat; every variable in
/// [0, num_vars) must occur at least once (checked at Create), so
/// mergers are total and extractor bindings are fully determined.
class Pattern {
 public:
  /// Validates and freezes a pattern.
  static Result<Pattern> Create(std::vector<PatternItem> items,
                                size_t num_vars);

  size_t num_vars() const { return num_vars_; }
  const std::vector<PatternItem>& items() const { return items_; }

  /// Merger: instantiates the pattern with `values` (one sequence per
  /// variable), interning the concatenation. values.size() must equal
  /// num_vars().
  Result<SeqId> Instantiate(std::span<const SeqId> values,
                            SequencePool* pool) const;

  /// Extractor support: enumerates every binding theta (one factor per
  /// variable) with theta(pattern) == s, invoking `emit` with the
  /// binding. Repeated variables must bind equal factors. Bindings are
  /// emitted in lexicographic order of split positions; duplicates (two
  /// different splits inducing the same binding cannot happen — the
  /// split *is* the binding) are not possible. Returns the number of
  /// bindings.
  ///
  /// Matching is O(n^v) for v distinct variable slots; patterns are
  /// fixed query text, so this is polynomial data complexity, matching
  /// the tractability claims of [16].
  size_t Match(SeqView s, SequencePool* pool,
               const std::function<void(std::span<const SeqId>)>& emit) const;

  /// True if some binding matches (Match with early exit).
  bool Matches(SeqView s, SequencePool* pool) const;

  /// Parses a compact pattern syntax over one-character symbols:
  /// lowercase letters and digits are literal symbols; 'X1'..'Xn'
  /// (uppercase X followed by digits) are variables, e.g. "X1abX2X1".
  /// `symbols` interns literal characters.
  static Result<Pattern> Parse(std::string_view text, SequencePool* pool,
                               SymbolTable* symbols);

  /// Round-trip rendering of Parse syntax.
  std::string ToString(const SequencePool& pool,
                       const SymbolTable& symbols) const;

 private:
  Pattern(std::vector<PatternItem> items, size_t num_vars)
      : items_(std::move(items)), num_vars_(num_vars) {}

  std::vector<PatternItem> items_;
  size_t num_vars_ = 0;
};

}  // namespace rs
}  // namespace seqlog

#endif  // SEQLOG_RS_PATTERN_H_
