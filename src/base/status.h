// seqlog: Status-based error handling.
//
// The library does not use C++ exceptions. Every fallible operation returns
// a Status (or a Result<T>, see result.h) carrying a machine-readable code
// and a human-readable message, in the style of RocksDB / Abseil.
#ifndef SEQLOG_BASE_STATUS_H_
#define SEQLOG_BASE_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace seqlog {

/// Machine-readable error categories used across the library.
enum class StatusCode {
  kOk = 0,
  /// Caller supplied a malformed argument (bad syntax, bad arity, ...).
  kInvalidArgument = 1,
  /// A named entity (predicate, transducer, relation) does not exist.
  kNotFound = 2,
  /// Operation is valid but the object is in the wrong state for it.
  kFailedPrecondition = 3,
  /// An evaluation budget (iterations, facts, domain, time) was exhausted.
  /// This is the expected outcome when evaluating programs with an
  /// infinite least fixpoint (the finiteness problem is undecidable,
  /// Theorem 2 of the paper).
  kResourceExhausted = 4,
  /// A value fell outside its legal range (index arithmetic, ids).
  kOutOfRange = 5,
  /// Requested feature is recognised but not implemented.
  kUnimplemented = 6,
  /// Invariant violation inside the library; always a bug.
  kInternal = 7,
};

/// Returns a stable lower-case name for `code` (e.g. "invalid_argument").
std::string_view StatusCodeName(StatusCode code);

/// A cheap, copyable success-or-error value.
///
/// An OK status carries no allocation. Error statuses carry a message that
/// should make sense to an end user of the query engine.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ok" or "<code>: <message>"; suitable for logs and test failures.
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace seqlog

/// Propagates a non-OK status to the caller. Usable in functions returning
/// Status or Result<T> (Result is constructible from Status).
#define SEQLOG_RETURN_IF_ERROR(expr)                 \
  do {                                               \
    ::seqlog::Status seqlog_status_ = (expr);        \
    if (!seqlog_status_.ok()) return seqlog_status_; \
  } while (0)

#endif  // SEQLOG_BASE_STATUS_H_
