// seqlog: a small fixed-size worker pool for data-parallel loops.
//
// Built for the parallel semi-naive evaluator (eval/engine.cc): each
// fixpoint round fans its clause firings out to workers, so the pool is
// optimised for many short ParallelFor calls on long-lived workers —
// submission is one lock + notify, work is claimed with an atomic index,
// and the calling thread participates instead of blocking idle.
//
// The pool runs plain `void(size_t)` callables and is completely
// decoupled from evaluation: errors travel out-of-band (the evaluator
// collects one Status per task and picks the first failure in task
// order, keeping results deterministic).
#ifndef SEQLOG_BASE_THREAD_POOL_H_
#define SEQLOG_BASE_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace seqlog {

/// A fixed set of worker threads executing indexed parallel loops.
///
/// Threading contract: construction and every ParallelFor call must come
/// from one owning thread (the evaluator run that created the pool).
/// ParallelFor itself is a barrier — it returns only after fn(0..n-1)
/// have all completed — so the owner never observes a torn loop.
class ThreadPool {
 public:
  /// Spawns `num_threads - 1` workers; the caller of ParallelFor acts as
  /// the remaining thread. `num_threads == 1` spawns nothing and makes
  /// ParallelFor a plain sequential loop.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution width (workers + the calling thread).
  size_t num_threads() const { return workers_.size() + 1; }

  /// Runs fn(i) for every i in [0, n), distributing indices over the
  /// workers and the calling thread; blocks until all n calls returned.
  /// `fn` must not throw and must not re-enter ParallelFor.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// std::thread::hardware_concurrency with a floor of 1 (the standard
  /// permits 0 for "unknown").
  static size_t HardwareThreads();

 private:
  /// One ParallelFor invocation. Heap-allocated and shared_ptr-owned so
  /// that a worker which wakes up late — after the submitting thread
  /// already finished the loop and moved on — holds job state that is
  /// still alive and already exhausted (next >= n), and therefore can
  /// never claim an index against a newer job's counters or touch the
  /// (by then destroyed) callable. ParallelFor only returns once
  /// `completed == n`, so `fn` outlives every invocation of it.
  struct Job {
    const std::function<void(size_t)>* fn = nullptr;
    size_t n = 0;
    std::atomic<size_t> next{0};       ///< next unclaimed index
    std::atomic<size_t> completed{0};  ///< finished indices
  };

  void WorkerLoop();
  /// Claims and runs indices of `job` until exhausted.
  void DrainJob(Job* job);

  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;  ///< signalled on new job / shutdown
  std::condition_variable done_cv_;  ///< signalled when a job completes
  std::shared_ptr<Job> job_;         ///< current job; null when idle
  uint64_t generation_ = 0;  ///< bumped per job so workers never rerun one
  bool stop_ = false;
};

}  // namespace seqlog

#endif  // SEQLOG_BASE_THREAD_POOL_H_
