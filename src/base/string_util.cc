#include "base/string_util.h"

namespace seqlog {

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

}  // namespace seqlog
