// seqlog: Result<T> — value-or-Status, the companion of status.h.
#ifndef SEQLOG_BASE_RESULT_H_
#define SEQLOG_BASE_RESULT_H_

#include <cstdlib>
#include <optional>
#include <utility>

#include "base/logging.h"
#include "base/status.h"

namespace seqlog {

/// Holds either a value of type T or an error Status.
///
/// Mirrors absl::StatusOr. Constructing from an OK status is a programming
/// error (checked). Access to the value of an errored Result aborts.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT
  /// Implicit construction from an error status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    SEQLOG_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    SEQLOG_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    SEQLOG_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    SEQLOG_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace seqlog

/// Evaluates `expr` (a Result<T>), propagating errors; on success binds the
/// moved value to `lhs`. Usable in functions returning Status or Result<U>.
#define SEQLOG_ASSIGN_OR_RETURN(lhs, expr)          \
  SEQLOG_ASSIGN_OR_RETURN_IMPL_(                    \
      SEQLOG_CONCAT_(seqlog_result_, __LINE__), lhs, expr)

#define SEQLOG_CONCAT_INNER_(a, b) a##b
#define SEQLOG_CONCAT_(a, b) SEQLOG_CONCAT_INNER_(a, b)
#define SEQLOG_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()

#endif  // SEQLOG_BASE_RESULT_H_
