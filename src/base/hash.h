// seqlog: hashing helpers shared by interning pools and relation indexes.
#ifndef SEQLOG_BASE_HASH_H_
#define SEQLOG_BASE_HASH_H_

#include <cstddef>
#include <cstdint>
#include <span>

namespace seqlog {

/// Mixes `value` into `seed` (boost::hash_combine recipe, 64-bit constant).
inline size_t HashCombine(size_t seed, size_t value) {
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

/// FNV-1a over a span of integers; used to hash sequences and tuples
/// without materialising a byte string.
template <typename T>
size_t HashSpan(std::span<const T> data) {
  uint64_t h = 1469598103934665603ULL;
  for (const T& v : data) {
    h ^= static_cast<uint64_t>(v);
    h *= 1099511628211ULL;
  }
  return static_cast<size_t>(h);
}

}  // namespace seqlog

#endif  // SEQLOG_BASE_HASH_H_
