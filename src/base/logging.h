// seqlog: check macros for internal invariants.
//
// SEQLOG_CHECK is always on; SEQLOG_DCHECK compiles away in NDEBUG builds.
// Both support streaming extra context: SEQLOG_CHECK(x) << "details".
// These are for programming errors only — user-facing failures must go
// through Status (status.h).
#ifndef SEQLOG_BASE_LOGGING_H_
#define SEQLOG_BASE_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace seqlog {
namespace internal {

/// Accumulates a failure message and aborts the process on destruction.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* expr) {
    stream_ << "CHECK failed at " << file << ":" << line << ": " << expr
            << " ";
  }
  [[noreturn]] ~CheckFailure() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  template <typename T>
  CheckFailure& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Swallows streamed operands when a check is compiled out.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

/// Lets a streaming expression appear on the false branch of ?: by
/// converting it to void (the glog idiom; & binds looser than <<).
class Voidify {
 public:
  void operator&(CheckFailure&) {}
  void operator&(CheckFailure&&) {}
  void operator&(NullStream&) {}
  void operator&(NullStream&&) {}
};

}  // namespace internal
}  // namespace seqlog

#define SEQLOG_CHECK(cond)                 \
  (cond) ? (void)0                         \
         : ::seqlog::internal::Voidify() & \
               ::seqlog::internal::CheckFailure(__FILE__, __LINE__, #cond)

#ifdef NDEBUG
#define SEQLOG_DCHECK(cond) \
  true ? (void)0 : ::seqlog::internal::Voidify() & ::seqlog::internal::NullStream()
#else
#define SEQLOG_DCHECK(cond) SEQLOG_CHECK(cond)
#endif

#endif  // SEQLOG_BASE_LOGGING_H_
