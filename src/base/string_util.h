// seqlog: small string helpers (no dependency on the rest of the library).
#ifndef SEQLOG_BASE_STRING_UTIL_H_
#define SEQLOG_BASE_STRING_UTIL_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace seqlog {

/// Joins `parts` with `sep` ("a", "b" -> "a,b").
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view text, char sep);

/// Streams all arguments into one string (StrCat-lite).
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream out;
  ((out << args), ...);  // comma fold: empty packs expand to void(), not (out)
  return out.str();
}

}  // namespace seqlog

#endif  // SEQLOG_BASE_STRING_UTIL_H_
