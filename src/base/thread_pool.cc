#include "base/thread_pool.h"

namespace seqlog {

ThreadPool::ThreadPool(size_t num_threads) {
  size_t extra = num_threads > 1 ? num_threads - 1 : 0;
  workers_.reserve(extra);
  for (size_t i = 0; i < extra; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

size_t ThreadPool::HardwareThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<size_t>(n);
}

void ThreadPool::DrainJob(Job* job) {
  const size_t n = job->n;
  while (true) {
    size_t i = job->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) break;
    (*job->fn)(i);
    if (job->completed.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
      // Last index done: wake the submitting thread if it is waiting.
      std::lock_guard<std::mutex> lock(mu_);
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen = 0;
  while (true) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      job = job_;  // may already be exhausted; DrainJob then no-ops
    }
    if (job != nullptr) DrainJob(job.get());
  }
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->n = n;
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = job;
    ++generation_;
  }
  // Wake only as many workers as there are indices left after the
  // caller takes its share — a 3-task round on an 8-wide pool should
  // not pay five context switches for workers with nothing to claim.
  size_t wake = n - 1;
  if (wake >= workers_.size()) {
    work_cv_.notify_all();
  } else {
    for (size_t i = 0; i < wake; ++i) work_cv_.notify_one();
  }
  // The caller is one of the execution threads: claim indices alongside
  // the workers instead of blocking for the whole job.
  DrainJob(job.get());
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] {
    return job->completed.load(std::memory_order_acquire) == n;
  });
  job_.reset();
}

}  // namespace seqlog
