#include "model/model_theory.h"

#include <utility>

#include "ast/validate.h"
#include "eval/executor.h"
#include "sequence/domain.h"

namespace seqlog {
namespace model {

namespace {
constexpr size_t kNoDelta = static_cast<size_t>(-1);
}  // namespace

ModelChecker::ModelChecker(Catalog* catalog, SequencePool* pool,
                           const eval::FunctionRegistry* registry)
    : catalog_(catalog), pool_(pool), registry_(registry) {}

Status ModelChecker::SetProgram(const ast::Program& program) {
  SEQLOG_RETURN_IF_ERROR(ast::Validate(program));
  std::vector<eval::ClausePlan> plans;
  plans.reserve(program.clauses.size());
  for (const ast::Clause& clause : program.clauses) {
    SEQLOG_ASSIGN_OR_RETURN(eval::ClausePlan plan,
                            eval::CompileClause(clause, catalog_, registry_));
    plans.push_back(std::move(plan));
  }
  program_ = program;
  plans_ = std::move(plans);
  return Status::Ok();
}

Result<std::unique_ptr<Database>> ModelChecker::ApplyTOnce(
    const Database& db, const Database& interp) const {
  // Definition 4: substitutions are based on the extended active domain
  // of I. Note D_ext(I), not D_ext(I union db): db atoms enter through
  // their (empty-bodied) clauses, whose heads are ground, so the result
  // is identical either way for ground databases.
  ExtendedDomain domain(pool_);
  for (PredId pred : interp.PredicatesWithRelations()) {
    const Relation* rel = interp.Get(pred);
    for (uint32_t i = 0; i < rel->size(); ++i) {
      for (SeqId arg : rel->RowAt(i)) {
        SEQLOG_RETURN_IF_ERROR(domain.AddRoot(arg));
      }
    }
  }

  auto out = std::make_unique<Database>(catalog_);
  // Database atoms are clauses with empty bodies: every one of them is in
  // T(I) unconditionally.
  for (PredId pred : db.PredicatesWithRelations()) {
    const Relation* rel = db.Get(pred);
    for (uint32_t i = 0; i < rel->size(); ++i) {
      out->Insert(pred, rel->RowAt(i));
    }
  }

  eval::EvalLimits limits;
  eval::EvalStats stats;
  eval::FireContext ctx;
  ctx.pool = pool_;
  ctx.domain = &domain;
  ctx.full = &interp;
  ctx.delta = nullptr;
  ctx.out = out.get();
  ctx.limits = &limits;
  ctx.stats = &stats;
  ctx.existing_facts = 0;
  for (const eval::ClausePlan& plan : plans_) {
    SEQLOG_RETURN_IF_ERROR(eval::FireClause(plan, kNoDelta, &ctx));
  }
  return out;
}

Result<ModelCheckResult> ModelChecker::IsModel(const Database& db,
                                               const Database& interp) const {
  SEQLOG_ASSIGN_OR_RETURN(std::unique_ptr<Database> t_of_i,
                          ApplyTOnce(db, interp));
  ModelCheckResult result;
  result.is_model = true;
  for (PredId pred : t_of_i->PredicatesWithRelations()) {
    const Relation* rel = t_of_i->Get(pred);
    for (uint32_t i = 0; i < rel->size(); ++i) {
      TupleView row = rel->RowAt(i);
      if (interp.Contains(pred, row)) continue;
      result.is_model = false;
      Violation v;
      v.pred = pred;
      v.tuple.assign(row.begin(), row.end());
      result.violation = std::move(v);
      return result;
    }
  }
  return result;
}

Result<bool> ModelChecker::Entails(const Database& db, PredId pred,
                                   const std::vector<SeqId>& tuple,
                                   const eval::EvalLimits& limits) const {
  eval::Evaluator evaluator(catalog_, pool_, registry_);
  SEQLOG_RETURN_IF_ERROR(evaluator.SetProgram(program_));
  eval::EvalOptions options;
  options.limits = limits;
  Database model(catalog_);
  eval::EvalOutcome outcome = evaluator.Evaluate(db, options, &model);
  if (!outcome.status.ok()) return outcome.status;
  return model.Contains(pred, TupleView(tuple.data(), tuple.size()));
}

}  // namespace model
}  // namespace seqlog
