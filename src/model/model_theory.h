// seqlog: model-theoretic semantics (Appendix A of the paper).
//
// An interpretation I is a *model* of a clause gamma iff for every
// substitution theta based on D_ext(I) and defined at gamma,
// theta(body) in I implies theta(head) in I (Definition 12). I models a
// program P and database db when it models every clause of P union db.
// Lemma 4 gives the operational test used here: I is a model iff
// T_{P,db}(I) is a subset of I. Corollary 5 states that the unique
// minimal model equals lfp(T_{P,db}); Corollary 6 reduces entailment
// P,db |= alpha to membership alpha in T_{P,db} ^ omega. This module
// makes all of those executable so tests can cross-check the fixpoint
// engine against the declarative semantics.
#ifndef SEQLOG_MODEL_MODEL_THEORY_H_
#define SEQLOG_MODEL_MODEL_THEORY_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ast/clause.h"
#include "base/result.h"
#include "eval/engine.h"
#include "eval/function_registry.h"
#include "sequence/sequence_pool.h"
#include "storage/database.h"

namespace seqlog {
namespace model {

/// Reason a model check failed: a ground head atom required by some
/// satisfied body but missing from the interpretation.
struct Violation {
  PredId pred = 0;
  std::vector<SeqId> tuple;
};

/// Outcome of ModelChecker::IsModel.
struct ModelCheckResult {
  bool is_model = false;
  /// One witness when is_model is false (the first missing head found).
  std::optional<Violation> violation;
};

/// Checks interpretations against the declarative semantics. The checker
/// compiles the program once; `registry` may be null for pure Sequence
/// Datalog. All methods treat `db` atoms as clauses with empty bodies
/// (Definition 4).
class ModelChecker {
 public:
  ModelChecker(Catalog* catalog, SequencePool* pool,
               const eval::FunctionRegistry* registry);

  /// Compiles `program`; replaces any previous program.
  Status SetProgram(const ast::Program& program);

  /// Applies the T-operator once: returns T_{P,db}(I) as a fresh
  /// database. The domain of substitutions is D_ext(I) computed from
  /// `interp` (plus db, which Definition 4 folds into the clause set).
  Result<std::unique_ptr<Database>> ApplyTOnce(const Database& db,
                                               const Database& interp) const;

  /// Definition 12 via Lemma 4: `interp` models P and db iff
  /// T_{P,db}(interp) is contained in interp.
  Result<ModelCheckResult> IsModel(const Database& db,
                                   const Database& interp) const;

  /// Corollary 6: P,db |= pred(tuple) iff the atom is in the least
  /// fixpoint. Evaluates with `limits` (finiteness is undecidable, so the
  /// check is budgeted; budget exhaustion propagates as an error).
  Result<bool> Entails(const Database& db, PredId pred,
                       const std::vector<SeqId>& tuple,
                       const eval::EvalLimits& limits = {}) const;

 private:
  Catalog* catalog_;
  SequencePool* pool_;
  const eval::FunctionRegistry* registry_;
  ast::Program program_;
  std::vector<eval::ClausePlan> plans_;
};

}  // namespace model
}  // namespace seqlog

#endif  // SEQLOG_MODEL_MODEL_THEORY_H_
