#include "tm/step_transducer.h"

#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "base/string_util.h"
#include "transducer/builder.h"

namespace seqlog {
namespace tm {

namespace {

using transducer::HeadMove;
using transducer::Output;
using transducer::StateId;
using transducer::SymPattern;
using transducer::TransducerBuilder;

constexpr size_t kFuel1 = 0;
constexpr size_t kFuel2 = 1;
constexpr size_t kConfig = 2;

/// Abstract machine state of the step transducer.
struct StepState {
  enum class Mode { kCopy, kSawQ, kDone };
  Mode mode = Mode::kCopy;
  std::optional<Symbol> hold;        ///< lagged, not-yet-emitted symbol
  Symbol q = 0;                      ///< kSawQ: the TM state just read
  std::vector<Symbol> pending;       ///< symbols to flush (<= 2)
  bool just_moved_right = false;     ///< append blank if config ends now

  std::string Key() const {
    std::string k = StrCat("m", static_cast<int>(mode));
    k += hold.has_value() ? StrCat("_h", *hold) : "_h-";
    k += StrCat("_q", q, "_p");
    for (Symbol s : pending) k += StrCat(s, ".");
    k += just_moved_right ? "_j1" : "_j0";
    return k;
  }
};

/// Generates transducer states/transitions reachable from the initial
/// step-state by breadth-first closure.
class Generator {
 public:
  Generator(const TuringMachine& tm, TransducerBuilder* builder)
      : tm_(tm), builder_(builder) {}

  Status Run() {
    StepState init;
    StateId s0 = Visit(init);
    builder_->SetInitial(s0);
    while (!queue_.empty()) {
      StepState state = queue_.front();
      queue_.pop_front();
      Expand(state);
    }
    return Status::Ok();
  }

 private:
  StateId Visit(const StepState& state) {
    std::string key = state.Key();
    auto it = ids_.find(key);
    if (it != ids_.end()) return it->second;
    StateId id = builder_->State(key);
    ids_.emplace(key, id);
    queue_.push_back(state);
    return id;
  }

  /// Adds a "consume one fuel symbol" pair of rows (tape 1, falling back
  /// to tape 2) firing `out` and entering `to`. Used for pending flushes
  /// and end-of-config emissions, which must not consume config symbols.
  void AddFuelRows(StateId from, SymPattern config_pat, Output out,
                   StateId to) {
    builder_->Add(from,
                  {SymPattern::Any(), SymPattern::Wildcard(), config_pat},
                  to,
                  {HeadMove::kAdvance, HeadMove::kStay, HeadMove::kStay},
                  out);
    builder_->Add(
        from, {SymPattern::Marker(), SymPattern::Any(), config_pat}, to,
        {HeadMove::kStay, HeadMove::kAdvance, HeadMove::kStay}, out);
  }

  void Expand(const StepState& state) {
    StateId from = Visit(state);

    // 1. Flush pending output symbols, consuming fuel.
    if (!state.pending.empty()) {
      StepState next = state;
      Symbol front = next.pending.front();
      next.pending.erase(next.pending.begin());
      AddFuelRows(from, SymPattern::Wildcard(), Output::Emit(front),
                  Visit(next));
      return;
    }

    // 2. Done: drain all tapes silently.
    if (state.mode == StepState::Mode::kDone) {
      builder_->Add(
          from,
          {SymPattern::Any(), SymPattern::Wildcard(),
           SymPattern::Wildcard()},
          from, {HeadMove::kAdvance, HeadMove::kStay, HeadMove::kStay},
          Output::Epsilon());
      builder_->Add(
          from,
          {SymPattern::Marker(), SymPattern::Any(), SymPattern::Wildcard()},
          from, {HeadMove::kStay, HeadMove::kAdvance, HeadMove::kStay},
          Output::Epsilon());
      builder_->Add(
          from,
          {SymPattern::Marker(), SymPattern::Marker(), SymPattern::Any()},
          from, {HeadMove::kStay, HeadMove::kStay, HeadMove::kAdvance},
          Output::Epsilon());
      return;
    }

    // 3. Just read the (non-halting) state symbol: apply delta.
    if (state.mode == StepState::Mode::kSawQ) {
      for (Symbol a : tm_.tape_alphabet) {
        auto it = tm_.delta.find({state.q, a});
        if (it == tm_.delta.end()) continue;  // stuck (partial machine)
        const TmAction& act = it->second;
        std::vector<Symbol> emit_list;
        StepState next;
        next.mode = StepState::Mode::kCopy;
        switch (act.move) {
          case TmMove::kStay:
            // ... hold q a ...  ->  ... hold q' b ...
            if (state.hold) emit_list.push_back(*state.hold);
            emit_list.push_back(act.next_state);
            emit_list.push_back(act.write);
            break;
          case TmMove::kRight:
            // ... hold q a ...  ->  ... hold b q' ...
            if (state.hold) emit_list.push_back(*state.hold);
            emit_list.push_back(act.write);
            emit_list.push_back(act.next_state);
            next.just_moved_right = true;
            break;
          case TmMove::kLeft:
            // ... hold q a ...  ->  ... q' hold b ...
            if (!state.hold.has_value()) continue;  // cannot occur
            emit_list.push_back(act.next_state);
            emit_list.push_back(*state.hold);
            emit_list.push_back(act.write);
            break;
        }
        Symbol first = emit_list.front();
        next.pending.assign(emit_list.begin() + 1, emit_list.end());
        builder_->Add(from,
                      {SymPattern::Wildcard(), SymPattern::Wildcard(),
                       SymPattern::Exact(a)},
                      Visit(next),
                      {HeadMove::kStay, HeadMove::kStay,
                       HeadMove::kAdvance},
                      Output::Emit(first));
      }
      return;
    }

    // 4. Copy mode.
    //    Non-halting state symbol: remember it, emit nothing yet.
    for (Symbol q : tm_.states) {
      if (tm_.halting_states.count(q) > 0) continue;
      StepState next;
      next.mode = StepState::Mode::kSawQ;
      next.q = q;
      next.hold = state.hold;
      builder_->Add(from,
                    {SymPattern::Wildcard(), SymPattern::Wildcard(),
                     SymPattern::Exact(q)},
                    Visit(next),
                    {HeadMove::kStay, HeadMove::kStay, HeadMove::kAdvance},
                    Output::Epsilon());
    }
    //    Ordinary symbols (and halting states): lagged copy.
    std::vector<Symbol> plain(tm_.tape_alphabet.begin(),
                              tm_.tape_alphabet.end());
    for (Symbol q : tm_.halting_states) plain.push_back(q);
    for (Symbol s : plain) {
      StepState next;
      next.mode = StepState::Mode::kCopy;
      next.hold = s;
      Output out = state.hold ? Output::Emit(*state.hold)
                              : Output::Epsilon();
      builder_->Add(from,
                    {SymPattern::Wildcard(), SymPattern::Wildcard(),
                     SymPattern::Exact(s)},
                    Visit(next),
                    {HeadMove::kStay, HeadMove::kStay, HeadMove::kAdvance},
                    out);
    }
    //    End of configuration.
    StepState done;
    done.mode = StepState::Mode::kDone;
    if (state.just_moved_right) {
      // The head moved past the rightmost cell: it now scans a fresh
      // blank (the paper's "append a blank" trick).
      AddFuelRows(from, SymPattern::Marker(), Output::Emit(tm_.blank),
                  Visit(done));
    } else if (state.hold.has_value()) {
      AddFuelRows(from, SymPattern::Marker(), Output::Emit(*state.hold),
                  Visit(done));
    } else {
      AddFuelRows(from, SymPattern::Marker(), Output::Epsilon(),
                  Visit(done));
    }
  }

  const TuringMachine& tm_;
  TransducerBuilder* builder_;
  std::map<std::string, StateId> ids_;
  std::deque<StepState> queue_;
};

}  // namespace

Result<std::shared_ptr<const transducer::Transducer>> MakeStepTransducer(
    const TuringMachine& machine, std::string name) {
  SEQLOG_RETURN_IF_ERROR(machine.Validate());
  TransducerBuilder builder(std::move(name), 3);
  Generator gen(machine, &builder);
  SEQLOG_RETURN_IF_ERROR(gen.Run());
  return builder.Build();
}

}  // namespace tm
}  // namespace seqlog
