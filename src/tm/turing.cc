#include "tm/turing.h"

#include <algorithm>

#include "base/string_util.h"

namespace seqlog {
namespace tm {

Status TuringMachine::Validate() const {
  if (states.count(initial_state) == 0) {
    return Status::InvalidArgument("initial state not in state set");
  }
  for (Symbol h : halting_states) {
    if (states.count(h) == 0) {
      return Status::InvalidArgument("halting state not in state set");
    }
  }
  if (tape_alphabet.count(blank) == 0 ||
      tape_alphabet.count(left_marker) == 0) {
    return Status::InvalidArgument(
        "blank and left marker must be in the tape alphabet");
  }
  for (Symbol s : states) {
    if (tape_alphabet.count(s) > 0) {
      return Status::InvalidArgument(
          "states and tape symbols must be disjoint (configurations mix "
          "them in one string)");
    }
  }
  for (const auto& [key, action] : delta) {
    const auto& [state, scanned] = key;
    if (states.count(state) == 0 || tape_alphabet.count(scanned) == 0 ||
        states.count(action.next_state) == 0 ||
        tape_alphabet.count(action.write) == 0) {
      return Status::InvalidArgument("transition over unknown symbols");
    }
    if (halting_states.count(state) > 0) {
      return Status::InvalidArgument("transition out of a halting state");
    }
    if (scanned == left_marker &&
        (action.write != left_marker || action.move == TmMove::kLeft)) {
      return Status::InvalidArgument(
          "the machine must preserve the left-end marker and never move "
          "left of it");
    }
    if (scanned != left_marker && action.write == left_marker) {
      return Status::InvalidArgument(
          "the left-end marker may not be written elsewhere");
    }
  }
  return Status::Ok();
}

Result<TmRunResult> RunMachine(const TuringMachine& machine, SeqView input,
                               size_t max_steps) {
  TmRunResult r;
  r.tape.push_back(machine.left_marker);
  r.tape.insert(r.tape.end(), input.begin(), input.end());
  r.head = 0;
  r.final_state = machine.initial_state;
  while (machine.halting_states.count(r.final_state) == 0) {
    if (r.steps >= max_steps) {
      return Status::ResourceExhausted(
          StrCat("machine '", machine.name, "' did not halt within ",
                 max_steps, " steps"));
    }
    Symbol scanned = r.tape[r.head];
    auto it = machine.delta.find({r.final_state, scanned});
    if (it == machine.delta.end()) {
      return Status::FailedPrecondition(
          StrCat("machine '", machine.name,
                 "' has no transition for state+symbol at step ",
                 r.steps));
    }
    const TmAction& a = it->second;
    r.tape[r.head] = a.write;
    r.final_state = a.next_state;
    switch (a.move) {
      case TmMove::kLeft:
        SEQLOG_CHECK(r.head > 0) << "moved left of the marker";
        --r.head;
        break;
      case TmMove::kRight:
        ++r.head;
        if (r.head == r.tape.size()) r.tape.push_back(machine.blank);
        break;
      case TmMove::kStay:
        break;
    }
    ++r.steps;
  }
  return r;
}

std::vector<Symbol> ExtractOutput(const TuringMachine& machine,
                                  const TmRunResult& result) {
  std::vector<Symbol> out(result.tape.begin() + 1, result.tape.end());
  while (!out.empty() && out.back() == machine.blank) out.pop_back();
  return out;
}

std::vector<Symbol> EncodeConfig(const TuringMachine& machine,
                                 SeqView tape, size_t head, Symbol state) {
  (void)machine;
  std::vector<Symbol> out(tape.begin(), tape.begin() + head);
  out.push_back(state);
  out.insert(out.end(), tape.begin() + head, tape.end());
  return out;
}

std::vector<Symbol> InitialConfig(const TuringMachine& machine,
                                  SeqView input) {
  std::vector<Symbol> out;
  out.push_back(machine.initial_state);
  out.push_back(machine.left_marker);
  out.insert(out.end(), input.begin(), input.end());
  return out;
}

std::vector<Symbol> StepConfig(const TuringMachine& machine,
                               std::span<const Symbol> config) {
  // Locate the state symbol.
  size_t qpos = config.size();
  for (size_t i = 0; i < config.size(); ++i) {
    if (machine.states.count(config[i]) > 0) {
      qpos = i;
      break;
    }
  }
  std::vector<Symbol> out(config.begin(), config.end());
  if (qpos == config.size() || qpos + 1 >= config.size()) return out;
  Symbol q = config[qpos];
  if (machine.halting_states.count(q) > 0) return out;
  Symbol scanned = config[qpos + 1];
  auto it = machine.delta.find({q, scanned});
  if (it == machine.delta.end()) return out;
  const TmAction& a = it->second;
  switch (a.move) {
    case TmMove::kStay:
      out[qpos] = a.next_state;
      out[qpos + 1] = a.write;
      break;
    case TmMove::kRight:
      out[qpos] = a.write;
      out[qpos + 1] = a.next_state;
      // Swap wrote [.. b q' rest..]; if q' landed at the end, the head
      // scans a fresh blank cell.
      if (qpos + 2 == out.size()) out.push_back(machine.blank);
      break;
    case TmMove::kLeft: {
      SEQLOG_CHECK(qpos > 0) << "left move at the left edge";
      Symbol left_sym = out[qpos - 1];
      out[qpos - 1] = a.next_state;
      out[qpos] = left_sym;
      out[qpos + 1] = a.write;
      break;
    }
  }
  return out;
}

std::vector<Symbol> DecodeConfig(const TuringMachine& machine,
                                 std::span<const Symbol> config) {
  std::vector<Symbol> out;
  for (Symbol s : config) {
    if (machine.states.count(s) > 0 || s == machine.left_marker) continue;
    out.push_back(s);
  }
  while (!out.empty() && out.back() == machine.blank) out.pop_back();
  return out;
}

}  // namespace tm
}  // namespace seqlog
