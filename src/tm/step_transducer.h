// seqlog: compiling a Turing machine step into a base transducer.
//
// The Theorem 5 construction needs an *ordinary* (order-1) transducer
// that maps an encoded TM configuration to its successor configuration.
// The machine built here has three inputs:
//
//     (fuel1, fuel2, config)
//
// matching its role as the subtransducer of the 2-input TM-driver: it
// receives copies of the driver's two inputs (the step-counter sequence
// and the initial configuration — consumed only as step fuel) plus the
// driver's current output, which is the current configuration.
//
// Construction: the machine copies the configuration left to right with
// a one-symbol lag (so left-moves can inject the state symbol before the
// already-read cell), rewrites the state/scanned pair according to delta,
// buffering at most two pending output symbols which it flushes while
// consuming fuel, and appends a blank when the head moves right past the
// rightmost cell. Halting configurations are copied verbatim, so extra
// driver steps after the TM halts are harmless (the step transducer is
// idempotent on halted configurations).
#ifndef SEQLOG_TM_STEP_TRANSDUCER_H_
#define SEQLOG_TM_STEP_TRANSDUCER_H_

#include "tm/turing.h"
#include "transducer/transducer.h"

namespace seqlog {
namespace tm {

/// Builds the order-1 configuration-step transducer of `machine`.
Result<std::shared_ptr<const transducer::Transducer>> MakeStepTransducer(
    const TuringMachine& machine, std::string name);

}  // namespace tm
}  // namespace seqlog

#endif  // SEQLOG_TM_STEP_TRANSDUCER_H_
