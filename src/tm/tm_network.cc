#include "tm/tm_network.h"

#include <functional>

#include "base/string_util.h"
#include "tm/step_transducer.h"
#include "transducer/builder.h"
#include "transducer/library.h"

namespace seqlog {
namespace tm {

namespace {

using transducer::HeadMove;
using transducer::InputSource;
using transducer::Output;
using transducer::StateId;
using transducer::SymPattern;
using transducer::TransducerBuilder;
using transducer::TransducerPtr;

/// 2-input machine computing s1 s2 in2: prepends two fixed symbols to
/// input 2, paying with two symbols of input 1 (so |in1| >= 2).
Result<TransducerPtr> MakePrependTwo(std::string name, Symbol s1,
                                     Symbol s2) {
  TransducerBuilder b(std::move(name), 2);
  StateId p0 = b.State("emit1");
  StateId p1 = b.State("emit2");
  StateId p2 = b.State("copy");
  b.Add(p0, {SymPattern::Any(), SymPattern::Wildcard()}, p1,
        {HeadMove::kAdvance, HeadMove::kStay}, Output::Emit(s1));
  b.Add(p1, {SymPattern::Any(), SymPattern::Wildcard()}, p2,
        {HeadMove::kAdvance, HeadMove::kStay}, Output::Emit(s2));
  b.Add(p2, {SymPattern::Wildcard(), SymPattern::Any()}, p2,
        {HeadMove::kStay, HeadMove::kAdvance}, Output::Echo(1));
  b.Add(p2, {SymPattern::Any(), SymPattern::Marker()}, p2,
        {HeadMove::kAdvance, HeadMove::kStay}, Output::Epsilon());
  return b.Build();
}

}  // namespace

Result<TransducerPtr> MakeInitConfig(const TuringMachine& machine,
                                     std::string name) {
  // Step 1: copy x into the output; step 2: prepend "q0 |-"; then drain.
  SEQLOG_ASSIGN_OR_RETURN(TransducerPtr copy2,
                          transducer::MakeAppend(StrCat(name, "_copy"), 2));
  SEQLOG_ASSIGN_OR_RETURN(
      TransducerPtr prepend,
      MakePrependTwo(StrCat(name, "_prepend"), machine.initial_state,
                     machine.left_marker));
  TransducerBuilder b(std::move(name), 1);
  StateId i0 = b.State("copy_input");
  StateId i1 = b.State("prepend");
  StateId i2 = b.State("drain");
  b.Add(i0, {SymPattern::Any()}, i1, {HeadMove::kAdvance},
        Output::Call(copy2));
  b.Add(i1, {SymPattern::Any()}, i2, {HeadMove::kAdvance},
        Output::Call(prepend));
  b.Add(i2, {SymPattern::Any()}, i2, {HeadMove::kAdvance},
        Output::Epsilon());
  return b.Build();
}

Result<TransducerPtr> MakeTmDriver(const TuringMachine& machine,
                                   std::string name) {
  // Inputs: (counter, initial configuration). The first counter symbol
  // loads the initial configuration into the output (a 3-input
  // projection subtransducer); each further counter symbol applies one
  // TM step to the output.
  SEQLOG_ASSIGN_OR_RETURN(
      TransducerPtr project,
      transducer::MakeProject(StrCat(name, "_load"), 3, /*keep=*/1));
  SEQLOG_ASSIGN_OR_RETURN(TransducerPtr step,
                          MakeStepTransducer(machine, StrCat(name, "_step")));
  TransducerBuilder b(std::move(name), 2);
  StateId d0 = b.State("load");
  StateId d1 = b.State("run");
  b.Add(d0, {SymPattern::Any(), SymPattern::Wildcard()}, d1,
        {HeadMove::kAdvance, HeadMove::kStay}, Output::Call(project));
  b.Add(d1, {SymPattern::Any(), SymPattern::Wildcard()}, d1,
        {HeadMove::kAdvance, HeadMove::kStay}, Output::Call(step));
  b.Add(d1, {SymPattern::Marker(), SymPattern::Any()}, d1,
        {HeadMove::kStay, HeadMove::kAdvance}, Output::Epsilon());
  return b.Build();
}

namespace {

/// Shared Theorem 5 / Theorem 6 assembly; `counter_stage` builds one
/// counter-growing transducer (squaring for Theorem 5, double
/// exponentiation for Theorem 6).
Result<std::shared_ptr<const transducer::TransducerNetwork>>
MakeTmNetworkImpl(
    const TuringMachine& machine, std::string name, size_t stages,
    const std::function<Result<TransducerPtr>(std::string)>& counter_stage) {
  SEQLOG_RETURN_IF_ERROR(machine.Validate());
  auto network = std::make_shared<transducer::TransducerNetwork>(
      name, /*num_network_inputs=*/1);

  SEQLOG_ASSIGN_OR_RETURN(TransducerPtr init,
                          MakeInitConfig(machine, StrCat(name, "_init")));
  SEQLOG_ASSIGN_OR_RETURN(size_t init_node,
                          network->AddNode(init, {InputSource::FromNetwork(0)}));

  // Counter chain: one stage per requested growth step.
  InputSource counter_src = InputSource::FromNetwork(0);
  for (size_t i = 0; i < stages; ++i) {
    SEQLOG_ASSIGN_OR_RETURN(TransducerPtr stage,
                            counter_stage(StrCat(name, "_counter", i + 1)));
    SEQLOG_ASSIGN_OR_RETURN(size_t node,
                            network->AddNode(stage, {counter_src}));
    counter_src = InputSource::FromNode(node);
  }

  SEQLOG_ASSIGN_OR_RETURN(TransducerPtr driver,
                          MakeTmDriver(machine, StrCat(name, "_driver")));
  SEQLOG_ASSIGN_OR_RETURN(
      size_t run_node,
      network->AddNode(driver,
                       {counter_src, InputSource::FromNode(init_node)}));

  std::set<Symbol> erase(machine.states.begin(), machine.states.end());
  erase.insert(machine.left_marker);
  erase.insert(machine.blank);
  SEQLOG_ASSIGN_OR_RETURN(
      TransducerPtr decode,
      transducer::MakeErase(StrCat(name, "_decode"), erase));
  SEQLOG_ASSIGN_OR_RETURN(
      size_t decode_node,
      network->AddNode(decode, {InputSource::FromNode(run_node)}));
  SEQLOG_RETURN_IF_ERROR(network->SetOutput(decode_node));
  return std::shared_ptr<const transducer::TransducerNetwork>(
      std::move(network));
}

}  // namespace

Result<std::shared_ptr<const transducer::TransducerNetwork>> MakeTmNetwork(
    const TuringMachine& machine, std::string name, size_t squarings) {
  return MakeTmNetworkImpl(machine, std::move(name), squarings,
                           [](std::string stage_name) {
                             return transducer::MakeSquare(
                                 std::move(stage_name));
                           });
}

Result<std::shared_ptr<const transducer::TransducerNetwork>>
MakeElementaryTmNetwork(const TuringMachine& machine, std::string name,
                        size_t exponentiations) {
  return MakeTmNetworkImpl(machine, std::move(name), exponentiations,
                           [](std::string stage_name) {
                             return transducer::MakeDoubleExp(
                                 std::move(stage_name));
                           });
}

}  // namespace tm
}  // namespace seqlog
