#include "tm/machines.h"

namespace seqlog {
namespace tm {

namespace {

Symbol S(SymbolTable* symbols, std::string_view name) {
  return symbols->Intern(name);
}

}  // namespace

TuringMachine MakeUnaryDouble(SymbolTable* symbols) {
  TuringMachine m;
  m.name = "unary_double";
  Symbol one = S(symbols, "1");
  Symbol x = S(symbols, "X");
  Symbol y = S(symbols, "Y");
  Symbol blank = S(symbols, "_");
  Symbol marker = S(symbols, "|-");
  Symbol q0 = S(symbols, "q0");
  Symbol qscan = S(symbols, "qscan");
  Symbol qfwd = S(symbols, "qfwd");
  Symbol qback = S(symbols, "qback");
  Symbol qrl = S(symbols, "qrl");
  Symbol qrr = S(symbols, "qrr");
  Symbol qh = S(symbols, "qh");

  m.initial_state = q0;
  m.blank = blank;
  m.left_marker = marker;
  m.states = {q0, qscan, qfwd, qback, qrl, qrr, qh};
  m.halting_states = {qh};
  m.tape_alphabet = {one, x, y, blank, marker};

  // q0: step off the marker.
  m.delta[{q0, marker}] = {qscan, marker, TmMove::kRight};
  // qscan: at the leftmost unprocessed cell. 1 -> mark X and run right;
  // Y -> all ones processed, restore; blank -> empty input, halt.
  m.delta[{qscan, one}] = {qfwd, x, TmMove::kRight};
  m.delta[{qscan, y}] = {qrl, y, TmMove::kLeft};
  m.delta[{qscan, blank}] = {qh, blank, TmMove::kStay};
  // qfwd: run right over 1s and Ys to the first blank; append a Y.
  m.delta[{qfwd, one}] = {qfwd, one, TmMove::kRight};
  m.delta[{qfwd, y}] = {qfwd, y, TmMove::kRight};
  m.delta[{qfwd, blank}] = {qback, y, TmMove::kLeft};
  // qback: run left to the X just marked, then step right.
  m.delta[{qback, one}] = {qback, one, TmMove::kLeft};
  m.delta[{qback, y}] = {qback, y, TmMove::kLeft};
  m.delta[{qback, x}] = {qscan, x, TmMove::kRight};
  // qrl: restore Xs to 1s moving left to the marker.
  m.delta[{qrl, x}] = {qrl, one, TmMove::kLeft};
  m.delta[{qrl, marker}] = {qrr, marker, TmMove::kRight};
  // qrr: move right converting Ys to 1s; halt at the blank.
  m.delta[{qrr, one}] = {qrr, one, TmMove::kRight};
  m.delta[{qrr, y}] = {qrr, one, TmMove::kRight};
  m.delta[{qrr, blank}] = {qh, blank, TmMove::kStay};
  return m;
}

TuringMachine MakeBinaryIncrement(SymbolTable* symbols) {
  TuringMachine m;
  m.name = "binary_increment";
  Symbol zero = S(symbols, "0");
  Symbol one = S(symbols, "1");
  Symbol blank = S(symbols, "_");
  Symbol marker = S(symbols, "|-");
  Symbol q0 = S(symbols, "q0");
  Symbol qright = S(symbols, "qright");
  Symbol qcarry = S(symbols, "qcarry");
  Symbol qh = S(symbols, "qh");

  m.initial_state = q0;
  m.blank = blank;
  m.left_marker = marker;
  m.states = {q0, qright, qcarry, qh};
  m.halting_states = {qh};
  m.tape_alphabet = {zero, one, blank, marker};

  m.delta[{q0, marker}] = {qright, marker, TmMove::kRight};
  // Run to the rightmost digit.
  m.delta[{qright, zero}] = {qright, zero, TmMove::kRight};
  m.delta[{qright, one}] = {qright, one, TmMove::kRight};
  m.delta[{qright, blank}] = {qcarry, blank, TmMove::kLeft};
  // Propagate the carry leftwards.
  m.delta[{qcarry, one}] = {qcarry, zero, TmMove::kLeft};
  m.delta[{qcarry, zero}] = {qh, one, TmMove::kStay};
  // A leading 0 is guaranteed, but all-ones inputs just stop (the
  // result then needs one more digit than the input width provides).
  m.delta[{qcarry, marker}] = {qh, marker, TmMove::kStay};
  // Empty input: qright sees the blank right after the marker; qcarry
  // then sees the marker and halts.
  return m;
}

TuringMachine MakeBitFlip(SymbolTable* symbols) {
  TuringMachine m;
  m.name = "bit_flip";
  Symbol zero = S(symbols, "0");
  Symbol one = S(symbols, "1");
  Symbol blank = S(symbols, "_");
  Symbol marker = S(symbols, "|-");
  Symbol q0 = S(symbols, "q0");
  Symbol qrun = S(symbols, "qrun");
  Symbol qh = S(symbols, "qh");

  m.initial_state = q0;
  m.blank = blank;
  m.left_marker = marker;
  m.states = {q0, qrun, qh};
  m.halting_states = {qh};
  m.tape_alphabet = {zero, one, blank, marker};

  m.delta[{q0, marker}] = {qrun, marker, TmMove::kRight};
  m.delta[{qrun, zero}] = {qrun, one, TmMove::kRight};
  m.delta[{qrun, one}] = {qrun, zero, TmMove::kRight};
  m.delta[{qrun, blank}] = {qh, blank, TmMove::kStay};
  return m;
}

TuringMachine MakeBinaryCountUp(SymbolTable* symbols) {
  TuringMachine m;
  m.name = "binary_count_up";
  Symbol zero = S(symbols, "0");
  Symbol one = S(symbols, "1");
  Symbol blank = S(symbols, "_");
  Symbol marker = S(symbols, "|-");
  Symbol q0 = S(symbols, "q0");
  Symbol qcheck = S(symbols, "qcheck");
  Symbol qseek = S(symbols, "qseek");
  Symbol qinc = S(symbols, "qinc");
  Symbol qrewind = S(symbols, "qrewind");
  Symbol qh = S(symbols, "qh");

  m.initial_state = q0;
  m.blank = blank;
  m.left_marker = marker;
  m.states = {q0, qcheck, qseek, qinc, qrewind, qh};
  m.halting_states = {qh};
  m.tape_alphabet = {zero, one, blank, marker};

  m.delta[{q0, marker}] = {qcheck, marker, TmMove::kRight};
  // qcheck: scan right looking for a 0. All ones (blank reached): halt.
  m.delta[{qcheck, one}] = {qcheck, one, TmMove::kRight};
  m.delta[{qcheck, zero}] = {qseek, zero, TmMove::kRight};
  m.delta[{qcheck, blank}] = {qh, blank, TmMove::kStay};
  // qseek: run right to the blank, then step left onto the LSB.
  m.delta[{qseek, zero}] = {qseek, zero, TmMove::kRight};
  m.delta[{qseek, one}] = {qseek, one, TmMove::kRight};
  m.delta[{qseek, blank}] = {qinc, blank, TmMove::kLeft};
  // qinc: binary increment with carry, moving left. A 0 absorbs the
  // carry (there is one: qcheck found it). The marker case cannot arise
  // but halting there keeps delta safe.
  m.delta[{qinc, one}] = {qinc, zero, TmMove::kLeft};
  m.delta[{qinc, zero}] = {qrewind, one, TmMove::kLeft};
  m.delta[{qinc, marker}] = {qh, marker, TmMove::kStay};
  // qrewind: back to the marker, then re-check.
  m.delta[{qrewind, zero}] = {qrewind, zero, TmMove::kLeft};
  m.delta[{qrewind, one}] = {qrewind, one, TmMove::kLeft};
  m.delta[{qrewind, marker}] = {qcheck, marker, TmMove::kRight};
  return m;
}

}  // namespace tm
}  // namespace seqlog
