// seqlog: a small library of Turing machines for the Theorem 1 / 5
// reproductions.
#ifndef SEQLOG_TM_MACHINES_H_
#define SEQLOG_TM_MACHINES_H_

#include "tm/turing.h"

namespace seqlog {
namespace tm {

/// 1^n -> 1^{2n}. Quadratic time: repeatedly marks a 1 and appends a
/// fresh 1 at the right end, then restores markers. A genuinely
/// super-linear machine, so its Theorem 5 network needs a counter of
/// length >= c n^2.
TuringMachine MakeUnaryDouble(SymbolTable* symbols);

/// Binary increment for fixed-width inputs with a leading 0 (e.g.
/// 0111 -> 1000), avoiding left-edge insertion. Linear time.
TuringMachine MakeBinaryIncrement(SymbolTable* symbols);

/// Flips every bit (0 <-> 1). Linear time; the simplest sanity machine.
TuringMachine MakeBitFlip(SymbolTable* symbols);

/// Binary count-up: repeatedly increments the tape (LSB rightmost) until
/// it is all ones, then halts. From 0^n this takes Theta(n 2^n) steps —
/// a genuinely exponential-time machine, used by the Theorem 6
/// reproduction (order-3 networks express elementary time; its counter
/// must be hyperexponential, not polynomial).
TuringMachine MakeBinaryCountUp(SymbolTable* symbols);

}  // namespace tm
}  // namespace seqlog

#endif  // SEQLOG_TM_MACHINES_H_
