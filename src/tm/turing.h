// seqlog: deterministic single-tape Turing machines.
//
// Used by the Theorem 1 construction (simulating an arbitrary TM in
// Sequence Datalog) and by the Theorem 5 construction (simulating a
// polynomial-time TM with an order-2 transducer network). Conventions
// follow the paper's proof of Theorem 1: the tape starts with a left-end
// marker that is never overwritten and never crossed; the head starts on
// the marker in the initial state; moving right past the rightmost cell
// extends the tape with a blank.
//
// Machine configurations are encoded as symbol strings
//     left  state  scanned right
// i.e. the state symbol is written immediately before the scanned cell
// (the Theorem 5 encoding b1..b_{i-1} q b_i .. b_n).
#ifndef SEQLOG_TM_TURING_H_
#define SEQLOG_TM_TURING_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "base/result.h"
#include "sequence/sequence_pool.h"
#include "sequence/symbol_table.h"

namespace seqlog {
namespace tm {

enum class TmMove { kLeft, kRight, kStay };

struct TmAction {
  Symbol next_state;
  Symbol write;
  TmMove move;
};

/// A deterministic Turing machine over interned symbols. States and tape
/// symbols share the SymbolTable (configurations mix them in one string).
struct TuringMachine {
  std::string name;
  Symbol initial_state;
  Symbol blank;
  Symbol left_marker;
  std::set<Symbol> states;
  std::set<Symbol> halting_states;
  std::set<Symbol> tape_alphabet;  ///< includes blank and left marker
  std::map<std::pair<Symbol, Symbol>, TmAction> delta;

  /// Validates internal consistency (states/symbols disjoint, transitions
  /// well formed, marker preserved: delta never writes over the marker
  /// with something else nor moves left from it).
  Status Validate() const;
};

/// Result of running a machine.
struct TmRunResult {
  std::vector<Symbol> tape;  ///< including the left marker
  size_t head = 0;
  Symbol final_state = 0;
  size_t steps = 0;
};

/// Runs `machine` on `input` (tape alphabet symbols, no marker) for at
/// most `max_steps` steps. kResourceExhausted if it does not halt in
/// time; kFailedPrecondition if delta is undefined at a non-halting
/// configuration.
Result<TmRunResult> RunMachine(const TuringMachine& machine, SeqView input,
                               size_t max_steps);

/// The machine's tape output: the tape minus the left marker and
/// trailing blanks.
std::vector<Symbol> ExtractOutput(const TuringMachine& machine,
                                  const TmRunResult& result);

/// Encodes a configuration as left ++ [state] ++ [scanned] ++ right.
std::vector<Symbol> EncodeConfig(const TuringMachine& machine,
                                 SeqView tape, size_t head, Symbol state);

/// The initial configuration for `input`: state marker input.
std::vector<Symbol> InitialConfig(const TuringMachine& machine,
                                  SeqView input);

/// Applies one TM step to an encoded configuration (reference
/// implementation used to cross-check the step transducer). A halted or
/// malformed configuration is returned unchanged.
std::vector<Symbol> StepConfig(const TuringMachine& machine,
                               std::span<const Symbol> config);

/// Decodes the tape output from an encoded configuration: drops the
/// state symbol, the marker, and trailing blanks.
std::vector<Symbol> DecodeConfig(const TuringMachine& machine,
                                 std::span<const Symbol> config);

}  // namespace tm
}  // namespace seqlog

#endif  // SEQLOG_TM_TURING_H_
