// seqlog: the Theorem 7 construction — compiling Transducer Datalog into
// plain Sequence Datalog.
//
// For every transducer T mentioned in the program, the translation emits
//   * delta facts encoding T's ground transition table (the pattern
//     machine is expanded over the database alphabet plus every symbol
//     any machine in the call tree can write);
//   * comp_T rules simulating partial computations (one rule per
//     non-empty head-move combination), with the consumed prefixes held
//     as indexed terms X[1:N];
//   * input_T rules feeding T's inputs (marker appended) from every rule
//     body that invokes T — this is what preserves finiteness: the
//     simulation only runs on inputs the original program actually
//     supplies (the key point in the paper's proof);
//   * p_T extraction rules, plus the subtransducer wiring rules
//     (gamma'_4 / gamma'_5) for higher-order machines;
//   * the user's rules with each @T(s...) term replaced by a fresh
//     variable bound by a p_T body atom (nested transducer terms are
//     flattened innermost-first).
//
// Deviation from the paper's (slightly sloppy) Appendix rules, documented
// in DESIGN.md: markers are appended exactly once — a subtransducer
// reuses the caller's already-marked input tapes and only the output copy
// gets a fresh marker — and completion is detected by matching consumed
// prefixes against X[1:end-1] (everything but the marker), since
// Definition 7 machines halt *scanning* the marker, never past it.
#ifndef SEQLOG_TRANSLATE_TD_TO_SD_H_
#define SEQLOG_TRANSLATE_TD_TO_SD_H_

#include <span>
#include <string>

#include "ast/clause.h"
#include "base/result.h"
#include "eval/function_registry.h"
#include "sequence/sequence_pool.h"
#include "sequence/symbol_table.h"
#include "transducer/transducer.h"

namespace seqlog {
namespace translate {

struct TdToSdOptions {
  /// Database alphabet: symbols that may appear in input sequences.
  /// Machine-writable symbols are added automatically.
  std::vector<Symbol> alphabet;
  /// Name of the end-of-tape marker symbol (interned on demand). It must
  /// not occur in database sequences.
  std::string marker_name = "eot__";
};

/// Translates `program` (Transducer Datalog) into an equivalent Sequence
/// Datalog program (Theorem 7). Transducer names are resolved through
/// `registry` and must be transducer::Transducer instances (networks
/// would first be flattened into single machines by the caller).
Result<ast::Program> TransducerDatalogToSequenceDatalog(
    const ast::Program& program, const eval::FunctionRegistry& registry,
    SymbolTable* symbols, SequencePool* pool, const TdToSdOptions& options);

}  // namespace translate
}  // namespace seqlog

#endif  // SEQLOG_TRANSLATE_TD_TO_SD_H_
