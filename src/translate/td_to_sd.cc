#include "translate/td_to_sd.h"

#include <algorithm>
#include <map>
#include <set>

#include "base/string_util.h"

namespace seqlog {
namespace translate {

namespace {

using ast::Atom;
using ast::Clause;
using ast::MakeConcat;
using ast::MakeConstant;
using ast::MakeIndexed;
using ast::MakeIndexAdd;
using ast::MakeIndexEnd;
using ast::MakeIndexLiteral;
using ast::MakeIndexSub;
using ast::MakeIndexVariable;
using ast::MakePredicateAtom;
using ast::MakeVariable;
using ast::SeqTermPtr;
using transducer::Transducer;

class Translator {
 public:
  Translator(const eval::FunctionRegistry& registry, SymbolTable* symbols,
             SequencePool* pool, const TdToSdOptions& options)
      : registry_(registry),
        symbols_(symbols),
        pool_(pool),
        options_(options) {}

  Result<ast::Program> Run(const ast::Program& program) {
    marker_ = symbols_->Intern(options_.marker_name);
    SEQLOG_RETURN_IF_ERROR(CollectMachines(program));
    BuildAlphabet();
    for (const Clause& clause : program.clauses) {
      SEQLOG_RETURN_IF_ERROR(RewriteClause(clause));
    }
    for (const auto& [name, machine] : machines_) {
      SEQLOG_RETURN_IF_ERROR(TranslateMachine(*machine));
    }
    return std::move(out_);
  }

 private:
  /// Resolves every mentioned transducer and its transitive callees.
  Status CollectMachines(const ast::Program& program) {
    std::vector<const Transducer*> work;
    for (const std::string& name : program.MentionedTransducers()) {
      SEQLOG_ASSIGN_OR_RETURN(const SequenceFunction* fn,
                              registry_.Find(name));
      const auto* t = dynamic_cast<const Transducer*>(fn);
      if (t == nullptr) {
        return Status::InvalidArgument(
            StrCat("'", name,
                   "' is not a plain transducer; flatten networks before "
                   "translation"));
      }
      work.push_back(t);
    }
    while (!work.empty()) {
      const Transducer* t = work.back();
      work.pop_back();
      if (machines_.count(t->name()) > 0) continue;
      machines_.emplace(t->name(), t);
      for (const auto& callee : t->Callees()) {
        work.push_back(callee.get());
        callees_kept_alive_.push_back(callee);
      }
    }
    return Status::Ok();
  }

  /// Database alphabet plus every symbol any machine can write.
  void BuildAlphabet() {
    std::set<Symbol> alphabet(options_.alphabet.begin(),
                              options_.alphabet.end());
    for (const auto& [name, machine] : machines_) {
      for (const transducer::Transition& t : machine->transitions()) {
        if (t.output.kind == transducer::Output::Kind::kSymbol) {
          alphabet.insert(t.output.symbol);
        }
      }
    }
    alphabet.erase(marker_);
    alphabet_.assign(alphabet.begin(), alphabet.end());
  }

  // ---- term helpers -------------------------------------------------

  SeqTermPtr Sym(Symbol s) { return MakeConstant(pool_->Singleton(s)); }
  SeqTermPtr Eps() { return MakeConstant(kEmptySeq); }
  SeqTermPtr MarkerTerm() { return Sym(marker_); }
  SeqTermPtr Marked(SeqTermPtr term) {
    return MakeConcat(std::move(term), MarkerTerm());
  }
  SeqTermPtr StateTerm(const Transducer& t, transducer::StateId s) {
    return Sym(symbols_->Intern(StrCat("st_", t.name(), "_", s)));
  }
  SeqTermPtr MoveTerm(transducer::HeadMove m) {
    return Sym(symbols_->Intern(
        m == transducer::HeadMove::kAdvance ? "mv__" : "stay__"));
  }
  SeqTermPtr TagTerm(const Transducer& callee) {
    return Sym(symbols_->Intern(StrCat("tag_", callee.name())));
  }
  /// X[1:end-1]: the unmarked content of a marked input.
  SeqTermPtr Unmarked(const std::string& var) {
    return MakeIndexed(MakeVariable(var), MakeIndexLiteral(1),
                       MakeIndexSub(MakeIndexEnd(), MakeIndexLiteral(1)));
  }

  static std::string PredP(const Transducer& t) {
    return StrCat("p_", t.name());
  }
  static std::string PredComp(const Transducer& t) {
    return StrCat("comp_", t.name());
  }
  static std::string PredInput(const Transducer& t) {
    return StrCat("input_", t.name());
  }
  static std::string PredDeltaSym(const Transducer& t) {
    return StrCat("deltas_", t.name());
  }
  static std::string PredDeltaCall(const Transducer& t) {
    return StrCat("deltac_", t.name());
  }

  // ---- user rule rewriting (gamma' / gamma'') ------------------------

  Status RewriteClause(const Clause& clause) {
    Clause rewritten;
    rewritten.body = clause.body;
    rewritten.head.kind = clause.head.kind;
    rewritten.head.predicate = clause.head.predicate;
    for (const SeqTermPtr& arg : clause.head.args) {
      SEQLOG_ASSIGN_OR_RETURN(SeqTermPtr flat,
                              Flatten(arg, &rewritten.body));
      rewritten.head.args.push_back(std::move(flat));
    }
    out_.clauses.push_back(std::move(rewritten));
    return Status::Ok();
  }

  /// Replaces transducer terms by fresh variables bound via p_T atoms,
  /// innermost first, and emits the input_T feeding rule for each call.
  Result<SeqTermPtr> Flatten(const SeqTermPtr& term,
                             std::vector<Atom>* body) {
    switch (term->kind) {
      case ast::SeqTerm::Kind::kConstant:
      case ast::SeqTerm::Kind::kVariable:
      case ast::SeqTerm::Kind::kIndexed:
        return term;
      case ast::SeqTerm::Kind::kConcat: {
        SEQLOG_ASSIGN_OR_RETURN(SeqTermPtr l, Flatten(term->left, body));
        SEQLOG_ASSIGN_OR_RETURN(SeqTermPtr r, Flatten(term->right, body));
        return MakeConcat(std::move(l), std::move(r));
      }
      case ast::SeqTerm::Kind::kTransducer: {
        std::vector<SeqTermPtr> args;
        args.reserve(term->args.size());
        for (const SeqTermPtr& a : term->args) {
          SEQLOG_ASSIGN_OR_RETURN(SeqTermPtr fa, Flatten(a, body));
          args.push_back(std::move(fa));
        }
        auto it = machines_.find(term->transducer);
        if (it == machines_.end()) {
          return Status::NotFound(
              StrCat("unknown transducer '", term->transducer, "'"));
        }
        const Transducer& t = *it->second;
        if (t.NumInputs() != args.size()) {
          return Status::InvalidArgument(
              StrCat("transducer '", t.name(), "' takes ", t.NumInputs(),
                     " inputs, got ", args.size()));
        }
        // gamma'': input_T(s1 ++ marker, ..., sm ++ marker) :- body
        // (the body accumulated so far binds inner fresh variables).
        Clause feed;
        std::vector<SeqTermPtr> marked_args;
        marked_args.reserve(args.size());
        for (const SeqTermPtr& a : args) marked_args.push_back(Marked(a));
        feed.head = MakePredicateAtom(PredInput(t), std::move(marked_args));
        feed.body = *body;
        out_.clauses.push_back(std::move(feed));
        // gamma': replace the term by a fresh variable bound by p_T.
        std::string fresh = StrCat("Tdv__", ++fresh_counter_);
        std::vector<SeqTermPtr> p_args = args;
        p_args.push_back(MakeVariable(fresh));
        body->push_back(MakePredicateAtom(PredP(t), std::move(p_args)));
        return MakeVariable(fresh);
      }
    }
    return Status::Internal("unknown term kind");
  }

  // ---- machine simulation rules --------------------------------------

  Status TranslateMachine(const Transducer& t) {
    size_t m = t.NumInputs();
    auto xvar = [&](size_t i) { return StrCat("X", i + 1); };
    auto nvar = [&](size_t i) { return StrCat("N", i + 1); };
    /// Xi[1:Ni], optionally advanced by one.
    auto prefix = [&](size_t i, bool advanced) {
      ast::IndexTermPtr hi = MakeIndexVariable(nvar(i));
      if (advanced) hi = MakeIndexAdd(hi, MakeIndexLiteral(1));
      return MakeIndexed(MakeVariable(xvar(i)), MakeIndexLiteral(1), hi);
    };
    /// Xi[Ni+1]: the scanned symbol.
    auto scanned = [&](size_t i) {
      ast::IndexTermPtr at =
          MakeIndexAdd(MakeIndexVariable(nvar(i)), MakeIndexLiteral(1));
      return MakeIndexed(MakeVariable(xvar(i)), at, at);
    };
    auto input_atom = [&]() {
      std::vector<SeqTermPtr> args;
      for (size_t i = 0; i < m; ++i) args.push_back(MakeVariable(xvar(i)));
      return MakePredicateAtom(PredInput(t), std::move(args));
    };
    auto comp_atom = [&]() {
      std::vector<SeqTermPtr> args;
      for (size_t i = 0; i < m; ++i) args.push_back(prefix(i, false));
      args.push_back(MakeVariable("Z"));
      args.push_back(MakeVariable("Q"));
      return MakePredicateAtom(PredComp(t), std::move(args));
    };

    // Ground transition table as facts.
    auto ground = t.EnumerateGroundTransitions(alphabet_);
    for (const auto& g : ground) {
      Clause fact;
      std::vector<SeqTermPtr> args;
      args.push_back(StateTerm(t, g.from));
      for (Symbol s : g.scanned) {
        args.push_back(s == kEndMarker ? MarkerTerm() : Sym(s));
      }
      args.push_back(StateTerm(t, g.to));
      for (transducer::HeadMove mv : g.moves) {
        args.push_back(MoveTerm(mv));
      }
      switch (g.output.kind) {
        case transducer::Output::Kind::kEpsilon:
          args.push_back(Eps());
          fact.head = MakePredicateAtom(PredDeltaSym(t), std::move(args));
          break;
        case transducer::Output::Kind::kSymbol:
          args.push_back(Sym(g.output.symbol));
          fact.head = MakePredicateAtom(PredDeltaSym(t), std::move(args));
          break;
        case transducer::Output::Kind::kCall:
          args.push_back(TagTerm(*g.output.callee));
          fact.head = MakePredicateAtom(PredDeltaCall(t), std::move(args));
          break;
        case transducer::Output::Kind::kEcho:
          return Status::Internal("echo should have been grounded");
      }
      out_.clauses.push_back(std::move(fact));
    }

    // gamma_2: the empty partial computation.
    {
      Clause c;
      std::vector<SeqTermPtr> args;
      for (size_t i = 0; i < m; ++i) args.push_back(Eps());
      args.push_back(Eps());
      args.push_back(StateTerm(t, t.initial_state()));
      c.head = MakePredicateAtom(PredComp(t), std::move(args));
      out_.clauses.push_back(std::move(c));
    }

    // Step rules, one per non-empty head-move combination (gamma_3..5
    // generalised to m inputs).
    for (size_t mask = 1; mask < (1u << m); ++mask) {
      auto delta_args = [&](const std::string& delta_out_var) {
        std::vector<SeqTermPtr> args;
        args.push_back(MakeVariable("Q"));
        for (size_t i = 0; i < m; ++i) args.push_back(scanned(i));
        args.push_back(MakeVariable("QP"));
        for (size_t i = 0; i < m; ++i) {
          args.push_back(MoveTerm((mask >> i) & 1
                                      ? transducer::HeadMove::kAdvance
                                      : transducer::HeadMove::kStay));
        }
        args.push_back(MakeVariable(delta_out_var));
        return args;
      };
      auto advanced_head = [&](SeqTermPtr out_term) {
        std::vector<SeqTermPtr> args;
        for (size_t i = 0; i < m; ++i) {
          args.push_back(prefix(i, (mask >> i) & 1));
        }
        args.push_back(std::move(out_term));
        args.push_back(MakeVariable("QP"));
        return args;
      };

      // Symbol/epsilon output: comp(advanced, Z ++ O, QP).
      {
        Clause c;
        c.head = MakePredicateAtom(
            PredComp(t),
            advanced_head(MakeConcat(MakeVariable("Z"), MakeVariable("O"))));
        c.body.push_back(input_atom());
        c.body.push_back(comp_atom());
        c.body.push_back(
            MakePredicateAtom(PredDeltaSym(t), delta_args("O")));
        out_.clauses.push_back(std::move(c));
      }

      // Subtransducer calls (gamma'_4 / gamma'_5), one pair per callee.
      for (const auto& callee : t.Callees()) {
        // gamma'_4: the callee's result becomes the new output.
        Clause c4;
        c4.head =
            MakePredicateAtom(PredComp(t), advanced_head(MakeVariable("Z2")));
        c4.body.push_back(input_atom());
        c4.body.push_back(comp_atom());
        {
          auto args = delta_args("O");
          args.back() = TagTerm(*callee);
          c4.body.push_back(
              MakePredicateAtom(PredDeltaCall(t), std::move(args)));
        }
        {
          // p_callee(unmarked inputs..., Z, Z2).
          std::vector<SeqTermPtr> args;
          for (size_t i = 0; i < m; ++i) args.push_back(Unmarked(xvar(i)));
          args.push_back(MakeVariable("Z"));
          args.push_back(MakeVariable("Z2"));
          c4.body.push_back(
              MakePredicateAtom(PredP(*callee), std::move(args)));
        }
        out_.clauses.push_back(std::move(c4));

        // gamma'_5: feed the callee's input relation. The caller's
        // tapes are reused marker and all; the output copy gets a fresh
        // marker.
        Clause c5;
        {
          std::vector<SeqTermPtr> args;
          for (size_t i = 0; i < m; ++i) {
            args.push_back(MakeVariable(xvar(i)));
          }
          args.push_back(Marked(MakeVariable("Z")));
          c5.head = MakePredicateAtom(PredInput(*callee), std::move(args));
        }
        c5.body.push_back(input_atom());
        c5.body.push_back(comp_atom());
        {
          auto args = delta_args("O");
          args.back() = TagTerm(*callee);
          c5.body.push_back(
              MakePredicateAtom(PredDeltaCall(t), std::move(args)));
        }
        out_.clauses.push_back(std::move(c5));
      }
    }

    // gamma_1: extraction — a computation that consumed everything up to
    // the markers is complete.
    {
      Clause c;
      std::vector<SeqTermPtr> head_args;
      for (size_t i = 0; i < m; ++i) head_args.push_back(Unmarked(xvar(i)));
      head_args.push_back(MakeVariable("Z"));
      c.head = MakePredicateAtom(PredP(t), std::move(head_args));
      c.body.push_back(input_atom());
      std::vector<SeqTermPtr> comp_args;
      for (size_t i = 0; i < m; ++i) comp_args.push_back(Unmarked(xvar(i)));
      comp_args.push_back(MakeVariable("Z"));
      comp_args.push_back(MakeVariable("Q"));
      c.body.push_back(MakePredicateAtom(PredComp(t), std::move(comp_args)));
      out_.clauses.push_back(std::move(c));
    }
    return Status::Ok();
  }

  const eval::FunctionRegistry& registry_;
  SymbolTable* symbols_;
  SequencePool* pool_;
  TdToSdOptions options_;
  Symbol marker_ = 0;
  std::vector<Symbol> alphabet_;
  std::map<std::string, const Transducer*> machines_;
  std::vector<std::shared_ptr<const Transducer>> callees_kept_alive_;
  ast::Program out_;
  int fresh_counter_ = 0;
};

}  // namespace

Result<ast::Program> TransducerDatalogToSequenceDatalog(
    const ast::Program& program, const eval::FunctionRegistry& registry,
    SymbolTable* symbols, SequencePool* pool,
    const TdToSdOptions& options) {
  Translator translator(registry, symbols, pool, options);
  return translator.Run(program);
}

}  // namespace translate
}  // namespace seqlog
