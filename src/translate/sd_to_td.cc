#include "translate/sd_to_td.h"

namespace seqlog {
namespace translate {

namespace {

ast::SeqTermPtr Rewrite(const ast::SeqTermPtr& term,
                        const std::string& append_name) {
  switch (term->kind) {
    case ast::SeqTerm::Kind::kConstant:
    case ast::SeqTerm::Kind::kVariable:
    case ast::SeqTerm::Kind::kIndexed:
      return term;
    case ast::SeqTerm::Kind::kConcat:
      return ast::MakeTransducerTerm(
          append_name, {Rewrite(term->left, append_name),
                        Rewrite(term->right, append_name)});
    case ast::SeqTerm::Kind::kTransducer: {
      std::vector<ast::SeqTermPtr> args;
      args.reserve(term->args.size());
      for (const ast::SeqTermPtr& a : term->args) {
        args.push_back(Rewrite(a, append_name));
      }
      return ast::MakeTransducerTerm(term->transducer, std::move(args));
    }
  }
  return term;
}

}  // namespace

Result<ast::Program> SequenceDatalogToTransducerDatalog(
    const ast::Program& program, const std::string& append_name) {
  ast::Program out;
  for (const ast::Clause& clause : program.clauses) {
    ast::Clause c;
    c.head.kind = clause.head.kind;
    c.head.predicate = clause.head.predicate;
    for (const ast::SeqTermPtr& arg : clause.head.args) {
      c.head.args.push_back(Rewrite(arg, append_name));
    }
    c.body = clause.body;  // bodies have no constructive terms
    out.clauses.push_back(std::move(c));
  }
  return out;
}

}  // namespace translate
}  // namespace seqlog
