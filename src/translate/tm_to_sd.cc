#include "translate/tm_to_sd.h"

namespace seqlog {
namespace translate {

namespace {

using ast::Clause;
using ast::MakeConcat;
using ast::MakeConstant;
using ast::MakeIndexed;
using ast::MakeIndexEnd;
using ast::MakeIndexLiteral;
using ast::MakeIndexSub;
using ast::MakePredicateAtom;
using ast::MakeVariable;
using ast::SeqTermPtr;

}  // namespace

Result<ast::Program> TmToSequenceDatalog(const tm::TuringMachine& machine,
                                         SequencePool* pool,
                                         const std::string& input_pred,
                                         const std::string& output_pred) {
  SEQLOG_RETURN_IF_ERROR(machine.Validate());
  ast::Program program;

  auto sym = [&](Symbol s) { return MakeConstant(pool->Singleton(s)); };
  auto eps = [&]() { return MakeConstant(kEmptySeq); };

  // gamma_1: conf(q0, eps, |-, X) :- input(X).
  {
    Clause c;
    c.head = MakePredicateAtom(
        "conf", {sym(machine.initial_state), eps(),
                 sym(machine.left_marker), MakeVariable("X")});
    c.body.push_back(MakePredicateAtom(input_pred, {MakeVariable("X")}));
    program.clauses.push_back(std::move(c));
  }

  // One rule per transition.
  for (const auto& [key, action] : machine.delta) {
    const auto& [q, a] = key;
    SeqTermPtr xl = MakeVariable("Xl");
    SeqTermPtr xr = MakeVariable("Xr");
    auto body_atom = [&]() {
      return MakePredicateAtom("conf", {sym(q), MakeVariable("Xl"), sym(a),
                                        MakeVariable("Xr")});
    };
    switch (action.move) {
      case tm::TmMove::kStay: {
        // conf(q', Xl, b, Xr) :- conf(q, Xl, a, Xr).
        Clause c;
        c.head = MakePredicateAtom(
            "conf", {sym(action.next_state), xl, sym(action.write), xr});
        c.body.push_back(body_atom());
        program.clauses.push_back(std::move(c));
        break;
      }
      case tm::TmMove::kLeft: {
        // conf(q', Xl[1:end-1], Xl[end], b ++ Xr) :- conf(q, Xl, a, Xr).
        Clause c;
        c.head = MakePredicateAtom(
            "conf",
            {sym(action.next_state),
             MakeIndexed(MakeVariable("Xl"), MakeIndexLiteral(1),
                         MakeIndexSub(MakeIndexEnd(), MakeIndexLiteral(1))),
             MakeIndexed(MakeVariable("Xl"), MakeIndexEnd(),
                         MakeIndexEnd()),
             MakeConcat(sym(action.write), xr)});
        c.body.push_back(body_atom());
        program.clauses.push_back(std::move(c));
        break;
      }
      case tm::TmMove::kRight: {
        // gamma_k: conf(q', Xl ++ b, Xr[1], Xr[2:end] ++ blank)
        //            :- conf(q, Xl, a, Xr).
        Clause c;
        c.head = MakePredicateAtom(
            "conf",
            {sym(action.next_state), MakeConcat(xl, sym(action.write)),
             MakeIndexed(MakeVariable("Xr"), MakeIndexLiteral(1),
                         MakeIndexLiteral(1)),
             MakeConcat(
                 MakeIndexed(MakeVariable("Xr"), MakeIndexLiteral(2),
                             MakeIndexEnd()),
                 sym(machine.blank))});
        c.body.push_back(body_atom());
        program.clauses.push_back(std::move(c));

        // Paper fix: with an empty right part Xr[1] is undefined, so the
        // rule above cannot fire; the head then scans a fresh blank.
        Clause c2;
        c2.head = MakePredicateAtom(
            "conf", {sym(action.next_state), MakeConcat(xl, sym(action.write)),
                     sym(machine.blank), eps()});
        c2.body.push_back(MakePredicateAtom(
            "conf", {sym(q), MakeVariable("Xl"), sym(a), eps()}));
        program.clauses.push_back(std::move(c2));
        break;
      }
    }
  }

  // gamma_2: output(Xl[2:end] ++ S ++ Xr) :- conf(qh, Xl, S, Xr).
  // Xl[2:end] strips the left-end marker, which is Xl's first symbol
  // whenever the head is to its right.
  for (Symbol qh : machine.halting_states) {
    Clause c;
    c.head = MakePredicateAtom(
        output_pred,
        {MakeConcat(
            MakeConcat(MakeIndexed(MakeVariable("Xl"), MakeIndexLiteral(2),
                                   MakeIndexEnd()),
                       MakeVariable("S")),
            MakeVariable("Xr"))});
    c.body.push_back(MakePredicateAtom(
        "conf",
        {sym(qh), MakeVariable("Xl"), MakeVariable("S"),
         MakeVariable("Xr")}));
    program.clauses.push_back(std::move(c));

    // Paper fix: halting with the head on the marker leaves Xl empty and
    // Xl[2:end] undefined; the output is then just the right part.
    Clause c2;
    c2.head = MakePredicateAtom(output_pred, {MakeVariable("Xr")});
    c2.body.push_back(MakePredicateAtom(
        "conf",
        {sym(qh), eps(), sym(machine.left_marker), MakeVariable("Xr")}));
    program.clauses.push_back(std::move(c2));
  }

  return program;
}

}  // namespace translate
}  // namespace seqlog
