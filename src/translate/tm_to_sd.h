// seqlog: the Theorem 1 construction — compiling a Turing machine into a
// Sequence Datalog program that simulates it.
//
// Configurations are held in a 4-ary predicate conf(state, left, scanned,
// right). One rule per machine transition advances reachable
// configurations; an output rule extracts the tape when a halting state
// is reached. Right-moves concatenate a blank onto the right part (the
// paper's unbounded-tape trick), which is exactly why the generated
// program has an infinite least fixpoint when the machine diverges
// (exploited by Theorem 2).
//
// Two faithful fixes to the paper's rules, both documented in DESIGN.md:
// the right-move rule needs an extra variant for an empty right part
// (X_r[1] is undefined on the empty sequence), and the output rule needs
// a variant for machines halting with the head on the left-end marker
// (X_l[2:end] is undefined for an empty left part).
#ifndef SEQLOG_TRANSLATE_TM_TO_SD_H_
#define SEQLOG_TRANSLATE_TM_TO_SD_H_

#include <string>

#include "ast/clause.h"
#include "base/result.h"
#include "sequence/sequence_pool.h"
#include "tm/turing.h"

namespace seqlog {
namespace translate {

/// Generates the simulation program P_f of Theorem 1 for `machine`.
/// The database schema is {input/1}; the result is returned in
/// `output_pred` facts: output(y) holds iff the machine halts on x with
/// tape output y (modulo trailing blanks; strip them with
/// tm::ExtractOutput conventions).
Result<ast::Program> TmToSequenceDatalog(const tm::TuringMachine& machine,
                                         SequencePool* pool,
                                         const std::string& input_pred,
                                         const std::string& output_pred);

}  // namespace translate
}  // namespace seqlog

#endif  // SEQLOG_TRANSLATE_TM_TO_SD_H_
