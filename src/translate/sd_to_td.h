// seqlog: the Corollary 1 direction — Sequence Datalog into Transducer
// Datalog by replacing each constructive term s1 ++ s2 with the
// transducer term @append(s1, s2).
#ifndef SEQLOG_TRANSLATE_SD_TO_TD_H_
#define SEQLOG_TRANSLATE_SD_TO_TD_H_

#include <string>

#include "ast/clause.h"
#include "base/result.h"

namespace seqlog {
namespace translate {

/// Rewrites every head-level ++ into @`append_name`(...). The caller
/// must register a 2-input append transducer (transducer::MakeAppend)
/// under that name before evaluating the result. The transformation
/// preserves the least fixpoint exactly (Corollary 1).
Result<ast::Program> SequenceDatalogToTransducerDatalog(
    const ast::Program& program, const std::string& append_name);

}  // namespace translate
}  // namespace seqlog

#endif  // SEQLOG_TRANSLATE_SD_TO_TD_H_
