#include "transducer/nondet.h"

#include <algorithm>
#include <unordered_set>

#include "base/hash.h"
#include "base/string_util.h"

namespace seqlog {
namespace transducer {

namespace {

/// One branch of the exploration: control state, head positions, and the
/// output accumulated so far (interned to keep configurations small and
/// memoizable).
struct Config {
  StateId state;
  std::vector<size_t> heads;
  SeqId output;

  bool operator==(const Config& other) const {
    return state == other.state && output == other.output &&
           heads == other.heads;
  }
};

struct ConfigHash {
  size_t operator()(const Config& c) const {
    size_t h = HashCombine(c.state, c.output);
    for (size_t p : c.heads) h = HashCombine(h, p);
    return h;
  }
};

/// Depth-first exploration of all runs of one machine on fixed inputs.
/// Runs of distinct machines (caller vs. callee) use separate Explorer
/// instances but share the budget accounting through `steps`.
class Explorer {
 public:
  Explorer(const NondetTransducer& machine, std::span<const SeqId> inputs,
           SequencePool* pool, const NdRunLimits& limits, NdRunStats* stats,
           size_t* steps)
      : machine_(machine),
        pool_(pool),
        limits_(limits),
        stats_(stats),
        steps_(steps) {
    tapes_.reserve(inputs.size());
    for (SeqId in : inputs) tapes_.push_back(pool->View(in));
    inputs_.assign(inputs.begin(), inputs.end());
  }

  Status Run(std::vector<SeqId>* outputs) {
    Config start;
    start.state = machine_.initial_state();
    start.heads.assign(tapes_.size(), 0);
    start.output = kEmptySeq;
    SEQLOG_RETURN_IF_ERROR(Visit(start));
    outputs->assign(outputs_.begin(), outputs_.end());
    std::sort(outputs->begin(), outputs->end());
    return Status::Ok();
  }

 private:
  Status Visit(const Config& config) {
    // Two branches reaching the same (state, heads, output) have
    // identical futures; explore once.
    if (!visited_.insert(config).second) {
      if (stats_ != nullptr) ++stats_->dedup_hits;
      return Status::Ok();
    }

    std::vector<Symbol> scanned(tapes_.size(), kEndMarker);
    bool all_markers = true;
    for (size_t i = 0; i < tapes_.size(); ++i) {
      scanned[i] = config.heads[i] < tapes_[i].size()
                       ? tapes_[i][config.heads[i]]
                       : kEndMarker;
      if (scanned[i] != kEndMarker) all_markers = false;
    }
    if (all_markers) {
      // Every head reads <| : this run halts and yields its output.
      if (outputs_.insert(config.output).second && stats_ != nullptr) {
        ++stats_->runs;
      }
      if (outputs_.size() > limits_.max_outputs) {
        return Status::ResourceExhausted(
            StrCat("nondeterministic transducer '", machine_.name(),
                   "' produced more than ", limits_.max_outputs,
                   " outputs"));
      }
      return Status::Ok();
    }

    // Set semantics: every matching row fires.
    bool any_match = false;
    for (const NdTransition& t : machine_.transitions()) {
      if (t.from != config.state) continue;
      bool match = true;
      for (size_t i = 0; i < scanned.size(); ++i) {
        if (!t.scanned[i].Matches(scanned[i])) {
          match = false;
          break;
        }
      }
      if (!match) continue;
      any_match = true;
      SEQLOG_RETURN_IF_ERROR(Fire(config, scanned, t));
    }
    // A stuck branch (partial delta) contributes no output; other
    // branches may still succeed. This mirrors rejecting runs of a
    // nondeterministic automaton.
    (void)any_match;
    return Status::Ok();
  }

  Status Fire(const Config& config, std::span<const Symbol> scanned,
              const NdTransition& t) {
    if (++*steps_ > limits_.max_steps) {
      return Status::ResourceExhausted(
          StrCat("nondeterministic transducer '", machine_.name(),
                 "' exceeded ", limits_.max_steps, " steps"));
    }
    if (stats_ != nullptr) ++stats_->steps;

    // The outputs this transition can leave on the tape: exactly one for
    // epsilon/emit/echo, one per callee output for calls.
    std::vector<SeqId> next_outputs;
    switch (t.output.kind) {
      case NdOutput::Kind::kEpsilon:
        next_outputs.push_back(config.output);
        break;
      case NdOutput::Kind::kSymbol:
        next_outputs.push_back(
            pool_->Concat(config.output, pool_->Singleton(t.output.symbol)));
        break;
      case NdOutput::Kind::kEcho: {
        Symbol s = scanned[t.output.echo_input];
        if (s == kEndMarker) {
          return Status::FailedPrecondition(
              StrCat("nondeterministic transducer '", machine_.name(),
                     "' echoes tape ", t.output.echo_input,
                     " at its marker"));
        }
        next_outputs.push_back(
            pool_->Concat(config.output, pool_->Singleton(s)));
        break;
      }
      case NdOutput::Kind::kCall: {
        if (stats_ != nullptr) ++stats_->calls;
        std::vector<SeqId> sub_inputs = inputs_;
        sub_inputs.push_back(config.output);
        Explorer sub(*t.output.callee, sub_inputs, pool_, limits_, stats_,
                     steps_);
        SEQLOG_RETURN_IF_ERROR(sub.Run(&next_outputs));
        break;
      }
    }

    Config next;
    next.state = t.to;
    next.heads = config.heads;
    for (size_t i = 0; i < next.heads.size(); ++i) {
      if (t.moves[i] == HeadMove::kAdvance) ++next.heads[i];
    }
    for (SeqId out : next_outputs) {
      if (pool_->Length(out) > limits_.max_output_length) {
        return Status::ResourceExhausted(
            StrCat("nondeterministic transducer '", machine_.name(),
                   "' output exceeded ", limits_.max_output_length,
                   " symbols"));
      }
      next.output = out;
      SEQLOG_RETURN_IF_ERROR(Visit(next));
    }
    return Status::Ok();
  }

  const NondetTransducer& machine_;
  SequencePool* pool_;
  const NdRunLimits& limits_;
  NdRunStats* stats_;
  size_t* steps_;
  std::vector<SeqView> tapes_;
  std::vector<SeqId> inputs_;
  std::unordered_set<Config, ConfigHash> visited_;
  std::unordered_set<SeqId> outputs_;
};

}  // namespace

Result<std::vector<SeqId>> NondetTransducer::RunAll(
    std::span<const SeqId> inputs, SequencePool* pool,
    const NdRunLimits& limits, NdRunStats* stats) const {
  if (inputs.size() != num_inputs_) {
    return Status::InvalidArgument(
        StrCat("nondeterministic transducer '", name_, "' takes ",
               num_inputs_, " inputs, got ", inputs.size()));
  }
  size_t steps = 0;
  Explorer explorer(*this, inputs, pool, limits, stats, &steps);
  std::vector<SeqId> outputs;
  SEQLOG_RETURN_IF_ERROR(explorer.Run(&outputs));
  return outputs;
}

Result<bool> NondetTransducer::Relates(std::span<const SeqId> inputs,
                                       SeqId output, SequencePool* pool,
                                       const NdRunLimits& limits) const {
  SEQLOG_ASSIGN_OR_RETURN(std::vector<SeqId> outputs,
                          RunAll(inputs, pool, limits, nullptr));
  return std::binary_search(outputs.begin(), outputs.end(), output);
}

NondetBuilder::NondetBuilder(std::string name, size_t num_inputs)
    : name_(std::move(name)),
      num_inputs_(num_inputs),
      machine_(new NondetTransducer()) {
  machine_->name_ = name_;
  machine_->num_inputs_ = num_inputs_;
}

StateId NondetBuilder::State(const std::string& name) {
  auto it = states_.find(name);
  if (it != states_.end()) return it->second;
  StateId id = static_cast<StateId>(machine_->state_names_.size());
  machine_->state_names_.push_back(name);
  states_.emplace(name, id);
  if (machine_->state_names_.size() == 1 && !initial_set_) {
    machine_->initial_ = id;
  }
  return id;
}

void NondetBuilder::SetInitial(StateId state) {
  machine_->initial_ = state;
  initial_set_ = true;
}

NondetBuilder& NondetBuilder::Add(StateId from,
                                  std::vector<SymPattern> scanned,
                                  StateId to, std::vector<HeadMove> moves,
                                  NdOutput output) {
  NdTransition t;
  t.from = from;
  t.scanned = std::move(scanned);
  t.to = to;
  t.moves = std::move(moves);
  t.output = std::move(output);
  machine_->rows_.push_back(std::move(t));
  return *this;
}

Result<std::shared_ptr<const NondetTransducer>> NondetBuilder::Build() {
  NondetTransducer* m = machine_.get();
  if (num_inputs_ == 0) {
    return Status::InvalidArgument(
        StrCat("transducer '", name_, "' must have at least one input"));
  }
  if (m->state_names_.empty()) {
    return Status::InvalidArgument(
        StrCat("transducer '", name_, "' has no states"));
  }
  int max_callee_order = 0;
  for (size_t r = 0; r < m->rows_.size(); ++r) {
    const NdTransition& t = m->rows_[r];
    auto fail = [&](std::string_view what) {
      return Status::InvalidArgument(
          StrCat("transducer '", name_, "' transition ", r, ": ", what));
    };
    if (t.scanned.size() != num_inputs_ || t.moves.size() != num_inputs_) {
      return fail("pattern/move arity mismatch");
    }
    if (t.from >= m->state_names_.size() ||
        t.to >= m->state_names_.size()) {
      return fail("unknown state");
    }
    if (std::none_of(t.moves.begin(), t.moves.end(), [](HeadMove hm) {
          return hm == HeadMove::kAdvance;
        })) {
      return fail("no head advances (restriction (i) of Definition 7)");
    }
    for (size_t i = 0; i < num_inputs_; ++i) {
      bool may_be_marker =
          t.scanned[i].kind == SymPattern::Kind::kMarker ||
          t.scanned[i].kind == SymPattern::Kind::kWildcard;
      if (may_be_marker && t.moves[i] == HeadMove::kAdvance) {
        return fail(StrCat("head ", i,
                           " may scan the marker but advances "
                           "(restriction (ii) of Definition 7)"));
      }
    }
    if (t.output.kind == NdOutput::Kind::kCall) {
      if (t.output.callee == nullptr) return fail("null callee");
      if (t.output.callee->NumInputs() != num_inputs_ + 1) {
        return fail(StrCat("callee '", t.output.callee->name(),
                           "' takes ", t.output.callee->NumInputs(),
                           " inputs; a subtransducer of an ", num_inputs_,
                           "-input machine needs ", num_inputs_ + 1,
                           " (restriction (iii) of Definition 7)"));
      }
      max_callee_order =
          std::max(max_callee_order, t.output.callee->Order());
    }
    if (t.output.kind == NdOutput::Kind::kEcho) {
      if (t.output.echo_input >= num_inputs_) {
        return fail("echo references a missing tape");
      }
      if (t.scanned[t.output.echo_input].kind ==
          SymPattern::Kind::kMarker) {
        return fail("echo of a tape that scans the marker");
      }
    }
  }
  m->order_ = 1 + max_callee_order;
  m->rows_by_state_.assign(m->state_names_.size(), {});
  for (uint32_t r = 0; r < m->rows_.size(); ++r) {
    m->rows_by_state_[m->rows_[r].from].push_back(r);
  }
  return std::shared_ptr<const NondetTransducer>(machine_.release());
}

Result<std::shared_ptr<const NondetTransducer>> LiftDeterministic(
    const Transducer& machine, std::span<const Symbol> alphabet) {
  NondetBuilder builder(StrCat(machine.name(), "_nd"),
                        machine.NumInputs());
  // Recreate the state set in id order so StateIds carry over.
  for (StateId s = 0; s < machine.num_states(); ++s) {
    builder.State(machine.StateName(s));
  }
  builder.SetInitial(machine.initial_state());
  for (const Transducer::GroundTransition& g :
       machine.EnumerateGroundTransitions(alphabet)) {
    std::vector<SymPattern> scanned;
    scanned.reserve(g.scanned.size());
    for (Symbol s : g.scanned) {
      scanned.push_back(s == kEndMarker ? SymPattern::Marker()
                                        : SymPattern::Exact(s));
    }
    NdOutput out;
    switch (g.output.kind) {
      case Output::Kind::kEpsilon:
        out = NdOutput::Epsilon();
        break;
      case Output::Kind::kSymbol:
        out = NdOutput::Emit(g.output.symbol);
        break;
      case Output::Kind::kEcho:
        // EnumerateGroundTransitions grounds echoes to kSymbol.
        return Status::Internal("ground transition with echo output");
      case Output::Kind::kCall: {
        SEQLOG_ASSIGN_OR_RETURN(
            std::shared_ptr<const NondetTransducer> callee,
            LiftDeterministic(*g.output.callee, alphabet));
        out = NdOutput::Call(std::move(callee));
        break;
      }
    }
    builder.Add(g.from, std::move(scanned), g.to, g.moves, std::move(out));
  }
  return builder.Build();
}

}  // namespace transducer
}  // namespace seqlog
