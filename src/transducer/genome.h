// seqlog: molecular-biology transducers (Example 7.1).
//
// DNA is modelled over {a,c,g,t}, RNA over {a,c,g,u}, proteins over the
// 20-letter amino-acid alphabet. Transcription maps each nucleotide to
// its ribonucleotide (a->u, c->g, g->c, t->a); translation groups RNA
// into codons and maps each through the standard genetic code. As in the
// paper, intron splicing / reading frames / stop codons are simplified
// away: translation maps every complete codon (stop codons map to '*')
// and drops a trailing partial codon.
#ifndef SEQLOG_TRANSDUCER_GENOME_H_
#define SEQLOG_TRANSDUCER_GENOME_H_

#include "sequence/symbol_table.h"
#include "transducer/library.h"

namespace seqlog {
namespace transducer {

/// DNA -> RNA transcription (order 1).
Result<TransducerPtr> MakeTranscribe(std::string name,
                                     SymbolTable* symbols);

/// DNA -> DNA Watson-Crick complement a<->t, c<->g (order 1).
Result<TransducerPtr> MakeDnaComplement(std::string name,
                                        SymbolTable* symbols);

/// RNA -> protein translation via the standard genetic code (order 1).
/// Stop codons translate to '*'.
Result<TransducerPtr> MakeTranslate(std::string name, SymbolTable* symbols);

/// DNA reversal over {a,c,g,t} (order 2).
Result<TransducerPtr> MakeDnaReverse(std::string name,
                                     SymbolTable* symbols);

}  // namespace transducer
}  // namespace seqlog

#endif  // SEQLOG_TRANSDUCER_GENOME_H_
