// seqlog: a library of standard generalized transducers.
//
// Orders follow Section 6: machines that never call a subtransducer have
// order 1 and output no longer than their total input; order-2 machines
// reach polynomial output length (MakeSquare attains n^2, Theorem 4);
// order-3 machines reach hyperexponential length (MakeDoubleExp attains
// 2^2^Theta(n)).
//
// Machines built from patterns/echo are alphabet-generic wherever
// possible; the ones that must mention symbols (map, reverse, echo) take
// the concrete alphabet.
#ifndef SEQLOG_TRANSDUCER_LIBRARY_H_
#define SEQLOG_TRANSDUCER_LIBRARY_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "base/result.h"
#include "transducer/transducer.h"

namespace seqlog {
namespace transducer {

using TransducerPtr = std::shared_ptr<const Transducer>;

/// m-input concatenation: outputs in1 in2 ... inm. Order 1.
Result<TransducerPtr> MakeAppend(std::string name, size_t num_inputs);

/// Identity on one input. Order 1.
Result<TransducerPtr> MakeIdentity(std::string name);

/// m-input projection: outputs input `keep`, consuming the rest. Order 1.
Result<TransducerPtr> MakeProject(std::string name, size_t num_inputs,
                                  size_t keep);

/// Symbol-to-symbol map (e.g. complement, DNA->RNA transcription).
/// Unmapped symbols pass through when `pass_unmapped`, otherwise the
/// machine is partial (stuck). Order 1.
Result<TransducerPtr> MakeMap(std::string name,
                              const std::map<Symbol, Symbol>& mapping,
                              bool pass_unmapped);

/// Deletes the given symbols, copies the rest. Order 1.
Result<TransducerPtr> MakeErase(std::string name,
                                const std::set<Symbol>& erase);

/// Groups the input into triples and maps each through `codons`
/// (RNA -> protein translation, Example 7.1). Partial on unknown codons;
/// a trailing incomplete codon is dropped. Order 1.
Result<TransducerPtr> MakeCodonTranslate(
    std::string name,
    const std::map<std::vector<Symbol>, Symbol>& codons);

/// 2-input machine computing s . in2 (prepends the fixed symbol `s`),
/// consuming input 1 for step budget. Partial when input 1 is empty but
/// input 2 is not. Order 1.
Result<TransducerPtr> MakePrependSymbol(std::string name, Symbol s);

/// Reverses its input. Needs the concrete alphabet (one prepend
/// subtransducer per symbol). Order 2 — a one-way order-1 transducer
/// cannot reverse.
Result<TransducerPtr> MakeReverse(std::string name,
                                  const std::vector<Symbol>& alphabet);

/// Doubles every symbol (abc -> aabbcc, the paper's Example 1.6 "echo").
/// Order 2; correct for inputs of length >= 2. A Definition 7 machine
/// cannot emit 2 symbols from a length-1 input (every (sub)invocation's
/// output is bounded by its total input length), so echo("a") halts
/// after emitting a single "a"; the Sequence Datalog echo program
/// (programs::kEcho) covers all lengths.
Result<TransducerPtr> MakeEcho(std::string name,
                               const std::vector<Symbol>& alphabet);

/// Example 6.1's T_square: appends a copy of the input to the output at
/// every step via an append subtransducer; |out| = n^2. Order 2.
Result<TransducerPtr> MakeSquare(std::string name);

/// 2-input squaring of the total input length: |out| = (n1+n2)^2, built
/// from an append-3 subtransducer. Order 2; the building block of the
/// order-3 tower.
Result<TransducerPtr> MakeSquareTotal(std::string name);

/// Order-3 machine attaining the Theorem 4 lower bound: each step squares
/// (n + |out|), giving |out| = 2^2^Theta(n).
Result<TransducerPtr> MakeDoubleExp(std::string name);

}  // namespace transducer
}  // namespace seqlog

#endif  // SEQLOG_TRANSDUCER_LIBRARY_H_
