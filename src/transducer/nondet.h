// seqlog: nondeterministic generalized sequence transducers.
//
// Definition 7 is stated for deterministic machines, but the paper
// remarks that "it can easily be generalized to allow nondeterministic
// computations" (and cites nondeterministic transducer models such as
// the generic a-transducers of [16] and the automata of [20]). This
// module is that generalization: the transition function becomes a
// transition *relation* — several rows may match one (state, scanned)
// combination — and a machine computes the finite *set* of outputs over
// all successful runs. Every run still consumes at least one input
// symbol per step, so every run terminates and the output set is finite
// for finite inputs; nondeterminism buys breadth, not divergence.
//
// Subtransducer calls compose naturally: a callee is itself
// nondeterministic, so a call step branches once per callee output.
// Orders mirror the deterministic T_k hierarchy.
#ifndef SEQLOG_TRANSDUCER_NONDET_H_
#define SEQLOG_TRANSDUCER_NONDET_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/result.h"
#include "sequence/sequence_pool.h"
#include "transducer/transducer.h"

namespace seqlog {
namespace transducer {

class NondetTransducer;

/// The output action of a nondeterministic transition: as Output, plus
/// calls target nondeterministic callees.
struct NdOutput {
  enum class Kind : uint8_t { kEpsilon, kSymbol, kEcho, kCall };
  Kind kind = Kind::kEpsilon;
  Symbol symbol = 0;
  size_t echo_input = 0;
  std::shared_ptr<const NondetTransducer> callee;

  static NdOutput Epsilon() { return NdOutput{}; }
  static NdOutput Emit(Symbol s) {
    NdOutput o;
    o.kind = Kind::kSymbol;
    o.symbol = s;
    return o;
  }
  static NdOutput Echo(size_t input) {
    NdOutput o;
    o.kind = Kind::kEcho;
    o.echo_input = input;
    return o;
  }
  static NdOutput Call(std::shared_ptr<const NondetTransducer> callee) {
    NdOutput o;
    o.kind = Kind::kCall;
    o.callee = std::move(callee);
    return o;
  }
};

/// One nondeterministic transition row. Unlike Transition, *every*
/// matching row of a state fires (set semantics, not first-match-wins).
struct NdTransition {
  StateId from = 0;
  std::vector<SymPattern> scanned;
  StateId to = 0;
  std::vector<HeadMove> moves;
  NdOutput output;
};

/// Budgets for one RunAll. Exponentially many runs are possible (each
/// step may branch), so exploration is budgeted like evaluation is.
struct NdRunLimits {
  size_t max_steps = 1'000'000;   ///< transitions explored, calls included
  size_t max_outputs = 100'000;   ///< distinct outputs collected
  size_t max_output_length = 1u << 20;
};

/// Counters for one RunAll.
struct NdRunStats {
  size_t steps = 0;        ///< transitions explored (all branches)
  size_t calls = 0;        ///< subtransducer invocations
  size_t runs = 0;         ///< completed runs (all heads on markers)
  size_t dedup_hits = 0;   ///< configurations pruned by memoization
};

/// An immutable nondeterministic generalized sequence transducer. Build
/// with NondetBuilder. A machine with at most one matching row per
/// configuration behaves exactly like the deterministic Transducer.
class NondetTransducer {
 public:
  const std::string& name() const { return name_; }
  size_t NumInputs() const { return num_inputs_; }
  /// Order in the T_k hierarchy: 1 + max callee order (1 if no calls).
  int Order() const { return order_; }
  size_t num_states() const { return state_names_.size(); }
  const std::string& StateName(StateId s) const { return state_names_[s]; }
  StateId initial_state() const { return initial_; }
  const std::vector<NdTransition>& transitions() const { return rows_; }

  /// Computes the set of outputs over all runs on `inputs`, sorted by
  /// SeqId and duplicate-free. Exploration stops with kResourceExhausted
  /// when a budget is hit (partial output sets are not returned: a
  /// truncated set would silently under-approximate the machine's
  /// semantics).
  Result<std::vector<SeqId>> RunAll(std::span<const SeqId> inputs,
                                    SequencePool* pool,
                                    const NdRunLimits& limits = {},
                                    NdRunStats* stats = nullptr) const;

  /// True if RunAll(inputs) would contain `output` — i.e. the pair is in
  /// the machine's input/output relation.
  Result<bool> Relates(std::span<const SeqId> inputs, SeqId output,
                       SequencePool* pool,
                       const NdRunLimits& limits = {}) const;

 private:
  friend class NondetBuilder;
  NondetTransducer() = default;

  std::string name_;
  size_t num_inputs_ = 1;
  int order_ = 1;
  StateId initial_ = 0;
  std::vector<std::string> state_names_;
  std::vector<NdTransition> rows_;
  std::vector<std::vector<uint32_t>> rows_by_state_;
};

/// Builder enforcing the same Definition-7 restrictions as
/// TransducerBuilder (>= 1 input, every row moves a head, marker heads
/// stay, callee arity m+1, echo tapes cannot scan the marker) — without
/// the determinism requirement.
class NondetBuilder {
 public:
  NondetBuilder(std::string name, size_t num_inputs);

  StateId State(const std::string& name);
  void SetInitial(StateId state);

  NondetBuilder& Add(StateId from, std::vector<SymPattern> scanned,
                     StateId to, std::vector<HeadMove> moves,
                     NdOutput output);

  Result<std::shared_ptr<const NondetTransducer>> Build();

 private:
  std::string name_;
  size_t num_inputs_;
  std::unique_ptr<NondetTransducer> machine_;
  std::map<std::string, StateId> states_;
  bool initial_set_ = false;
};

/// Embeds a deterministic machine into the nondeterministic model. The
/// deterministic table is first grounded over `alphabet`
/// (EnumerateGroundTransitions), which resolves first-match-wins
/// priority to at most one row per (state, scanned) combination, so the
/// lifted machine has exactly the same runs. Calls are lifted
/// recursively. Used by tests to check that determinism is the
/// single-output special case of RunAll.
Result<std::shared_ptr<const NondetTransducer>> LiftDeterministic(
    const Transducer& machine, std::span<const Symbol> alphabet);

}  // namespace transducer
}  // namespace seqlog

#endif  // SEQLOG_TRANSDUCER_NONDET_H_
