// seqlog: fluent construction of generalized sequence transducers.
#ifndef SEQLOG_TRANSDUCER_BUILDER_H_
#define SEQLOG_TRANSDUCER_BUILDER_H_

#include <map>
#include <memory>
#include <string>

#include "base/result.h"
#include "transducer/transducer.h"

namespace seqlog {
namespace transducer {

/// Builds an immutable Transducer, validating Definition 7's restrictions
/// at Build() time:
///  * at least one input tape;
///  * every transition moves at least one head;
///  * a head scanning the marker never advances (patterns that can match
///    the marker — kMarker, kWildcard — must have kStay at that position);
///  * callees take exactly m+1 inputs;
///  * echo outputs reference a tape whose pattern cannot be the marker.
///
/// The machine's order is computed as 1 + max over callee orders
/// (1 when there are no calls), mirroring the T_k hierarchy.
class TransducerBuilder {
 public:
  TransducerBuilder(std::string name, size_t num_inputs);

  /// Declares (or finds) a state. The first state added is initial unless
  /// SetInitial is called.
  StateId State(const std::string& name);

  void SetInitial(StateId state);

  /// Appends a transition row; rows of a state match in insertion order.
  TransducerBuilder& Add(StateId from, std::vector<SymPattern> scanned,
                         StateId to, std::vector<HeadMove> moves,
                         Output output);

  /// Overrides the default output-length budget.
  void SetMaxOutputLength(size_t limit);

  /// Validates and freezes the machine.
  Result<std::shared_ptr<const Transducer>> Build();

 private:
  std::string name_;
  size_t num_inputs_;
  std::unique_ptr<Transducer> machine_;
  std::map<std::string, StateId> states_;
  bool initial_set_ = false;
};

}  // namespace transducer
}  // namespace seqlog

#endif  // SEQLOG_TRANSDUCER_BUILDER_H_
