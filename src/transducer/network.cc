#include "transducer/network.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "base/string_util.h"

namespace seqlog {
namespace transducer {

Result<size_t> TransducerNetwork::AddNode(
    std::shared_ptr<const Transducer> machine,
    std::vector<InputSource> inputs) {
  if (machine == nullptr) {
    return Status::InvalidArgument("null machine");
  }
  if (inputs.size() != machine->NumInputs()) {
    return Status::InvalidArgument(
        StrCat("node '", machine->name(), "' needs ",
               machine->NumInputs(), " inputs, got ", inputs.size()));
  }
  for (const InputSource& src : inputs) {
    if (src.kind == InputSource::Kind::kNetworkInput) {
      if (src.index >= num_inputs_) {
        return Status::InvalidArgument(
            StrCat("network input ", src.index, " out of range"));
      }
    } else {
      // Referencing only earlier nodes keeps the network acyclic.
      if (src.index >= nodes_.size()) {
        return Status::InvalidArgument(
            StrCat("node source ", src.index,
                   " must reference an earlier node"));
      }
    }
  }
  nodes_.push_back(Node{std::move(machine), std::move(inputs)});
  return nodes_.size() - 1;
}

Status TransducerNetwork::SetOutput(size_t node) {
  if (node >= nodes_.size()) {
    return Status::InvalidArgument(StrCat("no node ", node));
  }
  output_node_ = node;
  output_set_ = true;
  return Status::Ok();
}

int TransducerNetwork::Order() const {
  int order = 0;
  for (const Node& n : nodes_) {
    order = std::max(order, n.machine->Order());
  }
  return order;
}

Result<SeqId> TransducerNetwork::Apply(std::span<const SeqId> inputs,
                                       SequencePool* pool) const {
  RunStats stats;
  return Run(inputs, pool, &stats);
}

Result<SeqId> TransducerNetwork::Run(std::span<const SeqId> inputs,
                                     SequencePool* pool,
                                     RunStats* stats) const {
  if (!output_set_) {
    return Status::FailedPrecondition(
        StrCat("network '", name_, "' has no output node"));
  }
  if (inputs.size() != num_inputs_) {
    return Status::InvalidArgument(
        StrCat("network '", name_, "' takes ", num_inputs_,
               " inputs, got ", inputs.size()));
  }
  const bool have_plan = !plan_.empty();
  std::vector<SeqId> node_outputs(nodes_.size(), kEmptySeq);
  for (size_t ni = 0; ni < nodes_.size(); ++ni) {
    if (have_plan && plan_[ni].mode == PlanNode::Mode::kFusedAway) {
      continue;  // its work happens inside the successor's fused machine
    }
    const std::vector<InputSource>& sources =
        have_plan ? plan_[ni].inputs : nodes_[ni].inputs;
    std::vector<SeqId> node_inputs;
    node_inputs.reserve(sources.size());
    for (const InputSource& src : sources) {
      node_inputs.push_back(src.kind == InputSource::Kind::kNetworkInput
                                ? inputs[src.index]
                                : node_outputs[src.index]);
    }
    if (have_plan && plan_[ni].mode == PlanNode::Mode::kCompiled) {
      compiled_node_runs_.fetch_add(1, std::memory_order_relaxed);
      SEQLOG_ASSIGN_OR_RETURN(node_outputs[ni],
                              plan_[ni].det->Apply(node_inputs, pool));
    } else {
      interpreted_node_runs_.fetch_add(1, std::memory_order_relaxed);
      SEQLOG_ASSIGN_OR_RETURN(
          node_outputs[ni],
          nodes_[ni].machine->Run(node_inputs, pool, stats, nullptr));
    }
  }
  return node_outputs[output_node_];
}

namespace {

std::vector<Symbol> SortedUnique(std::span<const Symbol> symbols) {
  std::vector<Symbol> out(symbols.begin(), symbols.end());
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<Symbol> UnionInto(std::vector<Symbol> base,
                              std::span<const Symbol> more) {
  base.insert(base.end(), more.begin(), more.end());
  return SortedUnique(base);
}

// A sound over-approximation of what an order-1 machine can emit: every
// output is either an emitted constant or an echo of a scanned input
// symbol, so (union of input alphabets) + (constants in the rows) covers
// it. Order >= 2 machines call subtransducers whose outputs this cannot
// bound, so they yield nullopt ("unknown") — downstream nodes then stay
// interpreted.
std::optional<std::vector<Symbol>> OutputAlphabet(
    const Transducer& machine,
    const std::vector<const std::vector<Symbol>*>& input_alphas) {
  if (machine.Order() != 1) return std::nullopt;
  std::vector<Symbol> out;
  for (const std::vector<Symbol>* alpha : input_alphas) {
    if (alpha == nullptr) return std::nullopt;
    out = UnionInto(std::move(out), *alpha);
  }
  for (const Transition& row : machine.transitions()) {
    if (row.output.kind == Output::Kind::kSymbol) {
      out.push_back(row.output.symbol);
    }
  }
  return SortedUnique(out);
}

}  // namespace

Status TransducerNetwork::Compile(std::span<const Symbol> alphabet,
                                  const NetworkCompileOptions& options,
                                  analysis::DiagnosticReport* report) {
  if (!output_set_) {
    return Status::FailedPrecondition(
        StrCat("network '", name_, "' has no output node"));
  }
  plan_.clear();
  compile_stats_ = TransducerStats{};
  const std::vector<Symbol> net_alpha = SortedUnique(alphabet);

  // How many readers each node's output has (the output port counts as
  // one): a node is only fusable into its successor when nothing else
  // would miss the intermediate sequence.
  std::vector<size_t> uses(nodes_.size(), 0);
  for (const Node& node : nodes_) {
    for (const InputSource& src : node.inputs) {
      if (src.kind == InputSource::Kind::kNode) ++uses[src.index];
    }
  }
  ++uses[output_node_];

  // The input alphabet of every source, propagated node by node;
  // nullptr = unknown (an order->=2 producer upstream).
  std::vector<std::optional<std::vector<Symbol>>> out_alpha(nodes_.size());
  auto source_alpha =
      [&](const InputSource& src) -> const std::vector<Symbol>* {
    if (src.kind == InputSource::Kind::kNetworkInput) return &net_alpha;
    return out_alpha[src.index].has_value() ? &*out_alpha[src.index]
                                            : nullptr;
  };

  std::vector<PlanNode> plan(nodes_.size());
  for (size_t ni = 0; ni < nodes_.size(); ++ni) {
    plan[ni].inputs = nodes_[ni].inputs;
  }

  for (size_t ni = 0; ni < nodes_.size(); ++ni) {
    const Node& node = nodes_[ni];
    {
      std::vector<const std::vector<Symbol>*> in_alphas;
      in_alphas.reserve(node.inputs.size());
      for (const InputSource& src : node.inputs) {
        in_alphas.push_back(source_alpha(src));
      }
      out_alpha[ni] = OutputAlphabet(*node.machine, in_alphas);
    }
    if (plan[ni].mode != PlanNode::Mode::kInterpreted) {
      continue;  // already the compiled head of a fused chain
    }

    // Chain fusion: this node's output feeds exactly one successor,
    // which reads nothing else. Order-<=2 paths only — a fused machine
    // is not fused again into a third node.
    if (options.enable_fusion && uses[ni] == 1 &&
        node.inputs.size() == 1) {
      size_t consumer = nodes_.size();
      for (size_t nj = ni + 1; nj < nodes_.size() && consumer == nodes_.size();
           ++nj) {
        for (const InputSource& src : nodes_[nj].inputs) {
          if (src.kind == InputSource::Kind::kNode && src.index == ni) {
            consumer = nj;
            break;
          }
        }
      }
      if (consumer < nodes_.size() && nodes_[consumer].inputs.size() == 1 &&
          plan[consumer].mode == PlanNode::Mode::kInterpreted) {
        const std::vector<Symbol>* chain_alpha =
            source_alpha(node.inputs[0]);
        if (chain_alpha == nullptr) {
          ++compile_stats_.fusion_fallbacks;
        } else {
          FuseStats fstats;
          Result<std::shared_ptr<const DetTransducer>> fused =
              FuseChain(*node.machine, *nodes_[consumer].machine,
                        *chain_alpha, options.fuse, &fstats, report);
          if (fused.ok()) {
            plan[ni].mode = PlanNode::Mode::kFusedAway;
            plan[consumer].mode = PlanNode::Mode::kCompiled;
            plan[consumer].det = fused.value();
            plan[consumer].inputs = node.inputs;
            ++compile_stats_.fusion_hits;
            continue;
          }
          if (fused.status().code() != StatusCode::kFailedPrecondition) {
            return fused.status();
          }
          ++compile_stats_.fusion_fallbacks;
        }
      }
    }

    // Per-node compilation of whatever did not fuse.
    if (node.inputs.size() == 1) {
      const std::vector<Symbol>* in_alpha = source_alpha(node.inputs[0]);
      if (in_alpha != nullptr) {
        Result<std::shared_ptr<const DetTransducer>> det = CompileSingle(
            *node.machine, *in_alpha, options.determinize, nullptr, report);
        if (det.ok()) {
          plan[ni].mode = PlanNode::Mode::kCompiled;
          plan[ni].det = det.value();
          continue;
        }
        if (det.status().code() != StatusCode::kFailedPrecondition) {
          return det.status();
        }
      }
    }
    // Multi-input wiring, unknown input alphabet, or a refusal: the
    // interpreted node-by-node run stays.
  }

  for (const PlanNode& pn : plan) {
    switch (pn.mode) {
      case PlanNode::Mode::kCompiled:
        ++compile_stats_.compiled_nodes;
        pn.det->CollectStats(&compile_stats_);
        break;
      case PlanNode::Mode::kInterpreted:
        ++compile_stats_.interpreted_nodes;
        break;
      case PlanNode::Mode::kFusedAway:
        break;  // accounted through the fused successor
    }
  }
  plan_ = std::move(plan);
  return Status::Ok();
}

void TransducerNetwork::CollectStats(TransducerStats* out) const {
  out->MergeFrom(compile_stats_);
  out->compiled_node_runs +=
      compiled_node_runs_.load(std::memory_order_relaxed);
  out->interpreted_node_runs +=
      interpreted_node_runs_.load(std::memory_order_relaxed);
}

size_t TransducerNetwork::Diameter() const {
  // Longest path (in nodes) ending at each node; inputs have depth 0.
  std::vector<size_t> depth(nodes_.size(), 1);
  for (size_t ni = 0; ni < nodes_.size(); ++ni) {
    for (const InputSource& src : nodes_[ni].inputs) {
      if (src.kind == InputSource::Kind::kNode) {
        depth[ni] = std::max(depth[ni], depth[src.index] + 1);
      }
    }
  }
  return output_set_ && !nodes_.empty() ? depth[output_node_] : 0;
}

}  // namespace transducer
}  // namespace seqlog
