#include "transducer/network.h"

#include <algorithm>

#include "base/string_util.h"

namespace seqlog {
namespace transducer {

Result<size_t> TransducerNetwork::AddNode(
    std::shared_ptr<const Transducer> machine,
    std::vector<InputSource> inputs) {
  if (machine == nullptr) {
    return Status::InvalidArgument("null machine");
  }
  if (inputs.size() != machine->NumInputs()) {
    return Status::InvalidArgument(
        StrCat("node '", machine->name(), "' needs ",
               machine->NumInputs(), " inputs, got ", inputs.size()));
  }
  for (const InputSource& src : inputs) {
    if (src.kind == InputSource::Kind::kNetworkInput) {
      if (src.index >= num_inputs_) {
        return Status::InvalidArgument(
            StrCat("network input ", src.index, " out of range"));
      }
    } else {
      // Referencing only earlier nodes keeps the network acyclic.
      if (src.index >= nodes_.size()) {
        return Status::InvalidArgument(
            StrCat("node source ", src.index,
                   " must reference an earlier node"));
      }
    }
  }
  nodes_.push_back(Node{std::move(machine), std::move(inputs)});
  return nodes_.size() - 1;
}

Status TransducerNetwork::SetOutput(size_t node) {
  if (node >= nodes_.size()) {
    return Status::InvalidArgument(StrCat("no node ", node));
  }
  output_node_ = node;
  output_set_ = true;
  return Status::Ok();
}

int TransducerNetwork::Order() const {
  int order = 0;
  for (const Node& n : nodes_) {
    order = std::max(order, n.machine->Order());
  }
  return order;
}

Result<SeqId> TransducerNetwork::Apply(std::span<const SeqId> inputs,
                                       SequencePool* pool) const {
  RunStats stats;
  return Run(inputs, pool, &stats);
}

Result<SeqId> TransducerNetwork::Run(std::span<const SeqId> inputs,
                                     SequencePool* pool,
                                     RunStats* stats) const {
  if (!output_set_) {
    return Status::FailedPrecondition(
        StrCat("network '", name_, "' has no output node"));
  }
  if (inputs.size() != num_inputs_) {
    return Status::InvalidArgument(
        StrCat("network '", name_, "' takes ", num_inputs_,
               " inputs, got ", inputs.size()));
  }
  std::vector<SeqId> node_outputs(nodes_.size(), kEmptySeq);
  for (size_t ni = 0; ni < nodes_.size(); ++ni) {
    const Node& node = nodes_[ni];
    std::vector<SeqId> node_inputs;
    node_inputs.reserve(node.inputs.size());
    for (const InputSource& src : node.inputs) {
      node_inputs.push_back(src.kind == InputSource::Kind::kNetworkInput
                                ? inputs[src.index]
                                : node_outputs[src.index]);
    }
    SEQLOG_ASSIGN_OR_RETURN(
        node_outputs[ni],
        node.machine->Run(node_inputs, pool, stats, nullptr));
  }
  return node_outputs[output_node_];
}

size_t TransducerNetwork::Diameter() const {
  // Longest path (in nodes) ending at each node; inputs have depth 0.
  std::vector<size_t> depth(nodes_.size(), 1);
  for (size_t ni = 0; ni < nodes_.size(); ++ni) {
    for (const InputSource& src : nodes_[ni].inputs) {
      if (src.kind == InputSource::Kind::kNode) {
        depth[ni] = std::max(depth[ni], depth[src.index] + 1);
      }
    }
  }
  return output_set_ && !nodes_.empty() ? depth[output_node_] : 0;
}

}  // namespace transducer
}  // namespace seqlog
