// seqlog: product-composition fusion of transducer network chains.
//
// An order-<=2 network path A -> B (A's output tape feeding B's input
// tape, nothing else reading A) is a candidate for fusion: because B is
// a one-way machine consuming its input left to right, it can consume
// A's output symbol by symbol as A emits it, without the intermediate
// sequence ever being materialised or interned. FuseChain builds that
// lockstep product: states are (state of A, state of B) pairs, one fused
// step reads one chain-input symbol, runs A's transition, and pushes
// A's emission (0 or 1 symbols) through B.
//
// Soundness is guarded twice, mirroring the Solver::FuseGoals
// refuse-and-fallback shape (query/solver.h): a structural pre-check
// refuses machines the product cannot express (multi-input machines,
// subtransducer calls — a callee would need the unmaterialised
// intermediate tape), and a bounded exhaustive equivalence check replays
// the fused machine against the node-by-node composition on every short
// input before the fusion is accepted. Refusals are
// Status::FailedPrecondition with a stable code (determinize.h):
//   SL-E204  unsupported shape for fusion
//   SL-E203  product state budget exceeded
//   SL-E205  equivalence check failed (fused != node-by-node)
// Callers (Network::Compile) fall back to the interpreted node-by-node
// run on any refusal — fusion is an optimisation, never a semantics
// change.
#ifndef SEQLOG_TRANSDUCER_FUSE_H_
#define SEQLOG_TRANSDUCER_FUSE_H_

#include <memory>

#include "analysis/diagnostics.h"
#include "base/result.h"
#include "transducer/determinize.h"
#include "transducer/transducer.h"

namespace seqlog {
namespace transducer {

struct FuseOptions {
  size_t max_states = 1u << 14;     ///< product-state budget (SL-E203)
  size_t verify_max_length = 6;     ///< equivalence check: input lengths
  size_t verify_max_inputs = 4096;  ///< equivalence check: input budget
};

struct FuseStats {
  size_t states_out = 0;       ///< reachable product states
  size_t verified_inputs = 0;  ///< inputs replayed by the check
};

/// Fuses the chain `first` -> `second` over the chain-input alphabet
/// `alphabet` into one deterministic machine computing
/// second(first(x)) — including agreement on where the composition is
/// undefined (either machine stuck). `second` is grounded over the
/// symbols `first` can emit, so the two machines may speak different
/// alphabets (e.g. DNA -> RNA -> protein).
Result<std::shared_ptr<const DetTransducer>> FuseChain(
    const Transducer& first, const Transducer& second,
    std::span<const Symbol> alphabet, const FuseOptions& options = {},
    FuseStats* stats = nullptr,
    analysis::DiagnosticReport* report = nullptr);

}  // namespace transducer
}  // namespace seqlog

#endif  // SEQLOG_TRANSDUCER_FUSE_H_
