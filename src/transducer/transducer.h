// seqlog: generalized sequence transducers (Section 6, Definition 7).
//
// A generalized m-input transducer of order k reads m input tapes (each
// terminated by an end-of-tape marker), consumes at least one input
// symbol per step, and at each step either appends one symbol to its
// output, leaves the output unchanged, or *calls a subtransducer of
// order < k* with m+1 inputs: copies of its own m inputs plus its current
// output; the callee's output then overwrites the caller's output. The
// machine halts when every head scans its marker, so termination is
// guaranteed on finite inputs.
//
// Transitions here are pattern-based sugar over the paper's
// delta : K x (Sigma u {<|})^m -> K x {-,>}^m x (Sigma u {eps} u T_{k-1});
// a pattern row matches exact symbols, "any non-marker symbol", the
// marker, or anything, and the output may *echo* the symbol currently
// scanned on some tape. Over a finite alphabet every pattern machine
// expands to a plain Definition-7 machine (EnumerateGroundTransitions
// performs the expansion; the Theorem 7 translation uses it).
#ifndef SEQLOG_TRANSDUCER_TRANSDUCER_H_
#define SEQLOG_TRANSDUCER_TRANSDUCER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/result.h"
#include "sequence/seq_function.h"
#include "sequence/sequence_pool.h"
#include "sequence/symbol_table.h"

namespace seqlog {
namespace transducer {

using StateId = uint32_t;

/// Input head command (the paper's `-` and `>`).
enum class HeadMove : uint8_t { kStay, kAdvance };

/// What one transition row requires of one scanned tape symbol.
struct SymPattern {
  enum class Kind : uint8_t { kExact, kAnySymbol, kMarker, kWildcard };
  Kind kind = Kind::kWildcard;
  Symbol symbol = 0;  // kExact payload

  static SymPattern Exact(Symbol s) {
    return SymPattern{Kind::kExact, s};
  }
  /// Any ordinary symbol (not the marker).
  static SymPattern Any() { return SymPattern{Kind::kAnySymbol, 0}; }
  /// The end-of-tape marker.
  static SymPattern Marker() { return SymPattern{Kind::kMarker, 0}; }
  /// Anything, marker included. The head must stay on such a position
  /// (checked at Build time) so the marker-stay restriction holds.
  static SymPattern Wildcard() { return SymPattern{Kind::kWildcard, 0}; }

  bool Matches(Symbol scanned) const;
};

class Transducer;

/// The output action of a transition.
struct Output {
  enum class Kind : uint8_t { kEpsilon, kSymbol, kEcho, kCall };
  Kind kind = Kind::kEpsilon;
  Symbol symbol = 0;      // kSymbol
  size_t echo_input = 0;  // kEcho: append the symbol scanned on tape i
  std::shared_ptr<const Transducer> callee;  // kCall

  static Output Epsilon() { return Output{}; }
  static Output Emit(Symbol s) {
    Output o;
    o.kind = Kind::kSymbol;
    o.symbol = s;
    return o;
  }
  static Output Echo(size_t input) {
    Output o;
    o.kind = Kind::kEcho;
    o.echo_input = input;
    return o;
  }
  static Output Call(std::shared_ptr<const Transducer> callee) {
    Output o;
    o.kind = Kind::kCall;
    o.callee = std::move(callee);
    return o;
  }
};

/// One transition row. Rows of a state are tried in insertion order; the
/// first whose patterns all match fires (the machine is deterministic for
/// disjoint patterns and "prioritised deterministic" otherwise).
struct Transition {
  StateId from = 0;
  std::vector<SymPattern> scanned;
  StateId to = 0;
  std::vector<HeadMove> moves;
  Output output;
};

/// Counters for one (possibly nested) run.
struct RunStats {
  size_t top_steps = 0;    ///< transitions of the outermost machine
  size_t total_steps = 0;  ///< transitions including all subtransducers
  size_t calls = 0;        ///< subtransducer invocations
  size_t max_output = 0;   ///< longest output tape ever materialised
};

/// One row of an execution trace (used to regenerate the paper's
/// Figure 2). Only the top-level machine is traced.
struct TraceRow {
  size_t step = 0;
  std::vector<size_t> head_positions;  ///< before the step
  std::string state;                   ///< state name before the step
  std::vector<Symbol> output_before;
  std::vector<Symbol> output_after;
  std::string operation;  ///< "emit a" / "eps" / "call append" ...
};

/// An immutable generalized sequence transducer. Build with
/// TransducerBuilder (builder.h). Implements SequenceFunction so machines
/// plug directly into Transducer Datalog rules.
class Transducer : public SequenceFunction {
 public:
  // SequenceFunction:
  const std::string& name() const override { return name_; }
  size_t NumInputs() const override { return num_inputs_; }
  int Order() const override { return order_; }
  Result<SeqId> Apply(std::span<const SeqId> inputs,
                      SequencePool* pool) const override;

  /// Apply with statistics and optional top-level trace.
  Result<SeqId> Run(std::span<const SeqId> inputs, SequencePool* pool,
                    RunStats* stats,
                    std::vector<TraceRow>* trace = nullptr) const;

  size_t num_states() const { return state_names_.size(); }
  const std::string& StateName(StateId s) const { return state_names_[s]; }
  StateId initial_state() const { return initial_; }
  const std::vector<Transition>& transitions() const { return rows_; }

  /// Maximum output-tape length before Apply reports kResourceExhausted
  /// (order-3 machines produce hyperexponential outputs; see Theorem 4).
  size_t max_output_length() const { return max_output_length_; }

  /// A ground Definition-7 transition: concrete scanned symbols (marker
  /// encoded as kEndMarker), concrete moves, and a symbol / epsilon /
  /// callee output. Produced by expanding patterns over `alphabet`.
  struct GroundTransition {
    StateId from;
    std::vector<Symbol> scanned;  ///< kEndMarker for the marker
    StateId to;
    std::vector<HeadMove> moves;
    Output output;
  };

  /// Expands the pattern table over `alphabet` (which must not contain
  /// kEndMarker). First-match-wins priority is preserved: for every
  /// (state, scanned) combination at most one ground transition results.
  std::vector<GroundTransition> EnumerateGroundTransitions(
      std::span<const Symbol> alphabet) const;

  /// All distinct subtransducers called by this machine (direct callees).
  std::vector<std::shared_ptr<const Transducer>> Callees() const;

 private:
  friend class TransducerBuilder;
  Transducer() = default;

  const Transition* FindTransition(StateId state,
                                   std::span<const Symbol> scanned) const;

  Result<SeqId> RunImpl(std::span<const SeqId> inputs, SequencePool* pool,
                        RunStats* stats, std::vector<TraceRow>* trace,
                        bool top_level) const;

  std::string name_;
  size_t num_inputs_ = 1;
  int order_ = 1;
  StateId initial_ = 0;
  std::vector<std::string> state_names_;
  std::vector<Transition> rows_;
  /// rows grouped per state for lookup: state -> indices into rows_.
  std::vector<std::vector<uint32_t>> rows_by_state_;
  size_t max_output_length_ = 1u << 24;  // 16M symbols
};

}  // namespace transducer
}  // namespace seqlog

#endif  // SEQLOG_TRANSDUCER_TRANSDUCER_H_
