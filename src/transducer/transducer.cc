#include "transducer/transducer.h"

#include <algorithm>

#include "base/string_util.h"

namespace seqlog {
namespace transducer {

bool SymPattern::Matches(Symbol scanned) const {
  switch (kind) {
    case Kind::kExact:
      return scanned == symbol;
    case Kind::kAnySymbol:
      return scanned != kEndMarker;
    case Kind::kMarker:
      return scanned == kEndMarker;
    case Kind::kWildcard:
      return true;
  }
  return false;
}

const Transition* Transducer::FindTransition(
    StateId state, std::span<const Symbol> scanned) const {
  for (uint32_t idx : rows_by_state_[state]) {
    const Transition& t = rows_[idx];
    bool match = true;
    for (size_t i = 0; i < scanned.size(); ++i) {
      if (!t.scanned[i].Matches(scanned[i])) {
        match = false;
        break;
      }
    }
    if (match) return &t;
  }
  return nullptr;
}

Result<SeqId> Transducer::Apply(std::span<const SeqId> inputs,
                                SequencePool* pool) const {
  RunStats stats;
  return Run(inputs, pool, &stats, nullptr);
}

Result<SeqId> Transducer::Run(std::span<const SeqId> inputs,
                              SequencePool* pool, RunStats* stats,
                              std::vector<TraceRow>* trace) const {
  return RunImpl(inputs, pool, stats, trace, /*top_level=*/true);
}

Result<SeqId> Transducer::RunImpl(std::span<const SeqId> inputs,
                                  SequencePool* pool, RunStats* stats,
                                  std::vector<TraceRow>* trace,
                                  bool top_level) const {
  if (inputs.size() != num_inputs_) {
    return Status::InvalidArgument(
        StrCat("transducer '", name_, "' takes ", num_inputs_,
               " inputs, got ", inputs.size()));
  }
  std::vector<SeqView> tapes;
  tapes.reserve(num_inputs_);
  for (SeqId in : inputs) tapes.push_back(pool->View(in));
  std::vector<size_t> heads(num_inputs_, 0);
  std::vector<Symbol> output;
  std::vector<Symbol> scanned(num_inputs_, kEndMarker);
  StateId state = initial_;
  size_t steps = 0;

  while (true) {
    bool all_markers = true;
    for (size_t i = 0; i < num_inputs_; ++i) {
      scanned[i] = heads[i] < tapes[i].size() ? tapes[i][heads[i]]
                                              : kEndMarker;
      if (scanned[i] != kEndMarker) all_markers = false;
    }
    if (all_markers) break;  // every head reads <| : halt

    const Transition* t = FindTransition(state, scanned);
    if (t == nullptr) {
      // delta is a partial mapping: the machine is stuck; the result is
      // undefined (callers treat kFailedPrecondition as "no output").
      return Status::FailedPrecondition(
          StrCat("transducer '", name_, "' stuck in state ",
                 state_names_[state]));
    }

    TraceRow row;
    if (trace != nullptr) {
      row.step = steps + 1;
      row.head_positions = heads;
      row.state = state_names_[state];
      row.output_before = output;
    }

    switch (t->output.kind) {
      case Output::Kind::kEpsilon:
        if (trace != nullptr) row.operation = "eps";
        break;
      case Output::Kind::kSymbol:
        output.push_back(t->output.symbol);
        if (trace != nullptr) row.operation = "emit";
        break;
      case Output::Kind::kEcho: {
        Symbol s = scanned[t->output.echo_input];
        if (s == kEndMarker) {
          return Status::FailedPrecondition(
              StrCat("transducer '", name_, "' echoes tape ",
                     t->output.echo_input, " at its marker"));
        }
        output.push_back(s);
        if (trace != nullptr) row.operation = "emit";
        break;
      }
      case Output::Kind::kCall: {
        // The subtransducer receives copies of all m inputs plus the
        // current output; its output overwrites ours (Section 6.1).
        ++stats->calls;
        std::vector<SeqId> sub_inputs(inputs.begin(), inputs.end());
        sub_inputs.push_back(pool->Intern(output));
        SEQLOG_ASSIGN_OR_RETURN(
            SeqId sub_out,
            t->output.callee->RunImpl(sub_inputs, pool, stats, nullptr,
                                      /*top_level=*/false));
        SeqView v = pool->View(sub_out);
        output.assign(v.begin(), v.end());
        if (trace != nullptr) {
          row.operation = StrCat("call ", t->output.callee->name());
        }
        break;
      }
    }
    if (output.size() > max_output_length_) {
      return Status::ResourceExhausted(
          StrCat("transducer '", name_, "' output exceeded ",
                 max_output_length_, " symbols"));
    }

    for (size_t i = 0; i < num_inputs_; ++i) {
      if (t->moves[i] == HeadMove::kAdvance) {
        SEQLOG_DCHECK(scanned[i] != kEndMarker)
            << "head advanced past marker in '" << name_ << "'";
        ++heads[i];
      }
    }
    state = t->to;
    ++steps;
    ++stats->total_steps;
    if (top_level) ++stats->top_steps;
    stats->max_output = std::max(stats->max_output, output.size());

    if (trace != nullptr) {
      row.output_after = output;
      trace->push_back(std::move(row));
    }
  }
  return pool->Intern(output);
}

std::vector<Transducer::GroundTransition>
Transducer::EnumerateGroundTransitions(
    std::span<const Symbol> alphabet) const {
  // Candidate symbols per tape position: the alphabet plus the marker.
  std::vector<Symbol> candidates(alphabet.begin(), alphabet.end());
  candidates.push_back(kEndMarker);

  std::vector<GroundTransition> out;
  std::vector<Symbol> scanned(num_inputs_, 0);
  for (StateId s = 0; s < state_names_.size(); ++s) {
    // Enumerate all |candidates|^m scanned combinations.
    std::vector<size_t> idx(num_inputs_, 0);
    while (true) {
      for (size_t i = 0; i < num_inputs_; ++i) {
        scanned[i] = candidates[idx[i]];
      }
      bool all_markers =
          std::all_of(scanned.begin(), scanned.end(),
                      [](Symbol v) { return v == kEndMarker; });
      if (!all_markers) {  // the machine halts before reading all-markers
        const Transition* t = FindTransition(s, scanned);
        if (t != nullptr) {
          GroundTransition g;
          g.from = s;
          g.scanned = scanned;
          g.to = t->to;
          g.moves = t->moves;
          g.output = t->output;
          if (g.output.kind == Output::Kind::kEcho) {
            // Ground echo to the concrete scanned symbol.
            g.output = Output::Emit(scanned[t->output.echo_input]);
          }
          out.push_back(std::move(g));
        }
      }
      // Advance the odometer.
      size_t pos = 0;
      while (pos < num_inputs_ && ++idx[pos] == candidates.size()) {
        idx[pos] = 0;
        ++pos;
      }
      if (pos == num_inputs_) break;
    }
  }
  return out;
}

std::vector<std::shared_ptr<const Transducer>> Transducer::Callees() const {
  std::vector<std::shared_ptr<const Transducer>> out;
  for (const Transition& t : rows_) {
    if (t.output.kind != Output::Kind::kCall) continue;
    bool seen = false;
    for (const auto& c : out) {
      if (c.get() == t.output.callee.get()) {
        seen = true;
        break;
      }
    }
    if (!seen) out.push_back(t.output.callee);
  }
  return out;
}

}  // namespace transducer
}  // namespace seqlog
