#include "transducer/library.h"

#include "base/string_util.h"
#include "transducer/builder.h"

namespace seqlog {
namespace transducer {

namespace {

/// Pattern row: markers for tapes [0, upto), kAny at `upto`, wildcards
/// after — "the first unconsumed tape is `upto`".
std::vector<SymPattern> FirstLivePattern(size_t m, size_t upto) {
  std::vector<SymPattern> p(m, SymPattern::Wildcard());
  for (size_t i = 0; i < upto; ++i) p[i] = SymPattern::Marker();
  p[upto] = SymPattern::Any();
  return p;
}

/// Moves vector advancing only `which`.
std::vector<HeadMove> AdvanceOnly(size_t m, size_t which) {
  std::vector<HeadMove> moves(m, HeadMove::kStay);
  moves[which] = HeadMove::kAdvance;
  return moves;
}

}  // namespace

Result<TransducerPtr> MakeAppend(std::string name, size_t num_inputs) {
  TransducerBuilder b(std::move(name), num_inputs);
  StateId q = b.State("q0");
  // Advance (and echo) the first tape that still has symbols.
  for (size_t i = 0; i < num_inputs; ++i) {
    b.Add(q, FirstLivePattern(num_inputs, i), q,
          AdvanceOnly(num_inputs, i), Output::Echo(i));
  }
  return b.Build();
}

Result<TransducerPtr> MakeIdentity(std::string name) {
  return MakeAppend(std::move(name), 1);
}

Result<TransducerPtr> MakeProject(std::string name, size_t num_inputs,
                                  size_t keep) {
  if (keep >= num_inputs) {
    return Status::InvalidArgument(
        StrCat("project: keep=", keep, " out of range"));
  }
  TransducerBuilder b(std::move(name), num_inputs);
  StateId q = b.State("q0");
  {
    // While the kept tape is live, echo it.
    std::vector<SymPattern> p(num_inputs, SymPattern::Wildcard());
    p[keep] = SymPattern::Any();
    b.Add(q, p, q, AdvanceOnly(num_inputs, keep), Output::Echo(keep));
  }
  for (size_t i = 0; i < num_inputs; ++i) {
    if (i == keep) continue;
    // Kept tape exhausted: silently drain tape i.
    std::vector<SymPattern> p(num_inputs, SymPattern::Wildcard());
    p[keep] = SymPattern::Marker();
    p[i] = SymPattern::Any();
    b.Add(q, p, q, AdvanceOnly(num_inputs, i), Output::Epsilon());
  }
  return b.Build();
}

Result<TransducerPtr> MakeMap(std::string name,
                              const std::map<Symbol, Symbol>& mapping,
                              bool pass_unmapped) {
  TransducerBuilder b(std::move(name), 1);
  StateId q = b.State("q0");
  for (const auto& [from, to] : mapping) {
    b.Add(q, {SymPattern::Exact(from)}, q, {HeadMove::kAdvance},
          Output::Emit(to));
  }
  if (pass_unmapped) {
    b.Add(q, {SymPattern::Any()}, q, {HeadMove::kAdvance},
          Output::Echo(0));
  }
  return b.Build();
}

Result<TransducerPtr> MakeErase(std::string name,
                                const std::set<Symbol>& erase) {
  TransducerBuilder b(std::move(name), 1);
  StateId q = b.State("q0");
  for (Symbol s : erase) {
    b.Add(q, {SymPattern::Exact(s)}, q, {HeadMove::kAdvance},
          Output::Epsilon());
  }
  b.Add(q, {SymPattern::Any()}, q, {HeadMove::kAdvance}, Output::Echo(0));
  return b.Build();
}

Result<TransducerPtr> MakeCodonTranslate(
    std::string name,
    const std::map<std::vector<Symbol>, Symbol>& codons) {
  TransducerBuilder b(std::move(name), 1);
  StateId q0 = b.State("q0");
  // Collect the ribonucleotide alphabet from the table.
  std::set<Symbol> alphabet;
  for (const auto& [codon, aa] : codons) {
    (void)aa;
    if (codon.size() != 3) {
      return Status::InvalidArgument("codons must have length 3");
    }
    for (Symbol s : codon) alphabet.insert(s);
  }
  // One state per 1- and 2-symbol prefix.
  for (Symbol a : alphabet) {
    StateId qa = b.State(StrCat("q_", a));
    b.Add(q0, {SymPattern::Exact(a)}, qa, {HeadMove::kAdvance},
          Output::Epsilon());
    for (Symbol c : alphabet) {
      StateId qac = b.State(StrCat("q_", a, "_", c));
      b.Add(qa, {SymPattern::Exact(c)}, qac, {HeadMove::kAdvance},
            Output::Epsilon());
    }
  }
  for (const auto& [codon, aa] : codons) {
    StateId qac = b.State(StrCat("q_", codon[0], "_", codon[1]));
    b.Add(qac, {SymPattern::Exact(codon[2])}, q0, {HeadMove::kAdvance},
          Output::Emit(aa));
  }
  return b.Build();
}

Result<TransducerPtr> MakePrependSymbol(std::string name, Symbol s) {
  TransducerBuilder b(std::move(name), 2);
  StateId p0 = b.State("emit");
  StateId p1 = b.State("copy");
  // Emit the prefix symbol, paying with one symbol of input 1.
  b.Add(p0, {SymPattern::Any(), SymPattern::Wildcard()}, p1,
        {HeadMove::kAdvance, HeadMove::kStay}, Output::Emit(s));
  // Copy input 2 (the caller's current output).
  b.Add(p1, {SymPattern::Wildcard(), SymPattern::Any()}, p1,
        {HeadMove::kStay, HeadMove::kAdvance}, Output::Echo(1));
  // Then silently drain the rest of input 1.
  b.Add(p1, {SymPattern::Any(), SymPattern::Marker()}, p1,
        {HeadMove::kAdvance, HeadMove::kStay}, Output::Epsilon());
  return b.Build();
}

Result<TransducerPtr> MakeReverse(std::string name,
                                  const std::vector<Symbol>& alphabet) {
  // reverse(x): consume x left to right keeping out = reverse(consumed
  // prefix); on symbol a call a subtransducer computing a . out.
  std::map<Symbol, TransducerPtr> prepends;
  for (Symbol a : alphabet) {
    SEQLOG_ASSIGN_OR_RETURN(
        TransducerPtr p,
        MakePrependSymbol(StrCat(name, "_prepend_", a), a));
    prepends[a] = std::move(p);
  }
  TransducerBuilder b(std::move(name), 1);
  StateId q = b.State("q0");
  for (Symbol a : alphabet) {
    b.Add(q, {SymPattern::Exact(a)}, q, {HeadMove::kAdvance},
          Output::Call(prepends[a]));
  }
  return b.Build();
}

Result<TransducerPtr> MakeEcho(std::string name,
                               const std::vector<Symbol>& alphabet) {
  // On symbol a, call a subtransducer computing out . a . a.
  std::map<Symbol, TransducerPtr> appenders;
  for (Symbol a : alphabet) {
    TransducerBuilder sub(StrCat(name, "_twice_", a), 2);
    StateId e0 = sub.State("copy");
    StateId e1 = sub.State("first");
    StateId e2 = sub.State("second");
    sub.Add(e0, {SymPattern::Wildcard(), SymPattern::Any()}, e0,
            {HeadMove::kStay, HeadMove::kAdvance}, Output::Echo(1));
    sub.Add(e0, {SymPattern::Any(), SymPattern::Marker()}, e1,
            {HeadMove::kAdvance, HeadMove::kStay}, Output::Emit(a));
    sub.Add(e1, {SymPattern::Any(), SymPattern::Marker()}, e2,
            {HeadMove::kAdvance, HeadMove::kStay}, Output::Emit(a));
    sub.Add(e2, {SymPattern::Any(), SymPattern::Marker()}, e2,
            {HeadMove::kAdvance, HeadMove::kStay}, Output::Epsilon());
    SEQLOG_ASSIGN_OR_RETURN(TransducerPtr p, sub.Build());
    appenders[a] = std::move(p);
  }
  TransducerBuilder b(std::move(name), 1);
  StateId q = b.State("q0");
  for (Symbol a : alphabet) {
    b.Add(q, {SymPattern::Exact(a)}, q, {HeadMove::kAdvance},
          Output::Call(appenders[a]));
  }
  return b.Build();
}

Result<TransducerPtr> MakeSquare(std::string name) {
  SEQLOG_ASSIGN_OR_RETURN(TransducerPtr append,
                          MakeAppend(StrCat(name, "_append"), 2));
  TransducerBuilder b(std::move(name), 1);
  StateId q = b.State("q0");
  b.Add(q, {SymPattern::Any()}, q, {HeadMove::kAdvance},
        Output::Call(append));
  return b.Build();
}

Result<TransducerPtr> MakeSquareTotal(std::string name) {
  SEQLOG_ASSIGN_OR_RETURN(TransducerPtr append3,
                          MakeAppend(StrCat(name, "_append3"), 3));
  TransducerBuilder b(std::move(name), 2);
  StateId q = b.State("q0");
  b.Add(q, {SymPattern::Any(), SymPattern::Wildcard()}, q,
        {HeadMove::kAdvance, HeadMove::kStay}, Output::Call(append3));
  b.Add(q, {SymPattern::Marker(), SymPattern::Any()}, q,
        {HeadMove::kStay, HeadMove::kAdvance}, Output::Call(append3));
  return b.Build();
}

Result<TransducerPtr> MakeDoubleExp(std::string name) {
  SEQLOG_ASSIGN_OR_RETURN(TransducerPtr square,
                          MakeSquareTotal(StrCat(name, "_square")));
  TransducerBuilder b(std::move(name), 1);
  StateId q = b.State("q0");
  b.Add(q, {SymPattern::Any()}, q, {HeadMove::kAdvance},
        Output::Call(square));
  return b.Build();
}

}  // namespace transducer
}  // namespace seqlog
