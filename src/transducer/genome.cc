#include "transducer/genome.h"

#include <array>

namespace seqlog {
namespace transducer {

namespace {

Symbol S(SymbolTable* symbols, char c) {
  return symbols->Intern(std::string_view(&c, 1));
}

/// The standard genetic code, indexed by codon over u,c,a,g. '*' marks
/// stop codons.
struct CodonRow {
  const char* codon;
  char amino_acid;
};

constexpr CodonRow kGeneticCode[] = {
    {"uuu", 'F'}, {"uuc", 'F'}, {"uua", 'L'}, {"uug", 'L'},
    {"cuu", 'L'}, {"cuc", 'L'}, {"cua", 'L'}, {"cug", 'L'},
    {"auu", 'I'}, {"auc", 'I'}, {"aua", 'I'}, {"aug", 'M'},
    {"guu", 'V'}, {"guc", 'V'}, {"gua", 'V'}, {"gug", 'V'},
    {"ucu", 'S'}, {"ucc", 'S'}, {"uca", 'S'}, {"ucg", 'S'},
    {"ccu", 'P'}, {"ccc", 'P'}, {"cca", 'P'}, {"ccg", 'P'},
    {"acu", 'T'}, {"acc", 'T'}, {"aca", 'T'}, {"acg", 'T'},
    {"gcu", 'A'}, {"gcc", 'A'}, {"gca", 'A'}, {"gcg", 'A'},
    {"uau", 'Y'}, {"uac", 'Y'}, {"uaa", '*'}, {"uag", '*'},
    {"cau", 'H'}, {"cac", 'H'}, {"caa", 'Q'}, {"cag", 'Q'},
    {"aau", 'N'}, {"aac", 'N'}, {"aaa", 'K'}, {"aag", 'K'},
    {"gau", 'D'}, {"gac", 'D'}, {"gaa", 'E'}, {"gag", 'E'},
    {"ugu", 'C'}, {"ugc", 'C'}, {"uga", '*'}, {"ugg", 'W'},
    {"cgu", 'R'}, {"cgc", 'R'}, {"cga", 'R'}, {"cgg", 'R'},
    {"agu", 'S'}, {"agc", 'S'}, {"aga", 'R'}, {"agg", 'R'},
    {"ggu", 'G'}, {"ggc", 'G'}, {"gga", 'G'}, {"ggg", 'G'},
};

}  // namespace

Result<TransducerPtr> MakeTranscribe(std::string name,
                                     SymbolTable* symbols) {
  std::map<Symbol, Symbol> mapping = {
      {S(symbols, 'a'), S(symbols, 'u')},
      {S(symbols, 'c'), S(symbols, 'g')},
      {S(symbols, 'g'), S(symbols, 'c')},
      {S(symbols, 't'), S(symbols, 'a')},
  };
  return MakeMap(std::move(name), mapping, /*pass_unmapped=*/false);
}

Result<TransducerPtr> MakeDnaComplement(std::string name,
                                        SymbolTable* symbols) {
  std::map<Symbol, Symbol> mapping = {
      {S(symbols, 'a'), S(symbols, 't')},
      {S(symbols, 't'), S(symbols, 'a')},
      {S(symbols, 'c'), S(symbols, 'g')},
      {S(symbols, 'g'), S(symbols, 'c')},
  };
  return MakeMap(std::move(name), mapping, /*pass_unmapped=*/false);
}

Result<TransducerPtr> MakeTranslate(std::string name,
                                    SymbolTable* symbols) {
  std::map<std::vector<Symbol>, Symbol> codons;
  for (const CodonRow& row : kGeneticCode) {
    std::vector<Symbol> codon = {S(symbols, row.codon[0]),
                                 S(symbols, row.codon[1]),
                                 S(symbols, row.codon[2])};
    codons[codon] = S(symbols, row.amino_acid);
  }
  return MakeCodonTranslate(std::move(name), codons);
}

Result<TransducerPtr> MakeDnaReverse(std::string name,
                                     SymbolTable* symbols) {
  std::vector<Symbol> alphabet = {S(symbols, 'a'), S(symbols, 'c'),
                                  S(symbols, 'g'), S(symbols, 't')};
  return MakeReverse(std::move(name), alphabet);
}

}  // namespace transducer
}  // namespace seqlog
