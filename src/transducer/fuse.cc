#include "transducer/fuse.h"

#include <algorithm>
#include <deque>
#include <map>
#include <utility>
#include <vector>

#include "base/string_util.h"
#include "sequence/sequence_pool.h"

namespace seqlog {
namespace transducer {
namespace {

Status Refuse(const char* code, const std::string& machine,
              std::string message, analysis::DiagnosticReport* report) {
  if (report != nullptr) {
    report->Add(code, analysis::Severity::kError, ast::SourceLoc{}, machine,
                message);
  }
  return Status::FailedPrecondition(
      StrCat(code, ": chain '", machine, "': ", message));
}

// One machine grounded to a dense (state x alphabet) table; order-1
// single-input rows emit at most one symbol per step.
struct GroundTable {
  struct Cell {
    uint32_t next = DetTransducer::kStuck;
    bool has_out = false;
    Symbol out = 0;
  };
  std::vector<Symbol> alphabet;      // sorted unique
  std::vector<uint32_t> sym_index;   // symbol -> alphabet index
  std::vector<Cell> cells;           // num_states * alphabet.size()
  size_t num_states = 0;
  uint32_t initial = 0;

  uint32_t SymIndex(Symbol s) const {
    return s < sym_index.size() ? sym_index[s]
                                : DetTransducer::kStuck;
  }
  const Cell* Find(uint32_t state, Symbol s) const {
    const uint32_t si = SymIndex(s);
    if (si == DetTransducer::kStuck) return nullptr;
    const Cell& cell = cells[state * alphabet.size() + si];
    return cell.next == DetTransducer::kStuck ? nullptr : &cell;
  }
};

GroundTable Ground(const Transducer& machine,
                   std::span<const Symbol> alphabet) {
  GroundTable table;
  table.alphabet.assign(alphabet.begin(), alphabet.end());
  std::sort(table.alphabet.begin(), table.alphabet.end());
  table.alphabet.erase(
      std::unique(table.alphabet.begin(), table.alphabet.end()),
      table.alphabet.end());
  table.num_states = machine.num_states();
  table.initial = machine.initial_state();
  Symbol max_sym = table.alphabet.empty() ? 0 : table.alphabet.back();
  table.sym_index.assign(table.alphabet.empty() ? 0 : max_sym + 1,
                         DetTransducer::kStuck);
  for (size_t i = 0; i < table.alphabet.size(); ++i) {
    table.sym_index[table.alphabet[i]] = static_cast<uint32_t>(i);
  }
  table.cells.assign(table.num_states * table.alphabet.size(),
                     GroundTable::Cell{});
  for (const Transducer::GroundTransition& row :
       machine.EnumerateGroundTransitions(table.alphabet)) {
    if (row.scanned[0] == kEndMarker) continue;
    GroundTable::Cell& cell =
        table.cells[row.from * table.alphabet.size() +
                    table.sym_index[row.scanned[0]]];
    cell.next = row.to;
    switch (row.output.kind) {
      case Output::Kind::kEpsilon:
        break;
      case Output::Kind::kSymbol:
        cell.has_out = true;
        cell.out = row.output.symbol;
        break;
      case Output::Kind::kEcho:
        cell.has_out = true;
        cell.out = row.scanned[0];
        break;
      case Output::Kind::kCall:
        break;  // excluded by the order-1 pre-check
    }
  }
  return table;
}

// Replays every chain input up to options.verify_max_length (capped at
// verify_max_inputs) through both the fused machine and the interpreted
// node-by-node composition; any disagreement — on outputs or on where
// the composition is undefined — fails the fusion.
Status VerifyEquivalence(const Transducer& first, const Transducer& second,
                         const DetTransducer& fused,
                         std::span<const Symbol> alphabet,
                         const FuseOptions& options, FuseStats* stats,
                         const std::string& chain_name,
                         analysis::DiagnosticReport* report) {
  SequencePool pool;
  std::vector<Symbol> input;
  std::vector<Symbol> fused_out;
  size_t checked = 0;
  for (size_t len = 0; len <= options.verify_max_length; ++len) {
    if (len > 0 && alphabet.empty()) break;
    std::vector<size_t> odo(len, 0);
    while (true) {
      if (checked >= options.verify_max_inputs) {
        stats->verified_inputs = checked;
        return Status::Ok();
      }
      input.clear();
      for (size_t i = 0; i < len; ++i) input.push_back(alphabet[odo[i]]);
      ++checked;

      // Interpreted reference: second(first(x)), undefined when either
      // machine reports kFailedPrecondition.
      bool ref_defined = true;
      SeqId ref_out = kEmptySeq;
      const SeqId x = pool.Intern(SeqView(input.data(), input.size()));
      Result<SeqId> y1 = first.Apply(std::span<const SeqId>(&x, 1), &pool);
      if (!y1.ok()) {
        if (y1.status().code() != StatusCode::kFailedPrecondition) {
          return y1.status();
        }
        ref_defined = false;
      } else {
        const SeqId mid = y1.value();
        Result<SeqId> y2 =
            second.Apply(std::span<const SeqId>(&mid, 1), &pool);
        if (!y2.ok()) {
          if (y2.status().code() != StatusCode::kFailedPrecondition) {
            return y2.status();
          }
          ref_defined = false;
        } else {
          ref_out = y2.value();
        }
      }

      const bool fused_defined =
          fused.Transduce(std::span<const Symbol>(input), &fused_out);
      bool agree = fused_defined == ref_defined;
      if (agree && ref_defined) {
        SeqView ref_view = pool.View(ref_out);
        agree = ref_view.size() == fused_out.size() &&
                std::equal(ref_view.begin(), ref_view.end(),
                           fused_out.begin());
      }
      if (!agree) {
        return Refuse(
            kCodeFusionMismatch, chain_name,
            StrCat("fused machine disagrees with the node-by-node run on "
                   "an input of length ", len,
                   " — refusing the fusion"),
            report);
      }

      // Next input of this length (odometer).
      size_t pos = len;
      while (pos > 0) {
        if (++odo[pos - 1] < alphabet.size()) break;
        odo[pos - 1] = 0;
        --pos;
      }
      if (pos == 0) break;  // wrapped: all inputs of `len` done
    }
  }
  stats->verified_inputs = checked;
  return Status::Ok();
}

}  // namespace

Result<std::shared_ptr<const DetTransducer>> FuseChain(
    const Transducer& first, const Transducer& second,
    std::span<const Symbol> alphabet, const FuseOptions& options,
    FuseStats* stats, analysis::DiagnosticReport* report) {
  FuseStats local_stats;
  FuseStats* st = stats != nullptr ? stats : &local_stats;
  *st = FuseStats{};
  const std::string chain_name =
      StrCat("fuse(", first.name(), ",", second.name(), ")");
  if (first.NumInputs() != 1 || second.NumInputs() != 1) {
    return Refuse(kCodeFusionUnsupported, chain_name,
                  "only single-input machines fuse (a multi-input node "
                  "reads tapes the product cannot track)",
                  report);
  }
  if (first.Order() != 1 || second.Order() != 1) {
    return Refuse(kCodeFusionUnsupported, chain_name,
                  "only order-1 machines fuse (a subtransducer call "
                  "needs the unmaterialised intermediate tape)",
                  report);
  }

  const GroundTable a = Ground(first, alphabet);
  // The intermediate alphabet is whatever `first` can emit; `second` is
  // grounded over exactly that, so chains crossing alphabets (DNA ->
  // RNA -> protein) fuse without the chain input alphabet ever naming
  // the intermediate symbols.
  std::vector<Symbol> mid_alphabet;
  for (const GroundTable::Cell& cell : a.cells) {
    if (cell.next != DetTransducer::kStuck && cell.has_out) {
      mid_alphabet.push_back(cell.out);
    }
  }
  const GroundTable b = Ground(second, mid_alphabet);

  // Lockstep product, breadth-first over reachable (A state, B state)
  // pairs: one product step consumes one chain symbol in A and pushes
  // A's emission (at most one symbol) through B.
  DetTransducer::Spec spec;
  spec.name = chain_name;
  spec.alphabet = a.alphabet;
  spec.source_states = first.num_states() + second.num_states();
  const size_t width = a.alphabet.size();

  std::map<uint64_t, uint32_t> ids;
  std::vector<std::pair<uint32_t, uint32_t>> states;
  std::deque<uint32_t> worklist;
  auto intern = [&](uint32_t sa, uint32_t sb) -> Result<uint32_t> {
    const uint64_t key = (static_cast<uint64_t>(sa) << 32) | sb;
    auto [it, inserted] =
        ids.emplace(key, static_cast<uint32_t>(states.size()));
    if (inserted) {
      if (states.size() >= options.max_states) {
        return Refuse(kCodeStateBudget, chain_name,
                      StrCat("product exceeded ", options.max_states,
                             " states"),
                      report);
      }
      states.emplace_back(sa, sb);
      worklist.push_back(it->second);
    }
    return it->second;
  };
  Result<uint32_t> start = intern(a.initial, b.initial);
  if (!start.ok()) return start.status();

  while (!worklist.empty()) {
    const uint32_t si = worklist.front();
    worklist.pop_front();
    if (spec.cells.size() < (static_cast<size_t>(si) + 1) * width) {
      spec.cells.resize((static_cast<size_t>(si) + 1) * width);
    }
    const auto [sa, sb] = states[si];
    for (size_t ai = 0; ai < width; ++ai) {
      const GroundTable::Cell& ca = a.cells[sa * width + ai];
      if (ca.next == DetTransducer::kStuck) continue;  // A stuck
      uint32_t nb = sb;
      std::vector<Symbol> emitted;
      if (ca.has_out) {
        const GroundTable::Cell* cb = b.Find(sb, ca.out);
        if (cb == nullptr) continue;  // B stuck on A's emission
        nb = cb->next;
        if (cb->has_out) emitted.push_back(cb->out);
      }
      SEQLOG_ASSIGN_OR_RETURN(uint32_t ti, intern(ca.next, nb));
      DetTransducer::Spec::Cell& cell = spec.cells[si * width + ai];
      cell.next = ti;
      cell.out = std::move(emitted);
    }
  }

  // Both machines halt exactly when the chain input ends (Definition-7
  // single-input machines are real-time), so every reachable product
  // state is final with an empty word and the fused delay is zero.
  spec.num_states = states.size();
  spec.initial = 0;
  spec.cells.resize(spec.num_states * width);
  spec.final_out.assign(spec.num_states, std::vector<Symbol>{});
  spec.delay_bound = 0;
  st->states_out = spec.num_states;

  std::shared_ptr<const DetTransducer> fused =
      DetTransducer::FromSpec(std::move(spec));
  if (Status vs = VerifyEquivalence(first, second, *fused, a.alphabet,
                                    options, st, chain_name, report);
      !vs.ok()) {
    return vs;
  }
  return fused;
}

}  // namespace transducer
}  // namespace seqlog
