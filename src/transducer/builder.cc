#include "transducer/builder.h"

#include <algorithm>

#include "base/string_util.h"

namespace seqlog {
namespace transducer {

TransducerBuilder::TransducerBuilder(std::string name, size_t num_inputs)
    : name_(std::move(name)),
      num_inputs_(num_inputs),
      machine_(new Transducer()) {
  machine_->name_ = name_;
  machine_->num_inputs_ = num_inputs_;
}

StateId TransducerBuilder::State(const std::string& name) {
  auto it = states_.find(name);
  if (it != states_.end()) return it->second;
  StateId id = static_cast<StateId>(machine_->state_names_.size());
  machine_->state_names_.push_back(name);
  states_.emplace(name, id);
  if (machine_->state_names_.size() == 1 && !initial_set_) {
    machine_->initial_ = id;
  }
  return id;
}

void TransducerBuilder::SetInitial(StateId state) {
  machine_->initial_ = state;
  initial_set_ = true;
}

TransducerBuilder& TransducerBuilder::Add(StateId from,
                                          std::vector<SymPattern> scanned,
                                          StateId to,
                                          std::vector<HeadMove> moves,
                                          Output output) {
  Transition t;
  t.from = from;
  t.scanned = std::move(scanned);
  t.to = to;
  t.moves = std::move(moves);
  t.output = std::move(output);
  machine_->rows_.push_back(std::move(t));
  return *this;
}

void TransducerBuilder::SetMaxOutputLength(size_t limit) {
  machine_->max_output_length_ = limit;
}

Result<std::shared_ptr<const Transducer>> TransducerBuilder::Build() {
  Transducer* m = machine_.get();
  if (num_inputs_ == 0) {
    return Status::InvalidArgument(
        StrCat("transducer '", name_, "' must have at least one input"));
  }
  if (m->state_names_.empty()) {
    return Status::InvalidArgument(
        StrCat("transducer '", name_, "' has no states"));
  }
  int max_callee_order = 0;
  for (size_t r = 0; r < m->rows_.size(); ++r) {
    const Transition& t = m->rows_[r];
    auto fail = [&](std::string_view what) {
      return Status::InvalidArgument(
          StrCat("transducer '", name_, "' transition ", r, ": ", what));
    };
    if (t.scanned.size() != num_inputs_ || t.moves.size() != num_inputs_) {
      return fail("pattern/move arity mismatch");
    }
    if (t.from >= m->state_names_.size() ||
        t.to >= m->state_names_.size()) {
      return fail("unknown state");
    }
    // Restriction (i): at least one head advances.
    if (std::none_of(t.moves.begin(), t.moves.end(), [](HeadMove hm) {
          return hm == HeadMove::kAdvance;
        })) {
      return fail("no head advances (restriction (i) of Definition 7)");
    }
    // Restriction (ii): heads at the marker stay. A pattern that can
    // match the marker must therefore have a kStay command.
    for (size_t i = 0; i < num_inputs_; ++i) {
      bool may_be_marker =
          t.scanned[i].kind == SymPattern::Kind::kMarker ||
          t.scanned[i].kind == SymPattern::Kind::kWildcard;
      if (may_be_marker && t.moves[i] == HeadMove::kAdvance) {
        return fail(StrCat("head ", i,
                           " may scan the marker but advances "
                           "(restriction (ii) of Definition 7)"));
      }
    }
    // Restriction (iii): callees take m+1 inputs.
    if (t.output.kind == Output::Kind::kCall) {
      if (t.output.callee == nullptr) return fail("null callee");
      if (t.output.callee->NumInputs() != num_inputs_ + 1) {
        return fail(StrCat("callee '", t.output.callee->name(),
                           "' takes ", t.output.callee->NumInputs(),
                           " inputs; a subtransducer of an ", num_inputs_,
                           "-input machine needs ", num_inputs_ + 1,
                           " (restriction (iii) of Definition 7)"));
      }
      max_callee_order =
          std::max(max_callee_order, t.output.callee->Order());
    }
    if (t.output.kind == Output::Kind::kEcho) {
      if (t.output.echo_input >= num_inputs_) {
        return fail("echo references a missing tape");
      }
      if (t.scanned[t.output.echo_input].kind == SymPattern::Kind::kMarker) {
        return fail("echo of a tape that scans the marker");
      }
    }
  }
  m->order_ = 1 + max_callee_order;
  // Group rows per state for lookup.
  m->rows_by_state_.assign(m->state_names_.size(), {});
  for (uint32_t r = 0; r < m->rows_.size(); ++r) {
    m->rows_by_state_[m->rows_[r].from].push_back(r);
  }
  return std::shared_ptr<const Transducer>(machine_.release());
}

}  // namespace transducer
}  // namespace seqlog
