// seqlog: acyclic transducer networks (Section 6.2).
//
// A network wires transducer outputs to transducer inputs. Acyclicity is
// guaranteed by construction: a node's inputs may only reference network
// inputs or earlier nodes. The network's complexity parameters are its
// *diameter* (longest node path from an input to the output, bounding the
// number of transformations a sequence undergoes) and its *order* (the
// maximum machine order). Theorem 4 bounds output sizes by these two
// parameters; Theorems 5 and 6 characterise order-2 networks as PTIME
// and order-3 networks as elementary.
//
// Networks implement SequenceFunction, so a whole network can back a
// @name(...) term in Transducer Datalog.
//
// Networks are no longer always interpreted: Compile() lowers eligible
// nodes onto dense deterministic machines (determinize.h) and fuses
// order-<=2 two-node chains into a single product machine (fuse.h), so
// a @T(...) hot path costs one table walk per input symbol instead of a
// pattern scan per node per step. Nodes the decision procedures refuse
// (multi-input wiring, subtransducer calls, failed equivalence checks)
// keep the node-by-node interpreted run — compilation never changes
// semantics, only speed.
#ifndef SEQLOG_TRANSDUCER_NETWORK_H_
#define SEQLOG_TRANSDUCER_NETWORK_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "base/result.h"
#include "transducer/determinize.h"
#include "transducer/fuse.h"
#include "transducer/transducer.h"

namespace seqlog {
namespace transducer {

/// Where one transducer input comes from.
struct InputSource {
  enum class Kind { kNetworkInput, kNode };
  Kind kind = Kind::kNetworkInput;
  size_t index = 0;

  static InputSource FromNetwork(size_t i) {
    return InputSource{Kind::kNetworkInput, i};
  }
  static InputSource FromNode(size_t node) {
    return InputSource{Kind::kNode, node};
  }
};

/// Knobs of Network::Compile.
struct NetworkCompileOptions {
  bool enable_fusion = true;  ///< false: per-node compilation only
  DeterminizeOptions determinize;
  FuseOptions fuse;
};

/// A single-output acyclic network of generalized transducers.
class TransducerNetwork : public SequenceFunction {
 public:
  TransducerNetwork(std::string name, size_t num_network_inputs)
      : name_(std::move(name)), num_inputs_(num_network_inputs) {}

  /// Adds a node running `machine` on the given sources. Sources must
  /// reference network inputs or already-added nodes (checked). Returns
  /// the node id.
  Result<size_t> AddNode(std::shared_ptr<const Transducer> machine,
                         std::vector<InputSource> inputs);

  /// Designates the node whose output is the network output.
  Status SetOutput(size_t node);

  // SequenceFunction:
  const std::string& name() const override { return name_; }
  size_t NumInputs() const override { return num_inputs_; }
  /// Maximum order of any machine in the network (Section 6.2).
  int Order() const override;
  Result<SeqId> Apply(std::span<const SeqId> inputs,
                      SequencePool* pool) const override;

  /// Apply with step statistics accumulated over all nodes.
  Result<SeqId> Run(std::span<const SeqId> inputs, SequencePool* pool,
                    RunStats* stats) const;

  /// Longest node path ending at the output node (1 for a single
  /// transducer).
  size_t Diameter() const;

  size_t num_nodes() const { return nodes_.size(); }

  /// Compiles the network for inputs over `alphabet`: fuses two-node
  /// chains (a node whose output feeds exactly one single-input
  /// successor) into one product machine via FuseChain, and lowers the
  /// remaining single-input order-1 nodes onto dense DetTransducers via
  /// CompileSingle. Nodes the decision procedures refuse — and every
  /// node downstream of a machine whose output alphabet cannot be
  /// bounded (subtransducer calls) — keep the interpreted run;
  /// per-refusal diagnostics land in `report` when non-null, and the
  /// fusion_hits/fusion_fallbacks split is in compile_stats().
  ///
  /// Call once, before the network is shared across threads (typically
  /// right before Engine::RegisterTransducer); Run stays const and
  /// thread-safe afterwards. Compiling again replaces the plan.
  Status Compile(std::span<const Symbol> alphabet,
                 const NetworkCompileOptions& options = {},
                 analysis::DiagnosticReport* report = nullptr);

  bool compiled() const { return !plan_.empty(); }

  /// Compile-time decisions and machine sizes (zero before Compile).
  /// The *_node_runs counters are reported by CollectStats, not here.
  const TransducerStats& compile_stats() const { return compile_stats_; }

  void CollectStats(TransducerStats* out) const override;

 private:
  struct Node {
    std::shared_ptr<const Transducer> machine;
    std::vector<InputSource> inputs;
  };

  /// One node of the compiled execution plan.
  struct PlanNode {
    enum class Mode : uint8_t {
      kInterpreted,  ///< run the original pattern machine
      kCompiled,     ///< run `det` (single node or a fused chain)
      kFusedAway,    ///< consumed by the successor's fused machine
    };
    Mode mode = Mode::kInterpreted;
    std::shared_ptr<const DetTransducer> det;
    /// Effective sources: a fused node reads the fused-away
    /// predecessor's sources directly.
    std::vector<InputSource> inputs;
  };

  std::string name_;
  size_t num_inputs_;
  std::vector<Node> nodes_;
  size_t output_node_ = 0;
  bool output_set_ = false;
  /// Non-empty after Compile; parallel to nodes_.
  std::vector<PlanNode> plan_;
  TransducerStats compile_stats_;
  /// Node executions on each path, cumulative over the network's
  /// lifetime (relaxed: counters only, no ordering required).
  mutable std::atomic<uint64_t> compiled_node_runs_{0};
  mutable std::atomic<uint64_t> interpreted_node_runs_{0};
};

}  // namespace transducer
}  // namespace seqlog

#endif  // SEQLOG_TRANSDUCER_NETWORK_H_
