// seqlog: acyclic transducer networks (Section 6.2).
//
// A network wires transducer outputs to transducer inputs. Acyclicity is
// guaranteed by construction: a node's inputs may only reference network
// inputs or earlier nodes. The network's complexity parameters are its
// *diameter* (longest node path from an input to the output, bounding the
// number of transformations a sequence undergoes) and its *order* (the
// maximum machine order). Theorem 4 bounds output sizes by these two
// parameters; Theorems 5 and 6 characterise order-2 networks as PTIME
// and order-3 networks as elementary.
//
// Networks implement SequenceFunction, so a whole network can back a
// @name(...) term in Transducer Datalog.
#ifndef SEQLOG_TRANSDUCER_NETWORK_H_
#define SEQLOG_TRANSDUCER_NETWORK_H_

#include <memory>
#include <string>
#include <vector>

#include "base/result.h"
#include "transducer/transducer.h"

namespace seqlog {
namespace transducer {

/// Where one transducer input comes from.
struct InputSource {
  enum class Kind { kNetworkInput, kNode };
  Kind kind = Kind::kNetworkInput;
  size_t index = 0;

  static InputSource FromNetwork(size_t i) {
    return InputSource{Kind::kNetworkInput, i};
  }
  static InputSource FromNode(size_t node) {
    return InputSource{Kind::kNode, node};
  }
};

/// A single-output acyclic network of generalized transducers.
class TransducerNetwork : public SequenceFunction {
 public:
  TransducerNetwork(std::string name, size_t num_network_inputs)
      : name_(std::move(name)), num_inputs_(num_network_inputs) {}

  /// Adds a node running `machine` on the given sources. Sources must
  /// reference network inputs or already-added nodes (checked). Returns
  /// the node id.
  Result<size_t> AddNode(std::shared_ptr<const Transducer> machine,
                         std::vector<InputSource> inputs);

  /// Designates the node whose output is the network output.
  Status SetOutput(size_t node);

  // SequenceFunction:
  const std::string& name() const override { return name_; }
  size_t NumInputs() const override { return num_inputs_; }
  /// Maximum order of any machine in the network (Section 6.2).
  int Order() const override;
  Result<SeqId> Apply(std::span<const SeqId> inputs,
                      SequencePool* pool) const override;

  /// Apply with step statistics accumulated over all nodes.
  Result<SeqId> Run(std::span<const SeqId> inputs, SequencePool* pool,
                    RunStats* stats) const;

  /// Longest node path ending at the output node (1 for a single
  /// transducer).
  size_t Diameter() const;

  size_t num_nodes() const { return nodes_.size(); }

 private:
  struct Node {
    std::shared_ptr<const Transducer> machine;
    std::vector<InputSource> inputs;
  };

  std::string name_;
  size_t num_inputs_;
  std::vector<Node> nodes_;
  size_t output_node_ = 0;
  bool output_set_ = false;
};

}  // namespace transducer
}  // namespace seqlog

#endif  // SEQLOG_TRANSDUCER_NETWORK_H_
