// seqlog: subset-construction transducer determinization (Mohri).
//
// The interpreted machines (transducer.h, nondet.h) pay a per-step
// pattern scan — and NondetTransducer enumerates every run breadth-first
// on every call. This module compiles single-input order-1 machines into
// a DetTransducer: a dense (state x alphabet) table walked once per input
// symbol, with per-transition output words and per-state final words.
//
// The algorithm is Mohri's subset construction with longest-common-prefix
// output delay: a deterministic state is a set of (NFA state, residual
// output) pairs; on each symbol the construction emits the LCP of all
// candidate outputs and keeps the remainders as residuals. Residuals
// growing past DeterminizeOptions::max_delay mean the machine violates
// the twinning property (it is not sequential) and the construction
// refuses — the bounded-delay cutoff stands in for the exact twinning
// test. Two final states of one reachable subset disagreeing on their
// total output witness a non-functional machine (two outputs for one
// input), also a refusal.
//
// A Definition-7 single-input machine advances its head every step and
// halts exactly at the marker, so every state is final with an empty
// final word and the domain is prefix-closed. In that special case
// functionality already implies sequentiality with zero stored delay —
// the residual machinery earns its keep on the general NfaTransducer IR
// below (non-final states, final words), which fusion and the decision-
// procedure tests exercise directly.
//
// Refusals are Status::FailedPrecondition carrying a stable SL- code
// (analysis/diagnostics.h), so callers can fall back to the interpreted
// path and surface the reason:
//   SL-E200  unsupported shape (multi-input or order > 1)
//   SL-E201  not functional (one input, two witnessed outputs)
//   SL-E202  not sequential (output delay exceeded the twinning cutoff)
//   SL-E203  state budget exceeded (subset or product blow-up)
#ifndef SEQLOG_TRANSDUCER_DETERMINIZE_H_
#define SEQLOG_TRANSDUCER_DETERMINIZE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "base/result.h"
#include "sequence/seq_function.h"
#include "transducer/nondet.h"
#include "transducer/transducer.h"

namespace seqlog {
namespace transducer {

/// Stable diagnostic codes of the compilation decision procedures.
inline constexpr char kCodeUnsupportedShape[] = "SL-E200";
inline constexpr char kCodeNotFunctional[] = "SL-E201";
inline constexpr char kCodeNotSequential[] = "SL-E202";
inline constexpr char kCodeStateBudget[] = "SL-E203";
inline constexpr char kCodeFusionUnsupported[] = "SL-E204";
inline constexpr char kCodeFusionMismatch[] = "SL-E205";

/// One ground transition of the determinizer's input IR.
struct NfaTransition {
  StateId from = 0;
  Symbol sym = 0;  ///< scanned input symbol (never kEndMarker)
  StateId to = 0;
  std::vector<Symbol> out;  ///< output word appended by this step
};

/// The determinizer's input: a ground (pattern-free) nondeterministic
/// transducer over an explicit finite alphabet, with per-state optional
/// final output words — the classical transducer model, strictly more
/// general than a Definition-7 machine (which is the all-states-final,
/// empty-final-word special case produced by NfaFromNondet).
struct NfaTransducer {
  std::string name;
  size_t num_states = 0;
  StateId initial = 0;
  std::vector<NfaTransition> rows;
  /// Per state: the word appended when input ends here, or nullopt when
  /// the state is not final (a run ending here yields no output).
  std::vector<std::optional<std::vector<Symbol>>> final_out;
  std::vector<Symbol> alphabet;  ///< input alphabet (no kEndMarker)
};

struct DeterminizeOptions {
  size_t max_states = 1u << 14;  ///< subset-state budget (SL-E203)
  size_t max_delay = 64;         ///< residual-length cutoff (SL-E202)
};

struct DeterminizeStats {
  size_t states_in = 0;       ///< NFA states (after trimming)
  size_t states_out = 0;      ///< deterministic subset states
  size_t transitions_out = 0;
  size_t max_delay = 0;       ///< longest residual kept in any subset
};

/// A compiled deterministic sequence transducer: dense transition table,
/// O(1) per input symbol, no pattern scan, no allocation per step beyond
/// the output buffer. Implements SequenceFunction (single input,
/// order 1), so compiled machines back @T(...) terms directly.
///
/// Immutable after construction; safe to share across threads.
class DetTransducer : public SequenceFunction {
 public:
  static constexpr uint32_t kStuck = UINT32_MAX;

  /// Construction input (used by Determinize and FuseChain).
  struct Spec {
    struct Cell {
      uint32_t next = kStuck;  ///< kStuck = undefined (partial machine)
      std::vector<Symbol> out;
    };
    std::string name;
    std::vector<Symbol> alphabet;  ///< sorted, unique, no kEndMarker
    size_t num_states = 0;
    uint32_t initial = 0;
    std::vector<Cell> cells;  ///< dense num_states * alphabet.size()
    std::vector<std::optional<std::vector<Symbol>>> final_out;
    size_t delay_bound = 0;
    size_t source_states = 0;  ///< states of the machine compiled from
  };
  static std::shared_ptr<const DetTransducer> FromSpec(Spec spec);

  // SequenceFunction:
  const std::string& name() const override { return name_; }
  size_t NumInputs() const override { return 1; }
  int Order() const override { return 1; }
  Result<SeqId> Apply(std::span<const SeqId> inputs,
                      SequencePool* pool) const override;
  void CollectStats(TransducerStats* out) const override;

  /// Pool-free core: transduces `input` into `*out` (cleared first).
  /// False when the machine is undefined on `input` (stuck mid-way, an
  /// out-of-alphabet symbol, or ending in a non-final state).
  bool Transduce(std::span<const Symbol> input,
                 std::vector<Symbol>* out) const;

  size_t num_states() const { return num_states_; }
  size_t source_states() const { return source_states_; }
  size_t delay_bound() const { return delay_bound_; }
  const std::vector<Symbol>& alphabet() const { return alphabet_; }

 private:
  struct Cell {
    uint32_t next = kStuck;
    uint32_t out_begin = 0;
    uint32_t out_len = 0;
  };
  struct Final {
    bool is_final = false;
    uint32_t out_begin = 0;
    uint32_t out_len = 0;
  };

  DetTransducer() = default;

  /// Dense alphabet index of `s`, or kStuck when out of alphabet.
  uint32_t SymIndex(Symbol s) const {
    return s < sym_index_.size() ? sym_index_[s] : kStuck;
  }

  std::string name_;
  std::vector<Symbol> alphabet_;
  std::vector<uint32_t> sym_index_;  ///< symbol -> alphabet index
  size_t num_states_ = 0;
  uint32_t initial_ = 0;
  std::vector<Cell> table_;  ///< num_states_ * alphabet_.size()
  std::vector<Final> final_;
  std::vector<Symbol> out_pool_;  ///< all output words, concatenated
  size_t delay_bound_ = 0;
  size_t source_states_ = 0;
};

/// Mohri subset-construction determinization of `machine`. On success the
/// result computes exactly the machine's input/output function (which the
/// construction proves single-valued along the way). Refusals are
/// kFailedPrecondition with an SL-E20x code in the message; when `report`
/// is non-null the refusal is also added there as a coded Diagnostic.
Result<std::shared_ptr<const DetTransducer>> Determinize(
    const NfaTransducer& machine, const DeterminizeOptions& options = {},
    DeterminizeStats* stats = nullptr,
    analysis::DiagnosticReport* report = nullptr);

/// Grounds a single-input order-1 NondetTransducer over `alphabet` into
/// the determinizer IR (every state final with an empty word — Definition
/// 7 machines halt exactly at the marker). SL-E200 for other shapes.
Result<NfaTransducer> NfaFromNondet(const NondetTransducer& machine,
                                    std::span<const Symbol> alphabet);

/// Grounds a single-input order-1 deterministic Transducer (first-match-
/// wins already resolved by EnumerateGroundTransitions). SL-E200 for
/// other shapes.
Result<NfaTransducer> NfaFromDeterministic(const Transducer& machine,
                                           std::span<const Symbol> alphabet);

/// NfaFromNondet + Determinize.
Result<std::shared_ptr<const DetTransducer>> DeterminizeMachine(
    const NondetTransducer& machine, std::span<const Symbol> alphabet,
    const DeterminizeOptions& options = {}, DeterminizeStats* stats = nullptr,
    analysis::DiagnosticReport* report = nullptr);

/// Compiles one deterministic pattern machine to its dense form
/// (NfaFromDeterministic + Determinize; the subset construction is then
/// exact and cheap — all subsets are singletons). Network::Compile uses
/// this for nodes it cannot fuse.
Result<std::shared_ptr<const DetTransducer>> CompileSingle(
    const Transducer& machine, std::span<const Symbol> alphabet,
    const DeterminizeOptions& options = {}, DeterminizeStats* stats = nullptr,
    analysis::DiagnosticReport* report = nullptr);

}  // namespace transducer
}  // namespace seqlog

#endif  // SEQLOG_TRANSDUCER_DETERMINIZE_H_
