#include "transducer/determinize.h"

#include <algorithm>
#include <deque>
#include <map>
#include <utility>

#include "base/string_util.h"

namespace seqlog {
namespace transducer {
namespace {

// A refusal is both a coded diagnostic (when the caller wants the
// report) and a kFailedPrecondition whose message leads with the same
// stable code, so fallback sites can branch on the code alone.
Status Refuse(const char* code, const std::string& machine,
              std::string message, analysis::DiagnosticReport* report) {
  if (report != nullptr) {
    report->Add(code, analysis::Severity::kError, ast::SourceLoc{}, machine,
                message);
  }
  return Status::FailedPrecondition(
      StrCat(code, ": machine '", machine, "': ", message));
}

// Largest symbol id we are willing to build a dense symbol->index table
// for. Alphabet symbols come from SymbolTable interning, so they are
// small in practice; the bound only guards against kEndMarker leaking in.
constexpr Symbol kMaxAlphabetSymbol = 1u << 20;

Status ValidateAlphabet(const std::string& machine,
                        std::span<const Symbol> alphabet) {
  for (Symbol s : alphabet) {
    if (s >= kMaxAlphabetSymbol) {
      return Status::InvalidArgument(
          StrCat("machine '", machine, "': alphabet symbol ", s,
                 " out of range (marker cannot be an input symbol)"));
    }
  }
  return Status::Ok();
}

std::vector<Symbol> SortedUnique(std::span<const Symbol> alphabet) {
  std::vector<Symbol> out(alphabet.begin(), alphabet.end());
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

// One element of a deterministic subset state: an NFA state plus the
// output this run still owes beyond what the subset has emitted.
struct Residual {
  StateId state;
  std::vector<Symbol> out;

  bool operator<(const Residual& o) const {
    return state != o.state ? state < o.state : out < o.out;
  }
  bool operator==(const Residual& o) const {
    return state == o.state && out == o.out;
  }
};

using Subset = std::vector<Residual>;

std::vector<uint32_t> SubsetKey(const Subset& subset) {
  std::vector<uint32_t> key;
  key.reserve(subset.size() * 3);
  for (const Residual& r : subset) {
    key.push_back(r.state);
    key.push_back(static_cast<uint32_t>(r.out.size()));
    key.insert(key.end(), r.out.begin(), r.out.end());
  }
  return key;
}

// Longest common prefix length of `a` and `b`.
size_t LcpLen(std::span<const Symbol> a, std::span<const Symbol> b) {
  size_t n = std::min(a.size(), b.size());
  size_t i = 0;
  while (i < n && a[i] == b[i]) ++i;
  return i;
}

}  // namespace

std::shared_ptr<const DetTransducer> DetTransducer::FromSpec(Spec spec) {
  auto m = std::shared_ptr<DetTransducer>(new DetTransducer());
  m->name_ = std::move(spec.name);
  m->alphabet_ = std::move(spec.alphabet);
  m->num_states_ = spec.num_states;
  m->initial_ = spec.initial;
  m->delay_bound_ = spec.delay_bound;
  m->source_states_ = spec.source_states;

  Symbol max_sym = 0;
  for (Symbol s : m->alphabet_) max_sym = std::max(max_sym, s);
  m->sym_index_.assign(m->alphabet_.empty() ? 0 : max_sym + 1, kStuck);
  for (size_t i = 0; i < m->alphabet_.size(); ++i) {
    m->sym_index_[m->alphabet_[i]] = static_cast<uint32_t>(i);
  }

  m->table_.resize(spec.cells.size());
  for (size_t i = 0; i < spec.cells.size(); ++i) {
    m->table_[i].next = spec.cells[i].next;
    m->table_[i].out_begin = static_cast<uint32_t>(m->out_pool_.size());
    m->table_[i].out_len = static_cast<uint32_t>(spec.cells[i].out.size());
    m->out_pool_.insert(m->out_pool_.end(), spec.cells[i].out.begin(),
                        spec.cells[i].out.end());
  }
  m->final_.resize(spec.final_out.size());
  for (size_t i = 0; i < spec.final_out.size(); ++i) {
    if (!spec.final_out[i].has_value()) continue;
    m->final_[i].is_final = true;
    m->final_[i].out_begin = static_cast<uint32_t>(m->out_pool_.size());
    m->final_[i].out_len = static_cast<uint32_t>(spec.final_out[i]->size());
    m->out_pool_.insert(m->out_pool_.end(), spec.final_out[i]->begin(),
                        spec.final_out[i]->end());
  }
  return m;
}

bool DetTransducer::Transduce(std::span<const Symbol> input,
                              std::vector<Symbol>* out) const {
  out->clear();
  if (num_states_ == 0) return false;
  uint32_t state = initial_;
  const size_t width = alphabet_.size();
  for (Symbol s : input) {
    const uint32_t si = SymIndex(s);
    if (si == kStuck) return false;
    const Cell& cell = table_[state * width + si];
    if (cell.next == kStuck) return false;
    out->insert(out->end(), out_pool_.begin() + cell.out_begin,
                out_pool_.begin() + cell.out_begin + cell.out_len);
    state = cell.next;
  }
  const Final& fin = final_[state];
  if (!fin.is_final) return false;
  out->insert(out->end(), out_pool_.begin() + fin.out_begin,
              out_pool_.begin() + fin.out_begin + fin.out_len);
  return true;
}

Result<SeqId> DetTransducer::Apply(std::span<const SeqId> inputs,
                                   SequencePool* pool) const {
  if (inputs.size() != 1) {
    return Status::InvalidArgument(
        StrCat("machine '", name_, "' takes 1 input, got ", inputs.size()));
  }
  std::vector<Symbol> out;
  if (!Transduce(pool->View(inputs[0]), &out)) {
    return Status::FailedPrecondition(
        StrCat("machine '", name_, "' undefined on input"));
  }
  return pool->Intern(SeqView(out.data(), out.size()));
}

void DetTransducer::CollectStats(TransducerStats* out) const {
  out->machines_compiled += 1;
  out->states_in += source_states_;
  out->states_out += num_states_;
  out->delay_bound = std::max(out->delay_bound, delay_bound_);
}

Result<NfaTransducer> NfaFromNondet(const NondetTransducer& machine,
                                    std::span<const Symbol> alphabet) {
  if (machine.NumInputs() != 1 || machine.Order() != 1) {
    return Refuse(kCodeUnsupportedShape, machine.name(),
                  StrCat("determinization needs a single-input order-1 "
                         "machine; this one has ",
                         machine.NumInputs(), " input(s), order ",
                         machine.Order()),
                  nullptr);
  }
  if (Status vs = ValidateAlphabet(machine.name(), alphabet); !vs.ok()) {
    return vs;
  }

  NfaTransducer nfa;
  nfa.name = machine.name();
  nfa.num_states = machine.num_states();
  nfa.initial = machine.initial_state();
  nfa.alphabet = SortedUnique(alphabet);
  // Definition-7 single-input machines advance their only head every
  // step and halt exactly at the marker: every state is final with an
  // empty final word, and no row can scan the marker (the builders
  // reject marker/stay rows on the sole tape).
  nfa.final_out.assign(nfa.num_states, std::vector<Symbol>{});
  for (const NdTransition& row : machine.transitions()) {
    const SymPattern& pat = row.scanned[0];
    if (pat.kind == SymPattern::Kind::kMarker) continue;
    for (Symbol a : nfa.alphabet) {
      if (!pat.Matches(a)) continue;
      NfaTransition t;
      t.from = row.from;
      t.sym = a;
      t.to = row.to;
      switch (row.output.kind) {
        case NdOutput::Kind::kEpsilon:
          break;
        case NdOutput::Kind::kSymbol:
          t.out.push_back(row.output.symbol);
          break;
        case NdOutput::Kind::kEcho:
          t.out.push_back(a);
          break;
        case NdOutput::Kind::kCall:
          return Refuse(kCodeUnsupportedShape, machine.name(),
                        "subtransducer calls cannot be determinized",
                        nullptr);
      }
      nfa.rows.push_back(std::move(t));
    }
  }
  return nfa;
}

Result<NfaTransducer> NfaFromDeterministic(const Transducer& machine,
                                           std::span<const Symbol> alphabet) {
  if (machine.NumInputs() != 1 || machine.Order() != 1) {
    return Refuse(kCodeUnsupportedShape, machine.name(),
                  StrCat("compilation needs a single-input order-1 "
                         "machine; this one has ",
                         machine.NumInputs(), " input(s), order ",
                         machine.Order()),
                  nullptr);
  }
  if (Status vs = ValidateAlphabet(machine.name(), alphabet); !vs.ok()) {
    return vs;
  }

  NfaTransducer nfa;
  nfa.name = machine.name();
  nfa.num_states = machine.num_states();
  nfa.initial = machine.initial_state();
  nfa.alphabet = SortedUnique(alphabet);
  nfa.final_out.assign(nfa.num_states, std::vector<Symbol>{});
  // EnumerateGroundTransitions resolves first-match-wins priority: at
  // most one ground row per (state, symbol) survives, so the NFA below
  // is in fact deterministic and the subset construction is exact.
  for (const Transducer::GroundTransition& row :
       machine.EnumerateGroundTransitions(alphabet)) {
    if (row.scanned[0] == kEndMarker) continue;
    NfaTransition t;
    t.from = row.from;
    t.sym = row.scanned[0];
    t.to = row.to;
    switch (row.output.kind) {
      case Output::Kind::kEpsilon:
        break;
      case Output::Kind::kSymbol:
        t.out.push_back(row.output.symbol);
        break;
      case Output::Kind::kEcho:
        t.out.push_back(row.scanned[0]);
        break;
      case Output::Kind::kCall:
        return Refuse(kCodeUnsupportedShape, machine.name(),
                      "subtransducer calls cannot be compiled", nullptr);
    }
    nfa.rows.push_back(std::move(t));
  }
  return nfa;
}

Result<std::shared_ptr<const DetTransducer>> Determinize(
    const NfaTransducer& machine, const DeterminizeOptions& options,
    DeterminizeStats* stats, analysis::DiagnosticReport* report) {
  DeterminizeStats local_stats;
  DeterminizeStats* st = stats != nullptr ? stats : &local_stats;
  *st = DeterminizeStats{};
  if (Status vs = ValidateAlphabet(machine.name, machine.alphabet);
      !vs.ok()) {
    return vs;
  }
  if (machine.num_states == 0 || machine.initial >= machine.num_states ||
      machine.final_out.size() != machine.num_states) {
    return Status::InvalidArgument(
        StrCat("machine '", machine.name, "': malformed NFA"));
  }
  for (const NfaTransition& row : machine.rows) {
    if (row.from >= machine.num_states || row.to >= machine.num_states) {
      return Status::InvalidArgument(
          StrCat("machine '", machine.name, "': transition state out of "
                 "range"));
    }
  }

  const std::vector<Symbol> alphabet = SortedUnique(machine.alphabet);
  const size_t width = alphabet.size();
  Symbol max_sym = alphabet.empty() ? 0 : alphabet.back();
  std::vector<uint32_t> sym_index(max_sym + 1, DetTransducer::kStuck);
  for (size_t i = 0; i < width; ++i) {
    sym_index[alphabet[i]] = static_cast<uint32_t>(i);
  }

  // Trim to co-accessible states (states from which a final state is
  // reachable): a run stranded in a non-co-accessible state can never
  // yield, so its residual must not constrain the LCP — classical Mohri
  // assumes a trimmed machine and diverges otherwise.
  std::vector<char> coacc(machine.num_states, 0);
  {
    std::vector<std::vector<StateId>> rev(machine.num_states);
    for (const NfaTransition& row : machine.rows) {
      rev[row.to].push_back(row.from);
    }
    std::deque<StateId> queue;
    for (StateId q = 0; q < machine.num_states; ++q) {
      if (machine.final_out[q].has_value()) {
        coacc[q] = 1;
        queue.push_back(q);
      }
    }
    while (!queue.empty()) {
      StateId q = queue.front();
      queue.pop_front();
      for (StateId p : rev[q]) {
        if (!coacc[p]) {
          coacc[p] = 1;
          queue.push_back(p);
        }
      }
    }
  }
  st->states_in = machine.num_states;

  // Per (state, alphabet index): surviving transition rows.
  std::vector<std::vector<uint32_t>> trans(machine.num_states * width);
  for (uint32_t ri = 0; ri < machine.rows.size(); ++ri) {
    const NfaTransition& row = machine.rows[ri];
    if (!coacc[row.from] || !coacc[row.to]) continue;
    trans[row.from * width + sym_index[row.sym]].push_back(ri);
  }

  DetTransducer::Spec spec;
  spec.name = machine.name;
  spec.alphabet = alphabet;
  spec.source_states = machine.num_states;

  std::map<std::vector<uint32_t>, uint32_t> subset_ids;
  std::vector<Subset> subsets;
  std::deque<uint32_t> worklist;

  // Registers `subset` (sorted, deduped), enforcing the delay cutoff and
  // the functionality check, and returns its deterministic state id.
  auto intern_subset = [&](Subset subset,
                           size_t depth) -> Result<uint32_t> {
    std::sort(subset.begin(), subset.end());
    subset.erase(std::unique(subset.begin(), subset.end()), subset.end());
    for (const Residual& r : subset) {
      st->max_delay = std::max(st->max_delay, r.out.size());
      if (r.out.size() > options.max_delay) {
        return Refuse(
            kCodeNotSequential, machine.name,
            StrCat("output delay exceeded ", options.max_delay,
                   " after an input of length ", depth,
                   ": the machine is not sequential (twinning violated)"),
            report);
      }
    }
    // Two final members disagreeing on their total remaining output
    // witness two outputs for the input that reaches this subset.
    const std::vector<Symbol>* final_word = nullptr;
    for (const Residual& r : subset) {
      if (!machine.final_out[r.state].has_value()) continue;
      std::vector<Symbol> total = r.out;
      total.insert(total.end(), machine.final_out[r.state]->begin(),
                   machine.final_out[r.state]->end());
      if (final_word == nullptr) {
        spec.final_out.emplace_back(std::move(total));
        final_word = &*spec.final_out.back();
      } else if (*final_word != total) {
        spec.final_out.pop_back();
        return Refuse(
            kCodeNotFunctional, machine.name,
            StrCat("an input of length ", depth,
                   " has two distinct outputs: the machine is not "
                   "functional"),
            report);
      }
    }
    if (final_word == nullptr) spec.final_out.emplace_back(std::nullopt);

    std::vector<uint32_t> key = SubsetKey(subset);
    auto [it, inserted] =
        subset_ids.emplace(std::move(key),
                           static_cast<uint32_t>(subsets.size()));
    if (!inserted) {
      spec.final_out.pop_back();  // already recorded for this subset
      return it->second;
    }
    if (subsets.size() >= options.max_states) {
      return Refuse(kCodeStateBudget, machine.name,
                    StrCat("subset construction exceeded ",
                           options.max_states, " states"),
                    report);
    }
    subsets.push_back(std::move(subset));
    worklist.push_back(it->second);
    return it->second;
  };

  if (!coacc[machine.initial]) {
    // The machine yields on no input at all: the compiled form is a
    // single stuck, non-final state (the everywhere-undefined function).
    spec.num_states = 1;
    spec.initial = 0;
    spec.cells.assign(width, DetTransducer::Spec::Cell{});
    spec.final_out.assign(1, std::nullopt);
    st->states_out = 1;
    return DetTransducer::FromSpec(std::move(spec));
  }

  SEQLOG_ASSIGN_OR_RETURN(uint32_t start,
                          intern_subset({{machine.initial, {}}}, 0));
  (void)start;
  std::vector<size_t> depth_of(1, 0);

  while (!worklist.empty()) {
    const uint32_t si = worklist.front();
    worklist.pop_front();
    const size_t depth = depth_of[si];
    // Cells for this subset land at rows [si*width, (si+1)*width).
    if (spec.cells.size() < (static_cast<size_t>(si) + 1) * width) {
      spec.cells.resize((static_cast<size_t>(si) + 1) * width);
    }
    for (size_t ai = 0; ai < width; ++ai) {
      // Candidate successors: every surviving run extended by one step.
      Subset cands;
      for (const Residual& r : subsets[si]) {
        for (uint32_t ri : trans[r.state * width + ai]) {
          const NfaTransition& row = machine.rows[ri];
          Residual next;
          next.state = row.to;
          next.out = r.out;
          next.out.insert(next.out.end(), row.out.begin(), row.out.end());
          cands.push_back(std::move(next));
        }
      }
      if (cands.empty()) continue;  // stuck cell
      // Emit the longest common prefix of all candidate outputs; the
      // remainders become the residuals of the successor subset.
      size_t lcp = cands[0].out.size();
      for (size_t ci = 1; ci < cands.size() && lcp > 0; ++ci) {
        lcp = std::min(lcp, LcpLen(cands[0].out, cands[ci].out));
      }
      std::vector<Symbol> emitted(cands[0].out.begin(),
                                  cands[0].out.begin() + lcp);
      for (Residual& r : cands) {
        r.out.erase(r.out.begin(), r.out.begin() + lcp);
      }
      SEQLOG_ASSIGN_OR_RETURN(uint32_t ti,
                              intern_subset(std::move(cands), depth + 1));
      if (depth_of.size() <= ti) depth_of.resize(ti + 1, depth + 1);
      DetTransducer::Spec::Cell& cell = spec.cells[si * width + ai];
      cell.next = ti;
      cell.out = std::move(emitted);
      ++st->transitions_out;
    }
  }

  spec.num_states = subsets.size();
  spec.initial = 0;
  spec.cells.resize(spec.num_states * width);
  spec.final_out.resize(spec.num_states);
  spec.delay_bound = st->max_delay;
  st->states_out = spec.num_states;
  return DetTransducer::FromSpec(std::move(spec));
}

Result<std::shared_ptr<const DetTransducer>> DeterminizeMachine(
    const NondetTransducer& machine, std::span<const Symbol> alphabet,
    const DeterminizeOptions& options, DeterminizeStats* stats,
    analysis::DiagnosticReport* report) {
  SEQLOG_ASSIGN_OR_RETURN(NfaTransducer nfa,
                          NfaFromNondet(machine, alphabet));
  return Determinize(nfa, options, stats, report);
}

Result<std::shared_ptr<const DetTransducer>> CompileSingle(
    const Transducer& machine, std::span<const Symbol> alphabet,
    const DeterminizeOptions& options, DeterminizeStats* stats,
    analysis::DiagnosticReport* report) {
  SEQLOG_ASSIGN_OR_RETURN(NfaTransducer nfa,
                          NfaFromDeterministic(machine, alphabet));
  return Determinize(nfa, options, stats, report);
}

}  // namespace transducer
}  // namespace seqlog
