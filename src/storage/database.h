// seqlog: a database / Herbrand interpretation (Sections 2.2 and 3.3).
//
// A Database maps predicate ids to relations. The same class represents
// both the extensional database and intermediate interpretations during
// fixpoint computation (an interpretation is any subset of the Herbrand
// base; ours are always finite sets of ground atoms).
//
// Concurrency: a Database is single-writer. Const access (Get, Contains,
// TotalFacts, row scans) is safe from many threads as long as no thread
// mutates the database — which is exactly how published snapshots are
// used (core/snapshot.h): Engine::PublishSnapshot clones the EDB into an
// immutable, shared_ptr-owned copy that readers share.
#ifndef SEQLOG_STORAGE_DATABASE_H_
#define SEQLOG_STORAGE_DATABASE_H_

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "base/result.h"
#include "storage/catalog.h"
#include "storage/relation.h"

namespace seqlog {

class ThreadPool;

/// A set of ground atoms, organised per predicate.
class Database {
 public:
  explicit Database(Catalog* catalog) : catalog_(catalog) {}
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  Catalog* catalog() const { return catalog_; }

  /// Relation for `pred`, created (empty) on first access.
  Relation* GetOrCreate(PredId pred);

  /// Relation for `pred` or nullptr if no fact with that predicate exists.
  const Relation* Get(PredId pred) const;

  /// Inserts the atom pred(tuple...); returns true if new. `pred` must be
  /// registered in the catalog and `tuple` must match its arity (both
  /// CHECKed — use TryInsert for a recoverable Status instead).
  bool Insert(PredId pred, TupleView tuple);

  /// Checked insert: kInvalidArgument when `pred` is not registered in
  /// the catalog or `tuple` does not match its arity; otherwise whether
  /// the atom was new.
  Result<bool> TryInsert(PredId pred, TupleView tuple);

  /// True if the atom is present.
  bool Contains(PredId pred, TupleView tuple) const;

  /// Total number of atoms.
  size_t TotalFacts() const;

  /// Removes every atom (keeps the catalog).
  void Clear();

  /// Copies all atoms of `other` into this database. Fails with
  /// kInvalidArgument (leaving this database partially extended) when a
  /// relation of `other` does not match this catalog's arity for the same
  /// PredId — the tell-tale of mixing databases from different catalogs,
  /// which previously corrupted relations silently.
  Status UnionWith(const Database& other);

  /// Deep copy (same catalog). Used for snapshot publication
  /// (copy-on-publish): the clone is immutable-by-convention afterwards.
  std::unique_ptr<Database> Clone() const;

  /// Merge endpoint of the parallel evaluator's round barrier
  /// (eval/engine.cc): inserts every atom of `src` (same catalog —
  /// CHECKed via arity like Insert) in src's deterministic iteration
  /// order, invoking `on_new` for exactly the atoms that were not
  /// already present. Returns the first non-OK status from `on_new`
  /// (the database then holds everything merged up to that atom, which
  /// is fine: callers abort evaluation on error). Merging thread-local
  /// scratch databases task-by-task through this API gives the same
  /// model as the serial shared-scratch path, because relations are
  /// sets and `on_new` fires once per distinct new atom.
  Status MergeFrom(
      const Database& src,
      const std::function<Status(PredId, TupleView)>& on_new);

  /// Shard-parallel form of MergeFrom over several sources at once: the
  /// row merge (dedup probe, row append, index maintenance) fans out
  /// over `pool` with one work item per (predicate, shard) pair — rows
  /// route by first column, so a source shard merges into exactly the
  /// same target shard and no two items ever write the same shard. The
  /// new rows are then committed to each relation's scan order and
  /// `on_new(pred, row, source_index)` replayed serially in exactly the
  /// order the sequential `MergeFrom(sources[0]) ... MergeFrom(back())`
  /// loop would produce (source-major, then predicate id, then source
  /// row position) — callers observe a bit-identical model and callback
  /// stream at every pool width, including `pool == nullptr` (the items
  /// then run inline). `row_merge_millis`, when non-null, accumulates
  /// the wall time of the fanned-out row-merge phase, excluding the
  /// serial replay; the evaluator reports it as
  /// EvalStats::relation_merge_millis. On a non-OK `on_new` the
  /// remaining new rows are left uncommitted (invisible to scans) —
  /// callers abort evaluation on error, as with MergeFrom.
  Status MergeFromAll(
      std::span<const Database* const> sources, ThreadPool* pool,
      const std::function<Status(PredId, TupleView, size_t)>& on_new,
      double* row_merge_millis = nullptr);

  /// Ids of predicates that have a (possibly empty) relation.
  std::vector<PredId> PredicatesWithRelations() const;

 private:
  Catalog* catalog_;
  std::vector<std::unique_ptr<Relation>> relations_;
};

}  // namespace seqlog

#endif  // SEQLOG_STORAGE_DATABASE_H_
