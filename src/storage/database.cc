#include "storage/database.h"

#include <algorithm>
#include <chrono>

#include "base/string_util.h"
#include "base/thread_pool.h"

namespace seqlog {

Relation* Database::GetOrCreate(PredId pred) {
  SEQLOG_CHECK(pred < catalog_->size())
      << "predicate id " << pred << " is not in the catalog";
  if (pred >= relations_.size()) {
    relations_.resize(pred + 1);
  }
  if (relations_[pred] == nullptr) {
    relations_[pred] = std::make_unique<Relation>(catalog_->Arity(pred));
  }
  return relations_[pred].get();
}

const Relation* Database::Get(PredId pred) const {
  if (pred >= relations_.size()) return nullptr;
  return relations_[pred].get();
}

bool Database::Insert(PredId pred, TupleView tuple) {
  Relation* rel = GetOrCreate(pred);
  SEQLOG_CHECK(tuple.size() == rel->arity())
      << "tuple arity " << tuple.size() << " != arity " << rel->arity()
      << " of predicate '" << catalog_->Name(pred) << "'";
  return rel->Insert(tuple);
}

Result<bool> Database::TryInsert(PredId pred, TupleView tuple) {
  if (pred >= catalog_->size()) {
    return Status::InvalidArgument(
        StrCat("predicate id ", pred, " is not in the catalog (",
               catalog_->size(), " predicates registered)"));
  }
  const size_t arity = catalog_->Arity(pred);
  if (tuple.size() != arity) {
    return Status::InvalidArgument(
        StrCat("tuple arity ", tuple.size(), " != arity ", arity,
               " of predicate '", catalog_->Name(pred), "'"));
  }
  return GetOrCreate(pred)->Insert(tuple);
}

bool Database::Contains(PredId pred, TupleView tuple) const {
  const Relation* rel = Get(pred);
  return rel != nullptr && rel->Contains(tuple);
}

size_t Database::TotalFacts() const {
  size_t total = 0;
  for (const auto& rel : relations_) {
    if (rel != nullptr) total += rel->size();
  }
  return total;
}

void Database::Clear() {
  for (auto& rel : relations_) {
    if (rel != nullptr) rel->Clear();
  }
}

Status Database::UnionWith(const Database& other) {
  for (PredId pred : other.PredicatesWithRelations()) {
    const Relation* rel = other.Get(pred);
    if (rel->empty()) continue;
    if (pred >= catalog_->size()) {
      return Status::InvalidArgument(
          StrCat("UnionWith: predicate id ", pred,
                 " is not in this catalog (databases from different "
                 "catalogs cannot be merged)"));
    }
    if (rel->arity() != catalog_->Arity(pred)) {
      return Status::InvalidArgument(
          StrCat("UnionWith: relation arity ", rel->arity(), " != arity ",
                 catalog_->Arity(pred), " of predicate '",
                 catalog_->Name(pred),
                 "' (databases from different catalogs cannot be merged)"));
    }
    Relation* target = GetOrCreate(pred);
    target->Reserve(rel->size());
    for (uint32_t i = 0; i < rel->size(); ++i) {
      target->Insert(rel->RowAt(i));
    }
  }
  return Status::Ok();
}

Status Database::MergeFrom(
    const Database& src,
    const std::function<Status(PredId, TupleView)>& on_new) {
  for (PredId pred : src.PredicatesWithRelations()) {
    const Relation* rel = src.Get(pred);
    if (rel->empty()) continue;
    Relation* target = GetOrCreate(pred);
    SEQLOG_CHECK(target->arity() == rel->arity())
        << "MergeFrom across catalogs: arity " << rel->arity() << " != "
        << target->arity() << " for predicate '" << catalog_->Name(pred)
        << "'";
    // Round-barrier merges arrive as many medium-sized scratches; sizing
    // the destination for the incoming rows up front keeps the hash
    // indexes from rehashing inside the single-writer section.
    target->Reserve(rel->size());
    for (uint32_t i = 0; i < rel->size(); ++i) {
      TupleView row = rel->RowAt(i);
      if (!target->Insert(row)) continue;
      SEQLOG_RETURN_IF_ERROR(on_new(pred, row));
    }
  }
  return Status::Ok();
}

Status Database::MergeFromAll(
    std::span<const Database* const> sources, ThreadPool* pool,
    const std::function<Status(PredId, TupleView, size_t)>& on_new,
    double* row_merge_millis) {
  const auto row_merge_start = std::chrono::steady_clock::now();
  // Serial pre-pass: create every target relation (relations_ growth is
  // not thread-safe), check arities and size the shards for the incoming
  // rows so the fanned-out inserts never rehash.
  struct PredWork {
    PredId pred;
    Relation* target;
  };
  std::vector<PredWork> preds;
  size_t num_preds = 0;
  for (const Database* src : sources) {
    num_preds = std::max(num_preds, src->relations_.size());
  }
  for (PredId pred = 0; pred < num_preds; ++pred) {
    size_t incoming = 0;
    for (const Database* src : sources) {
      const Relation* rel = src->Get(pred);
      if (rel != nullptr) incoming += rel->size();
    }
    if (incoming == 0) continue;
    Relation* target = GetOrCreate(pred);
    for (const Database* src : sources) {
      const Relation* rel = src->Get(pred);
      SEQLOG_CHECK(rel == nullptr || rel->arity() == target->arity())
          << "MergeFromAll across catalogs: arity "
          << (rel != nullptr ? rel->arity() : 0) << " != "
          << target->arity() << " for predicate '" << catalog_->Name(pred)
          << "'";
    }
    target->Reserve(incoming);
    preds.push_back(PredWork{pred, target});
  }
  // One work item per (predicate, shard): a source row in shard s routes
  // to target shard s (same first-column hash), so items never share a
  // writer-side shard and run lock-free. Each item records the rows that
  // turned out new, keyed for the deterministic replay below.
  struct NewRow {
    uint32_t src;
    PredId pred;
    uint32_t src_pos;  ///< scan position in the source relation
    RowId id;          ///< detached row in the target relation
  };
  struct Item {
    uint32_t pred_idx;
    uint32_t shard;
    std::vector<NewRow> rows;
  };
  std::vector<Item> items;
  items.reserve(preds.size() * Relation::kNumShards);
  for (uint32_t pi = 0; pi < preds.size(); ++pi) {
    for (uint32_t shard = 0; shard < Relation::kNumShards; ++shard) {
      for (const Database* src : sources) {
        const Relation* rel = src->Get(preds[pi].pred);
        if (rel != nullptr && rel->ShardSize(shard) != 0) {
          items.push_back(Item{pi, shard, {}});
          break;
        }
      }
    }
  }
  auto run_item = [&](size_t i) {
    Item& item = items[i];
    const PredId pred = preds[item.pred_idx].pred;
    Relation* target = preds[item.pred_idx].target;
    for (uint32_t si = 0; si < sources.size(); ++si) {
      const Relation* rel = sources[si]->Get(pred);
      if (rel == nullptr) continue;
      const size_t n = rel->ShardSize(item.shard);
      for (uint32_t local = 0; local < n; ++local) {
        TupleView row = rel->ShardRow(item.shard, local);
        std::optional<RowId> id = target->InsertDetached(row);
        if (!id.has_value()) continue;
        SEQLOG_DCHECK(Relation::ShardOfId(*id) == item.shard);
        item.rows.push_back(
            NewRow{si, pred,
                   rel->PositionOf(Relation::MakeRowId(item.shard, local)),
                   *id});
      }
    }
  };
  if (pool != nullptr && items.size() > 1) {
    pool->ParallelFor(items.size(), run_item);
  } else {
    for (size_t i = 0; i < items.size(); ++i) run_item(i);
  }
  // Deterministic replay order: exactly what the sequential per-source
  // MergeFrom loop produces — source-major, predicate id ascending, then
  // source scan position. The key is unique per row, so the sort result
  // does not depend on item order or pool schedule.
  std::vector<NewRow> new_rows;
  size_t total_new = 0;
  for (const Item& item : items) total_new += item.rows.size();
  new_rows.reserve(total_new);
  for (const Item& item : items) {
    new_rows.insert(new_rows.end(), item.rows.begin(), item.rows.end());
  }
  std::sort(new_rows.begin(), new_rows.end(),
            [](const NewRow& a, const NewRow& b) {
              if (a.src != b.src) return a.src < b.src;
              if (a.pred != b.pred) return a.pred < b.pred;
              return a.src_pos < b.src_pos;
            });
  if (row_merge_millis != nullptr) {
    *row_merge_millis += std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() -
                             row_merge_start)
                             .count();
  }
  // Serial commit + callback replay (single writer per relation again).
  PredId cached_pred = 0;
  Relation* cached_rel = nullptr;
  for (const NewRow& row : new_rows) {
    if (cached_rel == nullptr || row.pred != cached_pred) {
      cached_pred = row.pred;
      cached_rel = GetOrCreate(row.pred);
    }
    cached_rel->CommitRow(row.id);
    SEQLOG_RETURN_IF_ERROR(
        on_new(row.pred, cached_rel->RowById(row.id), row.src));
  }
  return Status::Ok();
}

std::unique_ptr<Database> Database::Clone() const {
  auto copy = std::make_unique<Database>(catalog_);
  // Same catalog: UnionWith cannot fail.
  Status s = copy->UnionWith(*this);
  SEQLOG_CHECK(s.ok()) << s.ToString();
  return copy;
}

std::vector<PredId> Database::PredicatesWithRelations() const {
  std::vector<PredId> out;
  for (PredId p = 0; p < relations_.size(); ++p) {
    if (relations_[p] != nullptr) out.push_back(p);
  }
  return out;
}

}  // namespace seqlog
