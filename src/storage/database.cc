#include "storage/database.h"

namespace seqlog {

Relation* Database::GetOrCreate(PredId pred) {
  if (pred >= relations_.size()) {
    relations_.resize(pred + 1);
  }
  if (relations_[pred] == nullptr) {
    relations_[pred] = std::make_unique<Relation>(catalog_->Arity(pred));
  }
  return relations_[pred].get();
}

const Relation* Database::Get(PredId pred) const {
  if (pred >= relations_.size()) return nullptr;
  return relations_[pred].get();
}

bool Database::Insert(PredId pred, TupleView tuple) {
  return GetOrCreate(pred)->Insert(tuple);
}

bool Database::Contains(PredId pred, TupleView tuple) const {
  const Relation* rel = Get(pred);
  return rel != nullptr && rel->Contains(tuple);
}

size_t Database::TotalFacts() const {
  size_t total = 0;
  for (const auto& rel : relations_) {
    if (rel != nullptr) total += rel->size();
  }
  return total;
}

void Database::Clear() {
  for (auto& rel : relations_) {
    if (rel != nullptr) rel->Clear();
  }
}

void Database::UnionWith(const Database& other) {
  for (PredId pred : other.PredicatesWithRelations()) {
    const Relation* rel = other.Get(pred);
    if (rel->empty()) continue;
    Relation* target = GetOrCreate(pred);
    target->Reserve(rel->size());
    for (uint32_t i = 0; i < rel->size(); ++i) {
      target->Insert(rel->Row(i));
    }
  }
}

std::vector<PredId> Database::PredicatesWithRelations() const {
  std::vector<PredId> out;
  for (PredId p = 0; p < relations_.size(); ++p) {
    if (relations_[p] != nullptr) out.push_back(p);
  }
  return out;
}

}  // namespace seqlog
