#include "storage/database.h"

#include "base/string_util.h"

namespace seqlog {

Relation* Database::GetOrCreate(PredId pred) {
  SEQLOG_CHECK(pred < catalog_->size())
      << "predicate id " << pred << " is not in the catalog";
  if (pred >= relations_.size()) {
    relations_.resize(pred + 1);
  }
  if (relations_[pred] == nullptr) {
    relations_[pred] = std::make_unique<Relation>(catalog_->Arity(pred));
  }
  return relations_[pred].get();
}

const Relation* Database::Get(PredId pred) const {
  if (pred >= relations_.size()) return nullptr;
  return relations_[pred].get();
}

bool Database::Insert(PredId pred, TupleView tuple) {
  Relation* rel = GetOrCreate(pred);
  SEQLOG_CHECK(tuple.size() == rel->arity())
      << "tuple arity " << tuple.size() << " != arity " << rel->arity()
      << " of predicate '" << catalog_->Name(pred) << "'";
  return rel->Insert(tuple);
}

Result<bool> Database::TryInsert(PredId pred, TupleView tuple) {
  if (pred >= catalog_->size()) {
    return Status::InvalidArgument(
        StrCat("predicate id ", pred, " is not in the catalog (",
               catalog_->size(), " predicates registered)"));
  }
  const size_t arity = catalog_->Arity(pred);
  if (tuple.size() != arity) {
    return Status::InvalidArgument(
        StrCat("tuple arity ", tuple.size(), " != arity ", arity,
               " of predicate '", catalog_->Name(pred), "'"));
  }
  return GetOrCreate(pred)->Insert(tuple);
}

bool Database::Contains(PredId pred, TupleView tuple) const {
  const Relation* rel = Get(pred);
  return rel != nullptr && rel->Contains(tuple);
}

size_t Database::TotalFacts() const {
  size_t total = 0;
  for (const auto& rel : relations_) {
    if (rel != nullptr) total += rel->size();
  }
  return total;
}

void Database::Clear() {
  for (auto& rel : relations_) {
    if (rel != nullptr) rel->Clear();
  }
}

Status Database::UnionWith(const Database& other) {
  for (PredId pred : other.PredicatesWithRelations()) {
    const Relation* rel = other.Get(pred);
    if (rel->empty()) continue;
    if (pred >= catalog_->size()) {
      return Status::InvalidArgument(
          StrCat("UnionWith: predicate id ", pred,
                 " is not in this catalog (databases from different "
                 "catalogs cannot be merged)"));
    }
    if (rel->arity() != catalog_->Arity(pred)) {
      return Status::InvalidArgument(
          StrCat("UnionWith: relation arity ", rel->arity(), " != arity ",
                 catalog_->Arity(pred), " of predicate '",
                 catalog_->Name(pred),
                 "' (databases from different catalogs cannot be merged)"));
    }
    Relation* target = GetOrCreate(pred);
    target->Reserve(rel->size());
    for (uint32_t i = 0; i < rel->size(); ++i) {
      target->Insert(rel->Row(i));
    }
  }
  return Status::Ok();
}

Status Database::MergeFrom(
    const Database& src,
    const std::function<Status(PredId, TupleView)>& on_new) {
  for (PredId pred : src.PredicatesWithRelations()) {
    const Relation* rel = src.Get(pred);
    if (rel->empty()) continue;
    Relation* target = GetOrCreate(pred);
    SEQLOG_CHECK(target->arity() == rel->arity())
        << "MergeFrom across catalogs: arity " << rel->arity() << " != "
        << target->arity() << " for predicate '" << catalog_->Name(pred)
        << "'";
    // Round-barrier merges arrive as many medium-sized scratches; sizing
    // the destination for the incoming rows up front keeps the hash
    // indexes from rehashing inside the single-writer section.
    target->Reserve(rel->size());
    for (uint32_t i = 0; i < rel->size(); ++i) {
      TupleView row = rel->Row(i);
      if (!target->Insert(row)) continue;
      SEQLOG_RETURN_IF_ERROR(on_new(pred, row));
    }
  }
  return Status::Ok();
}

std::unique_ptr<Database> Database::Clone() const {
  auto copy = std::make_unique<Database>(catalog_);
  // Same catalog: UnionWith cannot fail.
  Status s = copy->UnionWith(*this);
  SEQLOG_CHECK(s.ok()) << s.ToString();
  return copy;
}

std::vector<PredId> Database::PredicatesWithRelations() const {
  std::vector<PredId> out;
  for (PredId p = 0; p < relations_.size(); ++p) {
    if (relations_[p] != nullptr) out.push_back(p);
  }
  return out;
}

}  // namespace seqlog
