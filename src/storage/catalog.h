// seqlog: the predicate catalog (database schema, Section 2.2).
//
// Every predicate symbol gets a dense PredId and a fixed arity. Base
// predicates (database schema) and derived predicates share the catalog;
// the distinction is made by the evaluator (a predicate is *base* for a
// program if it never appears in a clause head).
#ifndef SEQLOG_STORAGE_CATALOG_H_
#define SEQLOG_STORAGE_CATALOG_H_

#include <cstdint>
#include <deque>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "base/logging.h"
#include "base/result.h"
#include "base/status.h"

namespace seqlog {

using PredId = uint32_t;

/// Name/arity registry for predicate symbols.
///
/// Thread-safe: lookups and registration may run concurrently (readers
/// share the lock; registering a *new* predicate takes it exclusively).
/// Infos live in a deque so the references returned by Name() stay valid
/// for the catalog's lifetime. One catalog per Engine.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Returns the id for predicate `name` with `arity`, registering it on
  /// first use. Fails with kInvalidArgument if `name` is already
  /// registered with a different arity.
  Result<PredId> GetOrCreate(std::string_view name, size_t arity);

  /// Returns the id for `name` or kNotFound.
  Result<PredId> Find(std::string_view name) const;

  const std::string& Name(PredId id) const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    SEQLOG_CHECK(id < infos_.size()) << "bad predicate id " << id;
    return infos_[id].name;  // deque: stable address after unlock
  }
  size_t Arity(PredId id) const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    SEQLOG_CHECK(id < infos_.size()) << "bad predicate id " << id;
    return infos_[id].arity;
  }
  size_t size() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return infos_.size();
  }

 private:
  struct Info {
    std::string name;
    size_t arity;
  };
  mutable std::shared_mutex mu_;
  std::deque<Info> infos_;  ///< deque: element addresses are stable
  std::unordered_map<std::string, PredId> ids_;
};

}  // namespace seqlog

#endif  // SEQLOG_STORAGE_CATALOG_H_
