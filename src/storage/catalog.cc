#include "storage/catalog.h"

#include <mutex>

#include "base/string_util.h"

namespace seqlog {

Result<PredId> Catalog::GetOrCreate(std::string_view name, size_t arity) {
  std::string key(name);
  auto check = [&](PredId id) -> Result<PredId> {
    if (infos_[id].arity != arity) {
      return Status::InvalidArgument(
          StrCat("predicate '", name, "' used with arity ", arity,
                 " but registered with arity ", infos_[id].arity));
    }
    return id;
  };
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = ids_.find(key);
    if (it != ids_.end()) return check(it->second);
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = ids_.find(key);  // re-check: another writer may have won
  if (it != ids_.end()) return check(it->second);
  PredId id = static_cast<PredId>(infos_.size());
  infos_.push_back(Info{std::move(key), arity});
  ids_.emplace(infos_.back().name, id);
  return id;
}

Result<PredId> Catalog::Find(std::string_view name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = ids_.find(std::string(name));
  if (it == ids_.end()) {
    return Status::NotFound(StrCat("unknown predicate '", name, "'"));
  }
  return it->second;
}

}  // namespace seqlog
