#include "storage/catalog.h"

#include "base/string_util.h"

namespace seqlog {

Result<PredId> Catalog::GetOrCreate(std::string_view name, size_t arity) {
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) {
    if (infos_[it->second].arity != arity) {
      return Status::InvalidArgument(
          StrCat("predicate '", name, "' used with arity ", arity,
                 " but registered with arity ", infos_[it->second].arity));
    }
    return it->second;
  }
  PredId id = static_cast<PredId>(infos_.size());
  infos_.push_back(Info{std::string(name), arity});
  ids_.emplace(std::string(name), id);
  return id;
}

Result<PredId> Catalog::Find(std::string_view name) const {
  auto it = ids_.find(std::string(name));
  if (it == ids_.end()) {
    return Status::NotFound(StrCat("unknown predicate '", name, "'"));
  }
  return it->second;
}

}  // namespace seqlog
