// seqlog: relations of sequence tuples.
//
// A relation of arity k is a duplicate-free set of k-tuples of SeqIds
// (Section 2.2: finite subsets of the k-fold product of Sigma*). Rows
// are hash-partitioned by their first column into kNumShards shards;
// each shard owns its flattened row storage, its dedup table and its
// per-column hash indexes, so the round barrier can merge one writer
// per shard with no cross-shard synchronization. A single global
// insertion-order array (`order_`) preserves the flat relation's scan
// order: positional iteration, delta row ranges and snapshot watermarks
// behave exactly as they did before sharding, independent of how SeqId
// values hash, so the evaluated model stays bit-identical at every
// thread width.
#ifndef SEQLOG_STORAGE_RELATION_H_
#define SEQLOG_STORAGE_RELATION_H_

#include <array>
#include <cstdint>
#include <optional>
#include <shared_mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "base/hash.h"
#include "base/logging.h"
#include "sequence/sequence_pool.h"

namespace seqlog {

/// Tuple view into a relation's row storage.
using TupleView = std::span<const SeqId>;

/// Stable handle to a row inside a sharded relation: the shard index in
/// the top bits, the row's slot within that shard in the low bits.
using RowId = uint32_t;

/// A set of SeqId tuples, hash-partitioned into shards by first column,
/// with per-shard per-column hash indexes and a global scan order.
class Relation {
 public:
  static constexpr size_t kShardBits = 3;
  static constexpr size_t kNumShards = size_t{1} << kShardBits;
  static constexpr uint32_t kLocalBits = 32 - kShardBits;
  static constexpr uint32_t kLocalMask = (uint32_t{1} << kLocalBits) - 1;

  static constexpr size_t ShardOfId(RowId id) { return id >> kLocalBits; }
  static constexpr uint32_t LocalOfId(RowId id) { return id & kLocalMask; }
  static constexpr RowId MakeRowId(size_t shard, uint32_t local) {
    return (static_cast<RowId>(shard) << kLocalBits) | local;
  }
  static constexpr size_t ShardCount() { return kNumShards; }

  /// Per-shard row-id lists matching an index probe. Lists are disjoint
  /// (one per shard) and each is ascending in global scan position.
  /// Invalidated by any insert into the relation.
  struct Candidates {
    std::array<const std::vector<RowId>*, kNumShards> lists{};
    uint32_t num_lists = 0;
    size_t total = 0;
    bool empty() const { return total == 0; }
    size_t size() const { return total; }
  };

  explicit Relation(size_t arity);
  Relation(const Relation&) = delete;
  Relation& operator=(const Relation&) = delete;

  size_t arity() const { return arity_; }
  /// Number of committed (scan-visible) rows.
  size_t size() const { return order_.size(); }
  bool empty() const { return order_.empty(); }

  /// Pre-sizes row storage and hash indexes for about `rows` more
  /// tuples, distributing the reservation across shards (each shard
  /// reserves ~rows/kNumShards plus slack for hash imbalance, not the
  /// full amount). Never shrinks; contents are unchanged.
  void Reserve(size_t rows);

  /// Inserts `tuple` and commits it to the scan order; returns true if
  /// it was not already present. Single-writer (no locking).
  bool Insert(TupleView tuple);

  /// Inserts `tuple` into its shard (rows, dedup, column indexes) but
  /// does NOT append it to the global scan order; returns its RowId if
  /// new, nullopt if duplicate. Safe to call concurrently from multiple
  /// threads as long as each shard has at most one writer (rows route
  /// by first column, so partitioned sources give that for free).
  /// Detached rows are invisible to size()/RowAt()/PositionOf() until
  /// CommitRow() runs on the owning thread.
  std::optional<RowId> InsertDetached(TupleView tuple);

  /// InsertDetached under the target shard's exclusive lock, for
  /// writers that cannot guarantee shard-disjointness. Pair readers
  /// with ShardSnapshotLocked; do not mix with the unlocked writers.
  std::optional<RowId> InsertDetachedLocked(TupleView tuple);

  /// Appends a detached row to the global scan order. Single-writer.
  void CommitRow(RowId id);

  /// Commits every detached row, shards in ascending order and rows in
  /// per-shard insertion order. Single-writer. Returns rows committed.
  size_t CommitAllDetached();

  /// True if `tuple` is present (committed or detached).
  bool Contains(TupleView tuple) const;

  /// Returns the row at scan position `pos` (0 <= pos < size()).
  /// Positions are stable and append-only, exactly as in the flat
  /// pre-shard layout.
  TupleView RowAt(uint32_t pos) const {
    SEQLOG_DCHECK(pos < order_.size());
    return RowById(order_[pos]);
  }

  /// Row id at scan position `pos`.
  RowId IdAt(uint32_t pos) const {
    SEQLOG_DCHECK(pos < order_.size());
    return order_[pos];
  }

  /// Returns the row stored under `id` (committed or detached).
  TupleView RowById(RowId id) const {
    const Shard& s = shards_[ShardOfId(id)];
    return TupleView(
        s.rows.data() + static_cast<size_t>(LocalOfId(id)) * arity_, arity_);
  }

  /// Scan position of a committed row.
  uint32_t PositionOf(RowId id) const {
    const Shard& s = shards_[ShardOfId(id)];
    SEQLOG_DCHECK(LocalOfId(id) < s.global_pos.size());
    uint32_t pos = s.global_pos[LocalOfId(id)];
    SEQLOG_DCHECK(pos != kUncommitted);
    return pos;
  }

  /// Row ids whose column `col` equals `value`, grouped per shard. A
  /// probe on column 0 touches exactly one shard (rows partition by
  /// first column); other columns may return up to kNumShards lists.
  Candidates RowsWithValue(size_t col, SeqId value) const;

  /// Removes all tuples (keeps arity). Used for delta swapping.
  void Clear();

  /// Rows stored in `shard` (committed + detached).
  size_t ShardSize(size_t shard) const {
    return shards_[shard].global_pos.size();
  }
  /// Row capacity currently reserved in `shard`.
  size_t ShardCapacity(size_t shard) const {
    return arity_ == 0 ? shards_[shard].global_pos.capacity()
                       : shards_[shard].rows.capacity() / arity_;
  }
  /// Row `local` of `shard`, in per-shard insertion order.
  TupleView ShardRow(size_t shard, uint32_t local) const {
    return RowById(MakeRowId(shard, local));
  }
  /// Shard that `tuple` routes to.
  size_t ShardForTuple(TupleView tuple) const {
    return arity_ == 0 ? 0 : ShardForValue(tuple[0]);
  }

  /// Copies `shard`'s rows (flattened, per-shard insertion order) under
  /// its shared lock. Pairs with InsertDetachedLocked for concurrent
  /// reader/writer use; the copy is always a prefix-consistent view.
  std::vector<SeqId> ShardSnapshotLocked(size_t shard) const;

 private:
  static constexpr uint32_t kUncommitted = 0xFFFFFFFFu;

  static size_t ShardForValue(SeqId value) {
    // Fibonacci multiplicative mix; the raw SeqId low bits are dense
    // pool slots and would lump consecutive interns into one shard.
    return static_cast<size_t>(
        (static_cast<uint64_t>(value) * 0x9E3779B97F4A7C15ull) >>
        (64 - kShardBits));
  }

  struct Shard {
    std::vector<SeqId> rows;  // flattened row-major
    // local slot -> global scan position (kUncommitted while detached).
    std::vector<uint32_t> global_pos;
    // Dedup: tuple hash -> candidate local slots (chaining on collisions).
    std::unordered_map<size_t, std::vector<uint32_t>> dedup;
    // Column indexes: for each column, value -> encoded RowIds.
    std::vector<std::unordered_map<SeqId, std::vector<RowId>>> col_index;
    // Taken only by the *Locked entry points; the single-writer paths
    // rely on phase discipline instead (docs/CONCURRENCY.md).
    mutable std::shared_mutex mu;
  };

  std::optional<RowId> InsertIntoShard(size_t shard_idx, TupleView tuple);

  size_t arity_;
  std::array<Shard, kNumShards> shards_;
  std::vector<RowId> order_;  // committed rows in insertion order
};

}  // namespace seqlog

#endif  // SEQLOG_STORAGE_RELATION_H_
