// seqlog: relations of sequence tuples.
//
// A relation of arity k is a duplicate-free set of k-tuples of SeqIds
// (Section 2.2: finite subsets of the k-fold product of Sigma*). Tuples
// are stored flattened row-major; every column is hash-indexed so the
// evaluator can seek on any bound argument position.
#ifndef SEQLOG_STORAGE_RELATION_H_
#define SEQLOG_STORAGE_RELATION_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "base/hash.h"
#include "base/logging.h"
#include "sequence/sequence_pool.h"

namespace seqlog {

/// Tuple view into a relation's row storage.
using TupleView = std::span<const SeqId>;

/// A set of SeqId tuples with per-column hash indexes.
class Relation {
 public:
  explicit Relation(size_t arity);
  Relation(const Relation&) = delete;
  Relation& operator=(const Relation&) = delete;

  size_t arity() const { return arity_; }
  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// Pre-sizes row storage and the hash indexes for about `rows` more
  /// tuples, cutting rehash churn on bulk loads (database copies, EDB
  /// loading at fixpoint start). Never shrinks; contents are unchanged.
  void Reserve(size_t rows);

  /// Inserts `tuple`; returns true if it was not already present.
  bool Insert(TupleView tuple);

  /// True if `tuple` is present.
  bool Contains(TupleView tuple) const;

  /// Returns row `i` (0 <= i < size()).
  TupleView Row(uint32_t i) const {
    SEQLOG_DCHECK(i < count_);
    return TupleView(rows_.data() + static_cast<size_t>(i) * arity_,
                     arity_);
  }

  /// Row indices whose column `col` equals `value`, or nullptr if none.
  /// The returned vector is invalidated by Insert.
  const std::vector<uint32_t>* RowsWithValue(size_t col, SeqId value) const;

  /// Removes all tuples (keeps arity). Used for delta swapping.
  void Clear();

 private:
  size_t arity_;
  size_t count_ = 0;
  std::vector<SeqId> rows_;  // flattened row-major
  // Dedup: tuple hash -> candidate row ids (open chaining on collisions).
  std::unordered_map<size_t, std::vector<uint32_t>> dedup_;
  // Column indexes: for each column, value -> row ids.
  std::vector<std::unordered_map<SeqId, std::vector<uint32_t>>> col_index_;
};

}  // namespace seqlog

#endif  // SEQLOG_STORAGE_RELATION_H_
