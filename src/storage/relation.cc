#include "storage/relation.h"

#include <algorithm>
#include <mutex>

namespace seqlog {

Relation::Relation(size_t arity) : arity_(arity) {
  for (Shard& s : shards_) {
    s.col_index.resize(arity_);
  }
}

void Relation::Reserve(size_t rows) {
  order_.reserve(order_.size() + rows);
  // Distribute across shards instead of sizing every shard for the full
  // amount: ~rows/kNumShards each, with 25% slack (plus a small floor)
  // for hash imbalance. A missed guess costs one rehash; reserving the
  // total per shard costs 8x the memory of the flat layout.
  const size_t per_shard = rows / kNumShards + rows / (4 * kNumShards) + 4;
  for (Shard& s : shards_) {
    const size_t total = s.global_pos.size() + per_shard;
    s.rows.reserve(total * arity_);
    s.global_pos.reserve(total);
    s.dedup.reserve(total);
    for (auto& index : s.col_index) index.reserve(total);
  }
}

std::optional<RowId> Relation::InsertIntoShard(size_t shard_idx,
                                               TupleView tuple) {
  Shard& s = shards_[shard_idx];
  size_t h = HashSpan(tuple);
  auto& bucket = s.dedup[h];
  for (uint32_t local : bucket) {
    TupleView existing(
        s.rows.data() + static_cast<size_t>(local) * arity_, arity_);
    if (std::equal(existing.begin(), existing.end(), tuple.begin())) {
      return std::nullopt;
    }
  }
  const uint32_t local = static_cast<uint32_t>(s.global_pos.size());
  SEQLOG_CHECK(local <= kLocalMask)
      << "relation shard overflow: " << local << " rows in one shard";
  s.rows.insert(s.rows.end(), tuple.begin(), tuple.end());
  s.global_pos.push_back(kUncommitted);
  bucket.push_back(local);
  const RowId id = MakeRowId(shard_idx, local);
  for (size_t c = 0; c < arity_; ++c) {
    s.col_index[c][tuple[c]].push_back(id);
  }
  return id;
}

bool Relation::Insert(TupleView tuple) {
  std::optional<RowId> id = InsertDetached(tuple);
  if (!id.has_value()) return false;
  CommitRow(*id);
  return true;
}

std::optional<RowId> Relation::InsertDetached(TupleView tuple) {
  SEQLOG_CHECK(tuple.size() == arity_)
      << "tuple arity " << tuple.size() << " != relation arity " << arity_;
  return InsertIntoShard(ShardForTuple(tuple), tuple);
}

std::optional<RowId> Relation::InsertDetachedLocked(TupleView tuple) {
  SEQLOG_CHECK(tuple.size() == arity_)
      << "tuple arity " << tuple.size() << " != relation arity " << arity_;
  const size_t shard_idx = ShardForTuple(tuple);
  std::unique_lock lock(shards_[shard_idx].mu);
  return InsertIntoShard(shard_idx, tuple);
}

void Relation::CommitRow(RowId id) {
  Shard& s = shards_[ShardOfId(id)];
  SEQLOG_DCHECK(LocalOfId(id) < s.global_pos.size());
  SEQLOG_DCHECK(s.global_pos[LocalOfId(id)] == kUncommitted);
  s.global_pos[LocalOfId(id)] = static_cast<uint32_t>(order_.size());
  order_.push_back(id);
}

size_t Relation::CommitAllDetached() {
  size_t committed = 0;
  for (size_t shard = 0; shard < kNumShards; ++shard) {
    Shard& s = shards_[shard];
    for (uint32_t local = 0; local < s.global_pos.size(); ++local) {
      if (s.global_pos[local] != kUncommitted) continue;
      s.global_pos[local] = static_cast<uint32_t>(order_.size());
      order_.push_back(MakeRowId(shard, local));
      ++committed;
    }
  }
  return committed;
}

bool Relation::Contains(TupleView tuple) const {
  if (tuple.size() != arity_) return false;
  const Shard& s = shards_[ShardForTuple(tuple)];
  size_t h = HashSpan(tuple);
  auto it = s.dedup.find(h);
  if (it == s.dedup.end()) return false;
  for (uint32_t local : it->second) {
    TupleView existing(
        s.rows.data() + static_cast<size_t>(local) * arity_, arity_);
    if (std::equal(existing.begin(), existing.end(), tuple.begin())) {
      return true;
    }
  }
  return false;
}

Relation::Candidates Relation::RowsWithValue(size_t col, SeqId value) const {
  SEQLOG_DCHECK(col < arity_);
  Candidates out;
  if (col == 0) {
    // Rows partition by first column: one shard can hold matches.
    const Shard& s = shards_[ShardForValue(value)];
    auto it = s.col_index[col].find(value);
    if (it != s.col_index[col].end() && !it->second.empty()) {
      out.lists[out.num_lists++] = &it->second;
      out.total = it->second.size();
    }
    return out;
  }
  for (const Shard& s : shards_) {
    auto it = s.col_index[col].find(value);
    if (it != s.col_index[col].end() && !it->second.empty()) {
      out.lists[out.num_lists++] = &it->second;
      out.total += it->second.size();
    }
  }
  return out;
}

void Relation::Clear() {
  order_.clear();
  for (Shard& s : shards_) {
    s.rows.clear();
    s.global_pos.clear();
    s.dedup.clear();
    for (auto& index : s.col_index) index.clear();
  }
}

std::vector<SeqId> Relation::ShardSnapshotLocked(size_t shard) const {
  const Shard& s = shards_[shard];
  std::shared_lock lock(s.mu);
  return s.rows;
}

}  // namespace seqlog
