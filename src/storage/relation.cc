#include "storage/relation.h"

#include <algorithm>

namespace seqlog {

Relation::Relation(size_t arity) : arity_(arity), col_index_(arity) {}

void Relation::Reserve(size_t rows) {
  const size_t total = count_ + rows;
  rows_.reserve(total * arity_);
  dedup_.reserve(total);
  for (auto& index : col_index_) index.reserve(total);
}

bool Relation::Insert(TupleView tuple) {
  SEQLOG_CHECK(tuple.size() == arity_)
      << "tuple arity " << tuple.size() << " != relation arity " << arity_;
  size_t h = HashSpan(tuple);
  auto& bucket = dedup_[h];
  for (uint32_t row : bucket) {
    TupleView existing = Row(row);
    if (std::equal(existing.begin(), existing.end(), tuple.begin())) {
      return false;
    }
  }
  uint32_t row = static_cast<uint32_t>(count_);
  rows_.insert(rows_.end(), tuple.begin(), tuple.end());
  ++count_;
  bucket.push_back(row);
  for (size_t c = 0; c < arity_; ++c) {
    col_index_[c][tuple[c]].push_back(row);
  }
  return true;
}

bool Relation::Contains(TupleView tuple) const {
  if (tuple.size() != arity_) return false;
  size_t h = HashSpan(tuple);
  auto it = dedup_.find(h);
  if (it == dedup_.end()) return false;
  for (uint32_t row : it->second) {
    TupleView existing = Row(row);
    if (std::equal(existing.begin(), existing.end(), tuple.begin())) {
      return true;
    }
  }
  return false;
}

const std::vector<uint32_t>* Relation::RowsWithValue(size_t col,
                                                     SeqId value) const {
  SEQLOG_DCHECK(col < arity_);
  const auto& index = col_index_[col];
  auto it = index.find(value);
  if (it == index.end()) return nullptr;
  return &it->second;
}

void Relation::Clear() {
  count_ = 0;
  rows_.clear();
  dedup_.clear();
  for (auto& index : col_index_) index.clear();
}

}  // namespace seqlog
