#include "eval/engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <numeric>
#include <unordered_set>

#include "analysis/safety.h"
#include "ast/validate.h"
#include "base/string_util.h"
#include "base/thread_pool.h"

namespace seqlog {
namespace eval {

namespace {
constexpr size_t kNoDelta = static_cast<size_t>(-1);
/// A round whose estimated source rows (constructive firings weighted
/// up — their per-row term evaluation runs whole machines) fall below
/// this runs serially: the pool round-trip would cost more than the
/// work. Keeps magic point queries, whose deltas are a handful of seed
/// and guard facts, on the zero-overhead path.
constexpr size_t kMinParallelWork = 128;
/// Per-row weight of a constructive clause in the estimate above.
constexpr size_t kConstructiveWeight = 64;
/// A round slower than this (measured on the previous round) goes
/// parallel even when the row estimate is small — rows are a poor proxy
/// for enumeration-heavy clauses.
constexpr double kSlowRoundMillis = 0.3;
/// Minimum delta rows per shard when splitting one firing.
constexpr uint32_t kMinShardRows = 256;
/// An EDB-load closure whose estimated subsequence-span count falls
/// below this is closed serially even in a multi-threaded run: the
/// pool round-trip would cost more than the hashing it spreads out.
constexpr size_t kMinParallelClosureSpans = 4096;

/// Pre-interns the subsequence closure of every sequence `scratch`
/// mentions that is not already in `domain`, recording the id streams
/// per root. Runs inside a worker task, concurrently with its siblings:
/// pool interning is thread-safe and the domain is read-only const
/// access during a round. Roots whose closure alone exceeds a non-zero
/// `max_domain` budget are left unhinted — the barrier sends them
/// through the budget-checked AddRoot, which bails out mid-closure
/// instead of interning millions of spans a doomed run never needs.
void PreInternClosures(const Database& scratch,
                       const ExtendedDomain& domain, size_t max_domain,
                       std::unordered_map<SeqId, std::vector<SeqId>>* hints) {
  for (PredId pred : scratch.PredicatesWithRelations()) {
    const Relation* rel = scratch.Get(pred);
    if (rel == nullptr) continue;
    for (uint32_t i = 0; i < rel->size(); ++i) {
      for (SeqId arg : rel->RowAt(i)) {
        if (domain.Contains(arg)) continue;
        if (max_domain != 0 &&
            domain.ClosureSpanCount(arg) > max_domain) {
          continue;
        }
        auto [it, fresh] = hints->try_emplace(arg);
        if (!fresh) continue;
        domain.EnumerateClosure(arg, &it->second);
      }
    }
  }
}
}  // namespace

struct Evaluator::FireTask {
  size_t plan_idx = 0;
  size_t delta_step = kNoDelta;
  uint32_t begin = 0;            ///< delta row shard (delta firings only)
  uint32_t end = UINT32_MAX;
};

struct Evaluator::RunState {
  Database* model = nullptr;
  /// The run's domain: owned_domain.get() for cold Evaluate runs,
  /// the caller's live domain for Resaturate (which borrows).
  ExtendedDomain* domain = nullptr;
  std::unique_ptr<ExtendedDomain> owned_domain;
  std::unique_ptr<Database> delta;
  std::unique_ptr<Database> scratch;
  EvalOptions options;
  EvalStats stats;
  std::chrono::steady_clock::time_point start;
  std::chrono::steady_clock::time_point deadline;
  bool has_deadline = false;
  bool domain_grew = false;  ///< during the most recently merged round
  size_t last_merged_new = 0;  ///< facts added by the last merge
  size_t threads = 1;          ///< resolved EvalOptions::num_threads
  /// Workers for parallel rounds, created on the first round that is
  /// worth fanning out (serial runs and small queries never pay for
  /// thread spawns).
  std::unique_ptr<ThreadPool> pool;
  double last_round_millis = 0;  ///< firing time of the previous round
};

Evaluator::Evaluator(Catalog* catalog, SequencePool* pool,
                     const FunctionRegistry* registry)
    : catalog_(catalog), pool_(pool), registry_(registry) {}

Status Evaluator::SetProgram(const ast::Program& program) {
  SEQLOG_RETURN_IF_ERROR(ast::Validate(program));
  std::vector<ClausePlan> plans;
  plans.reserve(program.clauses.size());
  for (const ast::Clause& clause : program.clauses) {
    SEQLOG_ASSIGN_OR_RETURN(ClausePlan plan,
                            CompileClause(clause, catalog_, registry_));
    plans.push_back(std::move(plan));
  }
  program_ = program;
  plans_ = std::move(plans);
  return Status::Ok();
}

Status Evaluator::LoadFacts(const Database& db, RunState* state) const {
  std::vector<SeqId> roots;
  for (PredId pred : db.PredicatesWithRelations()) {
    const Relation* rel = db.Get(pred);
    if (rel->empty()) continue;
    state->model->GetOrCreate(pred)->Reserve(rel->size());
    state->delta->GetOrCreate(pred)->Reserve(rel->size());
    for (uint32_t i = 0; i < rel->size(); ++i) {
      TupleView row = rel->RowAt(i);
      state->model->Insert(pred, row);
      state->delta->Insert(pred, row);
      roots.insert(roots.end(), row.begin(), row.end());
    }
  }
  return CloseRoots(roots, state);
}

Status Evaluator::CloseRoots(const std::vector<SeqId>& roots,
                             RunState* state) const {
  const size_t max_domain = state->options.limits.max_domain_sequences;
  if (state->threads > 1 && roots.size() > 1) {
    // Estimate the closure's span count; small loads stay serial, and
    // so does any load with a root whose closure alone overflows the
    // budget (the AddRoot path bails out mid-closure there instead of
    // pre-interning spans a doomed run never needs).
    size_t spans = 0;
    bool over_budget_root = false;
    for (SeqId root : roots) {
      if (state->domain->Contains(root)) continue;
      size_t root_spans = state->domain->ClosureSpanCount(root);
      if (max_domain != 0 && root_spans > max_domain) {
        over_budget_root = true;
        break;
      }
      spans += root_spans;
    }
    if (!over_budget_root && spans >= kMinParallelClosureSpans) {
      if (state->pool == nullptr) {
        state->pool = std::make_unique<ThreadPool>(state->threads);
      }
      // First occurrence wins, cold roots only — the same order the
      // serial AddRoot loop below inserts in, so the resulting domain
      // enumeration is identical.
      std::vector<SeqId> fresh;
      std::unordered_set<SeqId> seen;
      for (SeqId root : roots) {
        if (state->domain->Contains(root)) continue;
        if (seen.insert(root).second) fresh.push_back(root);
      }
      std::vector<std::vector<SeqId>> streams(fresh.size());
      state->pool->ParallelFor(fresh.size(), [&](size_t i) {
        state->domain->EnumerateClosure(fresh[i], &streams[i]);
      });
      size_t total = 0;
      for (const auto& s : streams) total += s.size();
      std::vector<SeqId> stream;
      stream.reserve(total);
      for (const auto& s : streams) {
        stream.insert(stream.end(), s.begin(), s.end());
      }
      return state->domain->ExtendWithClosed(stream, max_domain,
                                             state->pool.get());
    }
  }
  for (SeqId root : roots) {
    SEQLOG_RETURN_IF_ERROR(state->domain->AddRoot(root, max_domain));
  }
  return Status::Ok();
}

Status Evaluator::InitState(const Database& edb, const Database* extra_facts,
                            std::shared_ptr<const ExtendedDomain> base_domain,
                            const EvalOptions& options, Database* model,
                            RunState* state) const {
  if (model->TotalFacts() != 0) {
    return Status::InvalidArgument("model database must start empty");
  }
  state->model = model;
  state->options = options;
  state->threads = options.num_threads != 0 ? options.num_threads
                                            : ThreadPool::HardwareThreads();
  state->owned_domain =
      base_domain != nullptr
          ? std::make_unique<ExtendedDomain>(pool_, std::move(base_domain))
          : std::make_unique<ExtendedDomain>(pool_);
  state->domain = state->owned_domain.get();
  state->delta = std::make_unique<Database>(catalog_);
  state->scratch = std::make_unique<Database>(catalog_);
  state->start = std::chrono::steady_clock::now();
  if (options.limits.max_millis > 0) {
    state->has_deadline = true;
    state->deadline =
        state->start + std::chrono::milliseconds(options.limits.max_millis);
  }
  // The database is a set of ground clauses with empty bodies
  // (Definition 4 treats db atoms as clauses): load it as the starting
  // interpretation and seed the extended active domain (Definition 3).
  const auto load_start = std::chrono::steady_clock::now();
  Status load_status = LoadFacts(edb, state);
  if (load_status.ok() && extra_facts != nullptr) {
    load_status = LoadFacts(*extra_facts, state);
  }
  state->stats.domain_load_millis +=
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - load_start)
          .count();
  SEQLOG_RETURN_IF_ERROR(load_status);
  // With a prebuilt base domain the AddRoots above short-circuit without
  // counting, so enforce the budget on the total explicitly — a snapshot
  // execution must fail the same way a live one does.
  const size_t max_domain = options.limits.max_domain_sequences;
  if (max_domain != 0 && state->domain->size() > max_domain) {
    return Status::ResourceExhausted(
        StrCat("extended active domain exceeded ", max_domain,
               " sequences"));
  }
  state->domain_grew = true;
  return Status::Ok();
}

Status Evaluator::CheckIterationBudget(RunState* state) const {
  ++state->stats.iterations;
  if (state->stats.iterations > state->options.limits.max_iterations) {
    return Status::ResourceExhausted(
        StrCat("exceeded ", state->options.limits.max_iterations,
               " iterations"));
  }
  // The per-firing deadline poll uses a tick counter local to one firing;
  // an evaluation made of many short iterations would never reach a poll
  // point, so the deadline must also be checked once per iteration here.
  if (state->has_deadline &&
      std::chrono::steady_clock::now() > state->deadline) {
    return Status::ResourceExhausted("evaluation exceeded time budget");
  }
  return Status::Ok();
}

Status Evaluator::FireSubsetOnce(const std::vector<size_t>& subset,
                                 RunState* state) const {
  SEQLOG_RETURN_IF_ERROR(CheckIterationBudget(state));
  std::vector<FireTask> tasks;
  tasks.reserve(subset.size());
  for (size_t idx : subset) {
    tasks.push_back(FireTask{idx, kNoDelta, 0, UINT32_MAX});
  }
  return FireRound(tasks, state);
}

void Evaluator::AppendDeltaTasks(size_t idx, size_t si,
                                 const RunState& state,
                                 std::vector<FireTask>* tasks) const {
  const LiteralStep& step = plans_[idx].steps[si];
  const Relation* rel = state.delta->Get(step.pred);
  const uint32_t rows = rel != nullptr ? rel->size() : 0;
  if (state.threads > 1 && rows >= 2 * kMinShardRows) {
    // Contiguous, disjointly covering row ranges; the last shard takes
    // the remainder. Every delta row is still matched exactly once.
    uint32_t shards = static_cast<uint32_t>(
        std::min<size_t>(state.threads, rows / kMinShardRows));
    uint32_t per = rows / shards;
    for (uint32_t s = 0; s < shards; ++s) {
      uint32_t begin = s * per;
      uint32_t end = s + 1 == shards ? rows : begin + per;
      tasks->push_back(FireTask{idx, si, begin, end});
    }
    return;
  }
  tasks->push_back(FireTask{idx, si, 0, UINT32_MAX});
}

// Round barrier: merges the scratch databases in deterministic task
// order. Database::MergeFromAll invokes the callback once per atom that
// is genuinely new to the model, which keeps multi-scratch merges (a
// fact derived by several tasks appears in several scratches) equivalent
// to the serial shared-scratch merge. The impl accounts the fanned-out
// row-merge phase into EvalStats::relation_merge_millis; the wrapper
// puts the remainder of the barrier — commit replay plus domain
// closure — into domain_merge_millis.
Status Evaluator::MergeRound(const std::vector<const Database*>& sources,
                             const std::vector<ClosureHints>* hints,
                             RunState* state) const {
  const auto barrier_start = std::chrono::steady_clock::now();
  const double row_before = state->stats.relation_merge_millis;
  Status status = MergeRoundImpl(sources, hints, state);
  const double total = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - barrier_start)
                           .count();
  const double row_share = state->stats.relation_merge_millis - row_before;
  state->stats.domain_merge_millis += std::max(0.0, total - row_share);
  return status;
}

Status Evaluator::MergeRoundImpl(const std::vector<const Database*>& sources,
                                 const std::vector<ClosureHints>* hints,
                                 RunState* state) const {
  auto delta_new = std::make_unique<Database>(catalog_);
  size_t domain_before = state->domain->size();
  state->last_merged_new = 0;
  const size_t max_domain = state->options.limits.max_domain_sequences;
  if (hints == nullptr) {
    // Serial rounds: inline single-writer domain growth per new fact in
    // the exact legacy per-source order (MergeFromAll without a pool
    // runs its shard items inline and replays identically).
    SEQLOG_RETURN_IF_ERROR(state->model->MergeFromAll(
        sources, /*pool=*/nullptr,
        [&](PredId pred, TupleView row, size_t) -> Status {
          ++state->last_merged_new;
          delta_new->Insert(pred, row);
          return state->domain->ExtendWith(row, max_domain);
        },
        &state->stats.relation_merge_millis));
  } else {
    // Parallel rounds: the row merge fans out over the pool (one writer
    // per relation shard), and the firing tasks pre-interned the
    // closures of everything they derived, so the serial replay below
    // only concatenates their id streams in deterministic fact order —
    // no symbol hashing here — and hands the result to the sharded
    // membership insert.
    std::vector<SeqId> stream;
    std::unordered_set<SeqId> pending;  // roots already in the stream
    SEQLOG_RETURN_IF_ERROR(state->model->MergeFromAll(
        sources, state->pool.get(),
        [&](PredId pred, TupleView row, size_t src) -> Status {
          const ClosureHints& task_hints = (*hints)[src];
          ++state->last_merged_new;
          delta_new->Insert(pred, row);
          for (SeqId arg : row) {
            if (state->domain->Contains(arg) ||
                !pending.insert(arg).second) {
              continue;
            }
            auto it = task_hints.find(arg);
            if (it != task_hints.end()) {
              stream.insert(stream.end(), it->second.begin(),
                            it->second.end());
            } else {
              // Unhinted root (its closure alone overflows the domain
              // budget): flush the stream so insertion order stays
              // exactly the serial one, then take the budget-checked
              // AddRoot, which bails out mid-closure.
              SEQLOG_RETURN_IF_ERROR(state->domain->ExtendWithClosed(
                  stream, max_domain, state->pool.get()));
              stream.clear();
              SEQLOG_RETURN_IF_ERROR(
                  state->domain->AddRoot(arg, max_domain));
            }
          }
          return Status::Ok();
        },
        &state->stats.relation_merge_millis));
    SEQLOG_RETURN_IF_ERROR(state->domain->ExtendWithClosed(
        stream, max_domain, state->pool.get()));
  }
  state->domain_grew = state->domain->size() != domain_before;
  state->delta = std::move(delta_new);
  if (state->options.track_growth) {
    state->stats.growth.emplace_back(state->model->TotalFacts(),
                                     state->domain->size());
  }
  return Status::Ok();
}

Status Evaluator::FireRound(const std::vector<FireTask>& tasks,
                            RunState* state) const {
  const size_t model_facts = state->model->TotalFacts();
  const size_t min_parallel_work = state->options.min_parallel_work != 0
                                       ? state->options.min_parallel_work
                                       : kMinParallelWork;
  bool parallel = state->threads > 1 && tasks.size() > 1;
  if (parallel && state->last_round_millis < kSlowRoundMillis) {
    // Row estimate: full firings scan the model, delta firings their
    // shard; constructive clauses run machines per derived row and
    // domain-sensitive clauses enumerate the domain, so both weigh in.
    size_t work = 0;
    for (const FireTask& t : tasks) {
      const ClausePlan& plan = plans_[t.plan_idx];
      size_t rows = model_facts;
      if (t.delta_step != kNoDelta) {
        const Relation* rel =
            state->delta->Get(plan.steps[t.delta_step].pred);
        uint32_t all = rel != nullptr ? rel->size() : 0;
        uint32_t end = t.end < all ? t.end : all;
        rows = t.begin < end ? end - t.begin : 0;
      }
      work += plan.constructive ? rows * kConstructiveWeight : rows;
      if (plan.domain_sensitive) work += state->domain->size();
      if (work >= min_parallel_work) break;
    }
    parallel = work >= min_parallel_work;
  }

  auto fire_start = std::chrono::steady_clock::now();
  if (!parallel) {
    // Exact legacy path: all firings share one scratch database and one
    // context, in task order.
    state->scratch->Clear();
    FireContext ctx;
    ctx.pool = pool_;
    ctx.domain = state->domain;
    ctx.full = state->model;
    ctx.delta = state->delta.get();
    ctx.out = state->scratch.get();
    ctx.limits = &state->options.limits;
    ctx.stats = &state->stats;
    ctx.deadline = state->deadline;
    ctx.has_deadline = state->has_deadline;
    ctx.existing_facts = model_facts;
    for (const FireTask& t : tasks) {
      SEQLOG_RETURN_IF_ERROR(
          FireClause(plans_[t.plan_idx], t.delta_step, &ctx, t.begin,
                     t.end));
    }
    state->last_round_millis =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - fire_start)
            .count();
    state->stats.fire_millis += state->last_round_millis;
    return MergeRound({state->scratch.get()}, /*hints=*/nullptr, state);
  }

  if (state->pool == nullptr) {
    state->pool = std::make_unique<ThreadPool>(state->threads);
  }
  const size_t n = tasks.size();
  std::vector<std::unique_ptr<Database>> scratches(n);
  std::vector<EvalStats> task_stats(n);
  std::vector<Status> task_status(n, Status::Ok());
  std::vector<ClosureHints> hints(n);
  std::atomic<size_t> round_new{0};
  state->pool->ParallelFor(n, [&](size_t i) {
    // Thread-local scratch: firing takes no locks except SequencePool
    // interning for sequences the task itself creates. Model, delta and
    // domain are read-only until the merge barrier below.
    scratches[i] = std::make_unique<Database>(catalog_);
    FireContext ctx;
    ctx.pool = pool_;
    ctx.domain = state->domain;
    ctx.full = state->model;
    ctx.delta = state->delta.get();
    ctx.out = scratches[i].get();
    ctx.limits = &state->options.limits;
    ctx.stats = &task_stats[i];
    ctx.deadline = state->deadline;
    ctx.has_deadline = state->has_deadline;
    ctx.existing_facts = model_facts;
    ctx.round_new = &round_new;
    const FireTask& t = tasks[i];
    task_status[i] = FireClause(plans_[t.plan_idx], t.delta_step, &ctx,
                                t.begin, t.end);
    if (task_status[i].ok()) {
      // Still inside the parallel phase: pre-intern the subsequence
      // closures of what this task derived, so the serial barrier below
      // finds every span warm in the pool and only does membership
      // inserts.
      PreInternClosures(*scratches[i], *state->domain,
                        state->options.limits.max_domain_sequences,
                        &hints[i]);
    }
  });
  state->last_round_millis =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - fire_start)
          .count();
  state->stats.fire_millis += state->last_round_millis;
  // Aggregate the order-insensitive counters, then report the first
  // failure in task order (deterministic across schedules); the round's
  // scratches are discarded on error, like the serial path's.
  for (const EvalStats& ts : task_stats) {
    state->stats.derivations += ts.derivations;
  }
  for (const Status& ts : task_status) {
    SEQLOG_RETURN_IF_ERROR(ts);
  }
  std::vector<const Database*> sources;
  sources.reserve(n);
  for (const auto& scratch : scratches) sources.push_back(scratch.get());
  return MergeRound(sources, &hints, state);
}

Status Evaluator::Saturate(const std::vector<size_t>& subset, bool naive,
                           bool first_full, RunState* state) const {
  if (subset.empty()) return Status::Ok();
  bool first = first_full;
  while (true) {
    SEQLOG_RETURN_IF_ERROR(CheckIterationBudget(state));
    bool domain_grew_last_round = state->domain_grew;
    std::vector<FireTask> tasks;
    tasks.reserve(subset.size());
    for (size_t idx : subset) {
      const ClausePlan& plan = plans_[idx];
      if (naive || first ||
          (plan.domain_sensitive && domain_grew_last_round)) {
        // New domain elements can satisfy enumerated variables with old
        // facts; a full re-fire is the only sound option.
        tasks.push_back(FireTask{idx, kNoDelta, 0, UINT32_MAX});
        continue;
      }
      for (size_t si : plan.match_steps) {
        AppendDeltaTasks(idx, si, *state, &tasks);
      }
    }
    SEQLOG_RETURN_IF_ERROR(FireRound(tasks, state));
    first = false;
    // Progress is measured after the merge: naive evaluation re-derives
    // old facts into the scratch set every round, so scratch inserts
    // alone do not indicate a growing interpretation.
    if (state->last_merged_new == 0 && !state->domain_grew) break;
  }
  return Status::Ok();
}

Status Evaluator::EvaluateFlat(const EvalOptions& options,
                               RunState* state) const {
  (void)options;
  std::vector<size_t> all(plans_.size());
  std::iota(all.begin(), all.end(), 0);
  return Saturate(all, options.strategy == Strategy::kNaive,
                  /*first_full=*/true, state);
}

Status Evaluator::EvaluateStratified(const EvalOptions& options,
                                     RunState* state) const {
  (void)options;
  analysis::SafetyReport report = analysis::AnalyzeSafety(program_);
  if (!report.strongly_safe) {
    std::string detail;
    if (report.offending_edge.has_value()) {
      detail = StrCat(" (constructive cycle through ",
                      report.offending_edge->first, " -> ",
                      report.offending_edge->second, "; full cycle ",
                      Join(report.cycle_path, " -> "),
                      report.cycle_loc.valid()
                          ? StrCat(", clause at ",
                                   ast::ToString(report.cycle_loc))
                          : "",
                      ")");
    }
    return Status::FailedPrecondition(
        StrCat("stratified evaluation requires a strongly safe program",
               detail));
  }
  state->stats.strata = report.strata.size();
  // Map head predicates to clause indices once: strata store indices into
  // program_.clauses, which align with plans_ by construction.
  for (const analysis::Stratum& stratum : report.strata) {
    if (!stratum.constructive_clauses.empty()) {
      // Theorem 8: constructive rules of a stratum depend only on lower
      // strata, so one application saturates them.
      SEQLOG_RETURN_IF_ERROR(
          FireSubsetOnce(stratum.constructive_clauses, state));
    }
    SEQLOG_RETURN_IF_ERROR(Saturate(stratum.nonconstructive_clauses,
                                    /*naive=*/false, /*first_full=*/true,
                                    state));
  }
  return Status::Ok();
}

EvalOutcome Evaluator::Evaluate(const Database& edb,
                                const EvalOptions& options,
                                Database* model) const {
  return Evaluate(edb, nullptr, nullptr, options, model);
}

EvalOutcome Evaluator::Evaluate(
    const Database& edb, const Database* extra_facts,
    std::shared_ptr<const ExtendedDomain> base_domain,
    const EvalOptions& options, Database* model) const {
  return Evaluate(edb, extra_facts, std::move(base_domain), options, model,
                  /*domain_out=*/nullptr);
}

EvalOutcome Evaluator::Evaluate(
    const Database& edb, const Database* extra_facts,
    std::shared_ptr<const ExtendedDomain> base_domain,
    const EvalOptions& options, Database* model,
    std::unique_ptr<ExtendedDomain>* domain_out) const {
  EvalOutcome outcome;
  RunState state;
  outcome.status = InitState(edb, extra_facts, std::move(base_domain),
                             options, model, &state);
  if (outcome.status.ok()) {
    switch (options.strategy) {
      case Strategy::kNaive:
      case Strategy::kSemiNaive:
        outcome.status = EvaluateFlat(options, &state);
        break;
      case Strategy::kStratified:
        outcome.status = EvaluateStratified(options, &state);
        break;
    }
  }
  state.stats.facts = model->TotalFacts();
  state.stats.domain_sequences = state.domain ? state.domain->size() : 0;
  state.stats.millis =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - state.start)
          .count();
  outcome.stats = std::move(state.stats);
  if (domain_out != nullptr) {
    // Hand the run's domain to the caller (live-ingest keeps it paired
    // with the model for later Resaturate calls). On error it is the
    // partial domain of a failed run — discard it with the model.
    *domain_out = std::move(state.owned_domain);
  }
  return outcome;
}

EvalOutcome Evaluator::Resaturate(Database* model, ExtendedDomain* domain,
                                  const Database& batch,
                                  const EvalOptions& options) const {
  EvalOutcome outcome;
  RunState state;
  state.model = model;
  state.domain = domain;
  state.options = options;
  state.threads = options.num_threads != 0 ? options.num_threads
                                           : ThreadPool::HardwareThreads();
  state.delta = std::make_unique<Database>(catalog_);
  state.scratch = std::make_unique<Database>(catalog_);
  state.start = std::chrono::steady_clock::now();
  if (options.limits.max_millis > 0) {
    state.has_deadline = true;
    state.deadline =
        state.start + std::chrono::milliseconds(options.limits.max_millis);
  }
  // Seed: only facts genuinely new to the model become the round-0
  // delta; their argument sequences close into the domain exactly like
  // an EDB load. Duplicates are already below the fixpoint — reseeding
  // them would only re-derive what the model holds.
  const size_t domain_before = domain->size();
  const auto load_start = std::chrono::steady_clock::now();
  std::vector<SeqId> roots;
  Status status = Status::Ok();
  for (PredId pred : batch.PredicatesWithRelations()) {
    const Relation* rel = batch.Get(pred);
    if (rel == nullptr || rel->empty()) continue;
    for (uint32_t i = 0; i < rel->size() && status.ok(); ++i) {
      TupleView row = rel->RowAt(i);
      Result<bool> inserted = model->TryInsert(pred, row);
      if (!inserted.ok()) {
        status = inserted.status();
        break;
      }
      if (!inserted.value()) continue;
      ++state.stats.ingested_facts;
      state.delta->Insert(pred, row);
      roots.insert(roots.end(), row.begin(), row.end());
    }
    if (!status.ok()) break;
  }
  if (status.ok()) status = CloseRoots(roots, &state);
  state.stats.domain_load_millis +=
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - load_start)
          .count();
  state.domain_grew = domain->size() != domain_before;
  state.last_merged_new = state.stats.ingested_facts;
  if (status.ok() && state.stats.ingested_facts > 0) {
    // Same rounds as a cold run, minus the initial full firing: any new
    // derivation uses at least one seeded fact (semi-naive argument), or
    // a domain element the seed closure introduced — which the
    // domain-sensitive full re-fires inside Saturate cover. Always the
    // flat loop: re-applying rules to a saturated model is sound for any
    // interpretation between the old and the new fixpoint, so stratified
    // programs need no stratum order here.
    std::vector<size_t> all(plans_.size());
    std::iota(all.begin(), all.end(), 0);
    status = Saturate(all, /*naive=*/false, /*first_full=*/false, &state);
  }
  outcome.status = status;
  state.stats.facts = model->TotalFacts();
  state.stats.domain_sequences = domain->size();
  state.stats.resaturate_rounds = state.stats.iterations;
  state.stats.millis =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - state.start)
          .count();
  state.stats.resaturate_millis = state.stats.millis;
  outcome.stats = std::move(state.stats);
  return outcome;
}

}  // namespace eval
}  // namespace seqlog
