#include "eval/engine.h"

#include <chrono>
#include <memory>
#include <numeric>

#include "analysis/safety.h"
#include "ast/validate.h"
#include "base/string_util.h"

namespace seqlog {
namespace eval {

namespace {
constexpr size_t kNoDelta = static_cast<size_t>(-1);
}  // namespace

struct Evaluator::RunState {
  Database* model = nullptr;
  std::unique_ptr<ExtendedDomain> domain;
  std::unique_ptr<Database> delta;
  std::unique_ptr<Database> scratch;
  EvalOptions options;
  EvalStats stats;
  std::chrono::steady_clock::time_point start;
  std::chrono::steady_clock::time_point deadline;
  bool has_deadline = false;
  bool domain_grew = false;  ///< during the most recently merged round
  size_t last_merged_new = 0;  ///< facts added by the last merge
};

Evaluator::Evaluator(Catalog* catalog, SequencePool* pool,
                     const FunctionRegistry* registry)
    : catalog_(catalog), pool_(pool), registry_(registry) {}

Status Evaluator::SetProgram(const ast::Program& program) {
  SEQLOG_RETURN_IF_ERROR(ast::Validate(program));
  std::vector<ClausePlan> plans;
  plans.reserve(program.clauses.size());
  for (const ast::Clause& clause : program.clauses) {
    SEQLOG_ASSIGN_OR_RETURN(ClausePlan plan,
                            CompileClause(clause, catalog_, registry_));
    plans.push_back(std::move(plan));
  }
  program_ = program;
  plans_ = std::move(plans);
  return Status::Ok();
}

Status Evaluator::LoadFacts(const Database& db, RunState* state) const {
  for (PredId pred : db.PredicatesWithRelations()) {
    const Relation* rel = db.Get(pred);
    if (rel->empty()) continue;
    state->model->GetOrCreate(pred)->Reserve(rel->size());
    state->delta->GetOrCreate(pred)->Reserve(rel->size());
    for (uint32_t i = 0; i < rel->size(); ++i) {
      TupleView row = rel->Row(i);
      state->model->Insert(pred, row);
      state->delta->Insert(pred, row);
      for (SeqId arg : row) {
        SEQLOG_RETURN_IF_ERROR(state->domain->AddRoot(
            arg, state->options.limits.max_domain_sequences));
      }
    }
  }
  return Status::Ok();
}

Status Evaluator::InitState(const Database& edb, const Database* extra_facts,
                            std::shared_ptr<const ExtendedDomain> base_domain,
                            const EvalOptions& options, Database* model,
                            RunState* state) const {
  if (model->TotalFacts() != 0) {
    return Status::InvalidArgument("model database must start empty");
  }
  state->model = model;
  state->options = options;
  state->domain =
      base_domain != nullptr
          ? std::make_unique<ExtendedDomain>(pool_, std::move(base_domain))
          : std::make_unique<ExtendedDomain>(pool_);
  state->delta = std::make_unique<Database>(catalog_);
  state->scratch = std::make_unique<Database>(catalog_);
  state->start = std::chrono::steady_clock::now();
  if (options.limits.max_millis > 0) {
    state->has_deadline = true;
    state->deadline =
        state->start + std::chrono::milliseconds(options.limits.max_millis);
  }
  // The database is a set of ground clauses with empty bodies
  // (Definition 4 treats db atoms as clauses): load it as the starting
  // interpretation and seed the extended active domain (Definition 3).
  SEQLOG_RETURN_IF_ERROR(LoadFacts(edb, state));
  if (extra_facts != nullptr) {
    SEQLOG_RETURN_IF_ERROR(LoadFacts(*extra_facts, state));
  }
  // With a prebuilt base domain the AddRoots above short-circuit without
  // counting, so enforce the budget on the total explicitly — a snapshot
  // execution must fail the same way a live one does.
  const size_t max_domain = options.limits.max_domain_sequences;
  if (max_domain != 0 && state->domain->size() > max_domain) {
    return Status::ResourceExhausted(
        StrCat("extended active domain exceeded ", max_domain,
               " sequences"));
  }
  state->domain_grew = true;
  return Status::Ok();
}

Status Evaluator::CheckIterationBudget(RunState* state) const {
  ++state->stats.iterations;
  if (state->stats.iterations > state->options.limits.max_iterations) {
    return Status::ResourceExhausted(
        StrCat("exceeded ", state->options.limits.max_iterations,
               " iterations"));
  }
  // The per-firing deadline poll uses a tick counter local to one firing;
  // an evaluation made of many short iterations would never reach a poll
  // point, so the deadline must also be checked once per iteration here.
  if (state->has_deadline &&
      std::chrono::steady_clock::now() > state->deadline) {
    return Status::ResourceExhausted("evaluation exceeded time budget");
  }
  return Status::Ok();
}

Status Evaluator::FireSubsetOnce(const std::vector<size_t>& subset,
                                 RunState* state) const {
  SEQLOG_RETURN_IF_ERROR(CheckIterationBudget(state));
  state->scratch->Clear();
  FireContext ctx;
  ctx.pool = pool_;
  ctx.domain = state->domain.get();
  ctx.full = state->model;
  ctx.delta = nullptr;
  ctx.out = state->scratch.get();
  ctx.limits = &state->options.limits;
  ctx.stats = &state->stats;
  ctx.deadline = state->deadline;
  ctx.has_deadline = state->has_deadline;
  ctx.existing_facts = state->model->TotalFacts();
  for (size_t idx : subset) {
    SEQLOG_RETURN_IF_ERROR(FireClause(plans_[idx], kNoDelta, &ctx));
  }
  return MergeScratch(state);
}

Status Evaluator::MergeScratch(RunState* state) const {
  auto delta_new = std::make_unique<Database>(catalog_);
  size_t domain_before = state->domain->size();
  state->last_merged_new = 0;
  for (PredId pred : state->scratch->PredicatesWithRelations()) {
    const Relation* rel = state->scratch->Get(pred);
    for (uint32_t i = 0; i < rel->size(); ++i) {
      TupleView row = rel->Row(i);
      if (!state->model->Insert(pred, row)) continue;
      ++state->last_merged_new;
      delta_new->Insert(pred, row);
      for (SeqId arg : row) {
        SEQLOG_RETURN_IF_ERROR(state->domain->AddRoot(
            arg, state->options.limits.max_domain_sequences));
      }
    }
  }
  state->domain_grew = state->domain->size() != domain_before;
  state->delta = std::move(delta_new);
  if (state->options.track_growth) {
    state->stats.growth.emplace_back(state->model->TotalFacts(),
                                     state->domain->size());
  }
  return Status::Ok();
}

Status Evaluator::Saturate(const std::vector<size_t>& subset, bool naive,
                           RunState* state) const {
  if (subset.empty()) return Status::Ok();
  bool first = true;
  while (true) {
    SEQLOG_RETURN_IF_ERROR(CheckIterationBudget(state));
    state->scratch->Clear();
    FireContext ctx;
    ctx.pool = pool_;
    ctx.domain = state->domain.get();
    ctx.full = state->model;
    ctx.delta = state->delta.get();
    ctx.out = state->scratch.get();
    ctx.limits = &state->options.limits;
    ctx.stats = &state->stats;
    ctx.deadline = state->deadline;
    ctx.has_deadline = state->has_deadline;
    ctx.existing_facts = state->model->TotalFacts();

    bool domain_grew_last_round = state->domain_grew;
    for (size_t idx : subset) {
      const ClausePlan& plan = plans_[idx];
      if (naive || first) {
        SEQLOG_RETURN_IF_ERROR(FireClause(plan, kNoDelta, &ctx));
        continue;
      }
      if (plan.domain_sensitive && domain_grew_last_round) {
        // New domain elements can satisfy enumerated variables with old
        // facts; a full re-fire is the only sound option.
        SEQLOG_RETURN_IF_ERROR(FireClause(plan, kNoDelta, &ctx));
        continue;
      }
      for (size_t si : plan.match_steps) {
        SEQLOG_RETURN_IF_ERROR(FireClause(plan, si, &ctx));
      }
    }
    SEQLOG_RETURN_IF_ERROR(MergeScratch(state));
    first = false;
    // Progress is measured after the merge: naive evaluation re-derives
    // old facts into the scratch set every round, so scratch inserts
    // alone do not indicate a growing interpretation.
    if (state->last_merged_new == 0 && !state->domain_grew) break;
  }
  return Status::Ok();
}

Status Evaluator::EvaluateFlat(const EvalOptions& options,
                               RunState* state) const {
  (void)options;
  std::vector<size_t> all(plans_.size());
  std::iota(all.begin(), all.end(), 0);
  return Saturate(all, options.strategy == Strategy::kNaive, state);
}

Status Evaluator::EvaluateStratified(const EvalOptions& options,
                                     RunState* state) const {
  (void)options;
  analysis::SafetyReport report = analysis::AnalyzeSafety(program_);
  if (!report.strongly_safe) {
    std::string detail;
    if (report.offending_edge.has_value()) {
      detail = StrCat(" (constructive cycle through ",
                      report.offending_edge->first, " -> ",
                      report.offending_edge->second, ")");
    }
    return Status::FailedPrecondition(
        StrCat("stratified evaluation requires a strongly safe program",
               detail));
  }
  state->stats.strata = report.strata.size();
  // Map head predicates to clause indices once: strata store indices into
  // program_.clauses, which align with plans_ by construction.
  for (const analysis::Stratum& stratum : report.strata) {
    if (!stratum.constructive_clauses.empty()) {
      // Theorem 8: constructive rules of a stratum depend only on lower
      // strata, so one application saturates them.
      SEQLOG_RETURN_IF_ERROR(
          FireSubsetOnce(stratum.constructive_clauses, state));
    }
    SEQLOG_RETURN_IF_ERROR(
        Saturate(stratum.nonconstructive_clauses, /*naive=*/false, state));
  }
  return Status::Ok();
}

EvalOutcome Evaluator::Evaluate(const Database& edb,
                                const EvalOptions& options,
                                Database* model) const {
  return Evaluate(edb, nullptr, nullptr, options, model);
}

EvalOutcome Evaluator::Evaluate(
    const Database& edb, const Database* extra_facts,
    std::shared_ptr<const ExtendedDomain> base_domain,
    const EvalOptions& options, Database* model) const {
  EvalOutcome outcome;
  RunState state;
  outcome.status = InitState(edb, extra_facts, std::move(base_domain),
                             options, model, &state);
  if (outcome.status.ok()) {
    switch (options.strategy) {
      case Strategy::kNaive:
      case Strategy::kSemiNaive:
        outcome.status = EvaluateFlat(options, &state);
        break;
      case Strategy::kStratified:
        outcome.status = EvaluateStratified(options, &state);
        break;
    }
  }
  state.stats.facts = model->TotalFacts();
  state.stats.domain_sequences = state.domain ? state.domain->size() : 0;
  state.stats.millis =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - state.start)
          .count();
  outcome.stats = std::move(state.stats);
  return outcome;
}

}  // namespace eval
}  // namespace seqlog
