#include "eval/cterm.h"

#include "base/logging.h"

namespace seqlog {
namespace eval {

int64_t EvalIndexTerm(const CIndexTerm& term, const Env& env,
                      int64_t base_len) {
  switch (term.kind) {
    case CIndexTerm::Kind::kLiteral:
      return term.literal;
    case CIndexTerm::Kind::kVariable:
      SEQLOG_DCHECK(env.idx_bound[term.var]);
      return env.idx_vals[term.var];
    case CIndexTerm::Kind::kEnd:
      return base_len;
    case CIndexTerm::Kind::kAdd:
      return EvalIndexTerm(*term.lhs, env, base_len) +
             EvalIndexTerm(*term.rhs, env, base_len);
    case CIndexTerm::Kind::kSub:
      return EvalIndexTerm(*term.lhs, env, base_len) -
             EvalIndexTerm(*term.rhs, env, base_len);
  }
  SEQLOG_CHECK(false) << "unknown index term kind";
  return 0;
}

Result<std::optional<SeqId>> EvalSeqTerm(const CSeqTerm& term,
                                         const Env& env,
                                         SequencePool* pool) {
  switch (term.kind) {
    case CSeqTerm::Kind::kConstant:
      return std::optional<SeqId>(term.constant);
    case CSeqTerm::Kind::kVariable:
      SEQLOG_DCHECK(env.seq_bound[term.var]);
      return std::optional<SeqId>(env.seq_vals[term.var]);
    case CSeqTerm::Kind::kIndexed: {
      SeqId base =
          term.base_is_var ? env.seq_vals[term.var] : term.constant;
      SEQLOG_DCHECK(!term.base_is_var || env.seq_bound[term.var]);
      int64_t len = static_cast<int64_t>(pool->Length(base));
      int64_t lo = EvalIndexTerm(*term.lo, env, len);
      int64_t hi = EvalIndexTerm(*term.hi, env, len);
      // Section 3.2 definedness: 1 <= lo <= hi+1 <= len+1.
      if (!(1 <= lo && lo <= hi + 1 && hi + 1 <= len + 1)) {
        return std::optional<SeqId>();
      }
      return std::optional<SeqId>(pool->Subsequence(base, lo, hi));
    }
    case CSeqTerm::Kind::kConcat: {
      SEQLOG_ASSIGN_OR_RETURN(std::optional<SeqId> l,
                              EvalSeqTerm(*term.left, env, pool));
      if (!l.has_value()) return std::optional<SeqId>();
      SEQLOG_ASSIGN_OR_RETURN(std::optional<SeqId> r,
                              EvalSeqTerm(*term.right, env, pool));
      if (!r.has_value()) return std::optional<SeqId>();
      return std::optional<SeqId>(pool->Concat(*l, *r));
    }
    case CSeqTerm::Kind::kFunction: {
      std::vector<SeqId> inputs;
      inputs.reserve(term.args.size());
      for (const auto& arg : term.args) {
        SEQLOG_ASSIGN_OR_RETURN(std::optional<SeqId> v,
                                EvalSeqTerm(*arg, env, pool));
        if (!v.has_value()) return std::optional<SeqId>();
        inputs.push_back(*v);
      }
      Result<SeqId> out = term.fn->Apply(inputs, pool);
      if (out.ok()) return std::optional<SeqId>(out.value());
      if (out.status().code() == StatusCode::kFailedPrecondition) {
        // Partial machine undefined at this input (Section 7.1
        // semantics): the substitution is undefined at the term.
        return std::optional<SeqId>();
      }
      return out.status();
    }
  }
  SEQLOG_CHECK(false) << "unknown sequence term kind";
  return std::optional<SeqId>();
}

bool AllVarsBound(const CSeqTerm& term, const Env& env) {
  for (VarRef v : term.vars) {
    if (!env.IsBound(v)) return false;
  }
  return true;
}

}  // namespace eval
}  // namespace seqlog
