// seqlog: bottom-up fixpoint evaluation (Section 3.3).
//
// Three strategies compute lfp(T_{P,db}) = T_{P,db} ^ omega:
//
//  * kNaive      — executable definition of the T-operator: every clause
//                  is fired fully each iteration. Used as a test oracle.
//  * kSemiNaive  — production path: after the first iteration a clause
//                  fires once per body predicate literal with that
//                  literal restricted to the previous iteration's new
//                  facts; clauses that enumerate the domain (domain
//                  sensitive) additionally re-fire fully whenever the
//                  extended active domain grew.
//  * kStratified — the Theorem 8 strategy for strongly safe programs:
//                  strata in dependency-graph order, constructive rules
//                  applied once per stratum, non-constructive rules
//                  saturated semi-naively.
//
// All strategies are budgeted (Theorem 2: finiteness is undecidable);
// divergent programs such as Example 1.6 end with kResourceExhausted and
// partial results left in the model for inspection.
#ifndef SEQLOG_EVAL_ENGINE_H_
#define SEQLOG_EVAL_ENGINE_H_

#include <memory>
#include <vector>

#include "ast/clause.h"
#include "eval/clause_plan.h"
#include "eval/executor.h"
#include "eval/function_registry.h"
#include "sequence/domain.h"
#include "storage/database.h"

namespace seqlog {
namespace eval {

enum class Strategy { kNaive, kSemiNaive, kStratified };

struct EvalOptions {
  Strategy strategy = Strategy::kSemiNaive;
  EvalLimits limits;
  /// Record (facts, domain) after every iteration into stats.growth.
  bool track_growth = false;
};

/// Status plus statistics; stats are valid even when status is an error
/// (budget exhaustion leaves partial results in the model).
struct EvalOutcome {
  Status status;
  EvalStats stats;
};

/// Compiles a program once and evaluates it over databases.
///
/// Evaluation is const: once SetProgram has compiled the plans, one
/// Evaluator may serve many concurrent Evaluate calls (each with its own
/// model database), which is how prepared queries execute the cached
/// magic rewrite from many threads (core/prepared_query.h).
class Evaluator {
 public:
  /// `registry` may be null for pure Sequence Datalog programs.
  Evaluator(Catalog* catalog, SequencePool* pool,
            const FunctionRegistry* registry);

  /// Compiles `program`; replaces any previous program. Not safe to call
  /// concurrently with Evaluate.
  Status SetProgram(const ast::Program& program);

  const ast::Program& program() const { return program_; }
  const std::vector<ClausePlan>& plans() const { return plans_; }

  /// Computes the least fixpoint of the program over `edb` into `model`
  /// (which must be empty and share the evaluator's catalog). On return
  /// `model` holds T^omega (or a budget-truncated prefix of it).
  EvalOutcome Evaluate(const Database& edb, const EvalOptions& options,
                       Database* model) const;

  /// Same, additionally loading the atoms of `extra_facts` (may be null)
  /// into the starting interpretation alongside `edb` — how goal seeds
  /// reach a prepared magic program without rewriting it: the seed is
  /// data, not a clause (query/solver.h) — and layering the run's
  /// extended active domain on a frozen `base_domain` (may be null).
  /// The base MUST be the closure of exactly `edb`'s sequences
  /// (core/snapshot.h publishes such a pair): the run then skips
  /// re-closing the database — the dominant per-query cost — and only
  /// pays for sequences it derives itself.
  EvalOutcome Evaluate(const Database& edb, const Database* extra_facts,
                       std::shared_ptr<const ExtendedDomain> base_domain,
                       const EvalOptions& options, Database* model) const;

 private:
  struct RunState;

  Status InitState(const Database& edb, const Database* extra_facts,
                   std::shared_ptr<const ExtendedDomain> base_domain,
                   const EvalOptions& options, Database* model,
                   RunState* state) const;
  /// Loads every atom of `db` into the model, delta and domain.
  Status LoadFacts(const Database& db, RunState* state) const;
  /// One least-fixpoint loop over the given clause subset; shared by all
  /// strategies. `first_full` forces a full firing pass first.
  Status Saturate(const std::vector<size_t>& subset, bool naive,
                  RunState* state) const;
  Status FireSubsetOnce(const std::vector<size_t>& subset,
                        RunState* state) const;
  /// Bumps the iteration counter and enforces the iteration and wall-time
  /// budgets. Called once per fixpoint round.
  Status CheckIterationBudget(RunState* state) const;
  /// Merges state->scratch into the model, refreshing delta and domain.
  Status MergeScratch(RunState* state) const;

  Status EvaluateFlat(const EvalOptions& options, RunState* state) const;
  Status EvaluateStratified(const EvalOptions& options,
                            RunState* state) const;

  Catalog* catalog_;
  SequencePool* pool_;
  const FunctionRegistry* registry_;
  ast::Program program_;
  std::vector<ClausePlan> plans_;
};

}  // namespace eval
}  // namespace seqlog

#endif  // SEQLOG_EVAL_ENGINE_H_
