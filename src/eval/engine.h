// seqlog: bottom-up fixpoint evaluation (Section 3.3).
//
// Three strategies compute lfp(T_{P,db}) = T_{P,db} ^ omega:
//
//  * kNaive      — executable definition of the T-operator: every clause
//                  is fired fully each iteration. Used as a test oracle.
//  * kSemiNaive  — production path: after the first iteration a clause
//                  fires once per body predicate literal with that
//                  literal restricted to the previous iteration's new
//                  facts; clauses that enumerate the domain (domain
//                  sensitive) additionally re-fire fully whenever the
//                  extended active domain grew.
//  * kStratified — the Theorem 8 strategy for strongly safe programs:
//                  strata in dependency-graph order, constructive rules
//                  applied once per stratum, non-constructive rules
//                  saturated semi-naively.
//
// All strategies are budgeted (Theorem 2: finiteness is undecidable);
// divergent programs such as Example 1.6 end with kResourceExhausted and
// partial results left in the model for inspection.
//
// Rounds are embarrassingly parallel: within one iteration every clause
// firing reads the same frozen (model, delta, domain) triple and only
// writes derived facts, so EvalOptions::num_threads > 1 fans the firings
// (sharding large deltas by row range) out to a pool of workers with
// thread-local scratch databases. Mutation is confined to the round
// barrier, which merges scratches in deterministic task order. The
// domain closure itself is parallelised end to end: worker tasks
// pre-intern the subsequence spans of sequences they derive (lock-free
// SequencePool reads, shared_mutex interning) and hand the barrier
// ready-made closure id streams, so the barrier degrades to membership
// inserts on warm pool entries — with the duplicate filtering sharded
// across workers (ExtendedDomain::ExtendWithClosed); the EDB-load
// closure fans out the same way. The computed model is identical at
// every thread count. docs/CONCURRENCY.md holds the full contract.
#ifndef SEQLOG_EVAL_ENGINE_H_
#define SEQLOG_EVAL_ENGINE_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "ast/clause.h"
#include "eval/clause_plan.h"
#include "eval/executor.h"
#include "eval/function_registry.h"
#include "sequence/domain.h"
#include "storage/database.h"

namespace seqlog {
namespace eval {

enum class Strategy { kNaive, kSemiNaive, kStratified };

struct EvalOptions {
  Strategy strategy = Strategy::kSemiNaive;
  EvalLimits limits;
  /// Record (facts, domain) after every iteration into stats.growth.
  bool track_growth = false;
  /// Execution width of a fixpoint round: 0 = one thread per hardware
  /// core, 1 = the exact single-threaded legacy path, N = up to N-way
  /// parallelism. Within a round each clause firing (and, for large
  /// deltas, each contiguous row shard of one firing) derives into a
  /// thread-local scratch database; the round barrier merges the
  /// scratches in deterministic task order, so the computed model, the
  /// answer sets and the iteration/derivation counters are identical at
  /// every width — only wall-clock time and budget-edge behaviour vary:
  /// the round-global max_facts counter tallies a fact once per task
  /// that derives it (it cannot see across private scratches), so a run
  /// sitting exactly at the max_facts edge can exhaust at a width where
  /// another width still fits; similarly the domain budget is checked
  /// against a parallel barrier batch's final size rather than
  /// mid-closure, so a *failing* run's partial domain can differ by
  /// width (the status and all successful runs are identical). Small
  /// rounds stay serial regardless (the pool round-trip would cost more
  /// than the work), so point queries over magic rewrites pay nothing
  /// for the default.
  size_t num_threads = 0;
  /// Estimated-row floor below which a round stays serial (0 = the
  /// built-in default). Tests set 1 to force tiny rounds through the
  /// parallel fan-out and shard-parallel merge barrier — the production
  /// heuristic would keep them on the serial path and the parallel
  /// machinery would go unexercised.
  size_t min_parallel_work = 0;
};

/// Status plus statistics; stats are valid even when status is an error
/// (budget exhaustion leaves partial results in the model).
struct EvalOutcome {
  Status status;
  EvalStats stats;
};

/// Compiles a program once and evaluates it over databases.
///
/// Evaluation is const: once SetProgram has compiled the plans, one
/// Evaluator may serve many concurrent Evaluate calls (each with its own
/// model database), which is how prepared queries execute the cached
/// magic rewrite from many threads (core/prepared_query.h).
class Evaluator {
 public:
  /// `registry` may be null for pure Sequence Datalog programs.
  Evaluator(Catalog* catalog, SequencePool* pool,
            const FunctionRegistry* registry);

  /// Compiles `program`; replaces any previous program. Not safe to call
  /// concurrently with Evaluate.
  Status SetProgram(const ast::Program& program);

  const ast::Program& program() const { return program_; }
  const std::vector<ClausePlan>& plans() const { return plans_; }

  /// Computes the least fixpoint of the program over `edb` into `model`
  /// (which must be empty and share the evaluator's catalog). On return
  /// `model` holds T^omega (or a budget-truncated prefix of it).
  EvalOutcome Evaluate(const Database& edb, const EvalOptions& options,
                       Database* model) const;

  /// Same, additionally loading the atoms of `extra_facts` (may be null)
  /// into the starting interpretation alongside `edb` — how goal seeds
  /// reach a prepared magic program without rewriting it: the seed is
  /// data, not a clause (query/solver.h) — and layering the run's
  /// extended active domain on a frozen `base_domain` (may be null).
  /// The base MUST be the closure of exactly `edb`'s sequences
  /// (core/snapshot.h publishes such a pair): the run then skips
  /// re-closing the database — the dominant per-query cost — and only
  /// pays for sequences it derives itself.
  EvalOutcome Evaluate(const Database& edb, const Database* extra_facts,
                       std::shared_ptr<const ExtendedDomain> base_domain,
                       const EvalOptions& options, Database* model,
                       std::unique_ptr<ExtendedDomain>* domain_out) const;

  EvalOutcome Evaluate(const Database& edb, const Database* extra_facts,
                       std::shared_ptr<const ExtendedDomain> base_domain,
                       const EvalOptions& options, Database* model) const;

  /// Incremental re-saturation (the live-ingest entry point, src/ivm/):
  /// `model` must hold the least fixpoint of the current program over
  /// some database D and `domain` must be the extended active domain of
  /// that run (keep both via the `domain_out` Evaluate overload). The
  /// atoms of `batch` are seeded as a round-0 delta — duplicates already
  /// in the model are dropped, new argument sequences close into the
  /// domain exactly like an EDB load — and the same semi-naive rounds
  /// re-run until the fixpoint: delta firings per body literal, full
  /// re-fires of domain-sensitive clauses while the domain grows, the
  /// same parallel fan-out and round barrier as a cold run. Because the
  /// T-operator is monotone for insert-only deltas, the result equals a
  /// cold Evaluate over D union batch (property-tested bit-identically,
  /// tests/ivm_test.cc); retractions are NOT supported — callers must
  /// cold-recompute instead (EvalStats::cold_fallback).
  ///
  /// Always runs the flat semi-naive loop regardless of
  /// options.strategy: re-applying rules to an already-saturated model
  /// is sound and complete for any set between D and lfp(D union batch).
  /// Fills EvalStats::resaturate_rounds / resaturate_millis /
  /// ingested_facts. On a budget error the model holds a partial
  /// extension (supersets D's fixpoint) — callers should treat it as
  /// poisoned and rebuild cold.
  EvalOutcome Resaturate(Database* model, ExtendedDomain* domain,
                         const Database& batch,
                         const EvalOptions& options) const;

 private:
  struct RunState;
  /// One clause firing of a round: plan index, delta literal (kNoDelta
  /// for a full firing) and a delta row shard (parallel rounds split one
  /// large delta into contiguous, disjointly covering ranges).
  struct FireTask;
  /// Per-task closure hints: root id -> its pre-interned subsequence
  /// closure stream (EnumerateClosure order). Worker tasks fill one map
  /// per task during the firing phase; the merge barrier consumes them
  /// so the domain extension never hashes a symbol span.
  using ClosureHints = std::unordered_map<SeqId, std::vector<SeqId>>;

  Status InitState(const Database& edb, const Database* extra_facts,
                   std::shared_ptr<const ExtendedDomain> base_domain,
                   const EvalOptions& options, Database* model,
                   RunState* state) const;
  /// Loads every atom of `db` into the model and delta, then closes the
  /// argument sequences into the domain via CloseRoots.
  Status LoadFacts(const Database& db, RunState* state) const;
  /// Extends the domain with every id of `roots` (subsequence closure
  /// included), in order. Multi-threaded runs with enough closure work
  /// pre-intern the spans in parallel and batch the membership inserts
  /// (ExtendWithClosed); otherwise this is the serial AddRoot loop. The
  /// resulting domain is identical either way.
  Status CloseRoots(const std::vector<SeqId>& roots, RunState* state) const;
  /// One least-fixpoint loop over the given clause subset; shared by all
  /// strategies. `first_full` forces a full firing pass first — cold
  /// runs need it (the round-0 delta alone misses empty-body clauses);
  /// Resaturate starts from an already-saturated model and skips it.
  Status Saturate(const std::vector<size_t>& subset, bool naive,
                  bool first_full, RunState* state) const;
  Status FireSubsetOnce(const std::vector<size_t>& subset,
                        RunState* state) const;
  /// Bumps the iteration counter and enforces the iteration and wall-time
  /// budgets. Called once per fixpoint round.
  Status CheckIterationBudget(RunState* state) const;
  /// Appends the semi-naive task(s) for delta literal `si` of plan
  /// `idx`, sharding the delta relation across workers when it is large
  /// enough and the run is multi-threaded.
  void AppendDeltaTasks(size_t idx, size_t si, const RunState& state,
                        std::vector<FireTask>* tasks) const;
  /// Executes one round's tasks and merges the results. Small or
  /// single-threaded rounds run the tasks serially into the shared
  /// scratch database (the exact legacy path); otherwise the tasks fan
  /// out to the run's thread pool, each deriving into a thread-local
  /// scratch — and pre-interning the closures of what it derived into
  /// per-task ClosureHints — merged deterministically in task order at
  /// the barrier.
  Status FireRound(const std::vector<FireTask>& tasks,
                   RunState* state) const;
  /// Merges `sources` (in order) into the model via
  /// Database::MergeFromAll — parallel rounds fan the row merge over the
  /// run's pool, one writer per relation shard — refreshing delta,
  /// domain and growth stats. The row-merge phase is accounted into
  /// EvalStats::relation_merge_millis, the rest of the barrier (commit
  /// replay, domain closure) into domain_merge_millis. With `hints`
  /// (parallel rounds) the domain grows through the warm-entry
  /// ExtendWithClosed path; without (serial rounds) through the legacy
  /// inline ExtendWith.
  Status MergeRound(const std::vector<const Database*>& sources,
                    const std::vector<ClosureHints>* hints,
                    RunState* state) const;
  Status MergeRoundImpl(const std::vector<const Database*>& sources,
                        const std::vector<ClosureHints>* hints,
                        RunState* state) const;

  Status EvaluateFlat(const EvalOptions& options, RunState* state) const;
  Status EvaluateStratified(const EvalOptions& options,
                            RunState* state) const;

  Catalog* catalog_;
  SequencePool* pool_;
  const FunctionRegistry* registry_;
  ast::Program program_;
  std::vector<ClausePlan> plans_;
};

}  // namespace eval
}  // namespace seqlog

#endif  // SEQLOG_EVAL_ENGINE_H_
