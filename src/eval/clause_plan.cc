#include "eval/clause_plan.h"

#include <algorithm>
#include <map>
#include <set>

#include "base/string_util.h"

namespace seqlog {
namespace eval {

namespace {

/// Assigns dense ids to variable names in deterministic (alphabetical)
/// order.
struct VarTable {
  std::map<std::string, uint32_t> seq_ids;
  std::map<std::string, uint32_t> idx_ids;
  std::vector<std::string> seq_names;
  std::vector<std::string> idx_names;

  void Build(const ast::Clause& clause) {
    std::set<std::string> seq_vars;
    std::set<std::string> idx_vars;
    ast::CollectAtomVars(clause.head, &seq_vars, &idx_vars);
    for (const ast::Atom& a : clause.body) {
      ast::CollectAtomVars(a, &seq_vars, &idx_vars);
    }
    for (const std::string& v : seq_vars) {
      seq_ids.emplace(v, static_cast<uint32_t>(seq_names.size()));
      seq_names.push_back(v);
    }
    for (const std::string& v : idx_vars) {
      idx_ids.emplace(v, static_cast<uint32_t>(idx_names.size()));
      idx_names.push_back(v);
    }
  }
};

std::unique_ptr<CIndexTerm> CompileIndex(const ast::IndexTermPtr& term,
                                         const VarTable& vars) {
  auto out = std::make_unique<CIndexTerm>();
  switch (term->kind) {
    case ast::IndexTerm::Kind::kLiteral:
      out->kind = CIndexTerm::Kind::kLiteral;
      out->literal = term->literal;
      break;
    case ast::IndexTerm::Kind::kVariable:
      out->kind = CIndexTerm::Kind::kVariable;
      out->var = vars.idx_ids.at(term->var);
      break;
    case ast::IndexTerm::Kind::kEnd:
      out->kind = CIndexTerm::Kind::kEnd;
      break;
    case ast::IndexTerm::Kind::kAdd:
      out->kind = CIndexTerm::Kind::kAdd;
      out->lhs = CompileIndex(term->lhs, vars);
      out->rhs = CompileIndex(term->rhs, vars);
      break;
    case ast::IndexTerm::Kind::kSub:
      out->kind = CIndexTerm::Kind::kSub;
      out->lhs = CompileIndex(term->lhs, vars);
      out->rhs = CompileIndex(term->rhs, vars);
      break;
  }
  return out;
}

void CollectTermVars(const ast::SeqTermPtr& term, const VarTable& vars,
                     std::vector<VarRef>* out) {
  std::set<std::string> seq_vars;
  std::set<std::string> idx_vars;
  ast::CollectSeqVars(term, &seq_vars);
  ast::CollectIndexVars(term, &idx_vars);
  for (const std::string& v : seq_vars) {
    out->push_back(VarRef{false, vars.seq_ids.at(v)});
  }
  for (const std::string& v : idx_vars) {
    out->push_back(VarRef{true, vars.idx_ids.at(v)});
  }
}

Result<std::unique_ptr<CSeqTerm>> CompileSeq(
    const ast::SeqTermPtr& term, const VarTable& vars,
    const FunctionRegistry* registry) {
  auto out = std::make_unique<CSeqTerm>();
  switch (term->kind) {
    case ast::SeqTerm::Kind::kConstant:
      out->kind = CSeqTerm::Kind::kConstant;
      out->constant = term->constant;
      break;
    case ast::SeqTerm::Kind::kVariable:
      out->kind = CSeqTerm::Kind::kVariable;
      out->var = vars.seq_ids.at(term->var);
      break;
    case ast::SeqTerm::Kind::kIndexed: {
      out->kind = CSeqTerm::Kind::kIndexed;
      if (term->base->kind == ast::SeqTerm::Kind::kVariable) {
        out->base_is_var = true;
        out->var = vars.seq_ids.at(term->base->var);
      } else {
        out->base_is_var = false;
        out->constant = term->base->constant;
      }
      out->lo = CompileIndex(term->lo, vars);
      out->hi = CompileIndex(term->hi, vars);
      break;
    }
    case ast::SeqTerm::Kind::kConcat: {
      out->kind = CSeqTerm::Kind::kConcat;
      SEQLOG_ASSIGN_OR_RETURN(out->left,
                              CompileSeq(term->left, vars, registry));
      SEQLOG_ASSIGN_OR_RETURN(out->right,
                              CompileSeq(term->right, vars, registry));
      break;
    }
    case ast::SeqTerm::Kind::kTransducer: {
      out->kind = CSeqTerm::Kind::kFunction;
      if (registry == nullptr) {
        return Status::FailedPrecondition(
            StrCat("transducer term @", term->transducer,
                   " used but no function registry supplied"));
      }
      SEQLOG_ASSIGN_OR_RETURN(out->fn, registry->Find(term->transducer));
      if (out->fn->NumInputs() != term->args.size()) {
        return Status::InvalidArgument(
            StrCat("transducer '", term->transducer, "' takes ",
                   out->fn->NumInputs(), " inputs, got ",
                   term->args.size()));
      }
      for (const ast::SeqTermPtr& a : term->args) {
        SEQLOG_ASSIGN_OR_RETURN(std::unique_ptr<CSeqTerm> ca,
                                CompileSeq(a, vars, registry));
        out->args.push_back(std::move(ca));
      }
      break;
    }
  }
  CollectTermVars(term, vars, &out->vars);
  return out;
}

/// Cost weights: enumerating a sequence variable scans the whole domain;
/// an index variable scans [0, lmax+1]. Sequence enumeration dominates.
constexpr int kSeqEnumWeight = 10000;
constexpr int kIdxEnumWeight = 100;

struct StepPlan {
  std::vector<VarRef> enum_vars;
  std::vector<ArgMode> modes;
  int bind_side = -1;
  int score = 0;
};

/// True if `term` mentions the `end` keyword anywhere.
bool ContainsEnd(const CIndexTerm& term) {
  switch (term.kind) {
    case CIndexTerm::Kind::kEnd:
      return true;
    case CIndexTerm::Kind::kAdd:
    case CIndexTerm::Kind::kSub:
      return ContainsEnd(*term.lhs) || ContainsEnd(*term.rhs);
    default:
      return false;
  }
}

/// Plans one predicate literal given the bound set.
StepPlan PlanMatch(const LiteralStep& step, const std::set<VarRef>& bound) {
  StepPlan plan;
  // First pass: identify collector variables (plain unbound vars).
  std::set<VarRef> collectors;
  plan.modes.assign(step.args.size(), ArgMode::kKey);
  std::vector<char> is_collector(step.args.size(), 0);
  for (size_t i = 0; i < step.args.size(); ++i) {
    const CSeqTerm& arg = *step.args[i];
    if (arg.IsPlainVar() && bound.count(VarRef{false, arg.var}) == 0) {
      plan.modes[i] = ArgMode::kCollector;
      is_collector[i] = 1;
      collectors.insert(VarRef{false, arg.var});
    }
  }
  // Inverse-suffix pass: an argument B[lo:end] with unbound base B and
  // fully-bound, end-free lo can *solve* B from the matched value by a
  // length-bucket scan instead of enumerating the domain for B. Each
  // solvable argument must be B's first occurrence in the literal so the
  // executor binds before any other argument reads it.
  std::set<VarRef> solved;
  std::vector<char> is_inverse(step.args.size(), 0);
  for (size_t i = 0; i < step.args.size(); ++i) {
    if (is_collector[i]) continue;
    const CSeqTerm& arg = *step.args[i];
    if (arg.kind != CSeqTerm::Kind::kIndexed || !arg.base_is_var) continue;
    VarRef base{false, arg.var};
    if (bound.count(base) > 0 || collectors.count(base) > 0 ||
        solved.count(base) > 0) {
      continue;
    }
    if (arg.hi->kind != CIndexTerm::Kind::kEnd) continue;
    if (ContainsEnd(*arg.lo)) continue;
    bool lo_bound = true;
    for (VarRef v : arg.vars) {
      if (v == base) continue;
      if (bound.count(v) == 0) lo_bound = false;
    }
    if (!lo_bound) continue;
    bool first_occurrence = true;
    for (size_t j = 0; j < i; ++j) {
      for (VarRef v : step.args[j]->vars) {
        if (v == base) first_occurrence = false;
      }
    }
    if (!first_occurrence) continue;
    is_inverse[i] = 1;
    solved.insert(base);
  }
  // Final pass: keys vs post-checks, and enumeration vars.
  std::set<VarRef> enums;
  for (size_t i = 0; i < step.args.size(); ++i) {
    const CSeqTerm& arg = *step.args[i];
    if (is_collector[i]) continue;
    if (is_inverse[i]) {
      plan.modes[i] = ArgMode::kInverseSuffix;
      continue;
    }
    bool needs_late_vars = false;
    for (VarRef v : arg.vars) {
      if (collectors.count(v) > 0 || solved.count(v) > 0) {
        needs_late_vars = true;
      } else if (bound.count(v) == 0) {
        enums.insert(v);
      }
    }
    plan.modes[i] = needs_late_vars ? ArgMode::kPostCheck : ArgMode::kKey;
  }
  plan.enum_vars.assign(enums.begin(), enums.end());
  bool has_key = false;
  for (size_t i = 0; i < step.args.size(); ++i) {
    if (plan.modes[i] == ArgMode::kKey && !step.args[i]->vars.empty()) {
      has_key = true;  // an evaluable, non-constant key helps seeks
    }
  }
  for (VarRef v : plan.enum_vars) {
    plan.score += v.is_index ? kIdxEnumWeight : kSeqEnumWeight;
  }
  // A bucket scan is far cheaper than full-domain enumeration but not
  // free; weight it like an index-variable loop.
  plan.score +=
      static_cast<int>(solved.size()) * kIdxEnumWeight;
  if (has_key) plan.score -= 10;
  return plan;
}

/// Plans an equality / inequality literal given the bound set.
StepPlan PlanCompare(const LiteralStep& step,
                     const std::set<VarRef>& bound) {
  StepPlan plan;
  const CSeqTerm& lhs = *step.args[0];
  const CSeqTerm& rhs = *step.args[1];
  auto unbound_vars = [&](const CSeqTerm& t) {
    std::set<VarRef> out;
    for (VarRef v : t.vars) {
      if (bound.count(v) == 0) out.insert(v);
    }
    return out;
  };
  std::set<VarRef> ul = unbound_vars(lhs);
  std::set<VarRef> ur = unbound_vars(rhs);
  std::set<VarRef> enums;
  if (step.kind == LiteralStep::Kind::kEq && lhs.IsPlainVar() &&
      ul.size() == 1) {
    // lhs is a single unbound plain variable: bind it from rhs.
    plan.bind_side = 0;
    enums = ur;
  } else if (step.kind == LiteralStep::Kind::kEq && rhs.IsPlainVar() &&
             ur.size() == 1) {
    plan.bind_side = 1;
    enums = ul;
  } else {
    enums = ul;
    enums.insert(ur.begin(), ur.end());
  }
  plan.enum_vars.assign(enums.begin(), enums.end());
  for (VarRef v : plan.enum_vars) {
    plan.score += v.is_index ? kIdxEnumWeight : kSeqEnumWeight;
  }
  plan.score += 5;  // prefer predicate literals at equal enumeration cost
  return plan;
}

}  // namespace

Result<ClausePlan> CompileClause(const ast::Clause& clause,
                                 Catalog* catalog,
                                 const FunctionRegistry* registry) {
  ClausePlan plan;
  plan.source = clause;
  plan.constructive = clause.IsConstructiveClause();

  VarTable vars;
  vars.Build(clause);
  plan.num_seq_vars = vars.seq_names.size();
  plan.num_idx_vars = vars.idx_names.size();
  plan.seq_var_names = vars.seq_names;
  plan.idx_var_names = vars.idx_names;

  // Head.
  SEQLOG_ASSIGN_OR_RETURN(
      PredId head_pred,
      catalog->GetOrCreate(clause.head.predicate, clause.head.args.size()));
  plan.head_pred = head_pred;
  for (const ast::SeqTermPtr& t : clause.head.args) {
    SEQLOG_ASSIGN_OR_RETURN(std::unique_ptr<CSeqTerm> ct,
                            CompileSeq(t, vars, registry));
    plan.head_args.push_back(std::move(ct));
  }

  // Compile body literals (original order, before scheduling).
  std::vector<LiteralStep> literals;
  for (size_t bi = 0; bi < clause.body.size(); ++bi) {
    const ast::Atom& atom = clause.body[bi];
    LiteralStep step;
    step.source_index = bi;
    if (atom.kind == ast::Atom::Kind::kPredicate) {
      step.kind = LiteralStep::Kind::kMatch;
      SEQLOG_ASSIGN_OR_RETURN(
          step.pred, catalog->GetOrCreate(atom.predicate, atom.args.size()));
    } else {
      step.kind = atom.kind == ast::Atom::Kind::kEq
                      ? LiteralStep::Kind::kEq
                      : LiteralStep::Kind::kNeq;
    }
    for (const ast::SeqTermPtr& t : atom.args) {
      SEQLOG_ASSIGN_OR_RETURN(std::unique_ptr<CSeqTerm> ct,
                              CompileSeq(t, vars, registry));
      step.args.push_back(std::move(ct));
    }
    literals.push_back(std::move(step));
  }

  // Greedy bound-first scheduling.
  std::set<VarRef> bound;
  std::vector<bool> taken(literals.size(), false);
  for (size_t round = 0; round < literals.size(); ++round) {
    int best_score = 0;
    size_t best = literals.size();
    StepPlan best_plan;
    for (size_t i = 0; i < literals.size(); ++i) {
      if (taken[i]) continue;
      StepPlan sp = literals[i].kind == LiteralStep::Kind::kMatch
                        ? PlanMatch(literals[i], bound)
                        : PlanCompare(literals[i], bound);
      if (best == literals.size() || sp.score < best_score) {
        best = i;
        best_score = sp.score;
        best_plan = std::move(sp);
      }
    }
    SEQLOG_CHECK(best < literals.size());
    taken[best] = true;
    LiteralStep& chosen = literals[best];
    chosen.enum_vars = std::move(best_plan.enum_vars);
    chosen.modes = std::move(best_plan.modes);
    chosen.bind_side = best_plan.bind_side;
    if (!chosen.enum_vars.empty()) plan.domain_sensitive = true;
    // Inverse-suffix args draw candidates from the domain's length
    // buckets, so domain growth alone can create new matches here too.
    for (ArgMode mode : chosen.modes) {
      if (mode == ArgMode::kInverseSuffix) plan.domain_sensitive = true;
    }
    for (const auto& arg : chosen.args) {
      for (VarRef v : arg->vars) bound.insert(v);
    }
    plan.steps.push_back(std::move(chosen));
  }
  for (size_t i = 0; i < plan.steps.size(); ++i) {
    if (plan.steps[i].kind == LiteralStep::Kind::kMatch) {
      plan.match_steps.push_back(i);
    }
  }

  // Head variables not bound by the body are enumerated over the domain.
  std::set<VarRef> head_unbound;
  for (const auto& arg : plan.head_args) {
    for (VarRef v : arg->vars) {
      if (bound.count(v) == 0) head_unbound.insert(v);
    }
  }
  plan.head_enum_vars.assign(head_unbound.begin(), head_unbound.end());
  if (!plan.head_enum_vars.empty()) plan.domain_sensitive = true;

  return plan;
}

std::string DebugString(const ClausePlan& plan, const Catalog& catalog) {
  std::string out =
      StrCat("plan head=", catalog.Name(plan.head_pred),
             plan.constructive ? " [constructive]" : "",
             plan.domain_sensitive ? " [domain-sensitive]" : "", "\n");
  auto var_name = [&](VarRef v) {
    return v.is_index ? plan.idx_var_names[v.id] : plan.seq_var_names[v.id];
  };
  for (const LiteralStep& step : plan.steps) {
    out += "  ";
    switch (step.kind) {
      case LiteralStep::Kind::kMatch:
        out += StrCat("match ", catalog.Name(step.pred), "/",
                      step.args.size());
        for (size_t i = 0; i < step.args.size(); ++i) {
          switch (step.modes[i]) {
            case ArgMode::kCollector:
              out += " collect";
              break;
            case ArgMode::kKey:
              out += " key";
              break;
            case ArgMode::kPostCheck:
              out += " check";
              break;
            case ArgMode::kInverseSuffix:
              out += " inv";
              break;
          }
        }
        break;
      case LiteralStep::Kind::kEq:
        out += StrCat("eq bind_side=", step.bind_side);
        break;
      case LiteralStep::Kind::kNeq:
        out += "neq";
        break;
    }
    if (!step.enum_vars.empty()) {
      out += " enum{";
      for (VarRef v : step.enum_vars) out += StrCat(var_name(v), " ");
      out += "}";
    }
    out += "\n";
  }
  if (!plan.head_enum_vars.empty()) {
    out += "  head enum{";
    for (VarRef v : plan.head_enum_vars) out += StrCat(var_name(v), " ");
    out += "}\n";
  }
  return out;
}

}  // namespace eval
}  // namespace seqlog
