// seqlog: compiled clause plans.
//
// A ClausePlan is a clause whose variables are resolved to dense ids,
// whose terms are compiled (cterm.h), and whose body literals are
// reordered bound-first by a greedy scheduler. For each scheduled literal
// the plan records how every argument is processed:
//
//  * collector  — a plain unbound variable; binds from the matched fact.
//  * key        — evaluable before scanning rows; used for index seeks.
//  * post-check — contains variables bound by collectors of the same
//                 literal; evaluated after binding and compared.
//
// Variables that occur only inside indexed terms (and are not bound
// earlier) cannot be bound by matching; the plan *enumerates* them:
// index variables over [0, lmax+1] and sequence variables over the whole
// extended active domain. This is the operational reading of the paper's
// substitutions "based on the extended active domain" (Definition 1), and
// clauses that need enumeration (or whose head has variables missing from
// the body) are *domain sensitive*: they can derive new facts when the
// domain grows even if no new fact matched, so the semi-naive engine
// re-fires them after domain growth.
#ifndef SEQLOG_EVAL_CLAUSE_PLAN_H_
#define SEQLOG_EVAL_CLAUSE_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "ast/clause.h"
#include "base/result.h"
#include "eval/cterm.h"
#include "eval/function_registry.h"
#include "storage/catalog.h"

namespace seqlog {
namespace eval {

/// How one argument of a scheduled predicate literal is handled.
///
/// kInverseSuffix is the inverse-matching fast path for suffix-style
/// indexed terms B[lo:end] where B is otherwise unbound: instead of
/// enumerating the whole domain for B, the matched fact's value v fixes
/// len(B) = len(v) + lo - 1, so only the domain's length bucket is
/// scanned (and each candidate checked by suffix comparison). This is
/// what makes structural recursion a la Example 1.3/1.6 (recursing on
/// X[2:end]) scale with the domain instead of its cube.
enum class ArgMode { kCollector, kKey, kPostCheck, kInverseSuffix };

/// One scheduled body literal.
struct LiteralStep {
  enum class Kind { kMatch, kEq, kNeq };
  Kind kind = Kind::kMatch;

  // kMatch:
  PredId pred = 0;
  std::vector<std::unique_ptr<CSeqTerm>> args;  // also kEq/kNeq (2 args)
  std::vector<ArgMode> modes;

  /// Variables enumerated over the domain before matching/comparing.
  std::vector<VarRef> enum_vars;

  /// kEq: 0/1 when that side is a plain unbound variable to bind from
  /// the other side's value; -1 for a pure filter.
  int bind_side = -1;

  /// Position of this literal in the original clause body.
  size_t source_index = 0;
};

/// A fully compiled clause.
struct ClausePlan {
  ast::Clause source;  ///< keeps shared term trees alive

  PredId head_pred = 0;
  std::vector<std::unique_ptr<CSeqTerm>> head_args;
  /// Head variables not bound by the body (the unguarded ones);
  /// enumerated over the domain when deriving.
  std::vector<VarRef> head_enum_vars;

  std::vector<LiteralStep> steps;  ///< scheduled body
  std::vector<size_t> match_steps;  ///< indices of kMatch steps

  size_t num_seq_vars = 0;
  size_t num_idx_vars = 0;
  std::vector<std::string> seq_var_names;  ///< id -> name (diagnostics)
  std::vector<std::string> idx_var_names;

  /// True if the clause can derive new facts from domain growth alone.
  bool domain_sensitive = false;

  /// True if the head contains ++ or @T terms (constructive clause).
  bool constructive = false;
};

/// Compiles `clause`. Registers predicates in `catalog` and resolves
/// @T names through `registry` (checking arities).
Result<ClausePlan> CompileClause(const ast::Clause& clause,
                                 Catalog* catalog,
                                 const FunctionRegistry* registry);

/// Human-readable rendering of the schedule (for tests and EXPLAIN-style
/// debugging).
std::string DebugString(const ClausePlan& plan, const Catalog& catalog);

}  // namespace eval
}  // namespace seqlog

#endif  // SEQLOG_EVAL_CLAUSE_PLAN_H_
