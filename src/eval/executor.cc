#include "eval/executor.h"

#include <algorithm>
#include <array>
#include <limits>

#include "base/string_util.h"

namespace seqlog {
namespace eval {

namespace {

/// Recursive backtracking evaluator for one firing of one clause.
class Firer {
 public:
  Firer(const ClausePlan& plan, size_t delta_step, FireContext* ctx,
        uint32_t delta_begin, uint32_t delta_end)
      : plan_(plan),
        delta_step_(delta_step),
        delta_begin_(delta_begin),
        delta_end_(delta_end),
        ctx_(ctx) {
    env_.Resize(plan.num_seq_vars, plan.num_idx_vars);
  }

  Status Run() { return Step(0); }

 private:
  Status CheckDeadline() {
    if ((++ctx_->tick & 0x1FFF) == 0 && ctx_->has_deadline &&
        std::chrono::steady_clock::now() > ctx_->deadline) {
      return Status::ResourceExhausted("evaluation exceeded time budget");
    }
    return Status::Ok();
  }

  Status Step(size_t si) {
    if (si == plan_.steps.size()) {
      return EnumerateHead(0);
    }
    const LiteralStep& step = plan_.steps[si];
    return EnumerateStep(step, si, 0);
  }

  /// Enumerates step.enum_vars[vi..] over the domain, then dispatches.
  Status EnumerateStep(const LiteralStep& step, size_t si, size_t vi) {
    if (vi == step.enum_vars.size()) {
      switch (step.kind) {
        case LiteralStep::Kind::kMatch:
          return MatchRows(step, si);
        case LiteralStep::Kind::kEq:
        case LiteralStep::Kind::kNeq:
          return Compare(step, si);
      }
      return Status::Internal("unknown literal kind");
    }
    VarRef v = step.enum_vars[vi];
    if (v.is_index) {
      int64_t max_int = ctx_->domain->MaxInt();
      for (int64_t value = 0; value <= max_int; ++value) {
        SEQLOG_RETURN_IF_ERROR(CheckDeadline());
        env_.BindIdx(v.id, value);
        SEQLOG_RETURN_IF_ERROR(EnumerateStep(step, si, vi + 1));
      }
      env_.idx_bound[v.id] = 0;
    } else {
      for (SeqId value : ctx_->domain->sequences()) {
        SEQLOG_RETURN_IF_ERROR(CheckDeadline());
        env_.BindSeq(v.id, value);
        SEQLOG_RETURN_IF_ERROR(EnumerateStep(step, si, vi + 1));
      }
      env_.seq_bound[v.id] = 0;
    }
    return Status::Ok();
  }

  Status MatchRows(const LiteralStep& step, size_t si) {
    const Database* source =
        (si == delta_step_) ? ctx_->delta : ctx_->full;
    if (source == nullptr) return Status::Ok();
    const Relation* rel = source->Get(step.pred);
    if (rel == nullptr || rel->empty()) return Status::Ok();

    // Evaluate key arguments; pick the most selective index. Keys live
    // in a local vector: recursion into deeper steps re-enters MatchRows
    // and must not clobber this literal's keys.
    size_t n_args = step.args.size();
    std::vector<SeqId> key_vals(n_args, kEmptySeq);
    Relation::Candidates candidates;
    bool have_candidates = false;
    bool have_key = false;
    for (size_t i = 0; i < n_args; ++i) {
      if (step.modes[i] != ArgMode::kKey) continue;
      SEQLOG_ASSIGN_OR_RETURN(std::optional<SeqId> v,
                              EvalSeqTerm(*step.args[i], env_, ctx_->pool));
      if (!v.has_value()) return Status::Ok();  // theta undefined here
      key_vals[i] = *v;
      have_key = true;
      Relation::Candidates rows = rel->RowsWithValue(i, *v);
      if (rows.empty()) return Status::Ok();  // no matching fact
      if (!have_candidates || rows.size() < candidates.size()) {
        candidates = rows;
        have_candidates = true;
      }
    }

    // Delta sharding (parallel rounds): this literal only sees rows in
    // [begin, end) of the delta relation. Shards cover the relation
    // disjointly across tasks, so every delta row is matched exactly
    // once per round, same as an unsharded firing.
    uint32_t begin = 0;
    uint32_t end = rel->size();
    if (si == delta_step_) {
      begin = delta_begin_ < end ? delta_begin_ : end;
      end = delta_end_ < end ? delta_end_ : end;
    }
    const bool ranged = begin != 0 || end != rel->size();
    if (have_candidates) {
      if (candidates.num_lists == 1 && !ranged) {
        // Single storage shard holds every match (always the case for a
        // first-column probe); its list is already ascending in scan
        // position, so iterate it directly.
        for (RowId id : *candidates.lists[0]) {
          SEQLOG_RETURN_IF_ERROR(CheckDeadline());
          SEQLOG_RETURN_IF_ERROR(
              MatchTuple(step, si, key_vals, rel->RowById(id)));
        }
        return Status::Ok();
      }
      // Matches span storage shards: merge the per-shard lists by scan
      // position. Candidate order must stay the global insertion order —
      // the order the flat pre-shard index produced — because match
      // order decides scratch insertion order and therefore the model's
      // row order; shard-major iteration would leak the SeqId hash (a
      // schedule-dependent value in parallel runs) into it.
      std::array<size_t, Relation::kNumShards> cursor{};
      std::array<uint32_t, Relation::kNumShards> head_pos;
      for (uint32_t li = 0; li < candidates.num_lists; ++li) {
        head_pos[li] = rel->PositionOf((*candidates.lists[li])[0]);
      }
      for (size_t remaining = candidates.total; remaining > 0;
           --remaining) {
        uint32_t best_pos = UINT32_MAX;
        uint32_t best_li = 0;
        for (uint32_t li = 0; li < candidates.num_lists; ++li) {
          if (cursor[li] < candidates.lists[li]->size() &&
              head_pos[li] < best_pos) {
            best_pos = head_pos[li];
            best_li = li;
          }
        }
        const std::vector<RowId>& list = *candidates.lists[best_li];
        RowId id = list[cursor[best_li]];
        if (++cursor[best_li] < list.size()) {
          head_pos[best_li] = rel->PositionOf(list[cursor[best_li]]);
        }
        if (ranged && (best_pos < begin || best_pos >= end)) continue;
        SEQLOG_RETURN_IF_ERROR(CheckDeadline());
        SEQLOG_RETURN_IF_ERROR(
            MatchTuple(step, si, key_vals, rel->RowById(id)));
      }
      return Status::Ok();
    }
    if (have_key) return Status::Ok();
    for (uint32_t row = begin; row < end; ++row) {
      SEQLOG_RETURN_IF_ERROR(CheckDeadline());
      SEQLOG_RETURN_IF_ERROR(
          MatchTuple(step, si, key_vals, rel->RowAt(row)));
    }
    return Status::Ok();
  }

  Status MatchTuple(const LiteralStep& step, size_t si,
                    const std::vector<SeqId>& key_vals, TupleView tuple) {
    return MatchArg(step, si, key_vals, tuple, 0);
  }

  /// Processes argument `ai` of a matched fact, recursing to the next
  /// argument (and the next literal after the last one). Recursion is
  /// needed because an inverse-suffix argument can bind its base
  /// variable to several domain candidates.
  Status MatchArg(const LiteralStep& step, size_t si,
                  const std::vector<SeqId>& key_vals, TupleView tuple,
                  size_t ai) {
    if (ai == step.args.size()) return Step(si + 1);
    const CSeqTerm& arg = *step.args[ai];
    switch (step.modes[ai]) {
      case ArgMode::kKey:
        if (tuple[ai] != key_vals[ai]) return Status::Ok();
        return MatchArg(step, si, key_vals, tuple, ai + 1);
      case ArgMode::kCollector: {
        uint32_t var = arg.var;
        if (env_.seq_bound[var]) {
          // Same variable collected by an earlier argument of this
          // literal: equality check.
          if (env_.seq_vals[var] != tuple[ai]) return Status::Ok();
          return MatchArg(step, si, key_vals, tuple, ai + 1);
        }
        env_.BindSeq(var, tuple[ai]);
        Status status = MatchArg(step, si, key_vals, tuple, ai + 1);
        env_.seq_bound[var] = 0;
        return status;
      }
      case ArgMode::kPostCheck: {
        SEQLOG_ASSIGN_OR_RETURN(std::optional<SeqId> v,
                                EvalSeqTerm(arg, env_, ctx_->pool));
        if (!v.has_value() || *v != tuple[ai]) return Status::Ok();
        return MatchArg(step, si, key_vals, tuple, ai + 1);
      }
      case ArgMode::kInverseSuffix:
        return SolveSuffix(step, si, key_vals, tuple, ai);
    }
    return Status::Internal("unknown arg mode");
  }

  /// Inverse matching of B[lo:end] = tuple[ai]: every candidate B has
  /// length len(v) + lo - 1, so scan only that length bucket of the
  /// domain and compare suffixes.
  Status SolveSuffix(const LiteralStep& step, size_t si,
                     const std::vector<SeqId>& key_vals, TupleView tuple,
                     size_t ai) {
    const CSeqTerm& arg = *step.args[ai];
    // `lo` is end-free (planner invariant), so base_len is irrelevant.
    int64_t lo = EvalIndexTerm(*arg.lo, env_, /*base_len=*/0);
    if (lo < 1) return Status::Ok();  // undefined for every B
    SeqView v = ctx_->pool->View(tuple[ai]);
    size_t target_len = v.size() + static_cast<size_t>(lo) - 1;
    uint32_t var = arg.var;
    for (SeqId candidate : ctx_->domain->WithLength(target_len)) {
      SEQLOG_RETURN_IF_ERROR(CheckDeadline());
      SeqView c = ctx_->pool->View(candidate);
      if (!std::equal(v.begin(), v.end(),
                      c.begin() + static_cast<size_t>(lo) - 1)) {
        continue;
      }
      env_.BindSeq(var, candidate);
      Status status = MatchArg(step, si, key_vals, tuple, ai + 1);
      env_.seq_bound[var] = 0;
      if (!status.ok()) return status;
    }
    return Status::Ok();
  }

  Status Compare(const LiteralStep& step, size_t si) {
    const CSeqTerm& lhs = *step.args[0];
    const CSeqTerm& rhs = *step.args[1];
    if (step.bind_side >= 0) {
      const CSeqTerm& binder = step.bind_side == 0 ? lhs : rhs;
      const CSeqTerm& value_term = step.bind_side == 0 ? rhs : lhs;
      SEQLOG_ASSIGN_OR_RETURN(std::optional<SeqId> v,
                              EvalSeqTerm(value_term, env_, ctx_->pool));
      if (!v.has_value()) return Status::Ok();
      // Substitutions range over the extended active domain
      // (Definition 1): only bind values that are in it.
      if (!ctx_->domain->Contains(*v)) return Status::Ok();
      if (env_.seq_bound[binder.var]) {
        // Bound by enumeration order quirks: compare instead.
        if (env_.seq_vals[binder.var] != *v) return Status::Ok();
        return Step(si + 1);
      }
      env_.BindSeq(binder.var, *v);
      Status status = Step(si + 1);
      env_.seq_bound[binder.var] = 0;
      return status;
    }
    SEQLOG_ASSIGN_OR_RETURN(std::optional<SeqId> l,
                            EvalSeqTerm(lhs, env_, ctx_->pool));
    if (!l.has_value()) return Status::Ok();
    SEQLOG_ASSIGN_OR_RETURN(std::optional<SeqId> r,
                            EvalSeqTerm(rhs, env_, ctx_->pool));
    if (!r.has_value()) return Status::Ok();
    bool pass = step.kind == LiteralStep::Kind::kEq ? (*l == *r)
                                                    : (*l != *r);
    if (!pass) return Status::Ok();
    return Step(si + 1);
  }

  /// Enumerates unbound head variables, then emits the head fact.
  Status EnumerateHead(size_t vi) {
    if (vi == plan_.head_enum_vars.size()) {
      return EmitHead();
    }
    VarRef v = plan_.head_enum_vars[vi];
    if (v.is_index) {
      int64_t max_int = ctx_->domain->MaxInt();
      for (int64_t value = 0; value <= max_int; ++value) {
        SEQLOG_RETURN_IF_ERROR(CheckDeadline());
        env_.BindIdx(v.id, value);
        SEQLOG_RETURN_IF_ERROR(EnumerateHead(vi + 1));
      }
      env_.idx_bound[v.id] = 0;
    } else {
      for (SeqId value : ctx_->domain->sequences()) {
        SEQLOG_RETURN_IF_ERROR(CheckDeadline());
        env_.BindSeq(v.id, value);
        SEQLOG_RETURN_IF_ERROR(EnumerateHead(vi + 1));
      }
      env_.seq_bound[v.id] = 0;
    }
    return Status::Ok();
  }

  Status EmitHead() {
    ++ctx_->stats->derivations;
    tuple_.clear();
    for (const auto& arg : plan_.head_args) {
      SEQLOG_ASSIGN_OR_RETURN(std::optional<SeqId> v,
                              EvalSeqTerm(*arg, env_, ctx_->pool));
      if (!v.has_value()) return Status::Ok();  // theta(head) undefined
      if (ctx_->pool->Length(*v) > ctx_->limits->max_sequence_length) {
        return Status::ResourceExhausted(
            StrCat("derived sequence longer than ",
                   ctx_->limits->max_sequence_length, " symbols"));
      }
      tuple_.push_back(*v);
    }
    if (ctx_->out->Insert(plan_.head_pred, tuple_)) {
      ++ctx_->out_new;
      // Serial rounds share one scratch database, so out_new is the
      // round's exact new-fact count. Parallel tasks each have a private
      // scratch; the shared round counter keeps the budget global (it
      // may count a fact once per task that derives it — conservative,
      // and exact whenever tasks derive disjoint facts).
      size_t round_total =
          ctx_->round_new != nullptr
              ? ctx_->round_new->fetch_add(1, std::memory_order_relaxed) + 1
              : ctx_->out_new;
      if (ctx_->existing_facts + round_total > ctx_->limits->max_facts) {
        return Status::ResourceExhausted(
            StrCat("interpretation exceeded ", ctx_->limits->max_facts,
                   " facts"));
      }
    }
    return Status::Ok();
  }

  const ClausePlan& plan_;
  size_t delta_step_;
  uint32_t delta_begin_;
  uint32_t delta_end_;
  FireContext* ctx_;
  Env env_;
  std::vector<SeqId> tuple_;
};

}  // namespace

Status FireClause(const ClausePlan& plan, size_t delta_step,
                  FireContext* ctx, uint32_t delta_begin,
                  uint32_t delta_end) {
  Firer firer(plan, delta_step, ctx, delta_begin, delta_end);
  return firer.Run();
}

}  // namespace eval
}  // namespace seqlog
