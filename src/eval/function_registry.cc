#include "eval/function_registry.h"

#include "base/string_util.h"

namespace seqlog {
namespace eval {

void FunctionRegistry::Register(
    std::shared_ptr<const SequenceFunction> fn) {
  SEQLOG_CHECK(fn != nullptr);
  std::string name = fn->name();
  fns_[name] = std::move(fn);
}

Result<const SequenceFunction*> FunctionRegistry::Find(
    const std::string& name) const {
  auto it = fns_.find(name);
  if (it == fns_.end()) {
    return Status::NotFound(
        StrCat("no transducer registered under name '", name, "'"));
  }
  return it->second.get();
}

std::map<std::string, int> FunctionRegistry::Orders() const {
  std::map<std::string, int> out;
  for (const auto& [name, fn] : fns_) out[name] = fn->Order();
  return out;
}

void FunctionRegistry::CollectTransducerStats(TransducerStats* out) const {
  for (const auto& [name, fn] : fns_) fn->CollectStats(out);
}

}  // namespace eval
}  // namespace seqlog
