// seqlog: registry of the sequence functions backing @T(...) terms —
// interpreted machines, compiled DetTransducers, and (compiled or
// interpreted) transducer networks alike.
#ifndef SEQLOG_EVAL_FUNCTION_REGISTRY_H_
#define SEQLOG_EVAL_FUNCTION_REGISTRY_H_

#include <map>
#include <memory>
#include <string>

#include "base/result.h"
#include "sequence/seq_function.h"

namespace seqlog {
namespace eval {

/// Name -> SequenceFunction map used when compiling transducer terms.
class FunctionRegistry {
 public:
  FunctionRegistry() = default;

  /// Registers `fn` under fn->name(). Re-registering a name replaces the
  /// previous binding (convenient for tests).
  void Register(std::shared_ptr<const SequenceFunction> fn);

  /// Looks up a function by name.
  Result<const SequenceFunction*> Find(const std::string& name) const;

  /// Orders of all registered functions, keyed by name (for
  /// analysis::ProgramOrder).
  std::map<std::string, int> Orders() const;

  /// Merges every registered function's compilation/run counters into
  /// `out` (SequenceFunction::CollectStats); Engine::Evaluate and
  /// DrainIngest use this to fill EvalStats::transducer.
  void CollectTransducerStats(TransducerStats* out) const;

 private:
  std::map<std::string, std::shared_ptr<const SequenceFunction>> fns_;
};

}  // namespace eval
}  // namespace seqlog

#endif  // SEQLOG_EVAL_FUNCTION_REGISTRY_H_
