// seqlog: clause firing.
//
// ClauseFirer evaluates one compiled clause against an interpretation,
// deriving head facts into an output database. It implements one clause's
// contribution to the T-operator of Definition 4: find every substitution
// theta based on the extended active domain with theta(body) contained in
// the interpretation, and add theta(head) when defined.
//
// For semi-naive evaluation a firing can restrict one predicate literal
// to the delta relation (facts new in the previous iteration).
#ifndef SEQLOG_EVAL_EXECUTOR_H_
#define SEQLOG_EVAL_EXECUTOR_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <vector>

#include "base/status.h"
#include "eval/clause_plan.h"
#include "sequence/domain.h"
#include "sequence/seq_function.h"
#include "storage/database.h"

namespace seqlog {
namespace eval {

/// Evaluation budgets (Theorem 2 makes finiteness undecidable, so every
/// run is budgeted; exceeding any budget yields kResourceExhausted with
/// partial results intact).
struct EvalLimits {
  size_t max_iterations = 100000;
  size_t max_facts = 5'000'000;
  size_t max_domain_sequences = 5'000'000;
  size_t max_sequence_length = 1'000'000;
  int64_t max_millis = 0;  ///< 0 = no deadline.
};

/// Counters reported by an evaluation. All counters are aggregates that
/// do not depend on clause firing order, so they are identical at every
/// EvalOptions::num_threads.
struct EvalStats {
  size_t iterations = 0;
  size_t facts = 0;             ///< atoms in the computed interpretation
  size_t domain_sequences = 0;  ///< extended active domain size (Def. 11)
  size_t derivations = 0;       ///< head emissions attempted
  size_t strata = 0;            ///< stratified strategy only
  double millis = 0;
  /// Wall-clock spent firing clauses — the phase that parallelises.
  /// Parallel runs also pre-intern the subsequence closures of derived
  /// sequences inside this phase, so on constructive workloads most of
  /// what used to be serial closure time moves here.
  /// fire_millis/millis bounds the achievable speedup (Amdahl).
  double fire_millis = 0;
  /// Wall-clock spent growing the extended active domain, split by
  /// phase. Together with fire_millis they account for nearly all of
  /// `millis`, so the Amdahl split in bench output is measured, not
  /// inferred. domain_load_millis covers the EDB/seed load closure at
  /// run start; domain_merge_millis covers the round merge barriers —
  /// the single-writer section the sharded-merge roadmap item targets,
  /// so the two must be measurable separately.
  double domain_load_millis = 0;
  double domain_merge_millis = 0;
  /// Wall-clock of the row-merge phase of the round barriers (dedup
  /// probes, row appends, index maintenance) — the part
  /// Database::MergeFromAll fans out one writer per relation shard.
  /// domain_merge_millis keeps the rest of the barrier: the serial
  /// commit/callback replay and the domain closure inserts. The two are
  /// split so BENCH_pr*.json can show the sharded merge share falling
  /// while the closure share stays put.
  double relation_merge_millis = 0;
  /// The combined domain time (the pre-split counter's value).
  double domain_millis() const {
    return domain_load_millis + domain_merge_millis;
  }
  /// Live-ingest counters (Evaluator::Resaturate and the src/ivm/
  /// pipeline built on it). Zero on cold Evaluate runs.
  /// Fixpoint rounds run by the incremental re-saturation.
  size_t resaturate_rounds = 0;
  /// Wall-clock of the incremental re-saturation (seed closure included).
  double resaturate_millis = 0;
  /// Batch facts genuinely new to the model (duplicates are dropped at
  /// the seed, so this is the round-0 delta size).
  size_t ingested_facts = 0;
  /// True when a drain could not re-saturate incrementally (retraction
  /// via ClearFacts, or ingest-queue overflow) and fell back to a cold
  /// recompute of the whole model instead.
  bool cold_fallback = false;
  /// Per-iteration (facts, domain size) when growth tracking is on; used
  /// by the Example 1.5 / 1.6 benchmarks to plot divergence.
  std::vector<std::pair<size_t, size_t>> growth;
  /// Compiled-transducer counters aggregated over the engine's function
  /// registry after the run (Engine::Evaluate / DrainIngest). The
  /// machine/state/fusion fields describe registered machines (stable
  /// across runs); the *_node_runs counters are cumulative over the
  /// engine's lifetime — unlike every counter above, they do grow with
  /// each evaluation and are not part of the thread-width invariant.
  TransducerStats transducer;
};

/// Mutable state for firings within one iteration. Serial rounds share
/// one context across all clause firings; parallel rounds give each task
/// a private context (with a private `out` scratch database and private
/// `stats`) so firing never takes a lock — only `round_new`, when set,
/// is shared between tasks.
struct FireContext {
  SequencePool* pool = nullptr;
  const ExtendedDomain* domain = nullptr;
  const Database* full = nullptr;
  const Database* delta = nullptr;  ///< may be null
  Database* out = nullptr;          ///< derived facts accumulate here
  const EvalLimits* limits = nullptr;
  EvalStats* stats = nullptr;
  std::chrono::steady_clock::time_point deadline;
  bool has_deadline = false;
  size_t existing_facts = 0;  ///< facts in `full` (for max_facts checks)
  size_t out_new = 0;         ///< new facts inserted into `out`
  size_t tick = 0;            ///< deadline polling counter
  /// Parallel rounds: new-fact count across all tasks of the round, so
  /// the max_facts budget is enforced against the combined output rather
  /// than per task. Null on the serial path (out_new alone is exact
  /// there, because every firing shares one scratch database).
  std::atomic<size_t>* round_new = nullptr;
};

/// Fires `plan` once. `delta_step` is the index into plan.steps of the
/// single predicate literal to source from ctx->delta, or SIZE_MAX to
/// source every literal from ctx->full.
///
/// `delta_begin`/`delta_end` restrict the delta literal to rows
/// [delta_begin, min(delta_end, rows)) of its delta relation — the
/// parallel evaluator shards one large delta across workers into
/// contiguous row ranges that cover it disjointly. The defaults select
/// every row; the range never applies to full (kNoDelta) firings.
Status FireClause(const ClausePlan& plan, size_t delta_step,
                  FireContext* ctx, uint32_t delta_begin = 0,
                  uint32_t delta_end = UINT32_MAX);

}  // namespace eval
}  // namespace seqlog

#endif  // SEQLOG_EVAL_EXECUTOR_H_
