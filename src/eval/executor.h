// seqlog: clause firing.
//
// ClauseFirer evaluates one compiled clause against an interpretation,
// deriving head facts into an output database. It implements one clause's
// contribution to the T-operator of Definition 4: find every substitution
// theta based on the extended active domain with theta(body) contained in
// the interpretation, and add theta(head) when defined.
//
// For semi-naive evaluation a firing can restrict one predicate literal
// to the delta relation (facts new in the previous iteration).
#ifndef SEQLOG_EVAL_EXECUTOR_H_
#define SEQLOG_EVAL_EXECUTOR_H_

#include <chrono>
#include <cstdint>
#include <vector>

#include "base/status.h"
#include "eval/clause_plan.h"
#include "sequence/domain.h"
#include "storage/database.h"

namespace seqlog {
namespace eval {

/// Evaluation budgets (Theorem 2 makes finiteness undecidable, so every
/// run is budgeted; exceeding any budget yields kResourceExhausted with
/// partial results intact).
struct EvalLimits {
  size_t max_iterations = 100000;
  size_t max_facts = 5'000'000;
  size_t max_domain_sequences = 5'000'000;
  size_t max_sequence_length = 1'000'000;
  int64_t max_millis = 0;  ///< 0 = no deadline.
};

/// Counters reported by an evaluation.
struct EvalStats {
  size_t iterations = 0;
  size_t facts = 0;             ///< atoms in the computed interpretation
  size_t domain_sequences = 0;  ///< extended active domain size (Def. 11)
  size_t derivations = 0;       ///< head emissions attempted
  size_t strata = 0;            ///< stratified strategy only
  double millis = 0;
  /// Per-iteration (facts, domain size) when growth tracking is on; used
  /// by the Example 1.5 / 1.6 benchmarks to plot divergence.
  std::vector<std::pair<size_t, size_t>> growth;
};

/// Shared mutable state for all firings within one iteration.
struct FireContext {
  SequencePool* pool = nullptr;
  const ExtendedDomain* domain = nullptr;
  const Database* full = nullptr;
  const Database* delta = nullptr;  ///< may be null
  Database* out = nullptr;          ///< derived facts accumulate here
  const EvalLimits* limits = nullptr;
  EvalStats* stats = nullptr;
  std::chrono::steady_clock::time_point deadline;
  bool has_deadline = false;
  size_t existing_facts = 0;  ///< facts in `full` (for max_facts checks)
  size_t out_new = 0;         ///< new facts inserted into `out`
  size_t tick = 0;            ///< deadline polling counter
};

/// Fires `plan` once. `delta_step` is the index into plan.steps of the
/// single predicate literal to source from ctx->delta, or SIZE_MAX to
/// source every literal from ctx->full.
Status FireClause(const ClausePlan& plan, size_t delta_step,
                  FireContext* ctx);

}  // namespace eval
}  // namespace seqlog

#endif  // SEQLOG_EVAL_EXECUTOR_H_
