// seqlog: compiled terms and substitution environments.
//
// Clause compilation (clause_plan.h) resolves variable names to dense
// per-clause ids and AST terms to these compiled trees, so that rule
// firing does no string lookups. Term evaluation implements the partial
// substitution semantics of Section 3.2: indexed terms are undefined
// outside 1 <= n1 <= n2+1 <= len+1, `end` is the length of the enclosing
// base, and s[n:n-1] is the empty sequence.
#ifndef SEQLOG_EVAL_CTERM_H_
#define SEQLOG_EVAL_CTERM_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "base/result.h"
#include "sequence/seq_function.h"
#include "sequence/sequence_pool.h"

namespace seqlog {
namespace eval {

/// Reference to a clause-local variable.
struct VarRef {
  bool is_index;  ///< index variable vs sequence variable
  uint32_t id;    ///< dense id within its class

  bool operator==(const VarRef& o) const {
    return is_index == o.is_index && id == o.id;
  }
  bool operator<(const VarRef& o) const {
    return is_index != o.is_index ? is_index < o.is_index : id < o.id;
  }
};

/// A substitution restricted to one clause's variables.
struct Env {
  std::vector<SeqId> seq_vals;
  std::vector<char> seq_bound;
  std::vector<int64_t> idx_vals;
  std::vector<char> idx_bound;

  void Resize(size_t num_seq, size_t num_idx) {
    seq_vals.assign(num_seq, kEmptySeq);
    seq_bound.assign(num_seq, 0);
    idx_vals.assign(num_idx, 0);
    idx_bound.assign(num_idx, 0);
  }
  bool IsBound(VarRef v) const {
    return v.is_index ? idx_bound[v.id] != 0 : seq_bound[v.id] != 0;
  }
  void BindSeq(uint32_t id, SeqId val) {
    seq_vals[id] = val;
    seq_bound[id] = 1;
  }
  void BindIdx(uint32_t id, int64_t val) {
    idx_vals[id] = val;
    idx_bound[id] = 1;
  }
  void Unbind(VarRef v) {
    if (v.is_index) {
      idx_bound[v.id] = 0;
    } else {
      seq_bound[v.id] = 0;
    }
  }
};

/// Compiled index term.
struct CIndexTerm {
  enum class Kind { kLiteral, kVariable, kEnd, kAdd, kSub };
  Kind kind;
  int64_t literal = 0;
  uint32_t var = 0;
  std::unique_ptr<CIndexTerm> lhs;
  std::unique_ptr<CIndexTerm> rhs;
};

/// Compiled sequence term.
struct CSeqTerm {
  enum class Kind { kConstant, kVariable, kIndexed, kConcat, kFunction };
  Kind kind;
  SeqId constant = kEmptySeq;  ///< kConstant / kIndexed constant base.
  uint32_t var = 0;            ///< kVariable / kIndexed variable base.
  bool base_is_var = false;    ///< kIndexed base discriminator.
  std::unique_ptr<CIndexTerm> lo;
  std::unique_ptr<CIndexTerm> hi;
  std::unique_ptr<CSeqTerm> left;
  std::unique_ptr<CSeqTerm> right;
  const SequenceFunction* fn = nullptr;  ///< kFunction.
  std::vector<std::unique_ptr<CSeqTerm>> args;

  /// All variables occurring in the term (deduplicated).
  std::vector<VarRef> vars;

  /// True if `kind == kVariable` (a "plain" argument that can collect a
  /// binding directly from a fact).
  bool IsPlainVar() const { return kind == Kind::kVariable; }
};

/// Evaluates an index term. All its variables must be bound. `base_len`
/// interprets `end`. Never undefined (arithmetic is total on int64).
int64_t EvalIndexTerm(const CIndexTerm& term, const Env& env,
                      int64_t base_len);

/// Evaluates a sequence term under `env`; all variables must be bound
/// (callers guarantee this via planning). Returns nullopt when the term
/// is undefined at the substitution (index out of range, or a partial
/// machine is stuck). Non-OK status aborts evaluation (internal errors,
/// exhausted machine output budgets).
Result<std::optional<SeqId>> EvalSeqTerm(const CSeqTerm& term,
                                         const Env& env,
                                         SequencePool* pool);

/// True once every variable of `term` is bound in `env`.
bool AllVarsBound(const CSeqTerm& term, const Env& env);

}  // namespace eval
}  // namespace seqlog

#endif  // SEQLOG_EVAL_CTERM_H_
