#include "sequence/sequence_pool.h"

#include <algorithm>
#include <mutex>

namespace seqlog {

SequencePool::SequencePool() {
  // Intern the empty sequence so kEmptySeq is valid from the start.
  SeqId empty = Intern(SeqView{});
  SEQLOG_CHECK(empty == kEmptySeq);
}

SequencePool::~SequencePool() {
  for (auto& leaf_slot : root_) {
    Leaf* leaf = leaf_slot.load(std::memory_order_relaxed);
    if (leaf == nullptr) continue;
    for (auto& chunk_slot : leaf->chunks) {
      delete chunk_slot.load(std::memory_order_relaxed);
    }
    delete leaf;
  }
}

SeqId SequencePool::InternLocked(SeqView symbols) {
  auto it = ids_.find(symbols);
  if (it != ids_.end()) return it->second;
  size_t next = size_.load(std::memory_order_relaxed);
  SeqId id = static_cast<SeqId>(next);
  SEQLOG_CHECK(id != kInvalidSeq) << "sequence pool overflow";
  // Grow the directory if this id starts a new chunk. Writers are
  // serialized by mu_; the release store of size_ below (plus the mutex
  // hand-off between writers) publishes the new pointers to readers.
  auto& leaf_slot = root_[id >> (kLeafBits + kChunkBits)];
  Leaf* leaf = leaf_slot.load(std::memory_order_relaxed);
  if (leaf == nullptr) {
    leaf = new Leaf();
    leaf_slot.store(leaf, std::memory_order_release);
  }
  auto& chunk_slot = leaf->chunks[(id >> kChunkBits) & (kLeafSize - 1)];
  Chunk* chunk = chunk_slot.load(std::memory_order_relaxed);
  if (chunk == nullptr) {
    chunk = new Chunk();
    chunk_slot.store(chunk, std::memory_order_release);
  }
  std::vector<Symbol>& entry = chunk->seqs[id & (kChunkSize - 1)];
  entry.assign(symbols.begin(), symbols.end());
  ids_.emplace(SeqView(entry), id);
  // Publish: everything above is sequenced before this store, so any
  // reader that observes size_ > id sees the complete entry.
  size_.store(next + 1, std::memory_order_release);
  return id;
}

SeqId SequencePool::Intern(SeqView symbols) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = ids_.find(symbols);
    if (it != ids_.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  return InternLocked(symbols);
}

SeqId SequencePool::Find(SeqView symbols) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = ids_.find(symbols);
  return it == ids_.end() ? kInvalidSeq : it->second;
}

SeqId SequencePool::Concat(SeqId a, SeqId b) {
  if (a == kEmptySeq) return b;
  if (b == kEmptySeq) return a;
  SeqView va = View(a);
  SeqView vb = View(b);
  std::vector<Symbol> joined;
  joined.reserve(va.size() + vb.size());
  joined.insert(joined.end(), va.begin(), va.end());
  joined.insert(joined.end(), vb.begin(), vb.end());
  return Intern(joined);
}

SeqId SequencePool::Subsequence(SeqId id, int64_t from, int64_t to) {
  SeqView v = View(id);
  SEQLOG_CHECK(from >= 1 && from <= to + 1 &&
               to + 1 <= static_cast<int64_t>(v.size()) + 1)
      << "undefined subsequence [" << from << ":" << to << "] of length "
      << v.size();
  if (from == to + 1) return kEmptySeq;
  return Intern(v.subspan(static_cast<size_t>(from - 1),
                          static_cast<size_t>(to - from + 1)));
}

SeqId SequencePool::Singleton(Symbol sym) {
  return Intern(SeqView(&sym, 1));
}

SeqId SequencePool::FromChars(std::string_view text, SymbolTable* symbols) {
  std::vector<Symbol> syms;
  syms.reserve(text.size());
  for (char c : text) {
    syms.push_back(symbols->Intern(std::string_view(&c, 1)));
  }
  return Intern(syms);
}

std::string SequencePool::Render(SeqId id, const SymbolTable& symbols) const {
  std::string out;
  for (Symbol s : View(id)) {
    std::string_view name = symbols.Name(s);
    if (name.size() == 1) {
      out += name;
    } else {
      out += '<';
      out += name;
      out += '>';
    }
  }
  return out;
}

}  // namespace seqlog
