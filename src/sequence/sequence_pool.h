// seqlog: interned sequences.
//
// All sequences that exist during query evaluation — database sequences,
// their contiguous subsequences, and sequences created by concatenation or
// transducer runs — are interned in a SequencePool. A sequence value is a
// dense SeqId; two equal symbol strings always share one id, so relations
// store integer tuples and joins compare integers.
#ifndef SEQLOG_SEQUENCE_SEQUENCE_POOL_H_
#define SEQLOG_SEQUENCE_SEQUENCE_POOL_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <shared_mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/hash.h"
#include "base/logging.h"
#include "sequence/symbol_table.h"

namespace seqlog {

/// Id of an interned sequence. Dense, starting at 0. Id 0 is always the
/// empty sequence (the paper's epsilon).
using SeqId = uint32_t;

/// The empty sequence is interned first, so its id is stable.
inline constexpr SeqId kEmptySeq = 0;

/// A read-only view of a sequence's symbols.
using SeqView = std::span<const Symbol>;

/// Interning pool for symbol strings.
///
/// Storage is a three-level chunked directory (never-moving fixed-size
/// chunks of per-sequence buffers), so views handed out stay valid for
/// the pool's lifetime and id-indexed reads need no lock.
///
/// Thread-safety splits by access path (the full contract, including the
/// memory-ordering argument, is in docs/CONCURRENCY.md):
///
///  * **Id-indexed reads are lock-free.** `View`, `Length`, `Render` and
///    `size` only gate on the atomic `size_`: an id below the acquire-
///    loaded size names a fully published entry. This is the evaluator's
///    hottest read path (term evaluation, inverse-suffix matching,
///    rendering), hit from every firing thread of a parallel round.
///  * **Content lookups share a lock.** `Find` and the already-interned
///    fast path of `Intern` take `mu_` shared (the id map cannot be read
///    lock-free while a writer rehashes it); interning a *new* sequence
///    takes `mu_` exclusively and publishes the entry by storing the new
///    size with release ordering.
///
/// Many threads may intern and resolve concurrently: parallel evaluation
/// rounds pre-intern the subsequence spans they derive while snapshot
/// readers render results. One pool per Engine.
class SequencePool {
 public:
  SequencePool();
  ~SequencePool();
  SequencePool(const SequencePool&) = delete;
  SequencePool& operator=(const SequencePool&) = delete;

  /// Interns the symbol string `symbols`, returning its id.
  SeqId Intern(SeqView symbols);

  /// Returns the id of `symbols` if interned, or kInvalidSeq otherwise.
  static constexpr SeqId kInvalidSeq = 0xFFFFFFFFu;
  SeqId Find(SeqView symbols) const;

  /// Returns the symbols of sequence `id`. Lock-free; the view stays
  /// valid for the pool's lifetime.
  SeqView View(SeqId id) const {
    size_t published = size_.load(std::memory_order_acquire);
    SEQLOG_CHECK(id < published) << "bad sequence id " << id;
    return *Slot(id);
  }

  /// len(sigma): the number of symbols in sequence `id`. Lock-free.
  size_t Length(SeqId id) const { return View(id).size(); }

  /// Interns the concatenation sigma1 sigma2 (the paper's s1 . s2).
  SeqId Concat(SeqId a, SeqId b);

  /// Interns the contiguous subsequence of `id` from 1-based position
  /// `from` to `to` inclusive. Precondition (checked): the range is
  /// defined per Section 3.2, i.e. 1 <= from <= to+1 <= Length(id)+1.
  /// from == to+1 yields the empty sequence.
  SeqId Subsequence(SeqId id, int64_t from, int64_t to);

  /// Interns a single-symbol sequence.
  SeqId Singleton(Symbol sym);

  /// Interns the sequence whose symbols are the characters of `text`,
  /// interning each character as a one-character symbol name.
  SeqId FromChars(std::string_view text, SymbolTable* symbols);

  /// Renders sequence `id` using `symbols` names. One-character symbol
  /// names are concatenated bare; longer names are wrapped in '<...>'.
  /// The empty sequence renders as "" (callers add quoting as needed).
  std::string Render(SeqId id, const SymbolTable& symbols) const;

  /// Number of interned sequences. Lock-free; a reader may observe a
  /// size that is stale by in-flight interns, never a torn one.
  size_t size() const { return size_.load(std::memory_order_acquire); }

 private:
  // Chunk geometry: 2^11 leaves x 2^11 chunks x 2^10 entries covers the
  // full 32-bit SeqId space; the root directory is 16 KiB inline, leaves
  // and chunks are allocated on demand by the (serialized) writers.
  static constexpr size_t kChunkBits = 10;
  static constexpr size_t kChunkSize = size_t{1} << kChunkBits;
  static constexpr size_t kLeafBits = 11;
  static constexpr size_t kLeafSize = size_t{1} << kLeafBits;
  static constexpr size_t kRootSize =
      (size_t{1} << 32) / (kChunkSize * kLeafSize);

  /// One chunk of interned sequences. The vector objects never move once
  /// their chunk is allocated; the symbol buffers they own never move at
  /// all, so SeqViews handed out survive any amount of growth.
  struct Chunk {
    std::array<std::vector<Symbol>, kChunkSize> seqs;
  };
  struct Leaf {
    std::array<std::atomic<Chunk*>, kLeafSize> chunks{};
  };

  struct ViewHash {
    size_t operator()(SeqView v) const { return HashSpan(v); }
  };
  struct ViewEq {
    bool operator()(SeqView a, SeqView b) const {
      return a.size() == b.size() &&
             std::equal(a.begin(), a.end(), b.begin());
    }
  };

  /// Storage slot of `id`. Callers must have established that the entry
  /// is published (id < an acquire-load of size_, or holding mu_).
  const std::vector<Symbol>* Slot(SeqId id) const {
    Leaf* leaf = root_[id >> (kLeafBits + kChunkBits)].load(
        std::memory_order_acquire);
    Chunk* chunk =
        leaf->chunks[(id >> kChunkBits) & (kLeafSize - 1)].load(
            std::memory_order_acquire);
    return &chunk->seqs[id & (kChunkSize - 1)];
  }

  SeqId InternLocked(SeqView symbols);  ///< requires unique lock on mu_

  /// Publication gate for the chunked storage: entry `id` is fully
  /// constructed (and its directory path stored) before the writer
  /// release-stores `id + 1`; a reader that acquire-loads a size above
  /// `id` therefore sees the complete entry. Writers are serialized by
  /// mu_, so the stored values are strictly increasing.
  std::atomic<size_t> size_{0};
  std::array<std::atomic<Leaf*>, kRootSize> root_{};

  /// Guards ids_ (and serializes writers). Id-indexed reads never take it.
  mutable std::shared_mutex mu_;
  std::unordered_map<SeqView, SeqId, ViewHash, ViewEq> ids_;
};

}  // namespace seqlog

#endif  // SEQLOG_SEQUENCE_SEQUENCE_POOL_H_
