// seqlog: interned sequences.
//
// All sequences that exist during query evaluation — database sequences,
// their contiguous subsequences, and sequences created by concatenation or
// transducer runs — are interned in a SequencePool. A sequence value is a
// dense SeqId; two equal symbol strings always share one id, so relations
// store integer tuples and joins compare integers.
#ifndef SEQLOG_SEQUENCE_SEQUENCE_POOL_H_
#define SEQLOG_SEQUENCE_SEQUENCE_POOL_H_

#include <cstdint>
#include <shared_mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/hash.h"
#include "base/logging.h"
#include "sequence/symbol_table.h"

namespace seqlog {

/// Id of an interned sequence. Dense, starting at 0. Id 0 is always the
/// empty sequence (the paper's epsilon).
using SeqId = uint32_t;

/// The empty sequence is interned first, so its id is stable.
inline constexpr SeqId kEmptySeq = 0;

/// A read-only view of a sequence's symbols.
using SeqView = std::span<const Symbol>;

/// Interning pool for symbol strings.
///
/// Storage uses a vector of vectors; the inner heap buffers never move
/// once inserted, so views handed out stay valid for the pool's lifetime.
///
/// Thread-safe: lookups and interning may run concurrently (readers share
/// the lock; interning a *new* sequence takes it exclusively), so many
/// threads can evaluate prepared queries against snapshots while the
/// engine keeps adding facts. One pool per Engine.
///
/// Cost note: View/Length/Render take the shared lock per call, which
/// the evaluator's inner loops feel even single-threaded. A lock-free
/// read path needs stable element addresses plus an atomic size gate
/// (chunked storage instead of the outer vector) — a contained follow-up
/// if profiles show reader contention on mu_.
class SequencePool {
 public:
  SequencePool();
  SequencePool(const SequencePool&) = delete;
  SequencePool& operator=(const SequencePool&) = delete;

  /// Interns the symbol string `symbols`, returning its id.
  SeqId Intern(SeqView symbols);

  /// Returns the id of `symbols` if interned, or kInvalidSeq otherwise.
  static constexpr SeqId kInvalidSeq = 0xFFFFFFFFu;
  SeqId Find(SeqView symbols) const;

  /// Returns the symbols of sequence `id`. The view stays valid for the
  /// pool's lifetime.
  SeqView View(SeqId id) const;

  /// len(sigma): the number of symbols in sequence `id`.
  size_t Length(SeqId id) const { return View(id).size(); }

  /// Interns the concatenation sigma1 sigma2 (the paper's s1 . s2).
  SeqId Concat(SeqId a, SeqId b);

  /// Interns the contiguous subsequence of `id` from 1-based position
  /// `from` to `to` inclusive. Precondition (checked): the range is
  /// defined per Section 3.2, i.e. 1 <= from <= to+1 <= Length(id)+1.
  /// from == to+1 yields the empty sequence.
  SeqId Subsequence(SeqId id, int64_t from, int64_t to);

  /// Interns a single-symbol sequence.
  SeqId Singleton(Symbol sym);

  /// Interns the sequence whose symbols are the characters of `text`,
  /// interning each character as a one-character symbol name.
  SeqId FromChars(std::string_view text, SymbolTable* symbols);

  /// Renders sequence `id` using `symbols` names. One-character symbol
  /// names are concatenated bare; longer names are wrapped in '<...>'.
  /// The empty sequence renders as "" (callers add quoting as needed).
  std::string Render(SeqId id, const SymbolTable& symbols) const;

  /// Number of interned sequences.
  size_t size() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return seqs_.size();
  }

 private:
  struct ViewHash {
    size_t operator()(SeqView v) const { return HashSpan(v); }
  };
  struct ViewEq {
    bool operator()(SeqView a, SeqView b) const {
      return a.size() == b.size() &&
             std::equal(a.begin(), a.end(), b.begin());
    }
  };

  /// Lock-free internals; callers hold mu_ as documented per method.
  SeqId InternLocked(SeqView symbols);  ///< requires unique lock

  mutable std::shared_mutex mu_;
  // Outer vector may reallocate (guarded by mu_), but the inner vectors'
  // heap buffers never move, so SeqViews handed out survive growth.
  std::vector<std::vector<Symbol>> seqs_;
  std::unordered_map<SeqView, SeqId, ViewHash, ViewEq> ids_;
};

}  // namespace seqlog

#endif  // SEQLOG_SEQUENCE_SEQUENCE_POOL_H_
