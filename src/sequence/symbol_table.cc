#include "sequence/symbol_table.h"

namespace seqlog {

Symbol SymbolTable::Intern(std::string_view name) {
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  Symbol id = static_cast<Symbol>(names_.size());
  SEQLOG_CHECK(id != kEndMarker) << "symbol table overflow";
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

Symbol SymbolTable::Find(std::string_view name) const {
  auto it = ids_.find(std::string(name));
  return it == ids_.end() ? kEndMarker : it->second;
}

}  // namespace seqlog
