#include "sequence/symbol_table.h"

#include <mutex>

namespace seqlog {

Symbol SymbolTable::Intern(std::string_view name) {
  std::string key(name);
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = ids_.find(key);
    if (it != ids_.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = ids_.find(key);  // re-check: another writer may have won
  if (it != ids_.end()) return it->second;
  Symbol id = static_cast<Symbol>(names_.size());
  SEQLOG_CHECK(id != kEndMarker) << "symbol table overflow";
  names_.emplace_back(std::move(key));
  ids_.emplace(names_.back(), id);
  return id;
}

Symbol SymbolTable::Find(std::string_view name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = ids_.find(std::string(name));
  return it == ids_.end() ? kEndMarker : it->second;
}

}  // namespace seqlog
