#include "sequence/domain.h"

#include <utility>

#include "base/string_util.h"
#include "base/thread_pool.h"

namespace seqlog {

const std::vector<SeqId> ExtendedDomain::kNoSeqs;

ExtendedDomain::ExtendedDomain(SequencePool* pool) : pool_(pool) {
  // The empty sequence is a contiguous subsequence of every sequence; it
  // is present from the start so that programs over an empty database
  // still have epsilon available.
  seqs_.push_back(kEmptySeq);
  members_[kEmptySeq & (kMemberShards - 1)].insert(kEmptySeq);
  by_length_.resize(1);
  by_length_[0].push_back(kEmptySeq);
}

ExtendedDomain::ExtendedDomain(SequencePool* pool,
                               std::shared_ptr<const ExtendedDomain> base)
    : pool_(pool), base_(std::move(base)) {
  // The base already contains epsilon (every domain does); the overlay
  // starts empty so enumeration does not repeat base members.
}

std::unique_ptr<ExtendedDomain> ExtendedDomain::CloneFlat() const {
  SEQLOG_CHECK(base_ == nullptr) << "CloneFlat requires a flat domain";
  auto copy = std::make_unique<ExtendedDomain>(pool_);
  copy->seqs_ = seqs_;
  copy->members_ = members_;
  copy->by_length_ = by_length_;
  copy->lmax_ = lmax_;
  return copy;
}

Status ExtendedDomain::ExtendWith(std::span<const SeqId> roots,
                                  size_t max_sequences) {
  for (SeqId id : roots) {
    SEQLOG_RETURN_IF_ERROR(AddRoot(id, max_sequences));
  }
  return Status::Ok();
}

void ExtendedDomain::EnumerateClosure(SeqId root,
                                      std::vector<SeqId>* out) const {
  ForEachClosureId(root, [out](SeqId id) {
    out->push_back(id);
    return true;
  });
}

size_t ExtendedDomain::ClosureSpanCount(SeqId root) const {
  SeqView v = pool_->View(root);
  size_t n = v.size();
  if (n == 0) return 1;  // just the root (epsilon)
  bool uniform = true;
  for (size_t i = 1; uniform && i < n; ++i) {
    if (v[i] != v[0]) uniform = false;
  }
  // Root + (n-1) prefixes, or root + the n(n+1)/2 - 1 proper subspans.
  return uniform ? n : n * (n + 1) / 2;
}

void ExtendedDomain::InsertMember(SeqId s) {
  if (base_ != nullptr && base_->Contains(s)) return;
  if (!members_[s & (kMemberShards - 1)].insert(s).second) return;
  seqs_.push_back(s);
  size_t len = pool_->Length(s);
  if (len > lmax_) lmax_ = len;
  if (len >= by_length_.size()) by_length_.resize(len + 1);
  by_length_[len].push_back(s);
}

Status ExtendedDomain::AddRoot(SeqId id, size_t max_sequences) {
  if (Contains(id)) return Status::Ok();
  // Insert as the closure is enumerated and stop the moment the budget
  // is exceeded — a diverging run must fail after ~max_sequences
  // interns, not after materialising a potentially enormous closure.
  bool exhausted = false;
  ForEachClosureId(id, [&](SeqId s) {
    InsertMember(s);
    exhausted = max_sequences != 0 && size() > max_sequences;
    return !exhausted;
  });
  if (exhausted) {
    return Status::ResourceExhausted(
        StrCat("extended active domain exceeded ", max_sequences,
               " sequences"));
  }
  return Status::Ok();
}

Status ExtendedDomain::ExtendWithClosed(std::span<const SeqId> stream,
                                        size_t max_sequences,
                                        ThreadPool* workers) {
  const size_t n = stream.size();
  if (n == 0) return Status::Ok();
  // Phase 1 — deterministic duplicate filtering. `accepted[i]` marks the
  // stream positions whose id is genuinely new; each id belongs to
  // exactly one membership shard, so one worker per shard touches
  // disjoint hash sets and disjoint accepted slots, lock-free. The
  // outcome (first occurrence wins) is position-based and therefore
  // identical however the shards are scheduled.
  std::vector<uint8_t> accepted(n, 0);
  if (workers != nullptr && n >= kMinParallelStream) {
    workers->ParallelFor(kMemberShards, [&](size_t shard) {
      auto& set = members_[shard];
      for (size_t i = 0; i < n; ++i) {
        SeqId id = stream[i];
        if ((id & (kMemberShards - 1)) != shard) continue;
        if (base_ != nullptr && base_->Contains(id)) continue;
        if (set.insert(id).second) accepted[i] = 1;
      }
    });
  } else {
    for (size_t i = 0; i < n; ++i) {
      SeqId id = stream[i];
      if (base_ != nullptr && base_->Contains(id)) continue;
      if (members_[id & (kMemberShards - 1)].insert(id).second) {
        accepted[i] = 1;
      }
    }
  }
  // Phase 2 — ordered append: plain integer push_backs in stream order,
  // single-writer, so enumeration order matches the AddRoot path bit for
  // bit. Length lookups are lock-free pool reads.
  for (size_t i = 0; i < n; ++i) {
    if (!accepted[i]) continue;
    SeqId id = stream[i];
    seqs_.push_back(id);
    size_t len = pool_->Length(id);
    if (len > lmax_) lmax_ = len;
    if (len >= by_length_.size()) by_length_.resize(len + 1);
    by_length_[len].push_back(id);
  }
  if (max_sequences != 0 && size() > max_sequences) {
    return Status::ResourceExhausted(StrCat(
        "extended active domain exceeded ", max_sequences, " sequences"));
  }
  return Status::Ok();
}

}  // namespace seqlog
