#include "sequence/domain.h"

#include <utility>

#include "base/string_util.h"

namespace seqlog {

const std::vector<SeqId> ExtendedDomain::kNoSeqs;

ExtendedDomain::ExtendedDomain(SequencePool* pool) : pool_(pool) {
  // The empty sequence is a contiguous subsequence of every sequence; it
  // is present from the start so that programs over an empty database
  // still have epsilon available.
  seqs_.push_back(kEmptySeq);
  members_.insert(kEmptySeq);
  by_length_.resize(1);
  by_length_[0].push_back(kEmptySeq);
}

ExtendedDomain::ExtendedDomain(SequencePool* pool,
                               std::shared_ptr<const ExtendedDomain> base)
    : pool_(pool), base_(std::move(base)) {
  // The base already contains epsilon (every domain does); the overlay
  // starts empty so enumeration does not repeat base members.
}

std::unique_ptr<ExtendedDomain> ExtendedDomain::CloneFlat() const {
  SEQLOG_CHECK(base_ == nullptr) << "CloneFlat requires a flat domain";
  auto copy = std::make_unique<ExtendedDomain>(pool_);
  copy->seqs_ = seqs_;
  copy->members_ = members_;
  copy->by_length_ = by_length_;
  copy->lmax_ = lmax_;
  return copy;
}

Status ExtendedDomain::ExtendWith(std::span<const SeqId> roots,
                                  size_t max_sequences) {
  for (SeqId id : roots) {
    SEQLOG_RETURN_IF_ERROR(AddRoot(id, max_sequences));
  }
  return Status::Ok();
}

Status ExtendedDomain::AddRoot(SeqId id, size_t max_sequences) {
  if (Contains(id)) return Status::Ok();
  SeqView v = pool_->View(id);
  size_t n = v.size();
  if (n > lmax_) lmax_ = n;
  // Enumerate all contiguous subsequences, shortest-last so that the full
  // sequence is inserted first (Contains(root) then short-circuits future
  // re-adds even if we bail out mid-way on budget).
  auto insert = [&](SeqId s) {
    if (base_ != nullptr && base_->Contains(s)) return;
    if (members_.insert(s).second) {
      seqs_.push_back(s);
      size_t len = pool_->Length(s);
      if (len >= by_length_.size()) by_length_.resize(len + 1);
      by_length_[len].push_back(s);
    }
  };
  insert(id);
  // Uniform sequences (a^n — poly-A tails and unary counters are
  // common) have only n+1 distinct subsequences; the generic loop below
  // would still hash all ~n^2/2 subspans (O(n^3) symbol work). Insert
  // the n prefixes directly instead.
  bool uniform = n > 0;
  for (size_t i = 1; uniform && i < n; ++i) {
    if (v[i] != v[0]) uniform = false;
  }
  if (uniform) {
    for (size_t len = 1; len < n; ++len) {
      insert(pool_->Intern(v.subspan(0, len)));
      if (max_sequences != 0 && size() > max_sequences) {
        return Status::ResourceExhausted(
            StrCat("extended active domain exceeded ", max_sequences,
                   " sequences"));
      }
    }
    return Status::Ok();
  }
  for (size_t len = 1; len < n; ++len) {
    for (size_t from = 0; from + len <= n; ++from) {
      insert(pool_->Intern(v.subspan(from, len)));
      if (max_sequences != 0 && size() > max_sequences) {
        return Status::ResourceExhausted(
            StrCat("extended active domain exceeded ", max_sequences,
                   " sequences"));
      }
    }
  }
  if (max_sequences != 0 && size() > max_sequences) {
    return Status::ResourceExhausted(StrCat(
        "extended active domain exceeded ", max_sequences, " sequences"));
  }
  return Status::Ok();
}

}  // namespace seqlog
