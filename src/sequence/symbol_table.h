// seqlog: interned symbols.
//
// The paper's alphabet Sigma is a finite set of symbols. Symbols here are
// interned strings so that multi-character symbol names (Turing-machine
// states like "q0", tape markers, amino-acid codes) coexist with ordinary
// one-character genome/text symbols. A sequence (sequence_pool.h) is a
// vector of Symbol ids.
#ifndef SEQLOG_SEQUENCE_SYMBOL_TABLE_H_
#define SEQLOG_SEQUENCE_SYMBOL_TABLE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "base/logging.h"

namespace seqlog {

/// Id of an interned symbol. Dense, starting at 0.
using Symbol = uint32_t;

/// Sentinel used by the transducer machinery for the end-of-tape marker
/// (the paper's left-triangle). Never handed out by SymbolTable.
inline constexpr Symbol kEndMarker = 0xFFFFFFFFu;

/// Bidirectional map between symbol names and dense Symbol ids.
///
/// Not thread-safe; one table per Engine.
class SymbolTable {
 public:
  SymbolTable() = default;
  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;

  /// Returns the id for `name`, interning it on first use.
  Symbol Intern(std::string_view name);

  /// Returns the id for `name` or kEndMarker if it was never interned.
  Symbol Find(std::string_view name) const;

  /// Returns the name of an interned symbol. `sym` must be valid.
  std::string_view Name(Symbol sym) const {
    SEQLOG_CHECK(sym < names_.size()) << "bad symbol id " << sym;
    return names_[sym];
  }

  /// Number of interned symbols.
  size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, Symbol> ids_;
};

}  // namespace seqlog

#endif  // SEQLOG_SEQUENCE_SYMBOL_TABLE_H_
