// seqlog: interned symbols.
//
// The paper's alphabet Sigma is a finite set of symbols. Symbols here are
// interned strings so that multi-character symbol names (Turing-machine
// states like "q0", tape markers, amino-acid codes) coexist with ordinary
// one-character genome/text symbols. A sequence (sequence_pool.h) is a
// vector of Symbol ids.
#ifndef SEQLOG_SEQUENCE_SYMBOL_TABLE_H_
#define SEQLOG_SEQUENCE_SYMBOL_TABLE_H_

#include <cstdint>
#include <deque>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "base/logging.h"

namespace seqlog {

/// Id of an interned symbol. Dense, starting at 0.
using Symbol = uint32_t;

/// Sentinel used by the transducer machinery for the end-of-tape marker
/// (the paper's left-triangle). Never handed out by SymbolTable.
inline constexpr Symbol kEndMarker = 0xFFFFFFFFu;

/// Bidirectional map between symbol names and dense Symbol ids.
///
/// Thread-safe: interning and lookups may run concurrently (readers share
/// the lock, interning a *new* symbol takes it exclusively). Names live in
/// a deque so the string_views returned by Name() stay valid for the
/// table's lifetime regardless of later interning. One table per Engine.
class SymbolTable {
 public:
  SymbolTable() = default;
  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;

  /// Returns the id for `name`, interning it on first use.
  Symbol Intern(std::string_view name);

  /// Returns the id for `name` or kEndMarker if it was never interned.
  Symbol Find(std::string_view name) const;

  /// Returns the name of an interned symbol. `sym` must be valid. The
  /// view stays valid for the table's lifetime.
  std::string_view Name(Symbol sym) const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    SEQLOG_CHECK(sym < names_.size()) << "bad symbol id " << sym;
    return names_[sym];
  }

  /// Number of interned symbols.
  size_t size() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return names_.size();
  }

 private:
  mutable std::shared_mutex mu_;
  std::deque<std::string> names_;  ///< deque: element addresses are stable
  std::unordered_map<std::string, Symbol> ids_;
};

}  // namespace seqlog

#endif  // SEQLOG_SEQUENCE_SYMBOL_TABLE_H_
