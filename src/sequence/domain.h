// seqlog: the extended active domain (Definitions 2 and 3 of the paper).
//
// The active domain of an interpretation is the set of sequences occurring
// in it. The *extended* active domain additionally contains every
// contiguous subsequence of those sequences, plus the integers
// [0, lmax + 1] where lmax is the maximum sequence length. Substitutions
// during rule evaluation range over this extended domain; it grows
// whenever rule heads create new sequences (constructive or transducer
// terms), which is exactly the paper's source of non-finiteness.
#ifndef SEQLOG_SEQUENCE_DOMAIN_H_
#define SEQLOG_SEQUENCE_DOMAIN_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <iterator>
#include <memory>
#include <span>
#include <unordered_set>
#include <vector>

#include "base/status.h"
#include "sequence/sequence_pool.h"

namespace seqlog {

class ThreadPool;

/// A two-segment view over SeqId vectors (frozen base first, then the
/// overlay), iterable like a vector. Returned by ExtendedDomain so a
/// layered domain enumerates base + overlay without concatenating them.
class DomainView {
 public:
  class iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = SeqId;
    using difference_type = std::ptrdiff_t;
    using pointer = const SeqId*;
    using reference = SeqId;

    SeqId operator*() const {
      return i_ < a_->size() ? (*a_)[i_] : (*b_)[i_ - a_->size()];
    }
    iterator& operator++() {
      ++i_;
      return *this;
    }
    bool operator==(const iterator& o) const { return i_ == o.i_; }
    bool operator!=(const iterator& o) const { return i_ != o.i_; }

   private:
    friend class DomainView;
    iterator(const std::vector<SeqId>* a, const std::vector<SeqId>* b,
             size_t i)
        : a_(a), b_(b), i_(i) {}
    const std::vector<SeqId>* a_;
    const std::vector<SeqId>* b_;
    size_t i_;
  };

  DomainView(const std::vector<SeqId>* base, const std::vector<SeqId>* over)
      : base_(base), over_(over) {}

  size_t size() const { return base_->size() + over_->size(); }
  bool empty() const { return size() == 0; }
  SeqId operator[](size_t i) const {
    return i < base_->size() ? (*base_)[i] : (*over_)[i - base_->size()];
  }
  iterator begin() const { return iterator(base_, over_, 0); }
  iterator end() const { return iterator(base_, over_, size()); }

 private:
  // The pointed-to vectors are ExtendedDomain members whose addresses
  // survive domain growth (seqs_ is a direct member, length buckets live
  // in a deque). A bucket's *contents* may still grow if AddRoot runs
  // while a view is live — do not interleave AddRoot with iteration.
  const std::vector<SeqId>* base_;
  const std::vector<SeqId>* over_;
};

/// Incrementally maintained extended active domain.
///
/// Adding a root sequence closes it under contiguous subsequences (at most
/// k(k+1)/2 + 1 of them for length k, per Section 2.1) and extends the
/// integer range. Membership is closed: if a sequence is in the domain all
/// its subsequences are too, so re-adding a contained sequence is a no-op.
///
/// A domain may be *layered* on a frozen base domain (the snapshot
/// optimization of core/snapshot.h): the base carries the — expensive —
/// closure of the database, computed once at snapshot publish; each
/// evaluation run layers a private overlay on top and only pays for the
/// sequences the run itself derives. The base must outlive the overlay
/// and must not grow while overlays reference it (Snapshot guarantees
/// both: its domain is immutable after publish).
///
/// Concurrency (full contract in docs/CONCURRENCY.md): the domain is
/// single-writer. During a parallel evaluation round it is strictly
/// read-only — firing threads call the const members (`Contains`,
/// `sequences`, `WithLength`, `EnumerateClosure`) concurrently — and all
/// growth happens at the round's merge barrier on one thread
/// (`ExtendWith` / `ExtendWithClosed`; the latter may fan its duplicate
/// filtering out over disjoint membership shards, which is the only
/// multi-threaded write path and touches no state a reader holds).
class ExtendedDomain {
 public:
  explicit ExtendedDomain(SequencePool* pool);
  /// Layered: reuses `base`'s closure; AddRoot extends only the overlay.
  ExtendedDomain(SequencePool* pool,
                 std::shared_ptr<const ExtendedDomain> base);

  /// Adds `id` and its subsequence closure. Returns kResourceExhausted if
  /// the domain would exceed `max_sequences` (0 = unlimited); the domain
  /// may then be partially extended, which is fine because callers abort
  /// evaluation on that status.
  Status AddRoot(SeqId id, size_t max_sequences = 0);

  /// Batched growth for the evaluator's merge barrier: adds every id of
  /// `roots` (each with its subsequence closure) under one budget, in
  /// order. Parallel semi-naive rounds derive into thread-local scratch
  /// databases and funnel ALL domain growth through this call (or through
  /// ExtendWithClosed) at the merge, so the closure structures stay
  /// single-writer; during a round the domain is read-only
  /// (eval/engine.cc).
  Status ExtendWith(std::span<const SeqId> roots, size_t max_sequences = 0);

  /// Closure enumeration *without* domain mutation: appends `root`
  /// followed by the interned ids of every contiguous subsequence of it,
  /// in the canonical insertion order AddRoot uses (root first, then
  /// length ascending / start ascending; uniform sequences contribute
  /// only their prefixes — same value set, n+1 entries instead of ~n²/2).
  ///
  /// Thread-safe const: only pool interning, no domain writes. Worker
  /// tasks of a parallel round call this to pre-intern the closures of
  /// sequences they derive while the firing phase is still parallel;
  /// the merge barrier then consumes the concatenated id streams through
  /// ExtendWithClosed and never re-hashes a symbol span.
  void EnumerateClosure(SeqId root, std::vector<SeqId>* out) const;

  /// Number of ids EnumerateClosure would emit for `root` (root
  /// included): n for a uniform sequence of length n >= 1, n(n+1)/2
  /// otherwise, 1 for epsilon. O(n) — used to keep pre-interning away
  /// from closures a domain budget could never admit, where the
  /// budget-checked AddRoot path bails out mid-closure instead of
  /// enumerating everything.
  size_t ClosureSpanCount(SeqId root) const;

  /// Batched growth from a pre-interned closure `stream` (concatenated
  /// EnumerateClosure outputs, in deterministic root order). Every id is
  /// a membership insert — no symbol hashing — and the duplicate
  /// filtering fans out over `workers` (may be null) across disjoint
  /// membership shards when the stream is large. The resulting domain —
  /// contents *and* enumeration order — is identical to calling AddRoot
  /// on the stream's roots in the same order.
  ///
  /// Budget note: the `max_sequences` check runs once against the final
  /// size, so a failing run's partial domain may be larger than the
  /// serial path's (which stops mid-closure); the returned status and
  /// every successful run are identical.
  Status ExtendWithClosed(std::span<const SeqId> stream,
                          size_t max_sequences, ThreadPool* workers);

  /// Deep copy of a flat (non-layered) domain. Publish-side incremental
  /// closure (core/engine.cc): clone the previous snapshot's frozen
  /// closure — cheap integer copies, no re-interning — then AddRoot only
  /// pays for roots that are actually new.
  std::unique_ptr<ExtendedDomain> CloneFlat() const;

  /// True if `id` is in the extended domain (base or overlay).
  bool Contains(SeqId id) const {
    return members_[id & (kMemberShards - 1)].count(id) > 0 ||
           (base_ != nullptr && base_->Contains(id));
  }

  /// All domain sequences (base first, then overlay, each in insertion
  /// order). Stable index positions: growth only appends.
  DomainView sequences() const {
    return DomainView(base_ != nullptr ? &base_->seqs_ : &kNoSeqs, &seqs_);
  }

  /// Number of sequences in the extended domain (the paper's notion of
  /// database/interpretation *size*, Definition 11).
  size_t size() const {
    return seqs_.size() + (base_ != nullptr ? base_->size() : 0);
  }

  /// Maximum length over all domain sequences (lmax in Definition 2).
  size_t lmax() const {
    size_t base_lmax = base_ != nullptr ? base_->lmax() : 0;
    return lmax_ > base_lmax ? lmax_ : base_lmax;
  }

  /// Domain sequences of exactly `len` symbols. Used by the evaluator's
  /// inverse matching of suffix-style indexed terms: candidates for B
  /// with B[c:end] = v all have length len(v)+c-1, so only this bucket
  /// needs scanning instead of the whole domain.
  DomainView WithLength(size_t len) const {
    const std::vector<SeqId>* base_bucket =
        base_ != nullptr && len < base_->by_length_.size()
            ? &base_->by_length_[len]
            : &kNoSeqs;
    const std::vector<SeqId>* over_bucket =
        len < by_length_.size() ? &by_length_[len] : &kNoSeqs;
    return DomainView(base_bucket, over_bucket);
  }

  /// Largest integer in the domain: lmax + 1. Index variables range over
  /// [0, MaxInt()].
  int64_t MaxInt() const { return static_cast<int64_t>(lmax()) + 1; }

 private:
  static const std::vector<SeqId> kNoSeqs;
  /// Membership is sharded by the id's low bits so ExtendWithClosed can
  /// deduplicate a closure stream with one worker per shard — disjoint
  /// hash sets, no locks. Contains costs the same as one flat set.
  static constexpr size_t kMemberShards = 16;
  /// A closure stream shorter than this is deduplicated inline; the
  /// per-shard fan-out only pays off once the stream dwarfs the
  /// ParallelFor round-trip.
  static constexpr size_t kMinParallelStream = 4096;

  /// Inserts `s` into members/seqs/buckets unless present (or contained
  /// in the base). Single-writer.
  void InsertMember(SeqId s);

  /// Shared closure enumeration behind EnumerateClosure and AddRoot:
  /// calls emit(id) for the root and each interned subsequence span in
  /// canonical order; emit returns false to stop early (how AddRoot
  /// bails out mid-closure the moment the budget is exceeded, instead
  /// of interning spans a doomed run never needs).
  template <typename Emit>
  void ForEachClosureId(SeqId root, Emit&& emit) const {
    SeqView v = pool_->View(root);
    size_t n = v.size();
    if (!emit(root)) return;
    // Uniform sequences (a^n — poly-A tails and unary counters are
    // common) have only n+1 distinct subsequences; the generic loop
    // below would still hash all ~n^2/2 subspans (O(n^3) symbol work).
    // Emit the n prefixes directly instead; they cover the same value
    // set in the same first-occurrence order as the generic
    // enumeration.
    bool uniform = n > 0;
    for (size_t i = 1; uniform && i < n; ++i) {
      if (v[i] != v[0]) uniform = false;
    }
    if (uniform) {
      for (size_t len = 1; len < n; ++len) {
        if (!emit(pool_->Intern(v.subspan(0, len)))) return;
      }
      return;
    }
    for (size_t len = 1; len < n; ++len) {
      for (size_t from = 0; from + len <= n; ++from) {
        if (!emit(pool_->Intern(v.subspan(from, len)))) return;
      }
    }
  }

  SequencePool* pool_;
  std::shared_ptr<const ExtendedDomain> base_;  ///< frozen; may be null
  std::vector<SeqId> seqs_;                     ///< overlay members
  std::array<std::unordered_set<SeqId>, kMemberShards> members_;
  /// length -> members. A deque so growth never moves existing buckets:
  /// DomainViews handed out keep pointing at valid vectors.
  std::deque<std::vector<SeqId>> by_length_;
  size_t lmax_ = 0;  ///< overlay lmax; effective lmax via lmax()
};

}  // namespace seqlog

#endif  // SEQLOG_SEQUENCE_DOMAIN_H_
