// seqlog: the extended active domain (Definitions 2 and 3 of the paper).
//
// The active domain of an interpretation is the set of sequences occurring
// in it. The *extended* active domain additionally contains every
// contiguous subsequence of those sequences, plus the integers
// [0, lmax + 1] where lmax is the maximum sequence length. Substitutions
// during rule evaluation range over this extended domain; it grows
// whenever rule heads create new sequences (constructive or transducer
// terms), which is exactly the paper's source of non-finiteness.
#ifndef SEQLOG_SEQUENCE_DOMAIN_H_
#define SEQLOG_SEQUENCE_DOMAIN_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "base/status.h"
#include "sequence/sequence_pool.h"

namespace seqlog {

/// Incrementally maintained extended active domain.
///
/// Adding a root sequence closes it under contiguous subsequences (at most
/// k(k+1)/2 + 1 of them for length k, per Section 2.1) and extends the
/// integer range. Membership is closed: if a sequence is in the domain all
/// its subsequences are too, so re-adding a contained sequence is a no-op.
class ExtendedDomain {
 public:
  explicit ExtendedDomain(SequencePool* pool);

  /// Adds `id` and its subsequence closure. Returns kResourceExhausted if
  /// the domain would exceed `max_sequences` (0 = unlimited); the domain
  /// may then be partially extended, which is fine because callers abort
  /// evaluation on that status.
  Status AddRoot(SeqId id, size_t max_sequences = 0);

  /// True if `id` is in the extended domain.
  bool Contains(SeqId id) const { return members_.count(id) > 0; }

  /// All domain sequences in insertion order. Stable index positions:
  /// evaluation watermarks slice this vector to find "new" sequences.
  const std::vector<SeqId>& sequences() const { return seqs_; }

  /// Number of sequences in the extended domain (the paper's notion of
  /// database/interpretation *size*, Definition 11).
  size_t size() const { return seqs_.size(); }

  /// Maximum length over all domain sequences (lmax in Definition 2).
  size_t lmax() const { return lmax_; }

  /// Domain sequences of exactly `len` symbols (insertion order). Used
  /// by the evaluator's inverse matching of suffix-style indexed terms:
  /// candidates for B with B[c:end] = v all have length len(v)+c-1, so
  /// only this bucket needs scanning instead of the whole domain.
  const std::vector<SeqId>& WithLength(size_t len) const {
    static const std::vector<SeqId> kNone;
    return len < by_length_.size() ? by_length_[len] : kNone;
  }

  /// Largest integer in the domain: lmax + 1. Index variables range over
  /// [0, MaxInt()].
  int64_t MaxInt() const { return static_cast<int64_t>(lmax_) + 1; }

 private:
  SequencePool* pool_;
  std::vector<SeqId> seqs_;
  std::unordered_set<SeqId> members_;
  std::vector<std::vector<SeqId>> by_length_;  ///< length -> members
  size_t lmax_ = 0;
};

}  // namespace seqlog

#endif  // SEQLOG_SEQUENCE_DOMAIN_H_
