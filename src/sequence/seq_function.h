// seqlog: interpreted sequence functions.
//
// Transducer Datalog (Section 7) interprets function terms @T(s1,...,sm)
// as the output of a machine on the argument sequences. The evaluator
// only needs this abstract interface; generalized sequence transducers
// (src/transducer) implement it, and tests plug in ad-hoc functions.
#ifndef SEQLOG_SEQUENCE_SEQ_FUNCTION_H_
#define SEQLOG_SEQUENCE_SEQ_FUNCTION_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>

#include "base/result.h"
#include "sequence/sequence_pool.h"

namespace seqlog {

/// Counters describing the compiled-machine backing of @T(...) terms
/// (src/transducer/determinize.h, fuse.h, Network::Compile). Aggregated
/// over a FunctionRegistry into EvalStats::transducer and shown by the
/// shell's :stats. The *_runs counters are cumulative over the function's
/// lifetime, not per evaluation.
struct TransducerStats {
  size_t machines_compiled = 0;  ///< deterministic machines backing terms
  size_t states_in = 0;          ///< NFA states before determinization
  size_t states_out = 0;         ///< dense DetTransducer states after
  size_t delay_bound = 0;        ///< max output delay over all machines
  size_t fusion_hits = 0;        ///< network chains fused into one machine
  size_t fusion_fallbacks = 0;   ///< chains refused (node-by-node fallback)
  size_t compiled_nodes = 0;     ///< network nodes backed by a DetTransducer
  size_t interpreted_nodes = 0;  ///< network nodes on the interpreted path
  uint64_t compiled_node_runs = 0;     ///< node executions, compiled path
  uint64_t interpreted_node_runs = 0;  ///< node executions, interpreted path

  void MergeFrom(const TransducerStats& o) {
    machines_compiled += o.machines_compiled;
    states_in += o.states_in;
    states_out += o.states_out;
    delay_bound = std::max(delay_bound, o.delay_bound);
    fusion_hits += o.fusion_hits;
    fusion_fallbacks += o.fusion_fallbacks;
    compiled_nodes += o.compiled_nodes;
    interpreted_nodes += o.interpreted_nodes;
    compiled_node_runs += o.compiled_node_runs;
    interpreted_node_runs += o.interpreted_node_runs;
  }
  /// True when any machine was compiled or any fusion was attempted —
  /// the shell only prints the transducer section then.
  bool Any() const {
    return machines_compiled > 0 || fusion_hits > 0 ||
           fusion_fallbacks > 0 || interpreted_node_runs > 0;
  }
};

/// A total or partial mapping (Sigma*)^m -> Sigma*.
class SequenceFunction {
 public:
  virtual ~SequenceFunction() = default;

  /// Name used in @name(...) terms.
  virtual const std::string& name() const = 0;

  /// Number of input sequences (m >= 1).
  virtual size_t NumInputs() const = 0;

  /// The order of the machine (Definition 7); 1 for ordinary transducers.
  /// Determines the complexity guarantees of strongly safe programs
  /// (Theorems 8 and 9).
  virtual int Order() const = 0;

  /// Computes the output for `inputs` (each a pool id), interning the
  /// result in `pool`.
  ///
  /// Contract: kFailedPrecondition means the machine's (partial)
  /// transition function is undefined on this input; the evaluator treats
  /// the function term as undefined and derives nothing. Any other error
  /// (e.g. kResourceExhausted for outputs over an internal limit) aborts
  /// evaluation.
  virtual Result<SeqId> Apply(std::span<const SeqId> inputs,
                              SequencePool* pool) const = 0;

  /// Merges this function's compilation/run counters into `out`.
  /// Interpreted machines report nothing (the default); compiled
  /// machines (transducer::DetTransducer) and compiled networks
  /// (transducer::TransducerNetwork after Compile) override.
  virtual void CollectStats(TransducerStats* out) const {
    (void)out;
  }
};

}  // namespace seqlog

#endif  // SEQLOG_SEQUENCE_SEQ_FUNCTION_H_
