// seqlog: interpreted sequence functions.
//
// Transducer Datalog (Section 7) interprets function terms @T(s1,...,sm)
// as the output of a machine on the argument sequences. The evaluator
// only needs this abstract interface; generalized sequence transducers
// (src/transducer) implement it, and tests plug in ad-hoc functions.
#ifndef SEQLOG_SEQUENCE_SEQ_FUNCTION_H_
#define SEQLOG_SEQUENCE_SEQ_FUNCTION_H_

#include <span>
#include <string>

#include "base/result.h"
#include "sequence/sequence_pool.h"

namespace seqlog {

/// A total or partial mapping (Sigma*)^m -> Sigma*.
class SequenceFunction {
 public:
  virtual ~SequenceFunction() = default;

  /// Name used in @name(...) terms.
  virtual const std::string& name() const = 0;

  /// Number of input sequences (m >= 1).
  virtual size_t NumInputs() const = 0;

  /// The order of the machine (Definition 7); 1 for ordinary transducers.
  /// Determines the complexity guarantees of strongly safe programs
  /// (Theorems 8 and 9).
  virtual int Order() const = 0;

  /// Computes the output for `inputs` (each a pool id), interning the
  /// result in `pool`.
  ///
  /// Contract: kFailedPrecondition means the machine's (partial)
  /// transition function is undefined on this input; the evaluator treats
  /// the function term as undefined and derives nothing. Any other error
  /// (e.g. kResourceExhausted for outputs over an internal limit) aborts
  /// evaluation.
  virtual Result<SeqId> Apply(std::span<const SeqId> inputs,
                              SequencePool* pool) const = 0;
};

}  // namespace seqlog

#endif  // SEQLOG_SEQUENCE_SEQ_FUNCTION_H_
