#include "core/engine.h"

#include <algorithm>
#include <utility>

#include "base/string_util.h"

namespace seqlog {

Engine::Engine()
    : edb_(std::make_unique<Database>(&catalog_)),
      evaluator_(
          std::make_unique<eval::Evaluator>(&catalog_, &pool_, &registry_)),
      live_model_(evaluator_.get(), &catalog_) {}

Status Engine::RegisterTransducer(
    std::shared_ptr<const SequenceFunction> fn) {
  if (fn == nullptr) return Status::InvalidArgument("null transducer");
  registry_.Register(std::move(fn));
  return Status::Ok();
}

Status Engine::LoadProgram(std::string_view text) {
  SEQLOG_ASSIGN_OR_RETURN(ast::Program program,
                          parser::ParseProgram(text, &symbols_, &pool_));
  return LoadProgramAst(program);
}

Status Engine::LoadProgramAst(const ast::Program& program) {
  SEQLOG_RETURN_IF_ERROR(evaluator_->SetProgram(program));
  program_ = program;
  program_loaded_ = true;
  // A model of the previous program cannot be extended under the new
  // one. The ingest queue survives: staged facts reach the EDB at the
  // next drain or Evaluate regardless of which program is loaded.
  live_model_.Invalidate();
  ivm_cold_pending_ = false;
  // Accumulate warnings for diagnostics(). Body-only predicates are
  // extensional by convention (AddFact typically follows the load), so
  // they are declared rather than reported as SL-W030.
  analysis::LintOptions lint_options;
  const std::set<std::string> idb = program_.HeadPredicates();
  for (const ast::Clause& clause : program_.clauses) {
    for (const ast::Atom& atom : clause.body) {
      if (atom.kind == ast::Atom::Kind::kPredicate &&
          idb.count(atom.predicate) == 0) {
        lint_options.edb_predicates.insert(atom.predicate);
      }
    }
  }
  diagnostics_ = analysis::Lint(program_, pool_, symbols_, lint_options);
  return Status::Ok();
}

Status Engine::AddFact(std::string_view predicate,
                       const std::vector<std::string>& args) {
  std::vector<SeqId> ids;
  ids.reserve(args.size());
  for (const std::string& a : args) {
    ids.push_back(pool_.FromChars(a, &symbols_));
  }
  return AddFactIds(predicate, std::move(ids));
}

Status Engine::AddFactIds(std::string_view predicate,
                          std::vector<SeqId> args) {
  SEQLOG_ASSIGN_OR_RETURN(PredId pred,
                          catalog_.GetOrCreate(predicate, args.size()));
  SEQLOG_ASSIGN_OR_RETURN(bool inserted, edb_->TryInsert(pred, args));
  if (inserted) {
    ++edb_version_;
    // Post-fixpoint insert: stage it as a pending delta instead of
    // invalidating the model — DrainIngest re-saturates. If the queue
    // is full the model is stale beyond what the queue records; the
    // next drain recomputes cold.
    if (live_model_.built() && !ivm_cold_pending_) {
      if (!ingest_.TryPush(ivm::PendingFact{pred, std::move(args)}).ok()) {
        ivm_cold_pending_ = true;
      }
    }
  }
  return Status::Ok();
}

Status Engine::EnqueueFact(std::string_view predicate,
                           const std::vector<std::string>& args) {
  std::vector<SeqId> ids;
  ids.reserve(args.size());
  for (const std::string& a : args) {
    ids.push_back(pool_.FromChars(a, &symbols_));
  }
  return EnqueueFactIds(predicate, std::move(ids));
}

Status Engine::EnqueueFactIds(std::string_view predicate,
                              std::vector<SeqId> args) {
  // Interning and catalog registration are shared_mutex-guarded, and the
  // queue is MPSC: this whole path is safe from any writer thread while
  // readers execute against snapshots. The EDB (single-writer) is only
  // touched later, by the drain's single consumer.
  SEQLOG_ASSIGN_OR_RETURN(PredId pred,
                          catalog_.GetOrCreate(predicate, args.size()));
  return ingest_.TryPush(ivm::PendingFact{pred, std::move(args)});
}

eval::EvalOutcome Engine::DrainIngest(const eval::EvalOptions& options) {
  // The drain proper; transducer counters are collected once, on the
  // way out, whichever path produced the outcome.
  auto drain = [&]() -> eval::EvalOutcome {
  eval::EvalOutcome outcome;
  std::vector<ivm::PendingFact> pending;
  ingest_.DrainTo(&pending);
  // EDB first, so snapshots and a potential cold rebuild both see every
  // staged fact. TryInsert is idempotent: AddFact-originated entries are
  // already present, EnqueueFact-originated ones land here.
  Database batch(&catalog_);
  for (const ivm::PendingFact& fact : pending) {
    Result<bool> inserted = edb_->TryInsert(fact.pred, fact.args);
    if (!inserted.ok()) {
      outcome.status = inserted.status();
      return outcome;
    }
    if (inserted.value()) ++edb_version_;
    batch.Insert(fact.pred, fact.args);
  }
  outcome.stats.ingested_facts = pending.size();
  if (!program_loaded_) return outcome;
  if (ivm_cold_pending_) {
    live_model_.Invalidate();
    outcome = live_model_.Build(*edb_, options);
    outcome.stats.cold_fallback = true;
    outcome.stats.ingested_facts = pending.size();
    ivm_cold_pending_ = !outcome.status.ok();
    return outcome;
  }
  if (!live_model_.built() || pending.empty()) {
    // No model to maintain (Evaluate never ran) or nothing new: the
    // facts are in the EDB and snapshots pick them up.
    return outcome;
  }
  outcome = live_model_.Apply(batch, options);
  if (!outcome.status.ok()) ivm_cold_pending_ = true;
  return outcome;
  };
  eval::EvalOutcome drained = drain();
  registry_.CollectTransducerStats(&drained.stats.transducer);
  return drained;
}

void Engine::ClearFacts() {
  edb_ = std::make_unique<Database>(&catalog_);
  // Retractions are not expressible as insert deltas: invalidate and let
  // the next DrainIngest recompute cold (EvalStats::cold_fallback).
  ivm_cold_pending_ = live_model_.built() && program_loaded_;
  live_model_.Invalidate();
  // Facts staged before the clear are dropped with everything else.
  std::vector<ivm::PendingFact> discarded;
  ingest_.DrainTo(&discarded);
  ++edb_version_;
  // The publish cache is built incrementally and assumes facts are only
  // ever added; dropping facts invalidates it. Snapshots already handed
  // out keep their own copies.
  published_.reset();
  published_domain_.reset();
  published_row_watermark_.clear();
}

Result<PreparedQuery> Engine::Prepare(std::string_view goal) {
  SEQLOG_ASSIGN_OR_RETURN(ast::Atom parsed,
                          parser::ParseGoal(goal, &symbols_, &pool_));
  query::Solver solver(&catalog_, &pool_, &registry_);
  SEQLOG_ASSIGN_OR_RETURN(query::PreparedGoal prepared,
                          solver.Prepare(program_, parsed));
  return PreparedQuery::Create(this, std::string(goal), std::move(prepared),
                               analysis::LintGoal(program_, parsed));
}

Snapshot Engine::PublishSnapshot() {
  if (published_ == nullptr || published_version_ != edb_version_) {
    // Close the snapshot's sequences into a frozen domain once, here on
    // the write path, so every Execute against it skips the closure (the
    // dominant per-query cost on large databases). Incremental across
    // publishes: facts are append-only (ClearFacts drops the cache), so
    // the previous closure is cloned flat — cheap integer copies — and
    // AddRoot below is O(1) for every already-closed root.
    published_ = std::shared_ptr<const Database>(edb_->Clone());
    std::shared_ptr<ExtendedDomain> domain =
        published_domain_ != nullptr
            ? std::shared_ptr<ExtendedDomain>(published_domain_->CloneFlat())
            : std::make_shared<ExtendedDomain>(&pool_);
    // Facts are append-only (ClearFacts resets the cache), so only rows
    // past the previous publish's per-relation watermark need closing.
    for (PredId pred : published_->PredicatesWithRelations()) {
      const Relation* rel = published_->Get(pred);
      if (pred >= published_row_watermark_.size()) {
        published_row_watermark_.resize(pred + 1, 0);
      }
      for (uint32_t i = published_row_watermark_[pred]; i < rel->size();
           ++i) {
        for (SeqId arg : rel->RowAt(i)) {
          // Unbudgeted: the EDB was already admitted by AddFact.
          Status s = domain->AddRoot(arg);
          SEQLOG_CHECK(s.ok()) << s.ToString();
        }
      }
      published_row_watermark_[pred] = static_cast<uint32_t>(rel->size());
    }
    published_domain_ = std::move(domain);
    published_version_ = edb_version_;
  }
  return Snapshot(published_, published_domain_, published_version_);
}

analysis::SafetyReport Engine::AnalyzeSafety() const {
  return analysis::AnalyzeSafety(program_);
}

eval::EvalOutcome Engine::Evaluate(const eval::EvalOptions& options) {
  eval::EvalOutcome outcome;
  if (!program_loaded_) {
    outcome.status = Status::FailedPrecondition("no program loaded");
    return outcome;
  }
  // Writers may have staged facts that never reached the EDB
  // (EnqueueFact): flush them so the cold run covers everything, then
  // the queue is empty and the fresh model owes it nothing.
  std::vector<ivm::PendingFact> pending;
  ingest_.DrainTo(&pending);
  for (const ivm::PendingFact& fact : pending) {
    Result<bool> inserted = edb_->TryInsert(fact.pred, fact.args);
    if (!inserted.ok()) {
      outcome.status = inserted.status();
      return outcome;
    }
    if (inserted.value()) ++edb_version_;
  }
  ivm_cold_pending_ = false;
  outcome = live_model_.Build(*edb_, options);
  registry_.CollectTransducerStats(&outcome.stats.transducer);
  return outcome;
}

SolveOutcome Engine::Solve(std::string_view goal,
                           const query::SolveOptions& options) {
  // Compatibility wrapper: one-shot Prepare + Execute + eager rendering.
  SolveOutcome outcome;
  Result<ast::Atom> parsed = parser::ParseGoal(goal, &symbols_, &pool_);
  if (!parsed.ok()) {
    outcome.status = parsed.status();
    return outcome;
  }
  query::Solver solver(&catalog_, &pool_, &registry_);
  const size_t arity = parsed.value().args.size();
  ResultSet rs(solver.Solve(program_, parsed.value(), *edb_, options),
               arity, &pool_, &symbols_, /*keepalive=*/nullptr);
  outcome.status = rs.status();
  outcome.stats = rs.stats();
  outcome.answers = rs.Materialize();
  return outcome;
}

Result<std::vector<std::vector<SeqId>>> Engine::QueryIds(
    std::string_view predicate) const {
  const Database* model = live_model_.model();
  if (model == nullptr) {
    return Status::FailedPrecondition(
        "no model computed; call Evaluate or use Solve");
  }
  SEQLOG_ASSIGN_OR_RETURN(PredId pred, catalog_.Find(predicate));
  std::vector<std::vector<SeqId>> rows;
  const Relation* rel = model->Get(pred);
  if (rel != nullptr) {
    rows.reserve(rel->size());
    for (uint32_t i = 0; i < rel->size(); ++i) {
      TupleView row = rel->RowAt(i);
      rows.emplace_back(row.begin(), row.end());
    }
  }
  return rows;
}

Result<std::vector<RenderedRow>> Engine::Query(
    std::string_view predicate) const {
  SEQLOG_ASSIGN_OR_RETURN(std::vector<std::vector<SeqId>> id_rows,
                          QueryIds(predicate));
  std::vector<RenderedRow> rows;
  rows.reserve(id_rows.size());
  for (const auto& id_row : id_rows) {
    RenderedRow row;
    row.reserve(id_row.size());
    for (SeqId id : id_row) row.push_back(pool_.Render(id, symbols_));
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

}  // namespace seqlog
