#include "core/engine.h"

#include <algorithm>

#include "base/string_util.h"

namespace seqlog {

Engine::Engine()
    : edb_(std::make_unique<Database>(&catalog_)),
      evaluator_(
          std::make_unique<eval::Evaluator>(&catalog_, &pool_, &registry_)) {}

Status Engine::RegisterTransducer(
    std::shared_ptr<const SequenceFunction> fn) {
  if (fn == nullptr) return Status::InvalidArgument("null transducer");
  registry_.Register(std::move(fn));
  return Status::Ok();
}

Status Engine::LoadProgram(std::string_view text) {
  SEQLOG_ASSIGN_OR_RETURN(ast::Program program,
                          parser::ParseProgram(text, &symbols_, &pool_));
  return LoadProgramAst(program);
}

Status Engine::LoadProgramAst(const ast::Program& program) {
  SEQLOG_RETURN_IF_ERROR(evaluator_->SetProgram(program));
  program_ = program;
  program_loaded_ = true;
  model_.reset();
  return Status::Ok();
}

Status Engine::AddFact(std::string_view predicate,
                       const std::vector<std::string>& args) {
  std::vector<SeqId> ids;
  ids.reserve(args.size());
  for (const std::string& a : args) {
    ids.push_back(pool_.FromChars(a, &symbols_));
  }
  return AddFactIds(predicate, std::move(ids));
}

Status Engine::AddFactIds(std::string_view predicate,
                          std::vector<SeqId> args) {
  SEQLOG_ASSIGN_OR_RETURN(PredId pred,
                          catalog_.GetOrCreate(predicate, args.size()));
  edb_->Insert(pred, args);
  return Status::Ok();
}

void Engine::ClearFacts() {
  edb_ = std::make_unique<Database>(&catalog_);
  model_.reset();
}

analysis::SafetyReport Engine::AnalyzeSafety() const {
  return analysis::AnalyzeSafety(program_);
}

eval::EvalOutcome Engine::Evaluate(const eval::EvalOptions& options) {
  eval::EvalOutcome outcome;
  if (!program_loaded_) {
    outcome.status = Status::FailedPrecondition("no program loaded");
    return outcome;
  }
  model_ = std::make_unique<Database>(&catalog_);
  return evaluator_->Evaluate(*edb_, options, model_.get());
}

SolveOutcome Engine::Solve(std::string_view goal,
                           const query::SolveOptions& options) {
  SolveOutcome outcome;
  Result<ast::Atom> parsed = parser::ParseGoal(goal, &symbols_, &pool_);
  if (!parsed.ok()) {
    outcome.status = parsed.status();
    return outcome;
  }
  query::Solver solver(&catalog_, &pool_, &registry_);
  query::SolveResult result =
      solver.Solve(program_, parsed.value(), *edb_, options);
  outcome.status = std::move(result.status);
  outcome.stats = std::move(result.stats);
  outcome.answers.reserve(result.answers.size());
  for (const std::vector<SeqId>& row : result.answers) {
    RenderedRow rendered;
    rendered.reserve(row.size());
    for (SeqId id : row) rendered.push_back(pool_.Render(id, symbols_));
    outcome.answers.push_back(std::move(rendered));
  }
  std::sort(outcome.answers.begin(), outcome.answers.end());
  return outcome;
}

Result<std::vector<std::vector<SeqId>>> Engine::QueryIds(
    std::string_view predicate) const {
  if (model_ == nullptr) {
    return Status::FailedPrecondition("call Evaluate before Query");
  }
  SEQLOG_ASSIGN_OR_RETURN(PredId pred, catalog_.Find(predicate));
  std::vector<std::vector<SeqId>> rows;
  const Relation* rel = model_->Get(pred);
  if (rel != nullptr) {
    rows.reserve(rel->size());
    for (uint32_t i = 0; i < rel->size(); ++i) {
      TupleView row = rel->Row(i);
      rows.emplace_back(row.begin(), row.end());
    }
  }
  return rows;
}

Result<std::vector<RenderedRow>> Engine::Query(
    std::string_view predicate) const {
  SEQLOG_ASSIGN_OR_RETURN(std::vector<std::vector<SeqId>> id_rows,
                          QueryIds(predicate));
  std::vector<RenderedRow> rows;
  rows.reserve(id_rows.size());
  for (const auto& id_row : id_rows) {
    RenderedRow row;
    row.reserve(id_row.size());
    for (SeqId id : id_row) row.push_back(pool_.Render(id, symbols_));
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

}  // namespace seqlog
