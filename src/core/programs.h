// seqlog: every numbered example program of the paper, in surface syntax.
//
// These constants are used by the integration tests, the examples and
// the benchmark harness; each is annotated with the example number it
// reproduces.
#ifndef SEQLOG_CORE_PROGRAMS_H_
#define SEQLOG_CORE_PROGRAMS_H_

namespace seqlog {
namespace programs {

/// Example 1.1 — all suffixes of all sequences in r (structural
/// recursion; note N is enumerated over the domain's integer range).
inline constexpr char kSuffixes[] =
    "suffix(X[N:end]) :- r(X).\n";

/// Example 1.2 — all pairwise concatenations (constructive, safe:
/// non-recursive construction).
inline constexpr char kConcatPairs[] =
    "answer(X ++ Y) :- r(X), r(Y).\n";

/// Example 1.3 — retrieve sequences of the form a^n b^n c^n
/// (a non-context-free pattern, pure structural recursion).
inline constexpr char kAbcN[] =
    "answer(X) :- r(X), abcn(X[1:N1], X[N1+1:N2], X[N2+1:end]).\n"
    "abcn(eps, eps, eps) :- true.\n"
    "abcn(X, Y, Z) :- X[1] = a, Y[1] = b, Z[1] = c,\n"
    "                 abcn(X[2:end], Y[2:end], Z[2:end]).\n";

/// Example 1.4 — reverse of every sequence in r (constructive recursion
/// bounded by the input: finite semantics, not strongly safe).
inline constexpr char kReverse[] =
    "answer(Y) :- r(X), reverse(X, Y).\n"
    "reverse(eps, eps) :- true.\n"
    "reverse(X[1:N+1], X[N+1] ++ Y) :- r(X), reverse(X[1:N], Y).\n";

/// Example 1.5 — multiple repeats, structural version (finite):
/// rep1(X, Y) holds iff X = Y^k for some k >= 1... with X, Y drawn from
/// the extended active domain.
inline constexpr char kRep1[] =
    "rep1(X, X) :- true.\n"
    "rep1(X, X[1:N]) :- rep1(X[N+1:end], X[1:N]).\n";

/// Example 1.5 — constructive version (infinite least fixpoint!).
inline constexpr char kRep2[] =
    "rep2(X, X) :- true.\n"
    "rep2(X ++ Y, Y) :- rep2(X, Y).\n";

/// Example 1.6 — echo sequences; finite answers, infinite least fixpoint
/// (the domain expands forever).
inline constexpr char kEcho[] =
    "answer(X, Y) :- r(X), echo(X, Y).\n"
    "echo(eps, eps) :- true.\n"
    "echo(X, X[1] ++ X[1] ++ Z) :- echo(X[2:end], Z).\n";

/// Example 5.1 — stratified construction.
inline constexpr char kStratifiedDouble[] =
    "double(X ++ X) :- r(X).\n"
    "quadruple(X ++ X) :- double(X).\n";

/// Example 8.1 — program P1 (strongly safe: cycles, but none through a
/// constructive edge).
inline constexpr char kP1[] =
    "p(X) :- r(X, Y), q(Y).\n"
    "q(X) :- r(X, Y), p(Y).\n"
    "r(@t1(X), @t2(Y)) :- a(X, Y).\n";

/// Example 8.1 — program P2 (constructive self-loop: not strongly safe).
inline constexpr char kP2[] = "p(@t(X)) :- p(X).\n";

/// Example 8.1 — program P3 (constructive cycle q -> r -> p -> q... not
/// strongly safe).
inline constexpr char kP3[] =
    "q(X) :- r(X).\n"
    "r(@t(X)) :- p(X).\n"
    "p(X) :- q(X).\n";

/// Example 7.1 — DNA -> RNA -> protein pipeline (Transducer Datalog;
/// register @transcribe and @translate first).
inline constexpr char kGenomePipeline[] =
    "rnaseq(D, @transcribe(D)) :- dnaseq(D).\n"
    "proteinseq(D, @translate(R)) :- rnaseq(D, R).\n";

/// Example 7.2 — hand-written Sequence Datalog simulation of the
/// transcription half of Example 7.1.
inline constexpr char kTranscribeSimulation[] =
    "rnaseq(D, R) :- dnaseq(D), transcribe(D, R).\n"
    "transcribe(eps, eps) :- true.\n"
    "transcribe(D[1:N+1], R ++ T) :- dnaseq(D), transcribe(D[1:N], R),\n"
    "                                trans(D[N+1], T).\n"
    "trans(a, u) :- true.\n"
    "trans(t, a) :- true.\n"
    "trans(c, g) :- true.\n"
    "trans(g, c) :- true.\n";

/// The text-index workload of examples/text_index.cpp (not from the
/// paper): shared substrings across documents via unguarded windows —
/// the linter's worst case for the variable passes (every clause has
/// an unguarded or equality-bound variable).
inline constexpr char kTextIndex[] =
    "occurs(W, D) :- doc(D), W = D[I:J].\n"
    "shared(W) :- occurs(W, D1), occurs(W, D2), D1 != D2.\n"
    "shared4(W) :- shared(W), W[4] = W[4:4].\n"
    "hit(W, D) :- shared4(W), occurs(W, D).\n";

}  // namespace programs
}  // namespace seqlog

#endif  // SEQLOG_CORE_PROGRAMS_H_
