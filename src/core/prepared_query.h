// seqlog: prepared (parameterized) goals.
//
// A PreparedQuery is the compile-once/execute-many form of Engine::Solve
// for the paper's point-query workloads (suffix membership, genome
// lookups — programs interrogated millions of times with varying
// constants):
//
//   auto pq = engine.Prepare("?- suffix($1).");
//   pq->Bind(1, "acgt");
//   ResultSet rs = pq->Execute();          // against the live EDB
//   pq->Bind(1, "tacg");
//   rs = pq->Execute(engine.PublishSnapshot());   // against a snapshot
//
// Prepare parses the goal ONCE, adorns and magic-rewrites the program
// ONCE (query/solver.h), and compiles the rewritten program ONCE into a
// cached evaluator. Execute only swaps the magic *seed fact* — rebinding
// a parameter never re-parses, never re-rewrites, never recompiles; the
// stats() counters prove it (goal_parses and magic_rewrites stay at
// their prepare-time values while executions grows).
//
// Threading: Bind mutates shared state — bind before handing the query
// to worker threads. Execute(snapshot) is const and thread-safe: many
// threads may execute one PreparedQuery against one (or several)
// snapshots concurrently while the engine keeps accepting facts.
// Execute() against the live EDB is NOT safe against concurrent AddFact.
//
// Lifetime: a PreparedQuery borrows the Engine's catalog/pool/registry
// and must not outlive it. Loading a different program into the engine
// does not retarget existing prepared queries — they keep answering over
// the program they were prepared against; re-Prepare after LoadProgram.
#ifndef SEQLOG_CORE_PREPARED_QUERY_H_
#define SEQLOG_CORE_PREPARED_QUERY_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/diagnostics.h"
#include "base/result.h"
#include "core/result_set.h"
#include "core/snapshot.h"
#include "query/solver.h"

namespace seqlog {

class Engine;
namespace serve {
class BatchExecutor;
}  // namespace serve

/// Counters proving what the prepared path does (and does not) do.
struct PreparedQueryStats {
  size_t goal_parses = 0;     ///< 1 after Prepare, never grows
  size_t magic_rewrites = 0;  ///< 1 after Prepare (0 for EDB goals)
  size_t plan_compilations = 0;  ///< 1 after Prepare (0 for EDB goals)
  uint64_t executions = 0;    ///< grows with every Execute
};

/// One goal shape, parsed/adorned/rewritten/compiled once by
/// Engine::Prepare. Movable, not copyable.
class PreparedQuery {
 public:
  PreparedQuery(PreparedQuery&&) noexcept;
  PreparedQuery& operator=(PreparedQuery&&) noexcept;
  PreparedQuery(const PreparedQuery&) = delete;
  PreparedQuery& operator=(const PreparedQuery&) = delete;
  ~PreparedQuery();

  /// The goal text this query was prepared from.
  const std::string& goal() const;
  /// Number of `$N` parameters in the goal.
  size_t param_count() const;
  /// Effective goal adornment (after bindable demotion, query/adornment.h).
  const query::Adornment& goal_adornment() const;

  /// Preparation warnings (analysis/lint.h, SL-W051): bound goal
  /// arguments demoted to free, predicting execution cost closer to a
  /// full fixpoint than a point lookup. Empty for fully-bindable goals.
  const std::vector<analysis::Diagnostic>& warnings() const;

  /// Binds parameter `$param` (1-based) to the sequence of `value`'s
  /// characters (interned like Engine::AddFact arguments). Rebinding
  /// overwrites. kOutOfRange for an unknown parameter index. Not
  /// thread-safe against concurrent Execute.
  Status Bind(size_t param, std::string_view value);
  /// Same with an already-interned sequence.
  Status BindId(size_t param, SeqId value);

  /// Executes against the engine's *live* EDB. Zero parsing, zero
  /// rewriting, zero compilation — seed injection + cached-program
  /// fixpoint only. kFailedPrecondition if a parameter is unbound. Not
  /// safe against concurrent AddFact; use the snapshot overload for
  /// concurrent readers.
  ResultSet Execute(const query::SolveOptions& options = {}) const;

  /// Executes against a published snapshot. Const and thread-safe: many
  /// threads may share one PreparedQuery and one Snapshot.
  ResultSet Execute(const Snapshot& snapshot,
                    const query::SolveOptions& options = {}) const;

  /// Executes against a published snapshot with per-call parameter
  /// values (`params[i]` binds `$i+1`) instead of the shared Bind state,
  /// which is neither read nor written — kFailedPrecondition when an
  /// entry is missing. Const and thread-safe even while other threads
  /// Bind: the serving tier's per-session execution path
  /// (src/serve/server.h) — many sessions share one PreparedQuery and
  /// never touch its Bind state.
  ResultSet ExecuteWith(const Snapshot& snapshot,
                        const std::vector<std::optional<SeqId>>& params,
                        const query::SolveOptions& options = {}) const;

  /// Prepare/execution counters (see struct comment).
  PreparedQueryStats stats() const;

 private:
  friend class Engine;
  /// The batch tier reads the compiled PreparedGoal (and the owning
  /// engine) to run many bindings in one fixpoint (serve/batch_executor.h).
  friend class serve::BatchExecutor;
  /// Friendship accessors for the batch tier (Impl is .cc-private).
  const query::PreparedGoal& prepared_goal() const;
  Engine* engine() const;
  struct Impl;
  explicit PreparedQuery(std::unique_ptr<Impl> impl);
  /// Factory for Engine::Prepare (Impl is defined in the .cc).
  static PreparedQuery Create(Engine* engine, std::string goal_text,
                              query::PreparedGoal prepared,
                              std::vector<analysis::Diagnostic> warnings);

  std::unique_ptr<Impl> impl_;
};

}  // namespace seqlog

#endif  // SEQLOG_CORE_PREPARED_QUERY_H_
