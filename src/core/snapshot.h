// seqlog: immutable EDB snapshots (copy-on-publish).
//
// A Snapshot is a frozen view of the engine's extensional database at one
// publish point. Engine::PublishSnapshot() deep-copies the live EDB into
// a shared_ptr-owned Database (copy-on-publish: the copy happens once per
// publish, and republishing an unchanged EDB reuses the previous copy);
// after publication the copy is never mutated, so any number of threads
// may Execute prepared queries against it while the engine keeps
// accepting AddFact and publishing newer snapshots.
//
// Lifetimes (Engine ⊃ Snapshot ⊃ ResultSet): the snapshot shares the
// engine's catalog/pool/symbols, so it must not outlive the Engine; the
// database itself is shared_ptr-owned, so Snapshot copies are cheap and
// ResultSets pin it past the Snapshot object's own lifetime.
#ifndef SEQLOG_CORE_SNAPSHOT_H_
#define SEQLOG_CORE_SNAPSHOT_H_

#include <cstdint>
#include <memory>

#include "base/logging.h"
#include "sequence/domain.h"
#include "storage/database.h"

namespace seqlog {

/// An immutable, shared view of the EDB as of one publish point.
class Snapshot {
 public:
  /// An invalid (empty) snapshot; valid() is false.
  Snapshot() = default;

  bool valid() const { return db_ != nullptr; }

  /// The frozen database. Must not be called on an invalid snapshot.
  const Database& db() const {
    SEQLOG_CHECK(db_ != nullptr) << "invalid snapshot";
    return *db_;
  }

  /// Shared ownership of the frozen database (for keep-alive chaining).
  std::shared_ptr<const Database> shared() const { return db_; }

  /// Number of atoms frozen in this snapshot.
  size_t TotalFacts() const { return db_ == nullptr ? 0 : db_->TotalFacts(); }

  /// Monotonic publish version: a snapshot published after more AddFact
  /// calls has a strictly larger version; equal versions mean identical
  /// contents.
  uint64_t version() const { return version_; }

  /// The frozen extended-active-domain closure of db()'s sequences,
  /// computed once at publish. Evaluations against this snapshot layer
  /// their private overlay on it (sequence/domain.h) instead of
  /// re-closing the database per query — the snapshot fast path.
  std::shared_ptr<const ExtendedDomain> domain_base() const {
    return domain_;
  }

 private:
  friend class Engine;
  Snapshot(std::shared_ptr<const Database> db,
           std::shared_ptr<const ExtendedDomain> domain, uint64_t version)
      : db_(std::move(db)), domain_(std::move(domain)), version_(version) {}

  std::shared_ptr<const Database> db_;
  std::shared_ptr<const ExtendedDomain> domain_;
  uint64_t version_ = 0;
};

}  // namespace seqlog

#endif  // SEQLOG_CORE_SNAPSHOT_H_
