#include "core/result_set.h"

#include <algorithm>
#include <utility>

namespace seqlog {

size_t Value::Length() const { return pool_->Length(id_); }

std::string Value::Render() const { return pool_->Render(id_, *symbols_); }

size_t Row::size() const { return set_->arity(); }

Value Row::value(size_t j) const {
  SEQLOG_DCHECK(j < set_->arity());
  return Value(set_->ids(index_)[j], set_->pool_, set_->symbols_);
}

TupleView Row::ids() const { return set_->ids(index_); }

std::vector<std::string> Row::Render() const {
  std::vector<std::string> out;
  out.reserve(size());
  for (size_t j = 0; j < size(); ++j) out.push_back(value(j).Render());
  return out;
}

ResultSet::ResultSet(query::SolveResult result, size_t arity,
                     const SequencePool* pool, const SymbolTable* symbols,
                     std::shared_ptr<const Database> keepalive)
    : status_(std::move(result.status)),
      stats_(std::move(result.stats)),
      arity_(arity),
      rows_(result.answers.size()),
      pool_(pool),
      symbols_(symbols),
      snapshot_(std::move(keepalive)) {
  flat_.reserve(result.answers.size() * arity_);
  for (const std::vector<SeqId>& row : result.answers) {
    flat_.insert(flat_.end(), row.begin(), row.end());
  }
}

std::vector<std::vector<std::string>> ResultSet::Materialize() const {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(size());
  for (Row row : *this) rows.push_back(row.Render());
  std::sort(rows.begin(), rows.end());
  return rows;
}

}  // namespace seqlog
