// seqlog: the public facade.
//
// Engine bundles a symbol table, sequence pool, predicate catalog,
// transducer registry, database and evaluator behind one object:
//
//   seqlog::Engine engine;
//   engine.LoadProgram("suffix(X[N:end]) :- r(X).");
//   engine.AddFact("r", {"acgt"});
//   auto outcome = engine.Evaluate();
//   auto rows = engine.Query("suffix");
//
// Repeated goal-directed queries use the prepared/snapshot API
// (core/prepared_query.h, core/snapshot.h, core/result_set.h):
//
//   auto pq = engine.Prepare("?- suffix($1).");
//   Snapshot snap = engine.PublishSnapshot();
//   pq->Bind(1, "acgt");
//   ResultSet rs = pq->Execute(snap);   // thread-safe, cursor results
//
// Transducer Datalog programs additionally register machines:
//
//   engine.RegisterTransducer(transducer::MakeSquare("square").value());
//   engine.LoadProgram("sq(@square(X)) :- r(X).");
#ifndef SEQLOG_CORE_ENGINE_H_
#define SEQLOG_CORE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/lint.h"
#include "analysis/safety.h"
#include "ast/clause.h"
#include "base/result.h"
#include "core/prepared_query.h"
#include "core/result_set.h"
#include "core/snapshot.h"
#include "eval/engine.h"
#include "eval/function_registry.h"
#include "ivm/incremental_model.h"
#include "ivm/ingest_queue.h"
#include "parser/parser.h"
#include "query/solver.h"
#include "sequence/domain.h"
#include "sequence/sequence_pool.h"
#include "sequence/symbol_table.h"
#include "storage/database.h"

namespace seqlog {

/// One query result row: rendered sequences (Render semantics: single
/// character symbols concatenated, longer names in <...>).
using RenderedRow = std::vector<std::string>;

/// Result of a goal-directed Solve: status, rendered answer tuples
/// (sorted), and the demand-evaluation counters.
/// [[deprecated]] — compatibility shape; prefer the ResultSet cursor
/// returned by PreparedQuery::Execute.
struct SolveOutcome {
  Status status;
  std::vector<RenderedRow> answers;
  query::SolveStats stats;
};

class Engine {
 public:
  Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  SymbolTable* symbols() { return &symbols_; }
  SequencePool* pool() { return &pool_; }
  Catalog* catalog() { return &catalog_; }
  eval::FunctionRegistry* registry() { return &registry_; }

  /// Registers a machine (or network) for @name(...) terms. Must be
  /// called before LoadProgram of a program using the name.
  Status RegisterTransducer(std::shared_ptr<const SequenceFunction> fn);

  /// Parses, validates and compiles a program (replacing any previous
  /// one). Prepared queries created against the previous program keep
  /// answering over it; re-Prepare them.
  Status LoadProgram(std::string_view text);
  /// Same from an already-built AST.
  Status LoadProgramAst(const ast::Program& program);

  const ast::Program& program() const { return program_; }

  /// Lint findings accumulated by the last successful LoadProgram
  /// (body-only predicates are treated as extensional, since AddFact may
  /// populate them after the load). Errors never appear here — programs
  /// with lint errors still fail LoadProgram through ast::Validate.
  const analysis::DiagnosticReport& diagnostics() const {
    return diagnostics_;
  }

  /// Adds a database fact; each argument string is interned one symbol
  /// per character (use AddFactIds for multi-character symbols). After a
  /// fixpoint exists (Evaluate ran), the fact is additionally staged on
  /// the ingest queue as a pending delta: the model is NOT invalidated —
  /// DrainIngest re-saturates it incrementally.
  Status AddFact(std::string_view predicate,
                 const std::vector<std::string>& args);
  Status AddFactIds(std::string_view predicate, std::vector<SeqId> args);
  /// Drops all database facts (the program stays loaded). Published
  /// snapshots are unaffected (they own their copy). Retractions cannot
  /// be re-saturated (deltas are insert-only), so a live model is
  /// invalidated and the next DrainIngest recomputes cold, flagging
  /// EvalStats::cold_fallback.
  void ClearFacts();
  const Database& edb() const { return *edb_; }

  // ------------------------------------------------------------------
  // Live ingest (src/ivm/): writers stage, one consumer re-saturates.
  // ------------------------------------------------------------------

  /// Stages a fact on the ingest queue WITHOUT touching the EDB — safe
  /// from any thread concurrently with snapshot readers (interning is
  /// shared_mutex-guarded; the queue is MPSC), which is how serve
  /// sessions handle FACT/INGEST without the engine mutex. The fact
  /// reaches the EDB and the model at the next DrainIngest.
  /// kResourceExhausted when the queue is full (backpressure).
  Status EnqueueFact(std::string_view predicate,
                     const std::vector<std::string>& args);
  Status EnqueueFactIds(std::string_view predicate,
                        std::vector<SeqId> args);

  /// Drains the ingest queue: inserts every staged fact into the EDB,
  /// then brings the model back to the fixpoint — incrementally via
  /// ivm::IncrementalModel::Apply when a live model exists, cold (with
  /// EvalStats::cold_fallback set) after ClearFacts or queue overflow.
  /// Single-consumer: call from one thread at a time (the Republisher
  /// thread in serve), never concurrently with other Engine mutations.
  eval::EvalOutcome DrainIngest(const eval::EvalOptions& options = {});

  ivm::IngestQueue* ingest_queue() { return &ingest_; }
  const ivm::IncrementalModel& live_model() const { return live_model_; }

  // ------------------------------------------------------------------
  // Prepared queries & snapshots — the execute-many query surface.
  // Object lifetimes: Engine ⊃ PreparedQuery, Engine ⊃ Snapshot ⊃
  // ResultSet (see src/core/README.md).
  // ------------------------------------------------------------------

  /// Parses `goal` (which may contain `$N` parameters, e.g.
  /// "?- suffix($1).") once, runs adornment + magic rewrite once, and
  /// compiles the rewrite once. The returned query's Execute answers the
  /// goal over the live EDB or any snapshot with zero parsing and zero
  /// rewriting per call; Bind swaps parameter values (= the magic seed
  /// fact) between calls. Errors: kInvalidArgument (syntax, arity,
  /// parameter misuse), kNotFound (unknown extensional predicate),
  /// kFailedPrecondition (goal not demand-evaluable, see query/solver.h).
  Result<PreparedQuery> Prepare(std::string_view goal);

  /// Publishes an immutable snapshot of the current EDB
  /// (copy-on-publish: deep copy now; republishing an unchanged EDB
  /// reuses the previous copy). Concurrent readers Execute against the
  /// snapshot while this engine keeps accepting AddFact.
  Snapshot PublishSnapshot();

  /// Static analysis of the loaded program (Definitions 8-10).
  analysis::SafetyReport AnalyzeSafety() const;

  /// Computes the least fixpoint over the current database (staged
  /// ingest-queue facts are flushed into the EDB first). The model is
  /// kept — paired with its extended active domain — for Query and for
  /// incremental DrainIngest until the next Evaluate/LoadProgram.
  eval::EvalOutcome Evaluate(const eval::EvalOptions& options = {});

  /// Answers one goal, e.g. `?- suffix(acgt).` or `?- rnaseq(X, Y).`,
  /// by demand (magic-set) evaluation: only goal-relevant facts are
  /// derived, never the full model. Each goal argument is a ground term
  /// or a plain variable; repeated variables join. Does not touch the
  /// model computed by Evaluate; no prior Evaluate is needed.
  /// [[deprecated]] — compatibility wrapper that re-prepares on every
  /// call and eagerly renders+sorts all answers; for repeated goals use
  /// Prepare + Execute.
  SolveOutcome Solve(std::string_view goal,
                     const query::SolveOptions& options = {});

  /// The computed interpretation (null before Evaluate).
  const Database* model() const { return live_model_.model(); }

  /// All tuples of `predicate` in the computed model, rendered; rows are
  /// sorted for deterministic comparison. kFailedPrecondition before the
  /// first Evaluate.
  /// [[deprecated]] — eager materialization; prefer Prepare + Execute
  /// (cursor results) for point queries.
  Result<std::vector<RenderedRow>> Query(std::string_view predicate) const;
  /// Raw SeqId rows.
  Result<std::vector<std::vector<SeqId>>> QueryIds(
      std::string_view predicate) const;

  /// Renders one pool sequence (convenience for tests/examples).
  std::string Render(SeqId id) const { return pool_.Render(id, symbols_); }

 private:
  SymbolTable symbols_;
  SequencePool pool_;
  Catalog catalog_;
  eval::FunctionRegistry registry_;
  std::unique_ptr<Database> edb_;
  ast::Program program_;
  analysis::DiagnosticReport diagnostics_;
  std::unique_ptr<eval::Evaluator> evaluator_;
  /// The saturated model + domain pair (replaces the old bare model_);
  /// declared after evaluator_ — the constructor wires them in order.
  ivm::IncrementalModel live_model_;
  /// Staged post-fixpoint insertions awaiting DrainIngest.
  ivm::IngestQueue ingest_;
  /// Set when the live model can no longer be extended incrementally
  /// (ClearFacts retraction, ingest-queue overflow, failed Apply): the
  /// next DrainIngest recomputes cold and flags EvalStats::cold_fallback.
  bool ivm_cold_pending_ = false;
  bool program_loaded_ = false;
  /// Bumped on every EDB mutation; drives snapshot copy-on-publish.
  uint64_t edb_version_ = 0;
  /// Cache of the most recent publication (reused while unchanged). The
  /// domain closure is incremental: per-relation row watermarks mark the
  /// rows already closed at the previous publish (facts are append-only;
  /// ClearFacts resets all three).
  std::shared_ptr<const Database> published_;
  std::shared_ptr<const ExtendedDomain> published_domain_;
  std::vector<uint32_t> published_row_watermark_;
  uint64_t published_version_ = 0;
};

}  // namespace seqlog

#endif  // SEQLOG_CORE_ENGINE_H_
