// seqlog: the public facade.
//
// Engine bundles a symbol table, sequence pool, predicate catalog,
// transducer registry, database and evaluator behind one object:
//
//   seqlog::Engine engine;
//   engine.LoadProgram("suffix(X[N:end]) :- r(X).");
//   engine.AddFact("r", {"acgt"});
//   auto outcome = engine.Evaluate();
//   auto rows = engine.Query("suffix");
//
// Transducer Datalog programs additionally register machines:
//
//   engine.RegisterTransducer(transducer::MakeSquare("square").value());
//   engine.LoadProgram("sq(@square(X)) :- r(X).");
#ifndef SEQLOG_CORE_ENGINE_H_
#define SEQLOG_CORE_ENGINE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/safety.h"
#include "ast/clause.h"
#include "base/result.h"
#include "eval/engine.h"
#include "eval/function_registry.h"
#include "parser/parser.h"
#include "query/solver.h"
#include "sequence/domain.h"
#include "sequence/sequence_pool.h"
#include "sequence/symbol_table.h"
#include "storage/database.h"

namespace seqlog {

/// One query result row: rendered sequences (Render semantics: single
/// character symbols concatenated, longer names in <...>).
using RenderedRow = std::vector<std::string>;

/// Result of a goal-directed Solve: status, rendered answer tuples
/// (sorted), and the demand-evaluation counters.
struct SolveOutcome {
  Status status;
  std::vector<RenderedRow> answers;
  query::SolveStats stats;
};

class Engine {
 public:
  Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  SymbolTable* symbols() { return &symbols_; }
  SequencePool* pool() { return &pool_; }
  Catalog* catalog() { return &catalog_; }
  eval::FunctionRegistry* registry() { return &registry_; }

  /// Registers a machine (or network) for @name(...) terms. Must be
  /// called before LoadProgram of a program using the name.
  Status RegisterTransducer(std::shared_ptr<const SequenceFunction> fn);

  /// Parses, validates and compiles a program (replacing any previous
  /// one).
  Status LoadProgram(std::string_view text);
  /// Same from an already-built AST.
  Status LoadProgramAst(const ast::Program& program);

  const ast::Program& program() const { return program_; }

  /// Adds a database fact; each argument string is interned one symbol
  /// per character (use AddFactIds for multi-character symbols).
  Status AddFact(std::string_view predicate,
                 const std::vector<std::string>& args);
  Status AddFactIds(std::string_view predicate, std::vector<SeqId> args);
  /// Drops all database facts (the program stays loaded).
  void ClearFacts();
  const Database& edb() const { return *edb_; }

  /// Static analysis of the loaded program (Definitions 8-10).
  analysis::SafetyReport AnalyzeSafety() const;

  /// Computes the least fixpoint over the current database. The model is
  /// kept for Query until the next Evaluate/LoadProgram.
  eval::EvalOutcome Evaluate(const eval::EvalOptions& options = {});

  /// Answers one goal, e.g. `?- suffix(acgt).` or `?- rnaseq(X, Y).`,
  /// by demand (magic-set) evaluation: only goal-relevant facts are
  /// derived, never the full model. Each goal argument is a ground term
  /// or a plain variable; repeated variables join. Does not touch the
  /// model computed by Evaluate; no prior Evaluate is needed.
  SolveOutcome Solve(std::string_view goal,
                     const query::SolveOptions& options = {});

  /// The computed interpretation (null before Evaluate).
  const Database* model() const { return model_.get(); }

  /// All tuples of `predicate` in the computed model, rendered; rows are
  /// sorted for deterministic comparison.
  Result<std::vector<RenderedRow>> Query(std::string_view predicate) const;
  /// Raw SeqId rows.
  Result<std::vector<std::vector<SeqId>>> QueryIds(
      std::string_view predicate) const;

  /// Renders one pool sequence (convenience for tests/examples).
  std::string Render(SeqId id) const { return pool_.Render(id, symbols_); }

 private:
  SymbolTable symbols_;
  SequencePool pool_;
  Catalog catalog_;
  eval::FunctionRegistry registry_;
  std::unique_ptr<Database> edb_;
  std::unique_ptr<Database> model_;
  ast::Program program_;
  std::unique_ptr<eval::Evaluator> evaluator_;
  bool program_loaded_ = false;
};

}  // namespace seqlog

#endif  // SEQLOG_CORE_ENGINE_H_
