#include "core/prepared_query.h"

#include <atomic>
#include <optional>
#include <utility>
#include <vector>

#include "base/string_util.h"
#include "core/engine.h"

namespace seqlog {

struct PreparedQuery::Impl {
  Impl(Engine* engine_in, std::string goal_text_in,
       query::PreparedGoal prepared_in,
       std::vector<analysis::Diagnostic> warnings_in)
      : engine(engine_in),
        solver(engine_in->catalog(), engine_in->pool(),
               engine_in->registry()),
        goal_text(std::move(goal_text_in)),
        prepared(std::move(prepared_in)),
        warnings(std::move(warnings_in)),
        bound(prepared.param_count) {
    goal_parses = 1;
    magic_rewrites = prepared.edb ? 0 : 1;
    plan_compilations = prepared.edb ? 0 : 1;
  }

  Engine* engine;
  query::Solver solver;
  std::string goal_text;
  query::PreparedGoal prepared;
  std::vector<analysis::Diagnostic> warnings;
  std::vector<std::optional<SeqId>> bound;
  size_t goal_parses = 0;
  size_t magic_rewrites = 0;
  size_t plan_compilations = 0;
  mutable std::atomic<uint64_t> executions{0};
};

PreparedQuery::PreparedQuery(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}

PreparedQuery PreparedQuery::Create(
    Engine* engine, std::string goal_text, query::PreparedGoal prepared,
    std::vector<analysis::Diagnostic> warnings) {
  return PreparedQuery(std::make_unique<Impl>(engine, std::move(goal_text),
                                              std::move(prepared),
                                              std::move(warnings)));
}
PreparedQuery::PreparedQuery(PreparedQuery&&) noexcept = default;
PreparedQuery& PreparedQuery::operator=(PreparedQuery&&) noexcept = default;
PreparedQuery::~PreparedQuery() = default;

const std::string& PreparedQuery::goal() const { return impl_->goal_text; }

size_t PreparedQuery::param_count() const {
  return impl_->prepared.param_count;
}

const query::Adornment& PreparedQuery::goal_adornment() const {
  return impl_->prepared.goal_adornment;
}

const std::vector<analysis::Diagnostic>& PreparedQuery::warnings() const {
  return impl_->warnings;
}

Status PreparedQuery::Bind(size_t param, std::string_view value) {
  if (param == 0 || param > impl_->prepared.param_count) {
    return Status::OutOfRange(
        StrCat("no parameter $", param, " in goal '", impl_->goal_text,
               "' (", impl_->prepared.param_count, " parameter(s))"));
  }
  impl_->bound[param - 1] =
      impl_->engine->pool()->FromChars(value, impl_->engine->symbols());
  return Status::Ok();
}

Status PreparedQuery::BindId(size_t param, SeqId value) {
  if (param == 0 || param > impl_->prepared.param_count) {
    return Status::OutOfRange(
        StrCat("no parameter $", param, " in goal '", impl_->goal_text,
               "' (", impl_->prepared.param_count, " parameter(s))"));
  }
  impl_->bound[param - 1] = value;
  return Status::Ok();
}

ResultSet PreparedQuery::Execute(const query::SolveOptions& options) const {
  query::SolveResult result = impl_->solver.Execute(
      impl_->prepared, impl_->engine->edb(), impl_->bound, options);
  impl_->executions.fetch_add(1, std::memory_order_relaxed);
  return ResultSet(std::move(result), impl_->prepared.goal.args.size(),
                   impl_->engine->pool(), impl_->engine->symbols(),
                   /*keepalive=*/nullptr);
}

ResultSet PreparedQuery::Execute(const Snapshot& snapshot,
                                 const query::SolveOptions& options) const {
  if (!snapshot.valid()) {
    return ResultSet(
        Status::InvalidArgument("invalid snapshot (default-constructed?)"));
  }
  query::SolveResult result =
      impl_->solver.Execute(impl_->prepared, snapshot.db(), impl_->bound,
                            options, snapshot.domain_base());
  impl_->executions.fetch_add(1, std::memory_order_relaxed);
  return ResultSet(std::move(result), impl_->prepared.goal.args.size(),
                   impl_->engine->pool(), impl_->engine->symbols(),
                   snapshot.shared());
}

ResultSet PreparedQuery::ExecuteWith(
    const Snapshot& snapshot,
    const std::vector<std::optional<SeqId>>& params,
    const query::SolveOptions& options) const {
  if (!snapshot.valid()) {
    return ResultSet(
        Status::InvalidArgument("invalid snapshot (default-constructed?)"));
  }
  query::SolveResult result = impl_->solver.Execute(
      impl_->prepared, snapshot.db(), params, options,
      snapshot.domain_base());
  impl_->executions.fetch_add(1, std::memory_order_relaxed);
  return ResultSet(std::move(result), impl_->prepared.goal.args.size(),
                   impl_->engine->pool(), impl_->engine->symbols(),
                   snapshot.shared());
}

const query::PreparedGoal& PreparedQuery::prepared_goal() const {
  return impl_->prepared;
}

Engine* PreparedQuery::engine() const { return impl_->engine; }

PreparedQueryStats PreparedQuery::stats() const {
  PreparedQueryStats stats;
  stats.goal_parses = impl_->goal_parses;
  stats.magic_rewrites = impl_->magic_rewrites;
  stats.plan_compilations = impl_->plan_compilations;
  stats.executions = impl_->executions.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace seqlog
