// seqlog: cursor-style query results.
//
// ResultSet is the answer container of the prepared/snapshot query API
// (core/prepared_query.h): raw SeqId tuples plus the solve status and
// stats, with *on-demand* rendering — nothing is stringified until a
// caller asks for a Value. This replaces the eager
// sort-and-render-everything materialization of the legacy
// Engine::Solve/Query surface on the hot path; Materialize() recovers
// the legacy behaviour (rendered rows, lexicographically sorted) for
// display and tests.
//
// Lifetimes (Engine ⊃ Snapshot ⊃ ResultSet): a ResultSet borrows the
// engine's pool and symbol table for rendering and pins the snapshot it
// was computed from, so it must not outlive the Engine — but it may
// outlive the Snapshot object it was executed against (the underlying
// database is shared_ptr-owned). Rows and Values borrow from their
// ResultSet and must not outlive it.
//
// Thread-safety: a ResultSet is immutable after construction; concurrent
// reads (iteration, rendering) are safe.
#ifndef SEQLOG_CORE_RESULT_SET_H_
#define SEQLOG_CORE_RESULT_SET_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "query/solver.h"
#include "sequence/sequence_pool.h"
#include "sequence/symbol_table.h"
#include "storage/database.h"

namespace seqlog {

class ResultSet;
class Row;
namespace serve {
class BatchExecutor;
}  // namespace serve

/// One answer cell: an interned sequence, rendered only on request.
class Value {
 public:
  SeqId id() const { return id_; }
  /// Number of symbols in the sequence.
  size_t Length() const;
  /// Renders via the engine's symbol table (Render semantics: single
  /// character symbols concatenated, longer names in <...>).
  std::string Render() const;

 private:
  friend class Row;
  Value(SeqId id, const SequencePool* pool, const SymbolTable* symbols)
      : id_(id), pool_(pool), symbols_(symbols) {}

  SeqId id_;
  const SequencePool* pool_;
  const SymbolTable* symbols_;
};

/// One answer tuple; a lightweight view into its ResultSet.
class Row {
 public:
  size_t size() const;
  Value value(size_t j) const;
  Value operator[](size_t j) const { return value(j); }
  /// The raw interned tuple.
  TupleView ids() const;
  /// Renders every cell (convenience for display paths).
  std::vector<std::string> Render() const;

 private:
  friend class ResultSet;
  Row(const ResultSet* set, size_t index) : set_(set), index_(index) {}

  const ResultSet* set_;
  size_t index_;
};

/// The answers of one Execute/Solve: status + stats + raw tuples.
class ResultSet {
 public:
  /// An empty, OK result (arity 0, no rows).
  ResultSet() = default;

  ResultSet(ResultSet&&) = default;
  ResultSet& operator=(ResultSet&&) = default;
  ResultSet(const ResultSet&) = default;
  ResultSet& operator=(const ResultSet&) = default;

  /// Status of the solve that produced this set. On budget exhaustion
  /// (kResourceExhausted) the rows derived so far are kept.
  const Status& status() const { return status_; }
  bool ok() const { return status_.ok(); }
  /// Demand-evaluation counters of the producing Execute call.
  const query::SolveStats& stats() const { return stats_; }

  /// Number of answer rows. Nullary goals (arity 0) have one empty row
  /// when the goal holds, so the count is tracked, not derived.
  size_t size() const { return rows_; }
  bool empty() const { return rows_ == 0; }
  size_t arity() const { return arity_; }

  Row row(size_t i) const { return Row(this, i); }
  Row operator[](size_t i) const { return Row(this, i); }
  /// Raw interned tuple of row `i`.
  TupleView ids(size_t i) const {
    return TupleView(flat_.data() + i * arity_, arity_);
  }

  /// Forward iteration over Rows (enables range-for).
  class const_iterator {
   public:
    using value_type = Row;
    using difference_type = std::ptrdiff_t;

    Row operator*() const { return Row(set_, index_); }
    const_iterator& operator++() {
      ++index_;
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator old = *this;
      ++index_;
      return old;
    }
    bool operator==(const const_iterator& o) const {
      return set_ == o.set_ && index_ == o.index_;
    }
    bool operator!=(const const_iterator& o) const { return !(*this == o); }

   private:
    friend class ResultSet;
    const_iterator(const ResultSet* set, size_t index)
        : set_(set), index_(index) {}
    const ResultSet* set_;
    size_t index_;
  };
  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, size()); }

  /// Legacy materialization: every row rendered, rows sorted
  /// lexicographically — exactly the shape of SolveOutcome::answers and
  /// Engine::Query. Costs one string per cell; prefer the cursor on hot
  /// paths.
  std::vector<std::vector<std::string>> Materialize() const;

 private:
  friend class Engine;
  friend class PreparedQuery;
  friend class Row;
  friend class Value;
  /// The batch tier materializes one ResultSet per batch item
  /// (serve/batch_executor.h).
  friend class serve::BatchExecutor;

  /// Takes ownership of the solve result's tuples; `keepalive` pins the
  /// snapshot the result was computed from (may be null for live-EDB
  /// executions).
  ResultSet(query::SolveResult result, size_t arity,
            const SequencePool* pool, const SymbolTable* symbols,
            std::shared_ptr<const Database> keepalive);
  /// An error result with no rows.
  explicit ResultSet(Status status) : status_(std::move(status)) {}

  Status status_;
  query::SolveStats stats_;
  size_t arity_ = 0;
  size_t rows_ = 0;
  std::vector<SeqId> flat_;  ///< row-major answer tuples
  const SequencePool* pool_ = nullptr;
  const SymbolTable* symbols_ = nullptr;
  std::shared_ptr<const Database> snapshot_;  ///< keep-alive
};

}  // namespace seqlog

#endif  // SEQLOG_CORE_RESULT_SET_H_
