#include "ivm/republisher.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace seqlog {
namespace ivm {

Republisher::Republisher(Engine* engine, RepublisherOptions options,
                         PublishHook hook)
    : engine_(engine),
      options_(options),
      hook_(std::move(hook)),
      queue_(engine->ingest_queue()) {}

Republisher::~Republisher() { Stop(); }

void Republisher::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (running_) return;
    running_ = true;
    stop_ = false;
  }
  thread_ = std::thread([this] { Loop(); });
}

void Republisher::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_ = true;
  }
  queue_->Wake();
  if (thread_.joinable()) thread_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    running_ = false;
  }
  cv_.notify_all();
}

Status Republisher::ForcePublish() {
  uint64_t target;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_ || stop_) {
      return Status::FailedPrecondition("republisher is not running");
    }
    target = ++force_seq_;
  }
  queue_->Wake();
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return done_seq_ >= target || !running_; });
  if (done_seq_ < target) {
    return Status::FailedPrecondition("republisher stopped while waiting");
  }
  return last_status_;
}

bool Republisher::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

IngestStats Republisher::stats() const {
  IngestStats s;
  s.ingested_facts = ingested_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.resaturate_rounds = rounds_.load(std::memory_order_relaxed);
  s.resaturate_millis =
      static_cast<double>(resaturate_micros_.load(std::memory_order_relaxed)) /
      1000.0;
  s.publishes = publishes_.load(std::memory_order_relaxed);
  s.cold_fallbacks = cold_fallbacks_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  s.last_version = last_version_.load(std::memory_order_relaxed);
  return s;
}

double Republisher::SnapshotStalenessMillis() const {
  return queue_->OldestPendingMillis();
}

void Republisher::Loop() {
  const auto cadence = std::chrono::milliseconds(
      options_.cadence_ms == 0 ? 1 : options_.cadence_ms);
  const size_t threshold = std::max<size_t>(options_.drain_threshold, 1);
  for (;;) {
    bool stopping;
    bool forced;
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping = stop_;
      forced = force_seq_ > done_seq_;
    }
    if (stopping) break;
    const size_t depth = queue_->depth();
    const double age_ms = queue_->OldestPendingMillis();
    if (forced || depth >= threshold ||
        (depth > 0 && age_ms >= static_cast<double>(cadence.count()))) {
      DrainAndPublish();
      continue;
    }
    // Sleep until the oldest staged fact would turn cadence-old; a
    // push past the threshold, a force request or Stop wakes us early.
    auto timeout = cadence;
    if (depth > 0) {
      auto remaining = cadence - std::chrono::milliseconds(
                                     static_cast<int64_t>(age_ms));
      timeout = std::max(remaining, std::chrono::milliseconds(1));
    }
    queue_->WaitForWork(threshold, timeout);
  }
  // Final drain: staged facts must not be stranded by shutdown.
  DrainAndPublish();
}

void Republisher::DrainAndPublish() {
  uint64_t target;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Force requests issued before the drain starts are satisfied by
    // it (the drain empties the whole queue); later requests trigger
    // another cycle.
    target = force_seq_;
  }
  eval::EvalOutcome outcome = engine_->DrainIngest(options_.eval);
  ingested_.fetch_add(outcome.stats.ingested_facts,
                      std::memory_order_relaxed);
  batches_.fetch_add(1, std::memory_order_relaxed);
  rounds_.fetch_add(outcome.stats.resaturate_rounds,
                    std::memory_order_relaxed);
  resaturate_micros_.fetch_add(
      static_cast<uint64_t>(outcome.stats.resaturate_millis * 1000.0),
      std::memory_order_relaxed);
  if (outcome.stats.cold_fallback) {
    cold_fallbacks_.fetch_add(1, std::memory_order_relaxed);
  }
  if (outcome.status.ok()) {
    Snapshot snapshot = engine_->PublishSnapshot();
    last_version_.store(snapshot.version(), std::memory_order_relaxed);
    if (hook_) hook_(snapshot);
    publishes_.fetch_add(1, std::memory_order_relaxed);
  } else {
    errors_.fetch_add(1, std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    done_seq_ = std::max(done_seq_, target);
    last_status_ = outcome.status;
  }
  cv_.notify_all();
}

}  // namespace ivm
}  // namespace seqlog
