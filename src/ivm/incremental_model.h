// seqlog: a saturated model maintained under insert-only deltas.
//
// IncrementalModel pairs an evaluated Database with the ExtendedDomain
// of the run that produced it — the pairing Evaluator::Resaturate needs
// and the one thing a cold Engine::Evaluate used to throw away. Build
// runs the cold fixpoint and keeps both; Apply seeds a batch of new
// facts as a round-0 delta and re-runs the semi-naive rounds in place,
// which is sound for insert-only deltas because the T-operator is
// monotone (lfp(D u B) is reachable by saturating from lfp(D) u B).
// Retractions are NOT expressible as deltas — callers Invalidate and
// Build cold instead (Engine::ClearFacts does, flagging
// EvalStats::cold_fallback).
//
// Concurrency contract (docs/CONCURRENCY.md): single-writer, like the
// Database it wraps. One thread at a time may call
// Build/Apply/Invalidate; model() readers must not overlap a writer.
// The live-ingest pipeline guarantees this by funnelling every mutation
// through the Republisher thread; readers see the model only through
// published snapshots.
#ifndef SEQLOG_IVM_INCREMENTAL_MODEL_H_
#define SEQLOG_IVM_INCREMENTAL_MODEL_H_

#include <memory>

#include "eval/engine.h"
#include "sequence/domain.h"
#include "storage/database.h"

namespace seqlog {
namespace ivm {

class IncrementalModel {
 public:
  /// `evaluator` and `catalog` must outlive this object (Engine owns all
  /// three).
  IncrementalModel(const eval::Evaluator* evaluator, Catalog* catalog)
      : evaluator_(evaluator), catalog_(catalog) {}

  /// Cold fixpoint over `edb`; replaces any previous model and retains
  /// the run's domain for later Apply calls. On a budget error the
  /// partial model is kept for inspection (model() returns it) but the
  /// pair is not Apply-able: built() stays false.
  eval::EvalOutcome Build(const Database& edb,
                          const eval::EvalOptions& options);

  /// Incremental re-saturation: seeds the atoms of `batch` (duplicates
  /// dropped) as a round-0 delta and re-runs the semi-naive rounds until
  /// the new fixpoint — identical to a cold Build over the union,
  /// without re-deriving the old model. kFailedPrecondition unless
  /// built(). On error the model is poisoned (partially extended) and
  /// built() drops to false; rebuild cold.
  eval::EvalOutcome Apply(const Database& batch,
                          const eval::EvalOptions& options);

  /// Drops the model and domain (program change, retraction).
  void Invalidate();

  /// True when model() and the domain form a valid saturated pair that
  /// Apply may extend.
  bool built() const { return built_; }

  /// The computed interpretation, or null before the first Build /
  /// after Invalidate. Non-null after a failed Build (partial results,
  /// same contract as Engine::Evaluate always had).
  const Database* model() const { return model_.get(); }

  /// The paired extended active domain (null whenever !built()).
  const ExtendedDomain* domain() const {
    return built_ ? domain_.get() : nullptr;
  }

 private:
  const eval::Evaluator* evaluator_;
  Catalog* catalog_;
  std::unique_ptr<Database> model_;
  std::unique_ptr<ExtendedDomain> domain_;
  bool built_ = false;
};

}  // namespace ivm
}  // namespace seqlog

#endif  // SEQLOG_IVM_INCREMENTAL_MODEL_H_
