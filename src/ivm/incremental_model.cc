#include "ivm/incremental_model.h"

namespace seqlog {
namespace ivm {

eval::EvalOutcome IncrementalModel::Build(const Database& edb,
                                          const eval::EvalOptions& options) {
  model_ = std::make_unique<Database>(catalog_);
  domain_.reset();
  eval::EvalOutcome outcome = evaluator_->Evaluate(
      edb, /*extra_facts=*/nullptr, /*base_domain=*/nullptr, options,
      model_.get(), &domain_);
  built_ = outcome.status.ok() && domain_ != nullptr;
  return outcome;
}

eval::EvalOutcome IncrementalModel::Apply(const Database& batch,
                                          const eval::EvalOptions& options) {
  eval::EvalOutcome outcome;
  if (!built_) {
    outcome.status = Status::FailedPrecondition(
        "no saturated model to extend; Build first");
    return outcome;
  }
  outcome = evaluator_->Resaturate(model_.get(), domain_.get(), batch,
                                   options);
  // A failed resaturation leaves the model between two fixpoints —
  // a state no future delta can repair incrementally.
  if (!outcome.status.ok()) built_ = false;
  return outcome;
}

void IncrementalModel::Invalidate() {
  model_.reset();
  domain_.reset();
  built_ = false;
}

}  // namespace ivm
}  // namespace seqlog
