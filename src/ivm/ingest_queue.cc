#include "ivm/ingest_queue.h"

#include <utility>

namespace seqlog {
namespace ivm {

IngestQueue::IngestQueue(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

Status IngestQueue::TryPush(PendingFact fact) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return Status::FailedPrecondition("ingest queue is closed");
    }
    if (items_.size() >= capacity_) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return Status::ResourceExhausted("ingest queue is full");
    }
    if (items_.empty()) oldest_ = std::chrono::steady_clock::now();
    items_.push_back(std::move(fact));
    depth_.store(items_.size(), std::memory_order_relaxed);
    enqueued_.fetch_add(1, std::memory_order_relaxed);
  }
  cv_.notify_all();
  return Status::Ok();
}

size_t IngestQueue::DrainTo(std::vector<PendingFact>* out) {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t n = items_.size();
  out->reserve(out->size() + n);
  for (PendingFact& fact : items_) out->push_back(std::move(fact));
  items_.clear();
  depth_.store(0, std::memory_order_relaxed);
  return n;
}

size_t IngestQueue::WaitForWork(size_t threshold,
                                std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  const uint64_t seq = wake_seq_;
  cv_.wait_for(lock, timeout, [&] {
    return closed_ || wake_seq_ != seq ||
           (threshold > 0 && items_.size() >= threshold);
  });
  return items_.size();
}

void IngestQueue::Wake() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++wake_seq_;
  }
  cv_.notify_all();
}

void IngestQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    ++wake_seq_;
  }
  cv_.notify_all();
}

bool IngestQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

double IngestQueue::OldestPendingMillis() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (items_.empty()) return 0;
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - oldest_)
      .count();
}

}  // namespace ivm
}  // namespace seqlog
