// seqlog: the single consumer of the ingest queue.
//
// Republisher owns a background thread that turns staged writes into
// visible reads: it drains Engine's IngestQueue when a batch threshold
// or a cadence deadline is hit, re-saturates the model incrementally
// (Engine::DrainIngest -> IncrementalModel::Apply), and atomically
// republishes a snapshot through a caller-supplied hook. Readers never
// block on writes — they keep executing against the previous snapshot
// until the hook swaps in the next one — and writers never block on
// evaluation: they stage and return.
//
// Staleness model (docs/STREAMING.md): a fact staged at time t is
// visible to readers no later than t + cadence + one resaturation. The
// queue's oldest-pending age is the live bound and is exported as
// snapshot staleness.
//
// Concurrency contract (docs/CONCURRENCY.md): the Republisher thread is
// the engine's only mutator while running — callers must not AddFact /
// Evaluate / ClearFacts concurrently (EnqueueFact and snapshot reads
// are safe from anywhere). Start/Stop from one controlling thread;
// ForcePublish and stats() from any thread.
#ifndef SEQLOG_IVM_REPUBLISHER_H_
#define SEQLOG_IVM_REPUBLISHER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>

#include "core/engine.h"
#include "core/snapshot.h"
#include "eval/engine.h"

namespace seqlog {
namespace ivm {

struct RepublisherOptions {
  /// Publish at least this often while facts are pending: the oldest
  /// staged fact never waits longer than this before a drain starts.
  uint64_t cadence_ms = 25;
  /// Drain early once this many facts are staged (>= 1).
  size_t drain_threshold = 256;
  /// Evaluation options for the resaturation runs.
  eval::EvalOptions eval;
};

/// Monotonic counters, sampled lock-free by STATS.
struct IngestStats {
  uint64_t ingested_facts = 0;    ///< facts drained into the model
  uint64_t batches = 0;           ///< drain cycles run
  uint64_t resaturate_rounds = 0; ///< fixpoint rounds across all drains
  double resaturate_millis = 0;   ///< wall-clock across all drains
  uint64_t publishes = 0;         ///< snapshots handed to the hook
  uint64_t cold_fallbacks = 0;    ///< drains that recomputed cold
  uint64_t errors = 0;            ///< drains that failed (budget, arity)
  uint64_t last_version = 0;      ///< EDB version of the last publish
};

class Republisher {
 public:
  /// Called on the Republisher thread after every successful drain with
  /// the freshly published snapshot; the serve tier swaps its current_
  /// here. Must be cheap and must not call back into the Republisher.
  using PublishHook = std::function<void(const Snapshot&)>;

  Republisher(Engine* engine, RepublisherOptions options, PublishHook hook);
  ~Republisher();

  Republisher(const Republisher&) = delete;
  Republisher& operator=(const Republisher&) = delete;

  /// Spawns the drain loop. The engine must already be evaluated (or
  /// intentionally cold: drains then only feed the EDB/snapshots).
  void Start();

  /// Final drain + publish, then joins the thread. Idempotent.
  void Stop();

  /// Blocks until a drain that started after this call has completed
  /// and its snapshot is published — every fact staged before the call
  /// is visible afterwards. Returns the status of that drain.
  /// kFailedPrecondition when the loop is not running.
  Status ForcePublish();

  bool running() const;
  IngestStats stats() const;
  /// Age of the oldest staged-but-unpublished fact (ms); 0 when fully
  /// drained. The live staleness bound readers are exposed to.
  double SnapshotStalenessMillis() const;

 private:
  void Loop();
  void DrainAndPublish();

  Engine* engine_;
  const RepublisherOptions options_;
  PublishHook hook_;
  IngestQueue* queue_;

  std::thread thread_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool running_ = false;   ///< guarded by mu_
  bool stop_ = false;      ///< guarded by mu_
  uint64_t force_seq_ = 0; ///< force requests issued (guarded by mu_)
  uint64_t done_seq_ = 0;  ///< force requests satisfied (guarded by mu_)
  Status last_status_;     ///< of the most recent drain (guarded by mu_)

  std::atomic<uint64_t> ingested_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> rounds_{0};
  std::atomic<uint64_t> resaturate_micros_{0};
  std::atomic<uint64_t> publishes_{0};
  std::atomic<uint64_t> cold_fallbacks_{0};
  std::atomic<uint64_t> errors_{0};
  std::atomic<uint64_t> last_version_{0};
};

}  // namespace ivm
}  // namespace seqlog

#endif  // SEQLOG_IVM_REPUBLISHER_H_
