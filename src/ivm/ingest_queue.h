// seqlog: bounded MPSC staging buffer for live ingest.
//
// Writers (serve sessions handling FACT/INGEST, Engine::AddFact after a
// fixpoint exists) stage post-fixpoint insertions here instead of taking
// the engine write path inline, so a write never holds the engine mutex
// and never blocks a reader. A single consumer — ivm::Republisher, or
// whoever calls Engine::DrainIngest — drains the queue in FIFO order and
// re-saturates the model with the batch.
//
// Concurrency contract (docs/CONCURRENCY.md): TryPush is safe from any
// number of threads; DrainTo must be called by one consumer at a time
// (the Republisher thread owns it). depth()/enqueued()/rejected() are
// lock-free reads of atomic counters and may be sampled from anywhere;
// OldestPendingMillis takes the queue mutex briefly. Backpressure is a
// kResourceExhausted from TryPush when the buffer is full — writers
// surface it (serve maps it to SL-E102 overloaded) rather than block.
#ifndef SEQLOG_IVM_INGEST_QUEUE_H_
#define SEQLOG_IVM_INGEST_QUEUE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "base/status.h"
#include "sequence/sequence_pool.h"
#include "storage/catalog.h"

namespace seqlog {
namespace ivm {

/// One staged insertion: an interned ground atom. Interning happens on
/// the writer's thread (SequencePool/SymbolTable/Catalog are
/// shared_mutex-guarded), so the consumer never parses text.
struct PendingFact {
  PredId pred = 0;
  std::vector<SeqId> args;
};

class IngestQueue {
 public:
  explicit IngestQueue(size_t capacity = 65536);

  /// Stages one fact. kResourceExhausted when the buffer is full (the
  /// caller decides: reject upstream, or force a drain), and
  /// kFailedPrecondition after Close().
  Status TryPush(PendingFact fact);

  /// Appends every staged fact to `out` in FIFO order and empties the
  /// queue; returns how many were drained. Single consumer only.
  size_t DrainTo(std::vector<PendingFact>* out);

  /// Blocks until depth() >= threshold, Wake()/Close() is called, or
  /// `timeout` elapses; returns the depth observed on return. The
  /// Republisher's cadence loop sleeps here between drains.
  size_t WaitForWork(size_t threshold, std::chrono::milliseconds timeout);

  /// Wakes a WaitForWork sleeper without pushing (force-publish, stop).
  void Wake();

  /// Rejects all further TryPush calls and wakes sleepers. Drains still
  /// work — shutdown is Close(), final DrainTo, final publish.
  void Close();

  size_t capacity() const { return capacity_; }
  size_t depth() const { return depth_.load(std::memory_order_relaxed); }
  uint64_t enqueued() const {
    return enqueued_.load(std::memory_order_relaxed);
  }
  uint64_t rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }
  bool closed() const;

  /// Age of the oldest staged fact in milliseconds; 0 when empty. This
  /// is the snapshot-staleness bound the Republisher reports: nothing a
  /// reader cannot see has been waiting longer than this.
  double OldestPendingMillis() const;

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<PendingFact> items_;
  std::chrono::steady_clock::time_point oldest_;
  uint64_t wake_seq_ = 0;
  bool closed_ = false;
  std::atomic<size_t> depth_{0};
  std::atomic<uint64_t> enqueued_{0};
  std::atomic<uint64_t> rejected_{0};
};

}  // namespace ivm
}  // namespace seqlog

#endif  // SEQLOG_IVM_INGEST_QUEUE_H_
