#include "analysis/safety.h"

#include "base/string_util.h"

namespace seqlog {
namespace analysis {

SafetyReport AnalyzeSafety(const ast::Program& program) {
  SafetyReport report;
  report.graph = DependencyGraph::Build(program);

  report.non_constructive = true;
  for (const ast::Clause& clause : program.clauses) {
    if (clause.IsConstructiveClause()) {
      report.non_constructive = false;
      break;
    }
  }

  std::pair<std::string, std::string> witness;
  bool has_cycle = report.graph.HasConstructiveCycle(&witness);
  report.strongly_safe = !has_cycle;
  if (has_cycle) {
    report.offending_edge = witness;
    report.cycle_path = report.graph.ConstructiveCyclePath();
    // Attribute the cycle to the first constructive clause inducing the
    // witness edge p -> q.
    for (const ast::Clause& clause : program.clauses) {
      if (clause.head.kind != ast::Atom::Kind::kPredicate ||
          clause.head.predicate != witness.first ||
          !clause.IsConstructiveClause()) {
        continue;
      }
      bool mentions_q = false;
      for (const ast::Atom& a : clause.body) {
        if (a.kind == ast::Atom::Kind::kPredicate &&
            a.predicate == witness.second) {
          mentions_q = true;
          break;
        }
      }
      if (mentions_q) {
        report.cycle_loc = clause.loc;
        break;
      }
    }
  }

  // Build strata from the SCC condensation (dependency order).
  auto components = report.graph.StronglyConnectedComponents();
  std::map<std::string, size_t> component_of;
  for (size_t i = 0; i < components.size(); ++i) {
    for (const std::string& p : components[i]) component_of[p] = i;
  }
  report.strata.resize(components.size());
  for (size_t i = 0; i < components.size(); ++i) {
    report.strata[i].predicates = components[i];
  }
  for (size_t ci = 0; ci < program.clauses.size(); ++ci) {
    const ast::Clause& clause = program.clauses[ci];
    if (clause.head.kind != ast::Atom::Kind::kPredicate) continue;
    auto it = component_of.find(clause.head.predicate);
    if (it == component_of.end()) continue;  // unreachable by construction
    Stratum& stratum = report.strata[it->second];
    if (clause.IsConstructiveClause()) {
      stratum.constructive_clauses.push_back(ci);
    } else {
      stratum.nonconstructive_clauses.push_back(ci);
    }
  }
  return report;
}

Result<int> ProgramOrder(const ast::Program& program,
                         const std::map<std::string, int>& orders) {
  int max_order = 0;
  for (const std::string& name : program.MentionedTransducers()) {
    auto it = orders.find(name);
    if (it == orders.end()) {
      return Status::NotFound(
          StrCat("transducer '", name, "' has no registered order"));
    }
    max_order = std::max(max_order, it->second);
  }
  return max_order;
}

}  // namespace analysis
}  // namespace seqlog
