#include "analysis/lint.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <utility>

#include "analysis/safety.h"
#include "ast/validate.h"
#include "base/string_util.h"
#include "parser/parser.h"
#include "query/adornment.h"

namespace seqlog {
namespace analysis {

namespace {

using ast::Atom;
using ast::Clause;
using ast::Program;
using ast::SeqTermPtr;
using ast::SourceLoc;

/// Appends every sequence/index variable occurrence (with repetition)
/// in `term` to `out`.
void CollectVarOccurrences(const ast::IndexTermPtr& term,
                           std::vector<std::string>* out) {
  if (term == nullptr) return;
  switch (term->kind) {
    case ast::IndexTerm::Kind::kLiteral:
    case ast::IndexTerm::Kind::kEnd:
      return;
    case ast::IndexTerm::Kind::kVariable:
      out->push_back(term->var);
      return;
    case ast::IndexTerm::Kind::kAdd:
    case ast::IndexTerm::Kind::kSub:
      CollectVarOccurrences(term->lhs, out);
      CollectVarOccurrences(term->rhs, out);
      return;
  }
}

void CollectVarOccurrences(const SeqTermPtr& term,
                           std::vector<std::string>* out) {
  if (term == nullptr) return;
  switch (term->kind) {
    case ast::SeqTerm::Kind::kConstant:
      return;
    case ast::SeqTerm::Kind::kVariable:
      out->push_back(term->var);
      return;
    case ast::SeqTerm::Kind::kIndexed:
      CollectVarOccurrences(term->base, out);
      CollectVarOccurrences(term->lo, out);
      CollectVarOccurrences(term->hi, out);
      return;
    case ast::SeqTerm::Kind::kConcat:
      CollectVarOccurrences(term->left, out);
      CollectVarOccurrences(term->right, out);
      return;
    case ast::SeqTerm::Kind::kTransducer:
      for (const SeqTermPtr& a : term->args) CollectVarOccurrences(a, out);
      return;
  }
}

std::string RenderCycle(const std::vector<std::string>& path) {
  return Join(path, " -> ");
}

/// Migrates ast::CollectValidationIssues onto Diagnostics.
void ValidatePass(const Program& program, const LintOptions&,
                  DiagnosticReport* report) {
  for (ast::ValidationIssue& issue :
       ast::CollectValidationIssues(program)) {
    report->Add(std::move(issue.code), Severity::kError, issue.loc,
                std::move(issue.predicate), std::move(issue.message));
  }
}

/// Definition 10 (strong safety) with the full cycle path; positive
/// findings (PTIME class, stratification) as info.
void StrongSafetyPass(const Program& program, const LintOptions& options,
                      DiagnosticReport* report) {
  SafetyReport safety = AnalyzeSafety(program);
  if (!safety.strongly_safe && safety.offending_edge.has_value()) {
    report->Add("SL-E010", Severity::kError, safety.cycle_loc,
                safety.offending_edge->first,
                StrCat("constructive cycle ", RenderCycle(safety.cycle_path),
                       " (Definition 10): the program is not strongly "
                       "safe, so stratified evaluation may not terminate"));
    return;
  }
  if (options.include_info) {
    if (safety.non_constructive) {
      report->Add("SL-I060", Severity::kInfo, {}, "",
                  "program is non-constructive: data complexity is in "
                  "PTIME (Theorem 3)");
    }
    report->Add("SL-I061", Severity::kInfo, {}, "",
                StrCat("program is strongly safe (Definition 10); ",
                       safety.strata.size(), " construction strata"));
  }
}

/// Unguarded (SL-W020) and singleton (SL-W021) variables, per clause.
void VariablePass(const Program& program, const LintOptions&,
                  DiagnosticReport* report) {
  for (const Clause& clause : program.clauses) {
    const std::string head_pred =
        clause.head.kind == Atom::Kind::kPredicate ? clause.head.predicate
                                                   : "";
    std::set<std::string> seq_vars;
    ast::CollectAtomVars(clause.head, &seq_vars, nullptr);
    for (const Atom& a : clause.body) {
      ast::CollectAtomVars(a, &seq_vars, nullptr);
    }
    const std::set<std::string> guarded = ast::GuardedVars(clause);
    for (const std::string& v : seq_vars) {
      if (guarded.count(v) > 0 || v[0] == '$') continue;
      report->Add(
          "SL-W020", Severity::kWarning, ast::FindVarLoc(clause, v),
          head_pred,
          StrCat("sequence variable '", v,
                 "' is unguarded (never a direct argument of a body "
                 "predicate atom, Section 3.1); it ranges over the whole "
                 "extended active domain"));
    }

    std::vector<std::string> occurrences;
    for (const SeqTermPtr& t : clause.head.args) {
      CollectVarOccurrences(t, &occurrences);
    }
    for (const Atom& a : clause.body) {
      for (const SeqTermPtr& t : a.args) {
        CollectVarOccurrences(t, &occurrences);
      }
    }
    std::map<std::string, size_t> counts;
    for (const std::string& v : occurrences) ++counts[v];
    for (const auto& [v, n] : counts) {
      if (n != 1 || v[0] == '_' || v[0] == '$') continue;
      report->Add("SL-W021", Severity::kWarning,
                  ast::FindVarLoc(clause, v), head_pred,
                  StrCat("variable '", v,
                         "' occurs only once in the clause; prefix it "
                         "with '_' if that is intentional"));
    }
  }
}

/// Undefined (SL-W030) body predicates; with a goal, unused (SL-W031)
/// predicates and unreachable (SL-W050) clauses.
void PredicatePass(const Program& program, const LintOptions& options,
                   DiagnosticReport* report) {
  const std::set<std::string> idb = program.HeadPredicates();
  std::set<std::string> referenced;  // mentioned in some body
  std::set<std::string> reported_undefined;
  for (const Clause& clause : program.clauses) {
    for (const Atom& a : clause.body) {
      if (a.kind != Atom::Kind::kPredicate) continue;
      referenced.insert(a.predicate);
      if (idb.count(a.predicate) > 0 ||
          options.edb_predicates.count(a.predicate) > 0 ||
          !reported_undefined.insert(a.predicate).second) {
        continue;
      }
      report->Add(
          "SL-W030", Severity::kWarning, a.loc, a.predicate,
          StrCat("predicate '", a.predicate,
                 "' is never defined by a clause and not declared "
                 "extensional; the literal can only fail"));
    }
  }

  if (!options.goal.has_value() ||
      options.goal->kind != Atom::Kind::kPredicate) {
    return;
  }
  const std::string& goal_pred = options.goal->predicate;
  if (idb.count(goal_pred) == 0 &&
      options.edb_predicates.count(goal_pred) == 0) {
    report->Add("SL-W030", Severity::kWarning, options.goal->loc, goal_pred,
                StrCat("goal predicate '", goal_pred,
                       "' is never defined by a clause and not declared "
                       "extensional"));
  }

  // Predicates reachable from the goal in the dependency graph; the
  // magic rewrite keeps exactly the clauses of these predicates.
  DependencyGraph graph = DependencyGraph::Build(program);
  std::set<std::string> reachable = {goal_pred};
  std::vector<std::string> frontier = {goal_pred};
  while (!frontier.empty()) {
    std::vector<std::string> next;
    for (const std::string& p : frontier) {
      for (const std::string& q : graph.Successors(p)) {
        if (reachable.insert(q).second) next.push_back(q);
      }
    }
    frontier = std::move(next);
  }

  std::set<std::string> reported_unused;
  for (size_t ci = 0; ci < program.clauses.size(); ++ci) {
    const Clause& clause = program.clauses[ci];
    if (clause.head.kind != Atom::Kind::kPredicate) continue;
    const std::string& p = clause.head.predicate;
    if (reachable.count(p) > 0) continue;
    if (referenced.count(p) == 0) {
      if (reported_unused.insert(p).second) {
        report->Add("SL-W031", Severity::kWarning, clause.loc, p,
                    StrCat("predicate '", p,
                           "' is defined but never used in a body and is "
                           "not the goal"));
      }
    } else {
      report->Add("SL-W050", Severity::kWarning, clause.loc, p,
                  StrCat("clause for '", p,
                         "' is unreachable from the goal '", goal_pred,
                         "'; the demand rewrite drops it"));
    }
  }
}

/// Duplicate (SL-W040) and syntactically subsumed (SL-W041) clauses.
/// Comparison is on rendered text — duplicates up to variable renaming
/// are not detected.
void ClausePass(const Program& program, const SequencePool& pool,
                const SymbolTable& symbols, DiagnosticReport* report) {
  struct Rendered {
    std::string head;
    std::set<std::string> body;
  };
  std::vector<Rendered> rendered;
  rendered.reserve(program.clauses.size());
  for (const Clause& clause : program.clauses) {
    Rendered r;
    r.head = ToString(clause.head, pool, symbols);
    for (const Atom& a : clause.body) {
      r.body.insert(ToString(a, pool, symbols));
    }
    rendered.push_back(std::move(r));
  }
  for (size_t j = 0; j < rendered.size(); ++j) {
    for (size_t i = 0; i < rendered.size(); ++i) {
      if (i == j || rendered[i].head != rendered[j].head) continue;
      const auto& bi = rendered[i].body;
      const auto& bj = rendered[j].body;
      if (bi == bj) {
        if (i < j) {  // report the later duplicate once
          const std::string head_pred =
              program.clauses[j].head.kind == Atom::Kind::kPredicate
                  ? program.clauses[j].head.predicate
                  : "";
          report->Add("SL-W040", Severity::kWarning,
                      program.clauses[j].loc, head_pred,
                      StrCat("clause duplicates clause ", i + 1));
          break;
        }
        continue;
      }
      if (std::includes(bj.begin(), bj.end(), bi.begin(), bi.end())) {
        const std::string head_pred =
            program.clauses[j].head.kind == Atom::Kind::kPredicate
                ? program.clauses[j].head.predicate
                : "";
        report->Add(
            "SL-W041", Severity::kWarning, program.clauses[j].loc,
            head_pred,
            StrCat("clause is subsumed by clause ", i + 1,
                   " (same head, fewer body literals); it cannot derive "
                   "anything new"));
        break;
      }
    }
  }
}

/// True when the head term at a goal position blocks bindability: it
/// contains a constructive subterm or an unguarded sequence variable
/// (the conditions of query/adornment.h).
bool BlocksBindability(const Clause& clause, const SeqTermPtr& term) {
  if (ast::IsConstructive(term)) return true;
  std::set<std::string> vars;
  ast::CollectSeqVars(term, &vars);
  const std::set<std::string> guarded = ast::GuardedVars(clause);
  for (const std::string& v : vars) {
    if (guarded.count(v) == 0) return true;
  }
  return false;
}

}  // namespace

const std::vector<LintPassInfo>& LintPasses() {
  static const std::vector<LintPassInfo> kPasses = {
      {"validate", "SL-E002,SL-E003,SL-E004,SL-E005,SL-E006,SL-E007"},
      {"strong-safety", "SL-E010,SL-I060,SL-I061"},
      {"variables", "SL-W020,SL-W021"},
      {"predicates", "SL-W030,SL-W031,SL-W050"},
      {"clauses", "SL-W040,SL-W041"},
      {"goal-bindability", "SL-W051"},
  };
  return kPasses;
}

DiagnosticReport Lint(const Program& program, const SequencePool& pool,
                      const SymbolTable& symbols,
                      const LintOptions& options) {
  DiagnosticReport report;
  ValidatePass(program, options, &report);
  StrongSafetyPass(program, options, &report);
  VariablePass(program, options, &report);
  PredicatePass(program, options, &report);
  ClausePass(program, pool, symbols, &report);
  if (options.goal.has_value()) {
    for (Diagnostic& d : LintGoal(program, *options.goal)) {
      report.Add(std::move(d));
    }
  }
  report.Sort();
  return report;
}

DiagnosticReport LintSource(std::string_view source, SymbolTable* symbols,
                            SequencePool* pool,
                            const LintOptions& options) {
  Result<Program> program =
      parser::ParseProgramUnvalidated(source, symbols, pool);
  if (!program.ok()) {
    // Parser/lexer messages carry "at L:C"; recover the position so the
    // diagnostic points at the failure.
    const std::string& msg = program.status().message();
    SourceLoc loc;
    size_t colon = msg.find(':');
    while (colon != std::string::npos) {
      size_t ls = colon;
      while (ls > 0 &&
             std::isdigit(static_cast<unsigned char>(msg[ls - 1]))) {
        --ls;
      }
      size_t ce = colon + 1;
      while (ce < msg.size() &&
             std::isdigit(static_cast<unsigned char>(msg[ce]))) {
        ++ce;
      }
      if (ls < colon && ce > colon + 1) {
        loc.line = std::stoi(msg.substr(ls, colon - ls));
        loc.column = std::stoi(msg.substr(colon + 1, ce - colon - 1));
        break;
      }
      colon = msg.find(':', colon + 1);
    }
    DiagnosticReport report;
    report.Add("SL-E001", Severity::kError, loc, "", msg);
    return report;
  }
  return Lint(program.value(), *pool, *symbols, options);
}

std::vector<Diagnostic> LintGoal(const Program& program,
                                 const ast::Atom& goal) {
  std::vector<Diagnostic> out;
  if (goal.kind != Atom::Kind::kPredicate) return out;
  const std::set<std::string> idb = program.HeadPredicates();
  if (idb.count(goal.predicate) == 0) return out;  // EDB goal: no rewrite

  // Ground flags exactly as Solver::Prepare computes them: parameters
  // and variable-free terms are bound, plain variables free. Argument
  // shapes the solver rejects are skipped (Prepare reports those).
  std::vector<bool> ground(goal.args.size(), false);
  for (size_t j = 0; j < goal.args.size(); ++j) {
    const SeqTermPtr& arg = goal.args[j];
    if (arg == nullptr) return out;
    if (arg->kind == ast::SeqTerm::Kind::kVariable) {
      ground[j] = parser::IsParamVariable(arg->var);
      continue;
    }
    std::set<std::string> vars;
    ast::CollectSeqVars(arg, &vars);
    ast::CollectIndexVars(arg, &vars);
    if (!vars.empty()) return out;
    ground[j] = true;
  }

  Result<query::AdornmentResult> adornment =
      query::AdornProgram(program, goal.predicate, ground);
  if (!adornment.ok()) return out;
  const query::Adornment& effective = adornment.value().goal_adornment;
  for (size_t j = 0; j < ground.size() && j < effective.size(); ++j) {
    if (!ground[j] || effective[j] != 'f') continue;
    // Point at the head term that makes the position unbindable.
    SourceLoc loc = goal.loc;
    for (const Clause& clause : program.clauses) {
      if (clause.head.kind != Atom::Kind::kPredicate ||
          clause.head.predicate != goal.predicate ||
          j >= clause.head.args.size()) {
        continue;
      }
      if (BlocksBindability(clause, clause.head.args[j])) {
        loc = clause.head.args[j]->loc;
        break;
      }
    }
    Diagnostic d;
    d.code = "SL-W051";
    d.severity = Severity::kWarning;
    d.loc = loc;
    d.predicate = goal.predicate;
    d.message = StrCat(
        "goal argument ", j + 1, " of '", goal.predicate,
        "' is bound but not bindable (a defining head term is "
        "constructive or has unguarded variables); the binding is "
        "applied as a post-filter and Prepare degrades toward a full "
        "fixpoint");
    out.push_back(std::move(d));
  }
  return out;
}

}  // namespace analysis
}  // namespace seqlog
