// seqlog: safety analysis (Section 8).
//
// A Transducer Datalog program is *strongly safe* when its predicate
// dependency graph has no constructive cycle (Definition 10). Strongly
// safe programs can be stratified with respect to construction: the
// strongly connected components of the graph, in dependency order, give
// strata in which constructive rules never depend on their own stratum.
// Theorem 8's evaluation applies each constructive stratum once and
// saturates non-constructive rules, guaranteeing a finite minimal model.
#ifndef SEQLOG_ANALYSIS_SAFETY_H_
#define SEQLOG_ANALYSIS_SAFETY_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "analysis/dependency_graph.h"
#include "ast/clause.h"
#include "base/result.h"

namespace seqlog {
namespace analysis {

/// One construction stratum: the clauses whose head predicates belong to
/// one strongly connected component of the dependency graph.
struct Stratum {
  /// Predicates defined by this stratum (one SCC).
  std::vector<std::string> predicates;
  /// Indices into program.clauses of constructive clauses of the stratum.
  std::vector<size_t> constructive_clauses;
  /// Indices of the non-constructive clauses of the stratum.
  std::vector<size_t> nonconstructive_clauses;
};

/// Result of the static safety analysis of a program.
struct SafetyReport {
  /// No ++ or @T terms anywhere: the paper's Non-constructive Sequence
  /// Datalog, data complexity complete for PTIME (Theorem 3).
  bool non_constructive = false;
  /// Definition 10: no constructive cycle in the dependency graph.
  bool strongly_safe = false;
  /// One constructive edge on a cycle, when !strongly_safe.
  std::optional<std::pair<std::string, std::string>> offending_edge;
  /// A full cycle through that edge as p, q, ..., p (empty when
  /// strongly_safe); diagnostics render it "p -> q -> ... -> p".
  std::vector<std::string> cycle_path;
  /// Position of the first constructive clause inducing the offending
  /// edge (invalid when strongly_safe or the program was synthesized).
  ast::SourceLoc cycle_loc;
  /// Construction strata in dependency order (valid only when
  /// strongly_safe; otherwise the stratification is still returned but
  /// constructive rules may depend on their own stratum).
  std::vector<Stratum> strata;
  /// The dependency graph itself (for reporting / Figure 3 rendering).
  DependencyGraph graph;
};

/// Runs the full analysis of Definitions 8-10 on `program`.
SafetyReport AnalyzeSafety(const ast::Program& program);

/// The order of a Transducer Datalog program (Section 7.1): the maximum
/// order of any mentioned transducer, 0 if none. `orders` maps transducer
/// names to their orders; unknown names yield kNotFound.
Result<int> ProgramOrder(const ast::Program& program,
                         const std::map<std::string, int>& orders);

}  // namespace analysis
}  // namespace seqlog

#endif  // SEQLOG_ANALYSIS_SAFETY_H_
