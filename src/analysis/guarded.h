// seqlog: guarded programs and the guarded transformation (Appendix B).
//
// A clause is guarded when every sequence variable in it occurs in the
// body as a direct argument of some predicate atom. Theorem 10: every
// program P has a guarded program PG expressing the same queries, built
// by adding a dom/1 predicate that enumerates the extended active domain
// and guarding every previously unguarded variable with it.
#ifndef SEQLOG_ANALYSIS_GUARDED_H_
#define SEQLOG_ANALYSIS_GUARDED_H_

#include <string>
#include <utility>
#include <vector>

#include "ast/clause.h"

namespace seqlog {
namespace analysis {

/// Applies the Appendix B transformation to `program`.
///
/// `schema_predicates` lists base predicates (name, arity) that may hold
/// database facts but never occur in the program text; clauses (3) of the
/// construction must cover them too so that database sequences reach dom.
/// The dom predicate is named `dom__` (suffixed with primes until fresh).
/// Index variables need no guarding — they already range over the finite
/// integer part of the domain.
ast::Program GuardedTransform(
    const ast::Program& program,
    const std::vector<std::pair<std::string, size_t>>& schema_predicates);

/// The name the transformation picked for dom in the given program.
std::string DomPredicateName(const ast::Program& program);

}  // namespace analysis
}  // namespace seqlog

#endif  // SEQLOG_ANALYSIS_GUARDED_H_
