// seqlog: predicate dependency graphs (Definitions 8 and 9).
//
// Nodes are the predicate symbols of a program. There is an edge p -> q
// when p is the head predicate of a clause whose body mentions q; the
// edge is *constructive* when some such clause is constructive (has a ++
// or @T term in its head). A *constructive cycle* is a cycle containing a
// constructive edge; programs without one are strongly safe (Def. 10).
#ifndef SEQLOG_ANALYSIS_DEPENDENCY_GRAPH_H_
#define SEQLOG_ANALYSIS_DEPENDENCY_GRAPH_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "ast/clause.h"

namespace seqlog {
namespace analysis {

/// Directed predicate dependency graph with constructive edge marks.
class DependencyGraph {
 public:
  /// Builds the graph of `program` (Definition 9).
  static DependencyGraph Build(const ast::Program& program);

  /// All predicate names (head or body) of the program, sorted.
  const std::vector<std::string>& nodes() const { return nodes_; }

  /// True if p -> q.
  bool HasEdge(const std::string& p, const std::string& q) const;
  /// True if p -> q is constructive.
  bool HasConstructiveEdge(const std::string& p, const std::string& q) const;

  /// Successors of p (body predicates of p's clauses).
  std::vector<std::string> Successors(const std::string& p) const;

  /// Strongly connected components in *reverse topological order* of the
  /// condensation: if component i mentions a predicate that depends on a
  /// predicate in component j, then j < i. Singleton nodes with no
  /// self-loop are their own components.
  std::vector<std::vector<std::string>> StronglyConnectedComponents() const;

  /// True if some cycle goes through a constructive edge (Definition 10
  /// fails). If `witness` is non-null, receives one offending edge.
  bool HasConstructiveCycle(
      std::pair<std::string, std::string>* witness = nullptr) const;

  /// A shortest cycle through a constructive edge, as the node sequence
  /// p, q, ..., p (first edge constructive, first == last); empty when
  /// the program is strongly safe. Diagnostics render it "p -> q -> p".
  std::vector<std::string> ConstructiveCyclePath() const;

  /// Graphviz rendering; constructive edges are labelled and bold
  /// (regenerates the shape of the paper's Figure 3).
  std::string ToDot() const;

 private:
  std::vector<std::string> nodes_;
  std::map<std::string, std::set<std::string>> edges_;
  std::map<std::string, std::set<std::string>> constructive_edges_;
};

}  // namespace analysis
}  // namespace seqlog

#endif  // SEQLOG_ANALYSIS_DEPENDENCY_GRAPH_H_
