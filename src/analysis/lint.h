// seqlog: the program linter — static analysis passes over a parsed
// program, reported as coded, source-located diagnostics.
//
// The passes layer over the existing analyses (ast/validate.h,
// analysis/safety.h, query/adornment.h) and add purely stylistic checks.
// Each diagnostic code is stable and documented with an example in
// src/analysis/README.md:
//
//   SL-E001 parse-error           source does not parse (LintSource only)
//   SL-E002 head-not-predicate    clause head is =, != (validate)
//   SL-E003 constructive-body     ++/@T term in a clause body (validate)
//   SL-E004 indexed-base          indexed term with a non-atomic base
//   SL-E005 malformed-equality    equality atom without two arguments
//   SL-E006 arity-clash           predicate used with two arities
//   SL-E007 variable-role-clash   one name as sequence and index variable
//   SL-E010 constructive-cycle    Definition 10 fails; cycle rendered
//   SL-W020 unguarded-variable    sequence variable ranges over the whole
//                                 extended active domain (Section 3.1)
//   SL-W021 singleton-variable    variable occurs once ('_' prefix opts out)
//   SL-W030 undefined-predicate   body predicate never defined / declared
//   SL-W031 unused-predicate      defined but unreachable and unreferenced
//   SL-W040 duplicate-clause      clause repeats an earlier clause
//   SL-W041 subsumed-clause       clause body is a superset of an earlier
//                                 clause with the same head
//   SL-W050 unreachable-clause    not reachable from the goal predicate
//   SL-W051 unbindable-goal       bound goal argument demoted to free —
//                                 Prepare degrades toward a full fixpoint
//   SL-I060 non-constructive      no ++/@T anywhere: PTIME (Theorem 3)
//   SL-I061 strongly-safe         Definition 10 holds; stratum count
//
// Unguarded variables are *warnings*, not errors: the extended active
// domain semantics (Section 4) gives them a well-defined meaning; they
// are only unusual and potentially expensive.
#ifndef SEQLOG_ANALYSIS_LINT_H_
#define SEQLOG_ANALYSIS_LINT_H_

#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/diagnostics.h"
#include "ast/clause.h"
#include "sequence/sequence_pool.h"
#include "sequence/symbol_table.h"

namespace seqlog {
namespace analysis {

struct LintOptions {
  /// Goal to check reachability / bindability against. Without it the
  /// goal-dependent passes (SL-W031/W050/W051) are skipped.
  std::optional<ast::Atom> goal;
  /// Predicates supplied extensionally at runtime (AddFact): body-only
  /// use of these does not trigger SL-W030 undefined-predicate.
  std::set<std::string> edb_predicates;
  /// Emit the positive SL-Ixxx findings too (off by default).
  bool include_info = false;
};

/// One registered lint pass (introspection for tools and docs).
struct LintPassInfo {
  std::string_view name;   ///< e.g. "strong-safety"
  std::string_view codes;  ///< codes it may emit, comma-separated
};

/// The pass list, in execution order.
const std::vector<LintPassInfo>& LintPasses();

/// Lints a parsed program. `pool`/`symbols` are only read (for rendering
/// clauses in duplicate/subsumption messages). The report is sorted.
DiagnosticReport Lint(const ast::Program& program, const SequencePool& pool,
                      const SymbolTable& symbols,
                      const LintOptions& options = {});

/// Parses `source` (without ast::Validate, so every structural problem is
/// reported, not just the first) and lints it. Parse failures yield a
/// single SL-E001 diagnostic carrying the parser's line:column.
DiagnosticReport LintSource(std::string_view source, SymbolTable* symbols,
                            SequencePool* pool,
                            const LintOptions& options = {});

/// The goal-dependent subset (SL-W051) only — what Engine::Prepare
/// surfaces as preparation warnings without re-linting the program.
std::vector<Diagnostic> LintGoal(const ast::Program& program,
                                 const ast::Atom& goal);

}  // namespace analysis
}  // namespace seqlog

#endif  // SEQLOG_ANALYSIS_LINT_H_
