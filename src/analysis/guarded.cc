#include "analysis/guarded.h"

#include <map>
#include <set>

#include "base/string_util.h"

namespace seqlog {
namespace analysis {

namespace {

using ast::Atom;
using ast::Clause;
using ast::Program;

/// Collects every predicate (name, arity) mentioned in the program.
std::map<std::string, size_t> MentionedPredicates(const Program& program) {
  std::map<std::string, size_t> preds;
  auto visit = [&](const Atom& atom) {
    if (atom.kind == Atom::Kind::kPredicate) {
      preds.emplace(atom.predicate, atom.args.size());
    }
  };
  for (const Clause& c : program.clauses) {
    visit(c.head);
    for (const Atom& a : c.body) visit(a);
  }
  return preds;
}

}  // namespace

std::string DomPredicateName(const ast::Program& program) {
  std::map<std::string, size_t> preds = MentionedPredicates(program);
  std::string name = "dom__";
  while (preds.count(name) > 0) name += "x";
  return name;
}

ast::Program GuardedTransform(
    const ast::Program& program,
    const std::vector<std::pair<std::string, size_t>>& schema_predicates) {
  std::string dom = DomPredicateName(program);
  Program out;

  // Step 1: copy each clause, guarding unguarded sequence variables with
  // dom(X) premises (clause (1) of Appendix B).
  for (const Clause& clause : program.clauses) {
    Clause guarded = clause;
    std::set<std::string> seq_vars;
    ast::CollectAtomVars(clause.head, &seq_vars, nullptr);
    for (const Atom& a : clause.body) {
      ast::CollectAtomVars(a, &seq_vars, nullptr);
    }
    std::set<std::string> already = ast::GuardedVars(clause);
    for (const std::string& v : seq_vars) {
      if (already.count(v) > 0) continue;
      guarded.body.push_back(
          ast::MakePredicateAtom(dom, {ast::MakeVariable(v)}));
    }
    out.clauses.push_back(std::move(guarded));
  }

  // Step 2: dom is closed under subsequences (clause (2)):
  //   dom(X[M:N]) :- dom(X).
  {
    Clause c;
    c.head = ast::MakePredicateAtom(
        dom, {ast::MakeIndexed(ast::MakeVariable("X"),
                               ast::MakeIndexVariable("M"),
                               ast::MakeIndexVariable("N"))});
    c.body.push_back(ast::MakePredicateAtom(dom, {ast::MakeVariable("X")}));
    out.clauses.push_back(std::move(c));
  }

  // Step 3: every argument of every predicate feeds dom (clauses (3)).
  std::map<std::string, size_t> preds = MentionedPredicates(program);
  for (const auto& [name, arity] : schema_predicates) {
    preds.emplace(name, arity);
  }
  for (const auto& [name, arity] : preds) {
    for (size_t i = 0; i < arity; ++i) {
      Clause c;
      std::vector<ast::SeqTermPtr> args;
      args.reserve(arity);
      for (size_t j = 0; j < arity; ++j) {
        args.push_back(ast::MakeVariable(StrCat("X", j + 1)));
      }
      c.head = ast::MakePredicateAtom(
          dom, {ast::MakeVariable(StrCat("X", i + 1))});
      c.body.push_back(ast::MakePredicateAtom(name, std::move(args)));
      out.clauses.push_back(std::move(c));
    }
  }
  return out;
}

}  // namespace analysis
}  // namespace seqlog
