// seqlog: coded, severity-ranked, source-located diagnostics.
//
// Every finding of the static analyses (analysis/lint.h) is a Diagnostic
// with a stable code ("SL-E010"), a severity, and the line:column of the
// offending construct. DiagnosticReport accumulates them and renders the
// set for humans (compiler-style text) or machines (JSON, consumed by the
// lint-programs CI job through tools/seqlog-lint --format=json).
//
// Code space (stable; never renumber):
//   SL-Exxx  errors   — the program is rejected or cannot terminate
//   SL-Wxxx  warnings — legal but suspicious or slow
//   SL-Ixxx  info     — positive findings (strong safety, PTIME class)
#ifndef SEQLOG_ANALYSIS_DIAGNOSTICS_H_
#define SEQLOG_ANALYSIS_DIAGNOSTICS_H_

#include <string>
#include <string_view>
#include <vector>

#include "ast/source_loc.h"

namespace seqlog {
namespace analysis {

enum class Severity {
  kError,    // program is ill-formed or not strongly safe
  kWarning,  // legal but likely wrong or needlessly expensive
  kInfo,     // informational (positive analysis results)
};

/// "error" / "warning" / "info".
std::string_view ToString(Severity severity);

/// One analysis finding, attributable to program text.
struct Diagnostic {
  std::string code;            ///< stable code, e.g. "SL-E010"
  Severity severity = Severity::kError;
  ast::SourceLoc loc;          ///< {0,0} when no position applies
  std::string predicate;       ///< offending predicate ("" if n/a)
  std::string message;         ///< human-readable, position-free
};

/// Renders one diagnostic compiler-style:
///   "file:3:7: error[SL-E010]: <message>"  (file/position when known).
std::string ToString(const Diagnostic& d, std::string_view filename = "");

/// An ordered collection of diagnostics for one program.
class DiagnosticReport {
 public:
  void Add(Diagnostic d);
  void Add(std::string code, Severity severity, ast::SourceLoc loc,
           std::string predicate, std::string message);

  const std::vector<Diagnostic>& diagnostics() const { return diags_; }
  bool empty() const { return diags_.empty(); }
  size_t size() const { return diags_.size(); }

  size_t ErrorCount() const;
  size_t WarningCount() const;
  bool HasErrors() const { return ErrorCount() > 0; }

  /// Diagnostics of exactly `severity`, in report order.
  std::vector<Diagnostic> WithSeverity(Severity severity) const;

  /// Orders by source position, then code, then message — the stable
  /// order used by both renderers and the golden tests.
  void Sort();

  /// One ToString(d, filename) line per diagnostic, plus a trailing
  /// "N error(s), M warning(s)" summary line when non-empty.
  std::string RenderText(std::string_view filename = "") const;

  /// Machine-readable form:
  ///   {"file": "...", "diagnostics": [{"code": ..., "severity": ...,
  ///    "line": ..., "column": ..., "predicate": ..., "message": ...}],
  ///    "errors": N, "warnings": M}
  std::string RenderJson(std::string_view filename = "") const;

 private:
  std::vector<Diagnostic> diags_;
};

/// Escapes `s` for inclusion in a JSON string literal (quotes excluded).
std::string JsonEscape(std::string_view s);

}  // namespace analysis
}  // namespace seqlog

#endif  // SEQLOG_ANALYSIS_DIAGNOSTICS_H_
