#include "analysis/diagnostics.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "base/string_util.h"

namespace seqlog {
namespace analysis {

std::string_view ToString(Severity severity) {
  switch (severity) {
    case Severity::kError:
      return "error";
    case Severity::kWarning:
      return "warning";
    case Severity::kInfo:
      return "info";
  }
  return "unknown";
}

std::string ToString(const Diagnostic& d, std::string_view filename) {
  std::string out;
  if (!filename.empty()) {
    out += filename;
    out += ":";
  }
  if (d.loc.valid()) {
    out += StrCat(d.loc.line, ":", d.loc.column, ":");
  }
  if (!out.empty()) out += " ";
  out += StrCat(ToString(d.severity), "[", d.code, "]: ", d.message);
  return out;
}

void DiagnosticReport::Add(Diagnostic d) { diags_.push_back(std::move(d)); }

void DiagnosticReport::Add(std::string code, Severity severity,
                           ast::SourceLoc loc, std::string predicate,
                           std::string message) {
  Diagnostic d;
  d.code = std::move(code);
  d.severity = severity;
  d.loc = loc;
  d.predicate = std::move(predicate);
  d.message = std::move(message);
  diags_.push_back(std::move(d));
}

size_t DiagnosticReport::ErrorCount() const {
  return WithSeverity(Severity::kError).size();
}

size_t DiagnosticReport::WarningCount() const {
  return WithSeverity(Severity::kWarning).size();
}

std::vector<Diagnostic> DiagnosticReport::WithSeverity(
    Severity severity) const {
  std::vector<Diagnostic> out;
  for (const Diagnostic& d : diags_) {
    if (d.severity == severity) out.push_back(d);
  }
  return out;
}

void DiagnosticReport::Sort() {
  std::stable_sort(diags_.begin(), diags_.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (!(a.loc == b.loc)) {
                       // Valid locations first, in text order.
                       if (a.loc.valid() != b.loc.valid()) {
                         return a.loc.valid();
                       }
                       return a.loc < b.loc;
                     }
                     if (a.code != b.code) return a.code < b.code;
                     return a.message < b.message;
                   });
}

std::string DiagnosticReport::RenderText(std::string_view filename) const {
  std::string out;
  for (const Diagnostic& d : diags_) {
    out += ToString(d, filename);
    out += "\n";
  }
  if (!diags_.empty()) {
    out += StrCat(ErrorCount(), " error(s), ", WarningCount(),
                  " warning(s)\n");
  }
  return out;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string DiagnosticReport::RenderJson(std::string_view filename) const {
  std::string out = "{";
  if (!filename.empty()) {
    out += StrCat("\"file\": \"", JsonEscape(filename), "\", ");
  }
  out += "\"diagnostics\": [";
  for (size_t i = 0; i < diags_.size(); ++i) {
    const Diagnostic& d = diags_[i];
    if (i > 0) out += ", ";
    out += StrCat("{\"code\": \"", d.code, "\", \"severity\": \"",
                  ToString(d.severity), "\", \"line\": ", d.loc.line,
                  ", \"column\": ", d.loc.column, ", \"predicate\": \"",
                  JsonEscape(d.predicate), "\", \"message\": \"",
                  JsonEscape(d.message), "\"}");
  }
  out += StrCat("], \"errors\": ", ErrorCount(),
                ", \"warnings\": ", WarningCount(), "}");
  return out;
}

}  // namespace analysis
}  // namespace seqlog
