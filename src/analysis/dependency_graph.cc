#include "analysis/dependency_graph.h"

#include <algorithm>
#include <functional>

#include "base/logging.h"
#include "base/string_util.h"

namespace seqlog {
namespace analysis {

DependencyGraph DependencyGraph::Build(const ast::Program& program) {
  DependencyGraph g;
  std::set<std::string> node_set;
  for (const ast::Clause& clause : program.clauses) {
    if (clause.head.kind != ast::Atom::Kind::kPredicate) continue;
    const std::string& head = clause.head.predicate;
    node_set.insert(head);
    bool constructive = clause.IsConstructiveClause();
    for (const ast::Atom& atom : clause.body) {
      if (atom.kind != ast::Atom::Kind::kPredicate) continue;
      node_set.insert(atom.predicate);
      g.edges_[head].insert(atom.predicate);
      if (constructive) {
        g.constructive_edges_[head].insert(atom.predicate);
      }
    }
  }
  g.nodes_.assign(node_set.begin(), node_set.end());
  return g;
}

bool DependencyGraph::HasEdge(const std::string& p,
                              const std::string& q) const {
  auto it = edges_.find(p);
  return it != edges_.end() && it->second.count(q) > 0;
}

bool DependencyGraph::HasConstructiveEdge(const std::string& p,
                                          const std::string& q) const {
  auto it = constructive_edges_.find(p);
  return it != constructive_edges_.end() && it->second.count(q) > 0;
}

std::vector<std::string> DependencyGraph::Successors(
    const std::string& p) const {
  auto it = edges_.find(p);
  if (it == edges_.end()) return {};
  return std::vector<std::string>(it->second.begin(), it->second.end());
}

std::vector<std::vector<std::string>>
DependencyGraph::StronglyConnectedComponents() const {
  // Tarjan's algorithm. Components are emitted in reverse topological
  // order of the condensation (dependencies before dependents), which is
  // exactly the stratum order needed by the Theorem 8 evaluation.
  std::map<std::string, int> index;
  std::map<std::string, int> lowlink;
  std::map<std::string, bool> on_stack;
  std::vector<std::string> stack;
  std::vector<std::vector<std::string>> components;
  int next_index = 0;

  std::function<void(const std::string&)> strongconnect =
      [&](const std::string& v) {
        index[v] = next_index;
        lowlink[v] = next_index;
        ++next_index;
        stack.push_back(v);
        on_stack[v] = true;
        auto it = edges_.find(v);
        if (it != edges_.end()) {
          for (const std::string& w : it->second) {
            if (index.find(w) == index.end()) {
              strongconnect(w);
              lowlink[v] = std::min(lowlink[v], lowlink[w]);
            } else if (on_stack[w]) {
              lowlink[v] = std::min(lowlink[v], index[w]);
            }
          }
        }
        if (lowlink[v] == index[v]) {
          std::vector<std::string> component;
          while (true) {
            std::string w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            component.push_back(w);
            if (w == v) break;
          }
          std::sort(component.begin(), component.end());
          components.push_back(std::move(component));
        }
      };

  for (const std::string& v : nodes_) {
    if (index.find(v) == index.end()) strongconnect(v);
  }
  return components;
}

bool DependencyGraph::HasConstructiveCycle(
    std::pair<std::string, std::string>* witness) const {
  // A constructive edge p -> q lies on a cycle iff p and q are in the
  // same strongly connected component.
  auto components = StronglyConnectedComponents();
  std::map<std::string, size_t> component_of;
  for (size_t i = 0; i < components.size(); ++i) {
    for (const std::string& v : components[i]) component_of[v] = i;
  }
  for (const auto& [p, targets] : constructive_edges_) {
    for (const std::string& q : targets) {
      if (component_of.at(p) == component_of.at(q)) {
        if (witness != nullptr) *witness = {p, q};
        return true;
      }
    }
  }
  return false;
}

std::vector<std::string> DependencyGraph::ConstructiveCyclePath() const {
  std::pair<std::string, std::string> witness;
  if (!HasConstructiveCycle(&witness)) return {};
  const auto& [p, q] = witness;
  // Close the cycle with a shortest q ~> p path (BFS); since p and q are
  // in one SCC such a path always exists (it is empty for a self-loop).
  std::vector<std::string> path = {p, q};
  if (p == q) return path;
  std::map<std::string, std::string> parent;
  std::vector<std::string> frontier = {q};
  parent[q] = q;
  while (!frontier.empty() && parent.find(p) == parent.end()) {
    std::vector<std::string> next;
    for (const std::string& v : frontier) {
      auto it = edges_.find(v);
      if (it == edges_.end()) continue;
      for (const std::string& w : it->second) {
        if (parent.emplace(w, v).second) next.push_back(w);
      }
    }
    frontier = std::move(next);
  }
  SEQLOG_CHECK(parent.find(p) != parent.end())
      << "constructive witness edge not on a cycle";
  // Walk the parent pointers p -> ... -> q and reverse to extend the
  // cycle q -> ... -> p (the final element is p, closing the cycle).
  std::vector<std::string> tail;
  for (std::string v = p; v != q; v = parent[v]) tail.push_back(v);
  for (auto it = tail.rbegin(); it != tail.rend(); ++it) {
    path.push_back(*it);
  }
  return path;
}

std::string DependencyGraph::ToDot() const {
  std::string out = "digraph dependencies {\n";
  for (const std::string& v : nodes_) {
    out += StrCat("  \"", v, "\";\n");
  }
  for (const auto& [p, targets] : edges_) {
    for (const std::string& q : targets) {
      if (HasConstructiveEdge(p, q)) {
        out += StrCat("  \"", p, "\" -> \"", q,
                      "\" [style=bold, label=\"constructive\"];\n");
      } else {
        out += StrCat("  \"", p, "\" -> \"", q, "\";\n");
      }
    }
  }
  out += "}\n";
  return out;
}

}  // namespace analysis
}  // namespace seqlog
