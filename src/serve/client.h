// seqlog serving tier: a minimal blocking client for the wire protocol.
//
// TextClient speaks the newline-delimited protocol of protocol.h over a
// TCP connection: SendLine/RecvLine are the raw transport, Roundtrip
// sends one request and collects the complete reply (the OK header
// announces its body line count, so the client reads exactly that many
// lines — no sniffing, no timeouts on well-formed streams).
//
// Used by tools/seqlog-loadgen (closed-loop load generation), the
// shell's :serve-stats command, and the end-to-end server tests. One
// TextClient is one connection and is NOT thread-safe; closed-loop
// clients open one per worker thread.
#ifndef SEQLOG_SERVE_CLIENT_H_
#define SEQLOG_SERVE_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/result.h"

namespace seqlog {
namespace serve {

/// One complete reply: the OK/ERR header plus its announced body lines
/// (ROW/ITEM/STAT), newline-stripped.
struct Reply {
  std::string header;
  std::vector<std::string> body;

  bool ok() const { return header.rfind("OK", 0) == 0; }
  /// The SL-xxx code of an ERR header ("" when ok()).
  std::string error_code() const;
};

class TextClient {
 public:
  TextClient() = default;
  ~TextClient();
  TextClient(TextClient&& other) noexcept;
  TextClient& operator=(TextClient&& other) noexcept;
  TextClient(const TextClient&) = delete;
  TextClient& operator=(const TextClient&) = delete;

  /// Connects to `host:port`. `host` is a numeric IPv4 address or
  /// "localhost" (the serving tier binds loopback; no resolver).
  Status Connect(const std::string& host, uint16_t port);
  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Raw transport: one line out (newline appended) / one line in
  /// (newline stripped, '\r' tolerated). kFailedPrecondition when not
  /// connected; kUnavailable-like kInternal on socket errors; kNotFound
  /// on clean EOF (the server drained).
  Status SendLine(const std::string& line);
  Result<std::string> RecvLine();

  /// Sends one request line and reads the complete reply, body
  /// included. An ERR reply is still an OK *Result* (protocol-level
  /// success) — check Reply::ok(); only transport failures error.
  Result<Reply> Roundtrip(const std::string& line);
  /// BATCH needs its item lines between request and reply.
  Result<Reply> Roundtrip(const std::string& line,
                          const std::vector<std::string>& extra_lines);

 private:
  Result<Reply> ReadReply();

  int fd_ = -1;
  std::string buffer_;  ///< bytes received past the last returned line
};

}  // namespace serve
}  // namespace seqlog

#endif  // SEQLOG_SERVE_CLIENT_H_
