#include "serve/protocol.h"

#include <cctype>

#include "base/string_util.h"

namespace seqlog {
namespace serve {

namespace {

/// Splits on runs of spaces/tabs (raw tokens, no decoding).
std::vector<std::string_view> Tokenize(std::string_view line) {
  std::vector<std::string_view> tokens;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > start) tokens.push_back(line.substr(start, i - start));
  }
  return tokens;
}

Result<size_t> ParseCount(std::string_view token, const char* what) {
  size_t value = 0;
  if (token.empty()) {
    return Status::InvalidArgument(StrCat("missing ", what));
  }
  for (char c : token) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      return Status::InvalidArgument(
          StrCat("bad ", what, " '", std::string(token), "'"));
    }
    value = value * 10 + static_cast<size_t>(c - '0');
    if (value > 100'000'000) {
      return Status::InvalidArgument(
          StrCat("bad ", what, " '", std::string(token), "' (too large)"));
    }
  }
  return value;
}

Status BadArity(const char* verb, const char* want) {
  return Status::InvalidArgument(
      StrCat("usage: ", verb, " ", want));
}

}  // namespace

std::string EncodeValue(std::string_view value) {
  if (value.empty()) return std::string(kEmptyToken);
  return std::string(value);
}

std::string DecodeValue(std::string_view token) {
  if (token == kEmptyToken) return std::string();
  return std::string(token);
}

std::vector<std::string> SplitValues(std::string_view line) {
  std::vector<std::string> values;
  for (std::string_view token : Tokenize(line)) {
    values.push_back(DecodeValue(token));
  }
  return values;
}

Result<Request> ParseRequest(std::string_view line) {
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  std::vector<std::string_view> tokens = Tokenize(line);
  if (tokens.empty()) {
    return Status::InvalidArgument("empty request");
  }
  std::string_view verb = tokens[0];
  Request req;
  if (verb == "PREPARE") {
    // The goal is the rest of the line after the name token, verbatim
    // (goals contain spaces).
    if (tokens.size() < 3) return BadArity("PREPARE", "<name> <goal>");
    req.verb = Verb::kPrepare;
    req.name = std::string(tokens[1]);
    size_t goal_at = tokens[2].data() - line.data();
    req.goal = std::string(line.substr(goal_at));
    return req;
  }
  if (verb == "BIND") {
    if (tokens.size() != 4) return BadArity("BIND", "<name> <i> <value>");
    req.verb = Verb::kBind;
    req.name = std::string(tokens[1]);
    SEQLOG_ASSIGN_OR_RETURN(req.index,
                            ParseCount(tokens[2], "parameter index"));
    if (req.index == 0) {
      return Status::InvalidArgument("parameter indices are 1-based");
    }
    req.values.push_back(DecodeValue(tokens[3]));
    return req;
  }
  if (verb == "DEADLINE") {
    if (tokens.size() != 2) return BadArity("DEADLINE", "<millis>");
    req.verb = Verb::kDeadline;
    size_t millis = 0;
    SEQLOG_ASSIGN_OR_RETURN(millis, ParseCount(tokens[1], "deadline"));
    req.millis = millis;
    return req;
  }
  if (verb == "EXEC") {
    if (tokens.size() < 2) return BadArity("EXEC", "<name> [values...]");
    req.verb = Verb::kExec;
    req.name = std::string(tokens[1]);
    for (size_t i = 2; i < tokens.size(); ++i) {
      req.values.push_back(DecodeValue(tokens[i]));
    }
    return req;
  }
  if (verb == "BATCH") {
    if (tokens.size() != 3) return BadArity("BATCH", "<name> <count>");
    req.verb = Verb::kBatch;
    req.name = std::string(tokens[1]);
    SEQLOG_ASSIGN_OR_RETURN(req.count, ParseCount(tokens[2], "item count"));
    return req;
  }
  if (verb == "FACT") {
    if (tokens.size() < 2) return BadArity("FACT", "<pred> [values...]");
    req.verb = Verb::kFact;
    req.name = std::string(tokens[1]);
    for (size_t i = 2; i < tokens.size(); ++i) {
      req.values.push_back(DecodeValue(tokens[i]));
    }
    return req;
  }
  if (verb == "INGEST") {
    if (tokens.size() != 3) return BadArity("INGEST", "<pred> <count>");
    req.verb = Verb::kIngest;
    req.name = std::string(tokens[1]);
    SEQLOG_ASSIGN_OR_RETURN(req.count, ParseCount(tokens[2], "fact count"));
    return req;
  }
  if (verb == "STATS") {
    if (tokens.size() != 1) return BadArity("STATS", "(no arguments)");
    req.verb = Verb::kStats;
    return req;
  }
  if (verb == "HEALTH") {
    if (tokens.size() != 1) return BadArity("HEALTH", "(no arguments)");
    req.verb = Verb::kHealth;
    return req;
  }
  if (verb == "PUBLISH") {
    if (tokens.size() != 1) return BadArity("PUBLISH", "(no arguments)");
    req.verb = Verb::kPublish;
    return req;
  }
  if (verb == "QUIT") {
    req.verb = Verb::kQuit;
    return req;
  }
  return Status::InvalidArgument(
      StrCat("unknown verb '", std::string(verb),
             "' (expected PREPARE/BIND/DEADLINE/EXEC/BATCH/STATS/HEALTH/"
             "FACT/INGEST/PUBLISH/QUIT)"));
}

std::string_view WireCode(const Status& status) {
  switch (status.code()) {
    case StatusCode::kInvalidArgument:
      return "SL-E001";  // malformed program/goal text (parse family)
    case StatusCode::kFailedPrecondition:
      return "SL-E010";  // not demand-evaluable / wrong state
    case StatusCode::kResourceExhausted:
      return kCodeDeadline;  // budget or deadline exhausted
    case StatusCode::kOutOfRange:
      return kCodeBadRequest;
    case StatusCode::kNotFound:
    case StatusCode::kUnimplemented:
    case StatusCode::kInternal:
    case StatusCode::kOk:
      break;
  }
  return kCodeExecFailed;
}

std::string ErrorReply(std::string_view code, std::string_view message) {
  std::string out = "ERR ";
  out.append(code);
  out.push_back(' ');
  for (char c : message) {
    if (c == '\n') {
      out.append("; ");
    } else if (c != '\r') {
      out.push_back(c);
    }
  }
  return out;
}

std::string ErrorReply(const Status& status) {
  return ErrorReply(WireCode(status), status.message());
}

}  // namespace serve
}  // namespace seqlog
