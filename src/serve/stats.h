// seqlog serving tier: lock-free server metrics.
//
// LatencyHistogram is a fixed-size log-bucketed histogram with atomic
// counters: Record is wait-free (one relaxed fetch_add per bucket plus
// two for the totals), so the serving hot path never serialises on a
// metrics lock. Percentiles are reconstructed from the bucket counts on
// demand (STATS verb, :serve-stats) with ~±9% relative error — four
// buckets per octave — which is plenty for p50/p95/p99 tail reporting.
//
// ServerStats aggregates the counters the serving tier exposes over the
// wire: admission-queue depth, in-flight requests, per-phase latency
// (queue wait / execution / total), request and error counts, and the
// lifetime qps. All members are individually atomic; a reader sees a
// slightly torn but monotonic view, never a corrupt one.
#ifndef SEQLOG_SERVE_STATS_H_
#define SEQLOG_SERVE_STATS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace seqlog {
namespace serve {

/// Log-bucketed latency histogram over microseconds. Writers are
/// wait-free; readers scan 128 buckets. Range: 1us .. ~9 minutes
/// (values clamp into the edge buckets).
class LatencyHistogram {
 public:
  /// Four buckets per factor-of-two, 1us through 2^32us.
  static constexpr size_t kBuckets = 128;

  /// Records one sample. Thread-safe, wait-free.
  void Record(double micros);

  uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double mean_micros() const;
  /// The p-th percentile (0 < p <= 100), reconstructed from the bucket
  /// boundaries (geometric midpoint of the holding bucket). 0 when
  /// empty.
  double PercentileMicros(double p) const;

  /// Merges another histogram's buckets into this one (bench
  /// aggregation across client threads; not linearisable against
  /// concurrent Record on `other`).
  void MergeFrom(const LatencyHistogram& other);

 private:
  static size_t BucketOf(double micros);
  static double BucketMidpoint(size_t bucket);

  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  /// Sum in nanoseconds so the mean survives integer accumulation.
  std::atomic<uint64_t> sum_nanos_{0};
};

/// The serving tier's counters. One instance per Server; sessions
/// update it lock-free, the STATS verb renders it.
struct ServerStats {
  ServerStats() : start(std::chrono::steady_clock::now()) {}

  // -- connection admission ------------------------------------------
  std::atomic<uint64_t> connections_accepted{0};
  /// Turned away by admission control (ERR OVERLOAD).
  std::atomic<uint64_t> connections_rejected{0};
  /// Connections accepted but not yet picked up by a session thread.
  std::atomic<int64_t> queue_depth{0};

  // -- requests ------------------------------------------------------
  std::atomic<uint64_t> requests{0};
  std::atomic<uint64_t> exec_requests{0};
  std::atomic<uint64_t> batch_requests{0};
  /// Items across all BATCH requests (>= batch_requests).
  std::atomic<uint64_t> batch_items{0};
  std::atomic<uint64_t> rows_returned{0};
  /// Requests currently between parse and reply.
  std::atomic<int64_t> in_flight{0};

  // -- errors --------------------------------------------------------
  /// Malformed requests (ERR BADREQ / UNKNOWN / ...).
  std::atomic<uint64_t> protocol_errors{0};
  /// Requests that parsed but failed to execute.
  std::atomic<uint64_t> exec_errors{0};
  /// Requests cut off by their deadline (ERR DEADLINE).
  std::atomic<uint64_t> deadline_exceeded{0};

  // -- per-phase latency ---------------------------------------------
  /// Accept-to-session-pickup wait of each connection.
  LatencyHistogram queue_wait;
  /// Statement execution only (EXEC/BATCH engine time).
  LatencyHistogram exec_latency;
  /// Full request turnaround (parse to reply written).
  LatencyHistogram request_latency;

  const std::chrono::steady_clock::time_point start;

  double uptime_seconds() const;
  /// Lifetime requests / uptime.
  double qps() const;

  /// Flat key/value rendering, one pair per STAT reply line. Keys are
  /// stable identifiers (snake_case); values are formatted numbers.
  std::vector<std::pair<std::string, std::string>> Render() const;
};

}  // namespace serve
}  // namespace seqlog

#endif  // SEQLOG_SERVE_STATS_H_
