// seqlog serving tier: the seqlog-serve wire protocol.
//
// Newline-delimited text over TCP; one request per line, space-separated
// tokens. Replies start with `OK ...` or `ERR <code> <message>` and the
// OK header announces exactly how many body lines follow, so clients
// never sniff for a terminator:
//
//   PREPARE <name> <goal>      OK prepared name=q params=1 adornment=b
//   BIND <name> <i> <value>    OK bound $1
//   DEADLINE <millis>          OK deadline=250            (0 clears)
//   EXEC <name> [v1 ... vk]    OK rows=2 micros=413
//                              ROW acgt
//                              ROW tacg
//   BATCH <name> <n>           (then n lines "v1 ... vk", one per item)
//                              OK items=n rows=5 runs=1 micros=922
//                              ITEM 0 rows=2   (+2 ROW lines)
//                              ITEM 1 ERR SL-E010 <message>
//   STATS                      OK stats=29     (+29 "STAT <key> <value>")
//   HEALTH                     OK serving snapshot=3 uptime_ms=1200
//   FACT <pred> [v1 ...]       OK fact queued depth=3
//                              (staged on the ingest queue; visible once
//                              the republisher drains, or after PUBLISH)
//   INGEST <pred> <n>          (then n lines "v1 ... vk", one fact each)
//                              OK ingested=n depth=12
//   PUBLISH                    OK snapshot=4 facts=1201   (forces a
//                              drain + resaturation + republish first)
//   QUIT                       OK bye           (server closes)
//
// Values are rendered sequences; the empty sequence travels as the
// reserved token `eps` (so it survives space-splitting) and values
// containing whitespace are refused at the boundary. Full grammar and
// semantics: docs/SERVING.md.
//
// Error replies reuse the stable SL-xxx diagnostic code space
// (analysis/diagnostics.h). Program/goal analysis failures surface the
// engine's own codes (SL-E001 parse, SL-E010 not demand-evaluable);
// serving-layer failures use the SL-E1xx block defined here.
//
// This header is transport-free (pure parse/format) so the protocol is
// unit-testable without sockets; server.h and client.h do the IO.
#ifndef SEQLOG_SERVE_PROTOCOL_H_
#define SEQLOG_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "base/result.h"

namespace seqlog {
namespace serve {

// Serving-layer diagnostic codes (the SL-E1xx block).
inline constexpr std::string_view kCodeBadRequest = "SL-E100";
inline constexpr std::string_view kCodeUnknownStatement = "SL-E101";
inline constexpr std::string_view kCodeOverloaded = "SL-E102";
inline constexpr std::string_view kCodeDeadline = "SL-E103";
inline constexpr std::string_view kCodeDraining = "SL-E104";
inline constexpr std::string_view kCodeExecFailed = "SL-E105";

/// The reserved wire token for the empty sequence.
inline constexpr std::string_view kEmptyToken = "eps";

enum class Verb {
  kPrepare,
  kBind,
  kDeadline,
  kExec,
  kBatch,
  kStats,
  kHealth,
  kFact,
  kIngest,
  kPublish,
  kQuit,
};

/// One parsed request line.
struct Request {
  Verb verb = Verb::kHealth;
  /// Statement name (PREPARE/BIND/EXEC/BATCH) or predicate
  /// (FACT/INGEST).
  std::string name;
  /// PREPARE only: the goal text (rest of the line, verbatim).
  std::string goal;
  /// BIND only: 1-based parameter index.
  size_t index = 0;
  /// BATCH/INGEST: number of item lines that follow.
  size_t count = 0;
  /// DEADLINE only: milliseconds (0 clears).
  uint64_t millis = 0;
  /// EXEC/FACT parameter values; BIND's single value. Decoded (`eps`
  /// already mapped to "").
  std::vector<std::string> values;
};

/// Parses one request line (no trailing newline; a trailing '\r' is
/// tolerated). kInvalidArgument with a client-facing message on any
/// malformed input — the server maps those to ERR SL-E100.
Result<Request> ParseRequest(std::string_view line);

/// Splits a BATCH item line into decoded values.
std::vector<std::string> SplitValues(std::string_view line);

/// Wire encoding of one value ("" -> "eps").
std::string EncodeValue(std::string_view value);
/// Inverse of EncodeValue ("eps" -> "").
std::string DecodeValue(std::string_view token);

/// The SL code an engine Status surfaces as on the wire.
std::string_view WireCode(const Status& status);

/// Formats `ERR <code> <message>` with the message flattened to one
/// line (newlines become "; ").
std::string ErrorReply(std::string_view code, std::string_view message);
std::string ErrorReply(const Status& status);

}  // namespace serve
}  // namespace seqlog

#endif  // SEQLOG_SERVE_PROTOCOL_H_
