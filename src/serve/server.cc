#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "base/string_util.h"
#include "serve/batch_executor.h"

namespace seqlog {
namespace serve {

namespace {

/// One BATCH may not exceed this many item lines (a malformed count
/// would otherwise swallow the connection).
constexpr size_t kMaxBatchItems = 65536;

double MicrosSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

bool WriteAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

/// Writes a one-line error reply, best effort (used on refused
/// connections that never reach a session).
void RefuseConnection(int fd, std::string_view code,
                      std::string_view message) {
  WriteAll(fd, ErrorReply(code, message) + "\n");
  ::close(fd);
}

}  // namespace

/// Poll-driven line reader: blocks for input in short slices so the
/// session notices a drain within ~100ms even on an idle connection.
/// ReadLine errors: kNotFound = clean EOF, kFailedPrecondition =
/// draining, kInternal = socket error.
class Server::LineReader {
 public:
  LineReader(int fd, const std::atomic<bool>* draining)
      : fd_(fd), draining_(draining) {}

  Result<std::string> ReadLine() {
    for (;;) {
      size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        if (!line.empty() && line.back() == '\r') line.pop_back();
        return line;
      }
      if (draining_->load(std::memory_order_relaxed)) {
        return Status::FailedPrecondition("draining");
      }
      pollfd pfd{};
      pfd.fd = fd_;
      pfd.events = POLLIN;
      int ready = ::poll(&pfd, 1, 100);
      if (ready < 0) {
        if (errno == EINTR) continue;
        return Status::Internal(StrCat("poll: ", std::strerror(errno)));
      }
      if (ready == 0) continue;  // timeout slice; re-check drain flag
      char chunk[4096];
      ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::Internal(StrCat("recv: ", std::strerror(errno)));
      }
      if (n == 0) return Status::NotFound("eof");
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

 private:
  int fd_;
  const std::atomic<bool>* draining_;
  std::string buffer_;
};

Server::Server(Engine* engine, ServerOptions options)
    : engine_(engine), options_(std::move(options)) {
  if (options_.sessions == 0) options_.sessions = 1;
}

Server::~Server() {
  Shutdown();
  Wait();
}

Status Server::Start() {
  if (started_.exchange(true)) {
    return Status::FailedPrecondition("server already started");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(StrCat("socket: ", std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument(
        StrCat("bad host '", options_.host, "' (numeric IPv4)"));
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    Status status = Status::Internal(
        StrCat("bind ", options_.host, ":", options_.port, ": ",
               std::strerror(errno)));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 128) != 0) {
    Status status =
        Status::Internal(StrCat("listen: ", std::strerror(errno)));
    ::close(fd);
    return status;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);
  listen_fd_ = fd;

  {
    std::lock_guard<std::mutex> lock(engine_mu_);
    std::unique_lock<std::shared_mutex> snap_lock(snapshot_mu_);
    current_ = engine_->PublishSnapshot();
  }
  if (options_.live_ingest) {
    // From here on the Republisher thread owns every engine mutation;
    // session threads only stage (EnqueueFact) and read snapshots.
    ivm::RepublisherOptions ropts;
    ropts.cadence_ms = options_.ingest_cadence_ms;
    ropts.drain_threshold = options_.ingest_threshold;
    ropts.eval = options_.eval;
    republisher_ = std::make_unique<ivm::Republisher>(
        engine_, ropts, [this](const Snapshot& snapshot) {
          std::unique_lock<std::shared_mutex> lock(snapshot_mu_);
          current_ = snapshot;
        });
    republisher_->Start();
  }

  acceptor_ = std::thread([this] { AcceptLoop(); });
  sessions_.reserve(options_.sessions);
  for (size_t i = 0; i < options_.sessions; ++i) {
    sessions_.emplace_back([this] { SessionLoop(); });
  }
  return Status::Ok();
}

void Server::Shutdown() {
  draining_.store(true, std::memory_order_relaxed);
  queue_cv_.notify_all();
}

void Server::Wait() {
  if (acceptor_.joinable()) acceptor_.join();
  for (std::thread& t : sessions_) {
    if (t.joinable()) t.join();
  }
  sessions_.clear();
  // Refuse connections still queued when the sessions exited.
  std::deque<PendingConn> leftover;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    leftover.swap(queue_);
  }
  for (const PendingConn& conn : leftover) {
    stats_.queue_depth.fetch_sub(1, std::memory_order_relaxed);
    RefuseConnection(conn.fd, kCodeDraining, "server draining");
  }
  // Sessions are gone, so no more writers: the final drain publishes
  // every staged fact before the server reports itself drained.
  if (republisher_ != nullptr) republisher_->Stop();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void Server::AcceptLoop() {
  while (!draining_.load(std::memory_order_relaxed)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    int ready = ::poll(&pfd, 1, 100);
    if (ready <= 0) continue;  // timeout / EINTR: re-check drain flag
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    if (draining_.load(std::memory_order_relaxed)) {
      RefuseConnection(fd, kCodeDraining, "server draining");
      continue;
    }
    stats_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      if (queue_.size() >= options_.max_pending) {
        stats_.connections_rejected.fetch_add(1,
                                              std::memory_order_relaxed);
        RefuseConnection(
            fd, kCodeOverloaded,
            StrCat("admission queue full (", options_.max_pending,
                   " pending); retry later"));
        continue;
      }
      queue_.push_back(
          PendingConn{fd, std::chrono::steady_clock::now()});
      stats_.queue_depth.fetch_add(1, std::memory_order_relaxed);
    }
    queue_cv_.notify_one();
  }
}

void Server::SessionLoop() {
  for (;;) {
    PendingConn conn;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return !queue_.empty() ||
               draining_.load(std::memory_order_relaxed);
      });
      if (queue_.empty()) return;  // draining and nothing left to serve
      conn = queue_.front();
      queue_.pop_front();
    }
    stats_.queue_depth.fetch_sub(1, std::memory_order_relaxed);
    stats_.queue_wait.Record(MicrosSince(conn.enqueued));
    if (draining_.load(std::memory_order_relaxed)) {
      RefuseConnection(conn.fd, kCodeDraining, "server draining");
      continue;
    }
    ServeConnection(conn.fd);
    ::close(conn.fd);
  }
}

void Server::ServeConnection(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  Session session;
  LineReader reader(fd, &draining_);
  for (;;) {
    Result<std::string> line = reader.ReadLine();
    if (!line.ok()) {
      // EOF, socket error, or drain: the connection ends. In-flight
      // requests never reach here — drain is only observed between
      // requests.
      return;
    }
    if (line.value().empty()) continue;
    auto t0 = std::chrono::steady_clock::now();
    stats_.requests.fetch_add(1, std::memory_order_relaxed);
    stats_.in_flight.fetch_add(1, std::memory_order_relaxed);
    std::string reply;
    bool close_conn = false;
    Result<Request> request = ParseRequest(line.value());
    if (!request.ok()) {
      stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      reply = ErrorReply(kCodeBadRequest, request.status().message());
    } else {
      HandleRequest(&session, request.value(), &reader, &reply,
                    &close_conn);
    }
    reply.push_back('\n');
    bool written = WriteAll(fd, reply);
    stats_.request_latency.Record(MicrosSince(t0));
    stats_.in_flight.fetch_sub(1, std::memory_order_relaxed);
    if (!written || close_conn) return;
  }
}

void Server::HandleRequest(Session* session, const Request& request,
                           LineReader* reader, std::string* reply,
                           bool* close_conn) {
  switch (request.verb) {
    case Verb::kPrepare:
      *reply = HandlePrepare(request);
      return;
    case Verb::kBind:
      *reply = HandleBind(session, request);
      return;
    case Verb::kDeadline:
      session->deadline_ms = request.millis;
      *reply = StrCat("OK deadline=", request.millis);
      return;
    case Verb::kExec:
      *reply = HandleExec(session, request);
      return;
    case Verb::kBatch:
      *reply = HandleBatch(session, request, reader, close_conn);
      return;
    case Verb::kStats:
      *reply = HandleStats();
      return;
    case Verb::kHealth:
      *reply = HandleHealth();
      return;
    case Verb::kFact:
      *reply = HandleFact(request);
      return;
    case Verb::kIngest:
      *reply = HandleIngest(request, reader, close_conn);
      return;
    case Verb::kPublish:
      *reply = HandlePublish();
      return;
    case Verb::kQuit:
      *reply = "OK bye";
      *close_conn = true;
      return;
  }
  *reply = ErrorReply(kCodeBadRequest, "unhandled verb");
}

std::string Server::HandlePrepare(const Request& request) {
  // No engine mutex (the PR 7 write-stall fix): Prepare only reads the
  // program — immutable while the server runs — and interns goal
  // constants through the shared_mutex-guarded pool/symbols/catalog,
  // all safe concurrently with other PREPAREs, with executing readers
  // and with the Republisher's drains.
  Result<PreparedQuery> prepared = engine_->Prepare(request.goal);
  if (!prepared.ok()) {
    stats_.exec_errors.fetch_add(1, std::memory_order_relaxed);
    return ErrorReply(prepared.status());
  }
  auto stmt =
      std::make_shared<PreparedQuery>(std::move(prepared).value());
  const std::string& adornment = stmt->goal_adornment();
  std::string reply =
      StrCat("OK prepared name=", request.name,
             " params=", stmt->param_count(),
             " adornment=", adornment.empty() ? "-" : adornment);
  if (!stmt->warnings().empty()) {
    reply += StrCat(" warn=", stmt->warnings().front().code);
  }
  {
    std::unique_lock<std::shared_mutex> lock(stmts_mu_);
    statements_[request.name] = std::move(stmt);
  }
  return reply;
}

std::string Server::HandleBind(Session* session, const Request& request) {
  std::shared_ptr<PreparedQuery> stmt = FindStatement(request.name);
  if (stmt == nullptr) {
    stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
    return ErrorReply(kCodeUnknownStatement,
                      StrCat("no prepared statement '", request.name,
                             "' (PREPARE it first)"));
  }
  if (request.index > stmt->param_count()) {
    stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
    return ErrorReply(
        kCodeBadRequest,
        StrCat("no parameter $", request.index, " in '", request.name,
               "' (", stmt->param_count(), " parameter(s))"));
  }
  std::vector<std::optional<SeqId>>& binds = session->binds[request.name];
  binds.resize(stmt->param_count());
  binds[request.index - 1] =
      engine_->pool()->FromChars(request.values[0], engine_->symbols());
  return StrCat("OK bound $", request.index);
}

std::string Server::HandleExec(Session* session, const Request& request) {
  std::shared_ptr<PreparedQuery> stmt = FindStatement(request.name);
  if (stmt == nullptr) {
    stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
    return ErrorReply(kCodeUnknownStatement,
                      StrCat("no prepared statement '", request.name,
                             "' (PREPARE it first)"));
  }
  std::vector<std::optional<SeqId>> params;
  if (!request.values.empty()) {
    if (request.values.size() != stmt->param_count()) {
      stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      return ErrorReply(
          kCodeBadRequest,
          StrCat("'", request.name, "' takes ", stmt->param_count(),
                 " parameter(s), got ", request.values.size()));
    }
    params.reserve(request.values.size());
    for (const std::string& value : request.values) {
      params.emplace_back(
          engine_->pool()->FromChars(value, engine_->symbols()));
    }
  } else {
    auto it = session->binds.find(request.name);
    if (it != session->binds.end()) {
      params = it->second;
    } else {
      params.assign(stmt->param_count(), std::nullopt);
    }
  }
  bool deadline_set = false;
  query::SolveOptions options = OptionsFor(*session, &deadline_set);
  Snapshot snapshot = CurrentSnapshot();
  auto t0 = std::chrono::steady_clock::now();
  ResultSet rs = stmt->ExecuteWith(snapshot, params, options);
  double micros = MicrosSince(t0);
  stats_.exec_requests.fetch_add(1, std::memory_order_relaxed);
  stats_.exec_latency.Record(micros);
  if (!rs.ok()) {
    stats_.exec_errors.fetch_add(1, std::memory_order_relaxed);
    if (deadline_set &&
        rs.status().code() == StatusCode::kResourceExhausted) {
      stats_.deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
      return ErrorReply(kCodeDeadline, rs.status().message());
    }
    return ErrorReply(rs.status());
  }
  stats_.rows_returned.fetch_add(rs.size(), std::memory_order_relaxed);
  std::string reply = StrCat("OK rows=", rs.size(), " micros=",
                             static_cast<uint64_t>(micros));
  for (size_t i = 0; i < rs.size(); ++i) {
    reply.append("\nROW");
    for (const std::string& cell : rs.row(i).Render()) {
      reply.push_back(' ');
      reply.append(EncodeValue(cell));
    }
  }
  return reply;
}

std::string Server::HandleBatch(Session* session, const Request& request,
                                LineReader* reader, bool* close_conn) {
  if (request.count > kMaxBatchItems) {
    // The item lines are NOT consumed; resynchronisation is impossible,
    // so the connection ends.
    stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
    *close_conn = true;
    return ErrorReply(kCodeBadRequest,
                      StrCat("batch too large (max ", kMaxBatchItems,
                             " items)"));
  }
  // Consume the item lines first so a failed lookup leaves the stream
  // in sync.
  std::vector<std::vector<std::string>> lines;
  lines.reserve(request.count);
  for (size_t i = 0; i < request.count; ++i) {
    Result<std::string> line = reader->ReadLine();
    if (!line.ok()) {
      *close_conn = true;
      return ErrorReply(kCodeBadRequest,
                        "connection ended mid-batch");
    }
    lines.push_back(SplitValues(line.value()));
  }
  std::shared_ptr<PreparedQuery> stmt = FindStatement(request.name);
  if (stmt == nullptr) {
    stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
    return ErrorReply(kCodeUnknownStatement,
                      StrCat("no prepared statement '", request.name,
                             "' (PREPARE it first)"));
  }
  // One statement per wire batch: no cross-statement fusion compile on
  // the request path (the C++ BatchExecutor API offers it).
  BatchOptions batch_options;
  batch_options.fuse = false;
  BatchExecutor executor(engine_, {stmt.get()}, batch_options);
  std::vector<BatchExecutor::Item> items;
  items.reserve(lines.size());
  // Per line: the built item, or the index into `errors` of its ERR.
  std::vector<std::string> errors(lines.size());
  std::vector<size_t> item_of(lines.size(), SIZE_MAX);
  for (size_t i = 0; i < lines.size(); ++i) {
    Result<BatchExecutor::Item> item = executor.MakeItem(0, lines[i]);
    if (!item.ok()) {
      errors[i] = ErrorReply(item.status());
      continue;
    }
    item_of[i] = items.size();
    items.push_back(std::move(item).value());
  }
  bool deadline_set = false;
  query::SolveOptions options = OptionsFor(*session, &deadline_set);
  Snapshot snapshot = CurrentSnapshot();
  auto t0 = std::chrono::steady_clock::now();
  BatchResult result = executor.Execute(snapshot, items, options);
  double micros = MicrosSince(t0);
  stats_.batch_requests.fetch_add(1, std::memory_order_relaxed);
  stats_.batch_items.fetch_add(lines.size(), std::memory_order_relaxed);
  stats_.exec_latency.Record(micros);

  size_t total_rows = 0;
  bool any_deadline = false, any_error = false;
  for (size_t i = 0; i < lines.size(); ++i) {
    if (item_of[i] == SIZE_MAX) {
      any_error = true;
      continue;
    }
    const ResultSet& rs = result.results[item_of[i]];
    if (rs.ok()) {
      total_rows += rs.size();
    } else {
      any_error = true;
      if (rs.status().code() == StatusCode::kResourceExhausted &&
          deadline_set) {
        any_deadline = true;
      }
    }
  }
  if (any_error) {
    stats_.exec_errors.fetch_add(1, std::memory_order_relaxed);
  }
  if (any_deadline) {
    stats_.deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
  }
  stats_.rows_returned.fetch_add(total_rows, std::memory_order_relaxed);

  std::string reply =
      StrCat("OK items=", lines.size(), " rows=", total_rows,
             " runs=", result.stats.evaluations, " micros=",
             static_cast<uint64_t>(micros));
  for (size_t i = 0; i < lines.size(); ++i) {
    if (item_of[i] == SIZE_MAX) {
      reply.append(StrCat("\nITEM ", i, " ", errors[i]));
      continue;
    }
    const ResultSet& rs = result.results[item_of[i]];
    if (!rs.ok()) {
      std::string err =
          deadline_set &&
                  rs.status().code() == StatusCode::kResourceExhausted
              ? ErrorReply(kCodeDeadline, rs.status().message())
              : ErrorReply(rs.status());
      reply.append(StrCat("\nITEM ", i, " ", err));
      continue;
    }
    reply.append(StrCat("\nITEM ", i, " rows=", rs.size()));
    for (size_t r = 0; r < rs.size(); ++r) {
      reply.append("\nROW");
      for (const std::string& cell : rs.row(r).Render()) {
        reply.push_back(' ');
        reply.append(EncodeValue(cell));
      }
    }
  }
  return reply;
}

std::string Server::HandleStats() {
  std::vector<std::pair<std::string, std::string>> pairs =
      stats_.Render();
  {
    std::shared_lock<std::shared_mutex> lock(stmts_mu_);
    pairs.emplace_back("statements", std::to_string(statements_.size()));
  }
  {
    std::shared_lock<std::shared_mutex> lock(snapshot_mu_);
    pairs.emplace_back("snapshot_version",
                       std::to_string(current_.version()));
    pairs.emplace_back("snapshot_facts",
                       std::to_string(current_.TotalFacts()));
  }
  pairs.emplace_back("sessions", std::to_string(options_.sessions));
  pairs.emplace_back("max_pending", std::to_string(options_.max_pending));
  pairs.emplace_back("draining", draining() ? "1" : "0");
  if (republisher_ != nullptr) {
    const ivm::IngestQueue* queue = engine_->ingest_queue();
    const ivm::IngestStats ingest = republisher_->stats();
    pairs.emplace_back("ingest_queue_depth", std::to_string(queue->depth()));
    pairs.emplace_back("ingest_queue_capacity",
                       std::to_string(queue->capacity()));
    pairs.emplace_back("ingest_enqueued", std::to_string(queue->enqueued()));
    pairs.emplace_back("ingest_rejected", std::to_string(queue->rejected()));
    pairs.emplace_back("ingested_facts",
                       std::to_string(ingest.ingested_facts));
    pairs.emplace_back("ingest_batches", std::to_string(ingest.batches));
    pairs.emplace_back("resaturate_rounds",
                       std::to_string(ingest.resaturate_rounds));
    char dbuf[64];
    std::snprintf(dbuf, sizeof dbuf, "%.1f", ingest.resaturate_millis);
    pairs.emplace_back("resaturate_millis", dbuf);
    pairs.emplace_back("ingest_cold_fallbacks",
                       std::to_string(ingest.cold_fallbacks));
    pairs.emplace_back("ingest_errors", std::to_string(ingest.errors));
    pairs.emplace_back("publishes", std::to_string(ingest.publishes));
    pairs.emplace_back(
        "snapshot_staleness_ms",
        std::to_string(static_cast<uint64_t>(
            republisher_->SnapshotStalenessMillis())));
    const double uptime = stats_.uptime_seconds();
    std::snprintf(
        dbuf, sizeof dbuf, "%.1f",
        uptime > 0 ? static_cast<double>(ingest.ingested_facts) / uptime
                   : 0.0);
    pairs.emplace_back("ingest_facts_per_sec", dbuf);
  }
  std::string reply = StrCat("OK stats=", pairs.size());
  for (const auto& [key, value] : pairs) {
    reply.append(StrCat("\nSTAT ", key, " ", value));
  }
  return reply;
}

std::string Server::HandleHealth() {
  uint64_t version;
  {
    std::shared_lock<std::shared_mutex> lock(snapshot_mu_);
    version = current_.version();
  }
  return StrCat("OK ", draining() ? "draining" : "serving",
                " snapshot=", version, " uptime_ms=",
                static_cast<uint64_t>(stats_.uptime_seconds() * 1000));
}

std::string Server::HandleFact(const Request& request) {
  if (republisher_ != nullptr) {
    // Stage, don't mutate: interning is thread-safe and the queue is
    // MPSC, so this never blocks a reader or another writer. The fact
    // becomes visible when the Republisher drains (cadence/threshold)
    // or at the next PUBLISH.
    Status status = engine_->EnqueueFact(request.name, request.values);
    if (!status.ok()) {
      stats_.exec_errors.fetch_add(1, std::memory_order_relaxed);
      if (status.code() == StatusCode::kResourceExhausted) {
        return ErrorReply(kCodeOverloaded,
                          "ingest queue full; retry after a publish");
      }
      return ErrorReply(status);
    }
    return StrCat("OK fact queued depth=",
                  engine_->ingest_queue()->depth());
  }
  Status status;
  {
    std::lock_guard<std::mutex> lock(engine_mu_);
    status = engine_->AddFact(request.name, request.values);
  }
  if (!status.ok()) {
    stats_.exec_errors.fetch_add(1, std::memory_order_relaxed);
    return ErrorReply(status);
  }
  return "OK fact";
}

std::string Server::HandleIngest(const Request& request, LineReader* reader,
                                 bool* close_conn) {
  if (request.count > kMaxBatchItems) {
    // As with BATCH: the item lines are not consumed, resynchronisation
    // is impossible, the connection ends.
    stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
    *close_conn = true;
    return ErrorReply(kCodeBadRequest,
                      StrCat("ingest batch too large (max ",
                             kMaxBatchItems, " facts)"));
  }
  std::vector<std::vector<std::string>> lines;
  lines.reserve(request.count);
  for (size_t i = 0; i < request.count; ++i) {
    Result<std::string> line = reader->ReadLine();
    if (!line.ok()) {
      *close_conn = true;
      return ErrorReply(kCodeBadRequest, "connection ended mid-ingest");
    }
    lines.push_back(SplitValues(line.value()));
  }
  size_t staged = 0;
  for (size_t i = 0; i < lines.size(); ++i) {
    Status status =
        republisher_ != nullptr
            ? engine_->EnqueueFact(request.name, lines[i])
            : [&] {
                std::lock_guard<std::mutex> lock(engine_mu_);
                return engine_->AddFact(request.name, lines[i]);
              }();
    if (!status.ok()) {
      // Facts before the failure stay staged (each is independent).
      stats_.exec_errors.fetch_add(1, std::memory_order_relaxed);
      std::string_view code =
          status.code() == StatusCode::kResourceExhausted
              ? kCodeOverloaded
              : WireCode(status);
      return ErrorReply(
          code, StrCat("fact ", i, " of ", lines.size(), ": ",
                       status.message(), " (", staged, " staged)"));
    }
    ++staged;
  }
  return StrCat("OK ingested=", staged,
                " depth=", engine_->ingest_queue()->depth());
}

std::string Server::HandlePublish() {
  if (republisher_ != nullptr) {
    // Force one drain + resaturation + republish; every fact staged
    // before this request is visible when the reply goes out.
    Status status = republisher_->ForcePublish();
    if (!status.ok()) {
      stats_.exec_errors.fetch_add(1, std::memory_order_relaxed);
      return ErrorReply(status);
    }
    Snapshot snapshot = CurrentSnapshot();
    return StrCat("OK snapshot=", snapshot.version(),
                  " facts=", snapshot.TotalFacts());
  }
  Snapshot snapshot;
  {
    std::lock_guard<std::mutex> lock(engine_mu_);
    snapshot = engine_->PublishSnapshot();
  }
  {
    std::unique_lock<std::shared_mutex> lock(snapshot_mu_);
    current_ = snapshot;
  }
  return StrCat("OK snapshot=", snapshot.version(),
                " facts=", snapshot.TotalFacts());
}

std::shared_ptr<PreparedQuery> Server::FindStatement(
    const std::string& name) {
  std::shared_lock<std::shared_mutex> lock(stmts_mu_);
  auto it = statements_.find(name);
  return it == statements_.end() ? nullptr : it->second;
}

Snapshot Server::CurrentSnapshot() {
  std::shared_lock<std::shared_mutex> lock(snapshot_mu_);
  return current_;
}

query::SolveOptions Server::OptionsFor(const Session& session,
                                       bool* deadline_set) const {
  query::SolveOptions options;
  options.eval = options_.eval;
  uint64_t deadline = session.deadline_ms != 0
                          ? session.deadline_ms
                          : options_.default_deadline_ms;
  *deadline_set = deadline != 0;
  if (deadline != 0) {
    int64_t millis = static_cast<int64_t>(deadline);
    if (options.eval.limits.max_millis == 0 ||
        millis < options.eval.limits.max_millis) {
      options.eval.limits.max_millis = millis;
    }
  }
  return options;
}

}  // namespace serve
}  // namespace seqlog
