// seqlog serving tier: the concurrent query server.
//
// Server turns one Engine into a network service speaking the protocol
// of protocol.h (newline-delimited text over loopback TCP). The
// concurrency model keeps the engine's own contracts intact:
//
//  * One ACCEPTOR thread accepts connections into a BOUNDED queue.
//    Admission control is at the door: when the queue is full the
//    connection is refused immediately with `ERR SL-E102` instead of
//    queueing unboundedly (closed-loop clients see backpressure as a
//    fast error, not a growing tail).
//  * A FIXED pool of session threads serves connections one at a time,
//    request by request. Session count bounds engine concurrency; the
//    queue bounds memory.
//  * Every EXEC/BATCH pins the LATEST PUBLISHED Snapshot at request
//    start and runs PreparedQuery::ExecuteWith / BatchExecutor::Execute
//    against it — const, lock-free reads.
//  * WRITES never hold the engine mutex (the PR 7 write stall): FACT
//    and INGEST intern on the session thread and stage on the engine's
//    bounded ingest queue (Engine::EnqueueFact); an ivm::Republisher
//    thread — the engine's only mutator while the server runs — drains
//    at a cadence/threshold, re-saturates the model incrementally and
//    swaps the published snapshot. PUBLISH forces one such cycle.
//    PREPARE takes no lock either: it only reads the (immutable while
//    serving) program and interns through shared_mutex-guarded tables,
//    so a slow resaturation never stalls session threads. With
//    options.live_ingest=false the legacy engine_mu_ paths remain.
//  * Per-request deadlines (session DEADLINE verb or the configured
//    default) map onto the engine's own time budget
//    (eval::EvalLimits::max_millis), so a deadline cuts the fixpoint
//    off mid-run with partial work discarded and `ERR SL-E103`.
//  * Graceful drain: Shutdown() stops accepting, lets in-flight
//    requests complete, closes idle connections, and refuses queued
//    ones with `ERR SL-E104`. Wait() joins everything.
//
// Thread-safety: Start/Shutdown/Wait are for the owning thread;
// stats() reads are safe from anywhere, any time. The Engine must not
// be mutated externally while the server runs (the server owns its
// mutation mutex).
//
// tools/seqlog_serve.cc wraps this class in a binary; docs/SERVING.md
// documents protocol and operational semantics.
#ifndef SEQLOG_SERVE_SERVER_H_
#define SEQLOG_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "ivm/republisher.h"
#include "serve/protocol.h"
#include "serve/stats.h"

namespace seqlog {
namespace serve {

struct ServerOptions {
  /// Loopback only by design: the protocol is unauthenticated.
  std::string host = "127.0.0.1";
  /// 0 = ephemeral (read the chosen port back via port()).
  uint16_t port = 0;
  /// Fixed session-thread count (= max concurrently served connections).
  size_t sessions = 4;
  /// Admission bound: accepted connections waiting for a session beyond
  /// this are refused with ERR SL-E102.
  size_t max_pending = 64;
  /// Default per-request deadline in ms (0 = none); sessions override
  /// with the DEADLINE verb.
  uint64_t default_deadline_ms = 0;
  /// Evaluation options for EXEC/BATCH runs (thread count, budgets).
  eval::EvalOptions eval;
  /// Live ingest: when true (default) the server runs an
  /// ivm::Republisher that owns all engine mutations — FACT/INGEST
  /// stage on the ingest queue lock-free and snapshots republish on a
  /// cadence. When false, FACT/PUBLISH serialise on the engine mutex
  /// (the pre-IVM behaviour; facts are only visible after PUBLISH).
  bool live_ingest = true;
  /// Republisher knobs (cadence, drain threshold); the eval options for
  /// resaturation runs are taken from `eval` above.
  uint64_t ingest_cadence_ms = 25;
  size_t ingest_threshold = 256;
};

class Server {
 public:
  /// Borrows `engine` (must outlive the server). The program should be
  /// loaded and facts added before Start; further FACT/PUBLISH arrive
  /// over the wire.
  explicit Server(Engine* engine, ServerOptions options = {});
  ~Server();  ///< Shutdown() + Wait().
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, publishes the initial snapshot and spawns the
  /// acceptor + session threads. kFailedPrecondition when already
  /// started; kInternal on socket errors.
  Status Start();

  /// The bound port (after Start; useful with options.port == 0).
  uint16_t port() const { return port_; }

  /// Begins a graceful drain (idempotent, callable from any thread or
  /// a signal-triggered thread): stop accepting, finish in-flight
  /// requests, refuse queued connections.
  void Shutdown();
  /// Joins all threads (after Shutdown; idempotent).
  void Wait();

  bool draining() const {
    return draining_.load(std::memory_order_relaxed);
  }
  const ServerStats& stats() const { return stats_; }

 private:
  struct PendingConn {
    int fd = -1;
    std::chrono::steady_clock::time_point enqueued;
  };
  /// Per-connection state (owned by the serving session thread).
  struct Session {
    std::map<std::string, std::vector<std::optional<SeqId>>> binds;
    uint64_t deadline_ms = 0;  ///< 0 = server default
  };
  class LineReader;

  void AcceptLoop();
  void SessionLoop();
  void ServeConnection(int fd);
  /// Appends the reply lines for one request to `reply` ('\n'-joined,
  /// no trailing newline). Sets *close_conn to end the connection.
  void HandleRequest(Session* session, const Request& request,
                     LineReader* reader, std::string* reply,
                     bool* close_conn);

  std::string HandlePrepare(const Request& request);
  std::string HandleBind(Session* session, const Request& request);
  std::string HandleExec(Session* session, const Request& request);
  std::string HandleBatch(Session* session, const Request& request,
                          LineReader* reader, bool* close_conn);
  std::string HandleStats();
  std::string HandleHealth();
  std::string HandleFact(const Request& request);
  std::string HandleIngest(const Request& request, LineReader* reader,
                           bool* close_conn);
  std::string HandlePublish();

  std::shared_ptr<PreparedQuery> FindStatement(const std::string& name);
  Snapshot CurrentSnapshot();
  /// Solve options with the session's effective deadline folded into
  /// the eval time budget; *deadline_set reports whether one applies.
  query::SolveOptions OptionsFor(const Session& session,
                                 bool* deadline_set) const;

  Engine* engine_;
  ServerOptions options_;
  ServerStats stats_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};

  std::thread acceptor_;
  std::vector<std::thread> sessions_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<PendingConn> queue_;

  /// Serialises engine mutations on the legacy (live_ingest=false)
  /// FACT/PUBLISH paths. Execution paths never take it — they read
  /// pinned snapshots — and with live ingest on, nothing takes it: the
  /// Republisher thread is the engine's only mutator.
  std::mutex engine_mu_;
  /// Drains the ingest queue, re-saturates, republishes (live ingest).
  std::unique_ptr<ivm::Republisher> republisher_;
  std::shared_mutex stmts_mu_;
  std::map<std::string, std::shared_ptr<PreparedQuery>> statements_;
  std::shared_mutex snapshot_mu_;
  Snapshot current_;
};

}  // namespace serve
}  // namespace seqlog

#endif  // SEQLOG_SERVE_SERVER_H_
