// seqlog serving tier: batched prepared execution.
//
// BatchExecutor answers MANY bindings of one or several PreparedQuerys
// in as few semi-naive runs as possible — usually one. The magic seed
// facts of every batch item are injected together, so the fixpoint
// rounds, the clause firings and the extended-active-domain closure are
// paid once for the whole batch and amortised across its items; the
// answers are demultiplexed per item from each goal's answer predicate
// by the item's bound values:
//
//   auto pq = engine.Prepare("?- rnaseq($1, X).");
//   serve::BatchExecutor batch(&engine, {&*pq});
//   std::vector<serve::BatchExecutor::Item> items;
//   for (const std::string& probe : probes) {
//     items.push_back(batch.MakeItem(0, {probe}).value());
//   }
//   auto result = batch.Execute(engine.PublishSnapshot(), items);
//   // result.results[i] == what pq->Bind(1, probes[i]) + Execute returns
//
// The hard invariant (tests/batch_executor_test.cc): every
// result.results[i] is answer-identical — same rows, same order, same
// status — to the i-th of N sequential PreparedQuery executions. Only
// the counters differ: result.stats.evaluations reports how many runs
// the batch actually paid for (1 here, versus N sequential ones).
//
// Several DISTINCT queries batch together too: the executor fuses their
// magic rewrites into one evaluator at construction (clause-level union,
// compiled once — query/solver.h FuseGoals), so a mixed batch still
// costs a single run. When fusing is impossible (the union closes a
// constructive cycle no individual rewrite has) the executor falls back
// to one run per distinct query — still amortised across that query's
// items — and fused() reports false.
//
// Threading: construction is not thread-safe (it may compile a fused
// program into the shared catalog). Execute(snapshot, ...) is const and
// thread-safe under the same contract as PreparedQuery::Execute: many
// threads may share one BatchExecutor and one (or several) snapshots.
//
// Lifetime: borrows the engine and the queries; both must outlive the
// executor. Queries must have been prepared on `engine`.
#ifndef SEQLOG_SERVE_BATCH_EXECUTOR_H_
#define SEQLOG_SERVE_BATCH_EXECUTOR_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "base/result.h"
#include "core/prepared_query.h"
#include "core/result_set.h"
#include "core/snapshot.h"
#include "query/solver.h"

namespace seqlog {

class Engine;

namespace serve {

struct BatchOptions {
  /// Try to fuse distinct queries' rewrites into one evaluator at
  /// construction. Off = always one run per distinct query.
  bool fuse = true;
};

/// Counters of one Execute call (answer-independent bookkeeping).
struct BatchStats {
  size_t items = 0;        ///< batch items answered
  size_t evaluations = 0;  ///< semi-naive runs actually performed
  bool fused = false;      ///< distinct queries shared one compiled program
  eval::EvalStats eval;    ///< aggregate over the runs
};

/// The answers of one batched execution, in item order.
struct BatchResult {
  /// First non-OK run status (per-item failures do NOT fail the batch;
  /// see the per-ResultSet statuses).
  Status status;
  std::vector<ResultSet> results;
  BatchStats stats;
};

class BatchExecutor {
 public:
  /// One batch entry: which query it instantiates (an index into the
  /// constructor's query list) and its `$N` parameter values.
  struct Item {
    size_t query = 0;
    std::vector<std::optional<SeqId>> params;
  };

  /// `queries` are borrowed for the executor's lifetime; all must have
  /// been prepared on `engine`.
  BatchExecutor(Engine* engine,
                std::vector<const PreparedQuery*> queries,
                const BatchOptions& options = {});

  /// Builds an item binding `$1..$k` of query `query` to the characters
  /// of `args` (interned like Engine::AddFact arguments, so batch items
  /// can be built from wire values). kOutOfRange on a bad query index,
  /// kInvalidArgument when args.size() differs from the query's
  /// parameter count.
  Result<Item> MakeItem(size_t query,
                        const std::vector<std::string>& args) const;

  /// Answers every item against `snapshot` — one fixpoint run for the
  /// whole batch when fused() (or when the items instantiate a single
  /// query), else one per distinct query. results[i] is
  /// answer-identical to an individual Execute of item i. Const and
  /// thread-safe. An empty batch returns OK with no results and zero
  /// evaluations.
  BatchResult Execute(const Snapshot& snapshot,
                      const std::vector<Item>& items,
                      const query::SolveOptions& options = {}) const;

  size_t query_count() const { return queries_.size(); }
  /// True when distinct queries share one fused evaluator.
  bool fused() const { return fused_ != nullptr; }
  /// Why fusing was (not) possible — OK when fused() or when there was
  /// nothing to fuse; the FuseGoals error after a fallback.
  const Status& fusion_status() const { return fusion_status_; }

 private:
  Engine* engine_;
  std::vector<const PreparedQuery*> queries_;
  query::Solver solver_;
  std::shared_ptr<const eval::Evaluator> fused_;
  Status fusion_status_;
};

}  // namespace serve
}  // namespace seqlog

#endif  // SEQLOG_SERVE_BATCH_EXECUTOR_H_
