#include "serve/batch_executor.h"

#include <utility>

#include "base/string_util.h"
#include "core/engine.h"

namespace seqlog {
namespace serve {

BatchExecutor::BatchExecutor(Engine* engine,
                             std::vector<const PreparedQuery*> queries,
                             const BatchOptions& options)
    : engine_(engine),
      queries_(std::move(queries)),
      solver_(engine->catalog(), engine->pool(), engine->registry()) {
  if (!options.fuse) return;
  std::vector<const query::PreparedGoal*> goals;
  goals.reserve(queries_.size());
  for (const PreparedQuery* q : queries_) {
    goals.push_back(&q->prepared_goal());
  }
  Result<std::shared_ptr<const eval::Evaluator>> fused =
      solver_.FuseGoals(goals, *engine_->symbols());
  if (fused.ok()) {
    // Null when fewer than two goals carry a rewrite — groupwise runs
    // already are optimal there.
    fused_ = std::move(fused).value();
  } else {
    // The union is not demand-evaluable; run one fixpoint per distinct
    // goal instead (still amortised across that goal's items).
    fusion_status_ = fused.status();
  }
}

Result<BatchExecutor::Item> BatchExecutor::MakeItem(
    size_t query, const std::vector<std::string>& args) const {
  if (query >= queries_.size()) {
    return Status::OutOfRange(StrCat("no query #", query, " in batch (",
                                     queries_.size(), " prepared)"));
  }
  const size_t want = queries_[query]->param_count();
  if (args.size() != want) {
    return Status::InvalidArgument(
        StrCat("query '", queries_[query]->goal(), "' takes ", want,
               " parameter(s), got ", args.size()));
  }
  Item item;
  item.query = query;
  item.params.reserve(args.size());
  for (const std::string& arg : args) {
    item.params.emplace_back(
        engine_->pool()->FromChars(arg, engine_->symbols()));
  }
  return item;
}

BatchResult BatchExecutor::Execute(const Snapshot& snapshot,
                                   const std::vector<Item>& items,
                                   const query::SolveOptions& options) const {
  BatchResult out;
  if (!snapshot.valid()) {
    out.status =
        Status::InvalidArgument("invalid snapshot (default-constructed?)");
    return out;
  }
  std::vector<const query::PreparedGoal*> goals;
  goals.reserve(queries_.size());
  for (const PreparedQuery* q : queries_) {
    goals.push_back(&q->prepared_goal());
  }
  std::vector<query::BatchItem> batch;
  batch.reserve(items.size());
  for (const Item& item : items) {
    batch.push_back(query::BatchItem{item.query, item.params});
  }
  query::BatchSolveResult solved =
      solver_.ExecuteBatch(goals, fused_.get(), snapshot.db(), batch,
                           options, snapshot.domain_base());
  out.status = std::move(solved.status);
  out.stats.items = items.size();
  out.stats.evaluations = solved.evaluations;
  out.stats.fused = fused_ != nullptr;
  out.stats.eval = solved.eval;
  out.results.reserve(solved.items.size());
  for (size_t i = 0; i < solved.items.size(); ++i) {
    // Out-of-range goal indices carry their error in the per-item
    // status; render them with arity 0.
    const size_t arity = batch[i].goal < goals.size()
                             ? goals[batch[i].goal]->goal.args.size()
                             : 0;
    out.results.push_back(ResultSet(std::move(solved.items[i]), arity,
                                    engine_->pool(), engine_->symbols(),
                                    snapshot.shared()));
  }
  return out;
}

}  // namespace serve
}  // namespace seqlog
