#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "base/string_util.h"

namespace seqlog {
namespace serve {

namespace {

/// Value of a `key=<n>` token in a reply header, or 0.
uint64_t HeaderCount(const std::string& header, const char* key) {
  std::string needle = StrCat(" ", key, "=");
  size_t at = header.find(needle);
  if (at == std::string::npos) return 0;
  uint64_t value = 0;
  for (size_t i = at + needle.size();
       i < header.size() && header[i] >= '0' && header[i] <= '9'; ++i) {
    value = value * 10 + static_cast<uint64_t>(header[i] - '0');
  }
  return value;
}

}  // namespace

std::string Reply::error_code() const {
  if (ok() || header.rfind("ERR ", 0) != 0) return std::string();
  size_t end = header.find(' ', 4);
  if (end == std::string::npos) end = header.size();
  return header.substr(4, end - 4);
}

TextClient::~TextClient() { Close(); }

TextClient::TextClient(TextClient&& other) noexcept
    : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
}

TextClient& TextClient::operator=(TextClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
  }
  return *this;
}

void TextClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

Status TextClient::Connect(const std::string& host, uint16_t port) {
  Close();
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const char* numeric = host == "localhost" ? "127.0.0.1" : host.c_str();
  if (::inet_pton(AF_INET, numeric, &addr.sin_addr) != 1) {
    return Status::InvalidArgument(
        StrCat("bad host '", host, "' (numeric IPv4 or localhost)"));
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(StrCat("socket: ", std::strerror(errno)));
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    Status status = Status::Internal(
        StrCat("connect ", host, ":", port, ": ", std::strerror(errno)));
    ::close(fd);
    return status;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  fd_ = fd;
  return Status::Ok();
}

Status TextClient::SendLine(const std::string& line) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  std::string wire = line;
  wire.push_back('\n');
  size_t sent = 0;
  while (sent < wire.size()) {
    ssize_t n = ::send(fd_, wire.data() + sent, wire.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(StrCat("send: ", std::strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Result<std::string> TextClient::RecvLine() {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  for (;;) {
    size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    char chunk[4096];
    ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(StrCat("recv: ", std::strerror(errno)));
    }
    if (n == 0) {
      return Status::NotFound("connection closed by server");
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

Result<Reply> TextClient::ReadReply() {
  Reply reply;
  SEQLOG_ASSIGN_OR_RETURN(reply.header, RecvLine());
  if (!reply.ok()) return reply;  // ERR replies are a single line
  // The OK header announces the body: stats=K STAT lines, or items=M
  // ITEM lines plus rows=R ROW lines (EXEC has only rows=).
  uint64_t body = HeaderCount(reply.header, "stats") +
                  HeaderCount(reply.header, "items") +
                  HeaderCount(reply.header, "rows");
  reply.body.reserve(body);
  for (uint64_t i = 0; i < body; ++i) {
    std::string line;
    SEQLOG_ASSIGN_OR_RETURN(line, RecvLine());
    reply.body.push_back(std::move(line));
  }
  return reply;
}

Result<Reply> TextClient::Roundtrip(const std::string& line) {
  SEQLOG_RETURN_IF_ERROR(SendLine(line));
  return ReadReply();
}

Result<Reply> TextClient::Roundtrip(
    const std::string& line, const std::vector<std::string>& extra_lines) {
  SEQLOG_RETURN_IF_ERROR(SendLine(line));
  for (const std::string& extra : extra_lines) {
    SEQLOG_RETURN_IF_ERROR(SendLine(extra));
  }
  return ReadReply();
}

}  // namespace serve
}  // namespace seqlog
