#include "serve/stats.h"

#include <cmath>
#include <cstdio>

namespace seqlog {
namespace serve {

namespace {

std::string FormatDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.1f", value);
  return buf;
}

}  // namespace

size_t LatencyHistogram::BucketOf(double micros) {
  if (!(micros > 1.0)) return 0;
  // Four buckets per octave: index = 4 * log2(us).
  double index = 4.0 * std::log2(micros);
  if (index >= static_cast<double>(kBuckets - 1)) return kBuckets - 1;
  return static_cast<size_t>(index);
}

double LatencyHistogram::BucketMidpoint(size_t bucket) {
  // Geometric midpoint of [2^(b/4), 2^((b+1)/4)).
  return std::exp2((static_cast<double>(bucket) + 0.5) / 4.0);
}

void LatencyHistogram::Record(double micros) {
  if (micros < 0) micros = 0;
  buckets_[BucketOf(micros)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_nanos_.fetch_add(static_cast<uint64_t>(micros * 1e3),
                       std::memory_order_relaxed);
}

double LatencyHistogram::mean_micros() const {
  uint64_t n = count_.load(std::memory_order_relaxed);
  if (n == 0) return 0;
  return static_cast<double>(sum_nanos_.load(std::memory_order_relaxed)) /
         1e3 / static_cast<double>(n);
}

double LatencyHistogram::PercentileMicros(double p) const {
  uint64_t n = count_.load(std::memory_order_relaxed);
  if (n == 0) return 0;
  // Rank of the percentile sample (1-based, nearest-rank method).
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(n)));
  if (rank < 1) rank = 1;
  uint64_t seen = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    seen += buckets_[b].load(std::memory_order_relaxed);
    if (seen >= rank) return BucketMidpoint(b);
  }
  return BucketMidpoint(kBuckets - 1);
}

void LatencyHistogram::MergeFrom(const LatencyHistogram& other) {
  for (size_t b = 0; b < kBuckets; ++b) {
    uint64_t c = other.buckets_[b].load(std::memory_order_relaxed);
    if (c != 0) buckets_[b].fetch_add(c, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  sum_nanos_.fetch_add(other.sum_nanos_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
}

double ServerStats::uptime_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

double ServerStats::qps() const {
  double up = uptime_seconds();
  if (up <= 0) return 0;
  return static_cast<double>(requests.load(std::memory_order_relaxed)) / up;
}

std::vector<std::pair<std::string, std::string>> ServerStats::Render()
    const {
  std::vector<std::pair<std::string, std::string>> out;
  auto put_u = [&out](const char* key, uint64_t value) {
    out.emplace_back(key, std::to_string(value));
  };
  auto put_i = [&out](const char* key, int64_t value) {
    out.emplace_back(key, std::to_string(value));
  };
  auto put_d = [&out](const char* key, double value) {
    out.emplace_back(key, FormatDouble(value));
  };
  put_u("connections_accepted", connections_accepted.load());
  put_u("connections_rejected", connections_rejected.load());
  put_i("queue_depth", queue_depth.load());
  put_u("requests", requests.load());
  put_u("exec_requests", exec_requests.load());
  put_u("batch_requests", batch_requests.load());
  put_u("batch_items", batch_items.load());
  put_u("rows_returned", rows_returned.load());
  put_i("in_flight", in_flight.load());
  put_u("protocol_errors", protocol_errors.load());
  put_u("exec_errors", exec_errors.load());
  put_u("deadline_exceeded", deadline_exceeded.load());
  put_d("uptime_seconds", uptime_seconds());
  put_d("qps", qps());
  auto put_hist = [&](const char* prefix, const LatencyHistogram& h) {
    std::string p(prefix);
    out.emplace_back(p + "_count", std::to_string(h.count()));
    out.emplace_back(p + "_mean_us", FormatDouble(h.mean_micros()));
    out.emplace_back(p + "_p50_us", FormatDouble(h.PercentileMicros(50)));
    out.emplace_back(p + "_p95_us", FormatDouble(h.PercentileMicros(95)));
    out.emplace_back(p + "_p99_us", FormatDouble(h.PercentileMicros(99)));
  };
  put_hist("queue_wait", queue_wait);
  put_hist("exec", exec_latency);
  put_hist("request", request_latency);
  return out;
}

}  // namespace serve
}  // namespace seqlog
