// seqlog: recursive-descent parser for Sequence/Transducer Datalog.
//
// Grammar (EBNF):
//   program    := clause*
//   clause     := atom [ ":-" body ] "."
//   goal       := [ "?-" ] atom [ "." ]          (ParseGoal only)
//   body       := "true" | literal { "," literal }
//   literal    := atom | seqterm ("=" | "!=") seqterm
//   atom       := IDENT [ "(" seqterm { "," seqterm } ")" ]
//   seqterm    := primary { "++" primary }          (left associative)
//   primary    := "eps"
//              | STRING | INT | IDENT               (constant sequences)
//              | QUOTED_SYMBOL                      (one symbol)
//              | PARAM                              ($N, goals only)
//              | "@" IDENT "(" seqterm { "," seqterm } ")"
//              | (VARIABLE | constant) [ "[" index [ ":" index ] "]" ]
//   index      := iatom { ("+"|"-") iatom }
//   iatom      := INT | VARIABLE | "end"
//
// A bare IDENT or INT in sequence position denotes the sequence of its
// characters; s[n] abbreviates s[n:n]. Constants are interned into the
// supplied SymbolTable/SequencePool at parse time.
#ifndef SEQLOG_PARSER_PARSER_H_
#define SEQLOG_PARSER_PARSER_H_

#include <string_view>

#include "ast/clause.h"
#include "base/result.h"
#include "sequence/sequence_pool.h"
#include "sequence/symbol_table.h"

namespace seqlog {
namespace parser {

/// Parses `source` into a validated program (ast::Validate is applied).
/// Errors carry line:column positions.
Result<ast::Program> ParseProgram(std::string_view source,
                                  SymbolTable* symbols, SequencePool* pool);

/// Parses `source` without applying ast::Validate. The linter
/// (analysis/lint.h) uses this so it can report *all* structural
/// problems as located diagnostics instead of stopping at the first
/// validation error. Everything else should call ParseProgram.
Result<ast::Program> ParseProgramUnvalidated(std::string_view source,
                                             SymbolTable* symbols,
                                             SequencePool* pool);

/// Parses a goal `?- p(t1,...,tk).` into its predicate atom (the `?-`
/// prefix and the trailing period are both optional). Goals drive the
/// demand-driven solver (query/solver.h); which argument shapes are
/// demand-evaluable is decided there, not here.
///
/// Goals (and only goals) may use `$N` parameter placeholders, e.g.
/// `?- suffix($1).` — the basis of prepared queries
/// (core/prepared_query.h). A parameter parses as a variable with the
/// reserved name "$N" (user variables can never start with '$'); use
/// IsParamVariable/ParamIndex to recognise them downstream.
Result<ast::Atom> ParseGoal(std::string_view source, SymbolTable* symbols,
                            SequencePool* pool);

/// True if `var` is a goal parameter placeholder ("$1", "$2", ...).
bool IsParamVariable(std::string_view var);

/// 1-based index of a parameter variable ("$3" -> 3). `var` must satisfy
/// IsParamVariable.
size_t ParamIndex(std::string_view var);

/// Parses a single clause (convenience for tests and the REPL-style
/// examples). `source` must contain exactly one clause.
Result<ast::Clause> ParseClause(std::string_view source,
                                SymbolTable* symbols, SequencePool* pool);

}  // namespace parser
}  // namespace seqlog

#endif  // SEQLOG_PARSER_PARSER_H_
