// seqlog: tokenizer for the Sequence/Transducer Datalog surface syntax.
//
// Syntax summary (see parser.h for the grammar):
//   suffix(X[N:end]) :- r(X).            % structural recursion
//   answer(X ++ Y)   :- r(X), r(Y).      % constructive term
//   rna(D, @transcribe(D)) :- dna(D).    % transducer term
// Comments run from '%' to end of line. Sequence constants are written
// bare (acgt), quoted ("ac gt"), or as single multi-character symbols
// ('q0'). `eps` is the empty sequence; `end` is the last-position keyword;
// `true` is the empty body.
#ifndef SEQLOG_PARSER_LEXER_H_
#define SEQLOG_PARSER_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "base/result.h"
#include "base/status.h"

namespace seqlog {
namespace parser {

enum class TokenType {
  kIdent,         // lowercase-initial identifier (predicate / constant)
  kVariable,      // uppercase-initial identifier
  kInt,           // non-negative integer literal
  kString,        // "..." sequence constant (one symbol per character)
  kQuotedSymbol,  // '...' single multi-character symbol
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kColon,
  kComma,
  kPeriod,
  kImplies,  // :-
  kQuery,    // ?- (goal prefix, see parser::ParseGoal)
  kParam,    // $N query parameter (goals only; text holds the digits)
  kEq,       // =
  kNeq,      // !=
  kPlus,
  kMinus,
  kConcat,  // ++
  kAt,      // @
  kEndKw,   // end
  kEpsKw,   // eps
  kTrueKw,  // true
  kEof,
};

/// Returns a printable name for diagnostics ("':-'", "identifier", ...).
std::string_view TokenTypeName(TokenType type);

struct Token {
  TokenType type;
  std::string text;  // identifier/string/integer payload
  int line = 1;
  int column = 1;
};

/// Tokenizes `source`. On error returns kInvalidArgument with the
/// offending line and column in the message.
Result<std::vector<Token>> Tokenize(std::string_view source);

}  // namespace parser
}  // namespace seqlog

#endif  // SEQLOG_PARSER_LEXER_H_
