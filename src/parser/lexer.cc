#include "parser/lexer.h"

#include <cctype>

#include "base/string_util.h"

namespace seqlog {
namespace parser {

std::string_view TokenTypeName(TokenType type) {
  switch (type) {
    case TokenType::kIdent:
      return "identifier";
    case TokenType::kVariable:
      return "variable";
    case TokenType::kInt:
      return "integer";
    case TokenType::kString:
      return "string constant";
    case TokenType::kQuotedSymbol:
      return "symbol constant";
    case TokenType::kLParen:
      return "'('";
    case TokenType::kRParen:
      return "')'";
    case TokenType::kLBracket:
      return "'['";
    case TokenType::kRBracket:
      return "']'";
    case TokenType::kColon:
      return "':'";
    case TokenType::kComma:
      return "','";
    case TokenType::kPeriod:
      return "'.'";
    case TokenType::kImplies:
      return "':-'";
    case TokenType::kQuery:
      return "'?-'";
    case TokenType::kParam:
      return "parameter";
    case TokenType::kEq:
      return "'='";
    case TokenType::kNeq:
      return "'!='";
    case TokenType::kPlus:
      return "'+'";
    case TokenType::kMinus:
      return "'-'";
    case TokenType::kConcat:
      return "'++'";
    case TokenType::kAt:
      return "'@'";
    case TokenType::kEndKw:
      return "'end'";
    case TokenType::kEpsKw:
      return "'eps'";
    case TokenType::kTrueKw:
      return "'true'";
    case TokenType::kEof:
      return "end of input";
  }
  return "token";
}

Result<std::vector<Token>> Tokenize(std::string_view source) {
  std::vector<Token> out;
  int line = 1;
  int column = 1;
  size_t i = 0;
  auto error = [&](std::string_view what) {
    return Status::InvalidArgument(
        StrCat("lex error at ", line, ":", column, ": ", what));
  };
  auto push = [&](TokenType type, std::string text) {
    out.push_back(Token{type, std::move(text), line, column});
  };
  auto advance = [&](size_t n) {
    for (size_t k = 0; k < n && i < source.size(); ++k, ++i) {
      if (source[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
  };

  while (i < source.size()) {
    char c = source[i];
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance(1);
      continue;
    }
    if (c == '%') {  // comment to end of line
      while (i < source.size() && source[i] != '\n') advance(1);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      while (i < source.size() &&
             std::isdigit(static_cast<unsigned char>(source[i]))) {
        ++i;
      }
      std::string text(source.substr(start, i - start));
      // Columns: we bypassed advance(); restore bookkeeping.
      Token t{TokenType::kInt, std::move(text), line, column};
      column += static_cast<int>(i - start);
      out.push_back(std::move(t));
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < source.size() &&
             (std::isalnum(static_cast<unsigned char>(source[i])) ||
              source[i] == '_')) {
        ++i;
      }
      std::string text(source.substr(start, i - start));
      TokenType type;
      if (text == "end") {
        type = TokenType::kEndKw;
      } else if (text == "eps") {
        type = TokenType::kEpsKw;
      } else if (text == "true") {
        type = TokenType::kTrueKw;
      } else if (std::isupper(static_cast<unsigned char>(text[0])) ||
                 text[0] == '_') {
        type = TokenType::kVariable;
      } else {
        type = TokenType::kIdent;
      }
      Token t{type, std::move(text), line, column};
      column += static_cast<int>(i - start);
      out.push_back(std::move(t));
      continue;
    }
    if (c == '"' || c == '\'') {
      char quote = c;
      size_t start = i + 1;
      size_t j = start;
      while (j < source.size() && source[j] != quote && source[j] != '\n') {
        ++j;
      }
      if (j >= source.size() || source[j] != quote) {
        return error("unterminated quoted constant");
      }
      std::string text(source.substr(start, j - start));
      if (quote == '\'' && text.empty()) {
        return error("empty symbol constant ''");
      }
      push(quote == '"' ? TokenType::kString : TokenType::kQuotedSymbol,
           std::move(text));
      advance(j + 1 - i);
      continue;
    }
    if (c == '$') {  // $N query parameter
      size_t start = i + 1;
      size_t j = start;
      while (j < source.size() &&
             std::isdigit(static_cast<unsigned char>(source[j]))) {
        ++j;
      }
      if (j == start) {
        return error("expected digits after '$' (query parameter, "
                     "e.g. $1)");
      }
      if (j - start > 2) {
        return error("query parameter index too large (max $99)");
      }
      std::string text(source.substr(start, j - start));
      if (text[0] == '0') {
        return error("query parameters are numbered from $1");
      }
      push(TokenType::kParam, std::move(text));
      advance(j - i);
      continue;
    }
    auto two = source.substr(i, 2);
    if (two == ":-") {
      push(TokenType::kImplies, ":-");
      advance(2);
      continue;
    }
    if (two == "?-") {
      push(TokenType::kQuery, "?-");
      advance(2);
      continue;
    }
    if (two == "!=") {
      push(TokenType::kNeq, "!=");
      advance(2);
      continue;
    }
    if (two == "++") {
      push(TokenType::kConcat, "++");
      advance(2);
      continue;
    }
    switch (c) {
      case '(':
        push(TokenType::kLParen, "(");
        break;
      case ')':
        push(TokenType::kRParen, ")");
        break;
      case '[':
        push(TokenType::kLBracket, "[");
        break;
      case ']':
        push(TokenType::kRBracket, "]");
        break;
      case ':':
        push(TokenType::kColon, ":");
        break;
      case ',':
        push(TokenType::kComma, ",");
        break;
      case '.':
        push(TokenType::kPeriod, ".");
        break;
      case '=':
        push(TokenType::kEq, "=");
        break;
      case '+':
        push(TokenType::kPlus, "+");
        break;
      case '-':
        push(TokenType::kMinus, "-");
        break;
      case '@':
        push(TokenType::kAt, "@");
        break;
      default:
        return error(StrCat("unexpected character '", std::string(1, c),
                            "'"));
    }
    advance(1);
    continue;
  }
  out.push_back(Token{TokenType::kEof, "", line, column});
  return out;
}

}  // namespace parser
}  // namespace seqlog
