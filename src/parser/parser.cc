#include "parser/parser.h"

#include <utility>

#include "ast/validate.h"
#include "base/string_util.h"
#include "parser/lexer.h"

namespace seqlog {
namespace parser {

namespace {

using ast::Atom;
using ast::Clause;
using ast::IndexTermPtr;
using ast::Program;
using ast::SeqTermPtr;

/// Token-stream cursor with one-token lookahead.
class TokenCursor {
 public:
  TokenCursor(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Peek2() const {
    return tokens_[pos_ + 1 < tokens_.size() ? pos_ + 1 : pos_];
  }
  Token Next() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool AtEof() const { return Peek().type == TokenType::kEof; }

  Status Error(std::string_view what) const {
    const Token& t = Peek();
    return Status::InvalidArgument(StrCat("parse error at ", t.line, ":",
                                          t.column, ": ", what, ", got ",
                                          TokenTypeName(t.type),
                                          t.text.empty() ? "" : " '",
                                          t.text, t.text.empty() ? "" : "'"));
  }

  /// An error about an already-consumed construct: reports at the
  /// construct's own position, not at the lookahead token.
  Status ErrorAt(ast::SourceLoc loc, std::string_view what) const {
    return Status::InvalidArgument(StrCat("parse error at ", loc.line, ":",
                                          loc.column, ": ", what));
  }

  Result<Token> Expect(TokenType type) {
    if (Peek().type != type) {
      return Error(StrCat("expected ", TokenTypeName(type)));
    }
    return Next();
  }

  bool Accept(TokenType type) {
    if (Peek().type == type) {
      Next();
      return true;
    }
    return false;
  }

 private:
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

class Parser {
 public:
  Parser(std::vector<Token> tokens, SymbolTable* symbols, SequencePool* pool)
      : cur_(std::move(tokens)), symbols_(symbols), pool_(pool) {}

  Result<Program> ParseProgram() {
    Program program;
    while (!cur_.AtEof()) {
      SEQLOG_ASSIGN_OR_RETURN(Clause clause, ParseClause());
      program.clauses.push_back(std::move(clause));
    }
    return program;
  }

  Result<Clause> ParseClause() {
    Clause clause;
    SEQLOG_ASSIGN_OR_RETURN(clause.head, ParseAtom());
    if (clause.head.kind != Atom::Kind::kPredicate) {
      return cur_.ErrorAt(clause.head.loc,
                          "clause head must be a predicate atom");
    }
    clause.loc = clause.head.loc;
    if (cur_.Accept(TokenType::kImplies)) {
      if (cur_.Accept(TokenType::kTrueKw)) {
        // `head :- true.` is a fact.
      } else {
        do {
          SEQLOG_ASSIGN_OR_RETURN(Atom literal, ParseAtom());
          clause.body.push_back(std::move(literal));
        } while (cur_.Accept(TokenType::kComma));
      }
    }
    SEQLOG_ASSIGN_OR_RETURN(Token dot, cur_.Expect(TokenType::kPeriod));
    (void)dot;
    return clause;
  }

  /// Parses `?- atom.` — the `?-` prefix and the trailing period are both
  /// optional, so `p(X, acgt)` alone is accepted too. `$N` parameters are
  /// accepted here (and only here).
  Result<Atom> ParseGoal() {
    allow_params_ = true;
    cur_.Accept(TokenType::kQuery);
    SEQLOG_ASSIGN_OR_RETURN(Atom goal, ParseAtom());
    if (goal.kind != Atom::Kind::kPredicate) {
      return cur_.ErrorAt(goal.loc, "goal must be a predicate atom");
    }
    cur_.Accept(TokenType::kPeriod);
    if (!cur_.AtEof()) {
      return cur_.Error("expected end of goal");
    }
    return goal;
  }

 private:
  /// Parses a predicate atom or an (in)equality literal.
  Result<Atom> ParseAtom() {
    // Predicate atom: IDENT followed by '(' or by a clause delimiter.
    if (cur_.Peek().type == TokenType::kIdent &&
        (cur_.Peek2().type == TokenType::kLParen ||
         cur_.Peek2().type == TokenType::kImplies ||
         cur_.Peek2().type == TokenType::kPeriod ||
         cur_.Peek2().type == TokenType::kComma ||
         cur_.Peek2().type == TokenType::kEof)) {
      Token name = cur_.Next();
      std::vector<SeqTermPtr> args;
      if (cur_.Accept(TokenType::kLParen)) {
        do {
          SEQLOG_ASSIGN_OR_RETURN(SeqTermPtr term, ParseSeqTerm());
          args.push_back(std::move(term));
        } while (cur_.Accept(TokenType::kComma));
        SEQLOG_ASSIGN_OR_RETURN(Token rp, cur_.Expect(TokenType::kRParen));
        (void)rp;
      }
      Atom atom = ast::MakePredicateAtom(name.text, std::move(args));
      atom.loc = {name.line, name.column};
      return atom;
    }
    // Otherwise an equality literal: seqterm (= | !=) seqterm.
    SEQLOG_ASSIGN_OR_RETURN(SeqTermPtr lhs, ParseSeqTerm());
    ast::SourceLoc lhs_loc = lhs->loc;
    if (cur_.Accept(TokenType::kEq)) {
      SEQLOG_ASSIGN_OR_RETURN(SeqTermPtr rhs, ParseSeqTerm());
      Atom atom = ast::MakeEqAtom(std::move(lhs), std::move(rhs));
      atom.loc = lhs_loc;
      return atom;
    }
    if (cur_.Accept(TokenType::kNeq)) {
      SEQLOG_ASSIGN_OR_RETURN(SeqTermPtr rhs, ParseSeqTerm());
      Atom atom = ast::MakeNeqAtom(std::move(lhs), std::move(rhs));
      atom.loc = lhs_loc;
      return atom;
    }
    return cur_.Error("expected '=' or '!=' in equality literal");
  }

  Result<SeqTermPtr> ParseSeqTerm() {
    SEQLOG_ASSIGN_OR_RETURN(SeqTermPtr term, ParsePrimary());
    while (cur_.Accept(TokenType::kConcat)) {
      SEQLOG_ASSIGN_OR_RETURN(SeqTermPtr rhs, ParsePrimary());
      term = ast::MakeConcat(std::move(term), std::move(rhs));
    }
    return term;
  }

  Result<SeqTermPtr> ParsePrimary() {
    const Token& t = cur_.Peek();
    const ast::SourceLoc loc{t.line, t.column};
    switch (t.type) {
      case TokenType::kEpsKw:
        cur_.Next();
        return ast::MakeConstant(kEmptySeq, loc);
      case TokenType::kAt: {
        cur_.Next();
        SEQLOG_ASSIGN_OR_RETURN(Token name, cur_.Expect(TokenType::kIdent));
        SEQLOG_ASSIGN_OR_RETURN(Token lp, cur_.Expect(TokenType::kLParen));
        (void)lp;
        std::vector<SeqTermPtr> args;
        do {
          SEQLOG_ASSIGN_OR_RETURN(SeqTermPtr a, ParseSeqTerm());
          args.push_back(std::move(a));
        } while (cur_.Accept(TokenType::kComma));
        SEQLOG_ASSIGN_OR_RETURN(Token rp, cur_.Expect(TokenType::kRParen));
        (void)rp;
        return ast::MakeTransducerTerm(name.text, std::move(args), loc);
      }
      case TokenType::kVariable: {
        Token var = cur_.Next();
        return MaybeIndexed(ast::MakeVariable(var.text, loc));
      }
      case TokenType::kParam: {
        if (!allow_params_) {
          return cur_.Error(
              "query parameter $N is only allowed in goals");
        }
        Token param = cur_.Next();
        // Parameters become variables in the reserved "$N" namespace
        // (the lexer never produces '$' in user identifiers).
        return ast::MakeVariable(StrCat("$", param.text), loc);
      }
      case TokenType::kString:
      case TokenType::kIdent:
      case TokenType::kInt: {
        Token text = cur_.Next();
        SeqId id = pool_->FromChars(text.text, symbols_);
        return MaybeIndexed(ast::MakeConstant(id, loc));
      }
      case TokenType::kQuotedSymbol: {
        Token sym = cur_.Next();
        SeqId id = pool_->Singleton(symbols_->Intern(sym.text));
        return MaybeIndexed(ast::MakeConstant(id, loc));
      }
      default:
        return cur_.Error("expected a sequence term");
    }
  }

  /// Parses an optional [lo : hi] or [at] suffix on `base`.
  Result<SeqTermPtr> MaybeIndexed(SeqTermPtr base) {
    if (!cur_.Accept(TokenType::kLBracket)) return base;
    SEQLOG_ASSIGN_OR_RETURN(IndexTermPtr lo, ParseIndexExpr());
    IndexTermPtr hi = lo;
    if (cur_.Accept(TokenType::kColon)) {
      SEQLOG_ASSIGN_OR_RETURN(hi, ParseIndexExpr());
    }
    SEQLOG_ASSIGN_OR_RETURN(Token rb, cur_.Expect(TokenType::kRBracket));
    (void)rb;
    return ast::MakeIndexed(std::move(base), std::move(lo), std::move(hi));
  }

  Result<IndexTermPtr> ParseIndexExpr() {
    SEQLOG_ASSIGN_OR_RETURN(IndexTermPtr term, ParseIndexAtom());
    while (true) {
      if (cur_.Accept(TokenType::kPlus)) {
        SEQLOG_ASSIGN_OR_RETURN(IndexTermPtr rhs, ParseIndexAtom());
        term = ast::MakeIndexAdd(std::move(term), std::move(rhs));
      } else if (cur_.Accept(TokenType::kMinus)) {
        SEQLOG_ASSIGN_OR_RETURN(IndexTermPtr rhs, ParseIndexAtom());
        term = ast::MakeIndexSub(std::move(term), std::move(rhs));
      } else {
        return term;
      }
    }
  }

  Result<IndexTermPtr> ParseIndexAtom() {
    const Token& t = cur_.Peek();
    const ast::SourceLoc loc{t.line, t.column};
    switch (t.type) {
      case TokenType::kInt: {
        if (cur_.Peek().text.size() > 18) {
          return cur_.Error("integer literal too large");
        }
        Token lit = cur_.Next();
        return ast::MakeIndexLiteral(std::stoll(lit.text), loc);
      }
      case TokenType::kVariable: {
        Token var = cur_.Next();
        return ast::MakeIndexVariable(var.text, loc);
      }
      case TokenType::kEndKw:
        cur_.Next();
        return ast::MakeIndexEnd(loc);
      default:
        return cur_.Error("expected an index term (integer, variable, "
                          "or 'end')");
    }
  }

  TokenCursor cur_;
  SymbolTable* symbols_;
  SequencePool* pool_;
  bool allow_params_ = false;
};

}  // namespace

Result<Program> ParseProgram(std::string_view source, SymbolTable* symbols,
                             SequencePool* pool) {
  SEQLOG_ASSIGN_OR_RETURN(Program program,
                          ParseProgramUnvalidated(source, symbols, pool));
  SEQLOG_RETURN_IF_ERROR(ast::Validate(program));
  return program;
}

Result<Program> ParseProgramUnvalidated(std::string_view source,
                                        SymbolTable* symbols,
                                        SequencePool* pool) {
  SEQLOG_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  Parser parser(std::move(tokens), symbols, pool);
  return parser.ParseProgram();
}

Result<ast::Atom> ParseGoal(std::string_view source, SymbolTable* symbols,
                            SequencePool* pool) {
  SEQLOG_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  Parser parser(std::move(tokens), symbols, pool);
  return parser.ParseGoal();
}

bool IsParamVariable(std::string_view var) {
  if (var.size() < 2 || var[0] != '$') return false;
  for (char c : var.substr(1)) {
    if (c < '0' || c > '9') return false;
  }
  return true;
}

size_t ParamIndex(std::string_view var) {
  SEQLOG_CHECK(IsParamVariable(var)) << "not a parameter: " << var;
  size_t n = 0;
  for (char c : var.substr(1)) n = n * 10 + static_cast<size_t>(c - '0');
  return n;
}

Result<ast::Clause> ParseClause(std::string_view source,
                                SymbolTable* symbols, SequencePool* pool) {
  SEQLOG_ASSIGN_OR_RETURN(Program program,
                          ParseProgram(source, symbols, pool));
  if (program.clauses.size() != 1) {
    return Status::InvalidArgument(
        StrCat("expected exactly one clause, found ",
               program.clauses.size()));
  }
  return program.clauses[0];
}

}  // namespace parser
}  // namespace seqlog
