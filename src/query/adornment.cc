#include "query/adornment.h"

#include <deque>

#include "base/string_util.h"

namespace seqlog {
namespace query {

namespace {

/// All variable names (sequence and index) occurring in `term`.
void CollectTermVars(const ast::SeqTermPtr& term, std::set<std::string>* out) {
  ast::CollectSeqVars(term, out);
  ast::CollectIndexVars(term, out);
}

/// True if every variable of `term` is in `bound`.
bool TermIsBound(const ast::SeqTermPtr& term,
                 const std::set<std::string>& bound) {
  std::set<std::string> vars;
  CollectTermVars(term, &vars);
  for (const std::string& v : vars) {
    if (bound.find(v) == bound.end()) return false;
  }
  return true;
}

/// Adds every variable of `atom` to `bound` (the SIP effect of having
/// processed the literal: collectors, eq-bindings and domain enumeration
/// all leave the literal's variables bound).
void BindAtomVars(const ast::Atom& atom, std::set<std::string>* bound) {
  std::set<std::string> seq_vars;
  std::set<std::string> idx_vars;
  ast::CollectAtomVars(atom, &seq_vars, &idx_vars);
  bound->insert(seq_vars.begin(), seq_vars.end());
  bound->insert(idx_vars.begin(), idx_vars.end());
}

}  // namespace

Adornment MakeAdornment(const std::vector<bool>& bound) {
  Adornment a(bound.size(), 'f');
  for (size_t i = 0; i < bound.size(); ++i) {
    if (bound[i]) a[i] = 'b';
  }
  return a;
}

Result<AdornmentResult> AdornProgram(const ast::Program& program,
                                     const std::string& goal_predicate,
                                     const std::vector<bool>& goal_ground) {
  AdornmentResult result;
  result.idb = program.HeadPredicates();
  if (result.idb.find(goal_predicate) == result.idb.end()) {
    return Status::InvalidArgument(
        StrCat("goal predicate '", goal_predicate,
               "' is not defined by any clause"));
  }

  // Clauses per head predicate, and the bindable mask of every IDB
  // predicate (see the header for the two conditions).
  std::map<std::string, std::vector<size_t>> clauses_of;
  for (size_t ci = 0; ci < program.clauses.size(); ++ci) {
    const ast::Clause& clause = program.clauses[ci];
    if (clause.head.kind != ast::Atom::Kind::kPredicate) continue;
    clauses_of[clause.head.predicate].push_back(ci);
  }
  for (const auto& [pred, indices] : clauses_of) {
    const size_t arity = program.clauses[indices[0]].head.args.size();
    std::vector<bool> bindable(arity, true);
    for (size_t ci : indices) {
      const ast::Clause& clause = program.clauses[ci];
      std::set<std::string> guarded = ast::GuardedVars(clause);
      for (size_t j = 0; j < arity; ++j) {
        if (!bindable[j]) continue;
        const ast::SeqTermPtr& arg = clause.head.args[j];
        if (ast::IsConstructive(arg)) {
          bindable[j] = false;
          continue;
        }
        std::set<std::string> seq_vars;
        ast::CollectSeqVars(arg, &seq_vars);
        for (const std::string& v : seq_vars) {
          if (guarded.find(v) == guarded.end()) {
            bindable[j] = false;
            break;
          }
        }
      }
    }
    result.bindable[pred] = std::move(bindable);
  }

  const std::vector<bool>& goal_bindable = result.bindable[goal_predicate];
  if (goal_ground.size() != goal_bindable.size()) {
    return Status::InvalidArgument(
        StrCat("goal arity ", goal_ground.size(), " != predicate arity ",
               goal_bindable.size()));
  }
  std::vector<bool> effective(goal_ground.size());
  for (size_t j = 0; j < goal_ground.size(); ++j) {
    effective[j] = goal_ground[j] && goal_bindable[j];
  }
  result.goal_adornment = MakeAdornment(effective);

  // Worklist over adorned predicates; each reachable (pred, adornment)
  // pair adorns every defining clause once.
  std::set<std::pair<std::string, Adornment>> seen;
  std::deque<std::pair<std::string, Adornment>> work;
  auto discover = [&](const std::string& pred, const Adornment& adornment) {
    if (seen.insert({pred, adornment}).second) {
      result.reachable.emplace_back(pred, adornment);
      work.emplace_back(pred, adornment);
    }
  };
  discover(goal_predicate, result.goal_adornment);

  while (!work.empty()) {
    auto [pred, adornment] = work.front();
    work.pop_front();
    for (size_t ci : clauses_of[pred]) {
      const ast::Clause& clause = program.clauses[ci];
      AdornedClause adorned;
      adorned.predicate = pred;
      adorned.adornment = adornment;
      adorned.clause_index = ci;

      // Bound head positions seed the SIP only through plain variables;
      // a bound constant or indexed head term restricts firing via the
      // magic guard but decomposes into no variable bindings.
      std::set<std::string> bound;
      for (size_t j = 0; j < adornment.size(); ++j) {
        const ast::SeqTermPtr& arg = clause.head.args[j];
        if (adornment[j] == 'b' && arg->kind == ast::SeqTerm::Kind::kVariable) {
          bound.insert(arg->var);
        }
      }

      for (const ast::Atom& literal : clause.body) {
        Adornment body_adornment;
        bool is_idb = literal.kind == ast::Atom::Kind::kPredicate &&
                      result.idb.count(literal.predicate) > 0;
        if (is_idb) {
          const std::vector<bool>& bindable =
              result.bindable[literal.predicate];
          std::vector<bool> arg_bound(literal.args.size());
          for (size_t j = 0; j < literal.args.size(); ++j) {
            arg_bound[j] = j < bindable.size() && bindable[j] &&
                           TermIsBound(literal.args[j], bound);
          }
          body_adornment = MakeAdornment(arg_bound);
          discover(literal.predicate, body_adornment);
        }
        adorned.body_adornments.push_back(std::move(body_adornment));
        adorned.body_is_idb.push_back(is_idb);
        BindAtomVars(literal, &bound);
      }
      result.clauses.push_back(std::move(adorned));
    }
  }
  return result;
}

}  // namespace query
}  // namespace seqlog
