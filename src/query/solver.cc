#include "query/solver.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <utility>

#include "analysis/safety.h"
#include "base/string_util.h"
#include "query/magic.h"

namespace seqlog {
namespace query {

namespace {

/// Evaluates a ground index term; `end_value` is len(base) of the
/// enclosing indexed term (Section 3.2).
Result<int64_t> EvalGroundIndex(const ast::IndexTermPtr& term,
                                int64_t end_value) {
  switch (term->kind) {
    case ast::IndexTerm::Kind::kLiteral:
      return term->literal;
    case ast::IndexTerm::Kind::kEnd:
      return end_value;
    case ast::IndexTerm::Kind::kAdd: {
      SEQLOG_ASSIGN_OR_RETURN(int64_t l,
                              EvalGroundIndex(term->lhs, end_value));
      SEQLOG_ASSIGN_OR_RETURN(int64_t r,
                              EvalGroundIndex(term->rhs, end_value));
      return l + r;
    }
    case ast::IndexTerm::Kind::kSub: {
      SEQLOG_ASSIGN_OR_RETURN(int64_t l,
                              EvalGroundIndex(term->lhs, end_value));
      SEQLOG_ASSIGN_OR_RETURN(int64_t r,
                              EvalGroundIndex(term->rhs, end_value));
      return l - r;
    }
    case ast::IndexTerm::Kind::kVariable:
      return Status::InvalidArgument(
          StrCat("goal index term contains variable '", term->var, "'"));
  }
  return Status::Internal("unknown index term kind");
}

/// Evaluates a variable-free sequence term to its interned value.
Result<SeqId> EvalGroundTerm(const ast::SeqTermPtr& term,
                             SequencePool* pool) {
  switch (term->kind) {
    case ast::SeqTerm::Kind::kConstant:
      return term->constant;
    case ast::SeqTerm::Kind::kConcat: {
      SEQLOG_ASSIGN_OR_RETURN(SeqId l, EvalGroundTerm(term->left, pool));
      SEQLOG_ASSIGN_OR_RETURN(SeqId r, EvalGroundTerm(term->right, pool));
      return pool->Concat(l, r);
    }
    case ast::SeqTerm::Kind::kIndexed: {
      SEQLOG_ASSIGN_OR_RETURN(SeqId base, EvalGroundTerm(term->base, pool));
      const int64_t len = static_cast<int64_t>(pool->Length(base));
      SEQLOG_ASSIGN_OR_RETURN(int64_t lo, EvalGroundIndex(term->lo, len));
      SEQLOG_ASSIGN_OR_RETURN(int64_t hi, EvalGroundIndex(term->hi, len));
      if (lo < 1 || hi > len || lo > hi + 1) {
        return Status::OutOfRange(
            StrCat("goal indexed term [", lo, ":", hi,
                   "] is undefined on a sequence of length ", len));
      }
      return pool->Subsequence(base, lo, hi);
    }
    case ast::SeqTerm::Kind::kTransducer:
      return Status::Unimplemented(
          StrCat("transducer term @", term->transducer,
                 "(...) is not supported in goals"));
    case ast::SeqTerm::Kind::kVariable:
      return Status::InvalidArgument(
          StrCat("goal term contains variable '", term->var, "'"));
  }
  return Status::Internal("unknown sequence term kind");
}

/// True if `row` matches the goal pattern: ground positions equal their
/// value and positions sharing a variable hold equal values.
bool RowMatchesGoal(TupleView row,
                    const std::vector<std::optional<SeqId>>& values,
                    const std::vector<std::vector<size_t>>& var_groups) {
  for (size_t j = 0; j < values.size(); ++j) {
    if (values[j].has_value() && row[j] != *values[j]) return false;
  }
  for (const std::vector<size_t>& group : var_groups) {
    for (size_t k = 1; k < group.size(); ++k) {
      if (row[group[k]] != row[group[0]]) return false;
    }
  }
  return true;
}

/// Collects the matching rows of `rel` (which may be null), sorted.
std::vector<std::vector<SeqId>> FilterRelation(
    const Relation* rel, const std::vector<std::optional<SeqId>>& values,
    const std::vector<std::vector<size_t>>& var_groups) {
  std::vector<std::vector<SeqId>> rows;
  if (rel == nullptr) return rows;
  for (uint32_t i = 0; i < rel->size(); ++i) {
    TupleView row = rel->Row(i);
    if (RowMatchesGoal(row, values, var_groups)) {
      rows.emplace_back(row.begin(), row.end());
    }
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

}  // namespace

Solver::Solver(Catalog* catalog, SequencePool* pool,
               const eval::FunctionRegistry* registry)
    : catalog_(catalog), pool_(pool), registry_(registry) {}

SolveResult Solver::Solve(const ast::Program& program, const ast::Atom& goal,
                          const Database& edb, const SolveOptions& options) {
  SolveResult result;
  result.status = SolveImpl(program, goal, edb, options, &result);
  result.stats.answers = result.answers.size();
  return result;
}

Status Solver::SolveImpl(const ast::Program& program, const ast::Atom& goal,
                         const Database& edb, const SolveOptions& options,
                         SolveResult* result) {
  if (goal.kind != ast::Atom::Kind::kPredicate) {
    return Status::InvalidArgument("goal must be a predicate atom");
  }

  // Classify every goal argument: ground (evaluated now) or a plain
  // variable; repeated variables become join constraints on the answers.
  std::vector<std::optional<SeqId>> values(goal.args.size());
  std::vector<bool> ground(goal.args.size(), false);
  std::map<std::string, std::vector<size_t>> positions_of_var;
  for (size_t j = 0; j < goal.args.size(); ++j) {
    const ast::SeqTermPtr& arg = goal.args[j];
    if (arg->kind == ast::SeqTerm::Kind::kVariable) {
      positions_of_var[arg->var].push_back(j);
      continue;
    }
    std::set<std::string> vars;
    ast::CollectSeqVars(arg, &vars);
    ast::CollectIndexVars(arg, &vars);
    if (!vars.empty()) {
      return Status::InvalidArgument(
          StrCat("goal argument ", j + 1, " of '", goal.predicate,
                 "' must be ground or a plain variable"));
    }
    SEQLOG_ASSIGN_OR_RETURN(SeqId value, EvalGroundTerm(arg, pool_));
    values[j] = value;
    ground[j] = true;
  }
  std::vector<std::vector<size_t>> var_groups;
  for (auto& [var, positions] : positions_of_var) {
    if (positions.size() > 1) var_groups.push_back(positions);
  }

  // Goals on extensional predicates need no rewrite: scan the database.
  const std::set<std::string> idb = program.HeadPredicates();
  if (idb.find(goal.predicate) == idb.end()) {
    Result<PredId> pred = catalog_->Find(goal.predicate);
    if (!pred.ok()) {
      return Status::NotFound(
          StrCat("unknown predicate '", goal.predicate, "'"));
    }
    if (catalog_->Arity(pred.value()) != goal.args.size()) {
      return Status::InvalidArgument(
          StrCat("goal arity ", goal.args.size(), " != arity ",
                 catalog_->Arity(pred.value()), " of '", goal.predicate,
                 "'"));
    }
    result->answers = FilterRelation(edb.Get(pred.value()), values,
                                     var_groups);
    result->stats.goal_adornment = MakeAdornment(ground);
    return Status::Ok();
  }

  // Adorn and rewrite.
  SEQLOG_ASSIGN_OR_RETURN(AdornmentResult adornment,
                          AdornProgram(program, goal.predicate, ground));
  std::set<std::string> edb_predicates;
  for (PredId pred : edb.PredicatesWithRelations()) {
    const Relation* rel = edb.Get(pred);
    if (rel != nullptr && !rel->empty()) {
      edb_predicates.insert(catalog_->Name(pred));
    }
  }
  SEQLOG_ASSIGN_OR_RETURN(
      MagicProgram magic,
      MagicRewrite(program, adornment, values, edb_predicates));
  result->stats.goal_adornment = adornment.goal_adornment;
  result->stats.adorned_predicates = adornment.reachable.size();
  result->stats.rewritten_clauses = magic.program.clauses.size();

  // The rewrite must not cost us the Theorem 8 guarantee: if the original
  // program is strongly safe but the guard edges closed a constructive
  // cycle, demand evaluation could diverge where Evaluate would not.
  analysis::SafetyReport original_report = analysis::AnalyzeSafety(program);
  if (original_report.strongly_safe) {
    analysis::SafetyReport rewritten_report =
        analysis::AnalyzeSafety(magic.program);
    if (!rewritten_report.strongly_safe) {
      std::string detail;
      if (rewritten_report.offending_edge.has_value()) {
        detail = StrCat(" (constructive cycle through ",
                        rewritten_report.offending_edge->first, " -> ",
                        rewritten_report.offending_edge->second, ")");
      }
      return Status::FailedPrecondition(
          StrCat("goal on '", goal.predicate,
                 "' is not demand-evaluable: the magic rewrite is not "
                 "strongly safe although the program is",
                 detail, "; use Evaluate + Query instead"));
    }
  }

  // Evaluate the rewritten program into a scratch database with the
  // shared catalog/pool, so extensional PredIds and SeqIds line up.
  eval::Evaluator evaluator(catalog_, pool_, registry_);
  SEQLOG_RETURN_IF_ERROR(evaluator.SetProgram(magic.program));
  Database scratch(catalog_);
  eval::EvalOutcome outcome = evaluator.Evaluate(edb, options.eval,
                                                 &scratch);
  result->stats.eval = std::move(outcome.stats);
  const size_t edb_facts = edb.TotalFacts();
  const size_t total_facts = scratch.TotalFacts();
  result->stats.derived_facts =
      total_facts > edb_facts ? total_facts - edb_facts : 0;
  for (const std::string& name : magic.magic_predicates) {
    Result<PredId> pred = catalog_->Find(name);
    if (!pred.ok()) continue;
    const Relation* rel = scratch.Get(pred.value());
    if (rel != nullptr) result->stats.magic_facts += rel->size();
  }

  // Extract the goal's answers (also on budget exhaustion: like
  // Evaluate, Solve keeps the partial result it has).
  Result<PredId> answer_pred = catalog_->Find(magic.answer_predicate);
  if (answer_pred.ok()) {
    result->answers = FilterRelation(scratch.Get(answer_pred.value()),
                                     values, var_groups);
  }
  return outcome.status;
}

}  // namespace query
}  // namespace seqlog
