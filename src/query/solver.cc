#include "query/solver.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_set>
#include <utility>

#include "analysis/safety.h"
#include "base/string_util.h"
#include "parser/parser.h"

namespace seqlog {
namespace query {

namespace {

/// Evaluates a ground index term; `end_value` is len(base) of the
/// enclosing indexed term (Section 3.2).
Result<int64_t> EvalGroundIndex(const ast::IndexTermPtr& term,
                                int64_t end_value) {
  switch (term->kind) {
    case ast::IndexTerm::Kind::kLiteral:
      return term->literal;
    case ast::IndexTerm::Kind::kEnd:
      return end_value;
    case ast::IndexTerm::Kind::kAdd: {
      SEQLOG_ASSIGN_OR_RETURN(int64_t l,
                              EvalGroundIndex(term->lhs, end_value));
      SEQLOG_ASSIGN_OR_RETURN(int64_t r,
                              EvalGroundIndex(term->rhs, end_value));
      return l + r;
    }
    case ast::IndexTerm::Kind::kSub: {
      SEQLOG_ASSIGN_OR_RETURN(int64_t l,
                              EvalGroundIndex(term->lhs, end_value));
      SEQLOG_ASSIGN_OR_RETURN(int64_t r,
                              EvalGroundIndex(term->rhs, end_value));
      return l - r;
    }
    case ast::IndexTerm::Kind::kVariable:
      return Status::InvalidArgument(
          StrCat("goal index term contains variable '", term->var, "'"));
  }
  return Status::Internal("unknown index term kind");
}

/// Evaluates a variable-free sequence term to its interned value.
Result<SeqId> EvalGroundTerm(const ast::SeqTermPtr& term,
                             SequencePool* pool) {
  switch (term->kind) {
    case ast::SeqTerm::Kind::kConstant:
      return term->constant;
    case ast::SeqTerm::Kind::kConcat: {
      SEQLOG_ASSIGN_OR_RETURN(SeqId l, EvalGroundTerm(term->left, pool));
      SEQLOG_ASSIGN_OR_RETURN(SeqId r, EvalGroundTerm(term->right, pool));
      return pool->Concat(l, r);
    }
    case ast::SeqTerm::Kind::kIndexed: {
      SEQLOG_ASSIGN_OR_RETURN(SeqId base, EvalGroundTerm(term->base, pool));
      const int64_t len = static_cast<int64_t>(pool->Length(base));
      SEQLOG_ASSIGN_OR_RETURN(int64_t lo, EvalGroundIndex(term->lo, len));
      SEQLOG_ASSIGN_OR_RETURN(int64_t hi, EvalGroundIndex(term->hi, len));
      if (lo < 1 || hi > len || lo > hi + 1) {
        return Status::OutOfRange(
            StrCat("goal indexed term [", lo, ":", hi,
                   "] is undefined on a sequence of length ", len));
      }
      return pool->Subsequence(base, lo, hi);
    }
    case ast::SeqTerm::Kind::kTransducer:
      return Status::Unimplemented(
          StrCat("transducer term @", term->transducer,
                 "(...) is not supported in goals"));
    case ast::SeqTerm::Kind::kVariable:
      return Status::InvalidArgument(
          StrCat("goal term contains variable '", term->var, "'"));
  }
  return Status::Internal("unknown sequence term kind");
}

/// True if `row` matches the goal pattern: ground positions equal their
/// value and positions sharing a variable hold equal values.
bool RowMatchesGoal(TupleView row,
                    const std::vector<std::optional<SeqId>>& values,
                    const std::vector<std::vector<size_t>>& var_groups) {
  for (size_t j = 0; j < values.size(); ++j) {
    if (values[j].has_value() && row[j] != *values[j]) return false;
  }
  for (const std::vector<size_t>& group : var_groups) {
    for (size_t k = 1; k < group.size(); ++k) {
      if (row[group[k]] != row[group[0]]) return false;
    }
  }
  return true;
}

/// Collects the matching rows of `rel` (which may be null), sorted.
std::vector<std::vector<SeqId>> FilterRelation(
    const Relation* rel, const std::vector<std::optional<SeqId>>& values,
    const std::vector<std::vector<size_t>>& var_groups) {
  std::vector<std::vector<SeqId>> rows;
  if (rel == nullptr) return rows;
  for (uint32_t i = 0; i < rel->size(); ++i) {
    TupleView row = rel->RowAt(i);
    if (RowMatchesGoal(row, values, var_groups)) {
      rows.emplace_back(row.begin(), row.end());
    }
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

/// Merges fixed goal values with the per-call parameter bindings;
/// kFailedPrecondition on an unbound parameter.
Result<std::vector<std::optional<SeqId>>> ResolveValues(
    const PreparedGoal& prepared,
    const std::vector<std::optional<SeqId>>& params) {
  std::vector<std::optional<SeqId>> values = prepared.fixed_values;
  for (size_t j = 0; j < prepared.param_at.size(); ++j) {
    const size_t idx = prepared.param_at[j];
    if (idx == 0) continue;
    if (idx > params.size() || !params[idx - 1].has_value()) {
      return Status::FailedPrecondition(
          StrCat("parameter $", idx, " of goal '", prepared.predicate,
                 "' is not bound; call Bind first"));
    }
    values[j] = *params[idx - 1];
  }
  return values;
}

/// Builds the magic seed tuple for one resolved goal instance: the
/// values at the goal's bound positions, in seed-position order.
Result<std::vector<SeqId>> BuildSeedTuple(
    const PreparedGoal& prepared,
    const std::vector<std::optional<SeqId>>& values) {
  std::vector<SeqId> seed_tuple;
  seed_tuple.reserve(prepared.magic.seed_positions.size());
  for (size_t j : prepared.magic.seed_positions) {
    const std::optional<SeqId>& v = values[j];
    if (!v.has_value()) {
      return Status::Internal("bound goal position without a value");
    }
    seed_tuple.push_back(*v);
  }
  return seed_tuple;
}

}  // namespace

Solver::Solver(Catalog* catalog, SequencePool* pool,
               const eval::FunctionRegistry* registry)
    : catalog_(catalog), pool_(pool), registry_(registry) {}

Result<PreparedGoal> Solver::Prepare(const ast::Program& program,
                                     const ast::Atom& goal) const {
  if (goal.kind != ast::Atom::Kind::kPredicate) {
    return Status::InvalidArgument("goal must be a predicate atom");
  }
  PreparedGoal out;
  out.goal = goal;
  out.predicate = goal.predicate;
  out.fixed_values.resize(goal.args.size());
  out.param_at.assign(goal.args.size(), 0);

  // Classify every goal argument: a $N parameter (bound per Execute), a
  // plain variable (free; repeated occurrences join), or a ground term
  // (evaluated now).
  std::vector<bool> ground(goal.args.size(), false);
  std::map<std::string, std::vector<size_t>> positions_of_var;
  std::set<size_t> param_indices;
  for (size_t j = 0; j < goal.args.size(); ++j) {
    const ast::SeqTermPtr& arg = goal.args[j];
    if (arg->kind == ast::SeqTerm::Kind::kVariable) {
      if (parser::IsParamVariable(arg->var)) {
        const size_t idx = parser::ParamIndex(arg->var);
        out.param_at[j] = idx;
        param_indices.insert(idx);
        out.param_count = std::max(out.param_count, idx);
        ground[j] = true;
        continue;
      }
      positions_of_var[arg->var].push_back(j);
      continue;
    }
    std::set<std::string> vars;
    ast::CollectSeqVars(arg, &vars);
    ast::CollectIndexVars(arg, &vars);
    if (!vars.empty()) {
      return Status::InvalidArgument(
          StrCat("goal argument ", j + 1, " of '", goal.predicate,
                 "' must be ground, a plain variable, or a $N parameter"));
    }
    SEQLOG_ASSIGN_OR_RETURN(SeqId value, EvalGroundTerm(arg, pool_));
    out.fixed_values[j] = value;
    ground[j] = true;
  }
  for (size_t i = 1; i <= out.param_count; ++i) {
    if (param_indices.find(i) == param_indices.end()) {
      return Status::InvalidArgument(
          StrCat("goal uses $", out.param_count, " but not $", i,
                 "; parameters must be numbered consecutively from $1"));
    }
  }
  for (auto& [var, positions] : positions_of_var) {
    if (positions.size() > 1) out.var_groups.push_back(positions);
  }

  // Goals on extensional predicates need no rewrite: Execute scans the
  // database directly.
  const std::set<std::string> idb = program.HeadPredicates();
  if (idb.find(goal.predicate) == idb.end()) {
    Result<PredId> pred = catalog_->Find(goal.predicate);
    if (!pred.ok()) {
      return Status::NotFound(
          StrCat("unknown predicate '", goal.predicate, "'"));
    }
    if (catalog_->Arity(pred.value()) != goal.args.size()) {
      return Status::InvalidArgument(
          StrCat("goal arity ", goal.args.size(), " != arity ",
                 catalog_->Arity(pred.value()), " of '", goal.predicate,
                 "'"));
    }
    out.edb = true;
    out.edb_pred = pred.value();
    out.goal_adornment = MakeAdornment(ground);
    return out;
  }

  // Adorn and rewrite — once. Parameters adorn exactly like ground
  // constants; their values arrive per Execute as the magic seed fact,
  // so the rewrite (and its compiled plans) is shared by all bindings.
  SEQLOG_ASSIGN_OR_RETURN(AdornmentResult adornment,
                          AdornProgram(program, goal.predicate, ground));
  MagicOptions magic_options;
  magic_options.seed_as_facts = true;
  magic_options.import_all_reachable = true;
  SEQLOG_ASSIGN_OR_RETURN(
      MagicProgram magic,
      MagicRewrite(program, adornment, {}, {}, magic_options));
  out.goal_adornment = adornment.goal_adornment;
  out.adorned_predicates = adornment.reachable.size();

  // The rewrite must not cost us the Theorem 8 guarantee: if the original
  // program is strongly safe but the guard edges closed a constructive
  // cycle, demand evaluation could diverge where Evaluate would not.
  analysis::SafetyReport original_report = analysis::AnalyzeSafety(program);
  if (original_report.strongly_safe) {
    analysis::SafetyReport rewritten_report =
        analysis::AnalyzeSafety(magic.program);
    if (!rewritten_report.strongly_safe) {
      std::string detail;
      if (rewritten_report.offending_edge.has_value()) {
        detail = StrCat(" (constructive cycle through ",
                        rewritten_report.offending_edge->first, " -> ",
                        rewritten_report.offending_edge->second,
                        "; full cycle ",
                        Join(rewritten_report.cycle_path, " -> "), ")");
      }
      return Status::FailedPrecondition(
          StrCat("goal on '", goal.predicate, "'",
                 goal.loc.valid()
                     ? StrCat(" (at ", ast::ToString(goal.loc), ")")
                     : "",
                 " is not demand-evaluable: the magic rewrite is not "
                 "strongly safe although the program is",
                 detail, "; use Evaluate + Query instead"));
    }
  }

  // Compile the rewritten program once; Execute reuses the plans.
  auto evaluator =
      std::make_shared<eval::Evaluator>(catalog_, pool_, registry_);
  SEQLOG_RETURN_IF_ERROR(evaluator->SetProgram(magic.program));
  out.evaluator = std::move(evaluator);
  // SetProgram registered every predicate of the rewrite in the catalog.
  SEQLOG_ASSIGN_OR_RETURN(out.seed_pred,
                          catalog_->Find(magic.seed_predicate));
  SEQLOG_ASSIGN_OR_RETURN(out.answer_pred,
                          catalog_->Find(magic.answer_predicate));
  out.magic = std::move(magic);
  return out;
}

SolveResult Solver::Execute(
    const PreparedGoal& prepared, const Database& edb,
    const std::vector<std::optional<SeqId>>& params,
    const SolveOptions& options,
    std::shared_ptr<const ExtendedDomain> base_domain) const {
  SolveResult result;
  result.stats.goal_adornment = prepared.goal_adornment;
  result.stats.adorned_predicates = prepared.adorned_predicates;
  result.stats.rewritten_clauses = prepared.magic.program.clauses.size();

  Result<std::vector<std::optional<SeqId>>> values =
      ResolveValues(prepared, params);
  if (!values.ok()) {
    result.status = values.status();
    return result;
  }

  if (prepared.edb) {
    result.answers = FilterRelation(edb.Get(prepared.edb_pred),
                                    values.value(), prepared.var_groups);
    result.stats.answers = result.answers.size();
    result.status = Status::Ok();
    return result;
  }

  // Inject the goal's bound values as the magic seed fact and evaluate
  // the cached rewrite into a scratch database with the shared
  // catalog/pool, so extensional PredIds and SeqIds line up.
  Database seeds(catalog_);
  Result<std::vector<SeqId>> seed_tuple =
      BuildSeedTuple(prepared, values.value());
  if (!seed_tuple.ok()) {
    result.status = seed_tuple.status();
    return result;
  }
  seeds.Insert(prepared.seed_pred, seed_tuple.value());

  Database scratch(catalog_);
  eval::EvalOutcome outcome = prepared.evaluator->Evaluate(
      edb, &seeds, std::move(base_domain), options.eval, &scratch);
  result.stats.eval = std::move(outcome.stats);
  const size_t edb_facts = edb.TotalFacts();
  const size_t total_facts = scratch.TotalFacts();
  result.stats.derived_facts =
      total_facts > edb_facts ? total_facts - edb_facts : 0;
  for (const std::string& name : prepared.magic.magic_predicates) {
    Result<PredId> pred = catalog_->Find(name);
    if (!pred.ok()) continue;
    const Relation* rel = scratch.Get(pred.value());
    if (rel != nullptr) result.stats.magic_facts += rel->size();
  }

  // Extract the goal's answers (also on budget exhaustion: like
  // Evaluate, Execute keeps the partial result it has).
  result.answers = FilterRelation(scratch.Get(prepared.answer_pred),
                                  values.value(), prepared.var_groups);
  result.stats.answers = result.answers.size();
  result.status = std::move(outcome.status);
  return result;
}

Result<std::shared_ptr<const eval::Evaluator>> Solver::FuseGoals(
    const std::vector<const PreparedGoal*>& goals,
    const SymbolTable& symbols) const {
  // Union the rewrites clause by clause. Goals sharing an adorned
  // subgoal predicate contribute byte-identical clauses (AdornedName is
  // deterministic), so rendering is a sound dedup key.
  ast::Program fused;
  std::unordered_set<std::string> seen;
  size_t rewrites = 0;
  bool each_strongly_safe = true;
  for (const PreparedGoal* goal : goals) {
    if (goal == nullptr || goal->edb) continue;
    ++rewrites;
    each_strongly_safe =
        each_strongly_safe &&
        analysis::AnalyzeSafety(goal->magic.program).strongly_safe;
    for (const ast::Clause& clause : goal->magic.program.clauses) {
      std::string key = ast::ToString(clause, *pool_, symbols);
      if (!seen.insert(std::move(key)).second) continue;
      fused.clauses.push_back(clause);
    }
  }
  if (rewrites < 2) return std::shared_ptr<const eval::Evaluator>();

  // Shared subgoals can route one goal's guard edges through another
  // goal's clauses: if that closes a constructive cycle no individual
  // rewrite has, a fused run could diverge where the per-goal runs
  // would not — refuse, the caller falls back to per-goal runs.
  if (each_strongly_safe &&
      !analysis::AnalyzeSafety(fused).strongly_safe) {
    return Status::FailedPrecondition(
        "fusing these goals closes a constructive cycle that no "
        "individual rewrite has; execute them as separate runs");
  }

  auto evaluator =
      std::make_shared<eval::Evaluator>(catalog_, pool_, registry_);
  SEQLOG_RETURN_IF_ERROR(evaluator->SetProgram(fused));
  return std::shared_ptr<const eval::Evaluator>(std::move(evaluator));
}

BatchSolveResult Solver::ExecuteBatch(
    const std::vector<const PreparedGoal*>& goals,
    const eval::Evaluator* fused, const Database& edb,
    const std::vector<BatchItem>& items, const SolveOptions& options,
    std::shared_ptr<const ExtendedDomain> base_domain) const {
  BatchSolveResult out;
  out.items.resize(items.size());

  // Per-item admission: resolve values now, answer EDB goals by direct
  // scan now, and queue IDB items for the shared run(s).
  std::vector<std::vector<std::optional<SeqId>>> values(items.size());
  std::vector<size_t> idb_items;
  for (size_t i = 0; i < items.size(); ++i) {
    SolveResult& item_result = out.items[i];
    if (items[i].goal >= goals.size() || goals[items[i].goal] == nullptr) {
      item_result.status = Status::OutOfRange(
          StrCat("batch item ", i, " references goal ", items[i].goal,
                 " of a batch over ", goals.size(), " goal(s)"));
      continue;
    }
    const PreparedGoal& prepared = *goals[items[i].goal];
    item_result.stats.goal_adornment = prepared.goal_adornment;
    item_result.stats.adorned_predicates = prepared.adorned_predicates;
    item_result.stats.rewritten_clauses =
        prepared.magic.program.clauses.size();
    Result<std::vector<std::optional<SeqId>>> resolved =
        ResolveValues(prepared, items[i].params);
    if (!resolved.ok()) {
      item_result.status = resolved.status();
      continue;
    }
    values[i] = std::move(resolved).value();
    if (prepared.edb) {
      item_result.answers = FilterRelation(edb.Get(prepared.edb_pred),
                                           values[i], prepared.var_groups);
      item_result.stats.answers = item_result.answers.size();
      item_result.status = Status::Ok();
      continue;
    }
    idb_items.push_back(i);
  }
  if (idb_items.empty()) {
    out.status = Status::Ok();
    return out;
  }

  // Partition the IDB items into runs: one shared run with the fused
  // evaluator, or one run per distinct goal without it. Items of one
  // run inject their seed facts together (duplicate bindings collapse
  // to one seed — Database relations are sets) and the run's rounds and
  // domain closure are paid once for all of them.
  struct Run {
    const eval::Evaluator* evaluator;
    std::vector<size_t> members;
  };
  std::vector<Run> runs;
  if (fused != nullptr) {
    runs.push_back(Run{fused, idb_items});
  } else {
    std::map<size_t, size_t> run_of_goal;  // goal index -> runs index
    for (size_t i : idb_items) {
      auto [it, added] =
          run_of_goal.try_emplace(items[i].goal, runs.size());
      if (added) {
        runs.push_back(
            Run{goals[items[i].goal]->evaluator.get(), {}});
      }
      runs[it->second].members.push_back(i);
    }
  }

  out.status = Status::Ok();
  for (const Run& run : runs) {
    Database seeds(catalog_);
    bool seeded = false;
    for (size_t i : run.members) {
      const PreparedGoal& prepared = *goals[items[i].goal];
      Result<std::vector<SeqId>> seed_tuple =
          BuildSeedTuple(prepared, values[i]);
      if (!seed_tuple.ok()) {
        out.items[i].status = seed_tuple.status();
        continue;
      }
      seeds.Insert(prepared.seed_pred, seed_tuple.value());
      seeded = true;
    }
    if (!seeded) continue;

    Database scratch(catalog_);
    eval::EvalOutcome outcome =
        run.evaluator->Evaluate(edb, &seeds, base_domain, options.eval,
                                &scratch);
    ++out.evaluations;
    out.eval.iterations += outcome.stats.iterations;
    out.eval.facts += outcome.stats.facts;
    out.eval.domain_sequences += outcome.stats.domain_sequences;
    out.eval.derivations += outcome.stats.derivations;
    out.eval.millis += outcome.stats.millis;
    out.eval.fire_millis += outcome.stats.fire_millis;
    out.eval.domain_load_millis += outcome.stats.domain_load_millis;
    out.eval.domain_merge_millis += outcome.stats.domain_merge_millis;
    out.eval.relation_merge_millis += outcome.stats.relation_merge_millis;
    if (!outcome.status.ok() && out.status.ok()) {
      out.status = outcome.status;
    }

    // Shared counters of the run, attributed to each member (they are
    // not per-item separable: the rounds served every member at once).
    const size_t edb_facts = edb.TotalFacts();
    const size_t total_facts = scratch.TotalFacts();
    const size_t derived =
        total_facts > edb_facts ? total_facts - edb_facts : 0;
    size_t magic_facts = 0;
    std::set<std::string> magic_names;
    for (size_t i : run.members) {
      const auto& names = goals[items[i].goal]->magic.magic_predicates;
      magic_names.insert(names.begin(), names.end());
    }
    for (const std::string& name : magic_names) {
      Result<PredId> pred = catalog_->Find(name);
      if (!pred.ok()) continue;
      const Relation* rel = scratch.Get(pred.value());
      if (rel != nullptr) magic_facts += rel->size();
    }

    // Demultiplex: each member's answers are its goal's answer-predicate
    // tuples matching the member's bound values — for a magic rewrite
    // the bound positions are exactly what the seed demanded, so the
    // filter recovers precisely the answers a solo run would derive
    // (like Evaluate, a budget-exhausted run keeps partial answers).
    for (size_t i : run.members) {
      if (!out.items[i].status.ok()) continue;  // seed construction failed
      const PreparedGoal& prepared = *goals[items[i].goal];
      out.items[i].answers =
          FilterRelation(scratch.Get(prepared.answer_pred), values[i],
                         prepared.var_groups);
      out.items[i].stats.answers = out.items[i].answers.size();
      out.items[i].stats.derived_facts = derived;
      out.items[i].stats.magic_facts = magic_facts;
      out.items[i].stats.eval = outcome.stats;
      out.items[i].status = outcome.status;
    }
  }
  return out;
}

SolveResult Solver::Solve(const ast::Program& program, const ast::Atom& goal,
                          const Database& edb, const SolveOptions& options) {
  Result<PreparedGoal> prepared = Prepare(program, goal);
  if (!prepared.ok()) {
    SolveResult result;
    result.status = prepared.status();
    return result;
  }
  return Execute(prepared.value(), edb, {}, options);
}

}  // namespace query
}  // namespace seqlog
