#include "query/magic.h"

#include <utility>

#include "base/string_util.h"

namespace seqlog {
namespace query {

namespace {

/// The magic guard literal for `predicate`: the atom's terms at the
/// adornment's bound positions, under the magic predicate name.
ast::Atom MakeGuard(const std::string& predicate, const ast::Atom& atom,
                    const Adornment& adornment) {
  std::vector<ast::SeqTermPtr> args;
  for (size_t j = 0; j < adornment.size(); ++j) {
    if (adornment[j] == 'b') args.push_back(atom.args[j]);
  }
  return ast::MakePredicateAtom(MagicName(predicate, adornment),
                                std::move(args));
}

/// Fresh variable names V1..Vk that cannot clash with user variables
/// (the lexer only produces identifiers, never "$").
std::vector<ast::SeqTermPtr> FreshVariables(size_t arity) {
  std::vector<ast::SeqTermPtr> vars;
  vars.reserve(arity);
  for (size_t j = 0; j < arity; ++j) {
    vars.push_back(ast::MakeVariable(StrCat("Import$", j)));
  }
  return vars;
}

}  // namespace

std::string AdornedName(const std::string& predicate,
                        const Adornment& adornment) {
  return StrCat(predicate, "__", adornment);
}

std::string MagicName(const std::string& predicate,
                      const Adornment& adornment) {
  return StrCat("magic__", predicate, "__", adornment);
}

Result<MagicProgram> MagicRewrite(
    const ast::Program& program, const AdornmentResult& adornment,
    const std::vector<std::optional<SeqId>>& goal_values,
    const std::set<std::string>& edb_predicates,
    const MagicOptions& options) {
  MagicProgram out;
  if (adornment.reachable.empty()) {
    return Status::InvalidArgument("no reachable adorned predicates");
  }
  const std::string& goal_predicate = adornment.reachable.front().first;
  out.answer_predicate =
      AdornedName(goal_predicate, adornment.goal_adornment);
  out.seed_predicate =
      MagicName(goal_predicate, adornment.goal_adornment);
  for (size_t j = 0; j < adornment.goal_adornment.size(); ++j) {
    if (adornment.goal_adornment[j] == 'b') out.seed_positions.push_back(j);
  }

  // Seed: the goal's ground values at the bound positions of the goal
  // adornment (an all-free goal seeds a nullary magic fact, which simply
  // switches on every reachable clause — the degenerate full evaluation).
  // In seed_as_facts mode the caller supplies the seed as data instead,
  // so the rewritten program is independent of the goal's values.
  if (!options.seed_as_facts) {
    if (goal_values.size() != adornment.goal_adornment.size()) {
      return Status::InvalidArgument("goal value count != goal arity");
    }
    std::vector<ast::SeqTermPtr> seed_args;
    for (size_t j = 0; j < goal_values.size(); ++j) {
      if (adornment.goal_adornment[j] != 'b') continue;
      if (!goal_values[j].has_value()) {
        return Status::Internal("bound goal position without a value");
      }
      seed_args.push_back(ast::MakeConstant(*goal_values[j]));
    }
    ast::Clause seed;
    seed.head = ast::MakePredicateAtom(out.seed_predicate,
                                       std::move(seed_args));
    out.program.clauses.push_back(std::move(seed));
    ++out.seed_clauses;
  }

  for (const auto& [pred, adorn] : adornment.reachable) {
    out.magic_predicates.insert(MagicName(pred, adorn));
  }

  // Import clauses for predicates that are both derived and extensional:
  // the adorned copy must also see the extensional facts, which stay
  // under the original name. import_all_reachable covers predicates that
  // may only *later* receive facts (prepared queries outlive the rewrite).
  for (const auto& [pred, adorn] : adornment.reachable) {
    if (!options.import_all_reachable &&
        edb_predicates.find(pred) == edb_predicates.end()) {
      continue;
    }
    std::vector<ast::SeqTermPtr> vars = FreshVariables(adorn.size());
    ast::Clause import;
    import.head = ast::MakePredicateAtom(AdornedName(pred, adorn), vars);
    import.body.push_back(MakeGuard(pred, import.head, adorn));
    import.body.push_back(ast::MakePredicateAtom(pred, std::move(vars)));
    out.program.clauses.push_back(std::move(import));
    ++out.import_clauses;
  }

  for (const AdornedClause& ac : adornment.clauses) {
    const ast::Clause& orig = program.clauses[ac.clause_index];
    ast::Atom guard = MakeGuard(ac.predicate, orig.head, ac.adornment);

    // Magic propagation: demand flows to each IDB body literal through
    // the guard plus everything to its left (adorned names throughout).
    for (size_t i = 0; i < orig.body.size(); ++i) {
      if (!ac.body_is_idb[i]) continue;
      const ast::Atom& literal = orig.body[i];
      const Adornment& beta = ac.body_adornments[i];
      ast::Clause propagation;
      propagation.head = MakeGuard(literal.predicate, literal, beta);
      propagation.body.push_back(guard);
      for (size_t k = 0; k < i; ++k) {
        ast::Atom prior = orig.body[k];
        if (ac.body_is_idb[k]) {
          prior.predicate =
              AdornedName(prior.predicate, ac.body_adornments[k]);
        }
        propagation.body.push_back(std::move(prior));
      }
      out.program.clauses.push_back(std::move(propagation));
      ++out.propagation_clauses;
    }

    // The guarded adorned clause itself.
    ast::Clause guarded;
    guarded.head = orig.head;
    guarded.head.predicate = AdornedName(ac.predicate, ac.adornment);
    guarded.body.push_back(std::move(guard));
    for (size_t i = 0; i < orig.body.size(); ++i) {
      ast::Atom literal = orig.body[i];
      if (ac.body_is_idb[i]) {
        literal.predicate =
            AdornedName(literal.predicate, ac.body_adornments[i]);
      }
      guarded.body.push_back(std::move(literal));
    }
    out.program.clauses.push_back(std::move(guarded));
    ++out.guarded_clauses;
  }
  return out;
}

}  // namespace query
}  // namespace seqlog
