// seqlog: bound/free adornments for goal-directed evaluation.
//
// Given a goal p(t1,...,tk) with some argument positions bound (ground),
// AdornProgram computes the set of adorned predicates p^a reachable when
// the program is evaluated on demand, together with a per-clause record of
// the adornment of every body literal. Bindings propagate through each
// clause body left-to-right — the sideways-information-passing (SIP)
// order matching the operational semantics of eval/clause_plan.h: once a
// literal has been processed, all of its variables are bound (matched,
// eq-bound, or enumerated over the extended active domain).
//
// Sequence Datalog refinement — which positions may carry bindings at
// all. An argument position j of an IDB predicate p is *bindable* only
// when, in every clause defining p, the head term at position j
//  (a) contains no constructive subterm (++ or @T): a constructed output
//      cannot be inverted to bind its inputs, so such terms are binding
//      sinks — they are only "bound" when all their inputs already are;
//  (b) has every sequence variable guarded in that clause (Section 3.1:
//      occurring as a direct argument of a body predicate atom).
// Condition (b) keeps the magic rewrite exact under the paper's
// extended-active-domain semantics: a goal constant seeded into a magic
// relation is then only ever *compared* against values produced by real
// body facts, never substituted for a variable the original program would
// have enumerated over the domain (which would let goal constants outside
// the active domain manufacture facts the full fixpoint cannot derive).
// Non-bindable positions are demoted to free; their ground goal values
// are still applied as a final answer filter by the solver.
#ifndef SEQLOG_QUERY_ADORNMENT_H_
#define SEQLOG_QUERY_ADORNMENT_H_

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "ast/clause.h"
#include "base/result.h"

namespace seqlog {
namespace query {

/// One character per argument position: 'b' (bound) or 'f' (free).
using Adornment = std::string;

/// Builds the adornment string for `bound` flags.
Adornment MakeAdornment(const std::vector<bool>& bound);

/// One clause of the program, specialised to one head adornment.
struct AdornedClause {
  std::string predicate;   ///< head predicate (original name)
  Adornment adornment;     ///< head adornment
  size_t clause_index = 0; ///< into program.clauses
  /// Aligned with clause.body: the adornment of each IDB predicate
  /// literal at its position in the SIP order; empty for EDB atoms and
  /// (in)equality literals.
  std::vector<Adornment> body_adornments;
  /// Aligned with clause.body: literal is a predicate atom on an IDB
  /// (head-defined) predicate.
  std::vector<bool> body_is_idb;
};

/// The adorned, goal-reachable slice of a program.
struct AdornmentResult {
  /// Predicates defined by at least one clause.
  std::set<std::string> idb;
  /// Per IDB predicate: which argument positions may carry bindings.
  std::map<std::string, std::vector<bool>> bindable;
  /// Effective goal adornment (ground positions after bindable demotion).
  Adornment goal_adornment;
  /// Reachable adorned IDB predicates in discovery order (goal first).
  std::vector<std::pair<std::string, Adornment>> reachable;
  /// Adorned clause copies, one per (reachable adorned predicate, clause).
  std::vector<AdornedClause> clauses;
};

/// Adorns `program` for a goal on `goal_predicate` whose i-th argument is
/// ground iff `goal_ground[i]`. The goal predicate must be IDB (defined
/// by at least one clause); EDB goals need no adornment and are answered
/// directly from the database by the solver.
Result<AdornmentResult> AdornProgram(const ast::Program& program,
                                     const std::string& goal_predicate,
                                     const std::vector<bool>& goal_ground);

}  // namespace query
}  // namespace seqlog

#endif  // SEQLOG_QUERY_ADORNMENT_H_
