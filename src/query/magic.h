// seqlog: the magic-set rewrite (demand transformation).
//
// MagicRewrite turns an adorned, goal-reachable program slice into a new
// program whose bottom-up fixpoint derives only goal-relevant facts:
//
//  * a seed fact  magic__p__a(c1,...,cm) :- true.  carries the goal's
//    ground arguments at the bound positions of the goal adornment;
//  * every adorned clause p^a gets a *guard*: its head is renamed to
//    p__a and  magic__p__a(<head terms at bound positions>)  is prepended
//    to the body, so the clause only fires for demanded bindings;
//  * for every IDB body literal q^b a *magic propagation clause*
//      magic__q__b(<q's bound args>) :- guard, <literals before q>.
//    pushes demand sideways through the clause;
//  * predicates holding extensional facts keep their original names; an
//    adorned predicate that also has extensional facts gets an *import*
//    clause  p__a(V1,...,Vk) :- magic__p__a(...), p(V1,...,Vk).
//
// The rewritten program is ordinary Sequence/Transducer Datalog: it is
// validated by ast::Validate and evaluated by the unmodified semi-naive
// engine. Magic heads only ever copy non-constructive terms (bindable
// positions exclude ++/@T), so the rewrite never adds constructive
// clauses — but the new guard edges can still close a constructive cycle
// that the original program did not have; the solver re-runs the
// Definition 10 check on the result and refuses such goals.
#ifndef SEQLOG_QUERY_MAGIC_H_
#define SEQLOG_QUERY_MAGIC_H_

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "ast/clause.h"
#include "base/result.h"
#include "query/adornment.h"
#include "sequence/sequence_pool.h"

namespace seqlog {
namespace query {

/// Name of the adorned copy of `predicate` ("p__bf"). Nullary predicates
/// have an empty adornment ("p__").
std::string AdornedName(const std::string& predicate,
                        const Adornment& adornment);

/// Name of the magic (demand) predicate for an adorned predicate
/// ("magic__p__bf"). Its arity is the number of bound positions.
std::string MagicName(const std::string& predicate,
                      const Adornment& adornment);

/// How the rewrite handles the goal seed and extensional imports.
struct MagicOptions {
  /// When false (classic mode), the goal's ground values are baked into a
  /// seed *clause* — the rewrite is specific to one goal instance. When
  /// true, no seed clause is generated: the caller injects the seed as a
  /// plain fact of `MagicProgram::seed_predicate` at evaluation time, so
  /// one rewrite serves every binding of the same goal shape. This is the
  /// prepared-query mode (core/prepared_query.h): rebinding swaps one
  /// fact, never the program.
  bool seed_as_facts = false;
  /// When false, import clauses are generated only for `edb_predicates`
  /// (the predicates carrying facts *now*). When true, every reachable
  /// adorned predicate gets one, so the rewrite stays correct for facts
  /// added after the rewrite — required for prepared queries executed
  /// against later snapshots.
  bool import_all_reachable = false;
};

/// The rewritten program plus bookkeeping for the solver.
struct MagicProgram {
  ast::Program program;
  /// Adorned name of the goal predicate; the goal's answers are exactly
  /// this predicate's tuples (after the solver's ground-argument filter).
  std::string answer_predicate;
  /// Name of the goal's magic predicate. With seed_as_facts the caller
  /// must insert one fact for it — the goal values at `seed_positions` —
  /// before evaluating; otherwise it is informational.
  std::string seed_predicate;
  /// Goal argument positions (ascending) forming the seed tuple: the
  /// bound positions of the goal adornment.
  std::vector<size_t> seed_positions;
  /// Names of all magic predicates (for demand-size statistics).
  std::set<std::string> magic_predicates;
  size_t seed_clauses = 0;
  size_t guarded_clauses = 0;
  size_t propagation_clauses = 0;
  size_t import_clauses = 0;
};

/// Rewrites the adorned slice of `program`. `goal_values[j]` holds the
/// interned ground value of goal argument j (nullopt when free); values
/// at adornment-bound positions become the magic seed clause (classic
/// mode; with options.seed_as_facts the values are unused and may be
/// empty). `edb_predicates` lists predicates that carry extensional
/// facts, so adorned copies of predicates that are both derived and
/// extensional import their facts (superseded by
/// options.import_all_reachable).
Result<MagicProgram> MagicRewrite(
    const ast::Program& program, const AdornmentResult& adornment,
    const std::vector<std::optional<SeqId>>& goal_values,
    const std::set<std::string>& edb_predicates,
    const MagicOptions& options = {});

}  // namespace query
}  // namespace seqlog

#endif  // SEQLOG_QUERY_MAGIC_H_
