// seqlog: goal-directed query answering (demand / magic-set evaluation).
//
// Solver::Solve answers a single goal  ?- p(t1,...,tk).  without running
// the full bottom-up fixpoint of Engine::Evaluate: the program is adorned
// for the goal's bound arguments (adornment.h), rewritten with magic sets
// (magic.h), and the rewritten program is evaluated with the existing
// semi-naive machinery into a scratch database. Only facts demanded by
// the goal are derived; SolveStats reports how many, so callers can
// compare against the full fixpoint.
//
// Goal argument shapes: each argument must be either a plain variable
// (free) or a ground term (constants, possibly indexed or concatenated —
// evaluated at solve time). Repeated variables express join constraints:
// ?- p(X, X). returns only the diagonal.
//
// A goal is refused with kFailedPrecondition when the magic rewrite of a
// strongly safe program is no longer strongly safe (the guard edges
// closed a constructive cycle, Definition 10): evaluating such a rewrite
// could diverge where Evaluate would not, so the goal is not
// demand-evaluable — fall back to Evaluate + Query.
#ifndef SEQLOG_QUERY_SOLVER_H_
#define SEQLOG_QUERY_SOLVER_H_

#include <string>
#include <vector>

#include "ast/clause.h"
#include "eval/engine.h"
#include "eval/function_registry.h"
#include "query/adornment.h"
#include "sequence/sequence_pool.h"
#include "storage/database.h"

namespace seqlog {
namespace query {

struct SolveOptions {
  /// Strategy and budgets for evaluating the rewritten program.
  eval::EvalOptions eval;
};

/// Counters for one Solve call. The speedup-relevant comparison against a
/// full fixpoint is derived_facts (and eval.iterations) versus the same
/// counters of Engine::Evaluate on the original program.
struct SolveStats {
  Adornment goal_adornment;       ///< effective (after bindable demotion)
  size_t adorned_predicates = 0;  ///< reachable adorned IDB predicates
  size_t rewritten_clauses = 0;   ///< clauses in the magic program
  size_t magic_facts = 0;         ///< demand atoms derived
  size_t derived_facts = 0;       ///< atoms derived beyond the database
  size_t answers = 0;
  eval::EvalStats eval;           ///< the rewritten program's evaluation
};

struct SolveResult {
  Status status;
  /// Answer tuples of the goal predicate (full arity), deduplicated and
  /// sorted; on budget exhaustion the answers derived so far are kept.
  std::vector<std::vector<SeqId>> answers;
  SolveStats stats;
};

/// Stateless facade over adornment + magic rewrite + evaluation. Shares
/// the engine's catalog/pool/registry so SeqIds and PredIds line up with
/// the extensional database.
class Solver {
 public:
  /// `registry` may be null for pure Sequence Datalog programs.
  Solver(Catalog* catalog, SequencePool* pool,
         const eval::FunctionRegistry* registry);

  /// Answers `goal` over `program` and `edb`. Goals on extensional
  /// predicates (no defining clause) are answered directly from `edb`.
  SolveResult Solve(const ast::Program& program, const ast::Atom& goal,
                    const Database& edb, const SolveOptions& options = {});

 private:
  Status SolveImpl(const ast::Program& program, const ast::Atom& goal,
                   const Database& edb, const SolveOptions& options,
                   SolveResult* result);

  Catalog* catalog_;
  SequencePool* pool_;
  const eval::FunctionRegistry* registry_;
};

}  // namespace query
}  // namespace seqlog

#endif  // SEQLOG_QUERY_SOLVER_H_
