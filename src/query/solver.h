// seqlog: goal-directed query answering (demand / magic-set evaluation).
//
// Two entry points:
//
//  * Solver::Solve answers a single goal  ?- p(t1,...,tk).  one-shot: the
//    program is adorned for the goal's bound arguments (adornment.h),
//    rewritten with magic sets (magic.h), compiled, and evaluated with
//    the existing semi-naive machinery into a scratch database. Only
//    facts demanded by the goal are derived; SolveStats reports how many.
//
//  * Solver::Prepare / Solver::Execute split that pipeline for goals that
//    run many times (the paper's point-query workloads): Prepare performs
//    the goal analysis, adornment, magic rewrite and clause compilation
//    ONCE into an immutable PreparedGoal; Execute injects the goal's
//    (possibly re-bound) constants as a magic *seed fact* — data, not a
//    clause — and evaluates the cached program. Execute never parses,
//    never rewrites and never recompiles; it is const and safe to call
//    from many threads against immutable databases (storage/database.h).
//
// Goals may contain `$N` parameter placeholders (parser::ParseGoal);
// their positions adorn as bound and receive values per Execute call.
//
// Goal argument shapes: each argument must be a `$N` parameter, a plain
// variable (free) or a ground term (constants, possibly indexed or
// concatenated — evaluated at prepare time). Repeated variables express
// join constraints: ?- p(X, X). returns only the diagonal.
//
// A goal is refused with kFailedPrecondition when the magic rewrite of a
// strongly safe program is no longer strongly safe (the guard edges
// closed a constructive cycle, Definition 10): evaluating such a rewrite
// could diverge where Evaluate would not, so the goal is not
// demand-evaluable — fall back to Evaluate + Query.
#ifndef SEQLOG_QUERY_SOLVER_H_
#define SEQLOG_QUERY_SOLVER_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ast/clause.h"
#include "eval/engine.h"
#include "eval/function_registry.h"
#include "query/adornment.h"
#include "query/magic.h"
#include "sequence/sequence_pool.h"
#include "sequence/symbol_table.h"
#include "storage/database.h"

namespace seqlog {
namespace query {

struct SolveOptions {
  /// Strategy, budgets and thread count for evaluating the rewritten
  /// program. num_threads passes straight through to eval::Evaluator;
  /// point queries with small per-round deltas stay on the serial path
  /// regardless (eval/engine.cc dispatches rounds by estimated work).
  eval::EvalOptions eval;
};

/// Counters for one Solve call. The speedup-relevant comparison against a
/// full fixpoint is derived_facts (and eval.iterations) versus the same
/// counters of Engine::Evaluate on the original program.
struct SolveStats {
  Adornment goal_adornment;       ///< effective (after bindable demotion)
  size_t adorned_predicates = 0;  ///< reachable adorned IDB predicates
  size_t rewritten_clauses = 0;   ///< clauses in the magic program
  size_t magic_facts = 0;         ///< demand atoms derived (incl. seed)
  size_t derived_facts = 0;       ///< atoms derived beyond the database
  size_t answers = 0;
  eval::EvalStats eval;           ///< the rewritten program's evaluation
};

struct SolveResult {
  Status status;
  /// Answer tuples of the goal predicate (full arity), deduplicated and
  /// sorted; on budget exhaustion the answers derived so far are kept.
  std::vector<std::vector<SeqId>> answers;
  SolveStats stats;
};

/// The reusable product of Solver::Prepare: one goal shape, analysed,
/// rewritten and compiled. Immutable after Prepare — every field is
/// read-only to Execute, which makes concurrent Execute calls safe.
/// Owned by core::PreparedQuery on the public API surface.
struct PreparedGoal {
  ast::Atom goal;
  std::string predicate;
  /// Interned values of the ground (non-parameter) goal arguments.
  std::vector<std::optional<SeqId>> fixed_values;
  /// Per goal position: 0 = not a parameter, else the 1-based `$N` index.
  std::vector<size_t> param_at;
  size_t param_count = 0;
  /// Positions sharing a repeated plain variable (join constraints).
  std::vector<std::vector<size_t>> var_groups;

  /// True when the goal predicate is extensional (no defining clause):
  /// Execute scans the database directly, no rewrite involved.
  bool edb = false;
  PredId edb_pred = 0;

  /// IDB goals: the cached rewrite and its compiled evaluator.
  Adornment goal_adornment;
  MagicProgram magic;
  std::shared_ptr<const eval::Evaluator> evaluator;
  PredId seed_pred = 0;
  PredId answer_pred = 0;
  size_t adorned_predicates = 0;
};

/// One entry of a batched execution: which prepared goal it instantiates
/// (an index into the goal list passed to ExecuteBatch) and the `$N`
/// parameter values for that instance.
struct BatchItem {
  size_t goal = 0;
  std::vector<std::optional<SeqId>> params;
};

/// Result of one ExecuteBatch call. `items[i]` answers `items[i]` of the
/// request in order, each with the exact status/answers an individual
/// Execute of that binding would produce — answer parity is the batch
/// invariant (tests/batch_executor_test.cc). Per-item eval counters are
/// those of the *shared* run that answered the item (rounds are
/// amortised across the batch, so they are not per-item attributable);
/// `eval` aggregates them across runs and `evaluations` counts the
/// semi-naive runs actually performed (1 for a single-goal batch).
struct BatchSolveResult {
  Status status;
  std::vector<SolveResult> items;
  size_t evaluations = 0;
  eval::EvalStats eval;
};

/// Stateless facade over adornment + magic rewrite + evaluation. Shares
/// the engine's catalog/pool/registry so SeqIds and PredIds line up with
/// the extensional database.
class Solver {
 public:
  /// `registry` may be null for pure Sequence Datalog programs.
  Solver(Catalog* catalog, SequencePool* pool,
         const eval::FunctionRegistry* registry);

  /// Analyses `goal` over `program` and compiles its demand rewrite.
  /// Errors: kInvalidArgument (malformed goal, arity/parameter misuse),
  /// kNotFound (unknown extensional predicate), kFailedPrecondition (the
  /// rewrite is not demand-evaluable, see file comment).
  Result<PreparedGoal> Prepare(const ast::Program& program,
                               const ast::Atom& goal) const;

  /// Answers `prepared` over `edb` with `params[i]` bound to `$i+1`.
  /// Performs zero parsing, zero rewriting, zero compilation — only seed
  /// injection, fixpoint evaluation of the cached program, and answer
  /// filtering. kFailedPrecondition if a parameter is unbound. Const and
  /// thread-safe: concurrent Execute calls may share one PreparedGoal as
  /// long as `edb` is not concurrently mutated (use a published
  /// snapshot, core/snapshot.h).
  ///
  /// `base_domain` (optional) is a frozen closure of exactly `edb`'s
  /// sequences — Snapshot publishes the pair — letting the run skip the
  /// per-query database closure (eval/engine.h).
  SolveResult Execute(
      const PreparedGoal& prepared, const Database& edb,
      const std::vector<std::optional<SeqId>>& params,
      const SolveOptions& options = {},
      std::shared_ptr<const ExtendedDomain> base_domain = nullptr) const;

  /// One-shot convenience: Prepare + Execute without parameters. Goals
  /// on extensional predicates (no defining clause) are answered
  /// directly from `edb`.
  SolveResult Solve(const ast::Program& program, const ast::Atom& goal,
                    const Database& edb, const SolveOptions& options = {});

  // ------------------------------------------------------------------
  // Batched execution — many bindings, one semi-naive run.
  // ------------------------------------------------------------------

  /// Compiles ONE evaluator that answers every goal of `goals` in a
  /// single run: the union of the goals' magic rewrites, deduplicated
  /// clause-by-clause (goals sharing adorned subgoals contribute each
  /// shared clause once). `symbols` is only used to key the dedup.
  /// Returns null when fewer than two goals carry a rewrite (a single
  /// IDB goal's own cached evaluator already is the fused plan — use
  /// it). kFailedPrecondition when the union closes a constructive
  /// cycle that no individual rewrite has (Definition 10): such goal
  /// sets must fall back to per-goal runs, which ExecuteBatch performs
  /// when `fused` is null.
  Result<std::shared_ptr<const eval::Evaluator>> FuseGoals(
      const std::vector<const PreparedGoal*>& goals,
      const SymbolTable& symbols) const;

  /// Answers every item of `items` (each an instantiation of one goal
  /// in `goals`) with the minimum number of fixpoint runs: all magic
  /// seed facts of the items sharing a run are injected together, the
  /// rounds and the domain closure are paid once for the whole batch,
  /// and the answers are demultiplexed per item from its goal's answer
  /// predicate by the item's bound values. With `fused` non-null (built
  /// by FuseGoals over the same `goals` list) every IDB item shares ONE
  /// run; with `fused` null items are grouped per goal — one run per
  /// distinct goal. EDB goals are answered by direct scans, as in
  /// Execute. Items with unbound parameters or out-of-range goal
  /// indices fail individually (their SolveResult carries the error)
  /// without failing the batch. Const and thread-safe under the same
  /// contract as Execute.
  BatchSolveResult ExecuteBatch(
      const std::vector<const PreparedGoal*>& goals,
      const eval::Evaluator* fused, const Database& edb,
      const std::vector<BatchItem>& items, const SolveOptions& options = {},
      std::shared_ptr<const ExtendedDomain> base_domain = nullptr) const;

 private:
  Catalog* catalog_;
  SequencePool* pool_;
  const eval::FunctionRegistry* registry_;
};

}  // namespace query
}  // namespace seqlog

#endif  // SEQLOG_QUERY_SOLVER_H_
