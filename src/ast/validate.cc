#include "ast/validate.h"

#include <map>
#include <utility>

#include "base/string_util.h"

namespace seqlog {
namespace ast {

namespace {

/// Collector for violations of one clause; issues share the clause index
/// and default to the clause's own position when the construct has none.
class IssueSink {
 public:
  IssueSink(std::vector<ValidationIssue>* out, const Clause& clause,
            size_t clause_index)
      : out_(out), clause_(clause), clause_index_(clause_index) {}

  void Add(std::string code, SourceLoc loc, std::string predicate,
           std::string message) {
    ValidationIssue issue;
    issue.code = std::move(code);
    issue.loc = loc.valid() ? loc : clause_.loc;
    issue.predicate = std::move(predicate);
    issue.message = std::move(message);
    issue.clause_index = clause_index_;
    out_->push_back(std::move(issue));
  }

 private:
  std::vector<ValidationIssue>* out_;
  const Clause& clause_;
  size_t clause_index_;
};

/// Checks term-structure restrictions common to every position.
void CheckTermStructure(const SeqTermPtr& term, const std::string& pred,
                        IssueSink* sink) {
  if (term == nullptr) {
    sink->Add("SL-E009", {}, pred, "null sequence term");
    return;
  }
  switch (term->kind) {
    case SeqTerm::Kind::kConstant:
    case SeqTerm::Kind::kVariable:
      return;
    case SeqTerm::Kind::kIndexed: {
      if (term->base == nullptr || term->lo == nullptr ||
          term->hi == nullptr) {
        sink->Add("SL-E009", term->loc, pred,
                  "indexed term with null components");
        return;
      }
      if (term->base->kind != SeqTerm::Kind::kConstant &&
          term->base->kind != SeqTerm::Kind::kVariable) {
        sink->Add("SL-E004", term->loc, pred,
                  "indexed terms must have a constant or variable base "
                  "(nested indexing and indexing of constructive terms is "
                  "not part of the term language)");
      }
      return;
    }
    case SeqTerm::Kind::kConcat: {
      CheckTermStructure(term->left, pred, sink);
      CheckTermStructure(term->right, pred, sink);
      return;
    }
    case SeqTerm::Kind::kTransducer: {
      for (const SeqTermPtr& a : term->args) {
        CheckTermStructure(a, pred, sink);
      }
      return;
    }
  }
  sink->Add("SL-E009", {}, pred, "unknown term kind");
}

void CheckBodyTerm(const SeqTermPtr& term, const std::string& pred,
                   IssueSink* sink) {
  CheckTermStructure(term, pred, sink);
  if (term != nullptr && IsConstructive(term)) {
    sink->Add("SL-E003", term->loc, pred,
              "constructive and transducer terms may appear only in clause "
              "heads, not in bodies (Section 3.1)");
  }
}

}  // namespace

std::vector<ValidationIssue> CollectValidationIssues(
    const Program& program) {
  std::vector<ValidationIssue> issues;
  std::map<std::string, size_t> arities;
  for (size_t ci = 0; ci < program.clauses.size(); ++ci) {
    const Clause& clause = program.clauses[ci];
    IssueSink sink(&issues, clause, ci);
    const std::string head_pred =
        clause.head.kind == Atom::Kind::kPredicate ? clause.head.predicate
                                                   : "";

    if (clause.head.kind != Atom::Kind::kPredicate) {
      sink.Add("SL-E002", clause.head.loc, "",
               "clause head must be a predicate atom");
    }
    for (const SeqTermPtr& t : clause.head.args) {
      CheckTermStructure(t, head_pred, &sink);
    }

    for (const Atom& atom : clause.body) {
      const std::string pred =
          atom.kind == Atom::Kind::kPredicate ? atom.predicate : head_pred;
      if (atom.kind != Atom::Kind::kPredicate && atom.args.size() != 2) {
        sink.Add("SL-E005", atom.loc, pred,
                 "equality atoms take exactly two arguments");
      }
      for (const SeqTermPtr& t : atom.args) {
        CheckBodyTerm(t, pred, &sink);
      }
    }

    // Arity consistency.
    auto check_arity = [&](const Atom& atom) {
      if (atom.kind != Atom::Kind::kPredicate) return;
      auto [it, inserted] =
          arities.emplace(atom.predicate, atom.args.size());
      if (!inserted && it->second != atom.args.size()) {
        sink.Add("SL-E006", atom.loc, atom.predicate,
                 StrCat("predicate '", atom.predicate, "' used with arity ",
                        atom.args.size(), " and ", it->second));
      }
    };
    check_arity(clause.head);
    for (const Atom& atom : clause.body) check_arity(atom);

    // Variable role consistency within the clause: V_Sigma and V_I are
    // disjoint sets in the paper.
    std::set<std::string> seq_vars;
    std::set<std::string> index_vars;
    CollectAtomVars(clause.head, &seq_vars, &index_vars);
    for (const Atom& atom : clause.body) {
      CollectAtomVars(atom, &seq_vars, &index_vars);
    }
    for (const std::string& v : seq_vars) {
      if (index_vars.count(v) > 0) {
        sink.Add("SL-E007", FindVarLoc(clause, v), head_pred,
                 StrCat("variable '", v,
                        "' is used both as a sequence variable and as an "
                        "index variable"));
      }
    }
  }
  return issues;
}

Status Validate(const Program& program) {
  std::vector<ValidationIssue> issues = CollectValidationIssues(program);
  if (issues.empty()) return Status::Ok();
  const ValidationIssue& first = issues[0];
  // Historical message shape "clause N: <message>" kept as a prefix for
  // callers that match on it; position and predicate are appended.
  std::string msg =
      StrCat("clause ", first.clause_index + 1, ": ", first.message);
  if (first.loc.valid()) {
    msg += StrCat(" [at ", ToString(first.loc),
                  first.predicate.empty()
                      ? ""
                      : StrCat(", predicate '", first.predicate, "'"),
                  "]");
  }
  StatusCode code = first.code == "SL-E009" ? StatusCode::kInternal
                                            : StatusCode::kInvalidArgument;
  return Status(code, msg);
}

Status ValidateSequenceDatalog(const Program& program) {
  SEQLOG_RETURN_IF_ERROR(Validate(program));
  if (program.IsTransducerDatalog()) {
    return Status::InvalidArgument(
        "transducer terms are not part of Sequence Datalog; use the "
        "Transducer Datalog entry points");
  }
  return Status::Ok();
}

}  // namespace ast
}  // namespace seqlog
