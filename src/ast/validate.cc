#include "ast/validate.h"

#include <map>

#include "base/string_util.h"

namespace seqlog {
namespace ast {

namespace {

/// Checks term-structure restrictions common to every position.
Status CheckTermStructure(const SeqTermPtr& term) {
  if (term == nullptr) {
    return Status::Internal("null sequence term");
  }
  switch (term->kind) {
    case SeqTerm::Kind::kConstant:
    case SeqTerm::Kind::kVariable:
      return Status::Ok();
    case SeqTerm::Kind::kIndexed: {
      if (term->base == nullptr || term->lo == nullptr ||
          term->hi == nullptr) {
        return Status::Internal("indexed term with null components");
      }
      if (term->base->kind != SeqTerm::Kind::kConstant &&
          term->base->kind != SeqTerm::Kind::kVariable) {
        return Status::InvalidArgument(
            "indexed terms must have a constant or variable base "
            "(nested indexing and indexing of constructive terms is not "
            "part of the term language)");
      }
      return Status::Ok();
    }
    case SeqTerm::Kind::kConcat: {
      SEQLOG_RETURN_IF_ERROR(CheckTermStructure(term->left));
      return CheckTermStructure(term->right);
    }
    case SeqTerm::Kind::kTransducer: {
      for (const SeqTermPtr& a : term->args) {
        SEQLOG_RETURN_IF_ERROR(CheckTermStructure(a));
      }
      return Status::Ok();
    }
  }
  return Status::Internal("unknown term kind");
}

Status CheckBodyTerm(const SeqTermPtr& term) {
  SEQLOG_RETURN_IF_ERROR(CheckTermStructure(term));
  if (IsConstructive(term)) {
    return Status::InvalidArgument(
        "constructive and transducer terms may appear only in clause "
        "heads, not in bodies (Section 3.1)");
  }
  return Status::Ok();
}

}  // namespace

Status Validate(const Program& program) {
  std::map<std::string, size_t> arities;
  for (size_t ci = 0; ci < program.clauses.size(); ++ci) {
    const Clause& clause = program.clauses[ci];
    auto fail = [&](const Status& s) {
      return Status(s.code(),
                    StrCat("clause ", ci + 1, ": ", s.message()));
    };

    if (clause.head.kind != Atom::Kind::kPredicate) {
      return fail(Status::InvalidArgument(
          "clause head must be a predicate atom"));
    }
    for (const SeqTermPtr& t : clause.head.args) {
      Status s = CheckTermStructure(t);
      if (!s.ok()) return fail(s);
    }

    for (const Atom& atom : clause.body) {
      if (atom.kind != Atom::Kind::kPredicate && atom.args.size() != 2) {
        return fail(Status::InvalidArgument(
            "equality atoms take exactly two arguments"));
      }
      for (const SeqTermPtr& t : atom.args) {
        Status s = CheckBodyTerm(t);
        if (!s.ok()) return fail(s);
      }
    }

    // Arity consistency.
    auto check_arity = [&](const Atom& atom) -> Status {
      if (atom.kind != Atom::Kind::kPredicate) return Status::Ok();
      auto [it, inserted] =
          arities.emplace(atom.predicate, atom.args.size());
      if (!inserted && it->second != atom.args.size()) {
        return Status::InvalidArgument(
            StrCat("predicate '", atom.predicate, "' used with arity ",
                   atom.args.size(), " and ", it->second));
      }
      return Status::Ok();
    };
    Status s = check_arity(clause.head);
    if (!s.ok()) return fail(s);
    for (const Atom& atom : clause.body) {
      s = check_arity(atom);
      if (!s.ok()) return fail(s);
    }

    // Variable role consistency within the clause: V_Sigma and V_I are
    // disjoint sets in the paper.
    std::set<std::string> seq_vars;
    std::set<std::string> index_vars;
    CollectAtomVars(clause.head, &seq_vars, &index_vars);
    for (const Atom& atom : clause.body) {
      CollectAtomVars(atom, &seq_vars, &index_vars);
    }
    for (const std::string& v : seq_vars) {
      if (index_vars.count(v) > 0) {
        return fail(Status::InvalidArgument(
            StrCat("variable '", v,
                   "' is used both as a sequence variable and as an "
                   "index variable")));
      }
    }
  }
  return Status::Ok();
}

Status ValidateSequenceDatalog(const Program& program) {
  SEQLOG_RETURN_IF_ERROR(Validate(program));
  if (program.IsTransducerDatalog()) {
    return Status::InvalidArgument(
        "transducer terms are not part of Sequence Datalog; use the "
        "Transducer Datalog entry points");
  }
  return Status::Ok();
}

}  // namespace ast
}  // namespace seqlog
