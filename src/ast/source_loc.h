// seqlog: source positions for program text.
//
// The lexer tracks line/column (1-based) per token; the parser stamps
// them onto every term, atom and clause it builds so that analysis
// diagnostics (analysis/diagnostics.h) and precondition errors can point
// at program text. Synthesized AST nodes (magic rewrite, guarded
// transform, translations) carry the default invalid location {0, 0}.
#ifndef SEQLOG_AST_SOURCE_LOC_H_
#define SEQLOG_AST_SOURCE_LOC_H_

#include <string>

namespace seqlog {
namespace ast {

/// A 1-based line:column position in program source text. The default
/// {0, 0} means "no source position" (synthesized node).
struct SourceLoc {
  int line = 0;
  int column = 0;

  /// True when this node came from parsed text (line/column are 1-based).
  bool valid() const { return line > 0; }

  friend bool operator==(const SourceLoc& a, const SourceLoc& b) {
    return a.line == b.line && a.column == b.column;
  }
  friend bool operator<(const SourceLoc& a, const SourceLoc& b) {
    return a.line != b.line ? a.line < b.line : a.column < b.column;
  }
};

/// "3:7" for valid locations, "?" for synthesized nodes.
inline std::string ToString(const SourceLoc& loc) {
  if (!loc.valid()) return "?";
  return std::to_string(loc.line) + ":" + std::to_string(loc.column);
}

}  // namespace ast
}  // namespace seqlog

#endif  // SEQLOG_AST_SOURCE_LOC_H_
