#include "ast/clause.h"

#include "base/logging.h"
#include "base/string_util.h"

namespace seqlog {
namespace ast {

Atom MakePredicateAtom(std::string predicate,
                       std::vector<SeqTermPtr> args) {
  Atom a;
  a.kind = Atom::Kind::kPredicate;
  a.predicate = std::move(predicate);
  a.args = std::move(args);
  return a;
}

Atom MakeEqAtom(SeqTermPtr lhs, SeqTermPtr rhs) {
  Atom a;
  a.kind = Atom::Kind::kEq;
  a.args = {std::move(lhs), std::move(rhs)};
  return a;
}

Atom MakeNeqAtom(SeqTermPtr lhs, SeqTermPtr rhs) {
  Atom a;
  a.kind = Atom::Kind::kNeq;
  a.args = {std::move(lhs), std::move(rhs)};
  return a;
}

bool Clause::IsConstructiveClause() const {
  for (const SeqTermPtr& t : head.args) {
    if (IsConstructive(t)) return true;
  }
  return false;
}

bool Program::IsTransducerDatalog() const {
  for (const Clause& c : clauses) {
    for (const SeqTermPtr& t : c.head.args) {
      if (ContainsTransducerTerm(t)) return true;
    }
    for (const Atom& a : c.body) {
      for (const SeqTermPtr& t : a.args) {
        if (ContainsTransducerTerm(t)) return true;
      }
    }
  }
  return false;
}

std::set<std::string> Program::MentionedTransducers() const {
  std::set<std::string> out;
  for (const Clause& c : clauses) {
    for (const SeqTermPtr& t : c.head.args) CollectTransducers(t, &out);
    for (const Atom& a : c.body) {
      for (const SeqTermPtr& t : a.args) CollectTransducers(t, &out);
    }
  }
  return out;
}

std::set<std::string> Program::HeadPredicates() const {
  std::set<std::string> out;
  for (const Clause& c : clauses) {
    if (c.head.kind == Atom::Kind::kPredicate) out.insert(c.head.predicate);
  }
  return out;
}

void CollectAtomVars(const Atom& atom, std::set<std::string>* seq_vars,
                     std::set<std::string>* index_vars) {
  for (const SeqTermPtr& t : atom.args) {
    if (seq_vars != nullptr) CollectSeqVars(t, seq_vars);
    if (index_vars != nullptr) CollectIndexVars(t, index_vars);
  }
}

SourceLoc FindVarLoc(const Clause& clause, std::string_view name) {
  for (const SeqTermPtr& t : clause.head.args) {
    SourceLoc loc = FindVarLoc(t, name);
    if (loc.valid()) return loc;
  }
  for (const Atom& a : clause.body) {
    for (const SeqTermPtr& t : a.args) {
      SourceLoc loc = FindVarLoc(t, name);
      if (loc.valid()) return loc;
    }
  }
  return {};
}

std::set<std::string> GuardedVars(const Clause& clause) {
  std::set<std::string> guarded;
  for (const Atom& a : clause.body) {
    if (a.kind != Atom::Kind::kPredicate) continue;
    for (const SeqTermPtr& t : a.args) {
      if (t->kind == SeqTerm::Kind::kVariable) guarded.insert(t->var);
    }
  }
  return guarded;
}

bool IsGuarded(const Clause& clause) {
  std::set<std::string> seq_vars;
  CollectAtomVars(clause.head, &seq_vars, nullptr);
  for (const Atom& a : clause.body) CollectAtomVars(a, &seq_vars, nullptr);
  std::set<std::string> guarded = GuardedVars(clause);
  for (const std::string& v : seq_vars) {
    if (guarded.count(v) == 0) return false;
  }
  return true;
}

bool IsGuarded(const Program& program) {
  for (const Clause& c : program.clauses) {
    if (!IsGuarded(c)) return false;
  }
  return true;
}

std::string ToString(const Atom& atom, const SequencePool& pool,
                     const SymbolTable& symbols) {
  switch (atom.kind) {
    case Atom::Kind::kPredicate: {
      if (atom.args.empty()) return atom.predicate;
      std::vector<std::string> parts;
      parts.reserve(atom.args.size());
      for (const SeqTermPtr& t : atom.args) {
        parts.push_back(ToString(t, pool, symbols));
      }
      return StrCat(atom.predicate, "(", Join(parts, ", "), ")");
    }
    case Atom::Kind::kEq:
      SEQLOG_CHECK(atom.args.size() == 2);
      return StrCat(ToString(atom.args[0], pool, symbols), " = ",
                    ToString(atom.args[1], pool, symbols));
    case Atom::Kind::kNeq:
      SEQLOG_CHECK(atom.args.size() == 2);
      return StrCat(ToString(atom.args[0], pool, symbols), " != ",
                    ToString(atom.args[1], pool, symbols));
  }
  return "?";
}

std::string ToString(const Clause& clause, const SequencePool& pool,
                     const SymbolTable& symbols) {
  std::string out = ToString(clause.head, pool, symbols);
  if (!clause.body.empty()) {
    out += " :- ";
    std::vector<std::string> parts;
    parts.reserve(clause.body.size());
    for (const Atom& a : clause.body) {
      parts.push_back(ToString(a, pool, symbols));
    }
    out += Join(parts, ", ");
  }
  out += ".";
  return out;
}

std::string ToString(const Program& program, const SequencePool& pool,
                     const SymbolTable& symbols) {
  std::string out;
  for (const Clause& c : program.clauses) {
    out += ToString(c, pool, symbols);
    out += "\n";
  }
  return out;
}

}  // namespace ast
}  // namespace seqlog
