// seqlog: the term language of Sequence Datalog (Section 3.1).
//
// Two kinds of terms exist:
//  * index terms    — integers, index variables, `end`, combined with + and -
//  * sequence terms — constant sequences, sequence variables, indexed terms
//                     s[n1:n2], constructive terms s1 ++ s2, and (Transducer
//                     Datalog, Section 7) transducer terms @T(s1,...,sm).
//
// Terms are immutable trees shared via shared_ptr<const ...>; program
// transformations copy pointers freely.
#ifndef SEQLOG_AST_TERM_H_
#define SEQLOG_AST_TERM_H_

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "ast/source_loc.h"
#include "sequence/sequence_pool.h"
#include "sequence/symbol_table.h"

namespace seqlog {
namespace ast {

struct IndexTerm;
using IndexTermPtr = std::shared_ptr<const IndexTerm>;

/// An index term (Section 3.1): evaluates to an integer under a
/// substitution. `end` denotes the length of the enclosing indexed term's
/// base sequence and is only legal inside an indexed term.
struct IndexTerm {
  enum class Kind { kLiteral, kVariable, kEnd, kAdd, kSub };
  Kind kind;
  int64_t literal = 0;  ///< kLiteral payload.
  std::string var;      ///< kVariable payload (index variable name).
  IndexTermPtr lhs;     ///< kAdd/kSub operands.
  IndexTermPtr rhs;
  SourceLoc loc;        ///< position in program text ({0,0} = synthesized)
};

// Factories take an optional source location (the parser passes the
// token position; program transformations omit it).
IndexTermPtr MakeIndexLiteral(int64_t value, SourceLoc loc = {});
IndexTermPtr MakeIndexVariable(std::string name, SourceLoc loc = {});
IndexTermPtr MakeIndexEnd(SourceLoc loc = {});
IndexTermPtr MakeIndexAdd(IndexTermPtr lhs, IndexTermPtr rhs);
IndexTermPtr MakeIndexSub(IndexTermPtr lhs, IndexTermPtr rhs);

struct SeqTerm;
using SeqTermPtr = std::shared_ptr<const SeqTerm>;

/// A sequence term (Section 3.1). Indexed terms may only have a constant
/// or a variable as base — (s1++s2)[1:N] and S[1:N][M:end] are not terms;
/// the validator rejects them (see validate.h).
struct SeqTerm {
  enum class Kind { kConstant, kVariable, kIndexed, kConcat, kTransducer };
  Kind kind;
  SeqId constant = kEmptySeq;    ///< kConstant payload (interned sequence).
  std::string var;               ///< kVariable payload (sequence variable).
  SeqTermPtr base;               ///< kIndexed base (constant or variable).
  IndexTermPtr lo;               ///< kIndexed lower index.
  IndexTermPtr hi;               ///< kIndexed upper index.
  SeqTermPtr left;               ///< kConcat operands.
  SeqTermPtr right;
  std::string transducer;        ///< kTransducer machine name.
  std::vector<SeqTermPtr> args;  ///< kTransducer arguments.
  SourceLoc loc;                 ///< position in text ({0,0} = synthesized)
};

SeqTermPtr MakeConstant(SeqId value, SourceLoc loc = {});
SeqTermPtr MakeVariable(std::string name, SourceLoc loc = {});
SeqTermPtr MakeIndexed(SeqTermPtr base, IndexTermPtr lo, IndexTermPtr hi);
/// Shorthand for the paper's s[n] == s[n:n].
SeqTermPtr MakeIndexedPoint(SeqTermPtr base, IndexTermPtr at);
SeqTermPtr MakeConcat(SeqTermPtr left, SeqTermPtr right);
SeqTermPtr MakeTransducerTerm(std::string name, std::vector<SeqTermPtr> args,
                              SourceLoc loc = {});

/// True if the term contains a constructive (++) or transducer subterm.
/// Clauses whose head contains one are the paper's *constructive clauses*.
bool IsConstructive(const SeqTermPtr& term);

/// True if the term contains a transducer subterm.
bool ContainsTransducerTerm(const SeqTermPtr& term);

/// Adds the names of sequence variables occurring in `term` to `out`.
void CollectSeqVars(const SeqTermPtr& term, std::set<std::string>* out);
/// Adds the names of index variables occurring in `term` to `out`.
void CollectIndexVars(const SeqTermPtr& term, std::set<std::string>* out);
void CollectIndexVars(const IndexTermPtr& term, std::set<std::string>* out);

/// Adds the names of transducers mentioned in `term` to `out`.
void CollectTransducers(const SeqTermPtr& term, std::set<std::string>* out);

/// Source position of the first occurrence (pre-order) of the sequence
/// or index variable `name` in `term`; the invalid location if absent.
SourceLoc FindVarLoc(const SeqTermPtr& term, std::string_view name);

/// Renders a term in the parser's surface syntax.
std::string ToString(const IndexTermPtr& term);
std::string ToString(const SeqTermPtr& term, const SequencePool& pool,
                     const SymbolTable& symbols);

}  // namespace ast
}  // namespace seqlog

#endif  // SEQLOG_AST_TERM_H_
