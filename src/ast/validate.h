// seqlog: well-formedness checks for programs (Section 3.1 restrictions).
#ifndef SEQLOG_AST_VALIDATE_H_
#define SEQLOG_AST_VALIDATE_H_

#include "ast/clause.h"
#include "base/status.h"

namespace seqlog {
namespace ast {

/// Validates the syntactic restrictions of Sections 3.1 and 7.1:
///  * clause heads are predicate atoms (no =, != heads);
///  * constructive (++) and transducer (@T) terms appear only in heads;
///  * indexed terms have a constant or variable base (no nesting, no
///    indexing of constructive terms);
///  * equality atoms have exactly two arguments;
///  * a predicate name is used with one arity throughout the program;
///  * no variable is used both as a sequence and as an index variable.
Status Validate(const Program& program);

/// Validate() plus the Sequence Datalog restriction: no transducer terms
/// anywhere (Section 3 language only).
Status ValidateSequenceDatalog(const Program& program);

}  // namespace ast
}  // namespace seqlog

#endif  // SEQLOG_AST_VALIDATE_H_
