// seqlog: well-formedness checks for programs (Section 3.1 restrictions).
#ifndef SEQLOG_AST_VALIDATE_H_
#define SEQLOG_AST_VALIDATE_H_

#include <string>
#include <vector>

#include "ast/clause.h"
#include "base/status.h"

namespace seqlog {
namespace ast {

/// A single well-formedness violation, located in program text. The
/// linter (analysis/lint.h) surfaces these as diagnostics; Validate()
/// folds the first one into a Status for callers that only need
/// pass/fail.
struct ValidationIssue {
  std::string code;       ///< stable diagnostic code ("SL-E003", ...)
  SourceLoc loc;          ///< position of the offending construct
  std::string predicate;  ///< offending predicate name ("" if n/a)
  std::string message;    ///< human-readable description, position-free
  size_t clause_index = 0;  ///< 0-based index into program.clauses
};

/// Checks the syntactic restrictions of Sections 3.1 and 7.1 and returns
/// *every* violation found (empty = well-formed):
///  * clause heads are predicate atoms (no =, != heads)      [SL-E002]
///  * constructive (++) and transducer (@T) terms appear
///    only in heads                                          [SL-E003]
///  * indexed terms have a constant or variable base (no
///    nesting, no indexing of constructive terms)            [SL-E004]
///  * equality atoms have exactly two arguments              [SL-E005]
///  * a predicate name is used with one arity throughout     [SL-E006]
///  * no variable is both a sequence and an index variable   [SL-E007]
std::vector<ValidationIssue> CollectValidationIssues(const Program& program);

/// Validates the restrictions above, folding the first violation into a
/// Status whose message keeps the historical "clause N: ..." text and
/// appends the source position and offending predicate.
Status Validate(const Program& program);

/// Validate() plus the Sequence Datalog restriction: no transducer terms
/// anywhere (Section 3 language only).
Status ValidateSequenceDatalog(const Program& program);

}  // namespace ast
}  // namespace seqlog

#endif  // SEQLOG_AST_VALIDATE_H_
