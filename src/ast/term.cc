#include "ast/term.h"

#include "base/logging.h"
#include "base/string_util.h"

namespace seqlog {
namespace ast {

namespace {

std::shared_ptr<IndexTerm> NewIndex(IndexTerm::Kind kind) {
  auto t = std::make_shared<IndexTerm>();
  t->kind = kind;
  return t;
}

std::shared_ptr<SeqTerm> NewSeq(SeqTerm::Kind kind) {
  auto t = std::make_shared<SeqTerm>();
  t->kind = kind;
  return t;
}

}  // namespace

IndexTermPtr MakeIndexLiteral(int64_t value, SourceLoc loc) {
  auto t = NewIndex(IndexTerm::Kind::kLiteral);
  t->literal = value;
  t->loc = loc;
  return t;
}

IndexTermPtr MakeIndexVariable(std::string name, SourceLoc loc) {
  auto t = NewIndex(IndexTerm::Kind::kVariable);
  t->var = std::move(name);
  t->loc = loc;
  return t;
}

IndexTermPtr MakeIndexEnd(SourceLoc loc) {
  auto t = NewIndex(IndexTerm::Kind::kEnd);
  t->loc = loc;
  return t;
}

IndexTermPtr MakeIndexAdd(IndexTermPtr lhs, IndexTermPtr rhs) {
  auto t = NewIndex(IndexTerm::Kind::kAdd);
  t->loc = lhs != nullptr ? lhs->loc : SourceLoc{};
  t->lhs = std::move(lhs);
  t->rhs = std::move(rhs);
  return t;
}

IndexTermPtr MakeIndexSub(IndexTermPtr lhs, IndexTermPtr rhs) {
  auto t = NewIndex(IndexTerm::Kind::kSub);
  t->loc = lhs != nullptr ? lhs->loc : SourceLoc{};
  t->lhs = std::move(lhs);
  t->rhs = std::move(rhs);
  return t;
}

SeqTermPtr MakeConstant(SeqId value, SourceLoc loc) {
  auto t = NewSeq(SeqTerm::Kind::kConstant);
  t->constant = value;
  t->loc = loc;
  return t;
}

SeqTermPtr MakeVariable(std::string name, SourceLoc loc) {
  auto t = NewSeq(SeqTerm::Kind::kVariable);
  t->var = std::move(name);
  t->loc = loc;
  return t;
}

SeqTermPtr MakeIndexed(SeqTermPtr base, IndexTermPtr lo, IndexTermPtr hi) {
  auto t = NewSeq(SeqTerm::Kind::kIndexed);
  t->loc = base != nullptr ? base->loc : SourceLoc{};
  t->base = std::move(base);
  t->lo = std::move(lo);
  t->hi = std::move(hi);
  return t;
}

SeqTermPtr MakeIndexedPoint(SeqTermPtr base, IndexTermPtr at) {
  return MakeIndexed(std::move(base), at, at);
}

SeqTermPtr MakeConcat(SeqTermPtr left, SeqTermPtr right) {
  auto t = NewSeq(SeqTerm::Kind::kConcat);
  t->loc = left != nullptr ? left->loc : SourceLoc{};
  t->left = std::move(left);
  t->right = std::move(right);
  return t;
}

SeqTermPtr MakeTransducerTerm(std::string name,
                              std::vector<SeqTermPtr> args, SourceLoc loc) {
  auto t = NewSeq(SeqTerm::Kind::kTransducer);
  t->transducer = std::move(name);
  t->args = std::move(args);
  t->loc = loc;
  return t;
}

bool IsConstructive(const SeqTermPtr& term) {
  if (term == nullptr) return false;
  switch (term->kind) {
    case SeqTerm::Kind::kConstant:
    case SeqTerm::Kind::kVariable:
      return false;
    case SeqTerm::Kind::kIndexed:
      return IsConstructive(term->base);
    case SeqTerm::Kind::kConcat:
    case SeqTerm::Kind::kTransducer:
      return true;
  }
  return false;
}

bool ContainsTransducerTerm(const SeqTermPtr& term) {
  if (term == nullptr) return false;
  switch (term->kind) {
    case SeqTerm::Kind::kConstant:
    case SeqTerm::Kind::kVariable:
      return false;
    case SeqTerm::Kind::kIndexed:
      return ContainsTransducerTerm(term->base);
    case SeqTerm::Kind::kConcat:
      return ContainsTransducerTerm(term->left) ||
             ContainsTransducerTerm(term->right);
    case SeqTerm::Kind::kTransducer:
      return true;
  }
  return false;
}

void CollectIndexVars(const IndexTermPtr& term,
                      std::set<std::string>* out) {
  if (term == nullptr) return;
  switch (term->kind) {
    case IndexTerm::Kind::kLiteral:
    case IndexTerm::Kind::kEnd:
      return;
    case IndexTerm::Kind::kVariable:
      out->insert(term->var);
      return;
    case IndexTerm::Kind::kAdd:
    case IndexTerm::Kind::kSub:
      CollectIndexVars(term->lhs, out);
      CollectIndexVars(term->rhs, out);
      return;
  }
}

void CollectSeqVars(const SeqTermPtr& term, std::set<std::string>* out) {
  if (term == nullptr) return;
  switch (term->kind) {
    case SeqTerm::Kind::kConstant:
      return;
    case SeqTerm::Kind::kVariable:
      out->insert(term->var);
      return;
    case SeqTerm::Kind::kIndexed:
      CollectSeqVars(term->base, out);
      return;
    case SeqTerm::Kind::kConcat:
      CollectSeqVars(term->left, out);
      CollectSeqVars(term->right, out);
      return;
    case SeqTerm::Kind::kTransducer:
      for (const SeqTermPtr& a : term->args) CollectSeqVars(a, out);
      return;
  }
}

void CollectIndexVars(const SeqTermPtr& term, std::set<std::string>* out) {
  if (term == nullptr) return;
  switch (term->kind) {
    case SeqTerm::Kind::kConstant:
    case SeqTerm::Kind::kVariable:
      return;
    case SeqTerm::Kind::kIndexed:
      CollectIndexVars(term->lo, out);
      CollectIndexVars(term->hi, out);
      return;
    case SeqTerm::Kind::kConcat:
      CollectIndexVars(term->left, out);
      CollectIndexVars(term->right, out);
      return;
    case SeqTerm::Kind::kTransducer:
      for (const SeqTermPtr& a : term->args) CollectIndexVars(a, out);
      return;
  }
}

void CollectTransducers(const SeqTermPtr& term,
                        std::set<std::string>* out) {
  if (term == nullptr) return;
  switch (term->kind) {
    case SeqTerm::Kind::kConstant:
    case SeqTerm::Kind::kVariable:
      return;
    case SeqTerm::Kind::kIndexed:
      CollectTransducers(term->base, out);
      return;
    case SeqTerm::Kind::kConcat:
      CollectTransducers(term->left, out);
      CollectTransducers(term->right, out);
      return;
    case SeqTerm::Kind::kTransducer:
      out->insert(term->transducer);
      for (const SeqTermPtr& a : term->args) CollectTransducers(a, out);
      return;
  }
}

namespace {

SourceLoc FindIndexVarLoc(const IndexTermPtr& term, std::string_view name) {
  if (term == nullptr) return {};
  switch (term->kind) {
    case IndexTerm::Kind::kLiteral:
    case IndexTerm::Kind::kEnd:
      return {};
    case IndexTerm::Kind::kVariable:
      return term->var == name ? term->loc : SourceLoc{};
    case IndexTerm::Kind::kAdd:
    case IndexTerm::Kind::kSub: {
      SourceLoc loc = FindIndexVarLoc(term->lhs, name);
      return loc.valid() ? loc : FindIndexVarLoc(term->rhs, name);
    }
  }
  return {};
}

}  // namespace

SourceLoc FindVarLoc(const SeqTermPtr& term, std::string_view name) {
  if (term == nullptr) return {};
  switch (term->kind) {
    case SeqTerm::Kind::kConstant:
      return {};
    case SeqTerm::Kind::kVariable:
      return term->var == name ? term->loc : SourceLoc{};
    case SeqTerm::Kind::kIndexed: {
      SourceLoc loc = FindVarLoc(term->base, name);
      if (loc.valid()) return loc;
      loc = FindIndexVarLoc(term->lo, name);
      return loc.valid() ? loc : FindIndexVarLoc(term->hi, name);
    }
    case SeqTerm::Kind::kConcat: {
      SourceLoc loc = FindVarLoc(term->left, name);
      return loc.valid() ? loc : FindVarLoc(term->right, name);
    }
    case SeqTerm::Kind::kTransducer:
      for (const SeqTermPtr& a : term->args) {
        SourceLoc loc = FindVarLoc(a, name);
        if (loc.valid()) return loc;
      }
      return {};
  }
  return {};
}

std::string ToString(const IndexTermPtr& term) {
  SEQLOG_CHECK(term != nullptr);
  switch (term->kind) {
    case IndexTerm::Kind::kLiteral:
      return std::to_string(term->literal);
    case IndexTerm::Kind::kVariable:
      return term->var;
    case IndexTerm::Kind::kEnd:
      return "end";
    case IndexTerm::Kind::kAdd:
      return StrCat(ToString(term->lhs), "+", ToString(term->rhs));
    case IndexTerm::Kind::kSub:
      return StrCat(ToString(term->lhs), "-", ToString(term->rhs));
  }
  return "?";
}

std::string ToString(const SeqTermPtr& term, const SequencePool& pool,
                     const SymbolTable& symbols) {
  SEQLOG_CHECK(term != nullptr);
  switch (term->kind) {
    case SeqTerm::Kind::kConstant: {
      if (term->constant == kEmptySeq) return "eps";
      return StrCat("\"", pool.Render(term->constant, symbols), "\"");
    }
    case SeqTerm::Kind::kVariable:
      return term->var;
    case SeqTerm::Kind::kIndexed: {
      std::string base = ToString(term->base, pool, symbols);
      return StrCat(base, "[", ToString(term->lo), ":", ToString(term->hi),
                    "]");
    }
    case SeqTerm::Kind::kConcat:
      return StrCat(ToString(term->left, pool, symbols), " ++ ",
                    ToString(term->right, pool, symbols));
    case SeqTerm::Kind::kTransducer: {
      std::vector<std::string> parts;
      parts.reserve(term->args.size());
      for (const SeqTermPtr& a : term->args) {
        parts.push_back(ToString(a, pool, symbols));
      }
      return StrCat("@", term->transducer, "(", Join(parts, ", "), ")");
    }
  }
  return "?";
}

}  // namespace ast
}  // namespace seqlog
