// seqlog: atoms, clauses and programs (Section 3.1).
#ifndef SEQLOG_AST_CLAUSE_H_
#define SEQLOG_AST_CLAUSE_H_

#include <set>
#include <string>
#include <vector>

#include "ast/term.h"

namespace seqlog {
namespace ast {

/// An atom: p(s1,...,sn), s1 = s2, or s1 != s2.
struct Atom {
  enum class Kind { kPredicate, kEq, kNeq };
  Kind kind = Kind::kPredicate;
  std::string predicate;         ///< kPredicate only.
  std::vector<SeqTermPtr> args;  ///< kEq/kNeq use exactly two args.
  /// Position of the predicate name (kPredicate) or the left operand
  /// (kEq/kNeq) in program text; {0,0} for synthesized atoms.
  SourceLoc loc;
};

Atom MakePredicateAtom(std::string predicate, std::vector<SeqTermPtr> args);
Atom MakeEqAtom(SeqTermPtr lhs, SeqTermPtr rhs);
Atom MakeNeqAtom(SeqTermPtr lhs, SeqTermPtr rhs);

/// A clause (rule) head :- body. A fact is a clause with an empty body
/// (the paper writes `head <- true`).
struct Clause {
  Atom head;
  std::vector<Atom> body;

  /// A *constructive clause* has a ++ or @T(...) term in its head.
  bool IsConstructiveClause() const;

  /// Position of the clause in program text (= head position for parsed
  /// clauses; {0,0} for synthesized clauses).
  SourceLoc loc;
};

/// A program is a list of clauses. Programs with transducer terms are
/// Transducer Datalog programs; without, Sequence Datalog programs.
struct Program {
  std::vector<Clause> clauses;

  /// True if any clause mentions a transducer term.
  bool IsTransducerDatalog() const;

  /// Names of transducers mentioned anywhere in the program.
  std::set<std::string> MentionedTransducers() const;

  /// Names of predicates appearing in clause heads.
  std::set<std::string> HeadPredicates() const;
};

/// Variable names of `atom`, split by role.
void CollectAtomVars(const Atom& atom, std::set<std::string>* seq_vars,
                     std::set<std::string>* index_vars);

/// Position of the first occurrence of variable `name` in `clause`
/// (head first, then body literals in order); invalid if absent.
SourceLoc FindVarLoc(const Clause& clause, std::string_view name);

/// Sequence variables that are *guarded* in `clause`: those occurring in
/// the body as a direct argument of a predicate atom (Section 3.1). The
/// clause is guarded iff every sequence variable in it is guarded.
std::set<std::string> GuardedVars(const Clause& clause);
bool IsGuarded(const Clause& clause);
bool IsGuarded(const Program& program);

/// Rendering in the parser's surface syntax.
std::string ToString(const Atom& atom, const SequencePool& pool,
                     const SymbolTable& symbols);
std::string ToString(const Clause& clause, const SequencePool& pool,
                     const SymbolTable& symbols);
std::string ToString(const Program& program, const SequencePool& pool,
                     const SymbolTable& symbols);

}  // namespace ast
}  // namespace seqlog

#endif  // SEQLOG_AST_CLAUSE_H_
