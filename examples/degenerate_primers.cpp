// degenerate_primers: nondeterministic transducers + the rs baseline +
// Sequence Datalog on one genomics task.
//
//   $ ./degenerate_primers
//
// A *degenerate primer* is a DNA sequence written with IUPAC ambiguity
// codes (R = a|g, Y = c|t, N = any base, ...). Expanding one is a
// one-symbol-per-step nondeterministic computation — exactly the
// generalization of Definition 7 the paper notes — so we:
//
//   1. build a nondeterministic transducer whose runs enumerate every
//      concrete sequence a degenerate primer denotes;
//   2. search a synthetic genome database for each expansion, twice:
//      with an rs-operation pattern (the Section 1.1 baseline) and with
//      a Sequence Datalog containment query, checking they agree.
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/engine.h"
#include "rs/algebra.h"
#include "rs/pattern.h"
#include "transducer/nondet.h"

namespace {

using namespace seqlog;
using transducer::HeadMove;
using transducer::NdOutput;
using transducer::NondetBuilder;
using transducer::SymPattern;

/// Builds the IUPAC expander: one state, one Emit branch per concrete
/// base a code denotes. Concrete bases pass through.
Result<std::shared_ptr<const transducer::NondetTransducer>> MakeIupac(
    SymbolTable* symbols) {
  const std::map<char, std::string> kCodes = {
      {'a', "a"}, {'c', "c"}, {'g', "g"}, {'t', "t"},
      {'R', "ag"}, {'Y', "ct"}, {'S', "cg"}, {'W', "at"},
      {'K', "gt"}, {'M', "ac"}, {'N', "acgt"}};
  NondetBuilder b("iupac", 1);
  transducer::StateId q = b.State("q");
  for (const auto& [code, bases] : kCodes) {
    Symbol in = symbols->Intern(std::string_view(&code, 1));
    for (char base : bases) {
      Symbol out = symbols->Intern(std::string_view(&base, 1));
      b.Add(q, {SymPattern::Exact(in)}, q, {HeadMove::kAdvance},
            NdOutput::Emit(out));
    }
  }
  return b.Build();
}

}  // namespace

int main() {
  Engine engine;
  SymbolTable* symbols = engine.symbols();
  SequencePool* pool = engine.pool();

  // A small synthetic "genome" database.
  const std::vector<std::string> genome = {
      "ttacgatgcaggt", "catgtaggcat", "gatacacagct", "atgcagatgtag",
  };

  // 1. Expand the degenerate primer.
  const std::string primer = "atgYRg";
  auto iupac = MakeIupac(symbols);
  if (!iupac.ok()) {
    std::fprintf(stderr, "%s\n", iupac.status().ToString().c_str());
    return 1;
  }
  SeqId primer_seq = pool->FromChars(primer, symbols);
  auto expansions =
      (*iupac)->RunAll(std::vector<SeqId>{primer_seq}, pool);
  if (!expansions.ok()) {
    std::fprintf(stderr, "%s\n", expansions.status().ToString().c_str());
    return 1;
  }
  std::printf("primer %s has %zu concrete expansions:\n", primer.c_str(),
              expansions->size());
  std::vector<std::string> concrete;
  for (SeqId id : *expansions) {
    concrete.push_back(pool->Render(id, *symbols));
    std::printf("  %s\n", concrete.back().c_str());
  }

  // 2a. Baseline search: one rs pattern X1<expansion>X2 per expansion.
  std::set<std::string> rs_hits;
  rs::Table dna;
  dna.arity = 1;
  for (const std::string& g : genome) {
    dna.rows.push_back({pool->FromChars(g, symbols)});
  }
  rs::TableEnv env;
  env["dna"] = std::move(dna);
  for (const std::string& c : concrete) {
    auto pattern = rs::Pattern::Parse("X1" + c + "X2", pool, symbols);
    if (!pattern.ok()) {
      std::fprintf(stderr, "%s\n", pattern.status().ToString().c_str());
      return 1;
    }
    auto hits = rs::Select(rs::Base("dna"), 0, pattern.value())
                    ->Eval(env, pool);
    if (!hits.ok()) {
      std::fprintf(stderr, "%s\n", hits.status().ToString().c_str());
      return 1;
    }
    for (const auto& row : hits->rows) {
      rs_hits.insert(pool->Render(row[0], *symbols));
    }
  }

  // 2b. Sequence Datalog search: containment by indexed-term equality.
  // hit(X) :- dna(X), cand(P), X[I:J] = P. The candidate expansions are
  // just database facts; I and J range over the integer part of the
  // extended active domain.
  Status s = engine.LoadProgram("hit(X) :- dna(X), cand(P), X[I:J] = P.");
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  for (const std::string& g : genome) engine.AddFact("dna", {g});
  for (const std::string& c : concrete) engine.AddFact("cand", {c});
  eval::EvalOutcome outcome = engine.Evaluate();
  if (!outcome.status.ok()) {
    std::fprintf(stderr, "%s\n", outcome.status.ToString().c_str());
    return 1;
  }
  auto rows = engine.Query("hit");
  if (!rows.ok()) {
    std::fprintf(stderr, "%s\n", rows.status().ToString().c_str());
    return 1;
  }
  std::set<std::string> sd_hits;
  for (const RenderedRow& row : rows.value()) sd_hits.insert(row[0]);

  std::printf("\ngenome sequences matching the primer:\n");
  for (const std::string& hit : sd_hits) {
    std::printf("  %s\n", hit.c_str());
  }
  std::printf("rs baseline and Sequence Datalog agree: %s\n",
              rs_hits == sd_hits ? "yes" : "NO");
  return rs_hits == sd_hits ? 0 : 1;
}
