// seqlog_shell: an interactive Sequence/Transducer Datalog console.
//
//   $ ./seqlog_shell
//   seqlog> suffix(X[N:end]) :- r(X).
//   seqlog> +r acgt
//   seqlog> :run
//   seqlog> :query suffix
//
// Rule lines (anything containing ":-") accumulate into the program;
// "+pred arg1 arg2 ..." adds a database fact; commands start with ':'.
// The standard transducer library (append, reverse, complement, square,
// transcribe, translate, ...) is pre-registered, so @-terms work out of
// the box:
//
//   seqlog> sq(@square(X)) :- r(X).
//
// This example doubles as a manual-testing harness for every public
// surface of the Engine facade: program loading, fact entry, the three
// evaluation strategies, safety analysis, dependency-graph export, and
// budget configuration.
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/lint.h"
#include "analysis/safety.h"
#include "core/engine.h"
#include "serve/client.h"
#include "transducer/genome.h"
#include "transducer/library.h"
#include "transducer/network.h"

namespace {

using seqlog::Engine;
using seqlog::Status;

constexpr char kHelp[] = R"(seqlog shell commands
  <rule>.                 add a rule (any line containing ":-")
  +<pred> <arg> ...       add a database fact, e.g.  +r acgt
  ?- <pred>(<args>).      solve one goal by demand (magic sets)
  :run [naive|semi|strat] evaluate (default: semi-naive)
  :drain                  apply facts added since :run incrementally
                          (live ingest; retractions recompute cold)
  :query <pred>           print the predicate's tuples in the model
  :solve <goal>           same as ?- <goal>, e.g.  :solve suffix(acgt)
  :prepare <name> <goal>  compile a goal once, e.g. :prepare s suffix($1)
  :bind <name> <i> <val>  bind parameter $i of a prepared goal
  :exec <name> [v1 ...]   execute (optionally binding $1..$k first)
                          against a fresh snapshot of the facts
  :program                show the accumulated program
  :safety                 safety report (Definitions 8-10)
  :check [goal]           lint the program (analysis/lint.h); with a
                          goal also checks reachability/bindability
  :dot                    dependency graph in Graphviz format (Figure 3)
  :limits <iters> <facts> set evaluation budgets
  :threads <n>            evaluation threads (0 = one per core, 1 = serial)
  :stats                  time split of the last :run (firing vs closure)
  :serve-stats <host> <p> counters of a running seqlog-serve (STATS verb)
  :load <file>            append rules from a file
  :clear                  drop program and facts
  :machines               list registered transducers
  :help                   this text
  :quit                   exit
)";

/// Registers the standard machine library so @-terms resolve.
Status RegisterStandardMachines(Engine* engine) {
  auto reg = [&](auto result) -> Status {
    if (!result.ok()) return result.status();
    return engine->RegisterTransducer(result.value());
  };
  seqlog::SymbolTable* syms = engine->symbols();
  std::vector<seqlog::Symbol> dna = {
      syms->Intern("a"), syms->Intern("c"), syms->Intern("g"),
      syms->Intern("t")};
  SEQLOG_RETURN_IF_ERROR(reg(seqlog::transducer::MakeAppend("append", 2)));
  SEQLOG_RETURN_IF_ERROR(reg(seqlog::transducer::MakeIdentity("id")));
  SEQLOG_RETURN_IF_ERROR(reg(seqlog::transducer::MakeSquare("square")));
  SEQLOG_RETURN_IF_ERROR(
      reg(seqlog::transducer::MakeReverse("reverse", dna)));
  SEQLOG_RETURN_IF_ERROR(reg(seqlog::transducer::MakeEcho("echo", dna)));
  SEQLOG_RETURN_IF_ERROR(
      reg(seqlog::transducer::MakeTranscribe("transcribe", syms)));
  SEQLOG_RETURN_IF_ERROR(
      reg(seqlog::transducer::MakeTranslate("translate", syms)));
  // The genome pipeline as a compiled network: @rnapipe(X) is
  // translate(transcribe(X)) fused into one deterministic machine
  // (transducer/determinize.h, fuse.h); :stats shows the compile
  // counters after a run that used it.
  {
    auto transcribe = seqlog::transducer::MakeTranscribe("t", syms);
    auto translate = seqlog::transducer::MakeTranslate("tr", syms);
    if (!transcribe.ok()) return transcribe.status();
    if (!translate.ok()) return translate.status();
    auto net =
        std::make_shared<seqlog::transducer::TransducerNetwork>("rnapipe", 1);
    SEQLOG_ASSIGN_OR_RETURN(
        size_t n0,
        net->AddNode(transcribe.value(),
                     {seqlog::transducer::InputSource::FromNetwork(0)}));
    SEQLOG_ASSIGN_OR_RETURN(
        size_t n1,
        net->AddNode(translate.value(),
                     {seqlog::transducer::InputSource::FromNode(n0)}));
    SEQLOG_RETURN_IF_ERROR(net->SetOutput(n1));
    SEQLOG_RETURN_IF_ERROR(net->Compile(dna));
    SEQLOG_RETURN_IF_ERROR(engine->RegisterTransducer(std::move(net)));
  }
  return Status::Ok();
}

/// Holds the shell's accumulated state; the Engine is rebuilt lazily on
/// :run so rules can arrive in any order.
class Shell {
 public:
  Shell() { Reset(); }

  int Loop() {
    std::string line;
    std::cout << "seqlog shell - :help for commands\n";
    while (true) {
      std::cout << "seqlog> " << std::flush;
      if (!std::getline(std::cin, line)) break;
      if (!Dispatch(line)) break;
    }
    return 0;
  }

 private:
  void Reset() {
    engine_ = std::make_unique<Engine>();
    Status s = RegisterStandardMachines(engine_.get());
    if (!s.ok()) std::cout << "! " << s.ToString() << "\n";
    program_.clear();
    facts_.clear();
    prepared_.clear();
    evaluated_ = false;
    engine_stale_ = false;
  }

  bool Dispatch(const std::string& line) {
    std::string trimmed = Trim(line);
    if (trimmed.empty()) return true;
    if (trimmed[0] == '+') return AddFact(trimmed.substr(1));
    if (trimmed[0] == ':') return Command(trimmed);
    if (trimmed.rfind("?-", 0) == 0) {
      Solve(trimmed);
      return true;
    }
    if (trimmed.find(":-") != std::string::npos ||
        trimmed.find("<=") != std::string::npos) {
      program_ += trimmed;
      program_ += '\n';
      evaluated_ = false;
      engine_stale_ = true;
      return true;
    }
    std::cout << "? not a rule, fact or command (:help)\n";
    return true;
  }

  bool AddFact(const std::string& rest) {
    std::istringstream in(rest);
    std::string pred;
    in >> pred;
    std::vector<std::string> args;
    std::string arg;
    while (in >> arg) args.push_back(arg == "eps" ? "" : arg);
    if (pred.empty()) {
      std::cout << "? usage: +pred arg1 arg2 ...\n";
      return true;
    }
    facts_.emplace_back(pred, args);
    evaluated_ = false;
    // Facts can be appended to the live engine without a rebuild;
    // prepared goals keep working and :exec snapshots pick them up.
    if (!engine_stale_) {
      Status s = engine_->AddFact(facts_.back().first, facts_.back().second);
      if (!s.ok()) {
        std::cout << "! " << s.ToString() << "\n";
        facts_.pop_back();
      }
    }
    return true;
  }

  bool Command(const std::string& line) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd == ":quit" || cmd == ":q") return false;
    if (cmd == ":help") {
      std::cout << kHelp;
    } else if (cmd == ":clear") {
      Reset();
      std::cout << "cleared\n";
    } else if (cmd == ":program") {
      std::cout << (program_.empty() ? "(empty)\n" : program_);
    } else if (cmd == ":machines") {
      for (const auto& [name, order] : engine_->registry()->Orders()) {
        std::cout << "  @" << name << "  (order " << order << ")\n";
      }
    } else if (cmd == ":limits") {
      in >> limits_.max_iterations >> limits_.max_facts;
      std::cout << "budgets: " << limits_.max_iterations << " iterations, "
                << limits_.max_facts << " facts\n";
    } else if (cmd == ":threads") {
      size_t n = 0;
      if (!(in >> n)) {
        std::cout << "? usage: :threads <n>  (0 = one per core)\n";
        return true;
      }
      num_threads_ = n;
      if (num_threads_ == 0) {
        std::cout << "threads: one per core\n";
      } else {
        std::cout << "threads: " << num_threads_
                  << (num_threads_ == 1 ? " (serial)" : "") << "\n";
      }
    } else if (cmd == ":stats") {
      PrintStats();
    } else if (cmd == ":serve-stats") {
      std::string host;
      int port = 0;
      in >> host >> port;
      ServeStats(host, port);
    } else if (cmd == ":load") {
      std::string path;
      in >> path;
      LoadFile(path);
    } else if (cmd == ":run") {
      std::string mode;
      in >> mode;
      Run(mode);
    } else if (cmd == ":drain") {
      Drain();
    } else if (cmd == ":query") {
      std::string pred;
      in >> pred;
      Query(pred);
    } else if (cmd == ":solve") {
      std::string goal;
      std::getline(in, goal);
      Solve(goal);
    } else if (cmd == ":prepare") {
      std::string name, goal;
      in >> name;
      std::getline(in, goal);
      PrepareGoal(name, goal);
    } else if (cmd == ":bind") {
      std::string name, value;
      size_t index = 0;
      in >> name >> index >> value;
      BindParam(name, index, value);
    } else if (cmd == ":exec") {
      std::string name, value;
      in >> name;
      std::vector<std::string> values;
      while (in >> value) values.push_back(value == "eps" ? "" : value);
      Exec(name, values);
    } else if (cmd == ":check") {
      std::string goal;
      std::getline(in, goal);
      Check(goal);
    } else if (cmd == ":safety") {
      Safety(/*dot=*/false);
    } else if (cmd == ":dot") {
      Safety(/*dot=*/true);
    } else {
      std::cout << "? unknown command (:help)\n";
    }
    return true;
  }

  void LoadFile(const std::string& path) {
    std::ifstream file(path);
    if (!file) {
      std::cout << "! cannot open " << path << "\n";
      return;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    program_ += buffer.str();
    evaluated_ = false;
    engine_stale_ = true;
    std::cout << "loaded " << path << "\n";
  }

  /// (Re)loads program and facts into a fresh engine when rules changed
  /// since the last build; otherwise keeps the live engine (so prepared
  /// goals stay valid). Reports errors.
  bool Reload() {
    if (!engine_stale_) return true;
    std::unique_ptr<Engine> fresh = std::make_unique<Engine>();
    Status s = RegisterStandardMachines(fresh.get());
    if (s.ok()) s = fresh->LoadProgram(program_);
    if (!s.ok()) {
      std::cout << "! " << s.ToString() << "\n";
      return false;
    }
    for (const auto& [pred, args] : facts_) {
      s = fresh->AddFact(pred, args);
      if (!s.ok()) {
        std::cout << "! " << s.ToString() << "\n";
        return false;
      }
    }
    if (!prepared_.empty()) {
      std::cout << "(program changed: " << prepared_.size()
                << " prepared goal(s) dropped; re-:prepare)\n";
      prepared_.clear();
    }
    engine_ = std::move(fresh);
    engine_stale_ = false;
    return true;
  }

  void Run(const std::string& mode) {
    if (!Reload()) return;
    seqlog::eval::EvalOptions options;
    options.limits = limits_;
    options.num_threads = num_threads_;
    if (mode == "naive") {
      options.strategy = seqlog::eval::Strategy::kNaive;
    } else if (mode == "strat") {
      options.strategy = seqlog::eval::Strategy::kStratified;
    } else {
      options.strategy = seqlog::eval::Strategy::kSemiNaive;
    }
    seqlog::eval::EvalOutcome outcome = engine_->Evaluate(options);
    if (!outcome.status.ok()) {
      std::cout << "! " << outcome.status.ToString() << "\n";
      std::cout << "  (partial model kept: " << outcome.stats.facts
                << " facts)\n";
    } else {
      std::cout << "fixpoint: " << outcome.stats.facts << " facts, "
                << outcome.stats.domain_sequences << " domain sequences, "
                << outcome.stats.iterations << " iterations, "
                << outcome.stats.millis << " ms\n";
    }
    last_stats_ = outcome.stats;
    have_stats_ = true;
    evaluated_ = true;
  }

  /// Applies facts added since the last :run incrementally — the engine
  /// staged them on its ingest queue; DrainIngest re-saturates the model
  /// from them as a delta (docs/STREAMING.md) instead of recomputing.
  void Drain() {
    // Facts added since :run flipped evaluated_, but the engine still
    // holds the model with those facts staged — exactly what a drain
    // re-saturates. Only new rules (engine_stale_) force a full :run.
    if (engine_stale_ || !engine_->live_model().built()) {
      std::cout << "? run :run first\n";
      return;
    }
    seqlog::eval::EvalOptions options;
    options.limits = limits_;
    options.num_threads = num_threads_;
    seqlog::eval::EvalOutcome outcome = engine_->DrainIngest(options);
    if (!outcome.status.ok()) {
      std::cout << "! " << outcome.status.ToString() << "\n";
      return;
    }
    if (outcome.stats.ingested_facts == 0) {
      std::cout << "nothing staged\n";
      return;
    }
    last_stats_ = outcome.stats;
    have_stats_ = true;
    evaluated_ = true;  // the model covers every fact again
    if (outcome.stats.cold_fallback) {
      std::cout << "cold recompute (" << outcome.stats.ingested_facts
                << " staged facts): " << outcome.stats.facts << " facts, "
                << outcome.stats.iterations << " iterations, "
                << outcome.stats.millis << " ms\n";
    } else {
      std::cout << "resaturated: +" << outcome.stats.ingested_facts
                << " facts -> " << outcome.stats.facts << " total, "
                << outcome.stats.resaturate_rounds << " rounds, "
                << outcome.stats.resaturate_millis << " ms\n";
    }
  }

  /// Prints the Amdahl split of the last :run — the parallelisable
  /// firing phase vs the serial domain-closure phase (EvalStats::
  /// fire_millis / domain_millis; docs/CONCURRENCY.md).
  void PrintStats() {
    if (!have_stats_) {
      std::cout << "? run :run first\n";
      return;
    }
    auto share = [&](double part) {
      return last_stats_.millis > 0
                 ? static_cast<int>(100.0 * part / last_stats_.millis + 0.5)
                 : 0;
    };
    std::cout << "last run: " << last_stats_.millis << " ms total\n"
              << "  firing (parallel phase):  " << last_stats_.fire_millis
              << " ms (" << share(last_stats_.fire_millis) << "%)\n"
              << "  closure (serial barrier): "
              << last_stats_.domain_millis() << " ms ("
              << share(last_stats_.domain_millis()) << "%)\n"
              << "    domain load:  " << last_stats_.domain_load_millis
              << " ms (" << share(last_stats_.domain_load_millis) << "%)\n"
              << "    domain merge: " << last_stats_.domain_merge_millis
              << " ms (" << share(last_stats_.domain_merge_millis)
              << "%)\n";
    if (last_stats_.ingested_facts > 0) {
      std::cout << "  live ingest: " << last_stats_.ingested_facts
                << " facts applied, " << last_stats_.resaturate_rounds
                << " resaturation rounds, " << last_stats_.resaturate_millis
                << " ms"
                << (last_stats_.cold_fallback ? " (cold fallback)" : "")
                << "\n";
    }
    const seqlog::TransducerStats& t = last_stats_.transducer;
    // Shown once a compiled network actually ran (the counters are
    // cumulative over the engine's lifetime); runs that never touch a
    // network keep the classic five-line output.
    if (t.compiled_node_runs + t.interpreted_node_runs > 0) {
      std::cout << "  transducers: " << t.machines_compiled
                << " machine(s) compiled (" << t.states_in << " -> "
                << t.states_out << " states, delay <= " << t.delay_bound
                << "), " << t.fusion_hits << " fusion(s), "
                << t.fusion_fallbacks << " fallback(s)\n"
                << "    node runs: " << t.compiled_node_runs
                << " compiled, " << t.interpreted_node_runs
                << " interpreted\n";
    }
  }

  /// The shell as a minimal monitoring client: fetches a running
  /// seqlog-serve's counters via the STATS verb (docs/SERVING.md).
  void ServeStats(const std::string& host, int port) {
    if (host.empty() || port <= 0 || port > 65535) {
      std::cout << "? usage: :serve-stats <host> <port>\n";
      return;
    }
    seqlog::serve::TextClient client;
    Status s = client.Connect(host, static_cast<uint16_t>(port));
    if (!s.ok()) {
      std::cout << "! " << s.ToString() << "\n";
      return;
    }
    auto reply = client.Roundtrip("STATS");
    if (!reply.ok()) {
      std::cout << "! " << reply.status().ToString() << "\n";
      return;
    }
    if (!reply.value().ok()) {
      std::cout << "! " << reply.value().header << "\n";
      return;
    }
    for (const std::string& line : reply.value().body) {
      std::cout << "  "
                << (line.rfind("STAT ", 0) == 0 ? line.substr(5) : line)
                << "\n";
    }
  }

  void Query(const std::string& pred) {
    if (!evaluated_) {
      std::cout << "? run :run first\n";
      return;
    }
    auto rows = engine_->Query(pred);
    if (!rows.ok()) {
      if (rows.status().code() == seqlog::StatusCode::kNotFound) {
        std::cout << "? unknown predicate '" << pred << "'\n";
      } else {
        std::cout << "! " << rows.status().ToString() << "\n";
      }
      return;
    }
    PrintRows(rows.value());
  }

  /// Answers one goal by demand evaluation; no :run needed.
  void Solve(const std::string& goal) {
    if (!Reload()) return;
    seqlog::query::SolveOptions options;
    options.eval.limits = limits_;
    options.eval.num_threads = num_threads_;
    seqlog::SolveOutcome outcome = engine_->Solve(goal, options);
    if (!outcome.status.ok()) {
      if (outcome.status.code() == seqlog::StatusCode::kNotFound) {
        std::cout << "? " << outcome.status.message() << "\n";
        return;
      }
      std::cout << "! " << outcome.status.ToString() << "\n";
      if (outcome.status.code() !=
          seqlog::StatusCode::kResourceExhausted) {
        return;
      }
      std::cout << "  (partial answers kept)\n";
    }
    PrintRows(outcome.answers);
    std::cout << "  [adornment " << (outcome.stats.goal_adornment.empty()
                                         ? "-"
                                         : outcome.stats.goal_adornment)
              << ", " << outcome.stats.adorned_predicates
              << " adorned predicate(s), " << outcome.stats.derived_facts
              << " facts derived (" << outcome.stats.magic_facts
              << " magic), " << outcome.stats.eval.iterations
              << " iterations]\n";
  }

  /// Compiles a goal once under `name`; later :exec calls reuse the
  /// cached rewrite (zero parsing / rewriting per call).
  void PrepareGoal(const std::string& name, const std::string& goal) {
    if (name.empty() || goal.empty()) {
      std::cout << "? usage: :prepare <name> <goal>, e.g. "
                   ":prepare s suffix($1)\n";
      return;
    }
    if (!Reload()) return;
    auto pq = engine_->Prepare(goal);
    if (!pq.ok()) {
      std::cout << "! " << pq.status().ToString() << "\n";
      return;
    }
    std::cout << "prepared '" << name << "': " << pq->param_count()
              << " parameter(s), adornment "
              << (pq->goal_adornment().empty() ? "-" : pq->goal_adornment())
              << "\n";
    prepared_.insert_or_assign(name, std::move(pq).value());
  }

  void BindParam(const std::string& name, size_t index,
                 const std::string& value) {
    // Reload first: a rule change invalidates prepared goals (Reload
    // drops them with a message) — never bind into a stale engine.
    if (!Reload()) return;
    auto it = prepared_.find(name);
    if (it == prepared_.end()) {
      std::cout << "? no prepared goal '" << name << "' (:prepare first)\n";
      return;
    }
    Status s = it->second.Bind(index, value == "eps" ? "" : value);
    if (!s.ok()) {
      std::cout << "! " << s.ToString() << "\n";
      return;
    }
    std::cout << "bound $" << index << "\n";
  }

  /// Executes a prepared goal against a fresh snapshot of the facts,
  /// binding $1..$k positionally when values are given.
  void Exec(const std::string& name, const std::vector<std::string>& values) {
    // Reload first: rule changes drop prepared goals (with a message)
    // and buffered facts reach the fresh engine before the snapshot.
    if (!Reload()) return;
    auto it = prepared_.find(name);
    if (it == prepared_.end()) {
      std::cout << "? no prepared goal '" << name << "' (:prepare first)\n";
      return;
    }
    seqlog::PreparedQuery& pq = it->second;
    for (size_t i = 0; i < values.size(); ++i) {
      Status s = pq.Bind(i + 1, values[i]);
      if (!s.ok()) {
        std::cout << "! " << s.ToString() << "\n";
        return;
      }
    }
    seqlog::query::SolveOptions options;
    options.eval.limits = limits_;
    options.eval.num_threads = num_threads_;
    seqlog::Snapshot snap = engine_->PublishSnapshot();
    seqlog::ResultSet rs = pq.Execute(snap, options);
    if (!rs.ok()) {
      std::cout << "! " << rs.status().ToString() << "\n";
      if (rs.status().code() != seqlog::StatusCode::kResourceExhausted) {
        return;
      }
      std::cout << "  (partial answers kept)\n";
    }
    PrintRows(rs.Materialize());
    seqlog::PreparedQueryStats stats = pq.stats();
    std::cout << "  [snapshot v" << snap.version() << ", "
              << rs.stats().derived_facts << " facts derived ("
              << rs.stats().magic_facts << " magic); prepared once: "
              << stats.goal_parses << " parse / " << stats.magic_rewrites
              << " rewrite, " << stats.executions << " execution(s)]\n";
  }

  void PrintRows(const std::vector<seqlog::RenderedRow>& rows) {
    for (const seqlog::RenderedRow& row : rows) {
      std::cout << "  (";
      for (size_t i = 0; i < row.size(); ++i) {
        std::cout << (i > 0 ? ", " : "") << '"' << row[i] << '"';
      }
      std::cout << ")\n";
    }
    std::cout << rows.size() << " tuple(s)\n";
  }

  /// Lints the accumulated program text (even when it does not validate
  /// — the linter reports every problem, not just the first). Predicates
  /// with +facts count as extensional; a goal argument enables the
  /// reachability/bindability passes.
  void Check(const std::string& goal_text) {
    seqlog::analysis::LintOptions options;
    options.include_info = true;
    for (const auto& [pred, args] : facts_) {
      options.edb_predicates.insert(pred);
    }
    // Lint in a scratch pool/symbol table: the program text may not even
    // parse, and linting must not disturb the engine.
    seqlog::SymbolTable symbols;
    seqlog::SequencePool pool;
    std::string trimmed_goal = Trim(goal_text);
    if (!trimmed_goal.empty()) {
      auto goal = seqlog::parser::ParseGoal(trimmed_goal, &symbols, &pool);
      if (!goal.ok()) {
        std::cout << "! " << goal.status().ToString() << "\n";
        return;
      }
      options.goal = goal.value();
    }
    seqlog::analysis::DiagnosticReport report =
        seqlog::analysis::LintSource(program_, &symbols, &pool, options);
    if (report.empty()) {
      std::cout << "no findings\n";
      return;
    }
    std::cout << report.RenderText();
  }

  void Safety(bool dot) {
    if (!Reload()) return;
    seqlog::analysis::SafetyReport report = engine_->AnalyzeSafety();
    if (dot) {
      std::cout << report.graph.ToDot();
      return;
    }
    std::cout << "non-constructive: " << (report.non_constructive ? "yes"
                                                                  : "no")
              << "\nstrongly safe:    " << (report.strongly_safe ? "yes"
                                                                 : "no")
              << "\n";
    if (report.offending_edge.has_value()) {
      std::cout << "constructive cycle through "
                << report.offending_edge->first << " -> "
                << report.offending_edge->second << "\n";
    }
    std::cout << "strata:\n";
    for (size_t i = 0; i < report.strata.size(); ++i) {
      std::cout << "  " << i << ": {";
      const auto& preds = report.strata[i].predicates;
      for (size_t j = 0; j < preds.size(); ++j) {
        std::cout << (j > 0 ? ", " : "") << preds[j];
      }
      std::cout << "}  " << report.strata[i].constructive_clauses.size()
                << " constructive / "
                << report.strata[i].nonconstructive_clauses.size()
                << " plain clause(s)\n";
    }
  }

  static std::string Trim(const std::string& s) {
    size_t b = s.find_first_not_of(" \t\r\n");
    if (b == std::string::npos) return "";
    size_t e = s.find_last_not_of(" \t\r\n");
    return s.substr(b, e - b + 1);
  }

  std::unique_ptr<Engine> engine_;
  std::string program_;
  std::vector<std::pair<std::string, std::vector<std::string>>> facts_;
  std::map<std::string, seqlog::PreparedQuery> prepared_;
  seqlog::eval::EvalLimits limits_;
  size_t num_threads_ = 0;  ///< 0 = one per hardware core
  seqlog::eval::EvalStats last_stats_;  ///< of the last :run, for :stats
  bool have_stats_ = false;
  bool evaluated_ = false;
  bool engine_stale_ = false;
};

}  // namespace

int main() {
  Shell shell;
  return shell.Loop();
}
