// seqlog example: pattern matching with pure structural recursion —
// no machine, no construction, guaranteed-safe queries (Theorem 3 says
// this fragment has polynomial data complexity).
//
//  * a^n b^n c^n     — the paper's non-context-free Example 1.3
//  * repeats Y^k     — Example 1.5 (rep1, the safe variant)
//  * palindromes     — classic two-pointer structural recursion
#include <iostream>

#include "core/engine.h"
#include "core/programs.h"

int main() {
  seqlog::Engine engine;
  std::string program = std::string(seqlog::programs::kAbcN) + R"(
    repeat(X, Y) :- r(X), rep1(X, Y), X != Y.
    rep1(X, X) :- true.
    rep1(X, X[1:N]) :- rep1(X[N+1:end], X[1:N]).
    palindrome(X) :- r(X), ispal(X).
    ispal(eps) :- true.
    ispal(X) :- X = X[1].
    ispal(X) :- X[1] = X[end], ispal(X[2:end-1]).
  )";
  seqlog::Status status = engine.LoadProgram(program);
  if (!status.ok()) {
    std::cerr << status.ToString() << "\n";
    return 1;
  }

  const char* data[] = {"aabbcc", "abc",    "aabbc",  "abcabcabc",
                        "abab",   "racecar", "abba",  "abcba",
                        "ab",     ""};
  for (const char* seq : data) {
    if (!engine.AddFact("r", {seq}).ok()) return 1;
  }

  seqlog::eval::EvalOutcome outcome = engine.Evaluate();
  if (!outcome.status.ok()) {
    std::cerr << outcome.status.ToString() << "\n";
    return 1;
  }
  std::cout << "facts=" << outcome.stats.facts
            << " domain=" << outcome.stats.domain_sequences
            << " iterations=" << outcome.stats.iterations << "\n\n";

  auto print = [&](const char* pred, const char* title) {
    auto rows = engine.Query(pred);
    if (!rows.ok()) return;
    std::cout << title << ":\n";
    for (const auto& row : rows.value()) {
      std::cout << "  ";
      for (size_t i = 0; i < row.size(); ++i) {
        std::cout << (i > 0 ? "  =  (" : "\"") << row[i]
                  << (i > 0 ? ")^k" : "\"");
      }
      std::cout << "\n";
    }
    std::cout << "\n";
  };

  print("answer", "sequences of the form a^n b^n c^n (Example 1.3)");
  print("repeat", "proper repeats X = Y^k, k > 1 (Example 1.5)");
  print("palindrome", "palindromes");
  return 0;
}
