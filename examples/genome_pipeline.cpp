// seqlog example: the paper's motivating domain — genome databases
// (Example 7.1). A Transducer Datalog program transcribes DNA to RNA and
// translates RNA to protein; a second program block computes reverse
// complements and looks for a restriction-site motif, mixing machine
// calls with structural pattern matching.
#include <iostream>
#include <random>

#include "core/engine.h"
#include "core/programs.h"
#include "transducer/genome.h"

namespace {

std::string RandomDna(std::mt19937* rng, size_t len) {
  static const char kBases[] = "acgt";
  std::string out;
  for (size_t i = 0; i < len; ++i) out += kBases[(*rng)() % 4];
  return out;
}

}  // namespace

int main() {
  seqlog::Engine engine;

  // Register the machines used by the program.
  auto transcribe =
      seqlog::transducer::MakeTranscribe("transcribe", engine.symbols());
  auto translate =
      seqlog::transducer::MakeTranslate("translate", engine.symbols());
  auto complement =
      seqlog::transducer::MakeDnaComplement("complement", engine.symbols());
  auto reverse =
      seqlog::transducer::MakeDnaReverse("reverse", engine.symbols());
  for (const auto& machine : {transcribe, translate, complement, reverse}) {
    if (!machine.ok()) {
      std::cerr << machine.status().ToString() << "\n";
      return 1;
    }
    if (!engine.RegisterTransducer(machine.value()).ok()) return 1;
  }

  // Example 7.1's pipeline plus reverse-complement and a motif scan:
  // gaattc is the EcoRI restriction site; the scan is pure structural
  // recursion (indexed terms), the chemistry is done by machines.
  seqlog::Status status = engine.LoadProgram(R"(
    rnaseq(D, @transcribe(D)) :- dnaseq(D).
    proteinseq(D, @translate(R)) :- rnaseq(D, R).
    revcomp(D, @reverse(@complement(D))) :- dnaseq(D).
    ecori(D) :- dnaseq(D), D[N:N+5] = gaattc.
    ecori_either_strand(D) :- ecori(D).
    ecori_either_strand(D) :- revcomp(D, R), ecori_rc(D, R).
    ecori_rc(D, R) :- revcomp(D, R), R[N:N+5] = gaattc.
  )");
  if (!status.ok()) {
    std::cerr << status.ToString() << "\n";
    return 1;
  }

  std::mt19937 rng(42);
  // A fixed sequence containing the EcoRI site plus random ones.
  engine.AddFact("dnaseq", {"acgaattcgtacgt"});
  for (int i = 0; i < 4; ++i) {
    engine.AddFact("dnaseq", {RandomDna(&rng, 12)});
  }

  seqlog::eval::EvalOutcome outcome = engine.Evaluate();
  if (!outcome.status.ok()) {
    std::cerr << outcome.status.ToString() << "\n";
    return 1;
  }

  auto print = [&](const char* pred) {
    auto rows = engine.Query(pred);
    if (!rows.ok()) {
      std::cerr << rows.status().ToString() << "\n";
      return;
    }
    std::cout << pred << ":\n";
    for (const auto& row : rows.value()) {
      std::cout << "  ";
      for (size_t i = 0; i < row.size(); ++i) {
        std::cout << (i > 0 ? " -> " : "") << row[i];
      }
      std::cout << "\n";
    }
    std::cout << "\n";
  };

  print("rnaseq");
  print("proteinseq");
  print("revcomp");
  print("ecori_either_strand");
  return 0;
}
