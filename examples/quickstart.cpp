// seqlog quickstart: load a Sequence Datalog program, add facts,
// evaluate, query.
//
//   $ ./quickstart
//
// Covers the two interpreted term forms of the language: indexed terms
// (structural recursion) and constructive terms (concatenation), on the
// paper's opening examples.
#include <iostream>

#include "core/engine.h"

int main() {
  seqlog::Engine engine;

  // A program mixing structural extraction and construction:
  //  * every suffix of every r-sequence            (Example 1.1)
  //  * every pairwise concatenation                (Example 1.2)
  //  * the reverse of every r-sequence             (Example 1.4)
  seqlog::Status status = engine.LoadProgram(R"(
    % lint-expect: SL-E010 — reverse (Example 1.4) is finite but not
    % strongly safe; the budgeted semi-naive run below handles it.
    suffix(X[N:end]) :- r(X).
    pair(X ++ Y) :- r(X), r(Y).
    answer(Y) :- r(X), reverse(X, Y).
    reverse(eps, eps) :- true.
    reverse(X[1:N+1], X[N+1] ++ Y) :- r(X), reverse(X[1:N], Y).
  )");
  if (!status.ok()) {
    std::cerr << "load failed: " << status.ToString() << "\n";
    return 1;
  }

  for (const char* seq : {"acgt", "tgg"}) {
    status = engine.AddFact("r", {seq});
    if (!status.ok()) {
      std::cerr << "fact failed: " << status.ToString() << "\n";
      return 1;
    }
  }

  seqlog::eval::EvalOutcome outcome = engine.Evaluate();
  if (!outcome.status.ok()) {
    std::cerr << "evaluation failed: " << outcome.status.ToString() << "\n";
    return 1;
  }
  std::cout << "evaluated in " << outcome.stats.iterations
            << " iterations, " << outcome.stats.facts << " facts, domain "
            << outcome.stats.domain_sequences << " sequences\n\n";

  for (const char* pred : {"suffix", "pair", "answer"}) {
    seqlog::Result<std::vector<seqlog::RenderedRow>> rows =
        engine.Query(pred);
    if (!rows.ok()) {
      std::cerr << "query failed: " << rows.status().ToString() << "\n";
      return 1;
    }
    std::cout << pred << ":\n";
    for (const seqlog::RenderedRow& row : rows.value()) {
      std::cout << "  (";
      for (size_t i = 0; i < row.size(); ++i) {
        std::cout << (i > 0 ? ", " : "") << '"' << row[i] << '"';
      }
      std::cout << ")\n";
    }
    std::cout << "\n";
  }

  // Goal-directed querying: Solve derives only the facts demanded by the
  // goal (magic sets), instead of the whole model.
  seqlog::SolveOutcome solved = engine.Solve("?- suffix(cgt).");
  if (!solved.status.ok()) {
    std::cerr << "solve failed: " << solved.status.ToString() << "\n";
    return 1;
  }
  std::cout << "?- suffix(cgt). => " << solved.answers.size()
            << " answer(s), " << solved.stats.derived_facts
            << " facts derived on demand (vs " << outcome.stats.facts
            << " in the full model)\n";
  if (solved.answers.empty()) {
    std::cerr << "expected suffix(cgt) to hold\n";
    return 1;
  }

  // Prepared queries: parse + adorn + rewrite + compile ONCE, execute
  // many times with different constants — the right shape for point
  // lookups served over and over. Snapshots freeze the facts so readers
  // are isolated from (and can run concurrently with) later AddFacts.
  seqlog::Result<seqlog::PreparedQuery> prepared =
      engine.Prepare("?- suffix($1).");
  if (!prepared.ok()) {
    std::cerr << "prepare failed: " << prepared.status().ToString() << "\n";
    return 1;
  }
  seqlog::Snapshot snapshot = engine.PublishSnapshot();
  for (const char* probe : {"cgt", "gg", "tgg", "acgt"}) {
    if (!prepared->Bind(1, probe).ok()) return 1;
    seqlog::ResultSet rs = prepared->Execute(snapshot);
    if (!rs.ok()) {
      std::cerr << "execute failed: " << rs.status().ToString() << "\n";
      return 1;
    }
    std::cout << "prepared suffix(\"" << probe << "\") => "
              << (rs.empty() ? "no" : "yes") << " ("
              << rs.stats().derived_facts << " facts derived)\n";
  }
  seqlog::PreparedQueryStats pq_stats = prepared->stats();
  std::cout << "prepared once, executed " << pq_stats.executions
            << "x: " << pq_stats.goal_parses << " parse, "
            << pq_stats.magic_rewrites << " rewrite\n";
  if (pq_stats.goal_parses != 1 || pq_stats.magic_rewrites != 1) {
    std::cerr << "prepared path re-parsed or re-rewrote!\n";
    return 1;
  }
  return 0;
}
