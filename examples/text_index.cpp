// seqlog example: text databases — the paper's second motivating domain.
// Every contiguous substring of every document is already in the
// extended active domain, so substring queries are plain Sequence
// Datalog over indexed terms: occurrences, sharing across documents, and
// a minimum-length filter expressed with definedness of indexing.
#include <iostream>

#include "core/engine.h"

int main() {
  seqlog::Engine engine;
  seqlog::Status status = engine.LoadProgram(R"(
    % W occurs in document D (W ranges over the extended active domain).
    occurs(W, D) :- doc(D), W = D[I:J].
    % W is shared by two distinct documents.
    shared(W) :- occurs(W, D1), occurs(W, D2), D1 != D2.
    % Shared and at least 4 symbols long: W[4] is defined iff len(W) >= 4.
    shared4(W) :- shared(W), W[4] = W[4:4].
    % The documents in which each long shared string occurs.
    hit(W, D) :- shared4(W), occurs(W, D).
  )");
  if (!status.ok()) {
    std::cerr << status.ToString() << "\n";
    return 1;
  }

  engine.AddFact("doc", {"thequickbrownfox"});
  engine.AddFact("doc", {"quickbrowncow"});
  engine.AddFact("doc", {"slowbrownfox"});

  seqlog::eval::EvalOutcome outcome = engine.Evaluate();
  if (!outcome.status.ok()) {
    std::cerr << outcome.status.ToString() << "\n";
    return 1;
  }
  std::cout << "facts=" << outcome.stats.facts
            << " domain=" << outcome.stats.domain_sequences << "\n\n";

  auto rows = engine.Query("shared4");
  if (!rows.ok()) return 1;
  // Print only the longest shared strings (the maximal ones are what a
  // text search cares about).
  size_t longest = 0;
  for (const auto& row : rows.value()) {
    longest = std::max(longest, row[0].size());
  }
  std::cout << "longest shared substrings (" << rows->size()
            << " shared of length >= 4):\n";
  for (const auto& row : rows.value()) {
    if (row[0].size() + 2 < longest) continue;
    std::cout << "  \"" << row[0] << "\"\n";
  }

  // Point lookups, prepared once: which documents contain a given shared
  // string? The goal is parameterized ($1) — rebinding swaps only the
  // magic seed fact, and each Execute runs against a frozen snapshot
  // using the cursor API (rows rendered on demand, not eagerly).
  auto hits = engine.Prepare("?- hit($1, D).");
  if (!hits.ok()) {
    std::cerr << hits.status().ToString() << "\n";
    return 1;
  }
  seqlog::Snapshot snapshot = engine.PublishSnapshot();
  std::cout << "\npoint lookups (prepared goal hit($1, D)):\n";
  for (const char* probe : {"quickbrown", "brown", "ownfox"}) {
    if (!hits->Bind(1, probe).ok()) return 1;
    seqlog::ResultSet rs = hits->Execute(snapshot);
    if (!rs.ok()) {
      std::cerr << rs.status().ToString() << "\n";
      return 1;
    }
    std::cout << "  \"" << probe << "\" in " << rs.size()
              << " document(s):";
    for (seqlog::Row row : rs) {
      std::cout << " \"" << row.value(1).Render() << "\"";
    }
    std::cout << "\n";
  }
  auto stats = hits->stats();
  std::cout << "(prepared once: " << stats.goal_parses << " parse / "
            << stats.magic_rewrites << " rewrite, " << stats.executions
            << " executions)\n";
  return 0;
}
