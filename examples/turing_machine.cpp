// seqlog example: the two machine-simulation constructions of the paper.
//
//  1. Theorem 1: compile a Turing machine into a Sequence Datalog
//     program whose least fixpoint contains the machine's output.
//  2. Theorem 5: run the same machine on an order-2 transducer network
//     (init -> squared counter -> step driver -> decode).
#include <iostream>

#include "core/engine.h"
#include "tm/machines.h"
#include "tm/tm_network.h"
#include "translate/tm_to_sd.h"

int main() {
  seqlog::Engine engine;
  seqlog::tm::TuringMachine machine =
      seqlog::tm::MakeUnaryDouble(engine.symbols());
  std::cout << "machine: " << machine.name << " (1^n -> 1^2n, quadratic"
            << " time)\n\n";

  // --- Theorem 1: TM -> Sequence Datalog --------------------------------
  auto program = seqlog::translate::TmToSequenceDatalog(
      machine, engine.pool(), "input", "output");
  if (!program.ok()) {
    std::cerr << program.status().ToString() << "\n";
    return 1;
  }
  std::cout << "Theorem 1 simulation program ("
            << program->clauses.size() << " clauses):\n"
            << seqlog::ast::ToString(program.value(), *engine.pool(),
                                     *engine.symbols())
            << "\n";

  if (!engine.LoadProgramAst(program.value()).ok()) return 1;
  if (!engine.AddFact("input", {"1111"}).ok()) return 1;
  seqlog::eval::EvalOutcome outcome = engine.Evaluate();
  if (!outcome.status.ok()) {
    std::cerr << outcome.status.ToString() << "\n";
    return 1;
  }
  auto rows = engine.Query("output");
  if (!rows.ok()) return 1;
  std::cout << "input 1111 -> Sequence Datalog output:";
  for (const auto& row : rows.value()) {
    std::string cleaned = row[0];
    while (!cleaned.empty() && cleaned.back() == '_') cleaned.pop_back();
    std::cout << " " << cleaned;
  }
  std::cout << "\n  (" << outcome.stats.iterations << " iterations, "
            << outcome.stats.facts << " facts — one conf fact per machine"
            << " configuration)\n\n";

  // --- Theorem 5: TM -> order-2 transducer network ----------------------
  auto network = seqlog::tm::MakeTmNetwork(machine, "udouble_net",
                                           /*squarings=*/2);
  if (!network.ok()) {
    std::cerr << network.status().ToString() << "\n";
    return 1;
  }
  std::cout << "Theorem 5 network: order " << (*network)->Order()
            << ", diameter " << (*network)->Diameter() << "\n";
  for (size_t n : {3u, 4u, 5u, 6u}) {
    std::string in(n, '1');
    seqlog::SeqId in_id =
        engine.pool()->FromChars(in, engine.symbols());
    seqlog::transducer::RunStats stats;
    auto out = (*network)->Run(std::vector<seqlog::SeqId>{in_id},
                               engine.pool(), &stats);
    if (!out.ok()) {
      std::cerr << out.status().ToString() << "\n";
      return 1;
    }
    std::cout << "  1^" << n << " -> "
              << engine.pool()->Render(out.value(), *engine.symbols())
              << "   (network steps: " << stats.total_steps << ")\n";
  }
  return 0;
}
