# Third-party test/bench dependencies: prefer the system packages (the CI
# image ships gtest and google-benchmark), fall back to FetchContent so a
# clean machine can still configure without any preinstalled libraries.
include(FetchContent)

function(seqlog_require_gtest)
  if(TARGET GTest::gtest_main)
    return()
  endif()
  find_package(GTest QUIET)
  # FindGTest can report found from libgtest alone; require the gtest_main
  # target too, otherwise fall back to FetchContent.
  if(GTest_FOUND AND TARGET GTest::gtest_main)
    message(STATUS "seqlog: using system GoogleTest")
    return()
  endif()
  message(STATUS "seqlog: system GoogleTest not found, fetching v1.14.0")
  set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
  set(BUILD_GMOCK OFF CACHE BOOL "" FORCE)
  FetchContent_Declare(googletest
    URL https://github.com/google/googletest/archive/refs/tags/v1.14.0.tar.gz
    URL_HASH SHA256=8ad598c73ad796e0d8280b082cebd82a630d73e73cd3c70057938a6501bba5d7)
  FetchContent_MakeAvailable(googletest)
endfunction()

function(seqlog_require_benchmark)
  if(TARGET benchmark::benchmark)
    return()
  endif()
  find_package(benchmark QUIET)
  if(benchmark_FOUND)
    message(STATUS "seqlog: using system google-benchmark")
    return()
  endif()
  message(STATUS "seqlog: system google-benchmark not found, fetching v1.8.3")
  set(BENCHMARK_ENABLE_TESTING OFF CACHE BOOL "" FORCE)
  set(BENCHMARK_ENABLE_INSTALL OFF CACHE BOOL "" FORCE)
  set(BENCHMARK_ENABLE_GTEST_TESTS OFF CACHE BOOL "" FORCE)
  FetchContent_Declare(googlebenchmark
    URL https://github.com/google/benchmark/archive/refs/tags/v1.8.3.tar.gz
    URL_HASH SHA256=6bc180a57d23d4d9515519f92b0c83d61b05b5bab188961f36ac7b06b0d9e9ce)
  FetchContent_MakeAvailable(googlebenchmark)
endfunction()
