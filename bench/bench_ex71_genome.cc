// EX71: Example 7.1/7.2 — the DNA -> RNA -> protein pipeline, run three
// ways: (a) machines alone, (b) Transducer Datalog (machines called from
// rules), (c) the hand-written Sequence Datalog simulation of
// transcription (Example 7.2). The shapes to reproduce: all agree on
// answers; (c) pays for materialising every transcription prefix.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/engine.h"
#include "core/programs.h"
#include "transducer/genome.h"

namespace {

using namespace seqlog;

void RegisterGenomeMachines(Engine* engine) {
  auto transcribe =
      transducer::MakeTranscribe("transcribe", engine->symbols());
  auto translate =
      transducer::MakeTranslate("translate", engine->symbols());
  if (!transcribe.ok() || !translate.ok()) std::abort();
  if (!engine->RegisterTransducer(transcribe.value()).ok()) std::abort();
  if (!engine->RegisterTransducer(translate.value()).ok()) std::abort();
}

void PrintTable() {
  bench::Banner("EX71", "DNA -> RNA -> protein (Examples 7.1 / 7.2)");
  std::printf("%-8s %-14s %-14s %-20s\n", "seq len",
              "TD millis", "TD facts", "Ex7.2 SD millis/facts");
  for (size_t len : {8u, 16u, 32u, 64u}) {
    std::vector<std::string> dna = bench::RandomDna(11, 4, len);

    Engine td;
    RegisterGenomeMachines(&td);
    if (!td.LoadProgram(programs::kGenomePipeline).ok()) std::abort();
    for (const auto& d : dna) td.AddFact("dnaseq", {d});
    eval::EvalOutcome td_out = td.Evaluate();
    if (!td_out.status.ok()) std::abort();

    Engine sd;
    if (!sd.LoadProgram(programs::kTranscribeSimulation).ok()) std::abort();
    for (const auto& d : dna) sd.AddFact("dnaseq", {d});
    eval::EvalOutcome sd_out = sd.Evaluate();
    if (!sd_out.status.ok()) std::abort();

    // Both agree on the transcription results.
    auto td_rows = td.Query("rnaseq");
    auto sd_rows = sd.Query("rnaseq");
    if (!td_rows.ok() || !sd_rows.ok() ||
        td_rows.value() != sd_rows.value()) {
      std::printf("MISMATCH between Example 7.1 and 7.2 results!\n");
      std::abort();
    }

    std::printf("%-8zu %-14.2f %-14zu %.2f / %zu\n", len,
                td_out.stats.millis, td_out.stats.facts,
                sd_out.stats.millis, sd_out.stats.facts);
  }
  std::printf("(the Example 7.2 simulation derives every transcription"
              " prefix, hence more facts — the paper's Theorem 7"
              " finiteness argument in action)\n");
}

void BM_GenomePipelineTd(benchmark::State& state) {
  size_t len = static_cast<size_t>(state.range(0));
  std::vector<std::string> dna = bench::RandomDna(12, 4, len);
  for (auto _ : state) {
    Engine engine;
    RegisterGenomeMachines(&engine);
    if (!engine.LoadProgram(programs::kGenomePipeline).ok()) std::abort();
    for (const auto& d : dna) engine.AddFact("dnaseq", {d});
    eval::EvalOutcome outcome = engine.Evaluate();
    benchmark::DoNotOptimize(outcome.stats.facts);
  }
}
BENCHMARK(BM_GenomePipelineTd)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);

void BM_TranscribeMachineOnly(benchmark::State& state) {
  SymbolTable symbols;
  SequencePool pool;
  auto transcribe = transducer::MakeTranscribe("t", &symbols).value();
  std::string dna = bench::RandomDna(13, 1,
                                     static_cast<size_t>(state.range(0)))[0];
  SeqId id = pool.FromChars(dna, &symbols);
  for (auto _ : state) {
    auto out = transcribe->Apply(std::vector<SeqId>{id}, &pool);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_TranscribeMachineOnly)->Arg(64)->Arg(1024)->Arg(16384);

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
