// THM6: Theorem 6 — acyclic transducer networks of order 3 express
// exactly the elementary sequence functions. The construction replaces
// Theorem 5's polynomial counter with a hyperexponential one (a series
// of order-3 double-exponentiation stages). Reproduced here with a
// genuinely exponential-time machine (binary count-up, Theta(n 2^n)
// steps): the order-3 network drives it to completion where the
// order-2 (polynomially-countered) network runs out of fuel.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "tm/machines.h"
#include "tm/tm_network.h"
#include "tm/turing.h"
#include "transducer/library.h"

namespace {

using namespace seqlog;

void PrintTable() {
  bench::Banner("THM6",
                "order-3 networks drive elementary-time machines "
                "(Theorem 6)");
  SymbolTable symbols;
  SequencePool pool;
  tm::TuringMachine m = tm::MakeBinaryCountUp(&symbols);

  std::printf("the workload is exponential-time (binary count-up on "
              "0^n):\n");
  std::printf("%-6s %-12s %-10s\n", "n", "TM steps", "steps/prev");
  size_t prev = 0;
  for (size_t n = 2; n <= 8; ++n) {
    SeqId in = pool.FromChars(std::string(n, '0'), &symbols);
    auto run = tm::RunMachine(m, pool.View(in), 1u << 22);
    if (!run.ok()) std::abort();
    std::printf("%-6zu %-12zu %-10.2f\n", n, run->steps,
                prev == 0 ? 0.0
                          : static_cast<double>(run->steps) /
                                static_cast<double>(prev));
    prev = run->steps;
  }
  std::printf("(ratio -> 2: the machine is Theta(n 2^n))\n\n");

  std::printf("one order-3 counter stage (Theorem 4 lower bound):\n");
  std::printf("%-6s %-12s %-12s\n", "n", "|counter|", "2^2^n");
  auto stage = transducer::MakeDoubleExp("counter");
  if (!stage.ok()) std::abort();
  for (size_t n = 1; n <= 3; ++n) {
    SeqId in = pool.FromChars(std::string(n, 'c'), &symbols);
    auto out = (*stage)->Apply(std::vector<SeqId>{in}, &pool);
    if (!out.ok()) std::abort();
    std::printf("%-6zu %-12zu %-12.0f\n", n, pool.Length(out.value()),
                std::pow(2.0, std::pow(2.0, static_cast<double>(n))));
  }
  std::printf("\nend-to-end on 0^2 (order-3 vs order-2 network):\n");
  std::printf("%-22s %-8s %-10s %s\n", "network", "order", "output",
              "verdict");
  {
    auto net3 = tm::MakeElementaryTmNetwork(m, "net3", 1);
    if (!net3.ok()) std::abort();
    SeqId in = pool.FromChars("00", &symbols);
    auto out = (*net3)->Apply(std::vector<SeqId>{in}, &pool);
    if (!out.ok()) std::abort();
    std::string rendered = pool.Render(out.value(), symbols);
    std::printf("%-22s %-8d %-10s %s\n", "hyperexp counter", 3,
                rendered.c_str(),
                rendered == "11" ? "completes (Thm 6)" : "WRONG");
  }
  {
    auto net2 = tm::MakeTmNetwork(m, "net2", 1);
    if (!net2.ok()) std::abort();
    SeqId in = pool.FromChars("0000", &symbols);
    auto out = (*net2)->Apply(std::vector<SeqId>{in}, &pool);
    if (!out.ok()) std::abort();
    std::string rendered = pool.Render(out.value(), symbols);
    std::printf("%-22s %-8d %-10s %s\n", "n^2 counter, 0^4", 2,
                rendered.c_str(),
                rendered == "1111" ? "UNEXPECTED"
                                   : "truncated (needs Thm 6)");
  }
  std::printf("(n is kept tiny: each driver step re-consumes the whole "
              "counter, so work is\n Theta(|counter|^2) — at n=3 the "
              "counter is already 21609 symbols)\n");
}

void BM_ElementaryNetworkN2(benchmark::State& state) {
  SymbolTable symbols;
  SequencePool pool;
  tm::TuringMachine m = tm::MakeBinaryCountUp(&symbols);
  auto net = tm::MakeElementaryTmNetwork(m, "net", 1);
  if (!net.ok()) std::abort();
  SeqId in = pool.FromChars("00", &symbols);
  for (auto _ : state) {
    auto out = (*net)->Apply(std::vector<SeqId>{in}, &pool);
    if (!out.ok()) std::abort();
    benchmark::DoNotOptimize(out.value());
  }
}
BENCHMARK(BM_ElementaryNetworkN2);

void BM_DirectCountUp(benchmark::State& state) {
  SymbolTable symbols;
  SequencePool pool;
  tm::TuringMachine m = tm::MakeBinaryCountUp(&symbols);
  SeqId in = pool.FromChars(
      std::string(static_cast<size_t>(state.range(0)), '0'), &symbols);
  for (auto _ : state) {
    auto run = tm::RunMachine(m, pool.View(in), 1u << 22);
    if (!run.ok()) std::abort();
    benchmark::DoNotOptimize(run->steps);
  }
}
BENCHMARK(BM_DirectCountUp)->Arg(4)->Arg(8)->Arg(12);

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
