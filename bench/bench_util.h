// seqlog benchmarks: shared workload generators and table printing.
//
// Every bench binary reproduces one figure/example/theorem of the paper
// (see DESIGN.md's per-experiment index): it first prints the
// reproduction table — the rows/series the paper reports, regenerated —
// and then runs google-benchmark timings.
#ifndef SEQLOG_BENCH_BENCH_UTIL_H_
#define SEQLOG_BENCH_BENCH_UTIL_H_

#include <cmath>
#include <cstdio>
#include <random>
#include <string>
#include <vector>

namespace seqlog {
namespace bench {

/// Deterministic random sequences over `alphabet`.
inline std::vector<std::string> RandomSequences(unsigned seed, size_t count,
                                                size_t len,
                                                std::string_view alphabet) {
  std::mt19937 rng(seed);
  std::vector<std::string> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    std::string s;
    s.reserve(len);
    for (size_t j = 0; j < len; ++j) {
      s += alphabet[rng() % alphabet.size()];
    }
    out.push_back(std::move(s));
  }
  return out;
}

/// Synthetic DNA (the paper has no datasets; genome databases are its
/// motivating example, so we generate uniform random nucleotides).
inline std::vector<std::string> RandomDna(unsigned seed, size_t count,
                                          size_t len) {
  return RandomSequences(seed, count, len, "acgt");
}

/// Least-squares slope of log(y) vs log(x): the growth exponent of a
/// polynomial relationship (used to check PTIME claims empirically).
inline double FittedExponent(const std::vector<double>& xs,
                             const std::vector<double>& ys) {
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  size_t n = xs.size();
  for (size_t i = 0; i < n; ++i) {
    double lx = std::log(xs[i]);
    double ly = std::log(ys[i] > 0 ? ys[i] : 1e-9);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  double denom = n * sxx - sx * sx;
  return denom == 0 ? 0 : (n * sxy - sx * sy) / denom;
}

/// Section header for the reproduction tables.
inline void Banner(const char* experiment_id, const char* title) {
  std::printf("\n==== %s: %s ====\n", experiment_id, title);
}

}  // namespace bench
}  // namespace seqlog

#endif  // SEQLOG_BENCH_BENCH_UTIL_H_
