// PREPARED: per-call latency of PreparedQuery::Execute versus cold
// Engine::Solve on the point-query workloads of bench_magic_vs_fixpoint
// (suffix membership and genome point lookup).
//
// Cold Solve pays parse + adorn + magic rewrite + safety recheck + plan
// compilation on EVERY call; the prepared path pays them once and then
// only swaps the magic seed fact per call. The reproduction table
// reports mean microseconds per call for both paths and their ratio;
// answers are cross-checked call by call, and the prepared counters are
// asserted to stay at one parse / one rewrite.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>

#include "bench_util.h"
#include "core/engine.h"
#include "core/programs.h"
#include "transducer/genome.h"

namespace {

using namespace seqlog;

void RegisterGenomeMachines(Engine* engine) {
  auto transcribe =
      transducer::MakeTranscribe("transcribe", engine->symbols());
  auto translate =
      transducer::MakeTranslate("translate", engine->symbols());
  if (!transcribe.ok() || !translate.ok()) std::abort();
  if (!engine->RegisterTransducer(transcribe.value()).ok()) std::abort();
  if (!engine->RegisterTransducer(translate.value()).ok()) std::abort();
}

struct Workload {
  const char* name;
  const char* program;
  bool genome;
  const char* fact_pred;
  std::string goal_param;   // parameterized goal for Prepare
  std::string goal_prefix;  // cold goal: prefix + probe + suffix
  std::string goal_suffix;
};

/// Mean micros per call over `calls` invocations of `fn`.
template <typename Fn>
double MeanMicros(size_t calls, Fn&& fn) {
  auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < calls; ++i) fn(i);
  auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(stop - start).count() /
         static_cast<double>(calls);
}

void PrintTable() {
  bench::Banner("PREPARED",
                "PreparedQuery::Execute vs cold Engine::Solve (per call)");
  std::printf("%-26s %-8s %-12s %-14s %-8s\n", "workload", "db seqs",
              "cold us/call", "prepared us/call", "speedup");

  const Workload workloads[] = {
      {"suffix membership", programs::kSuffixes, false, "r",
       "?- suffix($1).", "?- suffix(", ")."},
      {"genome point lookup", programs::kGenomePipeline, true, "dnaseq",
       "?- rnaseq($1, X).", "?- rnaseq(", ", X)."},
  };

  for (const Workload& w : workloads) {
    for (size_t n : {16u, 64u, 256u}) {
      std::vector<std::string> dna =
          bench::RandomDna(7, n, w.genome ? 24 : 32);
      std::vector<std::string> probes;
      for (size_t i = 0; i < dna.size(); ++i) {
        probes.push_back(w.genome ? dna[i]
                                  : dna[i].substr(dna[i].size() - 6));
      }

      Engine engine;
      if (w.genome) RegisterGenomeMachines(&engine);
      if (!engine.LoadProgram(w.program).ok()) std::abort();
      for (const auto& d : dna) engine.AddFact(w.fact_pred, {d});

      const size_t calls = 50;
      double cold_us = MeanMicros(calls, [&](size_t i) {
        SolveOutcome solved =
            engine.Solve(w.goal_prefix + probes[i % probes.size()] +
                         w.goal_suffix);
        if (!solved.status.ok()) std::abort();
        benchmark::DoNotOptimize(solved.answers.size());
      });

      auto prepared = engine.Prepare(w.goal_param);
      if (!prepared.ok()) std::abort();
      Snapshot snapshot = engine.PublishSnapshot();
      double prepared_us = MeanMicros(calls, [&](size_t i) {
        if (!prepared->Bind(1, probes[i % probes.size()]).ok())
          std::abort();
        ResultSet rs = prepared->Execute(snapshot);
        if (!rs.ok()) std::abort();
        benchmark::DoNotOptimize(rs.size());
      });

      // Cross-check: same answers on both paths for every probe.
      for (const std::string& probe : probes) {
        if (!prepared->Bind(1, probe).ok()) std::abort();
        ResultSet rs = prepared->Execute(snapshot);
        SolveOutcome solved =
            engine.Solve(w.goal_prefix + probe + w.goal_suffix);
        if (!rs.ok() || !solved.status.ok() ||
            rs.Materialize() != solved.answers) {
          std::printf("MISMATCH on %s probe %s\n", w.name, probe.c_str());
          std::abort();
        }
      }
      PreparedQueryStats stats = prepared->stats();
      if (stats.goal_parses != 1 || stats.magic_rewrites != 1) {
        std::printf("PREPARED PATH RE-PARSED/RE-REWROTE\n");
        std::abort();
      }

      std::printf("%-26s %-8zu %-12.1f %-14.1f %.2fx\n", w.name, n,
                  cold_us, prepared_us, cold_us / prepared_us);
    }
  }
  std::printf("(speedup = cold/prepared; the prepared path must win on\n"
              " both workloads — it skips parse/adorn/rewrite/compile)\n");
}

void BM_ColdSolveSuffix(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<std::string> dna = bench::RandomDna(9, n, 32);
  std::string goal = "?- suffix(" + dna[0].substr(dna[0].size() - 6) + ").";
  Engine engine;
  if (!engine.LoadProgram(programs::kSuffixes).ok()) std::abort();
  for (const auto& d : dna) engine.AddFact("r", {d});
  for (auto _ : state) {
    SolveOutcome solved = engine.Solve(goal);
    if (!solved.status.ok()) std::abort();
    benchmark::DoNotOptimize(solved.answers.size());
  }
}
BENCHMARK(BM_ColdSolveSuffix)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMicrosecond);

void BM_PreparedExecuteSuffix(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<std::string> dna = bench::RandomDna(9, n, 32);
  std::string probe = dna[0].substr(dna[0].size() - 6);
  Engine engine;
  if (!engine.LoadProgram(programs::kSuffixes).ok()) std::abort();
  for (const auto& d : dna) engine.AddFact("r", {d});
  auto prepared = engine.Prepare("?- suffix($1).");
  if (!prepared.ok()) std::abort();
  if (!prepared->Bind(1, probe).ok()) std::abort();
  Snapshot snapshot = engine.PublishSnapshot();
  for (auto _ : state) {
    ResultSet rs = prepared->Execute(snapshot);
    if (!rs.ok()) std::abort();
    benchmark::DoNotOptimize(rs.size());
  }
}
BENCHMARK(BM_PreparedExecuteSuffix)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMicrosecond);

void BM_ColdSolveGenome(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<std::string> dna = bench::RandomDna(10, n, 24);
  std::string goal = "?- rnaseq(" + dna[n / 2] + ", X).";
  Engine engine;
  RegisterGenomeMachines(&engine);
  if (!engine.LoadProgram(programs::kGenomePipeline).ok()) std::abort();
  for (const auto& d : dna) engine.AddFact("dnaseq", {d});
  for (auto _ : state) {
    SolveOutcome solved = engine.Solve(goal);
    if (!solved.status.ok()) std::abort();
    benchmark::DoNotOptimize(solved.answers.size());
  }
}
BENCHMARK(BM_ColdSolveGenome)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMicrosecond);

void BM_PreparedExecuteGenome(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<std::string> dna = bench::RandomDna(10, n, 24);
  Engine engine;
  RegisterGenomeMachines(&engine);
  if (!engine.LoadProgram(programs::kGenomePipeline).ok()) std::abort();
  for (const auto& d : dna) engine.AddFact("dnaseq", {d});
  auto prepared = engine.Prepare("?- rnaseq($1, X).");
  if (!prepared.ok()) std::abort();
  if (!prepared->Bind(1, dna[n / 2]).ok()) std::abort();
  Snapshot snapshot = engine.PublishSnapshot();
  for (auto _ : state) {
    ResultSet rs = prepared->Execute(snapshot);
    if (!rs.ok()) std::abort();
    benchmark::DoNotOptimize(rs.size());
  }
}
BENCHMARK(BM_PreparedExecuteGenome)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
