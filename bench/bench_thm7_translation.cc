// THM7: Theorem 7 — Transducer Datalog and Sequence Datalog are
// expressively equivalent, and the translation preserves finiteness. The
// reproduction table runs three Transducer Datalog workloads directly
// (machines interpreted) and through the generated Sequence Datalog
// simulation: identical answers, finite (but larger) models, higher cost
// — the simulation materialises every partial machine computation.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/engine.h"
#include "translate/td_to_sd.h"
#include "transducer/genome.h"
#include "transducer/library.h"

namespace {

using namespace seqlog;

std::vector<Symbol> CharAlphabet(SymbolTable* symbols,
                                 std::string_view chars) {
  std::vector<Symbol> out;
  for (char c : chars) {
    out.push_back(symbols->Intern(std::string_view(&c, 1)));
  }
  return out;
}

struct RunResult {
  eval::EvalStats stats;
  std::vector<RenderedRow> rows;
};

void PrintTable() {
  bench::Banner("THM7",
                "Transducer Datalog == Sequence Datalog (Theorem 7)");
  std::printf("%-12s %-7s %-22s %-22s %s\n", "workload", "len",
              "direct (facts/ms)", "translated (facts/ms)", "answers equal");

  struct Workload {
    const char* name;
    const char* program;
    const char* alphabet;
    const char* query;
  } workloads[] = {
      {"transcribe", "rna(D, @transcribe(D)) :- dna(D).\n", "acgt", "rna"},
      {"append", "cat(@append(X, X)) :- dna(X).\n", "acgt", "cat"},
      {"reverse", "bwd(@rev(X)) :- dna(X).\n", "acgt", "bwd"},
  };

  for (const auto& w : workloads) {
    for (size_t len : {2u, 4u, 6u}) {
      Engine engine;
      auto transcribe =
          transducer::MakeTranscribe("transcribe", engine.symbols());
      auto append = transducer::MakeAppend("append", 2);
      auto rev = transducer::MakeReverse(
          "rev", CharAlphabet(engine.symbols(), "acgt"));
      if (!engine.RegisterTransducer(transcribe.value()).ok()) std::abort();
      if (!engine.RegisterTransducer(append.value()).ok()) std::abort();
      if (!engine.RegisterTransducer(rev.value()).ok()) std::abort();
      if (!engine.LoadProgram(w.program).ok()) std::abort();
      for (const std::string& d : bench::RandomDna(23, 2, len)) {
        engine.AddFact("dna", {d});
      }
      eval::EvalOutcome direct = engine.Evaluate();
      if (!direct.status.ok()) std::abort();
      auto direct_rows = engine.Query(w.query).value();

      translate::TdToSdOptions options;
      options.alphabet = CharAlphabet(engine.symbols(), w.alphabet);
      auto sd = translate::TransducerDatalogToSequenceDatalog(
          engine.program(), *engine.registry(), engine.symbols(),
          engine.pool(), options);
      if (!sd.ok()) std::abort();
      if (!engine.LoadProgramAst(sd.value()).ok()) std::abort();
      eval::EvalOptions eval_options;
      eval_options.limits.max_iterations = 1000000;
      eval::EvalOutcome translated = engine.Evaluate(eval_options);
      if (!translated.status.ok()) std::abort();
      auto translated_rows = engine.Query(w.query).value();

      bool equal = direct_rows == translated_rows;
      std::printf("%-12s %-7zu %7zu / %-12.2f %7zu / %-12.2f %s\n",
                  w.name, len, direct.stats.facts, direct.stats.millis,
                  translated.stats.facts, translated.stats.millis,
                  equal ? "yes" : "NO");
      if (!equal) std::abort();
    }
  }
  std::printf("(finiteness preserved: both sides terminate; the"
              " simulation's model is larger by the intermediate"
              " comp_T computations)\n");
}

void BM_TranslatedTranscribe(benchmark::State& state) {
  size_t len = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    Engine engine;
    auto transcribe =
        transducer::MakeTranscribe("transcribe", engine.symbols());
    if (!engine.RegisterTransducer(transcribe.value()).ok()) std::abort();
    if (!engine.LoadProgram("rna(D, @transcribe(D)) :- dna(D).\n").ok()) {
      std::abort();
    }
    for (const std::string& d : bench::RandomDna(29, 2, len)) {
      engine.AddFact("dna", {d});
    }
    translate::TdToSdOptions options;
    options.alphabet = CharAlphabet(engine.symbols(), "acgt");
    auto sd = translate::TransducerDatalogToSequenceDatalog(
        engine.program(), *engine.registry(), engine.symbols(),
        engine.pool(), options);
    if (!engine.LoadProgramAst(sd.value()).ok()) std::abort();
    eval::EvalOutcome outcome = engine.Evaluate();
    benchmark::DoNotOptimize(outcome.stats.facts);
  }
}
BENCHMARK(BM_TranslatedTranscribe)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
