// FIG2: regenerates Figure 2 of the paper — the step-by-step computation
// of T_square (Example 6.1) on input "abc": at every step the machine
// consumes one input symbol and calls the append subtransducer, whose
// output (one more copy of the input) overwrites the output tape.
// The timed series then verifies |out| = n^2 across input sizes.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "sequence/sequence_pool.h"
#include "transducer/library.h"

namespace {

using namespace seqlog;

void PrintFigure2() {
  bench::Banner("FIG2", "squaring the input (paper Figure 2)");
  SymbolTable symbols;
  SequencePool pool;
  auto square = transducer::MakeSquare("Tsquare").value();
  SeqId input = pool.FromChars("abc", &symbols);
  transducer::RunStats stats;
  std::vector<transducer::TraceRow> trace;
  auto out = square->Run(std::vector<SeqId>{input}, &pool, &stats, &trace);
  std::printf("%-5s %-7s %-10s %-22s %s\n", "step", "input", "output",
              "operation", "new output");
  for (const auto& row : trace) {
    std::string before =
        pool.Render(pool.Intern(row.output_before), symbols);
    std::string after = pool.Render(pool.Intern(row.output_after), symbols);
    std::printf("%-5zu %-7zu %-10s %-22s %s\n", row.step,
                row.head_positions[0] + 1,
                before.empty() ? "(empty)" : before.c_str(),
                row.operation.c_str(), after.c_str());
  }
  std::printf("final output: %s  (|out| = %zu = 3^2)\n",
              pool.Render(out.value(), symbols).c_str(),
              pool.Length(out.value()));
  std::printf("top-level steps: %zu, total steps incl. subtransducer: %zu,"
              " calls: %zu\n",
              stats.top_steps, stats.total_steps, stats.calls);

  // The quadratic-output series (Theorem 4 order-2 lower bound).
  std::printf("\n%-6s %-10s %-12s %s\n", "n", "|out|", "n^2", "total steps");
  for (size_t n : {4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
    std::string in(n, 'a');
    SeqId in_id = pool.FromChars(in, &symbols);
    transducer::RunStats s;
    auto o = square->Run(std::vector<SeqId>{in_id}, &pool, &s, nullptr);
    std::printf("%-6zu %-10zu %-12zu %zu\n", n, pool.Length(o.value()),
                n * n, s.total_steps);
  }
}

void BM_SquareTransducer(benchmark::State& state) {
  SymbolTable symbols;
  SequencePool pool;
  auto square = transducer::MakeSquare("Tsquare").value();
  size_t n = static_cast<size_t>(state.range(0));
  SeqId input = pool.FromChars(std::string(n, 'a'), &symbols);
  for (auto _ : state) {
    transducer::RunStats stats;
    auto out = square->Run(std::vector<SeqId>{input}, &pool, &stats);
    benchmark::DoNotOptimize(out);
  }
  state.counters["output_len"] = static_cast<double>(n * n);
}
BENCHMARK(BM_SquareTransducer)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

}  // namespace

int main(int argc, char** argv) {
  PrintFigure2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
