// THM3: Theorem 3 — Non-constructive Sequence Datalog has data
// complexity complete for PTIME. Empirically: evaluation time and model
// size grow polynomially in database size (the fitted log-log exponent
// stays a small constant as the database scales).
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/engine.h"
#include "core/programs.h"

namespace {

using namespace seqlog;

eval::EvalOutcome RunAbcN(size_t count, size_t len) {
  Engine engine;
  if (!engine.LoadProgram(programs::kAbcN).ok()) std::abort();
  for (const std::string& seq :
       bench::RandomSequences(17, count, len, "abc")) {
    engine.AddFact("r", {seq});
  }
  // One guaranteed member of the language.
  size_t n = len / 3;
  engine.AddFact("r", {std::string(n, 'a') + std::string(n, 'b') +
                       std::string(n, 'c')});
  eval::EvalOutcome outcome = engine.Evaluate();
  if (!outcome.status.ok()) std::abort();
  return outcome;
}

void PrintTable() {
  bench::Banner(
      "THM3", "non-constructive programs are PTIME (Theorem 3)");
  std::printf("scaling the number of database sequences (length 9):\n");
  std::printf("%-8s %-10s %-10s %s\n", "|db|", "facts", "domain",
              "millis");
  std::vector<double> xs;
  std::vector<double> fact_ys;
  std::vector<double> time_ys;
  for (size_t count : {2u, 4u, 8u, 16u, 32u}) {
    eval::EvalOutcome outcome = RunAbcN(count, 9);
    std::printf("%-8zu %-10zu %-10zu %.2f\n", count, outcome.stats.facts,
                outcome.stats.domain_sequences, outcome.stats.millis);
    xs.push_back(static_cast<double>(count));
    fact_ys.push_back(static_cast<double>(outcome.stats.facts));
    time_ys.push_back(outcome.stats.millis + 0.01);
  }
  std::printf("fitted exponents: facts ~ db^%.2f, time ~ db^%.2f"
              "  (polynomial, as Theorem 3 requires)\n\n",
              bench::FittedExponent(xs, fact_ys),
              bench::FittedExponent(xs, time_ys));

  std::printf("scaling sequence length (4 sequences):\n");
  std::printf("%-8s %-10s %-10s %s\n", "len", "facts", "domain",
              "millis");
  xs.clear();
  fact_ys.clear();
  for (size_t len : {6u, 9u, 12u, 15u, 18u}) {
    eval::EvalOutcome outcome = RunAbcN(4, len);
    std::printf("%-8zu %-10zu %-10zu %.2f\n", len, outcome.stats.facts,
                outcome.stats.domain_sequences, outcome.stats.millis);
    xs.push_back(static_cast<double>(len));
    fact_ys.push_back(static_cast<double>(outcome.stats.facts));
  }
  std::printf("fitted exponent: facts ~ len^%.2f (polynomial)\n",
              bench::FittedExponent(xs, fact_ys));
}

void BM_NonConstructive(benchmark::State& state) {
  size_t count = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    eval::EvalOutcome outcome = RunAbcN(count, 9);
    benchmark::DoNotOptimize(outcome.stats.facts);
  }
}
BENCHMARK(BM_NonConstructive)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
