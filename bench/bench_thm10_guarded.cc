// THM10: Appendix B / Theorem 10 — every program has a guarded
// equivalent (dom/1 enumerates the extended active domain and guards
// every unguarded variable). The transformation preserves answers; this
// bench measures its cost: dom materialises the whole extended domain as
// facts, so the guarded program's model carries O(domain) extra atoms
// and evaluation repeats work the plain engine's native domain
// enumeration avoids. The proofs use guardedness freely *because* it is
// semantically free; this shows what it costs operationally.
#include <benchmark/benchmark.h>

#include "analysis/guarded.h"
#include "bench_util.h"
#include "core/engine.h"

namespace {

using namespace seqlog;

struct Outcome {
  size_t answer_rows = 0;
  size_t facts = 0;
  double millis = 0;
};

/// The unguarded program of the guarded_test suite: q's Y is unguarded
/// (occurs only in the head) and p's X occurs only under an index term.
constexpr char kUnguarded[] =
    "p(X[1:2]) :- r(X).\n"
    "q(Y) :- r(X), X != Y.\n";

Outcome Run(bool guarded, size_t count, size_t len) {
  Engine engine;
  ast::Program program;
  {
    Engine scratch;  // parse with a scratch engine to get the AST
    if (!scratch.LoadProgram(kUnguarded).ok()) std::abort();
    program = scratch.program();
  }
  if (guarded) {
    program = analysis::GuardedTransform(program, {{"r", 1}});
  }
  if (!engine.LoadProgramAst(program).ok()) std::abort();
  for (const std::string& s : bench::RandomDna(31, count, len)) {
    engine.AddFact("r", {s});
  }
  eval::EvalOutcome outcome = engine.Evaluate();
  if (!outcome.status.ok()) std::abort();
  Outcome out;
  out.facts = outcome.stats.facts;
  out.millis = outcome.stats.millis;
  auto rows = engine.Query("q");
  if (!rows.ok()) std::abort();
  out.answer_rows = rows->size();
  return out;
}

void PrintTable() {
  bench::Banner("THM10",
                "the guarded transformation (Appendix B) is semantically "
                "free, operationally priced");
  std::printf("%-6s %-6s | %-10s %-10s %-8s | %-10s %-10s %-8s | %s\n",
              "|db|", "len", "plain q", "facts", "ms", "guarded q",
              "facts", "ms", "agree");
  for (auto [count, len] : std::vector<std::pair<size_t, size_t>>{
           {2, 8}, {4, 8}, {4, 16}, {8, 16}}) {
    Outcome plain = Run(false, count, len);
    Outcome guarded = Run(true, count, len);
    std::printf(
        "%-6zu %-6zu | %-10zu %-10zu %-8.2f | %-10zu %-10zu %-8.2f | %s\n",
        count, len, plain.answer_rows, plain.facts, plain.millis,
        guarded.answer_rows, guarded.facts, guarded.millis,
        plain.answer_rows == guarded.answer_rows ? "yes" : "NO");
  }
  std::printf("(guarded runs carry the dom/1 relation: facts grow by the "
              "extended-domain size,\n answers are identical — "
              "Theorem 10)\n");
}

void BM_Plain(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(Run(false, 4, 12).answer_rows);
  }
}
BENCHMARK(BM_Plain)->Unit(benchmark::kMillisecond);

void BM_Guarded(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(Run(true, 4, 12).answer_rows);
  }
}
BENCHMARK(BM_Guarded)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
