// THM8: Theorem 8 — strongly safe order-2 programs have minimal models
// of size polynomial in database size (size = number of sequences in the
// extended active domain, Definition 11). The table sweeps database size
// for three strongly safe programs and fits the growth exponent.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/engine.h"
#include "transducer/library.h"

namespace {

using namespace seqlog;

struct Workload {
  const char* name;
  const char* program;
  bool needs_square;
};

const Workload kWorkloads[] = {
    // Order 0: pure structural extraction + one construction layer.
    {"pairs",
     "pre(X[1:N]) :- r(X).\n"
     "pair(X ++ Y) :- pre(X), pre(Y).\n",
     false},
    // Order 2 machine behind a non-recursive rule.
    {"square",
     "sq(@square(X)) :- r(X).\n"
     "sub(Y[I:J]) :- sq(Y).\n",
     true},
    // Two construction strata (Example 5.1 shape).
    {"double4",
     "d(X ++ X) :- r(X).\n"
     "q(X ++ X) :- d(X).\n",
     false},
};

eval::EvalOutcome RunWorkload(const Workload& w, size_t db_size,
                              size_t* domain) {
  Engine engine;
  if (w.needs_square) {
    auto square = transducer::MakeSquare("square");
    if (!engine.RegisterTransducer(square.value()).ok()) std::abort();
  }
  if (!engine.LoadProgram(w.program).ok()) std::abort();
  analysis::SafetyReport report = engine.AnalyzeSafety();
  if (!report.strongly_safe) std::abort();  // precondition of Theorem 8
  for (const std::string& seq :
       bench::RandomSequences(31, db_size, 4, "ab")) {
    engine.AddFact("r", {seq});
  }
  eval::EvalOptions options;
  options.strategy = eval::Strategy::kStratified;
  eval::EvalOutcome outcome = engine.Evaluate(options);
  if (!outcome.status.ok()) std::abort();
  *domain = outcome.stats.domain_sequences;
  return outcome;
}

void PrintTable() {
  bench::Banner("THM8",
                "strongly safe order-2: polynomial model size (Theorem 8)");
  for (const Workload& w : kWorkloads) {
    std::printf("program '%s':\n", w.name);
    std::printf("  %-8s %-12s %-12s %s\n", "|db|", "facts",
                "domain size", "millis");
    std::vector<double> xs;
    std::vector<double> ys;
    for (size_t db : {2u, 4u, 8u, 16u, 32u}) {
      size_t domain = 0;
      eval::EvalOutcome outcome = RunWorkload(w, db, &domain);
      std::printf("  %-8zu %-12zu %-12zu %.2f\n", db,
                  outcome.stats.facts, domain, outcome.stats.millis);
      xs.push_back(static_cast<double>(db));
      ys.push_back(static_cast<double>(domain));
    }
    std::printf("  fitted: domain ~ db^%.2f (Theorem 8 bound:"
                " polynomial)\n\n",
                bench::FittedExponent(xs, ys));
  }
}

void BM_StronglySafe(benchmark::State& state) {
  size_t db = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    size_t domain = 0;
    eval::EvalOutcome outcome = RunWorkload(kWorkloads[0], db, &domain);
    benchmark::DoNotOptimize(outcome.stats.facts);
  }
}
BENCHMARK(BM_StronglySafe)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
