// TC: compiled vs interpreted transducer execution (PR 10 tentpole).
// The genome pipeline transcribe -> translate runs three ways: as an
// interpreted two-node network (per-step pattern scans, a materialised
// RNA intermediate), as two individually compiled DetTransducers (dense
// tables, still materialising the intermediate), and as one fused
// deterministic machine (Network::Compile's product composition — one
// pass, no intermediate). The reproduction table prints the speedups
// and enforces the PR bar in-binary: fused must be >= 3x interpreted at
// the largest input, else the bench exits non-zero and run_benches.sh
// fails.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "sequence/sequence_pool.h"
#include "transducer/determinize.h"
#include "transducer/fuse.h"
#include "transducer/genome.h"
#include "transducer/network.h"

namespace {

using namespace seqlog;

struct Pipeline {
  SymbolTable symbols;
  SequencePool pool;
  std::vector<Symbol> dna;
  transducer::TransducerPtr transcribe;
  transducer::TransducerPtr translate;
  std::unique_ptr<transducer::TransducerNetwork> interpreted;
  std::unique_ptr<transducer::TransducerNetwork> compiled;
  std::shared_ptr<const transducer::DetTransducer> fused;
};

std::unique_ptr<transducer::TransducerNetwork> MakeNetwork(
    const Pipeline& p) {
  auto net = std::make_unique<transducer::TransducerNetwork>("rnapipe", 1);
  auto n0 =
      net->AddNode(p.transcribe, {transducer::InputSource::FromNetwork(0)});
  if (!n0.ok()) std::abort();
  auto n1 = net->AddNode(p.translate,
                         {transducer::InputSource::FromNode(n0.value())});
  if (!n1.ok()) std::abort();
  if (!net->SetOutput(n1.value()).ok()) std::abort();
  return net;
}

std::unique_ptr<Pipeline> MakePipeline() {
  auto p = std::make_unique<Pipeline>();
  for (const char* s : {"a", "c", "g", "t"}) {
    p->dna.push_back(p->symbols.Intern(s));
  }
  auto transcribe = transducer::MakeTranscribe("transcribe", &p->symbols);
  auto translate = transducer::MakeTranslate("translate", &p->symbols);
  if (!transcribe.ok() || !translate.ok()) std::abort();
  p->transcribe = transcribe.value();
  p->translate = translate.value();
  p->interpreted = MakeNetwork(*p);
  p->compiled = MakeNetwork(*p);
  transducer::NetworkCompileOptions no_fuse;
  no_fuse.enable_fusion = false;
  if (!p->compiled->Compile(p->dna, no_fuse).ok()) std::abort();
  auto fused = transducer::FuseChain(*p->transcribe, *p->translate, p->dna);
  if (!fused.ok()) std::abort();
  p->fused = fused.value();
  return p;
}

/// Mean nanoseconds per call of `fn(x)` over the whole input set,
/// repeated until ~50ms of work (min 3 reps).
template <typename Fn>
double NanosPerCall(const std::vector<SeqId>& inputs, Fn&& fn) {
  using Clock = std::chrono::steady_clock;
  size_t reps = 3;
  for (;;) {
    auto start = Clock::now();
    for (size_t r = 0; r < reps; ++r) {
      for (SeqId x : inputs) fn(x);
    }
    double nanos = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start)
            .count());
    if (nanos >= 5e7 || reps >= 1u << 14) {
      return nanos / static_cast<double>(reps * inputs.size());
    }
    reps *= 4;
  }
}

int PrintTable() {
  bench::Banner("TC", "compiled vs interpreted transducers (genome "
                      "pipeline transcribe -> translate)");
  auto p = MakePipeline();
  std::printf("%-8s %-14s %-14s %-14s %-9s %-9s\n", "len",
              "interpreted", "compiled", "fused", "comp/int", "fuse/int");
  double final_speedup = 0;
  for (size_t len : {30u, 300u, 3000u, 30000u}) {
    std::vector<SeqId> inputs;
    for (const std::string& s : bench::RandomDna(42, 32, len)) {
      inputs.push_back(p->pool.FromChars(s, &p->symbols));
    }
    auto run = [&](const SequenceFunction& fn) {
      return NanosPerCall(inputs, [&](SeqId x) {
        auto out = fn.Apply(std::span<const SeqId>(&x, 1), &p->pool);
        if (!out.ok()) std::abort();
        benchmark::DoNotOptimize(out.value());
      });
    };
    const double interp = run(*p->interpreted);
    const double comp = run(*p->compiled);
    const double fuse = run(*p->fused);
    final_speedup = interp / fuse;
    std::printf("%-8zu %-14.0f %-14.0f %-14.0f %-9.2f %-9.2f\n", len,
                interp, comp, fuse, interp / comp, interp / fuse);
  }
  std::printf("\nfused speedup at the largest length: %.2fx "
              "(bar: >= 3x)\n",
              final_speedup);
  if (final_speedup < 3.0) {
    std::fprintf(stderr,
                 "FAIL: fused pipeline is only %.2fx the interpreted "
                 "network (bar: 3x)\n",
                 final_speedup);
    return 1;
  }
  return 0;
}

void BM_InterpretedNetwork(benchmark::State& state) {
  auto p = MakePipeline();
  SeqId input = p->pool.FromChars(
      bench::RandomDna(7, 1, static_cast<size_t>(state.range(0)))[0],
      &p->symbols);
  for (auto _ : state) {
    auto out =
        p->interpreted->Apply(std::span<const SeqId>(&input, 1), &p->pool);
    if (!out.ok()) std::abort();
    benchmark::DoNotOptimize(out.value());
  }
}
BENCHMARK(BM_InterpretedNetwork)->Arg(300)->Arg(3000)->Arg(30000);

void BM_CompiledNodes(benchmark::State& state) {
  auto p = MakePipeline();
  SeqId input = p->pool.FromChars(
      bench::RandomDna(7, 1, static_cast<size_t>(state.range(0)))[0],
      &p->symbols);
  for (auto _ : state) {
    auto out =
        p->compiled->Apply(std::span<const SeqId>(&input, 1), &p->pool);
    if (!out.ok()) std::abort();
    benchmark::DoNotOptimize(out.value());
  }
}
BENCHMARK(BM_CompiledNodes)->Arg(300)->Arg(3000)->Arg(30000);

void BM_FusedMachine(benchmark::State& state) {
  auto p = MakePipeline();
  SeqId input = p->pool.FromChars(
      bench::RandomDna(7, 1, static_cast<size_t>(state.range(0)))[0],
      &p->symbols);
  for (auto _ : state) {
    auto out = p->fused->Apply(std::span<const SeqId>(&input, 1), &p->pool);
    if (!out.ok()) std::abort();
    benchmark::DoNotOptimize(out.value());
  }
}
BENCHMARK(BM_FusedMachine)->Arg(300)->Arg(3000)->Arg(30000);

}  // namespace

int main(int argc, char** argv) {
  int bar = PrintTable();
  if (bar != 0) return bar;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
