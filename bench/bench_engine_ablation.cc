// ENG: evaluation-strategy ablation. Not a paper table — it justifies
// the engine design choices called out in DESIGN.md: semi-naive firing
// beats naive re-derivation, and the Theorem 8 stratified driver applies
// constructive layers once.
#include <benchmark/benchmark.h>

#include <memory>

#include "base/thread_pool.h"
#include "bench_util.h"
#include "core/engine.h"
#include "core/programs.h"
#include "storage/catalog.h"
#include "storage/database.h"

namespace {

using namespace seqlog;

const char kClosureProgram[] =
    "link(X[1:N], X[N+1:end]) :- r(X).\n"
    "conn(X, Y) :- link(X, Y).\n"
    "conn(X, Z) :- conn(X, Y), link(Y, Z).\n";

eval::EvalOutcome RunProgram(const char* program, const char* fact_pred,
                             const std::vector<std::string>& seqs,
                             eval::Strategy strategy) {
  Engine engine;
  if (!engine.LoadProgram(program).ok()) std::abort();
  for (const std::string& s : seqs) engine.AddFact(fact_pred, {s});
  eval::EvalOptions options;
  options.strategy = strategy;
  eval::EvalOutcome outcome = engine.Evaluate(options);
  if (!outcome.status.ok()) std::abort();
  return outcome;
}

/// Builds `num_sources` scratch databases with heavily overlapping rows
/// — the shape FireTask emits at a round barrier (every worker derives
/// much of the same delta).
std::vector<std::unique_ptr<Database>> MakeMergeSources(
    Catalog* catalog, size_t num_sources, size_t rows_per_source) {
  PredId p = catalog->GetOrCreate("p", 2).value();
  PredId q = catalog->GetOrCreate("q", 3).value();
  std::vector<std::unique_ptr<Database>> sources;
  for (size_t src = 0; src < num_sources; ++src) {
    auto db = std::make_unique<Database>(catalog);
    for (size_t i = 0; i < rows_per_source; ++i) {
      // ~50% overlap with the neighbouring source.
      SeqId v = static_cast<SeqId>(i + src * rows_per_source / 2);
      db->Insert(p, std::vector<SeqId>{v * 7 + 1, v});
      db->Insert(q, std::vector<SeqId>{v, v * 3 + 1, v + 2});
    }
    sources.push_back(std::move(db));
  }
  return sources;
}

void PrintTable() {
  bench::Banner("ENG", "evaluation strategy ablation");
  struct Row {
    const char* name;
    const char* program;
    const char* pred;
    std::vector<std::string> seqs;
    bool stratifiable;
  };
  std::vector<Row> rows = {
      {"abc_n", programs::kAbcN, "r",
       bench::RandomSequences(41, 6, 9, "abc"), true},
      {"reverse", programs::kReverse, "r",
       bench::RandomSequences(42, 4, 10, "01"), false},
      {"closure", kClosureProgram, "r",
       bench::RandomSequences(43, 4, 8, "abcd"), true},
  };
  std::printf("%-10s %-24s %-24s %-24s\n", "workload",
              "naive (iters/ms)", "semi-naive (iters/ms)",
              "stratified (iters/ms)");
  for (const Row& row : rows) {
    eval::EvalOutcome naive =
        RunProgram(row.program, row.pred, row.seqs,
                   eval::Strategy::kNaive);
    eval::EvalOutcome semi =
        RunProgram(row.program, row.pred, row.seqs,
                   eval::Strategy::kSemiNaive);
    std::printf("%-10s %6zu / %-15.2f %6zu / %-15.2f", row.name,
                naive.stats.iterations, naive.stats.millis,
                semi.stats.iterations, semi.stats.millis);
    if (row.stratifiable) {
      eval::EvalOutcome strat =
          RunProgram(row.program, row.pred, row.seqs,
                     eval::Strategy::kStratified);
      std::printf(" %6zu / %-15.2f\n", strat.stats.iterations,
                  strat.stats.millis);
    } else {
      std::printf("   (not strongly safe)\n");
    }
    if (naive.stats.facts != semi.stats.facts) std::abort();
  }
}

void PrintMergeTable() {
  std::printf("\nround-barrier merge: flat/serial vs shard-parallel"
              " (Database::MergeFromAll)\n");
  std::printf("%-10s %-12s %-12s %-10s\n", "pool", "row-merge ms",
              "new rows", "speedup");
  double serial_millis = 0;
  size_t serial_rows = 0;
  for (size_t threads : {0u, 2u, 8u}) {
    Catalog catalog;
    std::vector<std::unique_ptr<Database>> scratches =
        MakeMergeSources(&catalog, 8, 4000);
    std::vector<const Database*> sources;
    for (const auto& db : scratches) sources.push_back(db.get());
    std::unique_ptr<ThreadPool> pool =
        threads > 0 ? std::make_unique<ThreadPool>(threads) : nullptr;
    Database target(&catalog);
    size_t merged = 0;
    double row_millis = 0;
    Status s = target.MergeFromAll(
        sources, pool.get(),
        [&merged](PredId, TupleView, size_t) {
          ++merged;
          return Status::Ok();
        },
        &row_millis);
    if (!s.ok()) std::abort();
    if (threads == 0) {
      serial_millis = row_millis;
      serial_rows = merged;
    } else if (merged != serial_rows) {
      std::printf("MERGE MISMATCH at %zu threads!\n", threads);
      std::abort();
    }
    std::printf("%-10zu %-12.2f %-12zu %-10.2f\n", threads, row_millis,
                merged, row_millis > 0 ? serial_millis / row_millis : 0.0);
  }
  std::printf("(identical callback streams at every width; speedup is the"
              " row-merge phase only — commit and domain closure stay"
              " serial)\n");
}

/// Round-barrier ablation: the same multi-source merge run through
/// Database::MergeFromAll serially (pool=nullptr — the flat relation's
/// single-writer cost) and shard-parallel (one writer per shard over
/// the pool). Models are identical by contract; only the row-merge
/// phase moves. Arg is the pool width (0 = serial).
void BM_MergeBarrier(benchmark::State& state) {
  const size_t threads = static_cast<size_t>(state.range(0));
  Catalog catalog;
  std::vector<std::unique_ptr<Database>> scratches =
      MakeMergeSources(&catalog, 8, 4000);
  std::vector<const Database*> sources;
  for (const auto& db : scratches) sources.push_back(db.get());
  std::unique_ptr<ThreadPool> pool =
      threads > 0 ? std::make_unique<ThreadPool>(threads) : nullptr;
  size_t merged = 0;
  double row_millis = 0;
  for (auto _ : state) {
    Database target(&catalog);
    merged = 0;
    Status s = target.MergeFromAll(
        sources, pool.get(),
        [&merged](PredId, TupleView, size_t) {
          ++merged;
          return Status::Ok();
        },
        &row_millis);
    if (!s.ok()) std::abort();
    benchmark::DoNotOptimize(target.TotalFacts());
  }
  state.counters["new_rows"] = static_cast<double>(merged);
  state.counters["row_merge_ms_total"] = row_millis;
}
BENCHMARK(BM_MergeBarrier)->Arg(0)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_Strategy(benchmark::State& state) {
  eval::Strategy strategy = static_cast<eval::Strategy>(state.range(0));
  std::vector<std::string> seqs = bench::RandomSequences(44, 5, 9, "abc");
  for (auto _ : state) {
    eval::EvalOutcome outcome =
        RunProgram(programs::kAbcN, "r", seqs, strategy);
    benchmark::DoNotOptimize(outcome.stats.facts);
  }
}
BENCHMARK(BM_Strategy)
    ->Arg(static_cast<int>(eval::Strategy::kNaive))
    ->Arg(static_cast<int>(eval::Strategy::kSemiNaive))
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  PrintMergeTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
