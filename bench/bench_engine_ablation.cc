// ENG: evaluation-strategy ablation. Not a paper table — it justifies
// the engine design choices called out in DESIGN.md: semi-naive firing
// beats naive re-derivation, and the Theorem 8 stratified driver applies
// constructive layers once.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/engine.h"
#include "core/programs.h"

namespace {

using namespace seqlog;

const char kClosureProgram[] =
    "link(X[1:N], X[N+1:end]) :- r(X).\n"
    "conn(X, Y) :- link(X, Y).\n"
    "conn(X, Z) :- conn(X, Y), link(Y, Z).\n";

eval::EvalOutcome RunProgram(const char* program, const char* fact_pred,
                             const std::vector<std::string>& seqs,
                             eval::Strategy strategy) {
  Engine engine;
  if (!engine.LoadProgram(program).ok()) std::abort();
  for (const std::string& s : seqs) engine.AddFact(fact_pred, {s});
  eval::EvalOptions options;
  options.strategy = strategy;
  eval::EvalOutcome outcome = engine.Evaluate(options);
  if (!outcome.status.ok()) std::abort();
  return outcome;
}

void PrintTable() {
  bench::Banner("ENG", "evaluation strategy ablation");
  struct Row {
    const char* name;
    const char* program;
    const char* pred;
    std::vector<std::string> seqs;
    bool stratifiable;
  };
  std::vector<Row> rows = {
      {"abc_n", programs::kAbcN, "r",
       bench::RandomSequences(41, 6, 9, "abc"), true},
      {"reverse", programs::kReverse, "r",
       bench::RandomSequences(42, 4, 10, "01"), false},
      {"closure", kClosureProgram, "r",
       bench::RandomSequences(43, 4, 8, "abcd"), true},
  };
  std::printf("%-10s %-24s %-24s %-24s\n", "workload",
              "naive (iters/ms)", "semi-naive (iters/ms)",
              "stratified (iters/ms)");
  for (const Row& row : rows) {
    eval::EvalOutcome naive =
        RunProgram(row.program, row.pred, row.seqs,
                   eval::Strategy::kNaive);
    eval::EvalOutcome semi =
        RunProgram(row.program, row.pred, row.seqs,
                   eval::Strategy::kSemiNaive);
    std::printf("%-10s %6zu / %-15.2f %6zu / %-15.2f", row.name,
                naive.stats.iterations, naive.stats.millis,
                semi.stats.iterations, semi.stats.millis);
    if (row.stratifiable) {
      eval::EvalOutcome strat =
          RunProgram(row.program, row.pred, row.seqs,
                     eval::Strategy::kStratified);
      std::printf(" %6zu / %-15.2f\n", strat.stats.iterations,
                  strat.stats.millis);
    } else {
      std::printf("   (not strongly safe)\n");
    }
    if (naive.stats.facts != semi.stats.facts) std::abort();
  }
}

void BM_Strategy(benchmark::State& state) {
  eval::Strategy strategy = static_cast<eval::Strategy>(state.range(0));
  std::vector<std::string> seqs = bench::RandomSequences(44, 5, 9, "abc");
  for (auto _ : state) {
    eval::EvalOutcome outcome =
        RunProgram(programs::kAbcN, "r", seqs, strategy);
    benchmark::DoNotOptimize(outcome.stats.facts);
  }
}
BENCHMARK(BM_Strategy)
    ->Arg(static_cast<int>(eval::Strategy::kNaive))
    ->Arg(static_cast<int>(eval::Strategy::kSemiNaive))
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
