// EX15: Example 1.5 — the same "multiple repeats" query written with
// structural recursion (rep1, finite least fixpoint) and constructive
// recursion (rep2, infinite least fixpoint). The reproduction table
// contrasts the two: rep1 converges, rep2 grows the extended active
// domain without bound until the budget stops it.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/engine.h"
#include "core/programs.h"

namespace {

using namespace seqlog;

void PrintTable() {
  bench::Banner("EX15",
                "structural vs constructive recursion (Example 1.5)");
  {
    Engine engine;
    if (!engine.LoadProgram(programs::kRep1).ok()) std::abort();
    engine.AddFact("r", {"abababab"});
    eval::EvalOptions options;
    options.track_growth = true;
    eval::EvalOutcome outcome = engine.Evaluate(options);
    auto rows = engine.Query("rep1");
    std::printf("rep1 (structural): status=%s iters=%zu facts=%zu "
                "domain=%zu\n",
                outcome.status.ToString().c_str(),
                outcome.stats.iterations, outcome.stats.facts,
                outcome.stats.domain_sequences);
    std::printf("  rep1 tuples: %zu (all (X, Y) in the domain with"
                " X = Y^k)\n",
                rows.ok() ? rows->size() : 0);
  }
  {
    Engine engine;
    if (!engine.LoadProgram(programs::kRep2).ok()) std::abort();
    engine.AddFact("r", {"abababab"});
    eval::EvalOptions options;
    options.track_growth = true;
    options.limits.max_domain_sequences = 40000;
    options.limits.max_iterations = 40;
    eval::EvalOutcome outcome = engine.Evaluate(options);
    std::printf("rep2 (constructive): status=%s after %zu iterations\n",
                outcome.status.ToString().c_str(),
                outcome.stats.iterations);
    std::printf("  %-10s %-10s %s\n", "iteration", "facts", "domain");
    for (size_t i = 0; i < outcome.stats.growth.size(); ++i) {
      std::printf("  %-10zu %-10zu %zu\n", i + 1,
                  outcome.stats.growth[i].first,
                  outcome.stats.growth[i].second);
    }
    std::printf("  -> the domain expands every iteration: infinite least"
                " fixpoint, as the paper states.\n");
  }
}

void BM_Rep1(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::string seq;
  for (size_t i = 0; i < n; ++i) seq += "ab";
  for (auto _ : state) {
    Engine engine;
    if (!engine.LoadProgram(programs::kRep1).ok()) std::abort();
    engine.AddFact("r", {seq});
    eval::EvalOutcome outcome = engine.Evaluate();
    benchmark::DoNotOptimize(outcome.stats.facts);
  }
}
BENCHMARK(BM_Rep1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
