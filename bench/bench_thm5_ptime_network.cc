// THM5: Theorem 5 — order-2 acyclic networks express exactly the PTIME
// sequence functions. The constructive direction is reproduced: a
// network of order-2 machines (init -> squared counter -> step driver ->
// decode) computes the same outputs as direct Turing machine execution,
// for a linear machine (bit flip) and a quadratic one (unary double).
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "sequence/sequence_pool.h"
#include "tm/machines.h"
#include "tm/tm_network.h"
#include "tm/turing.h"

namespace {

using namespace seqlog;

void PrintTable() {
  bench::Banner("THM5", "order-2 networks express PTIME (Theorem 5)");
  SymbolTable symbols;
  SequencePool pool;

  struct Workload {
    tm::TuringMachine machine;
    size_t squarings;
    std::vector<std::string> inputs;
  };
  std::vector<Workload> workloads;
  workloads.push_back({tm::MakeBitFlip(&symbols), 1,
                       {"01", "0110", "01101001", "0110100110010110"}});
  workloads.push_back({tm::MakeUnaryDouble(&symbols), 2,
                       {"111", "11111", "1111111"}});

  std::printf("%-14s %-18s %-9s %-13s %-7s\n", "machine", "input",
              "tm steps", "net steps", "match");
  for (const Workload& w : workloads) {
    auto net = tm::MakeTmNetwork(w.machine, w.machine.name + "_net",
                                 w.squarings);
    if (!net.ok()) std::abort();
    if ((*net)->Order() != 2) std::abort();  // the Theorem 5 claim
    for (const std::string& in : w.inputs) {
      std::vector<Symbol> input;
      for (char c : in) {
        input.push_back(symbols.Intern(std::string_view(&c, 1)));
      }
      auto direct = tm::RunMachine(w.machine, input, 1000000);
      if (!direct.ok()) std::abort();
      std::string expected = pool.Render(
          pool.Intern(tm::ExtractOutput(w.machine, *direct)), symbols);

      SeqId in_id = pool.Intern(input);
      transducer::RunStats stats;
      auto out = (*net)->Run(std::vector<SeqId>{in_id}, &pool, &stats);
      if (!out.ok()) std::abort();
      bool match = pool.Render(out.value(), symbols) == expected;
      std::printf("%-14s %-18s %-9zu %-13zu %-7s\n",
                  w.machine.name.c_str(), in.c_str(), direct->steps,
                  stats.total_steps, match ? "yes" : "NO");
      if (!match) std::abort();
    }
  }
  std::printf("(network cost is polynomial — counter length x per-step"
              " work — exactly the Theorem 5 overhead)\n");
}

void BM_BitFlipNetwork(benchmark::State& state) {
  SymbolTable symbols;
  SequencePool pool;
  tm::TuringMachine machine = tm::MakeBitFlip(&symbols);
  auto net = tm::MakeTmNetwork(machine, "net", 1).value();
  size_t n = static_cast<size_t>(state.range(0));
  SeqId in = pool.FromChars(std::string(n, '0'), &symbols);
  for (auto _ : state) {
    auto out = net->Apply(std::vector<SeqId>{in}, &pool);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_BitFlipNetwork)->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
