// EX51: Example 5.1 — stratified construction. Each stratum performs a
// fixed number of concatenations; the stratified evaluator applies each
// constructive layer exactly once (the Theorem 8 strategy), while the
// generic semi-naive evaluator re-checks constructive rules every
// round. The table compares iterations and time across database sizes.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/engine.h"
#include "core/programs.h"

namespace {

using namespace seqlog;

eval::EvalOutcome RunOnce(size_t db_size, eval::Strategy strategy,
                          size_t* answers) {
  Engine engine;
  if (!engine.LoadProgram(programs::kStratifiedDouble).ok()) std::abort();
  for (const std::string& seq :
       bench::RandomSequences(3, db_size, 6, "abcd")) {
    engine.AddFact("r", {seq});
  }
  eval::EvalOutcome outcome = engine.Evaluate({strategy, {}, false});
  auto rows = engine.Query("quadruple");
  *answers = rows.ok() ? rows->size() : 0;
  return outcome;
}

void PrintTable() {
  bench::Banner("EX51", "stratified construction (Example 5.1)");
  std::printf("%-8s %-12s %-22s %-22s\n", "|db|", "quadruples",
              "semi-naive (iters/ms)", "stratified (iters/ms)");
  for (size_t db : {4u, 16u, 64u, 256u}) {
    size_t answers_semi = 0;
    size_t answers_strat = 0;
    eval::EvalOutcome semi =
        RunOnce(db, eval::Strategy::kSemiNaive, &answers_semi);
    eval::EvalOutcome strat =
        RunOnce(db, eval::Strategy::kStratified, &answers_strat);
    if (answers_semi != answers_strat) std::abort();
    std::printf("%-8zu %-12zu %4zu / %-15.2f %4zu / %-15.2f\n", db,
                answers_semi, semi.stats.iterations, semi.stats.millis,
                strat.stats.iterations, strat.stats.millis);
  }
  std::printf("(each double sequence is the result of exactly two"
              " concatenations, per the paper)\n");
}

void BM_Stratified(benchmark::State& state) {
  size_t db = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    size_t answers = 0;
    eval::EvalOutcome outcome =
        RunOnce(db, eval::Strategy::kStratified, &answers);
    benchmark::DoNotOptimize(outcome.stats.facts);
  }
}
BENCHMARK(BM_Stratified)->Arg(8)->Arg(32)->Arg(128)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
