// ND: ablation for the nondeterministic-transducer executor (the
// generalization noted after Definition 7). A machine with b choices per
// consumed symbol has b^n runs; the executor memoizes (state, heads,
// output) configurations, so exploration cost tracks the number of
// *distinct configurations*, not the number of runs. This bench prints
// runs-vs-steps to show the gap, and the output-set sizes for machines
// whose run count collapses (scatter on a^n) versus machines whose runs
// are all distinct (binary guess).
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "sequence/sequence_pool.h"
#include "transducer/nondet.h"

namespace {

using namespace seqlog;
using transducer::HeadMove;
using transducer::NdOutput;
using transducer::NondetBuilder;
using transducer::NondetTransducer;
using transducer::SymPattern;

std::shared_ptr<const NondetTransducer> MakeGuess(SymbolTable* symbols) {
  NondetBuilder b("guess", 1);
  transducer::StateId q = b.State("q");
  b.Add(q, {SymPattern::Any()}, q, {HeadMove::kAdvance},
        NdOutput::Emit(symbols->Intern("0")));
  b.Add(q, {SymPattern::Any()}, q, {HeadMove::kAdvance},
        NdOutput::Emit(symbols->Intern("1")));
  auto m = b.Build();
  if (!m.ok()) std::abort();
  return m.value();
}

std::shared_ptr<const NondetTransducer> MakeScatter() {
  NondetBuilder b("scatter", 1);
  transducer::StateId q = b.State("q");
  b.Add(q, {SymPattern::Any()}, q, {HeadMove::kAdvance},
        NdOutput::Echo(0));
  b.Add(q, {SymPattern::Any()}, q, {HeadMove::kAdvance},
        NdOutput::Epsilon());
  auto m = b.Build();
  if (!m.ok()) std::abort();
  return m.value();
}

void PrintTable() {
  bench::Banner("ND", "nondeterministic transducer exploration (Def. 7 "
                      "remark)");
  SymbolTable symbols;
  SequencePool pool;
  auto guess = MakeGuess(&symbols);
  auto scatter = MakeScatter();

  std::printf("scatter (copy/skip) on a^n: 2^n runs, O(n^2) configs\n");
  std::printf("%-6s %-10s %-10s %-10s %-10s\n", "n", "runs(2^n)",
              "outputs", "steps", "dedup");
  for (size_t n : {4u, 8u, 12u, 16u, 20u}) {
    SeqId input = pool.FromChars(std::string(n, 'a'), &symbols);
    transducer::NdRunStats stats;
    auto out = scatter->RunAll(std::vector<SeqId>{input}, &pool,
                               transducer::NdRunLimits{}, &stats);
    if (!out.ok()) std::abort();
    std::printf("%-6zu %-10.0f %-10zu %-10zu %-10zu\n", n,
                std::pow(2.0, static_cast<double>(n)), out->size(),
                stats.steps, stats.dedup_hits);
  }

  std::printf("\nbinary guess on a^n: all 2^n outputs are distinct, so\n"
              "exploration is genuinely exponential (budgeted):\n");
  std::printf("%-6s %-10s %-10s\n", "n", "outputs", "steps");
  for (size_t n : {4u, 8u, 12u, 16u}) {
    SeqId input = pool.FromChars(std::string(n, 'a'), &symbols);
    transducer::NdRunStats stats;
    auto out = guess->RunAll(std::vector<SeqId>{input}, &pool,
                             transducer::NdRunLimits{}, &stats);
    if (!out.ok()) std::abort();
    std::printf("%-6zu %-10zu %-10zu\n", n, out->size(), stats.steps);
  }
}

void BM_ScatterMemoized(benchmark::State& state) {
  SymbolTable symbols;
  SequencePool pool;
  auto scatter = MakeScatter();
  SeqId input = pool.FromChars(
      std::string(static_cast<size_t>(state.range(0)), 'a'), &symbols);
  for (auto _ : state) {
    auto out = scatter->RunAll(std::vector<SeqId>{input}, &pool);
    if (!out.ok()) std::abort();
    benchmark::DoNotOptimize(out->size());
  }
}
BENCHMARK(BM_ScatterMemoized)->Arg(8)->Arg(16)->Arg(24);

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
