// EX16: Example 1.6 — echo sequences. The query answer is tiny and
// derived within a few iterations, yet the least fixpoint is infinite:
// the echo rule keeps generating echoes of ever-longer domain sequences.
// The reproduction table shows the finite answer appearing while the
// domain grows without bound.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/engine.h"
#include "core/programs.h"

namespace {

using namespace seqlog;

void PrintTable() {
  bench::Banner("EX16", "finite answer, infinite fixpoint (Example 1.6)");
  Engine engine;
  if (!engine.LoadProgram(programs::kEcho).ok()) std::abort();
  engine.AddFact("r", {"abcd"});
  eval::EvalOptions options;
  options.track_growth = true;
  options.limits.max_domain_sequences = 60000;
  options.limits.max_iterations = 60;
  eval::EvalOutcome outcome = engine.Evaluate(options);
  std::printf("status: %s\n", outcome.status.ToString().c_str());
  std::printf("%-10s %-10s %s\n", "iteration", "facts", "domain");
  for (size_t i = 0; i < outcome.stats.growth.size(); ++i) {
    std::printf("%-10zu %-10zu %zu\n", i + 1,
                outcome.stats.growth[i].first,
                outcome.stats.growth[i].second);
  }
  auto rows = engine.Query("answer");
  std::printf("answer relation (finite, already complete):\n");
  for (const auto& row : rows.value()) {
    std::printf("  echo(%s) = %s\n", row[0].c_str(), row[1].c_str());
  }
  std::printf("paper: \"even though the answer to the query is finite, the"
              " least fixpoint is infinite\" — reproduced.\n");
}

void BM_EchoBudgeted(benchmark::State& state) {
  for (auto _ : state) {
    Engine engine;
    if (!engine.LoadProgram(programs::kEcho).ok()) std::abort();
    engine.AddFact("r", {"ab"});
    eval::EvalOptions options;
    options.limits.max_domain_sequences =
        static_cast<size_t>(state.range(0));
    options.limits.max_iterations = 1000;
    eval::EvalOutcome outcome = engine.Evaluate(options);
    benchmark::DoNotOptimize(outcome.stats.domain_sequences);
  }
}
BENCHMARK(BM_EchoBudgeted)->Arg(1000)->Arg(4000)->Arg(16000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
