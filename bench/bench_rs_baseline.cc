// RS: the Section 1.1 baseline — rs-operations (mergers/extractors, after
// Ginsburg and Wang [16, 34]) versus Sequence Datalog on queries both can
// express. Reproduces the paper's qualitative comparison:
//
//  * on extraction-style queries (suffixes, pattern selection) both
//    formalisms agree and the specialised baseline operators are faster;
//  * the baseline performs a fixed number of merges per expression
//    (data-independent), so restructurings whose output length depends on
//    the database — reverse, echo, square — are out of its reach, while
//    strongly safe Transducer Datalog expresses them (Corollary 3).
#include <benchmark/benchmark.h>

#include <set>

#include "bench_util.h"
#include "core/engine.h"
#include "rs/algebra.h"
#include "rs/pattern.h"
#include "transducer/library.h"

namespace {

using namespace seqlog;

struct SuffixWorkload {
  std::vector<std::string> seqs;
};

SuffixWorkload MakeWorkload(size_t count, size_t len) {
  SuffixWorkload w;
  w.seqs = bench::RandomDna(23, count, len);
  return w;
}

/// Suffixes via the baseline: extract X2 from X1X2.
size_t RunRs(const SuffixWorkload& w, double* millis) {
  SymbolTable symbols;
  SequencePool pool;
  rs::Table r;
  r.arity = 1;
  for (const std::string& s : w.seqs) {
    r.rows.push_back({pool.FromChars(s, &symbols)});
  }
  rs::TableEnv env;
  env["r"] = std::move(r);
  auto pattern = rs::Pattern::Parse("X1X2", &pool, &symbols);
  if (!pattern.ok()) std::abort();
  auto expr = rs::Project(
      rs::Extract(rs::Base("r"), 0, pattern.value(), 1), {1});
  auto start = std::chrono::steady_clock::now();
  auto out = expr->Eval(env, &pool);
  *millis = std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - start)
                .count();
  if (!out.ok()) std::abort();
  return out->rows.size();
}

/// Suffixes via Sequence Datalog (Example 1.1).
size_t RunSd(const SuffixWorkload& w, double* millis) {
  Engine engine;
  if (!engine.LoadProgram("suffix(X[N:end]) :- r(X).").ok()) std::abort();
  for (const std::string& s : w.seqs) engine.AddFact("r", {s});
  eval::EvalOutcome outcome = engine.Evaluate();
  if (!outcome.status.ok()) std::abort();
  *millis = outcome.stats.millis;
  auto rows = engine.Query("suffix");
  if (!rows.ok()) std::abort();
  return rows->size();
}

void PrintTable() {
  bench::Banner("RS",
                "rs-operation baseline vs Sequence Datalog (Section 1.1)");
  std::printf("suffix extraction over synthetic DNA (len 24):\n");
  std::printf("%-8s %-12s %-12s %-12s %-12s %s\n", "|db|", "rs rows",
              "sd rows", "rs ms", "sd ms", "agree");
  for (size_t count : {2u, 4u, 8u, 16u, 32u}) {
    SuffixWorkload w = MakeWorkload(count, 24);
    double rs_ms = 0, sd_ms = 0;
    size_t rs_rows = RunRs(w, &rs_ms);
    size_t sd_rows = RunSd(w, &sd_ms);
    std::printf("%-8zu %-12zu %-12zu %-12.2f %-12.2f %s\n", count,
                rs_rows, sd_rows, rs_ms, sd_ms,
                rs_rows == sd_rows ? "yes" : "NO");
  }

  std::printf(
      "\nexpressiveness frontier (the paper's qualitative claim):\n"
      "%-12s %-22s %s\n", "query", "rs baseline", "seqlog");
  std::printf("%-12s %-22s %s\n", "suffixes", "extractor X1X2/X2",
              "suffix(X[N:end]) :- r(X).");
  std::printf("%-12s %-22s %s\n", "append", "merger X1X2",
              "pair(X ++ Y) :- r(X), r(Y).");
  std::printf("%-12s %-22s %s\n", "squares ww", "select X1X1",
              "rep1 (Example 1.5)");
  std::printf("%-12s %-22s %s\n", "reverse", "INEXPRESSIBLE [20]",
              "reverse (Example 1.4) / @reverse");
  std::printf("%-12s %-22s %s\n", "echo", "INEXPRESSIBLE [16]",
              "echo (Example 1.6, budgeted) / @echo");
  std::printf("%-12s %-22s %s\n", "square n^2", "INEXPRESSIBLE (fixed "
              "merges)", "@square (Example 6.1)");
}

void BM_RsSuffixes(benchmark::State& state) {
  SuffixWorkload w = MakeWorkload(static_cast<size_t>(state.range(0)), 24);
  for (auto _ : state) {
    double ms = 0;
    benchmark::DoNotOptimize(RunRs(w, &ms));
  }
}
BENCHMARK(BM_RsSuffixes)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_SdSuffixes(benchmark::State& state) {
  SuffixWorkload w = MakeWorkload(static_cast<size_t>(state.range(0)), 24);
  for (auto _ : state) {
    double ms = 0;
    benchmark::DoNotOptimize(RunSd(w, &ms));
  }
}
BENCHMARK(BM_SdSuffixes)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
