// EX13: Example 1.3 — retrieving a^n b^n c^n sequences (a non-context-
// free language) by structural recursion. The reproduction table shows
// the query answering exactly the matching half of a synthetic database;
// the timed series scales the pattern length.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/engine.h"
#include "core/programs.h"

namespace {

using namespace seqlog;

std::unique_ptr<Engine> MakeEngine(size_t n, size_t extra) {
  auto engine = std::make_unique<Engine>();
  Status s = engine->LoadProgram(programs::kAbcN);
  if (!s.ok()) std::abort();
  // One matching sequence, plus near-miss decoys of the same length.
  std::string good = std::string(n, 'a') + std::string(n, 'b') +
                     std::string(n, 'c');
  engine->AddFact("r", {good});
  engine->AddFact("r", {std::string(n, 'a') + std::string(n + 1, 'b') +
                        std::string(n - 1, 'c')});
  engine->AddFact("r", {std::string(3 * n, 'a')});
  for (const std::string& seq :
       bench::RandomSequences(7, extra, 3 * n, "abc")) {
    engine->AddFact("r", {seq});
  }
  return engine;
}

void PrintTable() {
  bench::Banner("EX13", "a^n b^n c^n pattern matching (Example 1.3)");
  std::printf("%-5s %-9s %-9s %-9s %-10s %s\n", "n", "answers", "facts",
              "domain", "iters", "millis");
  for (size_t n : {2u, 4u, 6u, 8u, 10u}) {
    auto engine = MakeEngine(n, 3);
    eval::EvalOutcome outcome = engine->Evaluate();
    if (!outcome.status.ok()) std::abort();
    auto rows = engine->Query("answer");
    std::printf("%-5zu %-9zu %-9zu %-9zu %-10zu %.2f\n", n, rows->size(),
                outcome.stats.facts, outcome.stats.domain_sequences,
                outcome.stats.iterations, outcome.stats.millis);
  }
  std::printf("(exactly the a^n b^n c^n member of each database matches)\n");
}

void BM_AbcN(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto engine = MakeEngine(n, 2);
    eval::EvalOutcome outcome = engine->Evaluate();
    benchmark::DoNotOptimize(outcome.stats.facts);
  }
}
BENCHMARK(BM_AbcN)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
