// FIG3: regenerates Figure 3 of the paper — the predicate dependency
// graphs of Example 8.1's programs P1, P2, P3 with constructive edges
// marked, plus their strong-safety classification (only P1 passes
// Definition 10). The timed series measures safety analysis on
// synthetic programs with growing dependency chains.
#include <benchmark/benchmark.h>

#include "analysis/safety.h"
#include "bench_util.h"
#include "core/programs.h"
#include "parser/parser.h"

namespace {

using namespace seqlog;

void PrintFigure3() {
  bench::Banner("FIG3", "predicate dependency graphs (paper Figure 3)");
  SymbolTable symbols;
  SequencePool pool;
  struct Entry {
    const char* name;
    const char* text;
  } entries[] = {{"P1", programs::kP1},
                 {"P2", programs::kP2},
                 {"P3", programs::kP3}};
  for (const Entry& e : entries) {
    auto program = parser::ParseProgram(e.text, &symbols, &pool);
    analysis::SafetyReport report = analysis::AnalyzeSafety(program.value());
    std::printf("--- program %s ---\n%s", e.name, e.text);
    std::printf("%s", report.graph.ToDot().c_str());
    if (report.strongly_safe) {
      std::printf("=> strongly safe (no constructive cycle)\n\n");
    } else {
      std::printf("=> NOT strongly safe: constructive cycle through"
                  " %s -> %s\n\n",
                  report.offending_edge->first.c_str(),
                  report.offending_edge->second.c_str());
    }
  }
  std::printf("paper: P1 strongly safe; P2, P3 not. Reproduced above.\n");
}

/// Synthetic program: a chain p0 <- p1 <- ... <- pn with one
/// constructive rule per predicate (acyclic: always strongly safe).
std::string ChainProgram(size_t n) {
  std::string out;
  // Appends instead of operator+ chains: GCC 12's -Wrestrict false-positive
  // (PR 105329) fires on `const char* + std::string&&` under -O2 -Werror.
  for (size_t i = 0; i < n; ++i) {
    out += "p";
    out += std::to_string(i);
    out += "(X ++ X) :- p";
    out += std::to_string(i + 1);
    out += "(X).\n";
  }
  out += "p";
  out += std::to_string(n);
  out += "(X) :- base(X).\n";
  return out;
}

void BM_SafetyAnalysis(benchmark::State& state) {
  SymbolTable symbols;
  SequencePool pool;
  auto program = parser::ParseProgram(
      ChainProgram(static_cast<size_t>(state.range(0))), &symbols, &pool);
  for (auto _ : state) {
    analysis::SafetyReport report =
        analysis::AnalyzeSafety(program.value());
    benchmark::DoNotOptimize(report.strongly_safe);
  }
}
BENCHMARK(BM_SafetyAnalysis)->Arg(10)->Arg(100)->Arg(1000);

}  // namespace

int main(int argc, char** argv) {
  PrintFigure3();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
