// SERVE: the serving tier's two performance claims (docs/SERVING.md).
//
//  1. Batch amortisation: BatchExecutor runs N bindings of one prepared
//     goal in ONE semi-naive run (one magic seed set, one round
//     schedule, one domain closure) instead of N. On genome point
//     lookup the acceptance bar is batch-of-32 >= 3x the throughput of
//     32 sequential Execute calls; the reproduction table prints the
//     measured ratio and cross-checks answer parity item by item.
//  2. Loopback round trips: EXEC and BATCH through the full wire
//     protocol (src/serve/server.h + client.h) over 127.0.0.1, i.e.
//     what a closed-loop client actually observes including framing
//     and syscalls. seqlog-loadgen covers the multi-connection version
//     of the same measurement; these single-connection numbers isolate
//     protocol overhead from queueing.
//
// JSON rows: BM_GenomeSingles32 vs BM_GenomeBatch32 carry
// items_per_second, so the >=3x criterion is checkable straight from
// BENCH_pr7.json; BM_ServeExecRoundtrip / BM_ServeBatch32Roundtrip are
// the loopback latencies.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/engine.h"
#include "core/programs.h"
#include "serve/batch_executor.h"
#include "serve/client.h"
#include "serve/server.h"
#include "transducer/genome.h"

namespace {

using namespace seqlog;

void RegisterGenomeMachines(Engine* engine) {
  auto transcribe =
      transducer::MakeTranscribe("transcribe", engine->symbols());
  auto translate =
      transducer::MakeTranslate("translate", engine->symbols());
  if (!transcribe.ok() || !translate.ok()) std::abort();
  if (!engine->RegisterTransducer(transcribe.value()).ok()) std::abort();
  if (!engine->RegisterTransducer(translate.value()).ok()) std::abort();
}

/// A genome engine with `n` random dnaseq facts; probes are the facts
/// themselves (every point lookup hits).
std::vector<std::string> SetupGenome(Engine* engine, size_t n) {
  RegisterGenomeMachines(engine);
  if (!engine->LoadProgram(programs::kGenomePipeline).ok()) std::abort();
  std::vector<std::string> dna = bench::RandomDna(7, n, 24);
  for (const std::string& d : dna) {
    if (!engine->AddFact("dnaseq", {d}).ok()) std::abort();
  }
  return dna;
}

std::vector<serve::BatchExecutor::Item> MakeItems(
    const serve::BatchExecutor& batch,
    const std::vector<std::string>& probes, size_t offset, size_t count) {
  std::vector<serve::BatchExecutor::Item> items;
  items.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    auto item =
        batch.MakeItem(0, {probes[(offset + i) % probes.size()]});
    if (!item.ok()) std::abort();
    items.push_back(std::move(item).value());
  }
  return items;
}

void PrintTable() {
  bench::Banner("SERVE",
                "batched prepared execution vs sequential single calls");
  std::printf("%-22s %-7s %-14s %-14s %-9s\n", "workload (db 400)",
              "batch", "single it/s", "batch it/s", "speedup");

  Engine engine;
  std::vector<std::string> probes = SetupGenome(&engine, 400);
  auto prepared = engine.Prepare("?- rnaseq($1, X).");
  if (!prepared.ok()) std::abort();
  Snapshot snapshot = engine.PublishSnapshot();
  serve::BatchExecutor batch(&engine, {&prepared.value()});

  double speedup32 = 0;
  for (size_t size : {8u, 32u, 128u}) {
    // Sequential: `size` independent Execute calls.
    auto t0 = std::chrono::steady_clock::now();
    size_t rounds = 0;
    std::vector<std::vector<std::vector<std::string>>> single_answers;
    do {
      single_answers.clear();
      for (size_t i = 0; i < size; ++i) {
        if (!prepared->Bind(1, probes[i % probes.size()]).ok())
          std::abort();
        ResultSet rs = prepared->Execute(snapshot);
        if (!rs.ok()) std::abort();
        single_answers.push_back(rs.Materialize());
      }
      ++rounds;
    } while (std::chrono::steady_clock::now() - t0 <
             std::chrono::milliseconds(200));
    double single_ips =
        static_cast<double>(rounds * size) /
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();

    // Batched: the same `size` bindings in one run.
    std::vector<serve::BatchExecutor::Item> items =
        MakeItems(batch, probes, 0, size);
    t0 = std::chrono::steady_clock::now();
    rounds = 0;
    serve::BatchResult result;
    do {
      result = batch.Execute(snapshot, items);
      if (!result.status.ok()) std::abort();
      ++rounds;
    } while (std::chrono::steady_clock::now() - t0 <
             std::chrono::milliseconds(200));
    double batch_ips =
        static_cast<double>(rounds * size) /
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();

    // Parity: the batch demux must equal the sequential answers.
    if (result.stats.evaluations != 1) std::abort();
    for (size_t i = 0; i < size; ++i) {
      if (result.results[i].Materialize() != single_answers[i]) {
        std::printf("PARITY MISMATCH at item %zu\n", i);
        std::abort();
      }
    }

    double speedup = batch_ips / single_ips;
    if (size == 32u) speedup32 = speedup;
    std::printf("%-22s %-7zu %-14.0f %-14.0f %.2fx\n",
                "genome point lookup", size, single_ips, batch_ips,
                speedup);
  }
  std::printf("(speedup = batch/single items per second; the PR7 bar is\n"
              " >= 3x at batch 32 — measured %.2fx)\n", speedup32);
  if (speedup32 < 3.0) {
    std::printf("BELOW THE 3x BATCH AMORTISATION BAR\n");
    std::abort();
  }
}

// --- JSON rows -------------------------------------------------------

/// 32 sequential prepared Execute calls per iteration; items_per_second
/// is the honest single-call throughput.
void BM_GenomeSingles32(benchmark::State& state) {
  Engine engine;
  std::vector<std::string> probes = SetupGenome(&engine, 400);
  auto prepared = engine.Prepare("?- rnaseq($1, X).");
  if (!prepared.ok()) std::abort();
  Snapshot snapshot = engine.PublishSnapshot();
  for (auto _ : state) {
    for (size_t i = 0; i < 32; ++i) {
      if (!prepared->Bind(1, probes[i]).ok()) std::abort();
      ResultSet rs = prepared->Execute(snapshot);
      if (!rs.ok()) std::abort();
      benchmark::DoNotOptimize(rs.size());
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 32);
}
BENCHMARK(BM_GenomeSingles32)->Unit(benchmark::kMicrosecond);

/// The same 32 bindings as one BatchExecutor run per iteration.
void BM_GenomeBatch32(benchmark::State& state) {
  Engine engine;
  std::vector<std::string> probes = SetupGenome(&engine, 400);
  auto prepared = engine.Prepare("?- rnaseq($1, X).");
  if (!prepared.ok()) std::abort();
  Snapshot snapshot = engine.PublishSnapshot();
  serve::BatchExecutor batch(&engine, {&prepared.value()});
  std::vector<serve::BatchExecutor::Item> items =
      MakeItems(batch, probes, 0, 32);
  for (auto _ : state) {
    serve::BatchResult result = batch.Execute(snapshot, items);
    if (!result.status.ok()) std::abort();
    benchmark::DoNotOptimize(result.results.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 32);
}
BENCHMARK(BM_GenomeBatch32)->Unit(benchmark::kMicrosecond);

/// One wire EXEC round trip per iteration over loopback.
void BM_ServeExecRoundtrip(benchmark::State& state) {
  Engine engine;
  std::vector<std::string> probes = SetupGenome(&engine, 400);
  serve::ServerOptions options;
  options.port = 0;
  serve::Server server(&engine, options);
  if (!server.Start().ok()) std::abort();
  serve::TextClient client;
  if (!client.Connect("127.0.0.1", server.port()).ok()) std::abort();
  if (!client.Roundtrip("PREPARE q ?- rnaseq($1, X).")->ok())
    std::abort();
  size_t i = 0;
  for (auto _ : state) {
    auto reply =
        client.Roundtrip("EXEC q " + probes[i++ % probes.size()]);
    if (!reply.ok() || !reply.value().ok()) std::abort();
    benchmark::DoNotOptimize(reply.value().body.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ServeExecRoundtrip)->Unit(benchmark::kMicrosecond);

/// One wire BATCH of 32 per iteration over loopback.
void BM_ServeBatch32Roundtrip(benchmark::State& state) {
  Engine engine;
  std::vector<std::string> probes = SetupGenome(&engine, 400);
  serve::ServerOptions options;
  options.port = 0;
  serve::Server server(&engine, options);
  if (!server.Start().ok()) std::abort();
  serve::TextClient client;
  if (!client.Connect("127.0.0.1", server.port()).ok()) std::abort();
  if (!client.Roundtrip("PREPARE q ?- rnaseq($1, X).")->ok())
    std::abort();
  std::vector<std::string> lines(probes.begin(), probes.begin() + 32);
  for (auto _ : state) {
    auto reply = client.Roundtrip("BATCH q 32", lines);
    if (!reply.ok() || !reply.value().ok()) std::abort();
    benchmark::DoNotOptimize(reply.value().body.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 32);
}
BENCHMARK(BM_ServeBatch32Roundtrip)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
