// IVM: the live-ingest tier's performance claim (docs/STREAMING.md).
//
// A saturated model maintained by ivm::IncrementalModel::Apply re-runs
// the semi-naive rounds from the staged batch as a round-0 delta, so
// the cost of absorbing B new facts scales with the consequences of
// those B facts — not with the database. The cold alternative
// (Engine::Evaluate over the union) re-derives everything. On the
// genome pipeline at db 400 the acceptance bar is: incremental drain of
// a batch of 1 >= 10x faster than a cold re-evaluation; the
// reproduction table prints measured latencies for batches of 1/32/1024
// and cross-checks model parity (fact count, domain size, rendered
// rows) between the incrementally maintained engine and a cold engine
// evaluated over the same union.
//
// JSON rows: BM_GenomeColdEvaluate/B vs BM_GenomeIncrementalApply/B
// carry the per-batch latency at each size, so the >=10x criterion is
// checkable straight from BENCH_pr8.json.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/engine.h"
#include "core/programs.h"
#include "transducer/genome.h"

namespace {

using namespace seqlog;

constexpr size_t kBaseFacts = 400;
constexpr size_t kSeqLen = 24;

void RegisterGenomeMachines(Engine* engine) {
  auto transcribe =
      transducer::MakeTranscribe("transcribe", engine->symbols());
  auto translate =
      transducer::MakeTranslate("translate", engine->symbols());
  if (!transcribe.ok() || !translate.ok()) std::abort();
  if (!engine->RegisterTransducer(transcribe.value()).ok()) std::abort();
  if (!engine->RegisterTransducer(translate.value()).ok()) std::abort();
}

/// The shared db-400 base (seed 7, like bench_serve).
void AddBaseFacts(Engine* engine) {
  for (const std::string& d : bench::RandomDna(7, kBaseFacts, kSeqLen)) {
    if (!engine->AddFact("dnaseq", {d}).ok()) std::abort();
  }
}

/// A genome engine with the db-400 base plus `extra` facts already in
/// the EDB. Not evaluated.
void SetupGenome(Engine* engine, const std::vector<std::string>& extra) {
  RegisterGenomeMachines(engine);
  if (!engine->LoadProgram(programs::kGenomePipeline).ok()) std::abort();
  AddBaseFacts(engine);
  for (const std::string& d : extra) {
    if (!engine->AddFact("dnaseq", {d}).ok()) std::abort();
  }
}

/// Counter-encoded DNA: distinct from each other by construction and
/// from the random base with near certainty (4^24 space).
std::string EncodeDna(uint64_t n) {
  static const char kAlpha[] = "acgt";
  std::string s(kSeqLen, 'a');
  for (size_t i = 0; i < kSeqLen && n != 0; ++i) {
    s[kSeqLen - 1 - i] = kAlpha[n % 4];
    n /= 4;
  }
  return s;
}

std::vector<std::string> FreshBatch(uint64_t* counter, size_t size) {
  std::vector<std::string> batch;
  batch.reserve(size);
  for (size_t i = 0; i < size; ++i) batch.push_back(EncodeDna((*counter)++));
  return batch;
}

double MillisSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

void PrintTable() {
  bench::Banner("IVM",
                "incremental re-saturation vs cold re-evaluation");
  std::printf("%-22s %-7s %-10s %-10s %-9s\n", "workload (db 400)",
              "batch", "cold ms", "apply ms", "speedup");

  uint64_t counter = 1;
  constexpr int kTrials = 5;
  double speedup1 = 0;
  for (size_t size : {1u, 32u, 1024u}) {
    double cold_ms = 1e18, apply_ms = 1e18;
    for (int trial = 0; trial < kTrials; ++trial) {
      std::vector<std::string> batch = FreshBatch(&counter, size);

      // Cold: evaluate the union from scratch.
      Engine cold;
      SetupGenome(&cold, batch);
      auto t0 = std::chrono::steady_clock::now();
      if (!cold.Evaluate().status.ok()) std::abort();
      cold_ms = std::min(cold_ms, MillisSince(t0));

      // Incremental: saturate the base, stage the batch, drain.
      Engine inc;
      SetupGenome(&inc, {});
      if (!inc.Evaluate().status.ok()) std::abort();
      for (const std::string& d : batch) {
        if (!inc.AddFact("dnaseq", {d}).ok()) std::abort();
      }
      t0 = std::chrono::steady_clock::now();
      eval::EvalOutcome drained = inc.DrainIngest();
      apply_ms = std::min(apply_ms, MillisSince(t0));
      if (!drained.status.ok() || drained.stats.cold_fallback ||
          drained.stats.ingested_facts == 0) {
        std::printf("INCREMENTAL DRAIN DID NOT TAKE THE APPLY PATH\n");
        std::abort();
      }

      // Parity: the maintained model must equal the cold union model.
      if (trial == 0) {
        if (inc.live_model().model()->TotalFacts() !=
                cold.live_model().model()->TotalFacts() ||
            inc.live_model().domain()->size() !=
                cold.live_model().domain()->size() ||
            inc.Query("rnaseq").value() != cold.Query("rnaseq").value() ||
            inc.Query("proteinseq").value() !=
                cold.Query("proteinseq").value()) {
          std::printf("PARITY MISMATCH at batch %zu\n", size);
          std::abort();
        }
      }
    }
    double speedup = cold_ms / apply_ms;
    if (size == 1u) speedup1 = speedup;
    std::printf("%-22s %-7zu %-10.3f %-10.3f %.1fx\n", "genome pipeline",
                size, cold_ms, apply_ms, speedup);
  }
  std::printf("(speedup = cold/apply latency, min of %d trials; the PR8\n"
              " bar is >= 10x at batch 1 — measured %.1fx)\n",
              5, speedup1);
  if (speedup1 < 10.0) {
    std::printf("BELOW THE 10x INCREMENTAL MAINTENANCE BAR\n");
    std::abort();
  }
}

// --- JSON rows -------------------------------------------------------

/// One cold fixpoint over db 400 + B per iteration.
void BM_GenomeColdEvaluate(benchmark::State& state) {
  uint64_t counter = 1u << 20;  // distinct range from the table's facts
  Engine engine;
  SetupGenome(&engine,
              FreshBatch(&counter, static_cast<size_t>(state.range(0))));
  for (auto _ : state) {
    if (!engine.Evaluate().status.ok()) std::abort();
    benchmark::DoNotOptimize(engine.live_model().model()->TotalFacts());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GenomeColdEvaluate)
    ->Arg(1)
    ->Arg(32)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond);

/// One incremental drain of a fresh batch of B per iteration; the
/// engine is re-seated to the saturated db-400 base between iterations
/// (paused) so every measured drain starts from the same model.
void BM_GenomeIncrementalApply(benchmark::State& state) {
  uint64_t counter = 1u << 30;
  const size_t size = static_cast<size_t>(state.range(0));
  Engine engine;
  SetupGenome(&engine, {});
  if (!engine.Evaluate().status.ok()) std::abort();
  for (auto _ : state) {
    state.PauseTiming();
    engine.ClearFacts();  // program and machines stay loaded
    AddBaseFacts(&engine);
    if (!engine.Evaluate().status.ok()) std::abort();
    for (const std::string& d : FreshBatch(&counter, size)) {
      if (!engine.AddFact("dnaseq", {d}).ok()) std::abort();
    }
    state.ResumeTiming();
    eval::EvalOutcome drained = engine.DrainIngest();
    if (!drained.status.ok() || drained.stats.cold_fallback) std::abort();
    benchmark::DoNotOptimize(drained.stats.ingested_facts);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GenomeIncrementalApply)
    ->Arg(1)
    ->Arg(32)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
