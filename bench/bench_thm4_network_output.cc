// THM4: Theorem 4 — output-size bounds for transducer networks.
//  * Order 2, diameter d: |out| <= poly(n); attained: n^(2^d) for a
//    chain of d square machines.
//  * Order 3: |out| <= hyperexponential; attained: the double-exp
//    machine reaches (n + |out_{i-1}|)^2 growth = 2^2^Theta(n).
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "transducer/library.h"
#include "transducer/network.h"

namespace {

using namespace seqlog;

void PrintTable() {
  bench::Banner("THM4", "network output-size bounds (Theorem 4)");
  SymbolTable symbols;
  SequencePool pool;

  std::printf("order-2 chains of square machines: |out| = n^(2^d)\n");
  std::printf("%-4s %-4s %-12s %-12s\n", "d", "n", "|out|", "predicted");
  for (size_t d : {1u, 2u, 3u}) {
    transducer::TransducerNetwork net("chain" + std::to_string(d), 1);
    transducer::InputSource src = transducer::InputSource::FromNetwork(0);
    for (size_t i = 0; i < d; ++i) {
      auto sq = transducer::MakeSquare("sq");
      auto node = net.AddNode(sq.value(), {src});
      src = transducer::InputSource::FromNode(node.value());
    }
    if (!net.SetOutput(src.index).ok()) std::abort();
    for (size_t n : {2u, 3u}) {
      SeqId in = pool.FromChars(std::string(n, 'a'), &symbols);
      auto out = net.Apply(std::vector<SeqId>{in}, &pool);
      if (!out.ok()) std::abort();
      size_t predicted = n;
      for (size_t i = 0; i < d; ++i) predicted *= predicted;
      std::printf("%-4zu %-4zu %-12zu %-12zu\n", d, n,
                  pool.Length(out.value()), predicted);
      if (pool.Length(out.value()) != predicted) std::abort();
    }
  }

  std::printf("\norder-3 machine: |out_i| = (n + |out_{i-1}|)^2"
              " (doubly exponential)\n");
  std::printf("%-4s %-14s %-14s\n", "n", "|out|", "predicted");
  auto dexp = transducer::MakeDoubleExp("dx").value();
  for (size_t n : {1u, 2u, 3u, 4u}) {
    SeqId in = pool.FromChars(std::string(n, 'a'), &symbols);
    size_t predicted = 0;
    for (size_t i = 0; i < n; ++i) predicted = (n + predicted) * (n + predicted);
    if (predicted > dexp->max_output_length()) {
      std::printf("%-4zu %-14s %-14zu (exceeds machine output budget —"
                  " growth confirmed)\n",
                  n, "(budget)", predicted);
      continue;
    }
    auto out = dexp->Apply(std::vector<SeqId>{in}, &pool);
    if (!out.ok()) std::abort();
    std::printf("%-4zu %-14zu %-14zu\n", n, pool.Length(out.value()),
                predicted);
    if (pool.Length(out.value()) != predicted) std::abort();
  }
  std::printf("(the paper's 2^2^n lower bound: already n=4 would need"
              " 2.7e10 symbols)\n");
}

void BM_SquareChain(benchmark::State& state) {
  SymbolTable symbols;
  SequencePool pool;
  size_t d = static_cast<size_t>(state.range(0));
  transducer::TransducerNetwork net("chain", 1);
  transducer::InputSource src = transducer::InputSource::FromNetwork(0);
  for (size_t i = 0; i < d; ++i) {
    auto sq = transducer::MakeSquare("sq");
    auto node = net.AddNode(sq.value(), {src});
    src = transducer::InputSource::FromNode(node.value());
  }
  if (!net.SetOutput(src.index).ok()) std::abort();
  SeqId in = pool.FromChars("aa", &symbols);
  for (auto _ : state) {
    auto out = net.Apply(std::vector<SeqId>{in}, &pool);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_SquareChain)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
