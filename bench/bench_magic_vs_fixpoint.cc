// MAGIC: goal-directed (magic-set) evaluation versus the full fixpoint.
//
// Three workloads on the paper's motivating programs:
//  * suffix membership (Example 1.1 / the Figure 2 shape): the full
//    fixpoint materialises every suffix of every database sequence; the
//    demand run derives only the facts needed to confirm one suffix;
//  * genome point lookup (Example 7.1): transcribe exactly one demanded
//    DNA sequence instead of the whole database — the "millions of point
//    queries" scenario of a production Sequence Datalog service;
//  * a^n b^n c^n membership (Example 1.3): the structural-recursion
//    subgoal is not bindable (its variables are unguarded), so magic
//    degenerates to roughly the full evaluation — the honest baseline
//    row showing when demand does NOT help.
//
// The reproduction table reports derived facts (total minus database) for
// both paths and their ratio; the suffix and genome workloads must show
// >= 5x fewer derived facts. Answers are cross-checked on every run.
#include <benchmark/benchmark.h>

#include <cstdlib>

#include "bench_util.h"
#include "core/engine.h"
#include "core/programs.h"
#include "transducer/genome.h"

namespace {

using namespace seqlog;

void RegisterGenomeMachines(Engine* engine) {
  auto transcribe =
      transducer::MakeTranscribe("transcribe", engine->symbols());
  auto translate =
      transducer::MakeTranslate("translate", engine->symbols());
  if (!transcribe.ok() || !translate.ok()) std::abort();
  if (!engine->RegisterTransducer(transcribe.value()).ok()) std::abort();
  if (!engine->RegisterTransducer(translate.value()).ok()) std::abort();
}

struct Comparison {
  size_t full_derived = 0;
  size_t magic_derived = 0;
  double full_millis = 0;
  double magic_millis = 0;
  size_t answers = 0;
};

/// Runs Evaluate and Solve on a fresh engine pair and cross-checks that
/// the goal's answers agree with the full model.
Comparison Compare(const char* program, bool genome,
                   const std::vector<std::string>& facts,
                   const char* fact_pred, const std::string& goal,
                   const char* goal_pred,
                   const std::string& bound_value) {
  Comparison out;

  Engine full;
  if (genome) RegisterGenomeMachines(&full);
  if (!full.LoadProgram(program).ok()) std::abort();
  for (const auto& f : facts) full.AddFact(fact_pred, {f});
  eval::EvalOutcome full_out = full.Evaluate();
  if (!full_out.status.ok()) std::abort();
  out.full_derived = full_out.stats.facts - full.edb().TotalFacts();
  out.full_millis = full_out.stats.millis;

  Engine magic;
  if (genome) RegisterGenomeMachines(&magic);
  if (!magic.LoadProgram(program).ok()) std::abort();
  for (const auto& f : facts) magic.AddFact(fact_pred, {f});
  SolveOutcome solved = magic.Solve(goal);
  if (!solved.status.ok()) std::abort();
  out.magic_derived = solved.stats.derived_facts;
  out.magic_millis = solved.stats.eval.millis;
  out.answers = solved.answers.size();

  // Cross-check: the demand answers equal the full model restricted to
  // the goal's bound first argument.
  auto rows = full.Query(goal_pred);
  if (!rows.ok()) std::abort();
  size_t expect = 0;
  for (const RenderedRow& row : rows.value()) {
    if (row[0] == bound_value) ++expect;
  }
  if (expect != out.answers) {
    std::printf("MISMATCH: full restricted=%zu, magic=%zu for %s\n",
                expect, out.answers, goal.c_str());
    std::abort();
  }
  return out;
}

void PrintTable() {
  bench::Banner("MAGIC", "magic sets vs full fixpoint (derived facts)");
  std::printf("%-26s %-10s %-12s %-12s %-8s\n", "workload", "db seqs",
              "full facts", "magic facts", "ratio");

  for (size_t n : {16u, 64u, 256u}) {
    std::vector<std::string> dna = bench::RandomDna(7, n, 32);
    std::string needle = dna[0].substr(dna[0].size() - 6);
    Comparison c = Compare(programs::kSuffixes, false, dna, "r",
                           "?- suffix(" + needle + ").", "suffix", needle);
    std::printf("%-26s %-10zu %-12zu %-12zu %.1fx\n", "suffix membership",
                n, c.full_derived, c.magic_derived,
                static_cast<double>(c.full_derived) /
                    static_cast<double>(c.magic_derived ? c.magic_derived
                                                        : 1));
  }

  for (size_t n : {16u, 64u, 256u}) {
    std::vector<std::string> dna = bench::RandomDna(8, n, 24);
    Comparison c =
        Compare(programs::kGenomePipeline, true, dna, "dnaseq",
                "?- rnaseq(" + dna[n / 2] + ", X).", "rnaseq", dna[n / 2]);
    std::printf("%-26s %-10zu %-12zu %-12zu %.1fx\n",
                "genome point lookup", n, c.full_derived, c.magic_derived,
                static_cast<double>(c.full_derived) /
                    static_cast<double>(c.magic_derived ? c.magic_derived
                                                        : 1));
  }

  {
    std::vector<std::string> words;
    for (size_t k = 1; k <= 4; ++k) {
      words.push_back(std::string(k, 'a') + std::string(k, 'b') +
                      std::string(k, 'c'));
    }
    Comparison c = Compare(programs::kAbcN, false, words, "r",
                           "?- answer(" + words[2] + ").", "answer",
                           words[2]);
    std::printf("%-26s %-10zu %-12zu %-12zu %.1fx  (unbindable subgoal)\n",
                "a^n b^n c^n membership", words.size(), c.full_derived,
                c.magic_derived,
                static_cast<double>(c.full_derived) /
                    static_cast<double>(c.magic_derived ? c.magic_derived
                                                        : 1));
  }
  std::printf("(suffix and genome rows must stay >= 5x: the acceptance\n"
              " bar for demand evaluation on bound-argument workloads)\n");
}

void BM_FullFixpointSuffix(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<std::string> dna = bench::RandomDna(9, n, 32);
  for (auto _ : state) {
    Engine engine;
    if (!engine.LoadProgram(programs::kSuffixes).ok()) std::abort();
    for (const auto& d : dna) engine.AddFact("r", {d});
    eval::EvalOutcome outcome = engine.Evaluate();
    if (!outcome.status.ok()) std::abort();
    benchmark::DoNotOptimize(outcome.stats.facts);
  }
}
BENCHMARK(BM_FullFixpointSuffix)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);

void BM_MagicSuffixPointQuery(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<std::string> dna = bench::RandomDna(9, n, 32);
  std::string goal = "?- suffix(" + dna[0].substr(dna[0].size() - 6) + ").";
  Engine engine;
  if (!engine.LoadProgram(programs::kSuffixes).ok()) std::abort();
  for (const auto& d : dna) engine.AddFact("r", {d});
  for (auto _ : state) {
    SolveOutcome solved = engine.Solve(goal);
    if (!solved.status.ok()) std::abort();
    benchmark::DoNotOptimize(solved.answers.size());
  }
}
BENCHMARK(BM_MagicSuffixPointQuery)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);

void BM_FullFixpointGenome(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<std::string> dna = bench::RandomDna(10, n, 24);
  for (auto _ : state) {
    Engine engine;
    RegisterGenomeMachines(&engine);
    if (!engine.LoadProgram(programs::kGenomePipeline).ok()) std::abort();
    for (const auto& d : dna) engine.AddFact("dnaseq", {d});
    eval::EvalOutcome outcome = engine.Evaluate();
    if (!outcome.status.ok()) std::abort();
    benchmark::DoNotOptimize(outcome.stats.facts);
  }
}
BENCHMARK(BM_FullFixpointGenome)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);

void BM_MagicGenomePointLookup(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<std::string> dna = bench::RandomDna(10, n, 24);
  std::string goal = "?- rnaseq(" + dna[n / 2] + ", X).";
  Engine engine;
  RegisterGenomeMachines(&engine);
  if (!engine.LoadProgram(programs::kGenomePipeline).ok()) std::abort();
  for (const auto& d : dna) engine.AddFact("dnaseq", {d});
  for (auto _ : state) {
    SolveOutcome solved = engine.Solve(goal);
    if (!solved.status.ok()) std::abort();
    benchmark::DoNotOptimize(solved.answers.size());
  }
}
BENCHMARK(BM_MagicGenomePointLookup)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
