// LINT: cost of the static-analysis front end (analysis/lint.h) on the
// two flagship workloads — the genome pipeline (Examples 7.1/7.2) and
// the text-index program. Engine::LoadProgram runs the linter
// unconditionally, so its wall-clock sits on the load/prepare path of
// every embedding; this bench keeps that cost visible in the perf
// trajectory (BENCH_pr6.json). The shape to reproduce: linting is pure
// static analysis — independent of data size, well under a millisecond
// per program.
#include <benchmark/benchmark.h>

#include <string>

#include "analysis/lint.h"
#include "bench_util.h"
#include "core/engine.h"
#include "core/programs.h"
#include "parser/parser.h"

namespace {

using namespace seqlog;

analysis::LintOptions GenomeOptions() {
  analysis::LintOptions options;
  options.edb_predicates = {"dnaseq", "trans"};
  return options;
}

analysis::LintOptions TextIndexOptions() {
  analysis::LintOptions options;
  options.edb_predicates = {"doc"};
  return options;
}

void PrintTable() {
  bench::Banner("LINT", "linter cost on the flagship programs");
  std::printf("%-22s %-9s %-9s %-9s\n", "program", "errors", "warnings",
              "findings");
  struct Row {
    const char* name;
    const char* source;
    analysis::LintOptions options;
  } rows[] = {
      {"genome (Ex 7.1)", programs::kGenomePipeline, GenomeOptions()},
      {"transcribe (Ex 7.2)", programs::kTranscribeSimulation,
       GenomeOptions()},
      {"text-index", programs::kTextIndex, TextIndexOptions()},
  };
  for (Row& row : rows) {
    SymbolTable symbols;
    SequencePool pool;
    row.options.include_info = true;
    analysis::DiagnosticReport report =
        analysis::LintSource(row.source, &symbols, &pool, row.options);
    std::printf("%-22s %-9zu %-9zu %-9zu\n", row.name, report.ErrorCount(),
                report.WarningCount(), report.size());
  }
  std::printf("(Ex 7.2's error is the intended Definition 10 verdict: the\n"
              " hand-written transcription recurses through '++')\n");
}

// Full front end: parse + every lint pass, fresh tables per iteration
// (what `seqlog-lint file.sl` and the shell's `:check` pay).
void BM_LintSource(benchmark::State& state, const char* source,
                   const analysis::LintOptions& options) {
  for (auto _ : state) {
    SymbolTable symbols;
    SequencePool pool;
    analysis::DiagnosticReport report =
        analysis::LintSource(source, &symbols, &pool, options);
    benchmark::DoNotOptimize(report.size());
  }
}
BENCHMARK_CAPTURE(BM_LintSource, genome, programs::kGenomePipeline,
                  GenomeOptions());
BENCHMARK_CAPTURE(BM_LintSource, transcribe,
                  programs::kTranscribeSimulation, GenomeOptions());
BENCHMARK_CAPTURE(BM_LintSource, text_index, programs::kTextIndex,
                  TextIndexOptions());

// Passes only, on a pre-parsed program (what Engine::LoadProgram adds
// on top of parsing).
void BM_LintParsed(benchmark::State& state, const char* source,
                   const analysis::LintOptions& options) {
  SymbolTable symbols;
  SequencePool pool;
  ast::Program program =
      parser::ParseProgram(source, &symbols, &pool).value();
  for (auto _ : state) {
    analysis::DiagnosticReport report =
        analysis::Lint(program, pool, symbols, options);
    benchmark::DoNotOptimize(report.size());
  }
}
BENCHMARK_CAPTURE(BM_LintParsed, genome, programs::kGenomePipeline,
                  GenomeOptions());
BENCHMARK_CAPTURE(BM_LintParsed, text_index, programs::kTextIndex,
                  TextIndexOptions());

// The goal-dependent analysis alone (what each Engine::Prepare adds).
void BM_LintGoal(benchmark::State& state) {
  SymbolTable symbols;
  SequencePool pool;
  ast::Program program =
      parser::ParseProgram(programs::kTextIndex, &symbols, &pool).value();
  ast::Atom goal =
      parser::ParseGoal("hit(acgt, X)", &symbols, &pool).value();
  for (auto _ : state) {
    std::vector<analysis::Diagnostic> warnings =
        analysis::LintGoal(program, goal);
    benchmark::DoNotOptimize(warnings.size());
  }
}
BENCHMARK(BM_LintGoal);

// End to end: LoadProgram with the linter on the load path (the cost an
// embedding actually observes per program swap).
void BM_LoadProgramWithLint(benchmark::State& state) {
  for (auto _ : state) {
    Engine engine;
    Status status = engine.LoadProgram(programs::kTextIndex);
    if (!status.ok()) std::abort();
    benchmark::DoNotOptimize(engine.diagnostics().size());
  }
}
BENCHMARK(BM_LoadProgramWithLint);

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
