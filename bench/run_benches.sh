#!/usr/bin/env bash
#
# Runs every seqlog bench binary and aggregates their google-benchmark JSON
# reports into one trajectory file (default: BENCH_pr6.json at the repo
# root; BENCH_seed.json was the seed-state run, BENCH_pr4/pr5.json the
# earlier PR runs). Each binary first prints its paper-reproduction
# table; those tables are kept out of the JSON by sending the report
# through --benchmark_out. The aggregate includes the
# bench_parallel_eval thread-scaling series (1/2/8 threads per workload,
# with the measured fire_share/domain_share Amdahl counters per width)
# and the bench_lint linter-cost series on the load/prepare path.
#
# Usage: bench/run_benches.sh [BUILD_DIR] [OUT_JSON]
#   BUILD_DIR  cmake build directory containing bench/ (default: build)
#   OUT_JSON   aggregate output path (default: BENCH_pr6.json)
#
# Environment:
#   SEQLOG_BENCH_MIN_TIME  --benchmark_min_time per benchmark (default 0.05)
#   SEQLOG_BENCH_FILTER    optional --benchmark_filter regex
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build}"
OUT_JSON="${2:-$REPO_ROOT/BENCH_pr6.json}"
MIN_TIME="${SEQLOG_BENCH_MIN_TIME:-0.05}"

BENCH_DIR="$BUILD_DIR/bench"
if ! ls "$BENCH_DIR"/bench_* >/dev/null 2>&1; then
  echo "error: no bench binaries under $BENCH_DIR" >&2
  echo "build them first: cmake --build \"$BUILD_DIR\" --target bench_all" >&2
  exit 1
fi

TMP_DIR="$(mktemp -d)"
trap 'rm -rf "$TMP_DIR"' EXIT

for bin in "$BENCH_DIR"/bench_*; do
  [ -x "$bin" ] || continue
  name="$(basename "$bin")"
  echo "== ${name}"
  args=("--benchmark_out=${TMP_DIR}/${name}.json"
        "--benchmark_out_format=json"
        "--benchmark_min_time=${MIN_TIME}")
  if [ -n "${SEQLOG_BENCH_FILTER:-}" ]; then
    args+=("--benchmark_filter=${SEQLOG_BENCH_FILTER}")
  fi
  if ! "$bin" "${args[@]}" > "${TMP_DIR}/${name}.stdout" 2>&1; then
    echo "error: ${name} failed; tail of its output:" >&2
    tail -20 "${TMP_DIR}/${name}.stdout" >&2
    exit 1
  fi
done

python3 - "$TMP_DIR" "$OUT_JSON" <<'PY'
import json
import pathlib
import sys

tmp, out = pathlib.Path(sys.argv[1]), pathlib.Path(sys.argv[2])
agg = {"suite": "seqlog", "context": {}, "benchmarks": {}}
for path in sorted(tmp.glob("bench_*.json")):
    text = path.read_text()
    if not text.strip():
        # A --benchmark_filter that excludes every benchmark in a binary
        # leaves an empty report file behind; record it as zero timings.
        agg["benchmarks"][path.stem] = []
        continue
    report = json.loads(text)
    if not agg["context"]:
        agg["context"] = report.get("context", {})
    agg["benchmarks"][path.stem] = report.get("benchmarks", [])
out.write_text(json.dumps(agg, indent=2) + "\n")
timings = sum(len(v) for v in agg["benchmarks"].values())
print(f"wrote {out} ({len(agg['benchmarks'])} bench binaries, {timings} timings)")
PY
