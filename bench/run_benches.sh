#!/usr/bin/env bash
#
# Runs every seqlog bench binary and aggregates their google-benchmark JSON
# reports into one trajectory file (default: BENCH_pr10.json at the repo
# root; BENCH_seed.json was the seed-state run, BENCH_pr4..pr9.json the
# earlier PR runs). Each binary first prints its paper-reproduction
# table; those tables are kept out of the JSON by sending the report
# through --benchmark_out. The aggregate includes the
# bench_parallel_eval thread-scaling series, the bench_lint linter-cost
# series, the bench_serve batch-amortisation rows (PR7), the bench_ivm
# incremental-vs-cold maintenance rows (PR8), and a "loadgen" section of
# closed-loop serving measurements: seqlog-serve is started on an
# ephemeral loopback port and seqlog-loadgen drives the text-index and
# genome workloads in exec, batch, and (PR8) mixed read/write mode —
# the mixed rows carry separate read_*/write_* percentiles so read-path
# latency under a live write stream is checkable from the JSON
# (tools/seqlog_loadgen.cc). The loadgen section is skipped with a note
# when the tools are not built. PR10 adds the bench_transducer_compile
# rows (compiled/fused vs interpreted transducer networks); that binary
# enforces its >= 3x fused-speedup bar in-process and fails the run
# when missed.
#
# Usage: bench/run_benches.sh [BUILD_DIR] [OUT_JSON]
#   BUILD_DIR  cmake build directory containing bench/ (default: build)
#   OUT_JSON   aggregate output path (default: BENCH_pr10.json)
#
# Environment:
#   SEQLOG_BENCH_MIN_TIME  --benchmark_min_time per benchmark (default 0.05)
#   SEQLOG_BENCH_FILTER    optional --benchmark_filter regex
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build}"
OUT_JSON="${2:-$REPO_ROOT/BENCH_pr10.json}"
MIN_TIME="${SEQLOG_BENCH_MIN_TIME:-0.05}"

BENCH_DIR="$BUILD_DIR/bench"
if ! ls "$BENCH_DIR"/bench_* >/dev/null 2>&1; then
  echo "error: no bench binaries under $BENCH_DIR" >&2
  echo "build them first: cmake --build \"$BUILD_DIR\" --target bench_all" >&2
  exit 1
fi

TMP_DIR="$(mktemp -d)"
trap 'rm -rf "$TMP_DIR"' EXIT

for bin in "$BENCH_DIR"/bench_*; do
  [ -x "$bin" ] || continue
  name="$(basename "$bin")"
  echo "== ${name}"
  args=("--benchmark_out=${TMP_DIR}/${name}.json"
        "--benchmark_out_format=json"
        "--benchmark_min_time=${MIN_TIME}")
  if [ -n "${SEQLOG_BENCH_FILTER:-}" ]; then
    args+=("--benchmark_filter=${SEQLOG_BENCH_FILTER}")
  fi
  if ! "$bin" "${args[@]}" > "${TMP_DIR}/${name}.stdout" 2>&1; then
    echo "error: ${name} failed; tail of its output:" >&2
    tail -20 "${TMP_DIR}/${name}.stdout" >&2
    exit 1
  fi
done

# --- Closed-loop serving measurements (tools/seqlog_loadgen.cc) ------
SERVE_BIN="$BUILD_DIR/tools/seqlog-serve"
LOADGEN_BIN="$BUILD_DIR/tools/seqlog-loadgen"
if [ -x "$SERVE_BIN" ] && [ -x "$LOADGEN_BIN" ]; then
  for workload in text genome; do
    echo "== loadgen ${workload}"
    SERVE_OUT="$TMP_DIR/serve_${workload}.out"
    "$SERVE_BIN" --workload="$workload" --port=0 --sessions=4 \
      >"$SERVE_OUT" 2>&1 &
    SERVER_PID=$!
    PORT=""
    for _ in $(seq 1 100); do
      PORT="$(sed -n 's/.*listening on [0-9.]*:\([0-9]*\).*/\1/p' \
        "$SERVE_OUT" | head -1)"
      [ -n "$PORT" ] && break
      kill -0 "$SERVER_PID" 2>/dev/null || break
      sleep 0.1
    done
    if [ -z "$PORT" ]; then
      echo "error: seqlog-serve (${workload}) did not come up" >&2
      cat "$SERVE_OUT" >&2
      exit 1
    fi
    "$LOADGEN_BIN" --port="$PORT" --workload="$workload" --mode=exec \
      --connections=4 --requests=100 --json \
      > "$TMP_DIR/loadgen_${workload}_exec.json"
    "$LOADGEN_BIN" --port="$PORT" --workload="$workload" --mode=batch \
      --batch-size=32 --connections=2 --requests=20 --json \
      > "$TMP_DIR/loadgen_${workload}_batch.json"
    # Mixed read/write: a quarter of the requests are FACT writes staged
    # on the live-ingest queue; each writer ends with a PUBLISH drain.
    "$LOADGEN_BIN" --port="$PORT" --workload="$workload" --mode=exec \
      --connections=4 --requests=100 --write-mix=0.25 --json \
      > "$TMP_DIR/loadgen_${workload}_mixed.json"
    kill -TERM "$SERVER_PID"
    wait "$SERVER_PID"
  done
else
  echo "note: serving tools not built; skipping loadgen rows" >&2
fi

python3 - "$TMP_DIR" "$OUT_JSON" <<'PY'
import json
import pathlib
import sys

tmp, out = pathlib.Path(sys.argv[1]), pathlib.Path(sys.argv[2])
agg = {"suite": "seqlog", "context": {}, "benchmarks": {}, "loadgen": []}
for path in sorted(tmp.glob("loadgen_*.json")):
    agg["loadgen"].append(json.loads(path.read_text()))
for path in sorted(tmp.glob("bench_*.json")):
    text = path.read_text()
    if not text.strip():
        # A --benchmark_filter that excludes every benchmark in a binary
        # leaves an empty report file behind; record it as zero timings.
        agg["benchmarks"][path.stem] = []
        continue
    report = json.loads(text)
    if not agg["context"]:
        agg["context"] = report.get("context", {})
    agg["benchmarks"][path.stem] = report.get("benchmarks", [])
out.write_text(json.dumps(agg, indent=2) + "\n")
timings = sum(len(v) for v in agg["benchmarks"].values())
print(f"wrote {out} ({len(agg['benchmarks'])} bench binaries, {timings} "
      f"timings, {len(agg['loadgen'])} loadgen rows)")
PY
