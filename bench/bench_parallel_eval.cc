// PAR: thread scaling of the parallel semi-naive evaluator
// (EvalOptions::num_threads, eval/engine.cc). Three fixpoint workloads
// with very different parallel fractions:
//
//  * rep1    — Example 1.5's structural repeats (the bench_ex15 family):
//              rounds are inverse-suffix scans over domain length
//              buckets, ~95% of wall-clock is clause firing.
//  * abcn    — Example 1.3's a^n b^n c^n pattern (the bench_ex13
//              family): three-way structural recursion, ~90% firing.
//  * genome  — Example 7.1's DNA -> RNA -> protein pipeline (the
//              bench_ex71 family): the transducer runs are cheap; the
//              cost is the domain closure of the derived sequences.
//              Serial runs pay it single-writer at the barrier; parallel
//              runs pre-intern the spans inside the firing phase and
//              shard the barrier's membership dedup, so the serial
//              closure share collapses (docs/CONCURRENCY.md) and the
//              Amdahl ceiling opens up.
//
// The reproduction table prints, per workload and thread count: wall
// clock, the measured phase split (fire share = stats.fire_millis /
// stats.millis, closure share = stats.domain_millis / stats.millis —
// both are measured, not inferred), the Amdahl ceiling 1/((1-f)+f/8)
// using the parallel-mode fire share, and the measured speedup.
// Measured speedup is additionally capped by the cores actually present
// — on a single-core host every row reports ~1x regardless of f, but
// the phase shares still show the serial bottleneck moving.
//
// The same shares are exported as google-benchmark counters
// (fire_share / domain_share), so the committed BENCH_pr5.json records
// the Amdahl trajectory per thread count.
#include <benchmark/benchmark.h>

#include <string_view>
#include <utility>

#include "base/thread_pool.h"
#include "bench_util.h"
#include "core/engine.h"
#include "core/programs.h"
#include "transducer/genome.h"

namespace {

using namespace seqlog;

std::unique_ptr<Engine> MakeRep1Engine() {
  auto engine = std::make_unique<Engine>();
  if (!engine->LoadProgram(programs::kRep1).ok()) std::abort();
  for (const auto& s : bench::RandomSequences(5, 28, 20, "ab")) {
    if (!engine->AddFact("rep1", {s, s}).ok()) std::abort();
  }
  return engine;
}

std::unique_ptr<Engine> MakeAbcnEngine() {
  auto engine = std::make_unique<Engine>();
  if (!engine->LoadProgram(programs::kAbcN).ok()) std::abort();
  for (const auto& s : bench::RandomSequences(9, 30, 18, "abc")) {
    if (!engine->AddFact("r", {s}).ok()) std::abort();
  }
  // Guarantee some full a^n b^n c^n matches among the noise.
  if (!engine->AddFact("r", {"aaaaaabbbbbbcccccc"}).ok()) std::abort();
  if (!engine->AddFact("r", {"aaabbbccc"}).ok()) std::abort();
  return engine;
}

std::unique_ptr<Engine> MakeGenomeEngine() {
  auto engine = std::make_unique<Engine>();
  auto transcribe =
      transducer::MakeTranscribe("transcribe", engine->symbols());
  auto translate =
      transducer::MakeTranslate("translate", engine->symbols());
  if (!transcribe.ok() || !translate.ok()) std::abort();
  if (!engine->RegisterTransducer(transcribe.value()).ok()) std::abort();
  if (!engine->RegisterTransducer(translate.value()).ok()) std::abort();
  if (!engine->LoadProgram(programs::kGenomePipeline).ok()) std::abort();
  for (const auto& d : bench::RandomDna(17, 32, 64)) {
    if (!engine->AddFact("dnaseq", {d}).ok()) std::abort();
  }
  return engine;
}

std::unique_ptr<Engine> MakeEngine(std::string_view workload) {
  if (workload == "rep1") return MakeRep1Engine();
  if (workload == "abcn") return MakeAbcnEngine();
  return MakeGenomeEngine();
}

eval::EvalOutcome Run(Engine* engine, size_t threads) {
  eval::EvalOptions options;
  options.num_threads = threads;
  return engine->Evaluate(options);
}

double Share(const eval::EvalStats& stats, double part) {
  return stats.millis > 0 ? part / stats.millis : 0;
}

void PrintTable() {
  bench::Banner("PAR", "parallel semi-naive thread scaling (Section 3.3)");
  std::printf("host hardware threads: %zu (measured speedup is capped by"
              " this)\n",
              ThreadPool::HardwareThreads());
  std::printf("%-9s %-9s %-10s %-10s %-8s %-9s %-11s %-9s\n", "workload",
              "threads", "millis", "facts", "fire", "closure", "ceiling@8",
              "speedup");
  for (const char* workload : {"rep1", "abcn", "genome"}) {
    double serial_millis = 0;
    size_t serial_facts = 0;
    for (size_t threads : {1u, 2u, 8u}) {
      auto engine = MakeEngine(workload);
      eval::EvalOutcome outcome = Run(engine.get(), threads);
      if (!outcome.status.ok()) std::abort();
      if (threads == 1) {
        serial_millis = outcome.stats.millis;
        serial_facts = outcome.stats.facts;
      }
      if (outcome.stats.facts != serial_facts) {
        std::printf("MODEL MISMATCH at %zu threads!\n", threads);
        std::abort();
      }
      // The fire share at this width is the measured parallel fraction;
      // serial runs do the closure at the barrier, parallel runs absorb
      // it into the firing phase via pre-interning, so the genome row's
      // f jumps between the threads=1 and threads>1 lines.
      double fire = Share(outcome.stats, outcome.stats.fire_millis);
      std::printf("%-9s %-9zu %-10.2f %-10zu %-8.2f %-9.2f %-11.2f"
                  " %-9.2f\n",
                  workload, threads, outcome.stats.millis,
                  outcome.stats.facts, fire,
                  Share(outcome.stats, outcome.stats.domain_millis()),
                  1.0 / ((1.0 - fire) + fire / 8.0),
                  serial_millis / outcome.stats.millis);
    }
  }
  std::printf("(models are identical at every width; fire/closure are the"
              " measured fire_millis/domain_millis shares of wall-clock —"
              " at threads>1 the closure moves into the parallel firing"
              " phase, so the closure column collapsing is the point)\n");
}

/// Shared benchmark body: evaluates `workload` at `state.range(0)`
/// threads and exports the measured phase split as counters, so the
/// committed BENCH json carries fire_share/domain_share per width.
void RunFixpointBenchmark(benchmark::State& state,
                          std::string_view workload) {
  size_t threads = static_cast<size_t>(state.range(0));
  auto engine = MakeEngine(workload);
  eval::EvalStats last;
  for (auto _ : state) {
    eval::EvalOutcome outcome = Run(engine.get(), threads);
    if (!outcome.status.ok()) std::abort();
    benchmark::DoNotOptimize(outcome.stats.facts);
    last = std::move(outcome.stats);
  }
  state.counters["fire_share"] = Share(last, last.fire_millis);
  state.counters["domain_share"] = Share(last, last.domain_millis());
  state.counters["domain_load_share"] =
      Share(last, last.domain_load_millis);
  state.counters["domain_merge_share"] =
      Share(last, last.domain_merge_millis);
  // Row-merge phase of the round barrier (Database::MergeFromAll).
  // Shard-parallel at threads>1, so this share falling while models
  // stay identical is the sharded-relation payoff.
  state.counters["relation_merge_share"] =
      Share(last, last.relation_merge_millis);
}

void BM_Rep1Fixpoint(benchmark::State& state) {
  RunFixpointBenchmark(state, "rep1");
}
BENCHMARK(BM_Rep1Fixpoint)->Arg(1)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_AbcnFixpoint(benchmark::State& state) {
  RunFixpointBenchmark(state, "abcn");
}
BENCHMARK(BM_AbcnFixpoint)->Arg(1)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_GenomeFixpoint(benchmark::State& state) {
  RunFixpointBenchmark(state, "genome");
}
BENCHMARK(BM_GenomeFixpoint)->Arg(1)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
