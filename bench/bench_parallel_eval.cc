// PAR: thread scaling of the parallel semi-naive evaluator
// (EvalOptions::num_threads, eval/engine.cc). Three fixpoint workloads
// with very different parallel fractions:
//
//  * rep1    — Example 1.5's structural repeats (the bench_ex15 family):
//              rounds are inverse-suffix scans over domain length
//              buckets, ~95% of wall-clock is clause firing.
//  * abcn    — Example 1.3's a^n b^n c^n pattern (the bench_ex13
//              family): three-way structural recursion, ~90% firing.
//  * genome  — Example 7.1's DNA -> RNA -> protein pipeline (the
//              bench_ex71 family): the transducer runs are cheap; almost
//              all time is the single-writer domain closure of the
//              derived sequences, so this row honestly reports ~1x and
//              documents the Amdahl bound (ROADMAP lists the follow-up).
//
// The reproduction table prints, per workload: the parallel fraction f
// (stats.fire_millis / stats.millis at one thread), the Amdahl ceiling
// 1/((1-f)+f/8) for eight threads, and the measured speedup per thread
// count. Measured speedup is additionally capped by the cores actually
// present — on a single-core host every row reports ~1x regardless of f.
#include <benchmark/benchmark.h>

#include "base/thread_pool.h"
#include "bench_util.h"
#include "core/engine.h"
#include "core/programs.h"
#include "transducer/genome.h"

namespace {

using namespace seqlog;

std::unique_ptr<Engine> MakeRep1Engine() {
  auto engine = std::make_unique<Engine>();
  if (!engine->LoadProgram(programs::kRep1).ok()) std::abort();
  for (const auto& s : bench::RandomSequences(5, 28, 20, "ab")) {
    if (!engine->AddFact("rep1", {s, s}).ok()) std::abort();
  }
  return engine;
}

std::unique_ptr<Engine> MakeAbcnEngine() {
  auto engine = std::make_unique<Engine>();
  if (!engine->LoadProgram(programs::kAbcN).ok()) std::abort();
  for (const auto& s : bench::RandomSequences(9, 30, 18, "abc")) {
    if (!engine->AddFact("r", {s}).ok()) std::abort();
  }
  // Guarantee some full a^n b^n c^n matches among the noise.
  if (!engine->AddFact("r", {"aaaaaabbbbbbcccccc"}).ok()) std::abort();
  if (!engine->AddFact("r", {"aaabbbccc"}).ok()) std::abort();
  return engine;
}

std::unique_ptr<Engine> MakeGenomeEngine() {
  auto engine = std::make_unique<Engine>();
  auto transcribe =
      transducer::MakeTranscribe("transcribe", engine->symbols());
  auto translate =
      transducer::MakeTranslate("translate", engine->symbols());
  if (!transcribe.ok() || !translate.ok()) std::abort();
  if (!engine->RegisterTransducer(transcribe.value()).ok()) std::abort();
  if (!engine->RegisterTransducer(translate.value()).ok()) std::abort();
  if (!engine->LoadProgram(programs::kGenomePipeline).ok()) std::abort();
  for (const auto& d : bench::RandomDna(17, 32, 64)) {
    if (!engine->AddFact("dnaseq", {d}).ok()) std::abort();
  }
  return engine;
}

std::unique_ptr<Engine> MakeEngine(std::string_view workload) {
  if (workload == "rep1") return MakeRep1Engine();
  if (workload == "abcn") return MakeAbcnEngine();
  return MakeGenomeEngine();
}

eval::EvalOutcome Run(Engine* engine, size_t threads) {
  eval::EvalOptions options;
  options.num_threads = threads;
  return engine->Evaluate(options);
}

void PrintTable() {
  bench::Banner("PAR", "parallel semi-naive thread scaling (Section 3.3)");
  std::printf("host hardware threads: %zu (measured speedup is capped by"
              " this)\n",
              ThreadPool::HardwareThreads());
  std::printf("%-9s %-9s %-10s %-10s %-7s %-11s %-9s\n", "workload",
              "threads", "millis", "facts", "par f", "ceiling@8", "speedup");
  for (const char* workload : {"rep1", "abcn", "genome"}) {
    double serial_millis = 0;
    double fraction = 0;
    size_t serial_facts = 0;
    for (size_t threads : {1u, 2u, 8u}) {
      auto engine = MakeEngine(workload);
      eval::EvalOutcome outcome = Run(engine.get(), threads);
      if (!outcome.status.ok()) std::abort();
      if (threads == 1) {
        serial_millis = outcome.stats.millis;
        serial_facts = outcome.stats.facts;
        fraction = outcome.stats.millis > 0
                       ? outcome.stats.fire_millis / outcome.stats.millis
                       : 0;
      }
      if (outcome.stats.facts != serial_facts) {
        std::printf("MODEL MISMATCH at %zu threads!\n", threads);
        std::abort();
      }
      std::printf("%-9s %-9zu %-10.2f %-10zu %-7.2f %-11.2f %-9.2f\n",
                  workload, threads, outcome.stats.millis,
                  outcome.stats.facts, fraction,
                  1.0 / ((1.0 - fraction) + fraction / 8.0),
                  serial_millis / outcome.stats.millis);
    }
  }
  std::printf("(models are identical at every width; rep1/abcn rounds are"
              " matching-bound and scale, genome is closure-bound and"
              " does not — see ROADMAP open items)\n");
}

void BM_Rep1Fixpoint(benchmark::State& state) {
  size_t threads = static_cast<size_t>(state.range(0));
  auto engine = MakeRep1Engine();
  for (auto _ : state) {
    eval::EvalOutcome outcome = Run(engine.get(), threads);
    if (!outcome.status.ok()) std::abort();
    benchmark::DoNotOptimize(outcome.stats.facts);
  }
}
BENCHMARK(BM_Rep1Fixpoint)->Arg(1)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_AbcnFixpoint(benchmark::State& state) {
  size_t threads = static_cast<size_t>(state.range(0));
  auto engine = MakeAbcnEngine();
  for (auto _ : state) {
    eval::EvalOutcome outcome = Run(engine.get(), threads);
    if (!outcome.status.ok()) std::abort();
    benchmark::DoNotOptimize(outcome.stats.facts);
  }
}
BENCHMARK(BM_AbcnFixpoint)->Arg(1)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_GenomeFixpoint(benchmark::State& state) {
  size_t threads = static_cast<size_t>(state.range(0));
  auto engine = MakeGenomeEngine();
  for (auto _ : state) {
    eval::EvalOutcome outcome = Run(engine.get(), threads);
    if (!outcome.status.ok()) std::abort();
    benchmark::DoNotOptimize(outcome.stats.facts);
  }
}
BENCHMARK(BM_GenomeFixpoint)->Arg(1)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
