// THM1: Theorem 1 — Sequence Datalog expresses every computable sequence
// function, by simulating Turing machines with conf/4 rules. The
// reproduction table runs the generated programs against the direct TM
// runner: one conf fact per reachable configuration, identical outputs.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/engine.h"
#include "tm/machines.h"
#include "tm/turing.h"
#include "translate/tm_to_sd.h"

namespace {

using namespace seqlog;

std::string StripBlanks(std::string s) {
  while (!s.empty() && s.back() == '_') s.pop_back();
  return s;
}

void PrintTable() {
  bench::Banner("THM1", "Turing machine -> Sequence Datalog (Theorem 1)");
  std::printf("%-18s %-8s %-10s %-9s %-9s %-8s %s\n", "machine", "input",
              "tm steps", "sd iters", "facts", "match", "millis");
  Engine shared;
  struct Workload {
    tm::TuringMachine machine;
    std::vector<std::string> inputs;
  };
  std::vector<Workload> workloads;
  workloads.push_back({tm::MakeBitFlip(shared.symbols()),
                       {"0101", "00110011", "1111111111111111"}});
  workloads.push_back({tm::MakeBinaryIncrement(shared.symbols()),
                       {"0111", "010101", "00111111"}});
  workloads.push_back({tm::MakeUnaryDouble(shared.symbols()),
                       {"111", "11111", "1111111"}});

  for (const Workload& w : workloads) {
    for (const std::string& in : w.inputs) {
      // Direct run.
      std::vector<Symbol> input;
      for (char c : in) {
        input.push_back(shared.symbols()->Intern(std::string_view(&c, 1)));
      }
      auto direct = tm::RunMachine(w.machine, input, 1000000);
      if (!direct.ok()) std::abort();
      std::string expected = shared.pool()->Render(
          shared.pool()->Intern(tm::ExtractOutput(w.machine, *direct)),
          *shared.symbols());

      // Datalog simulation in the same engine: the machines' state and
      // tape symbols live in `shared`'s symbol table, so the generated
      // program must be interned and evaluated there too.
      auto program = translate::TmToSequenceDatalog(
          w.machine, shared.pool(), "input", "output");
      if (!program.ok()) std::abort();
      if (!shared.LoadProgramAst(program.value()).ok()) std::abort();
      shared.ClearFacts();
      if (!shared.AddFact("input", {in}).ok()) std::abort();
      eval::EvalOptions options;
      options.limits.max_iterations = 1000000;
      eval::EvalOutcome outcome = shared.Evaluate(options);
      if (!outcome.status.ok()) std::abort();
      auto rows = shared.Query("output");
      bool match = false;
      for (const auto& row : rows.value()) {
        if (StripBlanks(row[0]) == expected) match = true;
      }
      std::printf("%-18s %-8s %-10zu %-9zu %-9zu %-8s %.2f\n",
                  w.machine.name.c_str(), in.c_str(), direct->steps,
                  outcome.stats.iterations, outcome.stats.facts,
                  match ? "yes" : "NO", outcome.stats.millis);
      if (!match) std::abort();
    }
  }
  std::printf("(sd iters tracks tm steps: the program derives one new"
              " configuration per iteration)\n");
}

void BM_TmSimulation(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    Engine engine;
    tm::TuringMachine machine = tm::MakeBitFlip(engine.symbols());
    auto program = translate::TmToSequenceDatalog(machine, engine.pool(),
                                                  "input", "output");
    if (!engine.LoadProgramAst(program.value()).ok()) std::abort();
    engine.AddFact("input", {std::string(n, '1')});
    eval::EvalOptions options;
    options.limits.max_iterations = 100000;
    eval::EvalOutcome outcome = engine.Evaluate(options);
    benchmark::DoNotOptimize(outcome.stats.facts);
  }
}
BENCHMARK(BM_TmSimulation)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
