// THM9: Theorem 9 — strongly safe programs of order 3 still have finite
// models, but their size can be hyperexponential in database size. The
// table runs a one-rule program with the order-3 double-exp machine on
// single sequences of growing length: the model stays finite (strong
// safety!) while its size explodes doubly exponentially.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/engine.h"
#include "transducer/library.h"

namespace {

using namespace seqlog;

eval::EvalOutcome RunOrder3(size_t n, size_t* domain, bool* ok) {
  Engine engine;
  auto dexp = transducer::MakeDoubleExp("dexp");
  if (!engine.RegisterTransducer(dexp.value()).ok()) std::abort();
  if (!engine.LoadProgram("big(@dexp(X)) :- r(X).\n").ok()) std::abort();
  analysis::SafetyReport report = engine.AnalyzeSafety();
  if (!report.strongly_safe) std::abort();
  engine.AddFact("r", {std::string(n, 'a')});
  eval::EvalOptions options;
  options.strategy = eval::Strategy::kStratified;
  // n=3 produces a 21609-symbol output; its subsequence closure has
  // ~2.3e8 slots (21610 distinct for a uniform sequence, but the
  // closure enumeration still walks every (from,len) pair). Cap both
  // the sequence length and the domain so the blow-up is *reported*
  // rather than materialised.
  options.limits.max_sequence_length = 2000;
  options.limits.max_domain_sequences = 2'000'000;
  eval::EvalOutcome outcome = engine.Evaluate(options);
  *domain = outcome.stats.domain_sequences;
  *ok = outcome.status.ok();
  return outcome;
}

void PrintTable() {
  bench::Banner("THM9",
                "strongly safe order-3: hyperexponential models"
                " (Theorem 9)");
  std::printf("program: big(@dexp(X)) :- r(X).   (dexp has order 3)\n");
  std::printf("%-4s %-16s %-14s %s\n", "n", "|dexp(a^n)|",
              "domain size", "status");
  for (size_t n : {1u, 2u, 3u}) {
    size_t predicted = 0;
    for (size_t i = 0; i < n; ++i) {
      predicted = (n + predicted) * (n + predicted);
    }
    size_t domain = 0;
    bool ok = false;
    eval::EvalOutcome outcome = RunOrder3(n, &domain, &ok);
    std::printf("%-4zu %-16zu %-14zu %s\n", n, predicted, domain,
                outcome.status.ok() ? "finite (Corollary 2)"
                                    : outcome.status.ToString().c_str());
  }
  std::printf("(n=3 creates a 21609-symbol sequence; the length budget"
              " documents the hyperexponential blow-up without"
              " materialising its domain closure — n=4 would need"
              " ~7e20 domain sequences)\n");
}

void BM_Order3Model(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    size_t domain = 0;
    bool ok = false;
    eval::EvalOutcome outcome = RunOrder3(n, &domain, &ok);
    benchmark::DoNotOptimize(outcome.stats.facts);
  }
}
BENCHMARK(BM_Order3Model)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
