#!/usr/bin/env python3
"""Documentation checker: intra-repo links + runnable shell transcripts.

Two checks, both run by the `docs` CI job (and locally via
`python3 tools/check_docs.py --shell build/examples/seqlog_shell`):

1. **Links** — every relative markdown link `[text](path)` in the
   repo's markdown files must point at an existing file or directory.
   External links (`http...`), mailto and pure in-page anchors are
   skipped; `path#anchor` is checked for the `path` part only.

2. **Transcripts** — every fenced code block tagged ``seqlog-shell`` in
   `docs/*.md` is executed against the real `seqlog_shell` binary.
   Blocks look exactly like an interactive session:

       ```seqlog-shell
       seqlog> suffix(X[N:end]) :- r(X).
       seqlog> +r acgt
       seqlog> :run
       fixpoint: 11 facts, 11 domain sequences, 2 iterations, * ms
       ```

   Lines starting with ``seqlog> `` are fed to the shell's stdin (in
   order, with a final ``:quit`` appended); the lines between two
   prompts are the expected output of the preceding command. Expected
   lines may use ``*`` as a wildcard matching any run of characters
   (timings, for example, are not deterministic). Each block runs in a
   fresh shell process, so blocks are independent and self-contained.

Exit status is non-zero when any link is broken or any transcript
diverges, with a per-failure diagnostic.
"""

import argparse
import pathlib
import re
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FENCE_RE = re.compile(r"^```(\S*)\s*$")

# Directories that hold markdown worth checking (build trees excluded).
MARKDOWN_GLOBS = ["*.md", "docs/**/*.md", "src/**/*.md", "tests/**/*.md",
                  "bench/**/*.md", "examples/**/*.md", "tools/**/*.md"]


def markdown_files():
    seen = set()
    for glob in MARKDOWN_GLOBS:
        for path in REPO_ROOT.glob(glob):
            if any(part.startswith("build") for part in path.parts):
                continue
            seen.add(path)
    return sorted(seen)


def check_links():
    """Returns a list of 'file: broken link' diagnostics."""
    errors = []
    for md in markdown_files():
        text = md.read_text(encoding="utf-8")
        for match in LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            if path_part.startswith("/"):
                errors.append(f"{md.relative_to(REPO_ROOT)}: absolute link"
                              f" '{target}' (use repo-relative paths)")
                continue
            resolved = (md.parent / path_part).resolve()
            if not resolved.exists():
                errors.append(f"{md.relative_to(REPO_ROOT)}: broken link"
                              f" '{target}'")
    return errors


def parse_transcript(block_lines):
    """Splits a transcript block into [(command, [expected lines])]."""
    steps = []
    for line in block_lines:
        if line.startswith("seqlog> "):
            steps.append((line[len("seqlog> "):], []))
        elif steps:
            steps[-1][1].append(line)
        elif line.strip():
            raise ValueError(f"output line before first prompt: {line!r}")
    return steps


def wildcard_match(expected, actual):
    """Literal match except '*' matches any (possibly empty) run."""
    parts = expected.split("*")
    if len(parts) == 1:
        return expected == actual
    pos = 0
    for i, part in enumerate(parts):
        if i == 0:
            if not actual.startswith(part):
                return False
            pos = len(part)
        elif i == len(parts) - 1:
            return part == "" or actual.endswith(part) and \
                len(actual) - len(part) >= pos
        else:
            found = actual.find(part, pos)
            if found < 0:
                return False
            pos = found + len(part)
    return True


def run_transcript(shell, steps, source):
    """Runs one block; returns a list of diagnostics (empty = pass)."""
    stdin = "".join(cmd + "\n" for cmd, _ in steps) + ":quit\n"
    try:
        proc = subprocess.run([str(shell)], input=stdin, text=True,
                              capture_output=True, timeout=120)
    except subprocess.TimeoutExpired:
        return [f"{source}: shell timed out"]
    if proc.returncode != 0:
        return [f"{source}: shell exited {proc.returncode}:"
                f" {proc.stderr.strip()}"]
    # stdout is banner + per-command output, delimited by the prompt.
    segments = proc.stdout.split("seqlog> ")
    # segments[0] is the banner, segments[i] is the output of command i;
    # the :quit we appended contributes a final (empty) segment.
    if len(segments) < len(steps) + 1:
        return [f"{source}: expected {len(steps)} command outputs, shell"
                f" produced {len(segments) - 1}"]
    errors = []
    for i, (cmd, expected) in enumerate(steps):
        actual = [l for l in segments[i + 1].split("\n") if l != ""]
        if len(actual) != len(expected):
            errors.append(
                f"{source}: after '{cmd}': expected {len(expected)}"
                f" line(s), got {len(actual)}:\n    expected: {expected}"
                f"\n    actual:   {actual}")
            continue
        for exp, act in zip(expected, actual):
            if not wildcard_match(exp, act):
                errors.append(f"{source}: after '{cmd}':\n"
                              f"    expected: {exp}\n    actual:   {act}")
    return errors


def check_transcripts(shell):
    errors = []
    count = 0
    for md in markdown_files():
        if md.parent.name != "docs":
            continue
        lines = md.read_text(encoding="utf-8").splitlines()
        block, in_block, start = [], False, 0
        for lineno, line in enumerate(lines, 1):
            fence = FENCE_RE.match(line)
            if fence and not in_block and fence.group(1) == "seqlog-shell":
                in_block, block, start = True, [], lineno
            elif fence and in_block:
                in_block = False
                count += 1
                source = f"{md.relative_to(REPO_ROOT)}:{start}"
                try:
                    steps = parse_transcript(block)
                except ValueError as err:
                    errors.append(f"{source}: {err}")
                    continue
                errors.extend(run_transcript(shell, steps, source))
            elif in_block:
                block.append(line)
    return errors, count


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--shell", type=pathlib.Path,
                        help="path to the built seqlog_shell binary; "
                             "transcript checks are skipped when omitted")
    args = parser.parse_args()

    errors = check_links()
    print(f"checked links in {len(markdown_files())} markdown files:"
          f" {len(errors)} broken")

    if args.shell is not None:
        if not args.shell.exists():
            print(f"error: shell binary {args.shell} not found",
                  file=sys.stderr)
            return 2
        transcript_errors, count = check_transcripts(args.shell)
        print(f"ran {count} shell transcript(s):"
              f" {len(transcript_errors)} failure(s)")
        errors.extend(transcript_errors)
    else:
        print("no --shell given: transcript checks skipped")

    for error in errors:
        print(f"FAIL {error}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
