// seqlog-lint: command-line linter for Sequence/Transducer Datalog
// programs (the CLI surface of analysis/lint.h).
//
//   seqlog-lint [options] file.sl [file2.sl ...]
//   seqlog-lint -                       # read one program from stdin
//
// Options:
//   --format=text|json   output format (default text)
//   --goal='?- p(X).'    enable the goal-dependent passes
//                        (SL-W031 unused, SL-W050 unreachable,
//                         SL-W051 unbindable)
//   --edb=p,q,...        declare extensional predicates (suppresses
//                        SL-W030 undefined-predicate for them)
//   --info               also emit the positive SL-Ixxx findings
//   --list-passes        print the pass/code registry and exit
//
// Exit status: 0 when no file has error-severity diagnostics, 1 when
// any does (warnings alone do not fail), 2 on usage errors. The CI job
// lints every program embedded in examples/ and docs/LANGUAGE.md with
// --format=json and gates on the exit status.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/lint.h"
#include "base/string_util.h"
#include "parser/parser.h"
#include "sequence/sequence_pool.h"
#include "sequence/symbol_table.h"

namespace {

using seqlog::analysis::DiagnosticReport;
using seqlog::analysis::LintOptions;

struct Args {
  std::string format = "text";
  std::string goal;
  std::vector<std::string> edb;
  bool info = false;
  bool list_passes = false;
  std::vector<std::string> files;
};

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--format=", 0) == 0) {
      args->format = arg.substr(9);
      if (args->format != "text" && args->format != "json") {
        std::cerr << "seqlog-lint: unknown format '" << args->format
                  << "' (expected text or json)\n";
        return false;
      }
    } else if (arg.rfind("--goal=", 0) == 0) {
      args->goal = arg.substr(7);
    } else if (arg.rfind("--edb=", 0) == 0) {
      for (const std::string& p : seqlog::Split(arg.substr(6), ',')) {
        if (!p.empty()) args->edb.push_back(p);
      }
    } else if (arg == "--info") {
      args->info = true;
    } else if (arg == "--list-passes") {
      args->list_passes = true;
    } else if (arg == "--help" || arg == "-h") {
      return false;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "seqlog-lint: unknown option '" << arg << "'\n";
      return false;
    } else {
      args->files.push_back(arg);
    }
  }
  return args->list_passes || !args->files.empty();
}

void Usage() {
  std::cerr
      << "usage: seqlog-lint [--format=text|json] [--goal='?- p(X).']\n"
         "                   [--edb=p,q,...] [--info] [--list-passes]\n"
         "                   file.sl [file2.sl ...] | -\n";
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    Usage();
    return 2;
  }
  if (args.list_passes) {
    for (const seqlog::analysis::LintPassInfo& pass :
         seqlog::analysis::LintPasses()) {
      std::cout << pass.name << ": " << pass.codes << "\n";
    }
    return 0;
  }

  bool any_errors = false;
  bool first_json = true;
  if (args.format == "json") std::cout << "[";
  for (const std::string& file : args.files) {
    std::string source;
    if (file == "-") {
      std::ostringstream buf;
      buf << std::cin.rdbuf();
      source = buf.str();
    } else {
      std::ifstream in(file);
      if (!in) {
        std::cerr << "seqlog-lint: cannot read '" << file << "'\n";
        return 2;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      source = buf.str();
    }

    seqlog::SymbolTable symbols;
    seqlog::SequencePool pool;
    LintOptions options;
    options.include_info = args.info;
    for (const std::string& p : args.edb) options.edb_predicates.insert(p);
    if (!args.goal.empty()) {
      seqlog::Result<seqlog::ast::Atom> goal =
          seqlog::parser::ParseGoal(args.goal, &symbols, &pool);
      if (!goal.ok()) {
        std::cerr << "seqlog-lint: bad --goal: "
                  << goal.status().message() << "\n";
        return 2;
      }
      options.goal = goal.value();
    }

    DiagnosticReport report =
        seqlog::analysis::LintSource(source, &symbols, &pool, options);
    const std::string label = file == "-" ? "<stdin>" : file;
    if (args.format == "json") {
      if (!first_json) std::cout << ", ";
      first_json = false;
      std::cout << report.RenderJson(label);
    } else {
      std::cout << report.RenderText(label);
    }
    any_errors = any_errors || report.HasErrors();
  }
  if (args.format == "json") std::cout << "]\n";
  return any_errors ? 1 : 0;
}
