% This file intentionally does not parse: unclosed paren and a stray
% operator. seqlog-lint must report SL-E001 and exit 1 without crashing.
p(X :- q(X).
== r(Y)
