% Paper Example: not strongly safe (constructive self-cycle, Def. 10).
% seqlog-lint must render the cycle path and exit 1.
rep(X) :- r(X).
rep(X ++ X) :- rep(X).
