% Structural recursion over suffixes (paper Example 4): strongly safe,
% non-constructive — lints clean with r declared extensional.
suffix(X) :- r(X).
suffix(X[2:end]) :- suffix(X).
