#!/usr/bin/env python3
"""Lints every Sequence Datalog program shipped with the repo.

Driver of the `lint-programs` CI job (.github/workflows/ci.yml). Two
program sources are swept:

1. **examples/** — every ``LoadProgram(R"( ... )")`` raw-string literal
   in the C++ examples. Predicates the same file feeds via
   ``AddFact("name", ...)`` are declared extensional (``--edb``), as are
   predicates bound to registered transducers.

2. **docs transcripts** — every fenced ``seqlog-shell`` block in
   ``docs/*.md`` (the blocks tools/check_docs.py replays). Clause lines
   typed at the prompt form the program; ``+pred seq`` fact lines
   declare the extensional predicates.

Each program is piped through the built ``seqlog-lint`` binary. The
gate is on *errors* (seqlog-lint's exit status): warnings are allowed —
several shipped programs demonstrate warning diagnostics on purpose —
but an unsafe or ill-formed program fails the job. Two escape hatches
for *intentional* negative examples, which must keep failing lint (the
gate inverts, and the promised codes must actually be emitted):

* a transcript whose expected output shows an ``error[SL-`` diagnostic
  (the docs demonstrate ``:check`` on unsafe programs);
* a ``% lint-expect: SL-Exxx`` comment inside an embedded program
  (quickstart ships the paper's not-strongly-safe Example 1.4).

Usage: tools/lint_programs.py --lint build/tools/seqlog-lint
"""

import argparse
import pathlib
import re
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

RAW_PROGRAM_RE = re.compile(r'LoadProgram\(R"\((.*?)\)"\)', re.DOTALL)
ADD_FACT_RE = re.compile(r'AddFact\("([a-z][A-Za-z0-9_]*)"')
LINT_EXPECT_RE = re.compile(r"%\s*lint-expect:\s*(SL-[EWI]\d+)")
DOC_ERROR_RE = re.compile(r"error\[(SL-E\d+)\]")
FENCE_RE = re.compile(r"^```(\S*)\s*$")
PROMPT = "seqlog> "


def example_programs():
    """Yields (source_label, program_text, edb_predicates, expect_codes)."""
    for cpp in sorted(REPO_ROOT.glob("examples/*.cpp")):
        text = cpp.read_text(encoding="utf-8")
        edb = set(ADD_FACT_RE.findall(text))
        for i, match in enumerate(RAW_PROGRAM_RE.finditer(text), 1):
            label = f"{cpp.relative_to(REPO_ROOT)}#program{i}"
            expect = set(LINT_EXPECT_RE.findall(match.group(1)))
            yield label, match.group(1), edb, expect


def transcript_programs():
    """Yields (source_label, program_text, edb, expect_codes)."""
    for md in sorted(REPO_ROOT.glob("docs/*.md")):
        lines = md.read_text(encoding="utf-8").splitlines()
        in_block, start = False, 0
        clauses, edb, expect = [], set(), set()
        for lineno, line in enumerate(lines, 1):
            fence = FENCE_RE.match(line)
            if fence and not in_block and fence.group(1) == "seqlog-shell":
                in_block, start = True, lineno
                clauses, edb, expect = [], set(), set()
            elif fence and in_block:
                in_block = False
                if clauses:
                    label = f"{md.relative_to(REPO_ROOT)}:{start}"
                    yield label, "\n".join(clauses) + "\n", edb, expect
            elif in_block:
                if line.startswith(PROMPT):
                    cmd = line[len(PROMPT):].strip()
                    if cmd.startswith("+"):
                        # "+pred seq...": extensionally supplied.
                        edb.add(cmd[1:].split()[0])
                    elif (cmd and not cmd.startswith((":", "?-", "%"))
                          and cmd.endswith(".")):
                        clauses.append(cmd)
                else:
                    # The transcript demonstrates these error codes on
                    # purpose; lint must keep reporting them.
                    expect.update(DOC_ERROR_RE.findall(line))


def run_lint(lint, label, program, edb, expect_codes):
    """Returns a diagnostic string on failure, None on pass."""
    cmd = [str(lint)]
    if edb:
        cmd.append("--edb=" + ",".join(sorted(edb)))
    cmd.append("-")
    proc = subprocess.run(cmd, input=program, text=True,
                          capture_output=True, timeout=60)
    if proc.returncode not in (0, 1):
        return (f"{label}: seqlog-lint crashed (exit {proc.returncode}):\n"
                f"{proc.stderr}")
    failed = proc.returncode == 1
    if expect_codes:
        if not failed:
            return (f"{label}: documented as erroneous but lints clean — "
                    f"update the transcript or the program")
        missing = [c for c in sorted(expect_codes) if c not in proc.stdout]
        if missing:
            return (f"{label}: expected {', '.join(missing)}, lint "
                    f"reported:\n{proc.stdout}")
    elif failed:
        return f"{label}: lint errors:\n{proc.stdout}"
    return None


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--lint", type=pathlib.Path, required=True,
                        help="path to the built seqlog-lint binary")
    args = parser.parse_args()
    if not args.lint.exists():
        print(f"error: {args.lint} not found (build the seqlog-lint "
              f"target first)", file=sys.stderr)
        return 2

    checked, failures = 0, []
    for source in (example_programs(), transcript_programs()):
        for label, program, edb, expect_codes in source:
            checked += 1
            diag = run_lint(args.lint, label, program, edb, expect_codes)
            if diag:
                failures.append(diag)

    print(f"linted {checked} embedded program(s): {len(failures)} failure(s)")
    for diag in failures:
        print(f"FAIL {diag}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
