// Shared workload definitions for the serving tools and benchmarks.
//
// seqlog-serve loads a named workload's program and facts; seqlog-loadgen
// and bench/bench_serve generate the matching point-lookup probes WITHOUT
// talking to the server first — both sides derive the same deterministic
// data from the same seeds, so a loadgen probe always references a fact
// the server actually holds. Keep the seeds/counts here in sync on both
// sides by construction: there is exactly one definition.
//
// Workloads:
//  * genome — Example 7.1 (DNA -> RNA -> protein pipeline); probes are
//    database DNA sequences, the goal transcribes one on demand. The
//    paper's "millions of point queries" serving scenario.
//  * text — the text-index program of examples/text_index.cpp; probes
//    are 4-symbol windows shared across documents.
//  * suffix — Example 1.1 suffix membership; probes are true suffixes.
#ifndef SEQLOG_TOOLS_SERVE_WORKLOADS_H_
#define SEQLOG_TOOLS_SERVE_WORKLOADS_H_

#include <random>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "core/engine.h"
#include "core/programs.h"
#include "transducer/genome.h"

namespace seqlog {
namespace tools {

inline std::vector<std::string> DeterministicSequences(
    unsigned seed, size_t count, size_t len, std::string_view alphabet) {
  std::mt19937 rng(seed);
  std::vector<std::string> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    std::string s;
    s.reserve(len);
    for (size_t j = 0; j < len; ++j) {
      s += alphabet[rng() % alphabet.size()];
    }
    out.push_back(std::move(s));
  }
  return out;
}

inline std::vector<std::string> GenomeFacts() {
  return DeterministicSequences(7, 200, 24, "acgt");
}

inline std::vector<std::string> TextFacts() {
  return DeterministicSequences(11, 8, 10, "ab");
}

inline std::vector<std::string> SuffixFacts() {
  return DeterministicSequences(5, 64, 32, "acgt");
}

/// The parameterized point-lookup goal of workload `name` ("" for an
/// unknown name).
inline const char* WorkloadGoal(std::string_view name) {
  if (name == "genome") return "?- rnaseq($1, X).";
  if (name == "text") return "?- hit($1, D).";
  if (name == "suffix") return "?- suffix($1).";
  return "";
}

/// The extensional predicate FACT/INGEST writes target for workload
/// `name` ("" for an unknown name) — the same predicate SetupWorkload
/// populates, so mixed-load writes extend the live data set.
inline const char* WorkloadWritePred(std::string_view name) {
  if (name == "genome") return "dnaseq";
  if (name == "text") return "doc";
  if (name == "suffix") return "r";
  return "";
}

/// Deterministic write values for mixed read/write runs: the same
/// generator family as the setup facts but a disjoint per-writer seed
/// space, so concurrent writers stage distinct facts (the genome/suffix
/// spaces are large enough that collisions with the setup set are
/// negligible; duplicates are dropped at the resaturation seed anyway).
inline std::vector<std::string> WorkloadWriteValues(
    std::string_view name, unsigned writer, size_t count) {
  const unsigned seed = 1000003u + writer * 7919u;
  if (name == "genome") {
    return DeterministicSequences(seed, count, 24, "acgt");
  }
  if (name == "text") return DeterministicSequences(seed, count, 10, "ab");
  if (name == "suffix") {
    return DeterministicSequences(seed, count, 32, "acgt");
  }
  return {};
}

/// Loads program + facts of workload `name` into `engine`.
inline Status SetupWorkload(Engine* engine, std::string_view name) {
  if (name == "genome") {
    auto transcribe =
        transducer::MakeTranscribe("transcribe", engine->symbols());
    if (!transcribe.ok()) return transcribe.status();
    auto translate =
        transducer::MakeTranslate("translate", engine->symbols());
    if (!translate.ok()) return translate.status();
    SEQLOG_RETURN_IF_ERROR(engine->RegisterTransducer(transcribe.value()));
    SEQLOG_RETURN_IF_ERROR(engine->RegisterTransducer(translate.value()));
    SEQLOG_RETURN_IF_ERROR(engine->LoadProgram(programs::kGenomePipeline));
    for (const std::string& d : GenomeFacts()) {
      SEQLOG_RETURN_IF_ERROR(engine->AddFact("dnaseq", {d}));
    }
    return Status::Ok();
  }
  if (name == "text") {
    SEQLOG_RETURN_IF_ERROR(engine->LoadProgram(programs::kTextIndex));
    for (const std::string& d : TextFacts()) {
      SEQLOG_RETURN_IF_ERROR(engine->AddFact("doc", {d}));
    }
    return Status::Ok();
  }
  if (name == "suffix") {
    SEQLOG_RETURN_IF_ERROR(engine->LoadProgram(programs::kSuffixes));
    for (const std::string& s : SuffixFacts()) {
      SEQLOG_RETURN_IF_ERROR(engine->AddFact("r", {s}));
    }
    return Status::Ok();
  }
  return Status::InvalidArgument(
      "unknown workload '" + std::string(name) +
      "' (expected genome, text or suffix)");
}

/// Probe values for the workload's goal, matching SetupWorkload's data.
inline std::vector<std::string> WorkloadProbes(std::string_view name) {
  std::vector<std::string> probes;
  if (name == "genome") {
    probes = GenomeFacts();
  } else if (name == "text") {
    // Length-4 windows of the documents; with an {a,b} alphabet and 8
    // docs of length 10 nearly every window is shared (hit() requires
    // W to occur in two distinct documents).
    std::set<std::string> windows;
    for (const std::string& d : TextFacts()) {
      for (size_t i = 0; i + 4 <= d.size(); ++i) {
        windows.insert(d.substr(i, 4));
      }
    }
    probes.assign(windows.begin(), windows.end());
  } else if (name == "suffix") {
    for (const std::string& s : SuffixFacts()) {
      probes.push_back(s.substr(s.size() / 2));
    }
  }
  return probes;
}

}  // namespace tools
}  // namespace seqlog

#endif  // SEQLOG_TOOLS_SERVE_WORKLOADS_H_
