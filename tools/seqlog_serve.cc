// seqlog-serve: the seqlog query server binary.
//
// Loads a named workload (program + deterministic facts,
// serve_workloads.h), starts serve::Server on loopback, prints the
// bound port, and serves until SIGTERM/SIGINT — then drains gracefully
// (in-flight requests complete) and exits 0 with a final stats summary.
//
//   seqlog-serve --workload=genome --port=0 --sessions=4
//     -> "seqlog-serve listening on 127.0.0.1:37103" (stdout, flushed)
//
// Live ingest is on by default: the workload is saturated once at
// startup and a republisher thread drains FACT/INGEST writes at
// --ingest-cadence-ms / --ingest-threshold, re-saturating the model
// incrementally. --ivm=0 restores the legacy mutex-serialised write
// path (facts visible only after PUBLISH).
//
// Protocol: docs/SERVING.md. Load generation: seqlog-loadgen.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "serve/server.h"
#include "serve_workloads.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void OnSignal(int) { g_stop = 1; }

bool FlagValue(const char* arg, const char* name, const char** value) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *value = arg + len + 1;
    return true;
  }
  return false;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: seqlog-serve [--workload=genome|text|suffix] [--port=N]\n"
      "                    [--host=A.B.C.D] [--sessions=N]\n"
      "                    [--max-pending=N] [--deadline-ms=N]\n"
      "                    [--eval-threads=N] [--ivm=0|1]\n"
      "                    [--ingest-cadence-ms=N]\n"
      "                    [--ingest-threshold=N]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace seqlog;

  std::string workload = "genome";
  serve::ServerOptions options;
  for (int i = 1; i < argc; ++i) {
    const char* value = nullptr;
    if (FlagValue(argv[i], "--workload", &value)) {
      workload = value;
    } else if (FlagValue(argv[i], "--port", &value)) {
      options.port = static_cast<uint16_t>(std::atoi(value));
    } else if (FlagValue(argv[i], "--host", &value)) {
      options.host = value;
    } else if (FlagValue(argv[i], "--sessions", &value)) {
      options.sessions = static_cast<size_t>(std::atoi(value));
    } else if (FlagValue(argv[i], "--max-pending", &value)) {
      options.max_pending = static_cast<size_t>(std::atoi(value));
    } else if (FlagValue(argv[i], "--deadline-ms", &value)) {
      options.default_deadline_ms =
          static_cast<uint64_t>(std::atoll(value));
    } else if (FlagValue(argv[i], "--eval-threads", &value)) {
      options.eval.num_threads = static_cast<size_t>(std::atoi(value));
    } else if (FlagValue(argv[i], "--ivm", &value)) {
      options.live_ingest = std::atoi(value) != 0;
    } else if (FlagValue(argv[i], "--ingest-cadence-ms", &value)) {
      options.ingest_cadence_ms = static_cast<uint64_t>(std::atoll(value));
    } else if (FlagValue(argv[i], "--ingest-threshold", &value)) {
      options.ingest_threshold = static_cast<size_t>(std::atoi(value));
    } else {
      return Usage();
    }
  }

  Engine engine;
  Status status = tools::SetupWorkload(&engine, workload);
  if (!status.ok()) {
    std::fprintf(stderr, "seqlog-serve: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  if (options.live_ingest) {
    // Saturate once up front so the republisher's drains run the cheap
    // incremental path instead of falling back to cold recomputes.
    eval::EvalOutcome warm = engine.Evaluate(options.eval);
    if (!warm.status.ok()) {
      std::fprintf(stderr, "seqlog-serve: initial evaluation failed: %s\n",
                   warm.status.ToString().c_str());
      return 1;
    }
  }

  serve::Server server(&engine, options);
  status = server.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "seqlog-serve: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::printf("seqlog-serve listening on %s:%u (workload=%s)\n",
              options.host.c_str(), server.port(), workload.c_str());
  std::fflush(stdout);

  std::signal(SIGTERM, OnSignal);
  std::signal(SIGINT, OnSignal);
  while (!g_stop) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  server.Shutdown();
  server.Wait();
  const serve::ServerStats& stats = server.stats();
  std::printf(
      "seqlog-serve drained cleanly: requests=%llu qps=%.1f "
      "p50_us=%.1f p99_us=%.1f protocol_errors=%llu\n",
      static_cast<unsigned long long>(stats.requests.load()), stats.qps(),
      stats.request_latency.PercentileMicros(50),
      stats.request_latency.PercentileMicros(99),
      static_cast<unsigned long long>(stats.protocol_errors.load()));
  return 0;
}
