#!/usr/bin/env bash
# End-to-end smoke test of the serving tier (run by ctest and the
# release CI job): start seqlog-serve on an ephemeral loopback port,
# drive it with seqlog-loadgen in both modes plus a mixed read/write
# phase (FACT writes through the live-ingest queue, ending in a forced
# PUBLISH drain), require nonzero qps and zero protocol errors, then
# SIGTERM the server and require a clean drain (exit 0).
#
# usage: serve_smoke.sh <seqlog-serve> <seqlog-loadgen> [workload]
set -u

SERVE="${1:?path to seqlog-serve}"
LOADGEN="${2:?path to seqlog-loadgen}"
WORKLOAD="${3:-genome}"

OUT="$(mktemp)"
trap 'rm -f "$OUT"; [ -n "${SERVER_PID:-}" ] && kill -9 "$SERVER_PID" 2>/dev/null' EXIT

"$SERVE" --workload="$WORKLOAD" --port=0 --sessions=4 >"$OUT" 2>&1 &
SERVER_PID=$!

# Wait for the listening line and extract the bound port.
PORT=""
for _ in $(seq 1 100); do
  PORT="$(sed -n 's/.*listening on [0-9.]*:\([0-9]*\).*/\1/p' "$OUT" | head -1)"
  [ -n "$PORT" ] && break
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "FAIL: server exited before listening"; cat "$OUT"; exit 1
  fi
  sleep 0.1
done
if [ -z "$PORT" ]; then
  echo "FAIL: no listening port after 10s"; cat "$OUT"; exit 1
fi
echo "server up on port $PORT"

fail() { echo "FAIL: $*"; cat "$OUT"; exit 1; }

EXEC_JSON="$("$LOADGEN" --port="$PORT" --workload="$WORKLOAD" \
  --mode=exec --connections=4 --requests=25 --json)" \
  || fail "loadgen exec mode errored: $EXEC_JSON"
echo "$EXEC_JSON"
echo "$EXEC_JSON" | grep -q '"errors": 0,' || fail "exec mode errors"
echo "$EXEC_JSON" | grep -q '"qps": 0\.0,' && fail "exec mode zero qps"

BATCH_JSON="$("$LOADGEN" --port="$PORT" --workload="$WORKLOAD" \
  --mode=batch --batch-size=8 --connections=2 --requests=5 --json)" \
  || fail "loadgen batch mode errored: $BATCH_JSON"
echo "$BATCH_JSON"
echo "$BATCH_JSON" | grep -q '"errors": 0,' || fail "batch mode errors"

# Mixed read/write phase: a quarter of the requests are FACT writes
# staged on the live-ingest queue; each writer ends with PUBLISH, so
# the run only passes if the drain + resaturation path works too.
MIXED_JSON="$("$LOADGEN" --port="$PORT" --workload="$WORKLOAD" \
  --mode=exec --connections=4 --requests=50 --write-mix=0.25 --json)" \
  || fail "loadgen mixed mode errored: $MIXED_JSON"
echo "$MIXED_JSON"
echo "$MIXED_JSON" | grep -q '"errors": 0,' || fail "mixed mode errors"

# Graceful drain: SIGTERM must lead to exit code 0.
kill -TERM "$SERVER_PID"
DRAIN_OK=1
for _ in $(seq 1 100); do
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then DRAIN_OK=0; break; fi
  sleep 0.1
done
[ "$DRAIN_OK" -eq 0 ] || fail "server did not exit within 10s of SIGTERM"
wait "$SERVER_PID"
STATUS=$?
SERVER_PID=""
[ "$STATUS" -eq 0 ] || fail "server exited with status $STATUS"
grep -q "drained cleanly" "$OUT" || fail "missing drain summary"

echo "PASS: serve smoke ($WORKLOAD)"
exit 0
