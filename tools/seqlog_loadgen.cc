// seqlog-loadgen: closed-loop load generation for seqlog-serve.
//
// Opens N connections, each driven by its own thread in a closed loop
// (next request only after the previous reply — so concurrency is
// exactly N and latency includes queueing honestly). Probes are the
// deterministic workload values of serve_workloads.h, so every request
// references data the server holds.
//
//   seqlog-loadgen --port=37103 --workload=genome --connections=4
//                  --requests=200 --mode=exec
//   seqlog-loadgen --port=37103 --workload=genome --mode=batch
//                  --batch-size=32 --requests=10
//
// Per worker: PREPARE once (idempotent server-side), then EXEC one
// probe per request (mode=exec) or BATCH batch-size probes per request
// (mode=batch). Client-side latency lands in a serve::LatencyHistogram;
// workers merge on join.
//
// --write-mix=F (0..1) turns fraction F of each worker's requests into
// FACT writes against the workload's base predicate, with fresh
// deterministic values per worker (serve_workloads.h), exercising the
// live-ingest path under concurrent reads. Reads and writes land in
// separate histograms so the JSON reports read p99 under write load —
// the headline number for the IVM subsystem. Workers with writes end
// with one PUBLISH so everything staged is drained before exit.
//
// Output: a human summary, or with --json a single JSON object shaped
// like a google-benchmark entry so bench/run_benches.sh can aggregate
// it into BENCH_pr8.json. Exit 0 iff every request got a well-formed
// non-ERR reply.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <atomic>
#include <chrono>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/stats.h"
#include "serve_workloads.h"

namespace {

using namespace seqlog;

struct Config {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  std::string workload = "genome";
  std::string mode = "exec";  // exec | batch
  size_t connections = 4;
  size_t requests = 100;  // per connection
  size_t batch_size = 32;
  uint64_t deadline_ms = 0;
  double write_mix = 0;  // fraction of requests that are FACT writes
  bool json = false;
};

struct WorkerResult {
  serve::LatencyHistogram latency;        // all requests combined
  serve::LatencyHistogram read_latency;   // EXEC/BATCH only
  serve::LatencyHistogram write_latency;  // FACT only
  uint64_t requests = 0;
  uint64_t items = 0;
  uint64_t rows = 0;
  uint64_t writes = 0;
  uint64_t errors = 0;  // transport + ERR replies
};

bool FlagValue(const char* arg, const char* name, const char** value) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *value = arg + len + 1;
    return true;
  }
  return false;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: seqlog-loadgen --port=N [--host=A.B.C.D]\n"
      "                      [--workload=genome|text|suffix]\n"
      "                      [--mode=exec|batch] [--connections=N]\n"
      "                      [--requests=N] [--batch-size=N]\n"
      "                      [--deadline-ms=N] [--write-mix=F] [--json]\n");
  return 2;
}

void RunWorker(const Config& config,
               const std::vector<std::string>& probes, size_t worker,
               WorkerResult* result) {
  serve::TextClient client;
  if (!client.Connect(config.host, config.port).ok()) {
    result->errors += 1;
    return;
  }
  if (!client.Roundtrip(std::string("PREPARE q ") +
                        tools::WorkloadGoal(config.workload))
           .ok()) {
    result->errors += 1;
    return;
  }
  if (config.deadline_ms != 0) {
    auto reply =
        client.Roundtrip("DEADLINE " + std::to_string(config.deadline_ms));
    if (!reply.ok() || !reply.value().ok()) {
      result->errors += 1;
      return;
    }
  }
  // Write-mix plumbing: a per-worker deterministic coin decides which
  // requests become FACT writes, and the write values come from a
  // per-worker seed space so concurrent writers stage distinct facts.
  const std::string write_pred =
      tools::WorkloadWritePred(config.workload);
  std::vector<std::string> write_values;
  size_t write_at = 0;
  if (config.write_mix > 0) {
    write_values = tools::WorkloadWriteValues(
        config.workload, static_cast<unsigned>(worker), config.requests);
  }
  std::mt19937 coin(static_cast<unsigned>(worker) * 2654435761u + 12345u);
  std::bernoulli_distribution is_write(
      config.write_mix > 0 ? config.write_mix : 0.0);

  size_t probe_at = worker;  // stagger workers across the probe set
  for (size_t r = 0; r < config.requests; ++r) {
    if (config.write_mix > 0 && is_write(coin) &&
        write_at < write_values.size()) {
      auto w0 = std::chrono::steady_clock::now();
      Result<serve::Reply> wreply = client.Roundtrip(
          "FACT " + write_pred + " " +
          serve::EncodeValue(write_values[write_at++]));
      double wmicros = std::chrono::duration<double, std::micro>(
                           std::chrono::steady_clock::now() - w0)
                           .count();
      if (!wreply.ok()) {  // transport failure: stop this worker
        result->errors += 1;
        return;
      }
      result->latency.Record(wmicros);
      result->write_latency.Record(wmicros);
      result->requests += 1;
      result->items += 1;
      result->writes += 1;
      if (!wreply.value().ok()) result->errors += 1;
      continue;
    }
    auto t0 = std::chrono::steady_clock::now();
    Result<serve::Reply> reply = Status::Internal("unset");
    size_t items = 1;
    if (config.mode == "batch") {
      items = config.batch_size;
      std::vector<std::string> lines;
      lines.reserve(items);
      for (size_t b = 0; b < items; ++b) {
        lines.push_back(
            serve::EncodeValue(probes[probe_at++ % probes.size()]));
        probe_at %= probes.size();
      }
      reply = client.Roundtrip(
          "BATCH q " + std::to_string(lines.size()), lines);
    } else {
      reply = client.Roundtrip(
          "EXEC q " +
          serve::EncodeValue(probes[probe_at++ % probes.size()]));
      probe_at %= probes.size();
    }
    double micros = std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    if (!reply.ok()) {  // transport failure: stop this worker
      result->errors += 1;
      return;
    }
    result->latency.Record(micros);
    result->read_latency.Record(micros);
    result->requests += 1;
    result->items += items;
    if (!reply.value().ok()) {
      result->errors += 1;
    } else {
      for (const std::string& line : reply.value().body) {
        if (line.rfind("ROW", 0) == 0) {
          result->rows += 1;
        } else if (line.rfind("ITEM ", 0) == 0 &&
                   line.find(" ERR ") != std::string::npos) {
          result->errors += 1;
        }
      }
    }
  }
  if (result->writes > 0) {
    // Force a drain so everything this worker staged is applied and
    // published before the run is scored (not counted as a request).
    Result<serve::Reply> publish = client.Roundtrip("PUBLISH");
    if (!publish.ok() || !publish.value().ok()) result->errors += 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    const char* value = nullptr;
    if (FlagValue(argv[i], "--host", &value)) {
      config.host = value;
    } else if (FlagValue(argv[i], "--port", &value)) {
      config.port = static_cast<uint16_t>(std::atoi(value));
    } else if (FlagValue(argv[i], "--workload", &value)) {
      config.workload = value;
    } else if (FlagValue(argv[i], "--mode", &value)) {
      config.mode = value;
    } else if (FlagValue(argv[i], "--connections", &value)) {
      config.connections = static_cast<size_t>(std::atoi(value));
    } else if (FlagValue(argv[i], "--requests", &value)) {
      config.requests = static_cast<size_t>(std::atoi(value));
    } else if (FlagValue(argv[i], "--batch-size", &value)) {
      config.batch_size = static_cast<size_t>(std::atoi(value));
    } else if (FlagValue(argv[i], "--deadline-ms", &value)) {
      config.deadline_ms = static_cast<uint64_t>(std::atoll(value));
    } else if (FlagValue(argv[i], "--write-mix", &value)) {
      config.write_mix = std::atof(value);
      if (config.write_mix < 0 || config.write_mix > 1) return Usage();
    } else if (std::strcmp(argv[i], "--json") == 0) {
      config.json = true;
    } else {
      return Usage();
    }
  }
  if (config.port == 0) return Usage();
  if (config.mode != "exec" && config.mode != "batch") return Usage();
  std::vector<std::string> probes =
      tools::WorkloadProbes(config.workload);
  if (probes.empty()) {
    std::fprintf(stderr, "seqlog-loadgen: unknown workload '%s'\n",
                 config.workload.c_str());
    return 2;
  }
  if (config.connections == 0) config.connections = 1;

  std::vector<WorkerResult> results(config.connections);
  std::vector<std::thread> workers;
  workers.reserve(config.connections);
  auto t0 = std::chrono::steady_clock::now();
  for (size_t w = 0; w < config.connections; ++w) {
    workers.emplace_back(RunWorker, std::cref(config), std::cref(probes),
                         w, &results[w]);
  }
  for (std::thread& t : workers) t.join();
  double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  serve::LatencyHistogram latency, read_latency, write_latency;
  uint64_t requests = 0, items = 0, rows = 0, writes = 0, errors = 0;
  for (const WorkerResult& r : results) {
    latency.MergeFrom(r.latency);
    read_latency.MergeFrom(r.read_latency);
    write_latency.MergeFrom(r.write_latency);
    requests += r.requests;
    items += r.items;
    rows += r.rows;
    writes += r.writes;
    errors += r.errors;
  }
  double qps = wall_seconds > 0
                   ? static_cast<double>(requests) / wall_seconds
                   : 0;
  double ips = wall_seconds > 0
                   ? static_cast<double>(items) / wall_seconds
                   : 0;

  if (config.json) {
    std::printf(
        "{\"name\": \"loadgen/%s/%s\", \"connections\": %zu, "
        "\"requests\": %llu, \"items\": %llu, \"rows\": %llu, "
        "\"errors\": %llu, \"wall_seconds\": %.3f, \"qps\": %.1f, "
        "\"items_per_second\": %.1f, \"p50_us\": %.1f, "
        "\"p95_us\": %.1f, \"p99_us\": %.1f, \"write_mix\": %.2f, "
        "\"writes\": %llu, \"read_p50_us\": %.1f, "
        "\"read_p95_us\": %.1f, \"read_p99_us\": %.1f, "
        "\"write_p50_us\": %.1f, \"write_p95_us\": %.1f, "
        "\"write_p99_us\": %.1f}\n",
        config.workload.c_str(), config.mode.c_str(),
        config.connections,
        static_cast<unsigned long long>(requests),
        static_cast<unsigned long long>(items),
        static_cast<unsigned long long>(rows),
        static_cast<unsigned long long>(errors), wall_seconds, qps, ips,
        latency.PercentileMicros(50), latency.PercentileMicros(95),
        latency.PercentileMicros(99), config.write_mix,
        static_cast<unsigned long long>(writes),
        read_latency.PercentileMicros(50),
        read_latency.PercentileMicros(95),
        read_latency.PercentileMicros(99),
        write_latency.PercentileMicros(50),
        write_latency.PercentileMicros(95),
        write_latency.PercentileMicros(99));
  } else {
    std::printf(
        "seqlog-loadgen %s/%s: %llu requests (%llu items, %llu rows) "
        "over %zu connections in %.2fs\n"
        "  qps=%.1f items/s=%.1f p50=%.1fus p95=%.1fus p99=%.1fus "
        "errors=%llu\n",
        config.workload.c_str(), config.mode.c_str(),
        static_cast<unsigned long long>(requests),
        static_cast<unsigned long long>(items),
        static_cast<unsigned long long>(rows), config.connections,
        wall_seconds, qps, ips, latency.PercentileMicros(50),
        latency.PercentileMicros(95), latency.PercentileMicros(99),
        static_cast<unsigned long long>(errors));
    if (config.write_mix > 0) {
      std::printf(
          "  writes=%llu (mix=%.2f) read_p50=%.1fus read_p99=%.1fus "
          "write_p50=%.1fus write_p99=%.1fus\n",
          static_cast<unsigned long long>(writes), config.write_mix,
          read_latency.PercentileMicros(50),
          read_latency.PercentileMicros(99),
          write_latency.PercentileMicros(50),
          write_latency.PercentileMicros(99));
    }
  }
  return errors == 0 && requests > 0 ? 0 : 1;
}
